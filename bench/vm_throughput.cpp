//===- bench/vm_throughput.cpp - engine dispatch throughput -------------------===//
//
// Host-time comparison of the two VM engines: executes a slice of the
// workload suite uninstrumented on the reference switch interpreter and
// on the predecoded threaded engine, and reports simulated instructions
// retired per host second. The threaded engine's predecode pass runs
// inside the timed region — it is part of that engine's cost.
//
// Writes BENCH_vm_throughput.json (machine-readable; the committed copy
// at the repository root records the numbers this change was merged
// with) and prints the same data as a table.
//
//===----------------------------------------------------------------------===//

#include "support/TableWriter.h"
#include "vm/Vm.h"
#include "workloads/Spec.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

using namespace pp;

namespace {

struct Sample {
  uint64_t Insts = 0;
  double Seconds = 0;
  double instsPerSec() const { return double(Insts) / Seconds; }
};

/// One timed execution of a workload on one engine.
Sample timeOnce(const std::string &Name, int Scale, vm::Engine E) {
  auto M = workloads::buildWorkload(Name, Scale);
  if (!M) {
    std::fprintf(stderr, "unknown workload %s\n", Name.c_str());
    std::exit(1);
  }
  hw::Machine Machine;
  vm::Vm VM(*M, Machine);
  VM.setEngine(E);
  auto T0 = std::chrono::steady_clock::now();
  vm::RunResult R = VM.run();
  auto T1 = std::chrono::steady_clock::now();
  if (!R.Ok) {
    std::fprintf(stderr, "%s failed: %s\n", Name.c_str(), R.Error.c_str());
    std::exit(1);
  }
  return {R.ExecutedInsts, std::chrono::duration<double>(T1 - T0).count()};
}

/// Times one workload on both engines as N back-to-back pairs (the
/// within-pair order alternating per rep) and reports the pair whose
/// speedup is the median of the per-pair speedups. Pairing is the noise
/// defence: host frequency drift or a co-tenant burst slows both halves
/// of a pair roughly equally, so the per-pair ratio stays stable even
/// when absolute rates swing; taking the median pair (not the fastest
/// halves independently) keeps the reported rates and ratio
/// self-consistent samples from one moment in time.
void timePair(const std::string &Name, int Scale, Sample &RefOut,
              Sample &ThrOut) {
  constexpr int Reps = 9;
  timeOnce(Name, Scale, vm::Engine::Reference); // warm the host caches
  std::vector<std::pair<Sample, Sample>> Pairs; // (reference, threaded)
  for (int Rep = 0; Rep != Reps; ++Rep) {
    vm::Engine First =
        (Rep & 1) ? vm::Engine::Threaded : vm::Engine::Reference;
    vm::Engine Second =
        (Rep & 1) ? vm::Engine::Reference : vm::Engine::Threaded;
    Sample A = timeOnce(Name, Scale, First);
    Sample B = timeOnce(Name, Scale, Second);
    Pairs.emplace_back((Rep & 1) ? B : A, (Rep & 1) ? A : B);
  }
  std::sort(Pairs.begin(), Pairs.end(), [](const auto &L, const auto &R) {
    return L.second.Seconds * R.first.Seconds <
           R.second.Seconds * L.first.Seconds; // by threaded/reference ratio
  });
  RefOut = Pairs[Reps / 2].first;
  ThrOut = Pairs[Reps / 2].second;
}

std::string fmt(const char *Format, double Value) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), Format, Value);
  return Buf;
}

} // namespace

int main() {
  // A branchy interpreter shape, a search shape, and a loop-nest FP shape:
  // together they cover the dispatch patterns that matter for an
  // interpreter (unpredictable indirect control flow vs straight lines).
  struct Target {
    const char *Name;
    int Scale;
  };
  // Scales chosen so each run retires tens of millions of instructions:
  // long enough to amortise the threaded engine's predecode pass (which
  // is timed as part of that engine) and to push wall-clock noise well
  // under the effect being measured.
  const Target Targets[] = {
      {"126.gcc", 200}, {"099.go", 200}, {"101.tomcatv", 100}};

  TableWriter Table;
  Table.setHeader({"Workload", "MInsts", "Ref MI/s", "Thr MI/s", "Speedup"});
  Table.addSeparator();

  uint64_t TotalInsts = 0;
  double RefSeconds = 0, ThrSeconds = 0;
  std::vector<std::string> JsonRows;
  for (const Target &T : Targets) {
    Sample Ref, Thr;
    timePair(T.Name, T.Scale, Ref, Thr);
    TotalInsts += Ref.Insts;
    RefSeconds += Ref.Seconds;
    ThrSeconds += Thr.Seconds;
    double Speedup = Thr.instsPerSec() / Ref.instsPerSec();
    Table.addRow({T.Name, fmt("%.1f", double(Ref.Insts) / 1e6),
                  fmt("%.1f", Ref.instsPerSec() / 1e6),
                  fmt("%.1f", Thr.instsPerSec() / 1e6),
                  fmt("%.2fx", Speedup)});
    char Row[256];
    std::snprintf(Row, sizeof(Row),
                  "    {\"workload\": \"%s\", \"scale\": %d, "
                  "\"insts\": %llu, \"reference_insts_per_sec\": %.0f, "
                  "\"threaded_insts_per_sec\": %.0f, \"speedup\": %.3f}",
                  T.Name, T.Scale, (unsigned long long)Ref.Insts,
                  Ref.instsPerSec(), Thr.instsPerSec(), Speedup);
    JsonRows.push_back(Row);
  }

  double RefAgg = double(TotalInsts) / RefSeconds;
  double ThrAgg = double(TotalInsts) / ThrSeconds;
  double Aggregate = ThrAgg / RefAgg;
  Table.addSeparator();
  Table.addRow({"aggregate", fmt("%.1f", double(TotalInsts) / 1e6),
                fmt("%.1f", RefAgg / 1e6), fmt("%.1f", ThrAgg / 1e6),
                fmt("%.2fx", Aggregate)});

  std::printf("VM engine throughput (uninstrumented runs, median of 9 "
              "interleaved reps)\n\n%s\n",
              Table.render().c_str());

  std::ofstream Json("BENCH_vm_throughput.json");
  Json << "{\n  \"bench\": \"vm_throughput\",\n  \"rows\": [\n";
  for (size_t Index = 0; Index != JsonRows.size(); ++Index)
    Json << JsonRows[Index] << (Index + 1 == JsonRows.size() ? "\n" : ",\n");
  Json << "  ],\n";
  char Agg[256];
  std::snprintf(Agg, sizeof(Agg),
                "  \"reference_insts_per_sec\": %.0f,\n"
                "  \"threaded_insts_per_sec\": %.0f,\n"
                "  \"aggregate_speedup\": %.3f\n}\n",
                RefAgg, ThrAgg, Aggregate);
  Json << Agg;
  std::printf("wrote BENCH_vm_throughput.json (aggregate speedup %.2fx)\n",
              Aggregate);
  return 0;
}
