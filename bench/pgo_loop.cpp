//===- bench/pgo_loop.cpp - the closed profile-guided-optimization loop --------===//
//
// The paper's motivating application, closed end to end: profile each
// workload (context + flow + HW metrics, PIC0=cycles PIC1=I-cache
// misses), package the outcome as the same .ppa artifact pp-opt consumes,
// run the full pass pipeline (layout, superblock, inline) over a pristine
// copy of the program, and re-measure the optimized module — on BOTH VM
// engines, asserting bit-identical behaviour — to report the speedup the
// optimizer actually delivered, not the one it predicted.
//
// The suite workloads fit the default 16 KiB simulated I-cache entirely
// (compulsory misses only), which would hide every layout decision; all
// runs here therefore use a small direct-mapped I-cache (256 bytes of
// 64-byte lines by default; PP_PGO_ICACHE_BYTES/_LINE/_ASSOC override the
// geometry), the same machine for baseline and optimized runs, so the
// comparison stays fair while capacity and conflict misses make
// placement visible. (ablation_pgo_layout keeps the
// default machine and shows the fits-in-cache null result.)
//
// Writes BENCH_pgo_loop.json; with --check it exits non-zero unless at
// least MinImproved workloads — 130.li among them — improved BOTH total
// cycles and I-cache misses, the regression tripwire CI runs.
//
//===----------------------------------------------------------------------===//

#include "Common.h"

#include "driver/RunKey.h"
#include "opt/Pass.h"
#include "profdb/Artifact.h"
#include "support/Env.h"

#include <cstring>
#include <fstream>
#include <memory>

using namespace pp;
using namespace pp::bench;
using prof::Mode;

namespace {

/// Workloads that must improve on both metrics for --check to pass.
constexpr size_t MinImproved = 3;
constexpr const char *LiWorkload = "130.li";

/// The loop's machine: default costs, default D-cache, but a small
/// direct-mapped I-cache so block placement has observable consequences.
/// PP_PGO_ICACHE_BYTES / PP_PGO_ICACHE_ASSOC override the geometry for
/// sensitivity experiments (strict warn-and-default parsing).
hw::MachineConfig pgoMachine() {
  hw::MachineConfig Cfg;
  Cfg.ICache = hw::CacheConfig{
      envUint64Or("PP_PGO_ICACHE_BYTES", "pgo_loop", 256),
      envUint64Or("PP_PGO_ICACHE_LINE", "pgo_loop", 64),
      static_cast<unsigned>(envUint64Or("PP_PGO_ICACHE_ASSOC", "pgo_loop", 1))};
  return Cfg;
}

/// The profiling run: context + flow + the two events the optimizer (and
/// this bench's report) are denominated in.
driver::RunPlan profilePlan(const workloads::WorkloadSpec &Spec) {
  driver::RunPlan Plan;
  Plan.Workload = Spec.Name;
  Plan.Scale = 1;
  Plan.Options.Config.M = Mode::ContextFlowHw;
  Plan.Options.Config.Pic0 = hw::Event::Cycles;
  Plan.Options.Config.Pic1 = hw::Event::ICacheMiss;
  Plan.Options.MachineCfg = pgoMachine();
  return Plan;
}

/// An uninstrumented measurement run on \p Eng; \p OptVariant tags (and
/// fingerprints) optimized reruns, empty means baseline.
driver::RunPlan measurePlan(const workloads::WorkloadSpec &Spec,
                            vm::Engine Eng, const std::string &OptVariant) {
  driver::RunPlan Plan;
  Plan.Workload = Spec.Name;
  Plan.Scale = 1;
  Plan.Options.Config.M = Mode::None;
  Plan.Options.MachineCfg = pgoMachine();
  Plan.Options.Engine = Eng;
  Plan.OptVariant = OptVariant;
  return Plan;
}

struct Row {
  std::string Workload;
  unsigned BlocksDuplicated = 0;
  unsigned SitesInlined = 0;
  uint64_t CyclesBefore = 0, CyclesAfter = 0;
  uint64_t IcBefore = 0, IcAfter = 0;
  bool Improved = false;
};

} // namespace

int main(int Argc, char **Argv) {
  bool Check = false;
  for (int Index = 1; Index != Argc; ++Index) {
    if (std::strcmp(Argv[Index], "--check") == 0) {
      Check = true;
    } else {
      std::fprintf(stderr, "pgo_loop: unknown option '%s'\n", Argv[Index]);
      return 1;
    }
  }

  const hw::CacheConfig ICache = pgoMachine().ICache;
  std::printf("PGO loop: profile -> optimize (layout,superblock,inline) -> "
              "re-measure\n(%llu-byte %u-way I-cache; both engines re-run "
              "and compared)\n\n",
              (unsigned long long)ICache.SizeBytes, ICache.Associativity);

  const std::vector<workloads::WorkloadSpec> &Suite = workloads::spec95Suite();
  const std::vector<opt::PassKind> Passes = {
      opt::PassKind::Layout, opt::PassKind::Superblock, opt::PassKind::Inline};
  const opt::PassOptions PassOpts = opt::PassOptions::fromEnv("pgo_loop");
  const std::string Variant = "layout+superblock+inline";

  // Phase 1: one profiling run and two baseline engine runs per workload.
  struct Tickets {
    size_t Profile, BaseRef, BaseThr;
  };
  std::vector<Tickets> Declared;
  for (const workloads::WorkloadSpec &Spec : Suite)
    Declared.push_back(
        {driver::defaultDriver().submit(profilePlan(Spec)),
         driver::defaultDriver().submit(
             measurePlan(Spec, vm::Engine::Reference, "")),
         driver::defaultDriver().submit(
             measurePlan(Spec, vm::Engine::Threaded, ""))});

  // Phase 2: as each profile lands, package it as the artifact pp-opt
  // consumes, run the pipeline once here (for its stats, and to refuse
  // early), and declare the optimized re-runs on both engines.
  struct Pending {
    driver::OutcomePtr BaseRef, BaseThr;
    opt::PipelineResult Pipeline;
    size_t OptRef = 0, OptThr = 0;
    bool Ok = false;
  };
  std::vector<Pending> Reruns(Suite.size());
  for (size_t Index = 0; Index != Suite.size(); ++Index) {
    const workloads::WorkloadSpec &Spec = Suite[Index];
    Pending &P = Reruns[Index];
    P.BaseRef = getRun(Declared[Index].BaseRef, Spec.Name, Mode::None);
    P.BaseThr = getRun(Declared[Index].BaseThr, Spec.Name, Mode::None);
    driver::OutcomePtr Profile =
        getRun(Declared[Index].Profile, Spec.Name, Mode::ContextFlowHw);
    if (!P.BaseRef || !P.BaseThr || !Profile) {
      noteDegradedRow(Spec.Name);
      continue;
    }

    // The artifact is resolved against (and the pipeline run over) fresh
    // pristine copies — the driver may have restored the profile outcome
    // from the cache, where it carries no module.
    driver::RunPlan PPlan = profilePlan(Spec);
    auto Pristine = Spec.Build(1);
    auto Art = std::make_shared<const profdb::Artifact>(
        profdb::artifactFromOutcome(*Profile, *Pristine,
                                    driver::RunKey::of(PPlan).Fingerprint,
                                    Spec.Name, 1, PPlan.Options.Config));

    auto Optimize = [&Spec, Art,
                     &Passes, &PassOpts](opt::PipelineResult *StatsOut)
        -> std::unique_ptr<ir::Module> {
      auto Derived = Spec.Build(1);
      opt::ProfileView View;
      opt::ViewStatus VS = opt::ProfileView::build(*Art, *Derived, View);
      if (VS != opt::ViewStatus::Ok) {
        std::fprintf(stderr, "%s: profile refused: %s\n", Spec.Name.c_str(),
                     opt::viewStatusName(VS));
        return nullptr;
      }
      opt::PipelineResult R = opt::runPipeline(*Derived, View, Passes,
                                               PassOpts);
      if (!R.Ok) {
        std::fprintf(stderr, "%s: %s\n", Spec.Name.c_str(), R.Error.c_str());
        return nullptr;
      }
      if (StatsOut)
        *StatsOut = std::move(R);
      return Derived;
    };

    // Dry run on this thread: collect per-pass stats and refuse before
    // declaring re-runs whose Build would fail on a worker.
    if (!Optimize(&P.Pipeline)) {
      noteDegradedRow(Spec.Name);
      continue;
    }
    P.Ok = true;
    for (vm::Engine Eng : {vm::Engine::Reference, vm::Engine::Threaded}) {
      driver::RunPlan Plan = measurePlan(Spec, Eng, Variant);
      // Deterministic given the (deterministic) profile, so the
      // OptVariant-tagged fingerprint names the module contents exactly
      // and the re-run can cache.
      Plan.Build = [Optimize] {
        auto M = Optimize(nullptr);
        assert(M && "pipeline succeeded on the dry run but failed here");
        return M;
      };
      size_t Ticket = driver::defaultDriver().submit(std::move(Plan));
      (Eng == vm::Engine::Reference ? P.OptRef : P.OptThr) = Ticket;
    }
  }

  // Phase 3: collect, check bit-identical behaviour, render.
  TableWriter Table;
  Table.setHeader({"Benchmark", "Dups", "Inlined", "Cycles before", "after",
                   "IC miss before", "after", "Speedup"});
  std::vector<Row> Rows;
  size_t Improved = 0;
  bool LiImproved = false;
  for (size_t Index = 0; Index != Suite.size(); ++Index) {
    const workloads::WorkloadSpec &Spec = Suite[Index];
    Pending &P = Reruns[Index];
    if (!P.Ok)
      continue; // already reported in phase 2
    driver::OutcomePtr OptRef = getRun(P.OptRef, Spec.Name, Mode::None);
    driver::OutcomePtr OptThr = getRun(P.OptThr, Spec.Name, Mode::None);
    if (!OptRef || !OptThr) {
      noteDegradedRow(Spec.Name);
      continue;
    }
    // The optimized program must behave bit-identically: same exit value
    // as the baseline, and the same totals from both engines.
    if (OptRef->Result.ExitValue != P.BaseRef->Result.ExitValue ||
        P.BaseThr->Result.ExitValue != P.BaseRef->Result.ExitValue) {
      std::fprintf(stderr, "%s: behaviour changed after optimization!\n",
                   Spec.Name.c_str());
      return 1;
    }
    if (OptRef->Result.ExitValue != OptThr->Result.ExitValue ||
        OptRef->Totals != OptThr->Totals) {
      std::fprintf(stderr, "%s: engines diverged on the optimized module!\n",
                   Spec.Name.c_str());
      return 1;
    }

    Row R;
    R.Workload = Spec.Name;
    for (const opt::PassStats &S : P.Pipeline.Passes) {
      R.BlocksDuplicated += S.BlocksDuplicated;
      R.SitesInlined += S.SitesInlined;
    }
    R.CyclesBefore = P.BaseRef->total(hw::Event::Cycles);
    R.CyclesAfter = OptRef->total(hw::Event::Cycles);
    R.IcBefore = P.BaseRef->total(hw::Event::ICacheMiss);
    R.IcAfter = OptRef->total(hw::Event::ICacheMiss);
    R.Improved = R.CyclesAfter < R.CyclesBefore && R.IcAfter < R.IcBefore;
    Improved += R.Improved;
    if (R.Improved && Spec.Name == LiWorkload)
      LiImproved = true;
    Rows.push_back(R);

    Table.addRow({Spec.Name, std::to_string(R.BlocksDuplicated),
                  std::to_string(R.SitesInlined),
                  std::to_string(R.CyclesBefore),
                  std::to_string(R.CyclesAfter), std::to_string(R.IcBefore),
                  std::to_string(R.IcAfter),
                  formatString("%.3f", double(R.CyclesBefore) /
                                           double(R.CyclesAfter))});
  }
  std::printf("%s\n", Table.render().c_str());

  std::ofstream Json("BENCH_pgo_loop.json");
  Json << "{\n  \"bench\": \"pgo_loop\",\n  \"passes\": \"" << Variant
       << "\",\n  \"icache\": \"" << ICache.SizeBytes << "/"
       << ICache.LineBytes << "/" << ICache.Associativity
       << "\",\n  \"rows\": [\n";
  for (size_t Index = 0; Index != Rows.size(); ++Index) {
    const Row &R = Rows[Index];
    char Buf[320];
    std::snprintf(
        Buf, sizeof(Buf),
        "    {\"workload\": \"%s\", \"blocks_duplicated\": %u, "
        "\"sites_inlined\": %u, \"cycles_before\": %llu, "
        "\"cycles_after\": %llu, \"icmiss_before\": %llu, "
        "\"icmiss_after\": %llu, \"improved\": %s}%s\n",
        R.Workload.c_str(), R.BlocksDuplicated, R.SitesInlined,
        (unsigned long long)R.CyclesBefore, (unsigned long long)R.CyclesAfter,
        (unsigned long long)R.IcBefore, (unsigned long long)R.IcAfter,
        R.Improved ? "true" : "false", Index + 1 == Rows.size() ? "" : ",");
    Json << Buf;
  }
  Json << "  ],\n  \"improved\": " << Improved
       << ",\n  \"min_improved\": " << MinImproved
       << ",\n  \"li_improved\": " << (LiImproved ? "true" : "false")
       << "\n}\n";
  std::printf("wrote BENCH_pgo_loop.json (%zu/%zu workloads improved both "
              "cycles and IC misses)\n",
              Improved, Rows.size());

  if (Check && (Improved < MinImproved || !LiImproved)) {
    std::fprintf(stderr,
                 "pgo_loop: %zu workloads improved (need %zu, li %s) — the "
                 "optimizer no longer pays for itself\n",
                 Improved, MinImproved,
                 LiImproved ? "improved" : "did NOT improve");
    return 1;
  }
  return 0;
}
