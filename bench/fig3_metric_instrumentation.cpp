//===- bench/fig3_metric_instrumentation.cpp - Figure 3 ------------------------===//
//
// Regenerates Figure 3: what the instrumentation for measuring a hardware
// metric over paths looks like. Prints the instrumented IR of the loop
// example (hw-cnt zeroing at path starts, the read-after-write the
// UltraSPARC requires, the 13-instruction commit at path ends), then runs
// it and prints the per-path metric table.
//
//===----------------------------------------------------------------------===//

#include "driver/Driver.h"
#include "ir/Printer.h"
#include "prof/Session.h"
#include "support/TableWriter.h"
#include "workloads/Examples.h"

#include <cassert>
#include <cstdio>

using namespace pp;

int main() {
  auto M = workloads::buildLoopModule(1000);

  prof::SessionOptions Options;
  Options.Config.M = prof::Mode::FlowHw;
  Options.Config.Pic0 = hw::Event::Insts;
  Options.Config.Pic1 = hw::Event::DCacheReadMiss;

  // Show the edit: instrument and print the function.
  prof::Instrumented Instr = prof::instrument(*M, Options.Config);
  std::printf("Figure 3: instrumentation for measuring a metric over paths\n");
  std::printf("============================================================\n\n");
  std::printf("Instrumented main (PIC0 = Insts, PIC1 = D-cache read misses).\n");
  std::printf("Note the save (rdpic) at entry, wrpic 0 followed by the\n"
              "forced read at each path start, and the commit sequence at\n"
              "path ends (back edge and return):\n\n");
  std::printf("%s\n", ir::printFunction(*Instr.M->main()).c_str());

  // Run and report per-path metrics.
  driver::RunPlan Plan;
  Plan.Workload = "examples/loop";
  Plan.Scale = 1000;
  Plan.Options = Options;
  Plan.Build = [] { return workloads::buildLoopModule(1000); };
  driver::OutcomePtr Run = driver::defaultDriver().run(std::move(Plan));
  assert(Run && Run->Result.Ok);
  const prof::FunctionPathProfile &Profile =
      Run->PathProfiles[M->main()->id()];

  std::printf("Measured per-path metrics:\n");
  TableWriter Table;
  Table.setHeader({"PathSum", "Freq", "Insts", "DC misses"});
  for (const prof::PathEntry &Entry : Profile.Paths)
    Table.addRow({std::to_string(Entry.PathSum), std::to_string(Entry.Freq),
                  std::to_string(Entry.Metric0),
                  std::to_string(Entry.Metric1)});
  std::printf("%s", Table.render().c_str());
  std::printf("\nWhole-run ground truth: %llu insts, %llu DC read misses\n",
              (unsigned long long)Run->total(hw::Event::Insts),
              (unsigned long long)Run->total(hw::Event::DCacheReadMiss));
  return 0;
}
