//===- bench/table2_perturbation.cpp - Table 2 ----------------------------------===//
//
// Regenerates Table 2: perturbation of hardware metrics from profiling.
// For each of the eight events, F is the ratio of the metric under flow
// sensitive profiling (intraprocedural paths) to the uninstrumented run,
// and C the same for context sensitive profiling. The simulator observes
// the uninstrumented ground truth for free, playing the role of the
// paper's sampled baseline.
//
//===----------------------------------------------------------------------===//

#include "Common.h"

using namespace pp;
using namespace pp::bench;
using prof::Mode;

int main() {
  std::printf("Table 2: perturbation of hardware metrics "
              "(instrumented / base)\n\n");

  const hw::Event Events[] = {
      hw::Event::Cycles,           hw::Event::Insts,
      hw::Event::DCacheReadMiss,   hw::Event::DCacheWriteMiss,
      hw::Event::ICacheMiss,       hw::Event::MispredictStall,
      hw::Event::StoreBufferStall, hw::Event::FpStall,
  };

  TableWriter Table;
  {
    std::vector<std::string> Header{"Benchmark"};
    for (hw::Event E : Events) {
      Header.push_back(std::string(hw::eventName(E)) + " F");
      Header.push_back("C");
    }
    Table.setHeader(Header);
  }
  SuiteAverager Averager;

  const std::vector<workloads::WorkloadSpec> &Suite = workloads::spec95Suite();
  struct Tickets {
    size_t Base, Flow, Ctx;
  };
  std::vector<Tickets> Declared;
  for (const workloads::WorkloadSpec &Spec : Suite)
    Declared.push_back({submitWorkload(Spec, Mode::None),
                        submitWorkload(Spec, Mode::FlowHw),
                        submitWorkload(Spec, Mode::ContextHw)});

  for (size_t Index = 0; Index != Suite.size(); ++Index) {
    const workloads::WorkloadSpec &Spec = Suite[Index];
    driver::OutcomePtr Base =
        getRun(Declared[Index].Base, Spec.Name, Mode::None);
    driver::OutcomePtr Flow =
        getRun(Declared[Index].Flow, Spec.Name, Mode::FlowHw);
    driver::OutcomePtr Ctx =
        getRun(Declared[Index].Ctx, Spec.Name, Mode::ContextHw);
    if (!Base || !Flow || !Ctx) {
      noteDegradedRow(Spec.Name);
      continue;
    }

    std::vector<std::string> Row{Spec.Name};
    std::vector<double> Values;
    for (hw::Event E : Events) {
      double BaseVal = double(Base->total(E));
      double FRatio = BaseVal == 0 ? 0 : double(Flow->total(E)) / BaseVal;
      double CRatio = BaseVal == 0 ? 0 : double(Ctx->total(E)) / BaseVal;
      Row.push_back(BaseVal == 0 ? "-" : formatString("%.2f", FRatio));
      Row.push_back(BaseVal == 0 ? "-" : formatString("%.2f", CRatio));
      Values.push_back(FRatio);
      Values.push_back(CRatio);
    }
    Table.addRow(Row);
    Averager.add(Spec.Name, Spec.IsFloat, Values);
  }

  auto AddAverage = [&](const char *Label, bool Int, bool Float) {
    std::vector<double> Avg = Averager.average(Int, Float);
    std::vector<std::string> Row{Label};
    for (double Value : Avg)
      Row.push_back(formatString("%.2f", Value));
    Table.addRow(Row);
  };
  Table.addSeparator();
  AddAverage("CINT95 Avg", true, false);
  AddAverage("CFP95 Avg", false, true);
  AddAverage("SPEC95 Avg", true, true);

  std::printf("%s", Table.render().c_str());
  std::printf(
      "\nPaper's shape: cycle and instruction counts inflate directly with\n"
      "instrumentation (F slightly above C for flow profiling's denser\n"
      "probes); cache and stall metrics sit near 1.0 with scattered\n"
      "outliers caused by conflict interactions with the profile tables.\n");
  return 0;
}
