//===- bench/table2_perturbation.cpp - Table 2 ----------------------------------===//
//
// Regenerates Table 2: perturbation of hardware metrics from profiling.
// For each of the eight events, F is the ratio of the metric under flow
// sensitive profiling (intraprocedural paths) to the uninstrumented run,
// and C the same for context sensitive profiling. The simulator observes
// the uninstrumented ground truth for free, playing the role of the
// paper's sampled baseline.
//
//===----------------------------------------------------------------------===//

#include "Common.h"

using namespace pp;
using namespace pp::bench;
using prof::Mode;

int main() {
  std::printf("Table 2: perturbation of hardware metrics "
              "(instrumented / base)\n\n");

  const hw::Event Events[] = {
      hw::Event::Cycles,           hw::Event::Insts,
      hw::Event::DCacheReadMiss,   hw::Event::DCacheWriteMiss,
      hw::Event::ICacheMiss,       hw::Event::MispredictStall,
      hw::Event::StoreBufferStall, hw::Event::FpStall,
  };

  TableWriter Table;
  {
    std::vector<std::string> Header{"Benchmark"};
    for (hw::Event E : Events) {
      Header.push_back(std::string(hw::eventName(E)) + " F");
      Header.push_back("C");
    }
    Table.setHeader(Header);
  }
  SuiteAverager Averager;

  for (const workloads::WorkloadSpec &Spec : workloads::spec95Suite()) {
    prof::RunOutcome Base = runWorkload(Spec, Mode::None);
    prof::RunOutcome Flow = runWorkload(Spec, Mode::FlowHw);
    prof::RunOutcome Ctx = runWorkload(Spec, Mode::ContextHw);

    std::vector<std::string> Row{Spec.Name};
    std::vector<double> Values;
    for (hw::Event E : Events) {
      double BaseVal = double(Base.total(E));
      double FRatio = BaseVal == 0 ? 0 : double(Flow.total(E)) / BaseVal;
      double CRatio = BaseVal == 0 ? 0 : double(Ctx.total(E)) / BaseVal;
      Row.push_back(BaseVal == 0 ? "-" : formatString("%.2f", FRatio));
      Row.push_back(BaseVal == 0 ? "-" : formatString("%.2f", CRatio));
      Values.push_back(FRatio);
      Values.push_back(CRatio);
    }
    Table.addRow(Row);
    Averager.add(Spec.Name, Spec.IsFloat, Values);
  }

  auto AddAverage = [&](const char *Label, bool Int, bool Float) {
    std::vector<double> Avg = Averager.average(Int, Float);
    std::vector<std::string> Row{Label};
    for (double Value : Avg)
      Row.push_back(formatString("%.2f", Value));
    Table.addRow(Row);
  };
  Table.addSeparator();
  AddAverage("CINT95 Avg", true, false);
  AddAverage("CFP95 Avg", false, true);
  AddAverage("SPEC95 Avg", true, true);

  std::printf("%s", Table.render().c_str());
  std::printf(
      "\nPaper's shape: cycle and instruction counts inflate directly with\n"
      "instrumentation (F slightly above C for flow profiling's denser\n"
      "probes); cache and stall metrics sit near 1.0 with scattered\n"
      "outliers caused by conflict interactions with the profile tables.\n");
  return 0;
}
