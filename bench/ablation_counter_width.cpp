//===- bench/ablation_counter_width.cpp - §3.3's overflow argument --------------===//
//
// The UltraSPARC's counters are 32 bits wide; a cycle counter wraps within
// seconds (2^32 cycles at 167 MHz is ~26 s). The paper's design measures
// short intraprocedural paths and accumulates into 64-bit memory, so the
// wrap never corrupts a measurement; a per-invocation entry/exit
// difference over a long-running procedure does wrap.
//
// To keep the demonstration inside a simulator budget, the cost model's
// divide latency is scaled up so the program accumulates > 2^32 cycles in
// about a million instructions; the wrap arithmetic is identical to a
// real multi-minute run.
//
//===----------------------------------------------------------------------===//

#include "driver/Driver.h"
#include "ir/IRBuilder.h"
#include "ir/Verifier.h"
#include "prof/Session.h"

#include <cinttypes>
#include <cstdio>

using namespace pp;
using namespace pp::ir;

namespace {

/// A long-running procedure: divide-heavy loop (each div costs DivCycles).
std::unique_ptr<Module> buildDivLoop(int64_t Iterations) {
  auto M = std::make_unique<Module>();
  Function *Main = M->addFunction("main", 0);
  BasicBlock *Entry = Main->addBlock("entry");
  BasicBlock *Head = Main->addBlock("head");
  BasicBlock *Body = Main->addBlock("body");
  BasicBlock *Done = Main->addBlock("done");
  IRBuilder IRB(Main, Entry);
  Reg I = IRB.movImm(0);
  Reg Acc = IRB.movImm(123456789);
  IRB.br(Head);
  IRB.setBlock(Head);
  Reg More = IRB.cmpLtImm(I, Iterations);
  IRB.condBr(More, Body, Done);
  IRB.setBlock(Body);
  Reg Q = IRB.divImm(Acc, 3);
  Reg Mixed = IRB.addImm(Q, 987654321);
  IRB.movRegInto(Acc, Mixed);
  Reg Next = IRB.addImm(I, 1);
  IRB.movRegInto(I, Next);
  IRB.br(Head);
  IRB.setBlock(Done);
  Reg Masked = IRB.andImm(Acc, 0xffff);
  IRB.ret(Masked);
  M->setMain(Main);
  verifyModuleOrDie(*M);
  return M;
}

} // namespace

int main() {
  std::printf("Ablation: 32-bit counter wrap vs per-path accumulation\n\n");

  auto M = buildDivLoop(200000);

  prof::SessionOptions Options;
  Options.Config.M = prof::Mode::FlowHw;
  Options.Config.Pic0 = hw::Event::Cycles;
  Options.Config.Pic1 = hw::Event::Insts;
  // Scale the divide so the run exceeds 2^32 cycles (the equivalent of a
  // ~30 s wall-clock run on the paper's 167 MHz machine).
  Options.MachineCfg.Cost.DivCycles = 40000;

  driver::RunPlan Plan;
  Plan.Workload = "bench/divloop";
  Plan.Scale = 200000;
  Plan.Options = Options;
  Plan.Build = [] { return buildDivLoop(200000); };
  driver::OutcomePtr Run = driver::defaultDriver().run(std::move(Plan));
  if (!Run || !Run->Result.Ok) {
    std::fprintf(stderr, "run failed: %s\n",
                 Run ? Run->Result.Error.c_str() : "no outcome");
    return 1;
  }

  uint64_t TrueCycles = Run->total(hw::Event::Cycles);
  uint64_t Wrapped = TrueCycles & 0xffffffffu;

  uint64_t PerPathCycles = 0;
  for (const prof::PathEntry &Entry :
       Run->PathProfiles[M->main()->id()].Paths)
    PerPathCycles += Entry.Metric0;

  std::printf("whole-run cycles (64-bit truth):     %20" PRIu64 "\n",
              TrueCycles);
  std::printf("a 32-bit entry/exit difference sees: %20" PRIu64
              "   (wrapped %" PRIu64 " times)\n",
              Wrapped, TrueCycles >> 32);
  std::printf("sum of per-path 64-bit accumulators: %20" PRIu64 "\n\n",
              PerPathCycles);

  if (TrueCycles >> 32 == 0) {
    std::fprintf(stderr, "expected the cycle count to exceed 2^32\n");
    return 1;
  }
  double Lost = double(TrueCycles - Wrapped) / double(TrueCycles);
  std::printf("measuring main() as one interval on 32-bit counters loses "
              "%.1f%% of its\ncycles to wrap; per-path measurement keeps "
              "every interval far below 2^32\n(the longest path here costs "
              "~%d cycles) and the 64-bit memory\naccumulators capture "
              "%.2f%% of all cycles (the remainder is entry/exit\ncode "
              "outside any path).\n",
              100.0 * Lost, 40000 + 20,
              100.0 * double(PerPathCycles) / double(TrueCycles));
  return 0;
}
