//===- bench/ablation_kbl.cpp - multi-iteration path profiling ablation --------===//
//
// Sweeps the k-BL window size (k = 1..4) over loop-heavy workloads and
// measures what the longer windows buy: how many distinct windows execute
// and how strongly the PIC1 metric concentrates on the hottest windows.
// Correlated iteration sequences (hit-after-miss, convergence tails) that
// k = 1 smears across separate acyclic paths collapse onto few windows,
// so concentration should not drop when k grows from 1 to 2. The
// pp.kbl-ladder workload overflows its window space at k >= 3 and pins
// the per-function fallback ladder on a real driver-cached run.
//
// Writes BENCH_kbl.json; with --check it exits non-zero unless top-10
// PIC1 concentration is no worse at k = 2 than at k = 1 on at least
// MinConcentrated workloads and the fallback ladder fired somewhere.
//
//===----------------------------------------------------------------------===//

#include "Common.h"

#include <algorithm>
#include <cstring>
#include <fstream>

using namespace pp;
using namespace pp::bench;
using prof::Mode;

namespace {

constexpr unsigned MaxK = 4;
constexpr size_t MinConcentrated = 3;
constexpr size_t TopN = 10;

/// The sweep set: the loop-heavy half of the shapes (hash probes,
/// interpreter dispatch, stencil sweeps) plus the ladder workload.
const char *SweepNames[] = {
    "099.go",     "124.m88ksim", "129.compress", "130.li",
    "132.ijpeg",  "102.swim",    "107.mgrid",    "pp.kbl-ladder",
};

const workloads::WorkloadSpec *findSpec(const std::string &Name) {
  for (const workloads::WorkloadSpec &Spec : workloads::spec95Suite())
    if (Spec.Name == Name)
      return &Spec;
  for (const workloads::WorkloadSpec &Spec : workloads::extraSuite())
    if (Spec.Name == Name)
      return &Spec;
  return nullptr;
}

size_t submitK(const std::string &Name, unsigned K) {
  driver::RunPlan Plan;
  Plan.Workload = Name;
  Plan.Scale = 1;
  Plan.Options.Config.M = Mode::FlowHw;
  Plan.Options.Config.K = K;
  return driver::defaultDriver().submit(std::move(Plan));
}

struct KRow {
  uint64_t Windows = 0;      // distinct executed windows, all functions
  uint64_t MultiSegment = 0; // windows spanning >= 2 iterations (k >= 2)
  double Top10Share = 0;     // share of PIC1 (or freq) on the 10 hottest
  unsigned Laddered = 0;     // functions where the numbering fell back
  bool Ok = false;
};

KRow measure(const driver::OutcomePtr &Run, unsigned K) {
  KRow Row;
  if (!Run)
    return Row;
  Row.Ok = true;

  // Pool every counted window across functions and rank by PIC1; when the
  // workload took no PIC1 events at all, rank by frequency instead so the
  // concentration is still defined.
  std::vector<uint64_t> Weights;
  uint64_t Total = 0, TotalFreq = 0;
  for (const prof::FunctionPathProfile &Profile : Run->PathProfiles) {
    if (!Profile.HasProfile)
      continue;
    Row.Windows += Profile.Paths.size();
    for (const prof::PathEntry &Entry : Profile.Paths) {
      Weights.push_back(Entry.Metric1);
      Total += Entry.Metric1;
      TotalFreq += Entry.Freq;
      Row.MultiSegment += Profile.KIters > 1;
    }
  }
  if (Total == 0) {
    Weights.clear();
    for (const prof::FunctionPathProfile &Profile : Run->PathProfiles) {
      if (!Profile.HasProfile)
        continue;
      for (const prof::PathEntry &Entry : Profile.Paths)
        Weights.push_back(Entry.Freq);
    }
    Total = TotalFreq;
  }
  std::sort(Weights.begin(), Weights.end(), std::greater<uint64_t>());
  uint64_t Top = 0;
  for (size_t Index = 0; Index != Weights.size() && Index != TopN; ++Index)
    Top += Weights[Index];
  Row.Top10Share = Total ? double(Top) / double(Total) : 0;

  for (const prof::FunctionInstrInfo &Info : Run->Instr.Functions)
    if (Info.HasPathProfile && Info.KIters < K)
      ++Row.Laddered;
  return Row;
}

} // namespace

int main(int Argc, char **Argv) {
  bool Check = false;
  for (int Index = 1; Index != Argc; ++Index)
    if (std::strcmp(Argv[Index], "--check") == 0)
      Check = true;

  std::printf("Ablation: multi-iteration (k-BL) path profiling, k = 1..%u\n\n",
              MaxK);

  std::vector<std::string> Names;
  std::vector<std::vector<size_t>> Tickets;
  for (const char *Name : SweepNames) {
    if (!findSpec(Name)) {
      std::fprintf(stderr, "unknown workload %s\n", Name);
      return 1;
    }
    std::vector<size_t> PerK;
    for (unsigned K = 1; K <= MaxK; ++K)
      PerK.push_back(submitK(Name, K));
    Names.push_back(Name);
    Tickets.push_back(std::move(PerK));
  }

  TableWriter Table;
  Table.setHeader({"Benchmark", "k", "Windows", "Multi-seg", "Top-10 PIC1",
                   "Laddered"});
  size_t Concentrated = 0, DegradedRows = 0;
  bool LadderFired = false;
  struct JsonRow {
    std::string Workload;
    unsigned K;
    KRow Row;
  };
  std::vector<JsonRow> JsonRows;

  for (size_t Index = 0; Index != Names.size(); ++Index) {
    double ShareK1 = -1, ShareK2 = -1;
    for (unsigned K = 1; K <= MaxK; ++K) {
      driver::OutcomePtr Run =
          getRun(Tickets[Index][K - 1], Names[Index], Mode::FlowHw);
      KRow Row = measure(Run, K);
      if (!Row.Ok) {
        noteDegradedRow(Names[Index] + " k=" + std::to_string(K));
        ++DegradedRows;
        continue;
      }
      if (K == 1)
        ShareK1 = Row.Top10Share;
      if (K == 2)
        ShareK2 = Row.Top10Share;
      LadderFired |= Row.Laddered > 0;
      Table.addRow({K == 1 ? Names[Index] : "", std::to_string(K),
                    std::to_string(Row.Windows),
                    std::to_string(Row.MultiSegment),
                    formatString("%.1f%%", 100 * Row.Top10Share),
                    std::to_string(Row.Laddered)});
      JsonRows.push_back({Names[Index], K, Row});
    }
    Table.addSeparator();
    if (ShareK1 >= 0 && ShareK2 >= 0 && ShareK2 + 1e-9 >= ShareK1)
      ++Concentrated;
  }
  std::printf("%s", Table.render().c_str());
  std::printf("\nLonger windows refine paths, so window counts grow with k "
              "while the hot\nmetric mass concentrates on correlated "
              "iteration sequences; pp.kbl-ladder\noverflows 2^62 windows "
              "at k >= 3 and exercises the fallback ladder.\n");

  std::ofstream Json("BENCH_kbl.json");
  Json << "{\n  \"bench\": \"ablation_kbl\",\n  \"max_k\": " << MaxK
       << ",\n  \"rows\": [\n";
  for (size_t Index = 0; Index != JsonRows.size(); ++Index) {
    const JsonRow &R = JsonRows[Index];
    char Buf[256];
    std::snprintf(Buf, sizeof(Buf),
                  "    {\"workload\": \"%s\", \"k\": %u, \"windows\": %llu, "
                  "\"multi_segment\": %llu, \"top10_pic1_share\": %.4f, "
                  "\"laddered\": %u}%s\n",
                  R.Workload.c_str(), R.K, (unsigned long long)R.Row.Windows,
                  (unsigned long long)R.Row.MultiSegment, R.Row.Top10Share,
                  R.Row.Laddered,
                  Index + 1 == JsonRows.size() ? "" : ",");
    Json << Buf;
  }
  Json << "  ],\n  \"concentrated\": " << Concentrated
       << ",\n  \"min_concentrated\": " << MinConcentrated
       << ",\n  \"ladder_fired\": " << (LadderFired ? "true" : "false")
       << "\n}\n";
  std::printf("wrote BENCH_kbl.json (%zu/%zu workloads held concentration "
              "k=1 -> k=2, ladder %s)\n",
              Concentrated, Names.size(), LadderFired ? "fired" : "idle");

  if (Check) {
    if (DegradedRows) {
      std::fprintf(stderr, "ablation_kbl: %zu runs failed\n", DegradedRows);
      return 1;
    }
    if (Concentrated < MinConcentrated) {
      std::fprintf(stderr,
                   "ablation_kbl: concentration held on %zu workloads "
                   "(need %zu) — longer windows no longer pay\n",
                   Concentrated, MinConcentrated);
      return 1;
    }
    if (!LadderFired) {
      std::fprintf(stderr, "ablation_kbl: the overflow fallback ladder never "
                           "fired on a real workload\n");
      return 1;
    }
  }
  return 0;
}
