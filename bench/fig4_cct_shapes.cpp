//===- bench/fig4_cct_shapes.cpp - Figures 4, 5, 6, 7 --------------------------===//
//
// Regenerates the calling-context figures: the DCT / DCG / CCT triple of
// Figure 4, the recursive variant of Figure 5 (backedge in the CCT), and
// the CallRecord layout of Figures 6/7.
//
//===----------------------------------------------------------------------===//

#include "cct/Export.h"
#include "driver/Driver.h"
#include "prof/Oracle.h"
#include "prof/Session.h"
#include "workloads/Examples.h"

#include <cassert>
#include <cstdio>

using namespace pp;

static void report(const char *Title, const char *Tag,
                   std::unique_ptr<ir::Module> (*Build)()) {
  std::unique_ptr<ir::Module> Owned = Build();
  ir::Module &M = *Owned;
  std::printf("%s\n", Title);
  for (size_t Dash = 0; Dash != 60; ++Dash)
    std::printf("=");
  std::printf("\n");

  // Oracle run for the DCT/DCG.
  hw::Machine Machine;
  prof::OracleProfiler Oracle(M);
  vm::Vm VM(M, Machine);
  VM.setTracer(&Oracle);
  vm::RunResult Result = VM.run();
  assert(Result.Ok);
  (void)Result;

  std::printf("(a) dynamic call tree: %zu activations, %zu distinct "
              "contexts\n",
              Oracle.dct().numActivations(),
              Oracle.dct().numDistinctContexts());
  std::printf("(b) dynamic call graph: %zu procedures, %zu edges\n",
              Oracle.dcg().numProcs(), Oracle.dcg().numEdges());

  driver::RunPlan Plan;
  Plan.Workload = Tag;
  Plan.Options.Config.M = prof::Mode::Context;
  Plan.Build = [Build] { return Build(); };
  driver::OutcomePtr Run = driver::defaultDriver().run(std::move(Plan));
  assert(Run && Run->Result.Ok && Run->Tree);
  cct::CctStats Stats = Run->Tree->computeStats();
  std::printf("(c) calling context tree: %zu records (root included), "
              "max depth %llu, %llu recursion backedges\n\n",
              Run->Tree->numRecords(), (unsigned long long)Stats.MaxDepth,
              (unsigned long long)Stats.BackedgeSlots);
  std::printf("%s\n", cct::exportDot(*Run->Tree).c_str());
}

int main() {
  report("Figure 4: M calls A and D; A->B->C; D->C (C keeps two contexts)",
         "examples/fig4", workloads::buildFig4Module);
  report("Figure 5: recursive A<->B (collapsed onto ancestor records)",
         "examples/fig5", workloads::buildFig5Module);

  // Figures 6/7: the record layout.
  std::printf("Figures 6/7: CallRecord layout in the CCT heap\n");
  for (size_t Dash = 0; Dash != 60; ++Dash)
    std::printf("=");
  std::printf("\n");
  driver::RunPlan Plan;
  Plan.Workload = "examples/fig4";
  Plan.Options.Config.M = prof::Mode::Context;
  Plan.Build = [] { return workloads::buildFig4Module(); };
  driver::OutcomePtr Run = driver::defaultDriver().run(std::move(Plan));
  assert(Run && Run->Result.Ok);
  std::printf("record := { ID(8) | parent(8) | metrics[3]x8 | "
              "children[sites]x8 }\n\n");
  for (const auto &R : Run->Tree->records()) {
    std::string Name = R->procId() == cct::RootProcId
                           ? "T"
                           : Run->Tree->procDesc(R->procId()).Name;
    std::printf("  %-4s at 0x%llx  (%llu bytes, %u slots, %llu calls)\n",
                Name.c_str(), (unsigned long long)R->addr(),
                (unsigned long long)Run->Tree->recordBytes(R->procId()),
                R->numSlots(), (unsigned long long)R->Metrics[0]);
  }
  std::printf("\nCCT heap bytes: %llu\n",
              (unsigned long long)Run->Tree->heapBytes());

  // Program-exit serialisation round trip ("writes the heap to a file").
  std::vector<uint8_t> Bytes = cct::serialize(*Run->Tree);
  std::vector<cct::LoadedRecord> Loaded;
  bool LoadedOk = cct::deserialize(Bytes, Loaded);
  assert(LoadedOk && Loaded.size() == Run->Tree->numRecords());
  (void)LoadedOk;
  std::printf("serialised profile: %zu bytes, reloads to %zu records\n",
              Bytes.size(), Loaded.size());
  return 0;
}
