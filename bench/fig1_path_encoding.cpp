//===- bench/fig1_path_encoding.cpp - Figures 1 and 2 -------------------------===//
//
// Regenerates Figure 1: the Ball-Larus edge labelling of the six-path
// example CFG, the path/sum table of Figure 1(b), and the increment
// placements of the simple (1(c)) and optimized (1(d)) instrumentation.
// Also prints the Figure 2 edge-labelling rule at a three-successor vertex.
//
//===----------------------------------------------------------------------===//

#include "bl/InstrumentationPlan.h"
#include "bl/PathNumbering.h"
#include "support/TableWriter.h"
#include "workloads/Examples.h"

#include <cassert>
#include <cstdio>

using namespace pp;

int main() {
  auto M = workloads::buildFig1Module();
  const ir::Function &F = *M->findFunction("fig1");
  cfg::Cfg G(F);
  bl::PathNumbering PN(G);
  assert(PN.valid());

  std::printf("Figure 1: path profiling edge labelling and instrumentation\n");
  std::printf("============================================================\n\n");

  std::printf("(a) NP(v), the number of paths from v to EXIT:\n");
  for (unsigned Node = 0; Node != G.numNodes(); ++Node) {
    const char *Name =
        Node == G.exitNode() ? "EXIT" : G.block(Node)->name().c_str();
    std::printf("    NP(%s) = %llu\n", Name,
                (unsigned long long)PN.numPathsFrom(Node));
  }

  std::printf("\n    Edge values Val(e):\n");
  for (const bl::TEdge &E : PN.transformedEdges()) {
    const char *From =
        E.From == G.exitNode() ? "EXIT" : G.block(E.From)->name().c_str();
    const char *To =
        E.To == G.exitNode() ? "EXIT" : G.block(E.To)->name().c_str();
    std::printf("    Val(%s -> %s) = %llu\n", From, To,
                (unsigned long long)E.Val);
  }

  std::printf("\n(b) the six paths and their path sums:\n");
  TableWriter Table;
  Table.setHeader({"Path", "Encoding"});
  for (uint64_t Sum = 0; Sum != PN.numPaths(); ++Sum) {
    bl::RegeneratedPath Path = PN.regenerate(Sum);
    std::string Name;
    for (unsigned Node : Path.Nodes)
      Name += G.block(Node)->name();
    Table.addRow({Name, std::to_string(Sum)});
  }
  std::printf("%s", Table.render().c_str());

  // Expected: exactly the paper's table.
  assert(PN.numPaths() == 6);

  auto PrintPlan = [&](bool Optimized) {
    bl::PlanOptions Options;
    Options.FoldFinalValues = Optimized;
    bl::PathPlan Plan = bl::buildPathPlan(PN, Options);
    std::printf("    increments (r += v):\n");
    for (const bl::EdgeIncrement &Incr : Plan.Increments) {
      const cfg::Edge &E = G.edge(Incr.CfgEdgeId);
      const char *From = G.block(E.From)->name().c_str();
      const char *To =
          E.To == G.exitNode() ? "EXIT" : G.block(E.To)->name().c_str();
      std::printf("      on %s -> %s: r += %llu\n", From, To,
                  (unsigned long long)Incr.Value);
    }
    for (const bl::ExitCommit &Commit : Plan.ExitCommits)
      std::printf("    commit in %s: count[r%s]++\n",
                  G.block(Commit.Node)->name().c_str(),
                  Commit.FoldValue
                      ? (" + " + std::to_string(Commit.FoldValue)).c_str()
                      : "");
  };
  std::printf("\n(c) simple instrumentation (r = 0 at entry):\n");
  PrintPlan(false);
  std::printf("\n(d) optimized instrumentation (final value folded into the "
              "commit):\n");
  PrintPlan(true);

  std::printf("\nFigure 2: the labelling rule at a vertex v with successors "
              "w1..w3\n");
  std::printf("==================================================="
              "=============\n");
  std::printf("    Val(v -> w_i) = sum over j < i of NP(w_j):\n");
  std::printf("    paths from w1 get sums [0, NP(w1)), from w2 get\n");
  std::printf("    [NP(w1), NP(w1)+NP(w2)), and so on -- verified for every\n");
  std::printf("    vertex above (path sums are unique and compact by the\n");
  std::printf("    property tests in tests/PathNumberingTest.cpp).\n");
  return 0;
}
