//===- bench/table1_overhead.cpp - Table 1 -------------------------------------===//
//
// Regenerates Table 1: the run-time overhead of profiling. For every
// workload: the uninstrumented base "time" (simulated cycles at 167 MHz),
// then time and overhead-vs-base for Flow and HW, Context and HW, and
// Context and Flow. The paper reports average overheads of roughly 1.8x,
// 1.6x and 1.7x over SPEC95, with CINT heavier than CFP.
//
//===----------------------------------------------------------------------===//

#include "Common.h"

using namespace pp;
using namespace pp::bench;
using prof::Mode;

int main() {
  std::printf("Table 1: overhead of profiling (simulated seconds at "
              "167 MHz)\n\n");

  TableWriter Table;
  Table.setHeader({"Benchmark", "Base", "Flow+HW", "x base", "Ctx+HW",
                   "x base", "Ctx+Flow", "x base"});
  SuiteAverager Averager;

  // Declare the whole run set, then collect in submission order.
  const std::vector<workloads::WorkloadSpec> &Suite = workloads::spec95Suite();
  struct Tickets {
    size_t Base, FlowHw, CtxHw, CtxFlow;
  };
  std::vector<Tickets> Declared;
  for (const workloads::WorkloadSpec &Spec : Suite)
    Declared.push_back({submitWorkload(Spec, Mode::None),
                        submitWorkload(Spec, Mode::FlowHw),
                        submitWorkload(Spec, Mode::ContextHw),
                        submitWorkload(Spec, Mode::ContextFlow)});

  for (size_t Index = 0; Index != Suite.size(); ++Index) {
    const workloads::WorkloadSpec &Spec = Suite[Index];
    driver::OutcomePtr Base =
        getRun(Declared[Index].Base, Spec.Name, Mode::None);
    driver::OutcomePtr FlowHw =
        getRun(Declared[Index].FlowHw, Spec.Name, Mode::FlowHw);
    driver::OutcomePtr CtxHw =
        getRun(Declared[Index].CtxHw, Spec.Name, Mode::ContextHw);
    driver::OutcomePtr CtxFlow =
        getRun(Declared[Index].CtxFlow, Spec.Name, Mode::ContextFlow);
    if (!Base || !FlowHw || !CtxHw || !CtxFlow) {
      noteDegradedRow(Spec.Name);
      continue;
    }

    double BaseSecs = simSeconds(Base->total(hw::Event::Cycles));
    double FlowSecs = simSeconds(FlowHw->total(hw::Event::Cycles));
    double CtxSecs = simSeconds(CtxHw->total(hw::Event::Cycles));
    double CfSecs = simSeconds(CtxFlow->total(hw::Event::Cycles));

    Table.addRow({Spec.Name, formatString("%.4f", BaseSecs),
                  formatString("%.4f", FlowSecs),
                  formatString("%.1f", FlowSecs / BaseSecs),
                  formatString("%.4f", CtxSecs),
                  formatString("%.1f", CtxSecs / BaseSecs),
                  formatString("%.4f", CfSecs),
                  formatString("%.1f", CfSecs / BaseSecs)});
    Averager.add(Spec.Name, Spec.IsFloat,
                 {BaseSecs, FlowSecs, FlowSecs / BaseSecs, CtxSecs,
                  CtxSecs / BaseSecs, CfSecs, CfSecs / BaseSecs});
  }

  auto AddAverage = [&Table, &Averager](const char *Label, bool Int,
                                        bool Float) {
    std::vector<double> Avg = Averager.average(Int, Float);
    Table.addRow({Label, formatString("%.4f", Avg[0]),
                  formatString("%.4f", Avg[1]), formatString("%.1f", Avg[2]),
                  formatString("%.4f", Avg[3]), formatString("%.1f", Avg[4]),
                  formatString("%.4f", Avg[5]),
                  formatString("%.1f", Avg[6])});
  };
  Table.addSeparator();
  AddAverage("CINT95 Avg", true, false);
  AddAverage("CFP95 Avg", false, true);
  AddAverage("SPEC95 Avg", true, true);

  std::printf("%s", Table.render().c_str());
  std::printf("\nPaper's shape: Flow+HW ~1.8x, Context+HW ~1.6x, "
              "Context+Flow ~1.7x on average;\nCINT overheads exceed CFP "
              "(integer codes branch and call more per instruction).\n");
  return 0;
}
