//===- bench/micro_primitives.cpp - host-time microbenchmarks -------------------===//
//
// google-benchmark measurements of the library's primitives: path
// numbering construction, path regeneration, CCT enter on the three slot
// kinds, cache simulation, and end-to-end simulated execution throughput.
//
//===----------------------------------------------------------------------===//

#include "bl/PathNumbering.h"
#include "cct/CallingContextTree.h"
#include "hw/CacheSim.h"
#include "prof/Session.h"
#include "workloads/Spec.h"

#include <benchmark/benchmark.h>

using namespace pp;

static void BM_PathNumberingConstruction(benchmark::State &State) {
  auto M = workloads::buildGcc(1);
  const ir::Function &F = *M->findFunction("main");
  for (auto _ : State) {
    cfg::Cfg G(F);
    bl::PathNumbering PN(G);
    benchmark::DoNotOptimize(PN.numPaths());
  }
}
BENCHMARK(BM_PathNumberingConstruction);

static void BM_PathRegeneration(benchmark::State &State) {
  auto M = workloads::buildGo(1);
  const ir::Function &F = *M->findFunction("eval_point");
  cfg::Cfg G(F);
  bl::PathNumbering PN(G);
  uint64_t Sum = 0;
  for (auto _ : State) {
    bl::RegeneratedPath Path = PN.regenerate(Sum);
    benchmark::DoNotOptimize(Path.Nodes.data());
    Sum = (Sum + 1) % PN.numPaths();
  }
}
BENCHMARK(BM_PathRegeneration);

static void BM_CctEnterResolvedSlot(benchmark::State &State) {
  std::vector<cct::ProcDesc> Procs(2);
  Procs[0] = {"caller", 1, {0}, 0};
  Procs[1] = {"callee", 0, {}, 0};
  cct::CallingContextTree Tree(Procs, 1);
  cct::CallRecord *Caller = Tree.enter(Tree.root(), 0, 0);
  Tree.enter(Caller, 0, 1); // resolve the slot
  for (auto _ : State)
    benchmark::DoNotOptimize(Tree.enter(Caller, 0, 1));
}
BENCHMARK(BM_CctEnterResolvedSlot);

static void BM_CctEnterIndirectList(benchmark::State &State) {
  std::vector<cct::ProcDesc> Procs(4);
  Procs[0] = {"caller", 1, {1}, 0}; // one indirect site
  Procs[1] = {"x", 0, {}, 0};
  Procs[2] = {"y", 0, {}, 0};
  Procs[3] = {"z", 0, {}, 0};
  cct::CallingContextTree Tree(Procs, 1);
  cct::CallRecord *Caller = Tree.enter(Tree.root(), 0, 0);
  cct::ProcId Target = 1;
  for (auto _ : State) {
    benchmark::DoNotOptimize(Tree.enter(Caller, 0, Target));
    Target = Target == 3 ? 1 : Target + 1; // rotate: worst-case list churn
  }
}
BENCHMARK(BM_CctEnterIndirectList);

static void BM_CacheSimAccess(benchmark::State &State) {
  hw::CacheSim Cache(hw::dcacheDefault());
  uint64_t Addr = 0;
  for (auto _ : State) {
    benchmark::DoNotOptimize(Cache.access(Addr, 8));
    Addr += 104; // mixes hits and misses
  }
}
BENCHMARK(BM_CacheSimAccess);

static void BM_SimulatedExecution(benchmark::State &State) {
  // End-to-end interpreter throughput (simulated instructions/second).
  auto M = workloads::buildCompress(1);
  uint64_t Insts = 0;
  for (auto _ : State) {
    auto Clone = M->clone();
    hw::Machine Machine;
    vm::Vm VM(*Clone, Machine);
    vm::RunResult Result = VM.run();
    Insts += Result.ExecutedInsts;
  }
  State.counters["sim_insts/s"] =
      benchmark::Counter(double(Insts), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulatedExecution)->Unit(benchmark::kMillisecond);

static void BM_InstrumentationEditTime(benchmark::State &State) {
  // How long the EEL-role editor takes on the biggest workload.
  auto M = workloads::buildGcc(1);
  prof::ProfileConfig Config;
  Config.M = prof::Mode::ContextFlow;
  for (auto _ : State) {
    prof::Instrumented Instr = prof::instrument(*M, Config);
    benchmark::DoNotOptimize(Instr.M.get());
  }
  State.SetLabel("gcc-like module, ContextFlow");
}
BENCHMARK(BM_InstrumentationEditTime)->Unit(benchmark::kMicrosecond);

BENCHMARK_MAIN();
