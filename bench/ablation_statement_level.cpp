//===- bench/ablation_statement_level.cpp - §6.4.3's argument -------------------===//
//
// "Collecting and reporting cache miss measurements at the statement
// level ... does not alleviate this problem. In these benchmarks, the
// basic blocks along hot paths execute along an average of 16 different
// paths." This bench computes the blocks-to-paths ambiguity over the
// suite: if a block lies on many executed paths, block-level (statement-
// level) miss counts cannot say which behaviour caused the misses.
//
//===----------------------------------------------------------------------===//

#include "Common.h"

#include "analysis/BlockPaths.h"

using namespace pp;
using namespace pp::bench;
using prof::Mode;

int main() {
  std::printf("Ablation: how many executed paths run through each "
              "hot-path block\n(statement-level attribution cannot tell "
              "them apart)\n\n");

  TableWriter Table;
  Table.setHeader({"Benchmark", "HotBlocks", "AvgPaths/Block",
                   "MaxPaths/Block"});
  SuiteAverager Averager;

  const std::vector<workloads::WorkloadSpec> &Suite = workloads::spec95Suite();
  std::vector<size_t> Declared;
  for (const workloads::WorkloadSpec &Spec : Suite)
    Declared.push_back(submitWorkload(Spec, Mode::FlowHw));

  for (size_t Index = 0; Index != Suite.size(); ++Index) {
    const workloads::WorkloadSpec &Spec = Suite[Index];
    // The block-to-path ambiguity is computed against the uninstrumented
    // module's CFGs, so build it locally.
    auto Module = Spec.Build(1);
    driver::OutcomePtr Run = driver::defaultDriver().get(Declared[Index]);
    if (!Run || !Run->Result.Ok) {
      std::fprintf(stderr, "%s failed\n", Spec.Name.c_str());
      noteDegradedRow(Spec.Name);
      continue;
    }
    std::vector<analysis::PathRecord> Records =
        analysis::collectPathRecords(*Run);
    analysis::HotPathAnalysis A = analysis::analyzeHotPaths(Records, 0.01);
    analysis::BlockPathStats Stats =
        analysis::computeBlockPathStats(*Module, Records, A);

    Table.addRow({Spec.Name, std::to_string(Stats.HotPathBlocks),
                  formatString("%.1f", Stats.AvgPathsPerBlock),
                  std::to_string(Stats.MaxPathsPerBlock)});
    Averager.add(Spec.Name, Spec.IsFloat,
                 {Stats.AvgPathsPerBlock, double(Stats.MaxPathsPerBlock)});
  }
  Table.addSeparator();
  std::vector<double> IntAvg = Averager.average(true, false);
  std::vector<double> FpAvg = Averager.average(false, true);
  std::vector<double> AllAvg = Averager.average(true, true);
  Table.addRow({"CINT95 Avg", "", formatString("%.1f", IntAvg[0]),
                formatString("%.1f", IntAvg[1])});
  Table.addRow({"CFP95 Avg", "", formatString("%.1f", FpAvg[0]),
                formatString("%.1f", FpAvg[1])});
  Table.addRow({"SPEC95 Avg", "", formatString("%.1f", AllAvg[0]),
                formatString("%.1f", AllAvg[1])});
  std::printf("%s", Table.render().c_str());
  std::printf("\nPaper's shape: blocks on hot paths are shared by many "
              "executed paths\n(the paper reports an average of 16), so a "
              "block-level miss count is\nambiguous where a path-level one "
              "is precise.\n");
  return 0;
}
