//===- bench/ablation_cct_sites.cpp - §4.1's site-distinction trade-off ---------===//
//
// "A space-precision trade-off in a CCT is whether to distinguish calls to
// the same procedure from different call sites ... Distinguishing call
// sites requires more space" (the paper measures 2-3x). This bench builds
// both variants for every workload and compares node counts and heap
// bytes.
//
//===----------------------------------------------------------------------===//

#include "Common.h"

using namespace pp;
using namespace pp::bench;
using prof::Mode;

int main() {
  std::printf("Ablation: call-site-distinguished CCT vs per-procedure "
              "aggregation\n\n");

  TableWriter Table;
  Table.setHeader({"Benchmark", "Nodes/site", "Nodes/proc", "Bytes/site",
                   "Bytes/proc", "Size ratio"});
  SuiteAverager Averager;

  const std::vector<workloads::WorkloadSpec> &Suite = workloads::spec95Suite();
  struct Tickets {
    size_t BySite, ByProc;
  };
  std::vector<Tickets> Declared;
  for (const workloads::WorkloadSpec &Spec : Suite) {
    driver::RunPlan SitePlan;
    SitePlan.Workload = Spec.Name;
    SitePlan.Options.Config.M = Mode::Context;

    driver::RunPlan ProcPlan;
    ProcPlan.Workload = Spec.Name;
    ProcPlan.Options.Config.M = Mode::Context;
    ProcPlan.Options.Config.DistinguishCallSites = false;

    Declared.push_back(
        {driver::defaultDriver().submit(std::move(SitePlan)),
         driver::defaultDriver().submit(std::move(ProcPlan))});
  }

  for (size_t Index = 0; Index != Suite.size(); ++Index) {
    const workloads::WorkloadSpec &Spec = Suite[Index];
    driver::OutcomePtr SiteRun =
        driver::defaultDriver().get(Declared[Index].BySite);
    driver::OutcomePtr ProcRun =
        driver::defaultDriver().get(Declared[Index].ByProc);

    if (!SiteRun || !SiteRun->Result.Ok || !ProcRun ||
        !ProcRun->Result.Ok || !SiteRun->Tree || !ProcRun->Tree) {
      std::fprintf(stderr, "%s failed\n", Spec.Name.c_str());
      noteDegradedRow(Spec.Name);
      continue;
    }
    double Ratio = double(SiteRun->Tree->heapBytes()) /
                   double(ProcRun->Tree->heapBytes());
    Table.addRow({Spec.Name, std::to_string(SiteRun->Tree->numRecords()),
                  std::to_string(ProcRun->Tree->numRecords()),
                  std::to_string(SiteRun->Tree->heapBytes()),
                  std::to_string(ProcRun->Tree->heapBytes()),
                  formatString("%.2f", Ratio)});
    Averager.add(Spec.Name, Spec.IsFloat, {Ratio});
  }
  Table.addSeparator();
  Table.addRow({"CINT95 Avg", "", "", "", "",
                formatString("%.2f", Averager.average(true, false)[0])});
  Table.addRow({"CFP95 Avg", "", "", "", "",
                formatString("%.2f", Averager.average(false, true)[0])});
  Table.addRow({"SPEC95 Avg", "", "", "", "",
                formatString("%.2f", Averager.average(true, true)[0])});
  std::printf("%s", Table.render().c_str());
  std::printf("\nPaper's shape: distinguishing call sites grows the CCT "
              "(the paper\nreports 2-3x for the profile data structure) in "
              "exchange for the\nper-site precision path profiling needs. "
              "The growth concentrates in\nthe call-heavy integer codes "
              "whose procedures call the same helpers\nfrom many sites; "
              "the single-call-site FP loop nests are unaffected\n(their "
              "per-procedure records are marginally smaller, ratio just "
              "under 1).\n");
  return 0;
}
