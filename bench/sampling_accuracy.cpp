//===- bench/sampling_accuracy.cpp - refute/refine the sampling engine ---------===//
//
// The refutation harness for the overflow-sampling acquisition engine
// (CounterPoint's methodology: state what the cheap mechanism should
// reproduce, measure where it does not). For every suite workload and a
// ladder of sampling periods, the bench runs Flow-and-HW twice — exact
// instrumentation and counter-overflow sampling on PIC1 (D-cache read
// misses, the metric Tables 4 and 5 rank by) — and scores the sampled
// profile against the exact one:
//
//   * top-path overlap: how much of the exact top-20 hot-path set
//     (Table 4's ranking) the sampled table recovers, and
//   * procedure rank correlation: Spearman's rho between the exact and
//     sampled per-procedure miss rankings (Table 5's ordering).
//
// Both runs go through the shared driver, so the matrix is cached and
// deterministic (seed 0 = fixed period: trap points depend only on event
// totals). Writes BENCH_sampling_accuracy.json; with --check it exits
// non-zero if the li workload's rank correlation at the smallest period
// drops below the committed floor — the regression tripwire CI runs.
//
//===----------------------------------------------------------------------===//

#include "Common.h"

#include "analysis/HotPaths.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>
#include <map>
#include <set>

using namespace pp;
using namespace pp::bench;

namespace {

/// The period ladder. Suite workloads at scale 1 take a few thousand
/// D-cache read misses, so 64 samples densely, 1024 sparsely — the span
/// where accuracy visibly decays, which is the point of the harness.
const uint64_t Periods[] = {64, 256, 1024};

/// The committed floor for 130.li's procedure rank correlation at the
/// smallest period (--check / the CI job). Measured 0.8660 at period 64
/// (deterministic: fixed period, simulated machine); the floor leaves
/// headroom for legitimate cost-model drift while still catching
/// attribution bugs, which in practice invert or zero the ranking.
constexpr double LiRankCorrFloor = 0.80;
constexpr const char *LiWorkload = "130.li";

size_t submitSampled(const workloads::WorkloadSpec &Spec, uint64_t Period) {
  driver::RunPlan Plan;
  Plan.Workload = Spec.Name;
  Plan.Scale = 1;
  Plan.Options.Config.M = prof::Mode::FlowHw;
  Plan.Options.Acq.Kind = prof::Acquisition::Overflow;
  Plan.Options.Acq.Pic = 1; // sample the miss counter the tables rank by
  Plan.Options.Acq.Period = Period;
  Plan.Options.Acq.Seed = 0; // fixed period: fully deterministic matrix
  return driver::defaultDriver().submit(std::move(Plan));
}

using PathKey = std::pair<unsigned, uint64_t>; // (function, path sum)

/// The top-\p K paths by misses, deterministically tie-broken.
std::set<PathKey> topPaths(const std::vector<analysis::PathRecord> &Records,
                           size_t K) {
  std::vector<const analysis::PathRecord *> Sorted;
  for (const analysis::PathRecord &Record : Records)
    if (Record.Misses)
      Sorted.push_back(&Record);
  std::sort(Sorted.begin(), Sorted.end(),
            [](const analysis::PathRecord *A, const analysis::PathRecord *B) {
              if (A->Misses != B->Misses)
                return A->Misses > B->Misses;
              if (A->FuncId != B->FuncId)
                return A->FuncId < B->FuncId;
              return A->PathSum < B->PathSum;
            });
  std::set<PathKey> Top;
  for (size_t Index = 0; Index != Sorted.size() && Index != K; ++Index)
    Top.insert({Sorted[Index]->FuncId, Sorted[Index]->PathSum});
  return Top;
}

/// Average-rank vector (ties share their mean rank) for Spearman's rho.
std::vector<double> ranksOf(const std::vector<uint64_t> &Values) {
  size_t N = Values.size();
  std::vector<size_t> Order(N);
  for (size_t Index = 0; Index != N; ++Index)
    Order[Index] = Index;
  std::sort(Order.begin(), Order.end(), [&Values](size_t A, size_t B) {
    return Values[A] > Values[B];
  });
  std::vector<double> Ranks(N);
  for (size_t Index = 0; Index != N;) {
    size_t End = Index;
    while (End != N && Values[Order[End]] == Values[Order[Index]])
      ++End;
    double Mean = (double(Index) + double(End - 1)) / 2.0 + 1.0;
    for (size_t Tied = Index; Tied != End; ++Tied)
      Ranks[Order[Tied]] = Mean;
    Index = End;
  }
  return Ranks;
}

/// Spearman's rho between two per-procedure weight maps over the union
/// of their keys (a procedure one side never saw ranks last on it).
double spearman(const std::map<unsigned, uint64_t> &A,
                const std::map<unsigned, uint64_t> &B) {
  std::set<unsigned> Keys;
  for (const auto &[Id, W] : A)
    Keys.insert(Id);
  for (const auto &[Id, W] : B)
    Keys.insert(Id);
  size_t N = Keys.size();
  if (N < 2)
    return 1.0;
  std::vector<uint64_t> VA, VB;
  for (unsigned Id : Keys) {
    auto ItA = A.find(Id), ItB = B.find(Id);
    VA.push_back(ItA == A.end() ? 0 : ItA->second);
    VB.push_back(ItB == B.end() ? 0 : ItB->second);
  }
  std::vector<double> RA = ranksOf(VA), RB = ranksOf(VB);
  double MeanRank = (double(N) + 1.0) / 2.0;
  double Cov = 0, VarA = 0, VarB = 0;
  for (size_t Index = 0; Index != N; ++Index) {
    double DA = RA[Index] - MeanRank, DB = RB[Index] - MeanRank;
    Cov += DA * DB;
    VarA += DA * DA;
    VarB += DB * DB;
  }
  if (VarA == 0 || VarB == 0)
    return 0.0; // a constant side (e.g. zero samples) carries no ranking
  return Cov / std::sqrt(VarA * VarB);
}

std::map<unsigned, uint64_t>
procMisses(const std::vector<analysis::PathRecord> &Records) {
  std::map<unsigned, uint64_t> Weights;
  for (const analysis::ProcRecord &Proc :
       analysis::aggregateByProcedure(Records))
    if (Proc.Misses)
      Weights[Proc.FuncId] = Proc.Misses;
  return Weights;
}

struct Row {
  std::string Workload;
  uint64_t Period = 0;
  uint64_t Traps = 0;
  uint64_t Samples = 0;
  size_t PathsExact = 0;
  size_t PathsSampled = 0;
  double Overlap = 0;
  double RankCorr = 0;
};

} // namespace

int main(int Argc, char **Argv) {
  bool Check = false;
  for (int Index = 1; Index != Argc; ++Index) {
    if (std::strcmp(Argv[Index], "--check") == 0) {
      Check = true;
    } else {
      std::fprintf(stderr, "sampling_accuracy: unknown option '%s'\n",
                   Argv[Index]);
      return 1;
    }
  }

  std::printf("Sampling accuracy: overflow acquisition vs exact Tables 4-5\n"
              "(PIC1 = D-cache read misses sampled; overlap of the exact "
              "top-20 paths,\nSpearman rho of the per-procedure miss "
              "ranking)\n\n");

  const std::vector<workloads::WorkloadSpec> &Suite = workloads::spec95Suite();
  std::vector<size_t> ExactTickets;
  std::vector<std::vector<size_t>> SampledTickets;
  for (const workloads::WorkloadSpec &Spec : Suite) {
    ExactTickets.push_back(submitWorkload(Spec, prof::Mode::FlowHw));
    SampledTickets.emplace_back();
    for (uint64_t Period : Periods)
      SampledTickets.back().push_back(submitSampled(Spec, Period));
  }

  std::vector<Row> Rows;
  double LiSmallestPeriodCorr = -2.0;
  TableWriter Table;
  Table.setHeader({"Benchmark", "Period", "Samples", "Paths(ex/sm)",
                   "Top20 overlap", "Proc rank corr"});
  for (size_t Index = 0; Index != Suite.size(); ++Index) {
    const workloads::WorkloadSpec &Spec = Suite[Index];
    driver::OutcomePtr Exact =
        getRun(ExactTickets[Index], Spec.Name, prof::Mode::FlowHw);
    if (!Exact) {
      noteDegradedRow(Spec.Name);
      continue;
    }
    std::vector<analysis::PathRecord> ExactRecords =
        analysis::collectPathRecords(*Exact);
    std::set<PathKey> ExactTop = topPaths(ExactRecords, 20);
    std::map<unsigned, uint64_t> ExactProcs = procMisses(ExactRecords);

    for (size_t P = 0; P != std::size(Periods); ++P) {
      driver::OutcomePtr Sampled =
          getRun(SampledTickets[Index][P], Spec.Name, prof::Mode::FlowHw);
      if (!Sampled) {
        noteDegradedRow(Spec.Name);
        continue;
      }
      std::vector<analysis::PathRecord> SampledRecords =
          analysis::collectPathRecords(*Sampled);
      std::set<PathKey> SampledTop = topPaths(SampledRecords, 20);

      size_t Hit = 0;
      for (const PathKey &Key : ExactTop)
        Hit += SampledTop.count(Key);
      double Overlap =
          ExactTop.empty() ? 1.0 : double(Hit) / double(ExactTop.size());
      double RankCorr = spearman(ExactProcs, procMisses(SampledRecords));

      Row R;
      R.Workload = Spec.Name;
      R.Period = Periods[P];
      R.Traps = Sampled->Acq.Traps;
      R.Samples = Sampled->Acq.Samples;
      R.PathsExact = ExactTop.size();
      R.PathsSampled = SampledTop.size();
      R.Overlap = Overlap;
      R.RankCorr = RankCorr;
      Rows.push_back(R);
      if (Spec.Name == LiWorkload && P == 0)
        LiSmallestPeriodCorr = RankCorr;

      Table.addRow({Spec.Name, std::to_string(Periods[P]),
                    std::to_string(R.Samples),
                    formatString("%zu/%zu", R.PathsExact, R.PathsSampled),
                    formatString("%.0f%%", 100.0 * Overlap),
                    formatString("%.4f", RankCorr)});
    }
  }
  std::printf("%s\n", Table.render().c_str());

  std::ofstream Json("BENCH_sampling_accuracy.json");
  Json << "{\n  \"bench\": \"sampling_accuracy\",\n"
       << "  \"sampled_event\": \"DC RdMiss\",\n  \"rows\": [\n";
  for (size_t Index = 0; Index != Rows.size(); ++Index) {
    const Row &R = Rows[Index];
    char Buf[256];
    std::snprintf(Buf, sizeof(Buf),
                  "    {\"workload\": \"%s\", \"period\": %llu, "
                  "\"traps\": %llu, \"samples\": %llu, "
                  "\"paths_exact\": %zu, \"paths_sampled\": %zu, "
                  "\"top20_overlap\": %.4f, \"proc_rank_corr\": %.4f}%s\n",
                  R.Workload.c_str(), (unsigned long long)R.Period,
                  (unsigned long long)R.Traps, (unsigned long long)R.Samples,
                  R.PathsExact, R.PathsSampled, R.Overlap, R.RankCorr,
                  Index + 1 == Rows.size() ? "" : ",");
    Json << Buf;
  }
  char Agg[160];
  std::snprintf(Agg, sizeof(Agg),
                "  ],\n  \"li_rank_corr_smallest_period\": %.4f,\n"
                "  \"li_rank_corr_floor\": %.2f\n}\n",
                LiSmallestPeriodCorr, LiRankCorrFloor);
  Json << Agg;
  std::printf("wrote BENCH_sampling_accuracy.json (li rho %.4f at period "
              "%llu, floor %.2f)\n",
              LiSmallestPeriodCorr, (unsigned long long)Periods[0],
              LiRankCorrFloor);

  if (Check && LiSmallestPeriodCorr < LiRankCorrFloor) {
    std::fprintf(stderr,
                 "sampling_accuracy: li rank correlation %.4f at period "
                 "%llu fell below the committed floor %.2f\n",
                 LiSmallestPeriodCorr, (unsigned long long)Periods[0],
                 LiRankCorrFloor);
    return 1;
  }
  return 0;
}
