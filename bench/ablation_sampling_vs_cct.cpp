//===- bench/ablation_sampling_vs_cct.cpp - §7.2's comparison -------------------===//
//
// Call-path sampling (Goldberg/Hall) vs the CCT. The paper's criticisms:
// sampling walks the whole stack per sample, its log grows without bound,
// and it only *approximates* context frequencies. This bench measures all
// three against the exhaustive bounded CCT, per workload: sample-log
// bytes vs CCT heap bytes, contexts discovered vs contexts that exist,
// and the stack frames walked.
//
// The sampler is the real overflow-sampling acquisition engine: PIC0 is
// routed to Cycles and armed to trap every 2000 of them, so each sample
// is a counter-overflow trap walking the shadow stack — the same
// machinery `pp --acquisition=overflow` uses, not a bench-local stub.
//
//===----------------------------------------------------------------------===//

#include "Common.h"

#include "prof/OverflowSampling.h"

using namespace pp;
using namespace pp::bench;

int main() {
  std::printf("Ablation: call-path sampling (Goldberg/Hall, §7.2) vs the "
              "CCT\n(overflow traps every 2000 simulated cycles)\n\n");

  TableWriter Table;
  Table.setHeader({"Benchmark", "Samples", "LogBytes", "CctBytes",
                   "CtxFound", "CtxTotal", "Found%", "FramesWalked"});
  SuiteAverager Averager;

  // Declare the CCT runs first; workers overlap them with the sampling
  // loop below (which drives its own engine-attached VM serially).
  const std::vector<workloads::WorkloadSpec> &Suite = workloads::spec95Suite();
  std::vector<size_t> Declared;
  for (const workloads::WorkloadSpec &Spec : Suite)
    Declared.push_back(submitWorkload(Spec, prof::Mode::Context));

  for (size_t Index = 0; Index != Suite.size(); ++Index) {
    const workloads::WorkloadSpec &Spec = Suite[Index];
    // Sampling run: pristine program + the overflow acquisition engine,
    // standalone (construct, prepare, attach to a VM, run).
    auto Module = Spec.Build(1);
    prof::ProfileConfig Config;
    Config.M = prof::Mode::Context;
    Config.Pic0 = hw::Event::Cycles;
    prof::AcquisitionOptions Acq;
    Acq.Kind = prof::Acquisition::Overflow;
    Acq.Pic = 0;
    Acq.Period = 2000;
    prof::OverflowSampling Sampler(*Module, Config, Acq);
    prof::Instrumented Instr = Sampler.prepare();
    hw::Machine Machine;
    Machine.counters().selectPicEvents(Config.Pic0, Config.Pic1);
    vm::Vm VM(*Instr.M, Machine);
    Sampler.attach(Machine, VM, Instr);
    vm::RunResult Result = VM.run();
    if (!Result.Ok) {
      std::fprintf(stderr, "%s failed: %s\n", Spec.Name.c_str(),
                   Result.Error.c_str());
      return 1;
    }

    // CCT run for the ground-truth context set.
    driver::OutcomePtr Ctx =
        getRun(Declared[Index], Spec.Name, prof::Mode::Context);
    if (!Ctx || !Ctx->Tree) {
      noteDegradedRow(Spec.Name);
      continue;
    }
    size_t CtxTotal = Ctx->Tree->numRecords() - 1; // root excluded
    size_t CtxFound = Sampler.numDistinctContexts();
    double FoundShare =
        CtxTotal == 0 ? 0 : 100.0 * double(CtxFound) / double(CtxTotal);

    Table.addRow({Spec.Name, std::to_string(Sampler.numSamples()),
                  std::to_string(Sampler.logBytes()),
                  std::to_string(Ctx->Tree->heapBytes()),
                  std::to_string(CtxFound), std::to_string(CtxTotal),
                  formatString("%.0f%%", FoundShare),
                  std::to_string(Sampler.framesWalked())});
    Averager.add(Spec.Name, Spec.IsFloat,
                 {double(Sampler.logBytes()),
                  double(Ctx->Tree->heapBytes()), FoundShare});
  }
  Table.addSeparator();
  std::vector<double> Avg = Averager.average(true, true);
  Table.addRow({"SPEC95 Avg", "", formatString("%.0f", Avg[0]),
                formatString("%.0f", Avg[1]), "", "",
                formatString("%.0f%%", Avg[2]), ""});
  std::printf("%s", Table.render().c_str());

  std::printf(
      "\nPaper's shape: the sample log grows with run length while the CCT "
      "is\nbounded by program structure (re-run with --scale and the gap "
      "widens);\nsampling misses the rarely-active contexts the CCT "
      "records exhaustively,\nand pays a stack walk on every sample. One "
      "instrumented execution\nreplaces the whole apparatus (§7.2).\n");
  return 0;
}
