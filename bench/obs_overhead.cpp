//===- bench/obs_overhead.cpp - cost of the observability layer ---------------===//
//
// Measures what the always-compiled obs layer costs the pipeline it
// observes: the Table 1 run set (the full SPEC95-shaped suite under
// None, Flow and HW, Context and HW, Context and Flow) is executed on a
// fresh serial scheduler with recording enabled and disabled, as
// interleaved back-to-back pairs, and the median per-pair ratio is the
// verdict. The budget is 3%: recording sites are stage boundaries, never
// per-instruction, so anything above that is a regression in the layer
// itself, not noise from what it records.
//
// Writes BENCH_obs_overhead.json (machine-readable; the committed copy
// at the repository root records the numbers this change was merged
// with) and exits non-zero when the measured overhead blows the budget.
//
//===----------------------------------------------------------------------===//

#include "driver/RunCache.h"
#include "driver/RunScheduler.h"
#include "obs/Obs.h"
#include "support/TableWriter.h"
#include "workloads/Spec.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

using namespace pp;
using prof::Mode;

namespace {

constexpr double BudgetRatio = 1.03;

/// One timed pass over the Table 1 run set: every suite workload under
/// the paper's four configurations, on a fresh memory-only cache and a
/// fresh serial scheduler (fresh so no pass reuses an earlier pass's
/// outcomes, serial so the measurement is not at the mercy of the
/// worker pool's scheduling).
double timeSuite(bool Enabled) {
  obs::setEnabled(Enabled);
  auto T0 = std::chrono::steady_clock::now();
  {
    driver::RunCache Cache("");
    driver::RunScheduler Sched(&Cache, 0);
    std::vector<size_t> Tickets;
    for (const workloads::WorkloadSpec &Spec : workloads::spec95Suite())
      for (Mode M : {Mode::None, Mode::FlowHw, Mode::ContextHw,
                     Mode::ContextFlow}) {
        driver::RunPlan Plan;
        Plan.Workload = Spec.Name;
        Plan.Scale = 1;
        Plan.Options.Config.M = M;
        Tickets.push_back(Sched.submit(std::move(Plan)));
      }
    for (size_t Ticket : Tickets) {
      driver::OutcomePtr Outcome = Sched.get(Ticket);
      if (!Outcome || !Outcome->Result.Ok) {
        std::fprintf(stderr, "obs_overhead: run failed: %s\n",
                     Outcome ? Outcome->Result.Error.c_str() : "no outcome");
        std::exit(1);
      }
    }
  }
  obs::setEnabled(true);
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
      .count();
}

std::string fmt(const char *Format, double Value) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), Format, Value);
  return Buf;
}

} // namespace

int main() {
  timeSuite(false); // warm the host caches; not recorded

  // Back-to-back pairs with alternating order: host frequency drift or a
  // co-tenant burst slows both halves of a pair roughly equally, so the
  // per-pair ratio is stable even when absolute times swing. The median
  // pair (not independent medians) keeps the reported times and ratio
  // one self-consistent sample.
  constexpr int Reps = 9;
  std::vector<std::pair<double, double>> Pairs; // (disabled, enabled)
  for (int Rep = 0; Rep != Reps; ++Rep) {
    double A = timeSuite((Rep & 1) != 0);
    double B = timeSuite((Rep & 1) == 0);
    Pairs.emplace_back((Rep & 1) ? B : A, (Rep & 1) ? A : B);
  }
  std::sort(Pairs.begin(), Pairs.end(),
            [](const std::pair<double, double> &L,
               const std::pair<double, double> &R) {
              return L.second * R.first < R.second * L.first; // by ratio
            });
  double Disabled = Pairs[Reps / 2].first;
  double Enabled = Pairs[Reps / 2].second;
  double Ratio = Enabled / Disabled;

  TableWriter Table;
  Table.setHeader({"Collector", "Suite sec", "Ratio"});
  Table.addRow({"disabled", fmt("%.4f", Disabled), "1.00"});
  Table.addRow({"enabled", fmt("%.4f", Enabled), fmt("%.3f", Ratio)});
  std::printf("Observability overhead on the Table 1 run set (median of %d "
              "interleaved pairs, budget %.0f%%)\n\n%s\n",
              Reps, (BudgetRatio - 1.0) * 100, Table.render().c_str());

  std::ofstream Json("BENCH_obs_overhead.json");
  Json << "{\n  \"bench\": \"obs_overhead\",\n  \"rows\": [\n";
  for (size_t Index = 0; Index != Pairs.size(); ++Index) {
    char Row[160];
    std::snprintf(Row, sizeof(Row),
                  "    {\"disabled_sec\": %.6f, \"enabled_sec\": %.6f, "
                  "\"ratio\": %.4f}%s\n",
                  Pairs[Index].first, Pairs[Index].second,
                  Pairs[Index].second / Pairs[Index].first,
                  Index + 1 == Pairs.size() ? "" : ",");
    Json << Row;
  }
  char Agg[256];
  std::snprintf(Agg, sizeof(Agg),
                "  ],\n"
                "  \"median_disabled_sec\": %.6f,\n"
                "  \"median_enabled_sec\": %.6f,\n"
                "  \"overhead_ratio\": %.4f,\n"
                "  \"budget_ratio\": %.2f\n}\n",
                Disabled, Enabled, Ratio, BudgetRatio);
  Json << Agg;
  std::printf("wrote BENCH_obs_overhead.json (overhead %.1f%%)\n",
              (Ratio - 1.0) * 100);

  if (Ratio >= BudgetRatio) {
    std::fprintf(stderr,
                 "obs_overhead: enabled/disabled ratio %.4f exceeds the "
                 "%.2f budget\n",
                 Ratio, BudgetRatio);
    return 1;
  }
  return 0;
}
