//===- bench/table5_hot_procedures.cpp - Table 5 ----------------------------------===//
//
// Regenerates Table 5: L1 data cache misses by procedure. Aggregates the
// Flow-and-HW path profile per procedure, classifies hot (>= 1% of
// misses) / cold and dense / sparse, and reports the paths-per-procedure
// averages behind the paper's argument that procedure-level reporting
// cannot isolate the paths that miss.
//
// The rendering lives in analysis::renderTable5 so that tools/pp-report
// regenerates the same table, byte for byte, from stored artifacts.
//
//===----------------------------------------------------------------------===//

#include "Common.h"

#include "analysis/HotPaths.h"
#include "analysis/PaperTables.h"

using namespace pp;
using namespace pp::bench;
using prof::Mode;

int main() {
  const std::vector<workloads::WorkloadSpec> &Suite = workloads::spec95Suite();
  std::vector<size_t> Declared;
  for (const workloads::WorkloadSpec &Spec : Suite)
    Declared.push_back(submitWorkload(Spec, Mode::FlowHw));

  std::vector<analysis::SuitePathRows> Rows;
  for (size_t Index = 0; Index != Suite.size(); ++Index) {
    const workloads::WorkloadSpec &Spec = Suite[Index];
    driver::OutcomePtr Run =
        getRun(Declared[Index], Spec.Name, Mode::FlowHw);
    if (!Run) {
      noteDegradedRow(Spec.Name);
      continue;
    }
    Rows.push_back({Spec.Name, Spec.IsFloat,
                    analysis::collectPathRecords(*Run)});
  }

  std::printf("%s", analysis::renderTable5(Rows).c_str());
  return 0;
}
