//===- bench/table5_hot_procedures.cpp - Table 5 ----------------------------------===//
//
// Regenerates Table 5: L1 data cache misses by procedure. Aggregates the
// Flow-and-HW path profile per procedure, classifies hot (>= 1% of
// misses) / cold and dense / sparse, and reports the paths-per-procedure
// averages behind the paper's argument that procedure-level reporting
// cannot isolate the paths that miss.
//
//===----------------------------------------------------------------------===//

#include "Common.h"

#include "analysis/HotPaths.h"

using namespace pp;
using namespace pp::bench;
using prof::Mode;

int main() {
  std::printf("Table 5: L1 data cache misses per procedure "
              "(hot threshold = 1%%)\n\n");

  TableWriter Table;
  Table.setHeader({"Benchmark", "Hot", "Path/Proc", "Miss%", "Dense",
                   "Path/Proc", "Miss%", "Sparse", "Path/Proc", "Cold",
                   "Path/Proc", "Miss%"});
  SuiteAverager Averager;

  const std::vector<workloads::WorkloadSpec> &Suite = workloads::spec95Suite();
  std::vector<size_t> Declared;
  for (const workloads::WorkloadSpec &Spec : Suite)
    Declared.push_back(submitWorkload(Spec, Mode::FlowHw));

  for (size_t Index = 0; Index != Suite.size(); ++Index) {
    const workloads::WorkloadSpec &Spec = Suite[Index];
    driver::OutcomePtr Run =
        getRun(Declared[Index], Spec.Name, Mode::FlowHw);
    if (!Run) {
      noteDegradedRow(Spec.Name);
      continue;
    }
    std::vector<analysis::PathRecord> Records =
        analysis::collectPathRecords(*Run);
    std::vector<analysis::ProcRecord> Procs =
        analysis::aggregateByProcedure(Records);
    analysis::HotProcAnalysis A = analysis::analyzeHotProcs(Procs, 0.01);

    Table.addRow(
        {Spec.Name, std::to_string(A.Hot.Num),
         formatString("%.1f", A.HotPathsPerProc),
         formatPercent(double(A.Hot.Misses), double(A.TotalMisses)),
         std::to_string(A.Dense.Num),
         formatString("%.1f", A.DensePathsPerProc),
         formatPercent(double(A.Dense.Misses), double(A.TotalMisses)),
         std::to_string(A.Sparse.Num),
         formatString("%.1f", A.SparsePathsPerProc),
         std::to_string(A.Cold.Num),
         formatString("%.1f", A.ColdPathsPerProc),
         formatPercent(double(A.Cold.Misses), double(A.TotalMisses))});
    Averager.add(
        Spec.Name, Spec.IsFloat,
        {double(A.Hot.Num), A.HotPathsPerProc,
         100.0 * double(A.Hot.Misses) / double(A.TotalMisses),
         double(A.Dense.Num), A.DensePathsPerProc, double(A.Sparse.Num),
         A.SparsePathsPerProc, double(A.Cold.Num), A.ColdPathsPerProc});
  }

  auto AddAverage = [&](const char *Label, bool Int, bool Float,
                        bool NoGoGcc) {
    std::vector<double> Avg = Averager.average(Int, Float, NoGoGcc);
    Table.addRow({Label, formatString("%.1f", Avg[0]),
                  formatString("%.1f", Avg[1]),
                  formatString("%.1f%%", Avg[2]),
                  formatString("%.1f", Avg[3]), formatString("%.1f", Avg[4]),
                  "", formatString("%.1f", Avg[5]),
                  formatString("%.1f", Avg[6]), formatString("%.1f", Avg[7]),
                  formatString("%.1f", Avg[8]), ""});
  };
  Table.addSeparator();
  AddAverage("CINT95 Avg", true, false, false);
  AddAverage("CFP95 Avg", false, true, false);
  AddAverage("SPEC95 Avg", true, true, false);
  AddAverage("SPEC95 Avg - go,gcc", true, true, true);

  std::printf("%s", Table.render().c_str());
  std::printf("\nPaper's shape: a few procedures (1-24) absorb most misses, "
              "but hot\nprocedures execute roughly ten times as many paths "
              "as cold ones, so\nknowing the procedure does not isolate the "
              "misses -- the argument for\npath-level attribution.\n");
  return 0;
}
