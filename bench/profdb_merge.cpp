//===- bench/profdb_merge.cpp - k-way artifact merge throughput -----------------===//
//
// Times the profile repository's O(log N) pairwise merge reduction over a
// 256-shard artifact set (099.go at scale 2 — the suite's bushiest CCT —
// under Context-Flow-HW, four D-cache geometries replicated 64 ways),
// serial against the thread pool, and asserts the parallel result is
// bit-identical to the serial one — the determinism contract under its
// production workload.
//
// Writes BENCH_profdb_merge.json (machine-readable; CI uploads it as a
// workflow artifact).
//
//===----------------------------------------------------------------------===//

#include "prof/Session.h"
#include "profdb/Artifact.h"
#include "profdb/Merge.h"
#include "support/TableWriter.h"
#include "workloads/Spec.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

using namespace pp;

namespace {

double seconds(std::chrono::steady_clock::time_point From,
               std::chrono::steady_clock::time_point To) {
  return std::chrono::duration<double>(To - From).count();
}

} // namespace

int main() {
  constexpr unsigned NumShards = 256;
  const char *Workload = "099.go";
  constexpr uint64_t Scale = 2;

  auto Module = workloads::buildWorkload(Workload, Scale);
  if (!Module) {
    std::fprintf(stderr, "profdb_merge: cannot build %s\n", Workload);
    return 1;
  }

  // Four distinct machines (miss counts differ, control flow does not),
  // replicated to 32 shards with distinct fingerprints — the shape of a
  // parameter sweep whose shards a repository merge folds together.
  static const uint64_t Sizes[] = {16 * 1024, 8 * 1024, 4 * 1024, 32 * 1024};
  std::vector<profdb::Artifact> Variants;
  for (uint64_t SizeBytes : Sizes) {
    prof::SessionOptions Options;
    Options.Config.M = prof::Mode::ContextFlowHw;
    Options.MachineCfg.DCache.SizeBytes = SizeBytes;
    prof::RunOutcome Outcome = prof::runProfile(*Module, Options);
    if (!Outcome.Result.Ok) {
      std::fprintf(stderr, "profdb_merge: run failed: %s\n",
                   Outcome.Result.Error.c_str());
      return 1;
    }
    Variants.push_back(profdb::artifactFromOutcome(
        Outcome, *Module, "bench;dcache=" + std::to_string(SizeBytes),
        Workload, Scale, Options.Config));
  }
  auto MakeShards = [&Variants] {
    std::vector<profdb::Artifact> Shards;
    for (unsigned I = 0; I != NumShards; ++I) {
      profdb::Artifact Shard = profdb::cloneArtifact(Variants[I % 4]);
      Shard.Fingerprint += ";replica=" + std::to_string(I / 4);
      Shards.push_back(std::move(Shard));
    }
    return Shards;
  };

  unsigned Threads = profdb::mergeThreadsFromEnv();
  constexpr unsigned Reps = 3;
  double SerialBest = 1e9, ParallelBest = 1e9;
  std::vector<uint8_t> SerialBytes, ParallelBytes;
  for (unsigned Rep = 0; Rep != Reps; ++Rep) {
    std::string Error;
    profdb::Artifact Out;

    std::vector<profdb::Artifact> Shards = MakeShards();
    auto T0 = std::chrono::steady_clock::now();
    if (!profdb::mergeAll(std::move(Shards), Out, Error, 1)) {
      std::fprintf(stderr, "profdb_merge: serial merge failed: %s\n",
                   Error.c_str());
      return 1;
    }
    auto T1 = std::chrono::steady_clock::now();
    SerialBest = std::min(SerialBest, seconds(T0, T1));
    SerialBytes = profdb::encodeArtifact(Out);

    Shards = MakeShards();
    auto T2 = std::chrono::steady_clock::now();
    if (!profdb::mergeAll(std::move(Shards), Out, Error, Threads)) {
      std::fprintf(stderr, "profdb_merge: parallel merge failed: %s\n",
                   Error.c_str());
      return 1;
    }
    auto T3 = std::chrono::steady_clock::now();
    ParallelBest = std::min(ParallelBest, seconds(T2, T3));
    ParallelBytes = profdb::encodeArtifact(Out);

    if (ParallelBytes != SerialBytes) {
      std::fprintf(stderr, "profdb_merge: parallel merge diverged from "
                           "serial bytes (rep %u)\n",
                   Rep);
      return 1;
    }
  }

  double Speedup = SerialBest / ParallelBest;
  auto Ms = [](double Seconds) {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%.2f", Seconds * 1e3);
    return std::string(Buf);
  };
  unsigned Cores = std::thread::hardware_concurrency();
  TableWriter Table;
  Table.setHeader({"Shards", "Bytes/shard", "Serial ms", "Threads", "Cores",
                   "Parallel ms", "Speedup"});
  Table.addRow({std::to_string(NumShards),
                std::to_string(profdb::encodeArtifact(Variants[0]).size()),
                Ms(SerialBest), std::to_string(Threads),
                std::to_string(Cores), Ms(ParallelBest),
                std::to_string(Speedup).substr(0, 4) + "x"});
  std::printf("Profile-repository k-way merge (%u shards, best of %u reps; "
              "parallel bytes == serial bytes)\n\n%s",
              NumShards, Reps, Table.render().c_str());

  std::ofstream Json("BENCH_profdb_merge.json");
  char Buf[512];
  std::snprintf(Buf, sizeof(Buf),
                "{\n  \"bench\": \"profdb_merge\",\n"
                "  \"shards\": %u,\n"
                "  \"shard_bytes\": %zu,\n"
                "  \"merged_bytes\": %zu,\n"
                "  \"serial_seconds\": %.6f,\n"
                "  \"threads\": %u,\n"
                "  \"hardware_cores\": %u,\n"
                "  \"parallel_seconds\": %.6f,\n"
                "  \"speedup\": %.3f,\n"
                "  \"bit_identical\": true\n}\n",
                NumShards, profdb::encodeArtifact(Variants[0]).size(),
                SerialBytes.size(), SerialBest, Threads, Cores,
                ParallelBest, Speedup);
  Json << Buf;
  std::printf("\nwrote BENCH_profdb_merge.json (speedup %.2fx)\n", Speedup);
  return 0;
}
