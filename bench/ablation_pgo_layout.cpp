//===- bench/ablation_pgo_layout.cpp - the paper's compiler application ---------===//
//
// The summary's promise, measured: feed each workload's path profile to
// the hot-path-first layout pass and re-run the uninstrumented program.
// Loop-dominated codes barely move (their hot paths are already compact);
// branchy codes with interleaved cold blocks gain. This is the smallest
// instance of "compilers can use path profiles ... as an empirical basis
// for making optimization tradeoffs".
//
//===----------------------------------------------------------------------===//

#include "Common.h"

#include "opt/Layout.h"

using namespace pp;
using namespace pp::bench;
using prof::Mode;

int main() {
  std::printf("Ablation: profile-guided hot-path-first block layout\n\n");

  TableWriter Table;
  Table.setHeader({"Benchmark", "Reordered", "IC miss before", "after",
                   "Cycles before", "after", "Speedup"});
  SuiteAverager Averager;

  // Phase 1: the base and profiling runs of every workload.
  const std::vector<workloads::WorkloadSpec> &Suite = workloads::spec95Suite();
  struct Tickets {
    size_t Before, Profile;
  };
  std::vector<Tickets> Declared;
  for (const workloads::WorkloadSpec &Spec : Suite)
    Declared.push_back({submitWorkload(Spec, Mode::None),
                        submitWorkload(Spec, Mode::FlowHw)});

  // Phase 2: as each profile lands, lay the workload out hot-path-first
  // and declare the re-run (a derived module, so it gets its own tag).
  struct Pending {
    driver::OutcomePtr Before;
    opt::LayoutResult Layout;
    size_t After;
  };
  std::vector<Pending> Reruns;
  for (size_t Index = 0; Index != Suite.size(); ++Index) {
    const workloads::WorkloadSpec &Spec = Suite[Index];
    driver::OutcomePtr Before =
        getRun(Declared[Index].Before, Spec.Name, Mode::None);
    driver::OutcomePtr Profile = driver::defaultDriver().get(
        Declared[Index].Profile);
    if (!Before || !Profile || !Profile->Result.Ok) {
      std::fprintf(stderr, "%s failed\n", Spec.Name.c_str());
      noteDegradedRow(Spec.Name);
      Reruns.push_back({nullptr, opt::LayoutResult(), 0});
      continue;
    }
    auto M = Spec.Build(1);
    opt::LayoutResult Layout = opt::layoutHotPathsFirst(*M, *Profile);

    driver::RunPlan AfterPlan;
    AfterPlan.Workload = Spec.Name + "+pgo-layout";
    AfterPlan.Options.Config.M = Mode::None;
    // The layout is deterministic given the (deterministic) profile, so
    // the derived tag names the module contents and the run can cache.
    AfterPlan.Build = [Spec, Profile] {
      auto Derived = Spec.Build(1);
      opt::layoutHotPathsFirst(*Derived, *Profile);
      return Derived;
    };
    Reruns.push_back({std::move(Before), Layout,
                      driver::defaultDriver().submit(std::move(AfterPlan))});
  }

  for (size_t Index = 0; Index != Suite.size(); ++Index) {
    const workloads::WorkloadSpec &Spec = Suite[Index];
    const driver::OutcomePtr &Before = Reruns[Index].Before;
    if (!Before)
      continue; // row already reported as degraded in phase 1
    const opt::LayoutResult &Layout = Reruns[Index].Layout;
    driver::OutcomePtr After =
        driver::defaultDriver().get(Reruns[Index].After);
    if (!After || !After->Result.Ok ||
        After->Result.ExitValue != Before->Result.ExitValue) {
      std::fprintf(stderr, "%s behaviour changed!\n", Spec.Name.c_str());
      return 1;
    }
    double Speedup = double(Before->total(hw::Event::Cycles)) /
                     double(After->total(hw::Event::Cycles));
    Table.addRow({Spec.Name, std::to_string(Layout.FunctionsReordered),
                  std::to_string(Before->total(hw::Event::ICacheMiss)),
                  std::to_string(After->total(hw::Event::ICacheMiss)),
                  std::to_string(Before->total(hw::Event::Cycles)),
                  std::to_string(After->total(hw::Event::Cycles)),
                  formatString("%.3f", Speedup)});
    Averager.add(Spec.Name, Spec.IsFloat, {Speedup});
  }
  Table.addSeparator();
  Table.addRow({"SPEC95 Avg", "", "", "", "", "",
                formatString("%.3f", Averager.average(true, true)[0])});
  std::printf("%s", Table.render().c_str());
  std::printf("\nThe workloads are small enough to fit the I-cache, so "
              "gains here are\nmodest; examples/hot_path_optimizer builds "
              "a program with I-cache\npressure where the same pass "
              "removes ~99%% of I-cache misses.\n");
  return 0;
}
