//===- bench/ablation_pgo_layout.cpp - the pass-pipeline ablation ladder --------===//
//
// The summary's promise, measured as an ablation: profile each workload
// once (context + flow + HW metrics), then climb the pass ladder — off,
// layout, layout+superblock, layout+superblock+inline — re-running the
// uninstrumented program at each rung. All rungs share the single
// profiling run (the driver memoizes it) and differ only in the pass
// list handed to opt::runPipeline, so the deltas isolate each pass's
// contribution. This is the smallest instance of "compilers can use path
// profiles ... as an empirical basis for making optimization tradeoffs".
//
// Unlike bench/pgo_loop (which shrinks the simulated I-cache until
// placement matters), this table keeps the default machine: the suite
// fits the 16 KiB I-cache, so the expected result is the null one —
// behaviour preserved, cycles within noise — and that is worth printing.
//
//===----------------------------------------------------------------------===//

#include "Common.h"

#include "driver/RunKey.h"
#include "opt/Pass.h"
#include "profdb/Artifact.h"

#include <memory>

using namespace pp;
using namespace pp::bench;
using prof::Mode;

namespace {

/// The ladder's rungs, in cumulative order. Rung 0 is the baseline (no
/// passes); each later rung adds one pass to the previous rung's list.
struct Rung {
  const char *Variant; ///< RunKey ;opt= tag (and column header)
  std::vector<opt::PassKind> Passes;
};

const std::vector<Rung> &ladder() {
  static const std::vector<Rung> Rungs = {
      {"layout", {opt::PassKind::Layout}},
      {"layout+superblock",
       {opt::PassKind::Layout, opt::PassKind::Superblock}},
      {"layout+superblock+inline",
       {opt::PassKind::Layout, opt::PassKind::Superblock,
        opt::PassKind::Inline}},
  };
  return Rungs;
}

driver::RunPlan profilePlan(const workloads::WorkloadSpec &Spec) {
  driver::RunPlan Plan;
  Plan.Workload = Spec.Name;
  Plan.Scale = 1;
  Plan.Options.Config.M = Mode::ContextFlowHw;
  Plan.Options.Config.Pic0 = hw::Event::Cycles;
  Plan.Options.Config.Pic1 = hw::Event::ICacheMiss;
  return Plan;
}

} // namespace

int main() {
  std::printf("Ablation: the PGO pass ladder (off / layout / +superblock / "
              "+inline)\non the default machine — the suite fits the 16 KiB "
              "I-cache, so this is\nthe null-result control for "
              "bench/pgo_loop's small-cache measurement.\n\n");

  TableWriter Table;
  Table.setHeader({"Benchmark", "Cycles off", "layout", "+superblock",
                   "+inline", "Speedup"});
  SuiteAverager Averager;

  const std::vector<workloads::WorkloadSpec> &Suite = workloads::spec95Suite();
  const opt::PassOptions PassOpts = opt::PassOptions::fromEnv("ablation_pgo");

  // Phase 1: one profiling run and the baseline per workload. The ladder
  // rungs all consume the same profile ticket.
  struct Tickets {
    size_t Profile, Off;
  };
  std::vector<Tickets> Declared;
  for (const workloads::WorkloadSpec &Spec : Suite)
    Declared.push_back({driver::defaultDriver().submit(profilePlan(Spec)),
                        submitWorkload(Spec, Mode::None)});

  // Phase 2: as each profile lands, package it as the artifact the
  // optimizer consumes and declare every rung's re-run.
  struct Pending {
    driver::OutcomePtr Off;
    std::vector<size_t> RungTickets;
  };
  std::vector<Pending> Reruns(Suite.size());
  for (size_t Index = 0; Index != Suite.size(); ++Index) {
    const workloads::WorkloadSpec &Spec = Suite[Index];
    Pending &P = Reruns[Index];
    P.Off = getRun(Declared[Index].Off, Spec.Name, Mode::None);
    driver::OutcomePtr Profile =
        getRun(Declared[Index].Profile, Spec.Name, Mode::ContextFlowHw);
    if (!P.Off || !Profile) {
      noteDegradedRow(Spec.Name);
      P.Off = nullptr;
      continue;
    }

    // Resolve the artifact against a pristine copy: the driver may have
    // restored the profile outcome from the cache, with no module.
    driver::RunPlan PPlan = profilePlan(Spec);
    auto Pristine = Spec.Build(1);
    auto Art = std::make_shared<const profdb::Artifact>(
        profdb::artifactFromOutcome(*Profile, *Pristine,
                                    driver::RunKey::of(PPlan).Fingerprint,
                                    Spec.Name, 1, PPlan.Options.Config));

    for (const Rung &R : ladder()) {
      driver::RunPlan Plan;
      Plan.Workload = Spec.Name;
      Plan.Scale = 1;
      Plan.Options.Config.M = Mode::None;
      Plan.OptVariant = R.Variant;
      // Deterministic given the (deterministic) profile, so the ;opt=
      // fingerprint dimension names the derived module and the run caches.
      Plan.Build = [Spec, Art, &R, &PassOpts] {
        auto Derived = Spec.Build(1);
        opt::ProfileView View;
        if (opt::ProfileView::build(*Art, *Derived, View) !=
            opt::ViewStatus::Ok)
          return std::unique_ptr<ir::Module>();
        if (!opt::runPipeline(*Derived, View, R.Passes, PassOpts).Ok)
          return std::unique_ptr<ir::Module>();
        return Derived;
      };
      P.RungTickets.push_back(driver::defaultDriver().submit(std::move(Plan)));
    }
  }

  // Phase 3: collect, check behaviour, render.
  for (size_t Index = 0; Index != Suite.size(); ++Index) {
    const workloads::WorkloadSpec &Spec = Suite[Index];
    const Pending &P = Reruns[Index];
    if (!P.Off)
      continue; // row already reported as degraded in phase 2
    std::vector<driver::OutcomePtr> Rungs;
    bool RowOk = true;
    for (size_t T : P.RungTickets) {
      driver::OutcomePtr After = getRun(T, Spec.Name, Mode::None);
      if (!After) {
        RowOk = false;
        break;
      }
      if (After->Result.ExitValue != P.Off->Result.ExitValue) {
        std::fprintf(stderr, "%s behaviour changed!\n", Spec.Name.c_str());
        return 1;
      }
      Rungs.push_back(std::move(After));
    }
    if (!RowOk) {
      noteDegradedRow(Spec.Name);
      continue;
    }
    const uint64_t Off = P.Off->total(hw::Event::Cycles);
    const uint64_t Full = Rungs.back()->total(hw::Event::Cycles);
    double Speedup = double(Off) / double(Full);
    Table.addRow({Spec.Name, std::to_string(Off),
                  std::to_string(Rungs[0]->total(hw::Event::Cycles)),
                  std::to_string(Rungs[1]->total(hw::Event::Cycles)),
                  std::to_string(Full), formatString("%.3f", Speedup)});
    Averager.add(Spec.Name, Spec.IsFloat, {Speedup});
  }
  Table.addSeparator();
  Table.addRow({"SPEC95 Avg", "", "", "", "",
                formatString("%.3f", Averager.average(true, true)[0])});
  std::printf("%s", Table.render().c_str());
  std::printf("\nThe workloads fit the default I-cache, so gains here are "
              "within noise;\nbench/pgo_loop re-measures the same ladder's "
              "endpoint under I-cache\npressure, where the pipeline's "
              "placement decisions become visible.\n");
  return 0;
}
