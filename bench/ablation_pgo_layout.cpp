//===- bench/ablation_pgo_layout.cpp - the paper's compiler application ---------===//
//
// The summary's promise, measured: feed each workload's path profile to
// the hot-path-first layout pass and re-run the uninstrumented program.
// Loop-dominated codes barely move (their hot paths are already compact);
// branchy codes with interleaved cold blocks gain. This is the smallest
// instance of "compilers can use path profiles ... as an empirical basis
// for making optimization tradeoffs".
//
//===----------------------------------------------------------------------===//

#include "Common.h"

#include "opt/Layout.h"

using namespace pp;
using namespace pp::bench;
using prof::Mode;

int main() {
  std::printf("Ablation: profile-guided hot-path-first block layout\n\n");

  TableWriter Table;
  Table.setHeader({"Benchmark", "Reordered", "IC miss before", "after",
                   "Cycles before", "after", "Speedup"});
  SuiteAverager Averager;

  for (const workloads::WorkloadSpec &Spec : workloads::spec95Suite()) {
    auto M = Spec.Build(1);
    prof::SessionOptions Base;
    Base.Config.M = Mode::None;
    prof::RunOutcome Before = prof::runProfile(*M, Base);

    prof::SessionOptions FlowOptions;
    FlowOptions.Config.M = Mode::FlowHw;
    prof::RunOutcome Profile = prof::runProfile(*M, FlowOptions);
    if (!Profile.Result.Ok) {
      std::fprintf(stderr, "%s failed\n", Spec.Name.c_str());
      return 1;
    }
    opt::LayoutResult Layout = opt::layoutHotPathsFirst(*M, Profile);

    prof::RunOutcome After = prof::runProfile(*M, Base);
    if (!After.Result.Ok ||
        After.Result.ExitValue != Before.Result.ExitValue) {
      std::fprintf(stderr, "%s behaviour changed!\n", Spec.Name.c_str());
      return 1;
    }
    double Speedup = double(Before.total(hw::Event::Cycles)) /
                     double(After.total(hw::Event::Cycles));
    Table.addRow({Spec.Name, std::to_string(Layout.FunctionsReordered),
                  std::to_string(Before.total(hw::Event::ICacheMiss)),
                  std::to_string(After.total(hw::Event::ICacheMiss)),
                  std::to_string(Before.total(hw::Event::Cycles)),
                  std::to_string(After.total(hw::Event::Cycles)),
                  formatString("%.3f", Speedup)});
    Averager.add(Spec.Name, Spec.IsFloat, {Speedup});
  }
  Table.addSeparator();
  Table.addRow({"SPEC95 Avg", "", "", "", "", "",
                formatString("%.3f", Averager.average(true, true)[0])});
  std::printf("%s", Table.render().c_str());
  std::printf("\nThe workloads are small enough to fit the I-cache, so "
              "gains here are\nmodest; examples/hot_path_optimizer builds "
              "a program with I-cache\npressure where the same pass "
              "removes ~99%% of I-cache misses.\n");
  return 0;
}
