//===- bench/Common.h - Shared experiment-harness helpers ------*- C++ -*-===//
///
/// \file
/// Helpers shared by the table/figure regeneration binaries: declaring
/// workload runs on the shared experiment driver (which executes them on
/// a worker pool and memoizes them across binaries), the CINT/CFP/SPEC
/// averaging rows of the paper's tables, and simulated-seconds formatting
/// (the paper reports wall-clock seconds of a 167 MHz UltraSPARC; we
/// report simulated cycles scaled the same way so the tables read alike).
///
/// The idiomatic bench shape is two loops: submit every run up front,
/// then collect and render in submission order. Workers execute the whole
/// run set behind the first get().
///
//===----------------------------------------------------------------------===//

#ifndef PP_BENCH_COMMON_H
#define PP_BENCH_COMMON_H

#include "analysis/PaperTables.h"
#include "driver/Driver.h"
#include "support/Format.h"
#include "support/TableWriter.h"
#include "workloads/Spec.h"

#include <cassert>
#include <cstdio>
#include <string>
#include <vector>

namespace pp {
namespace bench {

/// The paper's machine: 167 MHz. Simulated cycles / ClockHz = "seconds".
inline constexpr double ClockHz = 167e6;

inline double simSeconds(uint64_t Cycles) {
  return double(Cycles) / ClockHz;
}

/// Declares \p Name at \p Scale under \p M on the shared driver and
/// returns the ticket.
inline size_t submitWorkload(const workloads::WorkloadSpec &Spec,
                             prof::Mode M, int Scale = 1) {
  driver::RunPlan Plan;
  Plan.Workload = Spec.Name;
  Plan.Scale = Scale;
  Plan.Options.Config.M = M;
  return driver::defaultDriver().submit(std::move(Plan));
}

/// Collects a declared run. A failed run is reported on stderr and comes
/// back null: the bench skips that row (marking it degraded) and every
/// other row renders from its own run — one bad run degrades one table
/// entry instead of killing the whole regeneration.
inline driver::OutcomePtr getRun(size_t Ticket, const std::string &Name,
                                 prof::Mode M) {
  driver::OutcomePtr Run = driver::defaultDriver().get(Ticket);
  if (!Run || !Run->Result.Ok) {
    std::fprintf(stderr, "workload %s failed under %s: %s\n", Name.c_str(),
                 prof::modeName(M),
                 Run && !Run->Result.Error.empty()
                     ? Run->Result.Error.c_str()
                     : "no outcome");
    return nullptr;
  }
  return Run;
}

/// Marks a skipped table row on stderr; use with `continue` when getRun
/// returned null for any of a row's runs.
inline void noteDegradedRow(const std::string &Name) {
  std::fprintf(stderr, "row %s skipped (run failed); remaining rows are "
                       "unaffected\n",
               Name.c_str());
}

/// Runs \p Spec at \p Scale under \p M with default options; null on
/// failure (already reported). One-off convenience; prefer
/// submit-all-then-get.
inline driver::OutcomePtr runWorkload(const workloads::WorkloadSpec &Spec,
                                      prof::Mode M, int Scale = 1) {
  return getRun(submitWorkload(Spec, M, Scale), Spec.Name, M);
}

/// The suite averaging rows now live beside the table renderers; keep the
/// historical bench-namespace name working.
using analysis::SuiteAverager;

} // namespace bench
} // namespace pp

#endif // PP_BENCH_COMMON_H
