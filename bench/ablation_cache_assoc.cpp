//===- bench/ablation_cache_assoc.cpp - cache-geometry sensitivity --------------===//
//
// The paper measured one machine (16 KB direct-mapped L1 D). A natural
// question for the reproduction: does the hot-path concentration of
// misses survive different cache geometries, or is it an artifact of
// direct mapping? This bench sweeps associativity 1/2/4 and reports the
// total misses and the miss share of the hot paths under each.
//
//===----------------------------------------------------------------------===//

#include "Common.h"

#include "analysis/HotPaths.h"

using namespace pp;
using namespace pp::bench;
using prof::Mode;

int main() {
  std::printf("Ablation: hot-path miss concentration vs D-cache "
              "associativity (16 KB)\n\n");

  TableWriter Table;
  Table.setHeader({"Benchmark", "Miss 1-way", "Hot%", "Miss 2-way", "Hot%",
                   "Miss 4-way", "Hot%"});
  SuiteAverager Averager;

  const std::vector<workloads::WorkloadSpec> &Suite = workloads::spec95Suite();
  std::vector<std::vector<size_t>> Declared;
  for (const workloads::WorkloadSpec &Spec : Suite) {
    std::vector<size_t> PerAssoc;
    for (unsigned Assoc : {1u, 2u, 4u}) {
      driver::RunPlan Plan;
      Plan.Workload = Spec.Name;
      Plan.Options.Config.M = Mode::FlowHw;
      Plan.Options.MachineCfg.DCache = hw::CacheConfig{16 * 1024, 32, Assoc};
      PerAssoc.push_back(driver::defaultDriver().submit(std::move(Plan)));
    }
    Declared.push_back(std::move(PerAssoc));
  }

  for (size_t Index = 0; Index != Suite.size(); ++Index) {
    const workloads::WorkloadSpec &Spec = Suite[Index];
    std::vector<std::string> Row{Spec.Name};
    std::vector<double> Values;
    bool RowOk = true;
    for (size_t Variant = 0; Variant != 3 && RowOk; ++Variant) {
      driver::OutcomePtr Run =
          driver::defaultDriver().get(Declared[Index][Variant]);
      if (!Run || !Run->Result.Ok) {
        std::fprintf(stderr, "%s failed\n", Spec.Name.c_str());
        RowOk = false;
        break;
      }
      std::vector<analysis::PathRecord> Records =
          analysis::collectPathRecords(*Run);
      analysis::HotPathAnalysis A = analysis::analyzeHotPaths(Records, 0.01);
      double HotShare = A.TotalMisses == 0
                            ? 0
                            : 100.0 * double(A.Hot.Misses) /
                                  double(A.TotalMisses);
      Row.push_back(formatEng(double(A.TotalMisses)));
      Row.push_back(formatString("%.0f%%", HotShare));
      Values.push_back(double(A.TotalMisses));
      Values.push_back(HotShare);
    }
    if (!RowOk) {
      noteDegradedRow(Spec.Name);
      continue;
    }
    Table.addRow(Row);
    Averager.add(Spec.Name, Spec.IsFloat, Values);
  }
  Table.addSeparator();
  std::vector<double> Avg = Averager.average(true, true);
  Table.addRow({"SPEC95 Avg", formatEng(Avg[0]),
                formatString("%.0f%%", Avg[1]), formatEng(Avg[2]),
                formatString("%.0f%%", Avg[3]), formatEng(Avg[4]),
                formatString("%.0f%%", Avg[5])});
  std::printf("%s", Table.render().c_str());
  std::printf("\nExpected: associativity removes some conflict misses but "
              "the\nconcentration of the remaining misses on a few hot "
              "paths persists —\nthe phenomenon is about locality "
              "structure, not about one cache design.\n");
  return 0;
}
