//===- bench/table4_hot_paths.cpp - Table 4 --------------------------------------===//
//
// Regenerates Table 4: L1 data cache misses by path. A Flow-and-HW run
// with PIC0 = instructions and PIC1 = D-cache read misses classifies the
// executed paths: hot paths incur at least 1% of the program's misses;
// dense hot paths have above-average miss ratios. The paper's headline:
// 3-28 hot paths cover 59-98% of the misses (go and gcc need a 0.1%
// threshold, reported separately below).
//
// The rendering lives in analysis::renderTable4 so that tools/pp-report
// regenerates the same table, byte for byte, from stored artifacts.
//
//===----------------------------------------------------------------------===//

#include "Common.h"

#include "analysis/HotPaths.h"
#include "analysis/PaperTables.h"

using namespace pp;
using namespace pp::bench;
using prof::Mode;

int main() {
  const std::vector<workloads::WorkloadSpec> &Suite = workloads::spec95Suite();
  std::vector<size_t> Declared;
  for (const workloads::WorkloadSpec &Spec : Suite)
    Declared.push_back(submitWorkload(Spec, Mode::FlowHw));

  std::vector<analysis::SuitePathRows> Rows;
  for (size_t Index = 0; Index != Suite.size(); ++Index) {
    const workloads::WorkloadSpec &Spec = Suite[Index];
    driver::OutcomePtr Run =
        getRun(Declared[Index], Spec.Name, Mode::FlowHw);
    if (!Run) {
      noteDegradedRow(Spec.Name);
      continue;
    }
    Rows.push_back({Spec.Name, Spec.IsFloat,
                    analysis::collectPathRecords(*Run)});
  }

  std::printf("%s", analysis::renderTable4(Rows).c_str());
  return 0;
}
