//===- bench/table4_hot_paths.cpp - Table 4 --------------------------------------===//
//
// Regenerates Table 4: L1 data cache misses by path. A Flow-and-HW run
// with PIC0 = instructions and PIC1 = D-cache read misses classifies the
// executed paths: hot paths incur at least 1% of the program's misses;
// dense hot paths have above-average miss ratios. The paper's headline:
// 3-28 hot paths cover 59-98% of the misses (go and gcc need a 0.1%
// threshold, reported separately below).
//
//===----------------------------------------------------------------------===//

#include "Common.h"

#include "analysis/HotPaths.h"

using namespace pp;
using namespace pp::bench;
using prof::Mode;

int main() {
  std::printf("Table 4: L1 data cache misses by path "
              "(hot threshold = 1%% of misses)\n\n");

  TableWriter Table;
  Table.setHeader({"Benchmark", "Paths", "Inst", "Miss", "Hot", "Inst%",
                   "Miss%", "Dense", "Inst%", "Miss%", "Sparse", "Cold",
                   "Miss%"});
  SuiteAverager Averager;
  std::vector<std::pair<std::string, std::vector<analysis::PathRecord>>>
      GoGccRecords;

  const std::vector<workloads::WorkloadSpec> &Suite = workloads::spec95Suite();
  std::vector<size_t> Declared;
  for (const workloads::WorkloadSpec &Spec : Suite)
    Declared.push_back(submitWorkload(Spec, Mode::FlowHw));

  for (size_t Index = 0; Index != Suite.size(); ++Index) {
    const workloads::WorkloadSpec &Spec = Suite[Index];
    driver::OutcomePtr Run =
        getRun(Declared[Index], Spec.Name, Mode::FlowHw);
    if (!Run) {
      noteDegradedRow(Spec.Name);
      continue;
    }
    std::vector<analysis::PathRecord> Records =
        analysis::collectPathRecords(*Run);
    analysis::HotPathAnalysis A = analysis::analyzeHotPaths(Records, 0.01);

    Table.addRow({Spec.Name, std::to_string(A.TotalPaths),
                  formatEng(double(A.TotalInsts)),
                  formatEng(double(A.TotalMisses)),
                  std::to_string(A.Hot.Num),
                  formatPercent(double(A.Hot.Insts), double(A.TotalInsts)),
                  formatPercent(double(A.Hot.Misses), double(A.TotalMisses)),
                  std::to_string(A.Dense.Num),
                  formatPercent(double(A.Dense.Insts), double(A.TotalInsts)),
                  formatPercent(double(A.Dense.Misses),
                                double(A.TotalMisses)),
                  std::to_string(A.Sparse.Num), std::to_string(A.Cold.Num),
                  formatPercent(double(A.Cold.Misses),
                                double(A.TotalMisses))});
    Averager.add(Spec.Name, Spec.IsFloat,
                 {double(A.TotalPaths), double(A.Hot.Num),
                  100.0 * double(A.Hot.Misses) / double(A.TotalMisses),
                  double(A.Dense.Num), double(A.Sparse.Num),
                  double(A.Cold.Num)});
    if (Spec.Name == "099.go" || Spec.Name == "126.gcc")
      GoGccRecords.push_back({Spec.Name, std::move(Records)});
  }

  auto AddAverage = [&](const char *Label, bool Int, bool Float,
                        bool NoGoGcc) {
    std::vector<double> Avg = Averager.average(Int, Float, NoGoGcc);
    Table.addRow({Label, formatString("%.1f", Avg[0]), "", "",
                  formatString("%.1f", Avg[1]), "",
                  formatString("%.1f%%", Avg[2]),
                  formatString("%.1f", Avg[3]), "", "",
                  formatString("%.1f", Avg[4]), formatString("%.1f", Avg[5]),
                  ""});
  };
  Table.addSeparator();
  AddAverage("CINT95 Avg", true, false, false);
  AddAverage("CFP95 Avg", false, true, false);
  AddAverage("SPEC95 Avg", true, true, false);
  AddAverage("SPEC95 Avg - go,gcc", true, true, true);
  std::printf("%s", Table.render().c_str());

  // The paper's go/gcc follow-up: lower the threshold to 0.1%.
  std::printf("\nOutliers rerun with a 0.1%% threshold (the paper finds "
              "~1%% of executed\npaths then cover roughly half the "
              "misses):\n\n");
  TableWriter Outliers;
  Outliers.setHeader({"Benchmark", "Paths", "Hot@0.1%", "Hot paths/all",
                      "Miss%"});
  for (auto &[Name, Records] : GoGccRecords) {
    analysis::HotPathAnalysis A = analysis::analyzeHotPaths(Records, 0.001);
    Outliers.addRow(
        {Name, std::to_string(A.TotalPaths), std::to_string(A.Hot.Num),
         formatPercent(double(A.Hot.Num), double(A.TotalPaths)),
         formatPercent(double(A.Hot.Misses), double(A.TotalMisses))});
  }
  std::printf("%s", Outliers.render().c_str());
  std::printf("\nPaper's shape: a handful of hot paths (3-28) covers most "
              "misses, most\nhot paths are dense, and go/gcc execute an "
              "order of magnitude more\npaths with a flatter distribution.\n");
  return 0;
}
