//===- bench/ablation_edge_vs_path.cpp - §6.1's edge-profiling comparison ------===//
//
// The paper reports that intraprocedural path profiling costs roughly
// twice as much as efficient edge profiling [BL94]. This bench runs the
// Knuth-style chord-counting edge profiler and frequency-only path
// profiling over the suite and compares their overheads against the base.
//
//===----------------------------------------------------------------------===//

#include "Common.h"

using namespace pp;
using namespace pp::bench;
using prof::Mode;

int main() {
  std::printf("Ablation: edge profiling (spanning-tree chords) vs path "
              "profiling\n\n");

  TableWriter Table;
  Table.setHeader({"Benchmark", "Base", "Edge x", "Flow x", "Flow/Edge"});
  SuiteAverager Averager;

  const std::vector<workloads::WorkloadSpec> &Suite = workloads::spec95Suite();
  struct Tickets {
    size_t Base, Edge, Flow;
  };
  std::vector<Tickets> Declared;
  for (const workloads::WorkloadSpec &Spec : Suite)
    Declared.push_back({submitWorkload(Spec, Mode::None),
                        submitWorkload(Spec, Mode::Edge),
                        submitWorkload(Spec, Mode::Flow)});

  for (size_t Index = 0; Index != Suite.size(); ++Index) {
    const workloads::WorkloadSpec &Spec = Suite[Index];
    driver::OutcomePtr Base =
        getRun(Declared[Index].Base, Spec.Name, Mode::None);
    driver::OutcomePtr Edge =
        getRun(Declared[Index].Edge, Spec.Name, Mode::Edge);
    driver::OutcomePtr Flow =
        getRun(Declared[Index].Flow, Spec.Name, Mode::Flow);
    if (!Base || !Edge || !Flow) {
      noteDegradedRow(Spec.Name);
      continue;
    }

    double BaseCycles = double(Base->total(hw::Event::Cycles));
    double EdgeX = double(Edge->total(hw::Event::Cycles)) / BaseCycles;
    double FlowX = double(Flow->total(hw::Event::Cycles)) / BaseCycles;
    double EdgeOver = EdgeX - 1.0, FlowOver = FlowX - 1.0;
    double Ratio = EdgeOver > 0 ? FlowOver / EdgeOver : 0;

    Table.addRow({Spec.Name, formatString("%.4f", simSeconds(BaseCycles)),
                  formatString("%.2f", EdgeX), formatString("%.2f", FlowX),
                  formatString("%.1f", Ratio)});
    Averager.add(Spec.Name, Spec.IsFloat, {EdgeX, FlowX, Ratio});
  }
  Table.addSeparator();
  std::vector<double> Avg = Averager.average(true, true);
  Table.addRow({"SPEC95 Avg", "", formatString("%.2f", Avg[0]),
                formatString("%.2f", Avg[1]), formatString("%.1f", Avg[2])});
  std::printf("%s", Table.render().c_str());
  std::printf("\nPaper's shape: path profiling costs roughly 2x the "
              "overhead of\nedge profiling while distinguishing "
              "exponentially more behaviour.\n");
  return 0;
}
