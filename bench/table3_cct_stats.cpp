//===- bench/table3_cct_stats.cpp - Table 3 -------------------------------------===//
//
// Regenerates Table 3: statistics for a CCT with intraprocedural path
// information in the nodes (Context and Flow mode). Size is the
// serialised profile plus simulated heap bytes; the remaining columns are
// the paper's: node count, average node size, average out-degree, height
// (average over leaves / max), max replication of a single procedure, and
// the call-site columns including "reached by exactly one path".
//
//===----------------------------------------------------------------------===//

#include "Common.h"

#include "analysis/SiteStats.h"
#include "cct/Export.h"

using namespace pp;
using namespace pp::bench;
using prof::Mode;

int main() {
  std::printf("Table 3: statistics for a CCT with intraprocedural path "
              "information\n\n");

  TableWriter Table;
  Table.setHeader({"Benchmark", "Size", "Nodes", "AvgNode", "AvgOut",
                   "Ht avg", "Ht max", "MaxRepl", "Sites", "Used",
                   "OnePath"});

  const std::vector<workloads::WorkloadSpec> &Suite = workloads::spec95Suite();
  std::vector<size_t> Declared;
  for (const workloads::WorkloadSpec &Spec : Suite)
    Declared.push_back(submitWorkload(Spec, Mode::ContextFlow));

  for (size_t Index = 0; Index != Suite.size(); ++Index) {
    const workloads::WorkloadSpec &Spec = Suite[Index];
    // The site statistics compare the CCT against the uninstrumented
    // module's static call sites, so build it locally.
    auto Module = Spec.Build(1);
    driver::OutcomePtr Run = driver::defaultDriver().get(Declared[Index]);
    if (!Run || !Run->Result.Ok || !Run->Tree) {
      std::fprintf(stderr, "%s failed: %s\n", Spec.Name.c_str(),
                   Run && !Run->Result.Error.empty()
                       ? Run->Result.Error.c_str()
                       : "no outcome");
      noteDegradedRow(Spec.Name);
      continue;
    }
    cct::CctStats Stats = Run->Tree->computeStats();
    analysis::SitePathStats Sites =
        analysis::computeSitePathStats(*Run->Tree, *Module, Run->Instr);
    uint64_t ProfileBytes =
        cct::serialize(*Run->Tree).size() + Run->Tree->heapBytes();

    Table.addRow({Spec.Name, formatEng(double(ProfileBytes)),
                  std::to_string(Stats.NumRecords),
                  formatString("%.1f", Stats.AvgNodeBytes),
                  formatString("%.1f", Stats.AvgOutDegree),
                  formatString("%.1f", Stats.AvgLeafDepth),
                  std::to_string(Stats.MaxDepth),
                  std::to_string(Stats.MaxReplication),
                  std::to_string(Sites.TotalSites),
                  std::to_string(Sites.UsedSites),
                  std::to_string(Sites.OnePathSites)});
  }

  std::printf("%s", Table.render().c_str());
  std::printf("\nPaper's shape: CCTs are bushy rather than tall (out-degree\n"
              "well above 1, height bounded by the procedure count); call-\n"
              "heavy codes (vortex-like) dominate node counts; a sizeable\n"
              "fraction of used call sites is reached by exactly one path,\n"
              "where flow+context profiling equals full interprocedural\n"
              "path profiling.\n");
  return 0;
}
