//===- bench/table3_cct_stats.cpp - Table 3 -------------------------------------===//
//
// Regenerates Table 3: statistics for a CCT with intraprocedural path
// information in the nodes (Context and Flow mode). Size is the
// serialised profile plus simulated heap bytes; the remaining columns are
// the paper's: node count, average node size, average out-degree, height
// (average over leaves / max), max replication of a single procedure, and
// the call-site columns including "reached by exactly one path".
//
// The rendering lives in analysis::renderTable3 so that tools/pp-report
// regenerates the same table, byte for byte, from stored artifacts.
//
//===----------------------------------------------------------------------===//

#include "Common.h"

#include "analysis/PaperTables.h"
#include "analysis/SiteStats.h"
#include "cct/Export.h"

using namespace pp;
using namespace pp::bench;
using prof::Mode;

int main() {
  const std::vector<workloads::WorkloadSpec> &Suite = workloads::spec95Suite();
  std::vector<size_t> Declared;
  for (const workloads::WorkloadSpec &Spec : Suite)
    Declared.push_back(submitWorkload(Spec, Mode::ContextFlow));

  std::vector<analysis::Table3Row> Rows;
  for (size_t Index = 0; Index != Suite.size(); ++Index) {
    const workloads::WorkloadSpec &Spec = Suite[Index];
    // The site statistics compare the CCT against the uninstrumented
    // module's static call sites, so build it locally.
    auto Module = Spec.Build(1);
    driver::OutcomePtr Run = driver::defaultDriver().get(Declared[Index]);
    if (!Run || !Run->Result.Ok || !Run->Tree) {
      std::fprintf(stderr, "%s failed: %s\n", Spec.Name.c_str(),
                   Run && !Run->Result.Error.empty()
                       ? Run->Result.Error.c_str()
                       : "no outcome");
      noteDegradedRow(Spec.Name);
      continue;
    }
    analysis::Table3Row Row;
    Row.Name = Spec.Name;
    Row.Stats = Run->Tree->computeStats();
    Row.Sites = analysis::computeSitePathStats(*Run->Tree, *Module,
                                               Run->Instr);
    Row.ProfileBytes =
        cct::serialize(*Run->Tree).size() + Run->Tree->heapBytes();
    Rows.push_back(std::move(Row));
  }

  std::printf("%s", analysis::renderTable3(Rows).c_str());
  return 0;
}
