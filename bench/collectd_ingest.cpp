//===- bench/collectd_ingest.cpp - fleet ingest throughput ----------------------===//
//
// Load-tests the pp-collectd ingest service with a simulated fleet of
// 10,000 clients, twice over:
//
//   1. In process: uploads flow through the bounded-queue thread pool
//      into windowed merge trees while queries run against the folded
//      windows, and the threaded fold is asserted byte-identical to a
//      serial reference.
//   2. Over the wire: the same 10,000 framed client sessions are
//      replayed against the epoll socket server by a pool of forked
//      sender *processes* (real connect/write/EOF lifecycles, not
//      threads), with framed queries in flight from the parent; the
//      windows the server folds must match the serial reference byte
//      for byte.
//
// Reports sustained artifacts/sec and p50/p99 query latency for both
// paths, and writes BENCH_collectd.json (machine-readable; CI uploads
// it as a workflow artifact).
//
// Fork discipline: the parent is threaded (ingest pool, epoll event
// thread), so forked senders touch no heap — every frame stream is
// serialized before the first fork and children only issue syscalls.
//
//===----------------------------------------------------------------------===//

#include "collectd/Ingest.h"
#include "collectd/Server.h"
#include "collectd/Wire.h"
#include "prof/Session.h"
#include "profdb/Artifact.h"
#include "support/TableWriter.h"
#include "workloads/Spec.h"

#include <algorithm>
#include <arpa/inet.h>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string>
#include <sys/socket.h>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace pp;

namespace {

double seconds(std::chrono::steady_clock::time_point From,
               std::chrono::steady_clock::time_point To) {
  return std::chrono::duration<double>(To - From).count();
}

/// Runs one pre-framed client session from a forked child: connect,
/// stream the bytes, half-close, drain replies to EOF. Syscalls only —
/// the parent is threaded, so the child must never malloc.
int replaySession(const sockaddr_in &Addr, const uint8_t *Bytes,
                  size_t Size) {
  int Fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (Fd < 0)
    return 10;
  if (::connect(Fd, reinterpret_cast<const sockaddr *>(&Addr),
                sizeof(Addr)) != 0) {
    ::close(Fd);
    return 11;
  }
  size_t Off = 0;
  while (Off < Size) {
    ssize_t N = ::send(Fd, Bytes + Off, Size - Off, MSG_NOSIGNAL);
    if (N <= 0) {
      ::close(Fd);
      return 12;
    }
    Off += static_cast<size_t>(N);
  }
  ::shutdown(Fd, SHUT_WR);
  char Sink[4096];
  for (;;) {
    ssize_t N = ::recv(Fd, Sink, sizeof(Sink), 0);
    if (N == 0)
      break;
    if (N < 0) {
      ::close(Fd);
      return 13;
    }
  }
  ::close(Fd);
  return 0;
}

/// Blocking framed client for the parent's in-flight wire queries.
class QueryClient {
public:
  bool connectTo(const sockaddr_in &Addr) {
    Fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (Fd < 0)
      return false;
    timeval Timeout{30, 0};
    ::setsockopt(Fd, SOL_SOCKET, SO_RCVTIMEO, &Timeout, sizeof(Timeout));
    int One = 1;
    ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
    return ::connect(Fd, reinterpret_cast<const sockaddr *>(&Addr),
                     sizeof(Addr)) == 0;
  }
  bool sendFrame(const collectd::Frame &F) {
    std::vector<uint8_t> Bytes = collectd::encodeFrame(F);
    size_t Off = 0;
    while (Off < Bytes.size()) {
      ssize_t N =
          ::send(Fd, Bytes.data() + Off, Bytes.size() - Off, MSG_NOSIGNAL);
      if (N <= 0)
        return false;
      Off += static_cast<size_t>(N);
    }
    return true;
  }
  bool readFrame(collectd::Frame &F) {
    for (;;) {
      collectd::WireStatus Status = Decoder.next(F);
      if (Status == collectd::WireStatus::Ok)
        return true;
      if (Status != collectd::WireStatus::NeedMore)
        return false;
      uint8_t Buf[4096];
      ssize_t N = ::recv(Fd, Buf, sizeof(Buf), 0);
      if (N <= 0)
        return false;
      Decoder.feed(Buf, static_cast<size_t>(N));
    }
  }
  ~QueryClient() {
    if (Fd >= 0)
      ::close(Fd);
  }

private:
  int Fd = -1;
  collectd::FrameDecoder Decoder;
};

} // namespace

int main() {
  constexpr uint64_t NumClients = 10000;
  constexpr uint64_t UploadsPerClient = 1;
  constexpr uint64_t NumWindows = 4;
  constexpr unsigned NumQueries = 256;
  constexpr unsigned NumSenders = 8;
  constexpr unsigned NumWireQueries = 256;
  const char *Workload = "130.li";

  auto Module = workloads::buildWorkload(Workload, 1);
  if (!Module) {
    std::fprintf(stderr, "collectd_ingest: cannot build %s\n", Workload);
    return 1;
  }

  // One real run; every client uploads its artifact under a per-upload
  // fingerprint (distinct fleet machines reporting the same binary).
  prof::SessionOptions Options;
  Options.Config.M = prof::Mode::ContextFlowHw;
  prof::RunOutcome Outcome = prof::runProfile(*Module, Options);
  if (!Outcome.Result.Ok) {
    std::fprintf(stderr, "collectd_ingest: run failed: %s\n",
                 Outcome.Result.Error.c_str());
    return 1;
  }

  const uint64_t TotalUploads = NumClients * UploadsPerClient;
  std::vector<collectd::Upload> Uploads;
  Uploads.reserve(TotalUploads);
  size_t UploadBytes = 0;
  for (uint64_t Index = 0; Index != TotalUploads; ++Index) {
    profdb::Artifact A = profdb::artifactFromOutcome(
        Outcome, *Module, "fleet;upload" + std::to_string(Index), Workload,
        1, Options.Config);
    uint64_t Client = Index / UploadsPerClient;
    collectd::Upload U{"c" + std::to_string(Client), Client % NumWindows,
                       profdb::encodeArtifact(A)};
    UploadBytes += U.Bytes.size();
    Uploads.push_back(std::move(U));
  }

  // Pre-frame every wire session now, before any service thread exists:
  // HELLO then the client's uploads, one byte stream per client.
  std::vector<std::vector<uint8_t>> Sessions(NumClients);
  for (uint64_t Client = 0; Client != NumClients; ++Client) {
    collectd::Frame Hello;
    Hello.Type = collectd::FrameType::Hello;
    Hello.Tenant = Uploads[Client * UploadsPerClient].Tenant;
    Hello.Acquisition = "exact";
    std::vector<uint8_t> Stream = collectd::encodeFrame(Hello);
    for (uint64_t U = 0; U != UploadsPerClient; ++U) {
      const collectd::Upload &Up = Uploads[Client * UploadsPerClient + U];
      collectd::Frame Frame;
      Frame.Type = collectd::FrameType::Upload;
      Frame.Serial = U + 1;
      Frame.Window = Up.Window;
      Frame.Artifact = Up.Bytes;
      std::vector<uint8_t> Encoded = collectd::encodeFrame(Frame);
      Stream.insert(Stream.end(), Encoded.begin(), Encoded.end());
    }
    Sessions[Client] = std::move(Stream);
  }

  // Serial reference fold for both determinism checks.
  std::vector<std::vector<std::vector<uint8_t>>> Reference(NumWindows);
  {
    collectd::IngestConfig C;
    C.Threads = 0;
    collectd::IngestService Service(C);
    for (const collectd::Upload &U : Uploads)
      Service.submit(U);
    Service.drain();
    for (uint64_t W = 0; W != NumWindows; ++W) {
      std::string Error;
      Reference[W] = Service.windowBytes(W, Error);
      if (Reference[W].empty()) {
        std::fprintf(stderr, "collectd_ingest: reference fold failed: %s\n",
                     Error.c_str());
        return 1;
      }
    }
  }

  unsigned Cores = std::thread::hardware_concurrency();
  collectd::IngestConfig C;
  C.Threads = Cores ? std::min(Cores, 8u) : 4;
  C.QueueCapacity = 512;
  double IngestSeconds = 0;
  double P50 = 0, P99 = 0;
  uint64_t Compactions = 0;
  {
    collectd::IngestService Service(C);

    // Feed the fleet from one producer thread while the main thread
    // runs queries against whatever the windows hold so far — the
    // service's steady state, not an idle postmortem.
    auto T0 = std::chrono::steady_clock::now();
    std::thread Producer([&Service, &Uploads] {
      for (const collectd::Upload &U : Uploads)
        Service.submit(U);
    });

    std::vector<double> QueryLatencies;
    QueryLatencies.reserve(NumQueries);
    for (unsigned Q = 0; Q != NumQueries; ++Q) {
      uint64_t Window = Q % NumWindows;
      std::string Error;
      auto Tq0 = std::chrono::steady_clock::now();
      std::string Out = Service.queryTopProcs(Window, 10, Error);
      auto Tq1 = std::chrono::steady_clock::now();
      // Early queries may beat the first accepted upload of a window;
      // those answer "no such window", which is itself a served query.
      (void)Out;
      QueryLatencies.push_back(seconds(Tq0, Tq1));
    }

    Producer.join();
    Service.drain();
    auto T1 = std::chrono::steady_clock::now();
    IngestSeconds = seconds(T0, T1);

    collectd::IngestStats Stats = Service.stats();
    Compactions = Stats.Compactions;
    if (Stats.Accepted != TotalUploads) {
      std::fprintf(stderr,
                   "collectd_ingest: expected %llu accepted, got %llu\n",
                   static_cast<unsigned long long>(TotalUploads),
                   static_cast<unsigned long long>(Stats.Accepted));
      return 1;
    }

    std::string Error;
    if (Service.windowBytes(0, Error) != Reference[0]) {
      std::fprintf(stderr, "collectd_ingest: threaded fold diverged from "
                           "the serial reference\n");
      return 1;
    }

    std::sort(QueryLatencies.begin(), QueryLatencies.end());
    auto Percentile = [&QueryLatencies](double P) {
      size_t Index = static_cast<size_t>(P * (QueryLatencies.size() - 1));
      return QueryLatencies[Index];
    };
    P50 = Percentile(0.50);
    P99 = Percentile(0.99);
  }

  // --- Wire phase: the same 10k sessions through real sockets. -------
  collectd::IngestConfig WireCfg;
  WireCfg.Threads = 0;
  collectd::IngestService WireService(WireCfg);
  collectd::ServerConfig ServerCfg;
  ServerCfg.IdleTimeoutMs = 60000;
  collectd::Server Server(ServerCfg, WireService);
  std::string Error;
  if (!Server.start(Error)) {
    std::fprintf(stderr, "collectd_ingest: server: %s\n", Error.c_str());
    return 1;
  }

  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(Server.port());
  ::inet_pton(AF_INET, "127.0.0.1", &Addr.sin_addr);

  // Each forked sender replays a contiguous slice of sessions, one
  // connection at a time — NumSenders concurrent connections against
  // the loop, with full connect/upload/EOF lifecycles per client.
  auto W0 = std::chrono::steady_clock::now();
  std::vector<pid_t> Senders;
  for (unsigned S = 0; S != NumSenders; ++S) {
    uint64_t Begin = NumClients * S / NumSenders;
    uint64_t End = NumClients * (S + 1) / NumSenders;
    pid_t Pid = ::fork();
    if (Pid < 0) {
      std::fprintf(stderr, "collectd_ingest: fork failed\n");
      return 1;
    }
    if (Pid == 0) {
      for (uint64_t Client = Begin; Client != End; ++Client) {
        int Rc = replaySession(Addr, Sessions[Client].data(),
                               Sessions[Client].size());
        if (Rc != 0)
          ::_exit(Rc);
      }
      ::_exit(0);
    }
    Senders.push_back(Pid);
  }

  // Framed queries ride alongside the upload storm on the parent's own
  // connection; their latency includes the server's synchronous folds.
  std::vector<double> WireLatencies;
  WireLatencies.reserve(NumWireQueries);
  {
    QueryClient Client;
    collectd::Frame Hello;
    Hello.Type = collectd::FrameType::Hello;
    Hello.Tenant = "bench-query";
    Hello.Acquisition = "exact";
    collectd::Frame Reply;
    if (!Client.connectTo(Addr) || !Client.sendFrame(Hello) ||
        !Client.readFrame(Reply)) {
      std::fprintf(stderr, "collectd_ingest: query client hello failed\n");
      return 1;
    }
    for (unsigned Q = 0; Q != NumWireQueries; ++Q) {
      collectd::Frame Query;
      Query.Type = collectd::FrameType::Query;
      Query.Serial = Q + 1;
      Query.Kind = collectd::QueryKind::TopProcs;
      Query.Window = Q % NumWindows;
      Query.Limit = 10;
      auto Tq0 = std::chrono::steady_clock::now();
      if (!Client.sendFrame(Query) || !Client.readFrame(Reply)) {
        std::fprintf(stderr, "collectd_ingest: wire query %u failed\n", Q);
        return 1;
      }
      auto Tq1 = std::chrono::steady_clock::now();
      WireLatencies.push_back(seconds(Tq0, Tq1));
    }
  }

  for (pid_t Pid : Senders) {
    int Status = 0;
    if (::waitpid(Pid, &Status, 0) != Pid || !WIFEXITED(Status) ||
        WEXITSTATUS(Status) != 0) {
      std::fprintf(stderr, "collectd_ingest: sender %d failed (status %d)\n",
                   Pid, Status);
      return 1;
    }
  }
  auto W1 = std::chrono::steady_clock::now();
  double WireSeconds = seconds(W0, W1);
  Server.stop();

  collectd::IngestStats WireStats = WireService.stats();
  collectd::ServerStats NetStats = Server.stats();
  if (WireStats.Accepted != TotalUploads) {
    std::fprintf(stderr,
                 "collectd_ingest: wire expected %llu accepted, got %llu\n",
                 static_cast<unsigned long long>(TotalUploads),
                 static_cast<unsigned long long>(WireStats.Accepted));
    return 1;
  }
  for (uint64_t W = 0; W != NumWindows; ++W) {
    if (WireService.windowBytes(W, Error) != Reference[W]) {
      std::fprintf(stderr, "collectd_ingest: wire fold of window %llu "
                           "diverged from the serial reference\n",
                   static_cast<unsigned long long>(W));
      return 1;
    }
  }

  std::sort(WireLatencies.begin(), WireLatencies.end());
  auto WirePercentile = [&WireLatencies](double P) {
    size_t Index = static_cast<size_t>(P * (WireLatencies.size() - 1));
    return WireLatencies[Index];
  };
  double WireP50 = WirePercentile(0.50), WireP99 = WirePercentile(0.99);
  double PerSec = TotalUploads / IngestSeconds;
  double WirePerSec = TotalUploads / WireSeconds;

  auto Ms = [](double Seconds) {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%.3f", Seconds * 1e3);
    return std::string(Buf);
  };
  TableWriter Table;
  Table.setHeader({"Path", "Clients", "Uploads", "Artifacts/s",
                   "Query p50 ms", "Query p99 ms"});
  Table.addRow({"in-process", std::to_string(NumClients),
                std::to_string(TotalUploads),
                std::to_string((uint64_t)PerSec), Ms(P50), Ms(P99)});
  Table.addRow({"wire", std::to_string(NumClients),
                std::to_string(TotalUploads),
                std::to_string((uint64_t)WirePerSec), Ms(WireP50),
                Ms(WireP99)});
  std::printf("Fleet ingest (%llu clients, %u sender processes on the "
              "wire path; every fold byte-identical to the serial "
              "reference)\n\n%s",
              static_cast<unsigned long long>(NumClients), NumSenders,
              Table.render().c_str());

  std::ofstream Json("BENCH_collectd.json");
  char Buf[1280];
  std::snprintf(Buf, sizeof(Buf),
                "{\n  \"bench\": \"collectd_ingest\",\n"
                "  \"clients\": %llu,\n"
                "  \"uploads\": %llu,\n"
                "  \"upload_bytes\": %zu,\n"
                "  \"windows\": %llu,\n"
                "  \"ingest_threads\": %u,\n"
                "  \"hardware_cores\": %u,\n"
                "  \"ingest_seconds\": %.6f,\n"
                "  \"artifacts_per_second\": %.1f,\n"
                "  \"queries\": %u,\n"
                "  \"query_p50_seconds\": %.6f,\n"
                "  \"query_p99_seconds\": %.6f,\n"
                "  \"compactions\": %llu,\n"
                "  \"bit_identical\": true,\n"
                "  \"wire_sender_processes\": %u,\n"
                "  \"wire_seconds\": %.6f,\n"
                "  \"wire_artifacts_per_second\": %.1f,\n"
                "  \"wire_queries\": %u,\n"
                "  \"wire_query_p50_seconds\": %.6f,\n"
                "  \"wire_query_p99_seconds\": %.6f,\n"
                "  \"wire_connections\": %llu,\n"
                "  \"wire_frames_in\": %llu,\n"
                "  \"wire_bytes_in\": %llu,\n"
                "  \"wire_bytes_out\": %llu,\n"
                "  \"wire_bit_identical\": true\n}\n",
                static_cast<unsigned long long>(NumClients),
                static_cast<unsigned long long>(TotalUploads), UploadBytes,
                static_cast<unsigned long long>(NumWindows), C.Threads,
                Cores, IngestSeconds, PerSec, NumQueries, P50, P99,
                static_cast<unsigned long long>(Compactions), NumSenders,
                WireSeconds, WirePerSec, NumWireQueries, WireP50, WireP99,
                static_cast<unsigned long long>(NetStats.ConnectionsAccepted),
                static_cast<unsigned long long>(NetStats.FramesIn),
                static_cast<unsigned long long>(NetStats.BytesIn),
                static_cast<unsigned long long>(NetStats.BytesOut));
  Json << Buf;
  std::printf("\nwrote BENCH_collectd.json (%.0f artifacts/s in process, "
              "%.0f artifacts/s over the wire, wire query p99 %.2f ms)\n",
              PerSec, WirePerSec, WireP99 * 1e3);
  return 0;
}
