//===- bench/collectd_ingest.cpp - fleet ingest throughput ----------------------===//
//
// Load-tests the pp-collectd ingest service with a simulated fleet:
// 1024 clients each uploading a few profile artifacts through the
// bounded-queue thread pool into windowed merge trees, with queries
// running against the folded windows while ingest is still in flight.
// Reports sustained artifacts/sec and the p50/p99 query latency under
// that ingest load, and asserts the fold stayed deterministic (threaded
// bytes == a serial reference fold).
//
// Writes BENCH_collectd.json (machine-readable; CI uploads it as a
// workflow artifact).
//
//===----------------------------------------------------------------------===//

#include "collectd/Ingest.h"
#include "prof/Session.h"
#include "profdb/Artifact.h"
#include "support/TableWriter.h"
#include "workloads/Spec.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

using namespace pp;

namespace {

double seconds(std::chrono::steady_clock::time_point From,
               std::chrono::steady_clock::time_point To) {
  return std::chrono::duration<double>(To - From).count();
}

} // namespace

int main() {
  constexpr uint64_t NumClients = 1024;
  constexpr uint64_t UploadsPerClient = 3;
  constexpr uint64_t NumWindows = 4;
  constexpr unsigned NumQueries = 256;
  const char *Workload = "130.li";

  auto Module = workloads::buildWorkload(Workload, 1);
  if (!Module) {
    std::fprintf(stderr, "collectd_ingest: cannot build %s\n", Workload);
    return 1;
  }

  // One real run; every client uploads its artifact under a per-upload
  // fingerprint (distinct fleet machines reporting the same binary).
  prof::SessionOptions Options;
  Options.Config.M = prof::Mode::ContextFlowHw;
  prof::RunOutcome Outcome = prof::runProfile(*Module, Options);
  if (!Outcome.Result.Ok) {
    std::fprintf(stderr, "collectd_ingest: run failed: %s\n",
                 Outcome.Result.Error.c_str());
    return 1;
  }

  const uint64_t TotalUploads = NumClients * UploadsPerClient;
  std::vector<collectd::Upload> Uploads;
  Uploads.reserve(TotalUploads);
  size_t UploadBytes = 0;
  for (uint64_t Index = 0; Index != TotalUploads; ++Index) {
    profdb::Artifact A = profdb::artifactFromOutcome(
        Outcome, *Module, "fleet;upload" + std::to_string(Index), Workload,
        1, Options.Config);
    uint64_t Client = Index / UploadsPerClient;
    collectd::Upload U{"c" + std::to_string(Client), Client % NumWindows,
                       profdb::encodeArtifact(A)};
    UploadBytes += U.Bytes.size();
    Uploads.push_back(std::move(U));
  }

  // Serial reference fold for the determinism check.
  std::vector<std::vector<uint8_t>> Reference;
  {
    collectd::IngestConfig C;
    C.Threads = 0;
    collectd::IngestService Service(C);
    for (const collectd::Upload &U : Uploads)
      Service.submit(U);
    Service.drain();
    std::string Error;
    Reference = Service.windowBytes(0, Error);
    if (Reference.empty()) {
      std::fprintf(stderr, "collectd_ingest: reference fold failed: %s\n",
                   Error.c_str());
      return 1;
    }
  }

  unsigned Cores = std::thread::hardware_concurrency();
  collectd::IngestConfig C;
  C.Threads = Cores ? std::min(Cores, 8u) : 4;
  C.QueueCapacity = 512;
  collectd::IngestService Service(C);

  // Feed the fleet from one producer thread while the main thread runs
  // queries against whatever the windows hold so far — the service's
  // steady state, not an idle postmortem.
  auto T0 = std::chrono::steady_clock::now();
  std::thread Producer([&Service, &Uploads] {
    for (collectd::Upload &U : Uploads)
      Service.submit(std::move(U));
  });

  std::vector<double> QueryLatencies;
  QueryLatencies.reserve(NumQueries);
  for (unsigned Q = 0; Q != NumQueries; ++Q) {
    uint64_t Window = Q % NumWindows;
    std::string Error;
    auto Tq0 = std::chrono::steady_clock::now();
    std::string Out = Service.queryTopProcs(Window, 10, Error);
    auto Tq1 = std::chrono::steady_clock::now();
    // Early queries may beat the first accepted upload of a window;
    // those answer "no such window", which is itself a served query.
    (void)Out;
    QueryLatencies.push_back(seconds(Tq0, Tq1));
  }

  Producer.join();
  Service.drain();
  auto T1 = std::chrono::steady_clock::now();
  double IngestSeconds = seconds(T0, T1);

  collectd::IngestStats Stats = Service.stats();
  if (Stats.Accepted != TotalUploads) {
    std::fprintf(stderr,
                 "collectd_ingest: expected %llu accepted, got %llu\n",
                 static_cast<unsigned long long>(TotalUploads),
                 static_cast<unsigned long long>(Stats.Accepted));
    return 1;
  }

  std::string Error;
  std::vector<std::vector<uint8_t>> Threaded = Service.windowBytes(0, Error);
  if (Threaded != Reference) {
    std::fprintf(stderr, "collectd_ingest: threaded fold diverged from the "
                         "serial reference\n");
    return 1;
  }

  std::sort(QueryLatencies.begin(), QueryLatencies.end());
  auto Percentile = [&QueryLatencies](double P) {
    size_t Index = static_cast<size_t>(P * (QueryLatencies.size() - 1));
    return QueryLatencies[Index];
  };
  double P50 = Percentile(0.50), P99 = Percentile(0.99);
  double PerSec = TotalUploads / IngestSeconds;

  auto Ms = [](double Seconds) {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%.3f", Seconds * 1e3);
    return std::string(Buf);
  };
  TableWriter Table;
  Table.setHeader({"Clients", "Uploads", "Threads", "Artifacts/s",
                   "Query p50 ms", "Query p99 ms", "Compactions"});
  Table.addRow({std::to_string(NumClients), std::to_string(TotalUploads),
                std::to_string(C.Threads), std::to_string((uint64_t)PerSec),
                Ms(P50), Ms(P99), std::to_string(Stats.Compactions)});
  std::printf("Fleet ingest (%llu clients x %llu uploads, %u queries "
              "in flight; threaded bytes == serial bytes)\n\n%s",
              static_cast<unsigned long long>(NumClients),
              static_cast<unsigned long long>(UploadsPerClient), NumQueries,
              Table.render().c_str());

  std::ofstream Json("BENCH_collectd.json");
  char Buf[640];
  std::snprintf(Buf, sizeof(Buf),
                "{\n  \"bench\": \"collectd_ingest\",\n"
                "  \"clients\": %llu,\n"
                "  \"uploads\": %llu,\n"
                "  \"upload_bytes\": %zu,\n"
                "  \"windows\": %llu,\n"
                "  \"ingest_threads\": %u,\n"
                "  \"hardware_cores\": %u,\n"
                "  \"ingest_seconds\": %.6f,\n"
                "  \"artifacts_per_second\": %.1f,\n"
                "  \"queries\": %u,\n"
                "  \"query_p50_seconds\": %.6f,\n"
                "  \"query_p99_seconds\": %.6f,\n"
                "  \"compactions\": %llu,\n"
                "  \"bit_identical\": true\n}\n",
                static_cast<unsigned long long>(NumClients),
                static_cast<unsigned long long>(TotalUploads), UploadBytes,
                static_cast<unsigned long long>(NumWindows), C.Threads,
                Cores, IngestSeconds, PerSec, NumQueries, P50, P99,
                static_cast<unsigned long long>(Stats.Compactions));
  Json << Buf;
  std::printf("\nwrote BENCH_collectd.json (%.0f artifacts/s, query p99 "
              "%.2f ms)\n",
              PerSec, P99 * 1e3);
  return 0;
}
