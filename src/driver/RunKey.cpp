//===- driver/RunKey.cpp - Canonical run fingerprints ------------------------===//

#include "driver/RunKey.h"

#include "hw/Event.h"
#include "prof/Acquisition.h"
#include "prof/Mode.h"
#include "support/Format.h"

using namespace pp;
using namespace pp::driver;

namespace {

void appendCache(std::string &Out, const char *Label,
                 const hw::CacheConfig &Config) {
  Out += formatString(";%s=%llu/%llu/%u", Label,
                      (unsigned long long)Config.SizeBytes,
                      (unsigned long long)Config.LineBytes,
                      Config.Associativity);
}

} // namespace

RunKey RunKey::of(const RunPlan &Plan) {
  RunKey Key;
  const prof::SessionOptions &O = Plan.Options;
  const prof::ProfileConfig &C = O.Config;
  const hw::CostModel &Cost = O.MachineCfg.Cost;

  // An instrumentation-filter callback selects functions in ways no
  // fingerprint can name; such runs must re-execute.
  Key.Cacheable = Plan.Cacheable && !C.ShouldInstrument;

  std::string &F = Key.Fingerprint;
  F = "v2;wl=" + Plan.Workload;
  F += formatString(";scale=%d;mode=%s;pic0=%s;pic1=%s;sites=%d", Plan.Scale,
                    prof::modeName(C.M), hw::eventName(C.Pic0),
                    hw::eventName(C.Pic1), C.DistinguishCallSites ? 1 : 0);
  F += formatString(";fold=%d;arr=%llu", C.Plan.FoldFinalValues ? 1 : 0,
                    (unsigned long long)C.Plan.ArrayThreshold);
  F += formatString(
      ";cost=%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu",
      (unsigned long long)Cost.DCacheMissPenalty,
      (unsigned long long)Cost.ICacheMissPenalty,
      (unsigned long long)Cost.MispredictPenalty,
      (unsigned long long)Cost.DivCycles, (unsigned long long)Cost.FpLatency,
      (unsigned long long)Cost.FpDivLatency,
      (unsigned long long)Cost.LoadLatency,
      (unsigned long long)Cost.StoreBufferDepth,
      (unsigned long long)Cost.StoreDrainCycles);
  appendCache(F, "dc", O.MachineCfg.DCache);
  appendCache(F, "ic", O.MachineCfg.ICache);
  F += formatString(";max=%llu;sig=%s:%llu",
                    (unsigned long long)O.MaxInsts, O.SignalHandler.c_str(),
                    (unsigned long long)O.SignalInterval);
  F += formatString(";eng=%s", vm::engineName(O.Engine));
  // The acquisition dimension. Appended only for non-exact runs so every
  // pre-seam fingerprint — all of which were implicitly exact — keeps its
  // exact byte string, hash, and cache file. The trap-delivery cost joins
  // here rather than in the cost tuple for the same reason: it cannot
  // affect an exact run.
  if (O.Acq.Kind != prof::Acquisition::Exact)
    F += formatString(";acq=%s:p%u:n%llu:s%llu:t%llu",
                      prof::acquisitionName(O.Acq.Kind), O.Acq.Pic,
                      (unsigned long long)O.Acq.Period,
                      (unsigned long long)O.Acq.Seed,
                      (unsigned long long)Cost.TrapDeliveryCycles);
  // The optimizer dimension follows the same append-only convention as
  // ;acq=: only non-baseline runs carry it, so every pre-optimizer
  // fingerprint keeps its byte string, hash, and cache file.
  if (!Plan.OptVariant.empty())
    F += ";opt=" + Plan.OptVariant;
  // The k-BL window dimension, append-only like ;acq= and ;opt=: k=1 runs
  // are classic Ball-Larus and keep every legacy fingerprint byte, hash,
  // and cache file.
  if (C.K > 1)
    F += formatString(";k=%u", C.K);
  return Key;
}

uint64_t RunKey::hash() const {
  uint64_t Hash = 0xcbf29ce484222325ULL;
  for (char Ch : Fingerprint) {
    Hash ^= static_cast<uint8_t>(Ch);
    Hash *= 0x100000001b3ULL;
  }
  return Hash;
}

std::string RunKey::fileStem() const {
  return formatString("pp-%016llx", (unsigned long long)hash());
}
