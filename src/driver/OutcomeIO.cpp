//===- driver/OutcomeIO.cpp - RunOutcome (de)serialisation --------------------===//

#include "driver/OutcomeIO.h"

#include "cct/CallingContextTree.h"

#include <cstring>

using namespace pp;
using namespace pp::driver;

namespace {

constexpr uint64_t Magic = 0x5050524f; // "PPRO"
constexpr uint64_t Version = 1;

class Writer {
public:
  std::vector<uint8_t> Bytes;

  void u8(uint8_t Value) { Bytes.push_back(Value); }
  void u64(uint64_t Value) {
    for (unsigned Index = 0; Index != 8; ++Index)
      Bytes.push_back(static_cast<uint8_t>(Value >> (8 * Index)));
  }
  void str(const std::string &Value) {
    u64(Value.size());
    Bytes.insert(Bytes.end(), Value.begin(), Value.end());
  }
  void bytes(const std::vector<uint8_t> &Value) {
    u64(Value.size());
    Bytes.insert(Bytes.end(), Value.begin(), Value.end());
  }
};

class Reader {
public:
  explicit Reader(const std::vector<uint8_t> &Bytes) : Bytes(Bytes) {}

  bool u8(uint8_t &Value) {
    if (Cursor + 1 > Bytes.size())
      return false;
    Value = Bytes[Cursor++];
    return true;
  }
  bool u64(uint64_t &Value) {
    if (Cursor + 8 > Bytes.size())
      return false;
    Value = 0;
    for (unsigned Index = 0; Index != 8; ++Index)
      Value |= uint64_t(Bytes[Cursor + Index]) << (8 * Index);
    Cursor += 8;
    return true;
  }
  bool str(std::string &Value) {
    uint64_t Size;
    if (!u64(Size) || Cursor + Size > Bytes.size())
      return false;
    Value.assign(reinterpret_cast<const char *>(Bytes.data()) + Cursor, Size);
    Cursor += Size;
    return true;
  }
  bool bytes(std::vector<uint8_t> &Value) {
    uint64_t Size;
    if (!u64(Size) || Cursor + Size > Bytes.size())
      return false;
    Value.assign(Bytes.begin() + static_cast<long>(Cursor),
                 Bytes.begin() + static_cast<long>(Cursor + Size));
    Cursor += Size;
    return true;
  }

private:
  const std::vector<uint8_t> &Bytes;
  size_t Cursor = 0;
};

void writeTree(Writer &W, const cct::CallingContextTree &Tree) {
  cct::TreeImage Image = Tree.image();
  W.u64(Image.Procs.size());
  for (const cct::ProcDesc &Proc : Image.Procs) {
    W.str(Proc.Name);
    W.u64(Proc.NumSites);
    W.bytes(Proc.SiteIsIndirect);
    W.u64(Proc.NumPaths);
  }
  W.u64(Image.NumMetrics);
  W.u64(Image.PathCellBytes);
  W.u64(Image.HashThreshold);
  W.u64(Image.HeapBytes);
  W.u64(Image.ListCells);
  W.u64(Image.Records.size());
  for (const cct::TreeImage::Record &Rec : Image.Records) {
    W.u64(Rec.Proc);
    W.u64(static_cast<uint64_t>(Rec.Parent));
    W.u64(Rec.Addr);
    W.u64(Rec.PathTableAddr);
    W.u64(Rec.Metrics.size());
    for (uint64_t Metric : Rec.Metrics)
      W.u64(Metric);
    W.u64(Rec.PathCells.size());
    for (const auto &[Sum, Cell] : Rec.PathCells) {
      W.u64(Sum);
      W.u64(Cell.Freq);
      W.u64(Cell.Metric0);
      W.u64(Cell.Metric1);
    }
    W.u64(Rec.Slots.size());
    for (const cct::TreeImage::Slot &Slot : Rec.Slots) {
      W.u8(Slot.Kind);
      W.u64(Slot.Targets.size());
      for (const auto &[Target, CellAddr] : Slot.Targets) {
        W.u64(Target);
        W.u64(CellAddr);
      }
    }
  }
}

bool readTree(Reader &R, std::unique_ptr<cct::CallingContextTree> &Out) {
  cct::TreeImage Image;
  uint64_t NumProcs;
  if (!R.u64(NumProcs))
    return false;
  Image.Procs.resize(NumProcs);
  for (cct::ProcDesc &Proc : Image.Procs) {
    uint64_t Sites, Paths;
    if (!R.str(Proc.Name) || !R.u64(Sites) || !R.bytes(Proc.SiteIsIndirect) ||
        !R.u64(Paths))
      return false;
    Proc.NumSites = static_cast<unsigned>(Sites);
    Proc.NumPaths = Paths;
  }
  uint64_t NumMetrics, CellBytes, NumRecords;
  if (!R.u64(NumMetrics) || !R.u64(CellBytes) || !R.u64(Image.HashThreshold) ||
      !R.u64(Image.HeapBytes) || !R.u64(Image.ListCells) ||
      !R.u64(NumRecords))
    return false;
  Image.NumMetrics = static_cast<unsigned>(NumMetrics);
  Image.PathCellBytes = static_cast<unsigned>(CellBytes);
  Image.Records.resize(NumRecords);
  for (cct::TreeImage::Record &Rec : Image.Records) {
    uint64_t Proc, Parent, NumRecMetrics, NumCells, NumSlots;
    if (!R.u64(Proc) || !R.u64(Parent) || !R.u64(Rec.Addr) ||
        !R.u64(Rec.PathTableAddr) || !R.u64(NumRecMetrics))
      return false;
    Rec.Proc = static_cast<cct::ProcId>(Proc);
    Rec.Parent = static_cast<int64_t>(Parent);
    Rec.Metrics.resize(NumRecMetrics);
    for (uint64_t &Metric : Rec.Metrics)
      if (!R.u64(Metric))
        return false;
    if (!R.u64(NumCells))
      return false;
    Rec.PathCells.resize(NumCells);
    for (auto &[Sum, Cell] : Rec.PathCells)
      if (!R.u64(Sum) || !R.u64(Cell.Freq) || !R.u64(Cell.Metric0) ||
          !R.u64(Cell.Metric1))
        return false;
    if (!R.u64(NumSlots))
      return false;
    Rec.Slots.resize(NumSlots);
    for (cct::TreeImage::Slot &Slot : Rec.Slots) {
      uint64_t NumTargets;
      if (!R.u8(Slot.Kind) || !R.u64(NumTargets))
        return false;
      Slot.Targets.resize(NumTargets);
      for (auto &[Target, CellAddr] : Slot.Targets)
        if (!R.u64(Target) || !R.u64(CellAddr))
          return false;
    }
  }
  Out = cct::CallingContextTree::fromImage(Image);
  return Out != nullptr;
}

} // namespace

std::vector<uint8_t>
driver::serializeOutcome(const prof::RunOutcome &Outcome,
                         const std::string &Fingerprint) {
  Writer W;
  W.u64(Magic);
  W.u64(Version);
  W.str(Fingerprint);

  W.u8(Outcome.Result.Ok ? 1 : 0);
  W.u64(Outcome.Result.ExitValue);
  W.u64(Outcome.Result.ExecutedInsts);
  W.str(Outcome.Result.Error);

  W.u64(hw::NumEvents);
  for (uint64_t Total : Outcome.Totals)
    W.u64(Total);

  W.u64(Outcome.PathProfiles.size());
  for (const prof::FunctionPathProfile &Profile : Outcome.PathProfiles) {
    W.u64(Profile.FuncId);
    W.u8(Profile.HasProfile ? 1 : 0);
    W.u64(Profile.NumPaths);
    W.u8(Profile.Hashed ? 1 : 0);
    W.u64(Profile.Paths.size());
    for (const prof::PathEntry &Entry : Profile.Paths) {
      W.u64(Entry.PathSum);
      W.u64(Entry.Freq);
      W.u64(Entry.Metric0);
      W.u64(Entry.Metric1);
    }
  }

  W.u64(Outcome.EdgeProfiles.size());
  for (const prof::EdgeProfile &Profile : Outcome.EdgeProfiles) {
    W.u64(Profile.FuncId);
    W.u8(Profile.HasProfile ? 1 : 0);
    W.u64(Profile.Invocations);
    W.u64(Profile.EdgeCounts.size());
    for (uint64_t Count : Profile.EdgeCounts)
      W.u64(Count);
  }

  // Instrumentation metadata (the module itself is not persisted).
  W.u64(Outcome.Instr.Functions.size());
  for (const prof::FunctionInstrInfo &Info : Outcome.Instr.Functions) {
    W.u8(Info.Instrumented ? 1 : 0);
    W.u8(Info.HasPathProfile ? 1 : 0);
    W.u64(Info.NumPaths);
    W.u8(Info.Hashed ? 1 : 0);
    W.u64(Info.TableAddr);
    W.u64(Info.Stride);
    W.u64(Info.EdgeTableAddr);
    W.u64(Info.ChordEdges.size());
    for (unsigned Edge : Info.ChordEdges)
      W.u64(Edge);
    W.u64(Info.NumSites);
    W.bytes(Info.SiteIsIndirect);
  }

  W.u8(Outcome.Tree ? 1 : 0);
  if (Outcome.Tree)
    writeTree(W, *Outcome.Tree);
  return std::move(W.Bytes);
}

bool driver::deserializeOutcome(const std::vector<uint8_t> &Bytes,
                                const std::string &ExpectedFingerprint,
                                prof::RunOutcome &Out) {
  Reader R(Bytes);
  uint64_t Header, FileVersion;
  std::string Fingerprint;
  if (!R.u64(Header) || Header != Magic || !R.u64(FileVersion) ||
      FileVersion != Version || !R.str(Fingerprint) ||
      Fingerprint != ExpectedFingerprint)
    return false;

  uint8_t Ok;
  if (!R.u8(Ok) || !R.u64(Out.Result.ExitValue) ||
      !R.u64(Out.Result.ExecutedInsts) || !R.str(Out.Result.Error))
    return false;
  Out.Result.Ok = Ok != 0;

  uint64_t NumTotals;
  if (!R.u64(NumTotals) || NumTotals != hw::NumEvents)
    return false;
  for (uint64_t &Total : Out.Totals)
    if (!R.u64(Total))
      return false;

  uint64_t NumPathProfiles;
  if (!R.u64(NumPathProfiles))
    return false;
  Out.PathProfiles.resize(NumPathProfiles);
  for (prof::FunctionPathProfile &Profile : Out.PathProfiles) {
    uint64_t FuncId, NumEntries;
    uint8_t HasProfile, Hashed;
    if (!R.u64(FuncId) || !R.u8(HasProfile) || !R.u64(Profile.NumPaths) ||
        !R.u8(Hashed) || !R.u64(NumEntries))
      return false;
    Profile.FuncId = static_cast<unsigned>(FuncId);
    Profile.HasProfile = HasProfile != 0;
    Profile.Hashed = Hashed != 0;
    Profile.Paths.resize(NumEntries);
    for (prof::PathEntry &Entry : Profile.Paths)
      if (!R.u64(Entry.PathSum) || !R.u64(Entry.Freq) ||
          !R.u64(Entry.Metric0) || !R.u64(Entry.Metric1))
        return false;
  }

  uint64_t NumEdgeProfiles;
  if (!R.u64(NumEdgeProfiles))
    return false;
  Out.EdgeProfiles.resize(NumEdgeProfiles);
  for (prof::EdgeProfile &Profile : Out.EdgeProfiles) {
    uint64_t FuncId, NumCounts;
    uint8_t HasProfile;
    if (!R.u64(FuncId) || !R.u8(HasProfile) || !R.u64(Profile.Invocations) ||
        !R.u64(NumCounts))
      return false;
    Profile.FuncId = static_cast<unsigned>(FuncId);
    Profile.HasProfile = HasProfile != 0;
    Profile.EdgeCounts.resize(NumCounts);
    for (uint64_t &Count : Profile.EdgeCounts)
      if (!R.u64(Count))
        return false;
  }

  uint64_t NumFunctions;
  if (!R.u64(NumFunctions))
    return false;
  Out.Instr.M = nullptr;
  Out.Instr.Functions.resize(NumFunctions);
  for (prof::FunctionInstrInfo &Info : Out.Instr.Functions) {
    uint8_t Instrumented, HasPathProfile, Hashed;
    uint64_t Stride, NumChords, NumSites;
    if (!R.u8(Instrumented) || !R.u8(HasPathProfile) ||
        !R.u64(Info.NumPaths) || !R.u8(Hashed) || !R.u64(Info.TableAddr) ||
        !R.u64(Stride) || !R.u64(Info.EdgeTableAddr) || !R.u64(NumChords))
      return false;
    Info.F = nullptr;
    Info.Instrumented = Instrumented != 0;
    Info.HasPathProfile = HasPathProfile != 0;
    Info.Hashed = Hashed != 0;
    Info.Stride = static_cast<unsigned>(Stride);
    Info.ChordEdges.resize(NumChords);
    for (unsigned &Edge : Info.ChordEdges) {
      uint64_t Value;
      if (!R.u64(Value))
        return false;
      Edge = static_cast<unsigned>(Value);
    }
    if (!R.u64(NumSites) || !R.bytes(Info.SiteIsIndirect))
      return false;
    Info.NumSites = static_cast<unsigned>(NumSites);
  }

  uint8_t HasTree;
  if (!R.u8(HasTree))
    return false;
  if (HasTree) {
    std::unique_ptr<cct::CallingContextTree> Tree;
    if (!readTree(R, Tree))
      return false;
    Out.Tree = std::move(Tree);
  }
  return true;
}
