//===- driver/OutcomeIO.cpp - RunOutcome (de)serialisation --------------------===//

#include "driver/OutcomeIO.h"

#include "cct/CallingContextTree.h"
#include "support/AddressLayout.h"
#include "support/Checksum.h"

#include <cstring>

using namespace pp;
using namespace pp::driver;

namespace {

constexpr uint64_t Magic = 0x5050524f; // "PPRO"
constexpr uint64_t Version = 2;        // 2: CRC32 trailer appended

// Sanity ceilings for decoded tree geometry. Real images sit far below
// them; a corrupt file that exceeds one is rejected as malformed instead
// of driving the CCT allocator (which treats exhaustion as fatal) or the
// host allocator into the ground.
constexpr uint64_t MaxTreeMetrics = 1024;
constexpr uint64_t MaxPathCellBytes = 4096;
constexpr uint64_t MaxProcSites = uint64_t(1) << 20;
constexpr uint64_t MaxCctHeapBytes =
    layout::ProfStackBase - layout::CctHeapBase;

class Writer {
public:
  std::vector<uint8_t> Bytes;

  void u8(uint8_t Value) { Bytes.push_back(Value); }
  void u64(uint64_t Value) {
    for (unsigned Index = 0; Index != 8; ++Index)
      Bytes.push_back(static_cast<uint8_t>(Value >> (8 * Index)));
  }
  void str(const std::string &Value) {
    u64(Value.size());
    Bytes.insert(Bytes.end(), Value.begin(), Value.end());
  }
  void bytes(const std::vector<uint8_t> &Value) {
    u64(Value.size());
    Bytes.insert(Bytes.end(), Value.begin(), Value.end());
  }
};

/// Bounds-checked reads over an untrusted byte span. Every length and
/// count is validated against the bytes actually *remaining* — never with
/// `Cursor + Size > total` arithmetic, which wraps for Size near
/// UINT64_MAX and lets a corrupt file read out of bounds.
class Reader {
public:
  Reader(const uint8_t *Data, size_t Size) : Data(Data), Size(Size) {}

  size_t remaining() const { return Size - Cursor; }
  bool atEnd() const { return Cursor == Size; }

  bool u8(uint8_t &Value) {
    if (remaining() < 1)
      return false;
    Value = Data[Cursor++];
    return true;
  }
  bool u64(uint64_t &Value) {
    if (remaining() < 8)
      return false;
    Value = 0;
    for (unsigned Index = 0; Index != 8; ++Index)
      Value |= uint64_t(Data[Cursor + Index]) << (8 * Index);
    Cursor += 8;
    return true;
  }
  bool str(std::string &Value) {
    uint64_t Length;
    if (!u64(Length) || Length > remaining())
      return false;
    Value.assign(reinterpret_cast<const char *>(Data) + Cursor,
                 static_cast<size_t>(Length));
    Cursor += static_cast<size_t>(Length);
    return true;
  }
  bool bytes(std::vector<uint8_t> &Value) {
    uint64_t Length;
    if (!u64(Length) || Length > remaining())
      return false;
    Value.assign(Data + Cursor, Data + Cursor + Length);
    Cursor += static_cast<size_t>(Length);
    return true;
  }
  /// Reads an element count that precedes \p MinElemBytes-byte-minimum
  /// elements. A count no honest writer could have produced — more
  /// elements than the remaining bytes can encode — fails here, before
  /// any resize(), so a corrupt count of 10^18 cannot trigger a
  /// pathological allocation.
  bool count(uint64_t &Value, size_t MinElemBytes) {
    if (!u64(Value))
      return false;
    return Value <= remaining() / MinElemBytes;
  }

private:
  const uint8_t *Data;
  size_t Size;
  size_t Cursor = 0;
};

// Minimum encoded sizes (bytes) of variable-count elements, used to bound
// counts before allocation.
constexpr size_t MinProcBytes = 8 + 8 + 8 + 8;     // name, sites, mask, paths
constexpr size_t MinRecordBytes = 5 * 8 + 2 * 8;   // fixed fields + 2 counts
constexpr size_t MinPathCellBytes = 4 * 8;
constexpr size_t MinSlotBytes = 1 + 8;
constexpr size_t MinTargetBytes = 2 * 8;
constexpr size_t MinPathProfileBytes = 8 + 1 + 8 + 1 + 8;
constexpr size_t MinPathEntryBytes = 4 * 8;
constexpr size_t MinEdgeProfileBytes = 8 + 1 + 8 + 8;
// 3 flag bytes + NumPaths, TableAddr, Stride, EdgeTableAddr, chord count,
// NumSites, and the SiteIsIndirect length: 7 u64 fields.
constexpr size_t MinInstrInfoBytes = 3 + 7 * 8;

void writeTree(Writer &W, const cct::CallingContextTree &Tree) {
  cct::TreeImage Image = Tree.image();
  W.u64(Image.Procs.size());
  for (const cct::ProcDesc &Proc : Image.Procs) {
    W.str(Proc.Name);
    W.u64(Proc.NumSites);
    W.bytes(Proc.SiteIsIndirect);
    W.u64(Proc.NumPaths);
  }
  W.u64(Image.NumMetrics);
  W.u64(Image.PathCellBytes);
  W.u64(Image.HashThreshold);
  W.u64(Image.HeapBytes);
  W.u64(Image.ListCells);
  W.u64(Image.Records.size());
  for (const cct::TreeImage::Record &Rec : Image.Records) {
    W.u64(Rec.Proc);
    W.u64(static_cast<uint64_t>(Rec.Parent));
    W.u64(Rec.Addr);
    W.u64(Rec.PathTableAddr);
    W.u64(Rec.Metrics.size());
    for (uint64_t Metric : Rec.Metrics)
      W.u64(Metric);
    W.u64(Rec.PathCells.size());
    for (const auto &[Sum, Cell] : Rec.PathCells) {
      W.u64(Sum);
      W.u64(Cell.Freq);
      W.u64(Cell.Metric0);
      W.u64(Cell.Metric1);
    }
    W.u64(Rec.Slots.size());
    for (const cct::TreeImage::Slot &Slot : Rec.Slots) {
      W.u8(Slot.Kind);
      W.u64(Slot.Targets.size());
      for (const auto &[Target, CellAddr] : Slot.Targets) {
        W.u64(Target);
        W.u64(CellAddr);
      }
    }
  }
}

DecodeStatus readTree(Reader &R,
                      std::unique_ptr<cct::CallingContextTree> &Out) {
  cct::TreeImage Image;
  uint64_t NumProcs;
  if (!R.count(NumProcs, MinProcBytes))
    return DecodeStatus::Truncated;
  Image.Procs.resize(NumProcs);
  for (cct::ProcDesc &Proc : Image.Procs) {
    uint64_t Sites, Paths;
    if (!R.str(Proc.Name) || !R.u64(Sites) || !R.bytes(Proc.SiteIsIndirect) ||
        !R.u64(Paths))
      return DecodeStatus::Truncated;
    if (Sites > MaxProcSites)
      return DecodeStatus::Malformed;
    Proc.NumSites = static_cast<unsigned>(Sites);
    Proc.NumPaths = Paths;
  }
  uint64_t NumMetrics, CellBytes, NumRecords;
  if (!R.u64(NumMetrics) || !R.u64(CellBytes) || !R.u64(Image.HashThreshold) ||
      !R.u64(Image.HeapBytes) || !R.u64(Image.ListCells))
    return DecodeStatus::Truncated;
  // The tree constructor allocates per-record metric arrays and simulated
  // heap space up front; insane geometry would abort inside it, so reject
  // it here.
  if (NumMetrics > MaxTreeMetrics || CellBytes > MaxPathCellBytes ||
      Image.HeapBytes > MaxCctHeapBytes)
    return DecodeStatus::Malformed;
  if (!R.count(NumRecords, MinRecordBytes))
    return DecodeStatus::Truncated;
  Image.NumMetrics = static_cast<unsigned>(NumMetrics);
  Image.PathCellBytes = static_cast<unsigned>(CellBytes);
  Image.Records.resize(NumRecords);
  for (cct::TreeImage::Record &Rec : Image.Records) {
    uint64_t Proc, Parent, NumRecMetrics, NumCells, NumSlots;
    if (!R.u64(Proc) || !R.u64(Parent) || !R.u64(Rec.Addr) ||
        !R.u64(Rec.PathTableAddr) || !R.count(NumRecMetrics, 8))
      return DecodeStatus::Truncated;
    Rec.Proc = static_cast<cct::ProcId>(Proc);
    Rec.Parent = static_cast<int64_t>(Parent);
    if (Rec.Proc != cct::RootProcId && Rec.Proc >= Image.Procs.size())
      return DecodeStatus::Malformed;
    Rec.Metrics.resize(NumRecMetrics);
    for (uint64_t &Metric : Rec.Metrics)
      if (!R.u64(Metric))
        return DecodeStatus::Truncated;
    if (!R.count(NumCells, MinPathCellBytes))
      return DecodeStatus::Truncated;
    Rec.PathCells.resize(NumCells);
    for (auto &[Sum, Cell] : Rec.PathCells)
      if (!R.u64(Sum) || !R.u64(Cell.Freq) || !R.u64(Cell.Metric0) ||
          !R.u64(Cell.Metric1))
        return DecodeStatus::Truncated;
    if (!R.count(NumSlots, MinSlotBytes))
      return DecodeStatus::Truncated;
    Rec.Slots.resize(NumSlots);
    for (cct::TreeImage::Slot &Slot : Rec.Slots) {
      uint64_t NumTargets;
      if (!R.u8(Slot.Kind) || !R.count(NumTargets, MinTargetBytes))
        return DecodeStatus::Truncated;
      if (Slot.Kind >
          static_cast<uint8_t>(cct::CallRecord::Slot::Kind::List))
        return DecodeStatus::Malformed;
      Slot.Targets.resize(NumTargets);
      for (auto &[Target, CellAddr] : Slot.Targets)
        if (!R.u64(Target) || !R.u64(CellAddr))
          return DecodeStatus::Truncated;
    }
  }
  Out = cct::CallingContextTree::fromImage(Image);
  return Out ? DecodeStatus::Ok : DecodeStatus::Malformed;
}

DecodeStatus decodePayload(Reader &R, prof::RunOutcome &Out) {
  uint8_t Ok;
  if (!R.u8(Ok) || !R.u64(Out.Result.ExitValue) ||
      !R.u64(Out.Result.ExecutedInsts) || !R.str(Out.Result.Error))
    return DecodeStatus::Truncated;
  Out.Result.Ok = Ok != 0;

  uint64_t NumTotals;
  if (!R.u64(NumTotals))
    return DecodeStatus::Truncated;
  if (NumTotals != hw::NumEvents)
    return DecodeStatus::Malformed;
  for (uint64_t &Total : Out.Totals)
    if (!R.u64(Total))
      return DecodeStatus::Truncated;

  uint64_t NumPathProfiles;
  if (!R.count(NumPathProfiles, MinPathProfileBytes))
    return DecodeStatus::Truncated;
  Out.PathProfiles.resize(NumPathProfiles);
  for (prof::FunctionPathProfile &Profile : Out.PathProfiles) {
    uint64_t FuncId, NumEntries;
    uint8_t HasProfile, Hashed;
    if (!R.u64(FuncId) || !R.u8(HasProfile) || !R.u64(Profile.NumPaths) ||
        !R.u8(Hashed) || !R.count(NumEntries, MinPathEntryBytes))
      return DecodeStatus::Truncated;
    Profile.FuncId = static_cast<unsigned>(FuncId);
    Profile.HasProfile = HasProfile != 0;
    Profile.Hashed = Hashed != 0;
    Profile.Paths.resize(NumEntries);
    for (prof::PathEntry &Entry : Profile.Paths)
      if (!R.u64(Entry.PathSum) || !R.u64(Entry.Freq) ||
          !R.u64(Entry.Metric0) || !R.u64(Entry.Metric1))
        return DecodeStatus::Truncated;
  }

  uint64_t NumEdgeProfiles;
  if (!R.count(NumEdgeProfiles, MinEdgeProfileBytes))
    return DecodeStatus::Truncated;
  Out.EdgeProfiles.resize(NumEdgeProfiles);
  for (prof::EdgeProfile &Profile : Out.EdgeProfiles) {
    uint64_t FuncId, NumCounts;
    uint8_t HasProfile;
    if (!R.u64(FuncId) || !R.u8(HasProfile) || !R.u64(Profile.Invocations) ||
        !R.count(NumCounts, 8))
      return DecodeStatus::Truncated;
    Profile.FuncId = static_cast<unsigned>(FuncId);
    Profile.HasProfile = HasProfile != 0;
    Profile.EdgeCounts.resize(NumCounts);
    for (uint64_t &Count : Profile.EdgeCounts)
      if (!R.u64(Count))
        return DecodeStatus::Truncated;
  }

  uint64_t NumFunctions;
  if (!R.count(NumFunctions, MinInstrInfoBytes))
    return DecodeStatus::Truncated;
  Out.Instr.M = nullptr;
  Out.Instr.Functions.resize(NumFunctions);
  for (prof::FunctionInstrInfo &Info : Out.Instr.Functions) {
    uint8_t Instrumented, HasPathProfile, Hashed;
    uint64_t Stride, NumChords, NumSites;
    if (!R.u8(Instrumented) || !R.u8(HasPathProfile) ||
        !R.u64(Info.NumPaths) || !R.u8(Hashed) || !R.u64(Info.TableAddr) ||
        !R.u64(Stride) || !R.u64(Info.EdgeTableAddr) ||
        !R.count(NumChords, 8))
      return DecodeStatus::Truncated;
    Info.F = nullptr;
    Info.Instrumented = Instrumented != 0;
    Info.HasPathProfile = HasPathProfile != 0;
    Info.Hashed = Hashed != 0;
    Info.Stride = static_cast<unsigned>(Stride);
    Info.ChordEdges.resize(NumChords);
    for (unsigned &Edge : Info.ChordEdges) {
      uint64_t Value;
      if (!R.u64(Value))
        return DecodeStatus::Truncated;
      Edge = static_cast<unsigned>(Value);
    }
    if (!R.u64(NumSites) || !R.bytes(Info.SiteIsIndirect))
      return DecodeStatus::Truncated;
    Info.NumSites = static_cast<unsigned>(NumSites);
  }

  uint8_t HasTree;
  if (!R.u8(HasTree))
    return DecodeStatus::Truncated;
  if (HasTree) {
    std::unique_ptr<cct::CallingContextTree> Tree;
    DecodeStatus Status = readTree(R, Tree);
    if (Status != DecodeStatus::Ok)
      return Status;
    Out.Tree = std::move(Tree);
  }
  return R.atEnd() ? DecodeStatus::Ok : DecodeStatus::TrailingBytes;
}

} // namespace

const char *driver::decodeStatusName(DecodeStatus Status) {
  switch (Status) {
  case DecodeStatus::Ok:
    return "ok";
  case DecodeStatus::TooShort:
    return "too-short";
  case DecodeStatus::BadMagic:
    return "bad-magic";
  case DecodeStatus::BadVersion:
    return "bad-version";
  case DecodeStatus::BadChecksum:
    return "bad-checksum";
  case DecodeStatus::FingerprintMismatch:
    return "fingerprint-mismatch";
  case DecodeStatus::Truncated:
    return "truncated";
  case DecodeStatus::Malformed:
    return "malformed";
  case DecodeStatus::TrailingBytes:
    return "trailing-bytes";
  }
  return "unknown";
}

std::vector<uint8_t>
driver::serializeOutcome(const prof::RunOutcome &Outcome,
                         const std::string &Fingerprint) {
  Writer W;
  W.u64(Magic);
  W.u64(Version);
  W.str(Fingerprint);

  W.u8(Outcome.Result.Ok ? 1 : 0);
  W.u64(Outcome.Result.ExitValue);
  W.u64(Outcome.Result.ExecutedInsts);
  W.str(Outcome.Result.Error);

  W.u64(hw::NumEvents);
  for (uint64_t Total : Outcome.Totals)
    W.u64(Total);

  W.u64(Outcome.PathProfiles.size());
  for (const prof::FunctionPathProfile &Profile : Outcome.PathProfiles) {
    W.u64(Profile.FuncId);
    W.u8(Profile.HasProfile ? 1 : 0);
    W.u64(Profile.NumPaths);
    W.u8(Profile.Hashed ? 1 : 0);
    W.u64(Profile.Paths.size());
    for (const prof::PathEntry &Entry : Profile.Paths) {
      W.u64(Entry.PathSum);
      W.u64(Entry.Freq);
      W.u64(Entry.Metric0);
      W.u64(Entry.Metric1);
    }
  }

  W.u64(Outcome.EdgeProfiles.size());
  for (const prof::EdgeProfile &Profile : Outcome.EdgeProfiles) {
    W.u64(Profile.FuncId);
    W.u8(Profile.HasProfile ? 1 : 0);
    W.u64(Profile.Invocations);
    W.u64(Profile.EdgeCounts.size());
    for (uint64_t Count : Profile.EdgeCounts)
      W.u64(Count);
  }

  // Instrumentation metadata (the module itself is not persisted).
  W.u64(Outcome.Instr.Functions.size());
  for (const prof::FunctionInstrInfo &Info : Outcome.Instr.Functions) {
    W.u8(Info.Instrumented ? 1 : 0);
    W.u8(Info.HasPathProfile ? 1 : 0);
    W.u64(Info.NumPaths);
    W.u8(Info.Hashed ? 1 : 0);
    W.u64(Info.TableAddr);
    W.u64(Info.Stride);
    W.u64(Info.EdgeTableAddr);
    W.u64(Info.ChordEdges.size());
    for (unsigned Edge : Info.ChordEdges)
      W.u64(Edge);
    W.u64(Info.NumSites);
    W.bytes(Info.SiteIsIndirect);
  }

  W.u8(Outcome.Tree ? 1 : 0);
  if (Outcome.Tree)
    writeTree(W, *Outcome.Tree);

  // Integrity trailer over everything above.
  uint32_t Crc = crc32(W.Bytes.data(), W.Bytes.size());
  for (unsigned Index = 0; Index != 4; ++Index)
    W.u8(static_cast<uint8_t>(Crc >> (8 * Index)));
  return std::move(W.Bytes);
}

DecodeStatus driver::decodeOutcome(const std::vector<uint8_t> &Bytes,
                                   const std::string &ExpectedFingerprint,
                                   prof::RunOutcome &Out) {
  // Fixed header (magic + version + fingerprint length) plus CRC trailer.
  if (Bytes.size() < 3 * 8 + 4)
    return DecodeStatus::TooShort;

  // Identify the format before checksumming: a version-1 file (no
  // trailer) or a foreign file reports its real problem, not a CRC error.
  Reader Header(Bytes.data(), Bytes.size());
  uint64_t FileMagic, FileVersion;
  (void)Header.u64(FileMagic);
  (void)Header.u64(FileVersion);
  if (FileMagic != Magic)
    return DecodeStatus::BadMagic;
  if (FileVersion != Version)
    return DecodeStatus::BadVersion;

  size_t PayloadSize = Bytes.size() - 4;
  uint32_t Stored = 0;
  for (unsigned Index = 0; Index != 4; ++Index)
    Stored |= uint32_t(Bytes[PayloadSize + Index]) << (8 * Index);
  if (crc32(Bytes.data(), PayloadSize) != Stored)
    return DecodeStatus::BadChecksum;

  Reader R(Bytes.data(), PayloadSize);
  uint64_t Skip;
  (void)R.u64(Skip); // magic, validated above
  (void)R.u64(Skip); // version, validated above
  std::string Fingerprint;
  if (!R.str(Fingerprint))
    return DecodeStatus::Truncated;
  if (Fingerprint != ExpectedFingerprint)
    return DecodeStatus::FingerprintMismatch;
  return decodePayload(R, Out);
}

bool driver::deserializeOutcome(const std::vector<uint8_t> &Bytes,
                                const std::string &ExpectedFingerprint,
                                prof::RunOutcome &Out) {
  return decodeOutcome(Bytes, ExpectedFingerprint, Out) == DecodeStatus::Ok;
}
