//===- driver/OutcomeIO.cpp - RunOutcome (de)serialisation --------------------===//

#include "driver/OutcomeIO.h"

#include "cct/CallingContextTree.h"
#include "cct/ImageIO.h"
#include "support/BinaryIO.h"
#include "support/Checksum.h"

#include <cstring>

using namespace pp;
using namespace pp::driver;

namespace {

constexpr uint64_t Magic = 0x5050524f; // "PPRO"
// 2: CRC32 trailer; 3: acquisition stats; 4: k-BL iteration counts
// (KIters in path profiles and instrumentation metadata).
constexpr uint64_t Version = 4;

// Minimum encoded sizes (bytes) of variable-count elements, used to bound
// counts before allocation.
constexpr size_t MinPathProfileBytes = 8 + 1 + 8 + 1 + 8 + 8;
constexpr size_t MinPathEntryBytes = 4 * 8;
constexpr size_t MinEdgeProfileBytes = 8 + 1 + 8 + 8;
// 3 flag bytes + NumPaths, KIters, TableAddr, Stride, EdgeTableAddr,
// chord count, NumSites, and the SiteIsIndirect length: 8 u64 fields.
constexpr size_t MinInstrInfoBytes = 3 + 8 * 8;

DecodeStatus readTree(ByteReader &R,
                      std::unique_ptr<cct::CallingContextTree> &Out) {
  cct::TreeImage Image;
  switch (cct::readTreeImage(R, Image)) {
  case cct::ImageDecodeStatus::Ok:
    break;
  case cct::ImageDecodeStatus::Truncated:
    return DecodeStatus::Truncated;
  case cct::ImageDecodeStatus::Malformed:
    return DecodeStatus::Malformed;
  }
  Out = cct::CallingContextTree::fromImage(Image);
  return Out ? DecodeStatus::Ok : DecodeStatus::Malformed;
}

DecodeStatus decodePayload(ByteReader &R, prof::RunOutcome &Out) {
  uint8_t Ok;
  if (!R.u8(Ok) || !R.u64(Out.Result.ExitValue) ||
      !R.u64(Out.Result.ExecutedInsts) || !R.str(Out.Result.Error))
    return DecodeStatus::Truncated;
  Out.Result.Ok = Ok != 0;

  uint64_t NumTotals;
  if (!R.u64(NumTotals))
    return DecodeStatus::Truncated;
  if (NumTotals != hw::NumEvents)
    return DecodeStatus::Malformed;
  for (uint64_t &Total : Out.Totals)
    if (!R.u64(Total))
      return DecodeStatus::Truncated;

  if (!R.u64(Out.Acq.Traps) || !R.u64(Out.Acq.Samples) ||
      !R.u64(Out.Acq.FramesWalked) || !R.u64(Out.Acq.LogBytes))
    return DecodeStatus::Truncated;

  uint64_t NumPathProfiles;
  if (!R.count(NumPathProfiles, MinPathProfileBytes))
    return DecodeStatus::Truncated;
  Out.PathProfiles.resize(NumPathProfiles);
  for (prof::FunctionPathProfile &Profile : Out.PathProfiles) {
    uint64_t FuncId, KIters, NumEntries;
    uint8_t HasProfile, Hashed;
    if (!R.u64(FuncId) || !R.u8(HasProfile) || !R.u64(Profile.NumPaths) ||
        !R.u8(Hashed) || !R.u64(KIters) ||
        !R.count(NumEntries, MinPathEntryBytes))
      return DecodeStatus::Truncated;
    if (KIters == 0)
      return DecodeStatus::Malformed;
    Profile.FuncId = static_cast<unsigned>(FuncId);
    Profile.HasProfile = HasProfile != 0;
    Profile.Hashed = Hashed != 0;
    Profile.KIters = static_cast<unsigned>(KIters);
    Profile.Paths.resize(NumEntries);
    for (prof::PathEntry &Entry : Profile.Paths)
      if (!R.u64(Entry.PathSum) || !R.u64(Entry.Freq) ||
          !R.u64(Entry.Metric0) || !R.u64(Entry.Metric1))
        return DecodeStatus::Truncated;
  }

  uint64_t NumEdgeProfiles;
  if (!R.count(NumEdgeProfiles, MinEdgeProfileBytes))
    return DecodeStatus::Truncated;
  Out.EdgeProfiles.resize(NumEdgeProfiles);
  for (prof::EdgeProfile &Profile : Out.EdgeProfiles) {
    uint64_t FuncId, NumCounts;
    uint8_t HasProfile;
    if (!R.u64(FuncId) || !R.u8(HasProfile) || !R.u64(Profile.Invocations) ||
        !R.count(NumCounts, 8))
      return DecodeStatus::Truncated;
    Profile.FuncId = static_cast<unsigned>(FuncId);
    Profile.HasProfile = HasProfile != 0;
    Profile.EdgeCounts.resize(NumCounts);
    for (uint64_t &Count : Profile.EdgeCounts)
      if (!R.u64(Count))
        return DecodeStatus::Truncated;
  }

  uint64_t NumFunctions;
  if (!R.count(NumFunctions, MinInstrInfoBytes))
    return DecodeStatus::Truncated;
  Out.Instr.M = nullptr;
  Out.Instr.Functions.resize(NumFunctions);
  for (prof::FunctionInstrInfo &Info : Out.Instr.Functions) {
    uint8_t Instrumented, HasPathProfile, Hashed;
    uint64_t KIters, Stride, NumChords, NumSites;
    if (!R.u8(Instrumented) || !R.u8(HasPathProfile) ||
        !R.u64(Info.NumPaths) || !R.u8(Hashed) || !R.u64(KIters) ||
        !R.u64(Info.TableAddr) || !R.u64(Stride) ||
        !R.u64(Info.EdgeTableAddr) || !R.count(NumChords, 8))
      return DecodeStatus::Truncated;
    if (KIters == 0)
      return DecodeStatus::Malformed;
    Info.F = nullptr;
    Info.Instrumented = Instrumented != 0;
    Info.HasPathProfile = HasPathProfile != 0;
    Info.Hashed = Hashed != 0;
    Info.KIters = static_cast<unsigned>(KIters);
    Info.Stride = static_cast<unsigned>(Stride);
    Info.ChordEdges.resize(NumChords);
    for (unsigned &Edge : Info.ChordEdges) {
      uint64_t Value;
      if (!R.u64(Value))
        return DecodeStatus::Truncated;
      Edge = static_cast<unsigned>(Value);
    }
    if (!R.u64(NumSites) || !R.bytes(Info.SiteIsIndirect))
      return DecodeStatus::Truncated;
    Info.NumSites = static_cast<unsigned>(NumSites);
  }

  uint8_t HasTree;
  if (!R.u8(HasTree))
    return DecodeStatus::Truncated;
  if (HasTree) {
    std::unique_ptr<cct::CallingContextTree> Tree;
    DecodeStatus Status = readTree(R, Tree);
    if (Status != DecodeStatus::Ok)
      return Status;
    Out.Tree = std::move(Tree);
  }
  return R.atEnd() ? DecodeStatus::Ok : DecodeStatus::TrailingBytes;
}

} // namespace

const char *driver::decodeStatusName(DecodeStatus Status) {
  switch (Status) {
  case DecodeStatus::Ok:
    return "ok";
  case DecodeStatus::TooShort:
    return "too-short";
  case DecodeStatus::BadMagic:
    return "bad-magic";
  case DecodeStatus::BadVersion:
    return "bad-version";
  case DecodeStatus::BadChecksum:
    return "bad-checksum";
  case DecodeStatus::FingerprintMismatch:
    return "fingerprint-mismatch";
  case DecodeStatus::Truncated:
    return "truncated";
  case DecodeStatus::Malformed:
    return "malformed";
  case DecodeStatus::TrailingBytes:
    return "trailing-bytes";
  }
  return "unknown";
}

std::vector<uint8_t>
driver::serializeOutcome(const prof::RunOutcome &Outcome,
                         const std::string &Fingerprint) {
  ByteWriter W;
  W.u64(Magic);
  W.u64(Version);
  W.str(Fingerprint);

  W.u8(Outcome.Result.Ok ? 1 : 0);
  W.u64(Outcome.Result.ExitValue);
  W.u64(Outcome.Result.ExecutedInsts);
  W.str(Outcome.Result.Error);

  W.u64(hw::NumEvents);
  for (uint64_t Total : Outcome.Totals)
    W.u64(Total);

  W.u64(Outcome.Acq.Traps);
  W.u64(Outcome.Acq.Samples);
  W.u64(Outcome.Acq.FramesWalked);
  W.u64(Outcome.Acq.LogBytes);

  W.u64(Outcome.PathProfiles.size());
  for (const prof::FunctionPathProfile &Profile : Outcome.PathProfiles) {
    W.u64(Profile.FuncId);
    W.u8(Profile.HasProfile ? 1 : 0);
    W.u64(Profile.NumPaths);
    W.u8(Profile.Hashed ? 1 : 0);
    W.u64(Profile.KIters);
    W.u64(Profile.Paths.size());
    for (const prof::PathEntry &Entry : Profile.Paths) {
      W.u64(Entry.PathSum);
      W.u64(Entry.Freq);
      W.u64(Entry.Metric0);
      W.u64(Entry.Metric1);
    }
  }

  W.u64(Outcome.EdgeProfiles.size());
  for (const prof::EdgeProfile &Profile : Outcome.EdgeProfiles) {
    W.u64(Profile.FuncId);
    W.u8(Profile.HasProfile ? 1 : 0);
    W.u64(Profile.Invocations);
    W.u64(Profile.EdgeCounts.size());
    for (uint64_t Count : Profile.EdgeCounts)
      W.u64(Count);
  }

  // Instrumentation metadata (the module itself is not persisted).
  W.u64(Outcome.Instr.Functions.size());
  for (const prof::FunctionInstrInfo &Info : Outcome.Instr.Functions) {
    W.u8(Info.Instrumented ? 1 : 0);
    W.u8(Info.HasPathProfile ? 1 : 0);
    W.u64(Info.NumPaths);
    W.u8(Info.Hashed ? 1 : 0);
    W.u64(Info.KIters);
    W.u64(Info.TableAddr);
    W.u64(Info.Stride);
    W.u64(Info.EdgeTableAddr);
    W.u64(Info.ChordEdges.size());
    for (unsigned Edge : Info.ChordEdges)
      W.u64(Edge);
    W.u64(Info.NumSites);
    W.bytes(Info.SiteIsIndirect);
  }

  W.u8(Outcome.Tree ? 1 : 0);
  if (Outcome.Tree)
    cct::writeTreeImage(W, Outcome.Tree->image());

  // Integrity trailer over everything above.
  uint32_t Crc = crc32(W.Bytes.data(), W.Bytes.size());
  for (unsigned Index = 0; Index != 4; ++Index)
    W.u8(static_cast<uint8_t>(Crc >> (8 * Index)));
  return std::move(W.Bytes);
}

DecodeStatus driver::decodeOutcome(const std::vector<uint8_t> &Bytes,
                                   const std::string &ExpectedFingerprint,
                                   prof::RunOutcome &Out) {
  // Fixed header (magic + version + fingerprint length) plus CRC trailer.
  if (Bytes.size() < 3 * 8 + 4)
    return DecodeStatus::TooShort;

  // Identify the format before checksumming: a version-1 file (no
  // trailer) or a foreign file reports its real problem, not a CRC error.
  ByteReader Header(Bytes.data(), Bytes.size());
  uint64_t FileMagic, FileVersion;
  (void)Header.u64(FileMagic);
  (void)Header.u64(FileVersion);
  if (FileMagic != Magic)
    return DecodeStatus::BadMagic;
  if (FileVersion != Version)
    return DecodeStatus::BadVersion;

  size_t PayloadSize = Bytes.size() - 4;
  uint32_t Stored = 0;
  for (unsigned Index = 0; Index != 4; ++Index)
    Stored |= uint32_t(Bytes[PayloadSize + Index]) << (8 * Index);
  if (crc32(Bytes.data(), PayloadSize) != Stored)
    return DecodeStatus::BadChecksum;

  ByteReader R(Bytes.data(), PayloadSize);
  uint64_t Skip;
  (void)R.u64(Skip); // magic, validated above
  (void)R.u64(Skip); // version, validated above
  std::string Fingerprint;
  if (!R.str(Fingerprint))
    return DecodeStatus::Truncated;
  if (Fingerprint != ExpectedFingerprint)
    return DecodeStatus::FingerprintMismatch;
  return decodePayload(R, Out);
}

bool driver::deserializeOutcome(const std::vector<uint8_t> &Bytes,
                                const std::string &ExpectedFingerprint,
                                prof::RunOutcome &Out) {
  return decodeOutcome(Bytes, ExpectedFingerprint, Out) == DecodeStatus::Ok;
}
