//===- driver/Driver.cpp - The experiment-driver facade -----------------------===//

#include "driver/Driver.h"

#include "support/Env.h"

#include <cstdio>
#include <cstdlib>

using namespace pp;
using namespace pp::driver;

Driver::~Driver() {
  if (!envFlag("PP_DRIVER_STATS", "pp-driver"))
    return;
  RunCache::Stats C = Cache.stats();
  std::fprintf(stderr,
               "pp-driver: %zu tickets, %llu runs executed on %u threads; "
               "cache: %llu memory hits, %llu disk hits, %llu misses, "
               "%llu stores%s\n",
               Scheduler.numTickets(),
               static_cast<unsigned long long>(Scheduler.runsExecuted()),
               Scheduler.numThreads(),
               static_cast<unsigned long long>(C.MemoryHits),
               static_cast<unsigned long long>(C.DiskHits),
               static_cast<unsigned long long>(C.Misses),
               static_cast<unsigned long long>(C.Stores),
               Cache.hasDiskLayer() ? " (disk layer on)" : "");
  // Error accounting only when something actually went wrong, so the
  // healthy-path stats line stays one line.
  uint64_t Failed = Scheduler.runsFailed();
  if (Failed || C.DecodeFailures || C.WriteFailures) {
    std::fprintf(stderr,
                 "pp-driver: errors: %llu runs failed, %llu cache files "
                 "rejected, %llu cache writes failed",
                 static_cast<unsigned long long>(Failed),
                 static_cast<unsigned long long>(C.DecodeFailures),
                 static_cast<unsigned long long>(C.WriteFailures));
    for (unsigned Status = 0; Status != NumDecodeStatuses; ++Status)
      if (C.DecodeFailuresBy[Status])
        std::fprintf(stderr, "; %s: %llu",
                     decodeStatusName(static_cast<DecodeStatus>(Status)),
                     static_cast<unsigned long long>(
                         C.DecodeFailuresBy[Status]));
    std::fprintf(stderr, "\n");
  }
}

Driver &pp::driver::defaultDriver() {
  static Driver Instance;
  return Instance;
}
