//===- driver/Driver.cpp - The experiment-driver facade -----------------------===//

#include "driver/Driver.h"

#include <cstdio>
#include <cstdlib>

using namespace pp;
using namespace pp::driver;

Driver::~Driver() {
  const char *Stats = std::getenv("PP_DRIVER_STATS");
  if (!Stats || Stats[0] != '1')
    return;
  RunCache::Stats C = Cache.stats();
  std::fprintf(stderr,
               "pp-driver: %zu tickets, %llu runs executed on %u threads; "
               "cache: %llu memory hits, %llu disk hits, %llu misses, "
               "%llu stores%s\n",
               Scheduler.numTickets(),
               static_cast<unsigned long long>(Scheduler.runsExecuted()),
               Scheduler.numThreads(),
               static_cast<unsigned long long>(C.MemoryHits),
               static_cast<unsigned long long>(C.DiskHits),
               static_cast<unsigned long long>(C.Misses),
               static_cast<unsigned long long>(C.Stores),
               Cache.hasDiskLayer() ? " (disk layer on)" : "");
}

Driver &pp::driver::defaultDriver() {
  static Driver Instance;
  return Instance;
}
