//===- driver/RunScheduler.h - Parallel run execution ----------*- C++ -*-===//
///
/// \file
/// Executes declared runs on a pool of worker threads. Every run is
/// independent — one Machine and one Vm per execution, no shared mutable
/// state anywhere in pp_vm/pp_hw/pp_prof — so runs proceed concurrently
/// and results are collected deterministically in submission order.
/// Duplicate submissions of the same RunKey fold onto one execution, and a
/// RunCache (when attached) is consulted before executing and updated
/// after.
///
/// Failure isolation: a run that cannot execute (unknown workload,
/// injected fault) resolves to a structured outcome with Result.Ok ==
/// false and Result.Error set, is never cached to disk, and leaves every
/// other submitted run untouched — one bad run degrades one table cell
/// instead of aborting the suite.
///
/// Environment knobs: PP_DRIVER_THREADS sets the worker count (a
/// non-numeric value warns and keeps the hardware default; 0 means
/// serial), PP_DRIVER_SERIAL=1 forces in-order execution on the calling
/// thread, and PP_PROFILE_OUT names a directory every successful run
/// (fresh or cache-hit) deposits a profile artifact into (see
/// profdb/Store.h).
///
//===----------------------------------------------------------------------===//

#ifndef PP_DRIVER_RUNSCHEDULER_H
#define PP_DRIVER_RUNSCHEDULER_H

#include "driver/RunKey.h"
#include "driver/RunPlan.h"

#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

namespace pp {
namespace driver {

class RunCache;

class RunScheduler {
public:
  /// \p Threads worker threads (0 = serial: runs execute on the calling
  /// thread, in submission order, when their results are requested).
  explicit RunScheduler(RunCache *Cache = nullptr,
                        unsigned Threads = defaultWorkerThreads());
  ~RunScheduler();

  RunScheduler(const RunScheduler &) = delete;
  RunScheduler &operator=(const RunScheduler &) = delete;

  /// Declares a run and returns its ticket. Workers pick it up
  /// immediately; a cacheable plan whose key was already submitted shares
  /// the earlier execution.
  size_t submit(RunPlan Plan);

  /// Blocks until ticket \p Ticket's run finished and returns its outcome.
  OutcomePtr get(size_t Ticket);

  /// Number of tickets issued so far.
  size_t numTickets() const;
  /// Worker threads (0 in serial mode).
  unsigned numThreads() const {
    return static_cast<unsigned>(Workers.size());
  }
  /// Runs actually executed (cache hits and folded duplicates excluded).
  uint64_t runsExecuted() const;
  /// Runs that resolved to a failed outcome (Result.Ok == false), whether
  /// executed or synthesised (unknown workload, injected fault).
  uint64_t runsFailed() const;

  /// PP_DRIVER_SERIAL / PP_DRIVER_THREADS, defaulting to the hardware
  /// concurrency clamped to [4, 16].
  static unsigned defaultWorkerThreads();

  /// Redirects artifact emission ("" disables it). Initialised from
  /// $PP_PROFILE_OUT; tools/pp's --profile-out flag overrides it.
  void setProfileOutDir(std::string Dir);

private:
  struct Task {
    RunPlan Plan;
    RunKey Key;
    bool Claimed = false;
    bool Done = false;
    OutcomePtr Outcome;
  };

  void workerLoop();
  void executeTask(Task &T);
  OutcomePtr executePlan(const RunPlan &Plan, const RunKey &Key);
  /// Deposits \p Outcome as a profile artifact when a profile-out
  /// directory is configured, the run succeeded, and the artifact is not
  /// already on disk. Emission failures warn on stderr; they never fail
  /// the run itself.
  void maybeEmitArtifact(const RunPlan &Plan, const RunKey &Key,
                         const OutcomePtr &Outcome);
  /// A structured failure outcome (Ok = false, \p Error attached).
  static OutcomePtr failedOutcome(std::string Error);

  RunCache *Cache;
  std::string ProfileOutDir;
  std::vector<std::thread> Workers;

  mutable std::mutex Mu;
  std::condition_variable WorkReady;
  std::condition_variable TaskDone;
  std::vector<std::unique_ptr<Task>> Tasks;
  /// Ticket -> task index (several tickets may alias one task).
  std::vector<size_t> TicketToTask;
  /// Fingerprint -> task index, for duplicate folding.
  std::unordered_map<std::string, size_t> TaskOfKey;
  size_t NextUnclaimed = 0;
  uint64_t Executed = 0;
  uint64_t Failed = 0;
  bool ShuttingDown = false;
};

} // namespace driver
} // namespace pp

#endif // PP_DRIVER_RUNSCHEDULER_H
