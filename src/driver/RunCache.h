//===- driver/RunCache.h - Memoized run outcomes ---------------*- C++ -*-===//
///
/// \file
/// Two-level memoization of run outcomes keyed by RunKey: an in-process
/// table shared by every consumer in a binary, and an optional on-disk
/// layer (one file per run, atomic writes) that lets consecutive bench
/// binaries reuse each other's runs — measurement once, reporting many
/// times, in the gprof tradition of persisting profile data for many
/// consumers. Thread-safe.
///
/// The disk layer trusts nothing it reads: files carry a CRC32 trailer
/// and bounded length fields (see OutcomeIO.h), and a file that fails to
/// decode for any reason is counted, deleted, and treated as a miss — the
/// run simply re-executes and the next store rewrites the file. Failed
/// writes (permissions, disk full, injected faults) likewise degrade to
/// memory-only caching instead of erroring.
///
//===----------------------------------------------------------------------===//

#ifndef PP_DRIVER_RUNCACHE_H
#define PP_DRIVER_RUNCACHE_H

#include "driver/OutcomeIO.h"
#include "driver/RunKey.h"
#include "driver/RunPlan.h"

#include <array>
#include <mutex>
#include <string>
#include <unordered_map>

namespace pp {
namespace driver {

class RunCache {
public:
  /// \p DiskDir enables the on-disk layer when non-empty; the directory is
  /// created on first store.
  explicit RunCache(std::string DiskDir = std::string());

  /// Reads $PP_RUN_CACHE_DIR; empty means memory-only caching.
  static std::string diskDirFromEnv();

  /// Returns the memoized outcome for \p Key, consulting memory first and
  /// then disk (a disk hit is promoted into memory). Null on miss, for
  /// uncacheable keys, and for disk files that fail to decode — those are
  /// counted per reason, removed, and re-executed by the caller.
  OutcomePtr lookup(const RunKey &Key);

  /// Memoizes \p Outcome under \p Key in both layers. No-op for
  /// uncacheable keys; failed outcomes (Result.Ok == false) are memoized
  /// in memory only, never persisted.
  void insert(const RunKey &Key, const OutcomePtr &Outcome);

  bool hasDiskLayer() const { return !DiskDir.empty(); }

  struct Stats {
    uint64_t MemoryHits = 0;
    uint64_t DiskHits = 0;
    uint64_t Misses = 0;
    uint64_t Stores = 0;
    /// Disk files rejected by the decoder (and removed), total and by
    /// DecodeStatus.
    uint64_t DecodeFailures = 0;
    std::array<uint64_t, NumDecodeStatuses> DecodeFailuresBy{};
    /// Disk writes that could not complete (unwritable directory, short
    /// write, injected fault); the memory layer still holds the outcome.
    uint64_t WriteFailures = 0;
  };
  Stats stats() const;

private:
  std::string diskPath(const RunKey &Key) const;

  mutable std::mutex Mu;
  std::unordered_map<std::string, OutcomePtr> Memory;
  std::string DiskDir;
  Stats Counts;
};

} // namespace driver
} // namespace pp

#endif // PP_DRIVER_RUNCACHE_H
