//===- driver/RunCache.h - Memoized run outcomes ---------------*- C++ -*-===//
///
/// \file
/// Two-level memoization of run outcomes keyed by RunKey: an in-process
/// table shared by every consumer in a binary, and an optional on-disk
/// layer (one file per run, atomic writes) that lets consecutive bench
/// binaries reuse each other's runs — measurement once, reporting many
/// times, in the gprof tradition of persisting profile data for many
/// consumers. Thread-safe.
///
//===----------------------------------------------------------------------===//

#ifndef PP_DRIVER_RUNCACHE_H
#define PP_DRIVER_RUNCACHE_H

#include "driver/RunKey.h"
#include "driver/RunPlan.h"

#include <mutex>
#include <string>
#include <unordered_map>

namespace pp {
namespace driver {

class RunCache {
public:
  /// \p DiskDir enables the on-disk layer when non-empty; the directory is
  /// created on first store.
  explicit RunCache(std::string DiskDir = std::string());

  /// Reads $PP_RUN_CACHE_DIR; empty means memory-only caching.
  static std::string diskDirFromEnv();

  /// Returns the memoized outcome for \p Key, consulting memory first and
  /// then disk (a disk hit is promoted into memory). Null on miss or for
  /// uncacheable keys.
  OutcomePtr lookup(const RunKey &Key);

  /// Memoizes \p Outcome under \p Key in both layers. No-op for
  /// uncacheable keys.
  void insert(const RunKey &Key, const OutcomePtr &Outcome);

  bool hasDiskLayer() const { return !DiskDir.empty(); }

  struct Stats {
    uint64_t MemoryHits = 0;
    uint64_t DiskHits = 0;
    uint64_t Misses = 0;
    uint64_t Stores = 0;
  };
  Stats stats() const;

private:
  std::string diskPath(const RunKey &Key) const;

  mutable std::mutex Mu;
  std::unordered_map<std::string, OutcomePtr> Memory;
  std::string DiskDir;
  Stats Counts;
};

} // namespace driver
} // namespace pp

#endif // PP_DRIVER_RUNCACHE_H
