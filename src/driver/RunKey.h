//===- driver/RunKey.h - Canonical run fingerprints ------------*- C++ -*-===//
///
/// \file
/// The canonical identity of a run: every knob that can change a
/// RunOutcome — workload name, scale, profiling mode, PIC routing, probe
/// placement options, the full machine configuration, and signal wiring —
/// rendered into one stable text fingerprint. Equal fingerprints mean
/// bit-identical outcomes (every run is deterministic), which is what the
/// memoizing cache and the scheduler's duplicate folding rely on.
///
//===----------------------------------------------------------------------===//

#ifndef PP_DRIVER_RUNKEY_H
#define PP_DRIVER_RUNKEY_H

#include "driver/RunPlan.h"

#include <cstdint>
#include <string>

namespace pp {
namespace driver {

/// A computed fingerprint.
struct RunKey {
  /// Human-readable canonical encoding of every knob of the run.
  std::string Fingerprint;
  /// False when the plan opted out or carries state the fingerprint
  /// cannot capture (an instrumentation-filter callback); such runs are
  /// never cached or folded.
  bool Cacheable = true;

  /// Fingerprints \p Plan.
  static RunKey of(const RunPlan &Plan);

  /// FNV-1a hash of the fingerprint.
  uint64_t hash() const;
  /// Hex file stem ("pp-<hash>") for the on-disk cache.
  std::string fileStem() const;

  bool operator==(const RunKey &Other) const {
    return Fingerprint == Other.Fingerprint;
  }
};

} // namespace driver
} // namespace pp

#endif // PP_DRIVER_RUNKEY_H
