//===- driver/RunScheduler.cpp - Parallel run execution -----------------------===//

#include "driver/RunScheduler.h"

#include "driver/FaultInjector.h"
#include "driver/RunCache.h"
#include "hw/Event.h"
#include "obs/Obs.h"
#include "prof/Acquisition.h"
#include "prof/Mode.h"
#include "profdb/Store.h"
#include "support/Env.h"
#include "support/Format.h"
#include "workloads/Spec.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include <sys/stat.h>

using namespace pp;
using namespace pp::driver;

unsigned RunScheduler::defaultWorkerThreads() {
  if (envFlag("PP_DRIVER_SERIAL", "pp-driver"))
    return 0;
  unsigned Hardware = std::thread::hardware_concurrency();
  unsigned Default = std::clamp(Hardware ? Hardware : 4u, 4u, 16u);
  uint64_t Value;
  switch (envUint64("PP_DRIVER_THREADS", "pp-driver", Value)) {
  case EnvParse::Ok:
    return static_cast<unsigned>(std::min<uint64_t>(Value, 64));
  case EnvParse::Malformed:
    // A typo must not silently drop the suite into serial mode (atol
    // would read "max" as 0); the shared helper warned, keep the
    // hardware default.
    std::fprintf(stderr, "pp-driver: using %u threads\n", Default);
    return Default;
  case EnvParse::Unset:
    break;
  }
  return Default;
}

RunScheduler::RunScheduler(RunCache *Cache, unsigned Threads)
    : Cache(Cache), ProfileOutDir(profdb::profileOutDirFromEnv()) {
  // Touch the obs collector before spawning any worker: function-local
  // statics are destroyed in reverse construction order, so this
  // guarantees the collector outlives a static Driver — its destructor
  // (which joins the workers) runs before the collector flushes the
  // report, and no worker can append to a destroyed ring buffer.
  (void)obs::enabled();
  Workers.reserve(Threads);
  for (unsigned Index = 0; Index != Threads; ++Index)
    Workers.emplace_back([this] { workerLoop(); });
}

RunScheduler::~RunScheduler() {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    ShuttingDown = true;
  }
  WorkReady.notify_all();
  for (std::thread &Worker : Workers)
    Worker.join();
}

size_t RunScheduler::submit(RunPlan Plan) {
  RunKey Key = RunKey::of(Plan);
  std::lock_guard<std::mutex> Lock(Mu);

  obs::add(obs::Counter::SchedulerSubmitted);
  size_t TaskIndex;
  auto Folded = Key.Cacheable ? TaskOfKey.find(Key.Fingerprint)
                              : TaskOfKey.end();
  if (Folded != TaskOfKey.end()) {
    obs::add(obs::Counter::SchedulerFolded);
    TaskIndex = Folded->second;
  } else {
    TaskIndex = Tasks.size();
    auto T = std::make_unique<Task>();
    T->Plan = std::move(Plan);
    T->Key = std::move(Key);
    Tasks.push_back(std::move(T));
    if (Tasks.back()->Key.Cacheable)
      TaskOfKey.emplace(Tasks.back()->Key.Fingerprint, TaskIndex);
    obs::gauge("scheduler.queue_depth",
               static_cast<int64_t>(Tasks.size() - NextUnclaimed));
    WorkReady.notify_one();
  }

  size_t Ticket = TicketToTask.size();
  TicketToTask.push_back(TaskIndex);
  return Ticket;
}

OutcomePtr RunScheduler::get(size_t Ticket) {
  std::unique_lock<std::mutex> Lock(Mu);
  assert(Ticket < TicketToTask.size() && "unknown ticket");
  size_t TaskIndex = TicketToTask[Ticket];
  Task &T = *Tasks[TaskIndex];
  if (T.Done)
    return T.Outcome;

  if (Workers.empty()) {
    // Serial mode: execute on the calling thread (unless a previous get()
    // already claimed it — impossible serially, but cheap to honour).
    if (!T.Claimed) {
      T.Claimed = true;
      Lock.unlock();
      executeTask(T);
      Lock.lock();
    }
  }
  TaskDone.wait(Lock, [&T] { return T.Done; });
  return T.Outcome;
}

size_t RunScheduler::numTickets() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return TicketToTask.size();
}

uint64_t RunScheduler::runsExecuted() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Executed;
}

uint64_t RunScheduler::runsFailed() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Failed;
}

void RunScheduler::setProfileOutDir(std::string Dir) {
  std::lock_guard<std::mutex> Lock(Mu);
  ProfileOutDir = std::move(Dir);
}

void RunScheduler::workerLoop() {
  // Per-worker run tally; a trace-only gauge (the sample lands in this
  // worker's trace lane), never part of the deterministic report.
  uint64_t WorkerRuns = 0;
  for (;;) {
    Task *Claimed;
    {
      std::unique_lock<std::mutex> Lock(Mu);
      WorkReady.wait(Lock, [this] {
        while (NextUnclaimed != Tasks.size() && Tasks[NextUnclaimed]->Claimed)
          ++NextUnclaimed;
        return ShuttingDown || NextUnclaimed != Tasks.size();
      });
      if (NextUnclaimed == Tasks.size())
        return; // shutting down with no work left
      Claimed = Tasks[NextUnclaimed++].get();
      Claimed->Claimed = true;
      obs::gauge("scheduler.queue_depth",
                 static_cast<int64_t>(Tasks.size() - NextUnclaimed));
    }
    executeTask(*Claimed);
    obs::gauge("scheduler.worker_runs", static_cast<int64_t>(++WorkerRuns));
  }
}

void RunScheduler::executeTask(Task &T) {
  // The Task lives on the heap and the claiming thread owns it until Done,
  // so the plan and key are safe to read without the lock. (The Tasks
  // vector itself is not: submit() may be reallocating it concurrently.)
  OutcomePtr Outcome = executePlan(T.Plan, T.Key);
  if (!Outcome || !Outcome->Result.Ok)
    obs::add(obs::Counter::SchedulerFailed);
  {
    std::lock_guard<std::mutex> Lock(Mu);
    if (!Outcome || !Outcome->Result.Ok)
      ++Failed;
    T.Outcome = std::move(Outcome);
    T.Done = true;
  }
  TaskDone.notify_all();
}

OutcomePtr RunScheduler::failedOutcome(std::string Error) {
  auto Outcome = std::make_shared<prof::RunOutcome>();
  Outcome->Result.Ok = false;
  Outcome->Result.Error = std::move(Error);
  return Outcome;
}

void RunScheduler::maybeEmitArtifact(const RunPlan &Plan, const RunKey &Key,
                                     const OutcomePtr &Outcome) {
  std::string Dir;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Dir = ProfileOutDir;
  }
  if (Dir.empty() || !Outcome || !Outcome->Result.Ok)
    return;
  std::string Path = Dir + "/" + profdb::artifactFileName(Key.Fingerprint);
  struct stat St;
  if (::stat(Path.c_str(), &St) == 0)
    return; // the fingerprint names the content; an existing file is it
  // The artifact carries function names, which live in the module, not
  // the outcome — rebuild it (cache hits skipped the build entirely).
  std::unique_ptr<ir::Module> M =
      Plan.Build ? Plan.Build()
                 : workloads::buildWorkload(Plan.Workload, Plan.Scale);
  if (!M) {
    std::fprintf(stderr,
                 "pp-driver: warning: cannot rebuild workload '%s' for "
                 "artifact emission\n",
                 Plan.Workload.c_str());
    return;
  }
  obs::SpanScope Deposit("driver", "artifact_deposit",
                         Plan.Workload + "@" + std::to_string(Plan.Scale) +
                             "/" + prof::modeName(Plan.Options.Config.M));
  profdb::Artifact A = profdb::artifactFromOutcome(
      *Outcome, *M, Key.Fingerprint, Plan.Workload,
      static_cast<uint64_t>(Plan.Scale), Plan.Options.Config,
      prof::acquisitionName(Plan.Options.Acq.Kind));
  std::string Error;
  if (!profdb::writeArtifactFile(Path, A, Error))
    std::fprintf(stderr,
                 "pp-driver: warning: profile artifact not written: %s\n",
                 Error.c_str());
}

OutcomePtr RunScheduler::executePlan(const RunPlan &Plan, const RunKey &Key) {
  // One span label per run, shared by all of its stage spans, so the
  // report aggregates by run identity: "workload@scale/mode".
  std::string Label = Plan.Workload + "@" + std::to_string(Plan.Scale) +
                      "/" + prof::modeName(Plan.Options.Config.M);

  if (Cache) {
    obs::SpanScope Probe("driver", "cache_probe", Label);
    if (OutcomePtr Hit = Cache->lookup(Key)) {
      maybeEmitArtifact(Plan, Key, Hit);
      return Hit;
    }
  }

  // One bad run degrades one result, never the suite: failures come back
  // as structured outcomes (Ok = false, Error set) that are not cached,
  // while every other submitted run proceeds untouched.
  std::string InjectedError;
  if (FaultInjector::instance().shouldFailRun(Key.Fingerprint,
                                              InjectedError))
    return failedOutcome(std::move(InjectedError));

  std::unique_ptr<ir::Module> M;
  {
    obs::SpanScope Build("driver", "build", Label);
    M = Plan.Build ? Plan.Build()
                   : workloads::buildWorkload(Plan.Workload, Plan.Scale);
  }
  if (!M)
    return failedOutcome("unknown workload '" + Plan.Workload + "'");

  prof::RunStager Stager(*M, Plan.Options);
  {
    obs::SpanScope S("driver", "instrument", Label);
    Stager.instrument();
  }
  {
    obs::SpanScope S("driver", "load", Label);
    Stager.load();
  }
  OutcomePtr Outcome;
  {
    // Work = the run's simulated cycle total: deterministic for a given
    // plan, and the dominant cost of the stage — it becomes the span's
    // share of virtual time in the report.
    obs::SpanScope S("driver", "execute", Label);
    Stager.execute();
    Outcome = std::make_shared<prof::RunOutcome>(Stager.extract());
    S.setWork(Outcome->total(hw::Event::Cycles));
  }
  obs::add(obs::Counter::SchedulerExecuted);
  {
    std::lock_guard<std::mutex> Lock(Mu);
    ++Executed;
  }
  if (Cache)
    Cache->insert(Key, Outcome);
  maybeEmitArtifact(Plan, Key, Outcome);
  return Outcome;
}
