//===- driver/FaultInjector.h - Deterministic fault injection --*- C++ -*-===//
///
/// \file
/// Deterministic fault injection for the driver's persistence and
/// scheduling paths. The injector sits at three seams — cache-file reads,
/// cache-file writes, and run execution — and, when armed, corrupts or
/// fails a configurable fraction of operations so tests (and brave
/// operators) can prove the driver degrades instead of crashing: a
/// corrupt cache file is rejected and the run re-executes, a failed write
/// leaves the memory layer intact, and a failed run produces one
/// structured error outcome without touching its neighbours.
///
/// All decisions derive from a seeded PRNG and per-seam operation
/// counters, so a given configuration injects the same faults in the same
/// order on every (serial) run.
///
/// Environment knobs (read once, on first use of the process-wide
/// instance; 0 or unset disables a seam):
///   PP_FAULT_SEED           PRNG seed for corruption offsets (default 0)
///   PP_FAULT_READ_FLIP=N    flip one random bit of every Nth cache read
///   PP_FAULT_READ_TRUNCATE=N  truncate every Nth cache read
///   PP_FAULT_WRITE_FAIL=N   fail every Nth cache-file write
///   PP_FAULT_RUN_FAIL=N     fail every Nth run execution
///   PP_FAULT_RUN_FAIL_MATCH=S  only fail runs whose fingerprint
///                           contains S (with PP_FAULT_RUN_FAIL)
///
//===----------------------------------------------------------------------===//

#ifndef PP_DRIVER_FAULTINJECTOR_H
#define PP_DRIVER_FAULTINJECTOR_H

#include "support/Prng.h"

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace pp {
namespace driver {

class FaultInjector {
public:
  struct Config {
    uint64_t Seed = 0;
    /// Corrupt one bit of every Nth cache-file read (0 = never).
    unsigned FlipEveryNthRead = 0;
    /// Truncate every Nth cache-file read (0 = never).
    unsigned TruncateEveryNthRead = 0;
    /// Fail every Nth cache-file write (0 = never).
    unsigned FailEveryNthWrite = 0;
    /// Fail every Nth run execution (0 = never).
    unsigned FailEveryNthRun = 0;
    /// With FailEveryNthRun: only runs whose fingerprint contains this
    /// substring are candidates (empty = all runs).
    std::string FailRunMatching;
  };

  /// The process-wide injector, configured from PP_FAULT_* on first use.
  static FaultInjector &instance();

  /// Parses the PP_FAULT_* environment into a Config. Non-numeric values
  /// warn on stderr and leave the seam disabled.
  static Config configFromEnv();

  /// An injector with every seam disarmed.
  FaultInjector() = default;
  explicit FaultInjector(const Config &C) : Cfg(C), Rng(C.Seed) {}

  /// Replaces the configuration and resets all counters (test hook).
  void configure(const Config &C);

  /// True when any seam is armed; callers may skip the hooks entirely.
  bool enabled() const;

  /// Possibly corrupts \p Bytes in place (bit flip or truncation, per the
  /// read-seam cadence). Returns true when it did.
  bool mutateCacheRead(std::vector<uint8_t> &Bytes);

  /// True when this cache-file write must be dropped.
  bool shouldFailCacheWrite();

  /// True when the run with \p Fingerprint must fail instead of
  /// executing; \p Error receives a descriptive message.
  bool shouldFailRun(const std::string &Fingerprint, std::string &Error);

  struct Counts {
    uint64_t ReadsCorrupted = 0;
    uint64_t WritesFailed = 0;
    uint64_t RunsFailed = 0;
  };
  Counts counts() const;

private:
  mutable std::mutex Mu;
  Config Cfg;
  Prng Rng{0};
  uint64_t Reads = 0;
  uint64_t Writes = 0;
  uint64_t Runs = 0;
  Counts Injected;
};

} // namespace driver
} // namespace pp

#endif // PP_DRIVER_FAULTINJECTOR_H
