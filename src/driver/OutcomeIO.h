//===- driver/OutcomeIO.h - RunOutcome (de)serialisation -------*- C++ -*-===//
///
/// \file
/// The byte format of the on-disk run cache: a complete RunOutcome —
/// result, event totals, path and edge profiles, instrumentation metadata,
/// and a full-fidelity CCT image — so a later bench binary can reuse a
/// run another one already executed. The instrumented module itself is
/// not persisted: no table consumer needs it, and it is cheap to recreate
/// from the workload registry when one does.
///
/// Version 2 layout (all integers little-endian):
///
///   u64 magic "PPRO" | u64 version | str fingerprint | <payload> | u32 crc
///
/// where the trailing CRC32 covers every preceding byte. A reader verifies
/// magic, version, and checksum before trusting a single length field, and
/// every length field inside the payload is validated against the bytes
/// actually remaining, so a corrupt or adversarial file can never read out
/// of bounds or force a pathological allocation — it is simply rejected
/// with a typed reason and the run re-executes.
///
//===----------------------------------------------------------------------===//

#ifndef PP_DRIVER_OUTCOMEIO_H
#define PP_DRIVER_OUTCOMEIO_H

#include "prof/Session.h"

#include <cstdint>
#include <string>
#include <vector>

namespace pp {
namespace driver {

/// Why a cache file was rejected (or that it was not).
enum class DecodeStatus : unsigned {
  Ok = 0,
  /// Shorter than the fixed header + checksum trailer.
  TooShort,
  /// The magic number does not match (not a cache file at all).
  BadMagic,
  /// A different format version (e.g. a stale Version-1 file).
  BadVersion,
  /// The CRC32 trailer does not match the bytes (torn write, bit rot).
  BadChecksum,
  /// The embedded fingerprint is not the expected one (hash collision).
  FingerprintMismatch,
  /// A length or count field exceeds the bytes remaining.
  Truncated,
  /// A field holds a structurally impossible value (e.g. a totals array
  /// sized unlike hw::NumEvents, or a CCT image the tree rejects).
  Malformed,
  /// Decoding finished but bytes were left over.
  TrailingBytes,
};
constexpr unsigned NumDecodeStatuses =
    static_cast<unsigned>(DecodeStatus::TrailingBytes) + 1;

/// Short stable name of \p Status ("ok", "bad-checksum", ...).
const char *decodeStatusName(DecodeStatus Status);

/// Serialises \p Outcome, embedding \p Fingerprint so a reader can detect
/// hash-collision mismatches, and appending a CRC32 trailer.
std::vector<uint8_t> serializeOutcome(const prof::RunOutcome &Outcome,
                                      const std::string &Fingerprint);

/// Reads back what serializeOutcome wrote, reporting the typed reason on
/// failure. On success \p Out has no instrumented module (Instr.M is
/// null); see driver::OutcomePtr. On failure \p Out is unspecified and
/// must be discarded.
DecodeStatus decodeOutcome(const std::vector<uint8_t> &Bytes,
                           const std::string &ExpectedFingerprint,
                           prof::RunOutcome &Out);

/// Convenience wrapper: true iff decodeOutcome returns DecodeStatus::Ok.
bool deserializeOutcome(const std::vector<uint8_t> &Bytes,
                        const std::string &ExpectedFingerprint,
                        prof::RunOutcome &Out);

} // namespace driver
} // namespace pp

#endif // PP_DRIVER_OUTCOMEIO_H
