//===- driver/OutcomeIO.h - RunOutcome (de)serialisation -------*- C++ -*-===//
///
/// \file
/// The byte format of the on-disk run cache: a complete RunOutcome —
/// result, event totals, path and edge profiles, instrumentation metadata,
/// and a full-fidelity CCT image — so a later bench binary can reuse a
/// run another one already executed. The instrumented module itself is
/// not persisted: no table consumer needs it, and it is cheap to recreate
/// from the workload registry when one does.
///
//===----------------------------------------------------------------------===//

#ifndef PP_DRIVER_OUTCOMEIO_H
#define PP_DRIVER_OUTCOMEIO_H

#include "prof/Session.h"

#include <cstdint>
#include <string>
#include <vector>

namespace pp {
namespace driver {

/// Serialises \p Outcome, embedding \p Fingerprint so a reader can detect
/// hash-collision mismatches.
std::vector<uint8_t> serializeOutcome(const prof::RunOutcome &Outcome,
                                      const std::string &Fingerprint);

/// Reads back what serializeOutcome wrote. Returns false on malformed
/// bytes or when \p ExpectedFingerprint does not match the embedded one.
/// On success \p Out has no instrumented module (Instr.M is null); see
/// driver::OutcomePtr.
bool deserializeOutcome(const std::vector<uint8_t> &Bytes,
                        const std::string &ExpectedFingerprint,
                        prof::RunOutcome &Out);

} // namespace driver
} // namespace pp

#endif // PP_DRIVER_OUTCOMEIO_H
