//===- driver/RunPlan.h - A declared experiment run ------------*- C++ -*-===//
///
/// \file
/// The unit of work of the experiment-driver layer: one (module, options)
/// profiling run, declared up front so the scheduler can execute it on any
/// worker thread and the cache can recognise it across binaries. Benches
/// and the PP tool build RunPlans instead of calling prof::runProfile
/// directly.
///
//===----------------------------------------------------------------------===//

#ifndef PP_DRIVER_RUNPLAN_H
#define PP_DRIVER_RUNPLAN_H

#include "prof/Session.h"

#include <functional>
#include <memory>
#include <string>

namespace pp {
namespace driver {

/// Shared, immutable view of a finished run. Outcomes are memoized — the
/// same object may back several tickets and several consumers, possibly on
/// different threads, so they are handed out read-only.
///
/// An outcome restored from the on-disk cache has no instrumented module
/// (Instr.M and every FunctionInstrInfo::F are null); everything else —
/// totals, path/edge profiles, instrumentation metadata, and the CCT — is
/// reconstructed in full.
using OutcomePtr = std::shared_ptr<const prof::RunOutcome>;

/// One declared run.
struct RunPlan {
  /// The module's name: a workloads::spec95Suite() registry entry, or —
  /// when \p Build is set — a tag that uniquely identifies what Build
  /// constructs (it becomes part of the cache fingerprint).
  std::string Workload;
  /// Scale passed to the registry builder (ignored when Build is set,
  /// except as part of the fingerprint).
  int Scale = 1;
  /// The profiling configuration of the run.
  prof::SessionOptions Options;
  /// Custom module builder; null means "build Workload from the
  /// registry". Runs on a worker thread, so it must be self-contained and
  /// only read shared state.
  std::function<std::unique_ptr<ir::Module>()> Build;
  /// Clear this when Workload/Scale do not deterministically name the
  /// module's contents (e.g. a user-supplied input file); the run then
  /// bypasses the cache and duplicate-submission folding.
  bool Cacheable = true;
  /// Names the optimizer configuration that produced the module Build
  /// constructs ("layout", "layout+superblock+inline", ...); empty for
  /// unoptimized modules. Part of the fingerprint, so optimized and
  /// baseline runs of the same workload never collide in the cache.
  std::string OptVariant;
};

} // namespace driver
} // namespace pp

#endif // PP_DRIVER_RUNPLAN_H
