//===- driver/RunCache.cpp - Memoized run outcomes ----------------------------===//

#include "driver/RunCache.h"

#include "driver/OutcomeIO.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sys/stat.h>
#include <unistd.h>

using namespace pp;
using namespace pp::driver;

RunCache::RunCache(std::string DiskDir) : DiskDir(std::move(DiskDir)) {}

std::string RunCache::diskDirFromEnv() {
  const char *Dir = std::getenv("PP_RUN_CACHE_DIR");
  return Dir ? Dir : "";
}

std::string RunCache::diskPath(const RunKey &Key) const {
  return DiskDir + "/" + Key.fileStem() + ".ppo";
}

OutcomePtr RunCache::lookup(const RunKey &Key) {
  if (!Key.Cacheable)
    return nullptr;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    auto It = Memory.find(Key.Fingerprint);
    if (It != Memory.end()) {
      ++Counts.MemoryHits;
      return It->second;
    }
  }

  if (!DiskDir.empty()) {
    std::ifstream File(diskPath(Key), std::ios::binary);
    if (File) {
      std::vector<uint8_t> Bytes(std::istreambuf_iterator<char>(File), {});
      auto Outcome = std::make_shared<prof::RunOutcome>();
      if (deserializeOutcome(Bytes, Key.Fingerprint, *Outcome)) {
        std::lock_guard<std::mutex> Lock(Mu);
        ++Counts.DiskHits;
        // Another thread may have raced the file read; first one wins so
        // every consumer shares one object.
        auto [It, Inserted] = Memory.emplace(Key.Fingerprint, Outcome);
        return It->second;
      }
    }
  }

  std::lock_guard<std::mutex> Lock(Mu);
  ++Counts.Misses;
  return nullptr;
}

void RunCache::insert(const RunKey &Key, const OutcomePtr &Outcome) {
  if (!Key.Cacheable || !Outcome)
    return;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    if (!Memory.emplace(Key.Fingerprint, Outcome).second)
      return; // already memoized (and, if configured, already on disk)
    ++Counts.Stores;
  }

  if (DiskDir.empty())
    return;
  ::mkdir(DiskDir.c_str(), 0755);
  // Write-to-temp + rename, so concurrent bench processes sharing the
  // cache directory only ever observe complete files.
  std::vector<uint8_t> Bytes = serializeOutcome(*Outcome, Key.Fingerprint);
  std::string Final = diskPath(Key);
  std::string Temp =
      Final + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  {
    std::ofstream File(Temp, std::ios::binary | std::ios::trunc);
    if (!File)
      return; // cache directory not writable; memory layer still works
    File.write(reinterpret_cast<const char *>(Bytes.data()),
               static_cast<std::streamsize>(Bytes.size()));
    if (!File.good()) {
      File.close();
      std::remove(Temp.c_str());
      return;
    }
  }
  if (std::rename(Temp.c_str(), Final.c_str()) != 0)
    std::remove(Temp.c_str());
}

RunCache::Stats RunCache::stats() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Counts;
}
