//===- driver/RunCache.cpp - Memoized run outcomes ----------------------------===//

#include "driver/RunCache.h"

#include "driver/FaultInjector.h"
#include "driver/OutcomeIO.h"
#include "obs/Obs.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sys/stat.h>
#include <unistd.h>

using namespace pp;
using namespace pp::driver;

RunCache::RunCache(std::string DiskDir) : DiskDir(std::move(DiskDir)) {}

std::string RunCache::diskDirFromEnv() {
  const char *Dir = std::getenv("PP_RUN_CACHE_DIR");
  return Dir ? Dir : "";
}

std::string RunCache::diskPath(const RunKey &Key) const {
  return DiskDir + "/" + Key.fileStem() + ".ppo";
}

OutcomePtr RunCache::lookup(const RunKey &Key) {
  if (!Key.Cacheable)
    return nullptr;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    auto It = Memory.find(Key.Fingerprint);
    if (It != Memory.end()) {
      ++Counts.MemoryHits;
      obs::add(obs::Counter::CacheMemoryHits);
      return It->second;
    }
  }

  if (!DiskDir.empty()) {
    std::string Path = diskPath(Key);
    std::ifstream File(Path, std::ios::binary);
    if (File) {
      std::vector<uint8_t> Bytes(std::istreambuf_iterator<char>(File), {});
      FaultInjector::instance().mutateCacheRead(Bytes);
      auto Outcome = std::make_shared<prof::RunOutcome>();
      DecodeStatus Status = decodeOutcome(Bytes, Key.Fingerprint, *Outcome);
      if (Status == DecodeStatus::Ok) {
        obs::add(obs::Counter::CacheDiskHits);
        std::lock_guard<std::mutex> Lock(Mu);
        ++Counts.DiskHits;
        // Another thread may have raced the file read; first one wins so
        // every consumer shares one object.
        auto [It, Inserted] = Memory.emplace(Key.Fingerprint, Outcome);
        return It->second;
      }
      // The file is unusable whatever the reason (stale version, torn
      // write, bit rot, collision): count it, drop it so the re-executed
      // run can store a fresh copy, and fall through to a miss.
      std::remove(Path.c_str());
      obs::add(obs::Counter::CacheCorruptEvictions);
      std::lock_guard<std::mutex> Lock(Mu);
      ++Counts.DecodeFailures;
      ++Counts.DecodeFailuresBy[static_cast<unsigned>(Status)];
    }
  }

  obs::add(obs::Counter::CacheMisses);
  std::lock_guard<std::mutex> Lock(Mu);
  ++Counts.Misses;
  return nullptr;
}

void RunCache::insert(const RunKey &Key, const OutcomePtr &Outcome) {
  if (!Key.Cacheable || !Outcome)
    return;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    if (!Memory.emplace(Key.Fingerprint, Outcome).second)
      return; // already memoized (and, if configured, already on disk)
    ++Counts.Stores;
    obs::add(obs::Counter::CacheStores);
  }

  // Failed runs stay memory-only: persisting them would make a transient
  // failure (an injected fault, a scheduler-synthesised error) permanent
  // for every later process sharing the cache directory.
  if (DiskDir.empty() || !Outcome->Result.Ok)
    return;
  if (FaultInjector::instance().shouldFailCacheWrite()) {
    obs::add(obs::Counter::CacheWriteFailures);
    std::lock_guard<std::mutex> Lock(Mu);
    ++Counts.WriteFailures;
    return;
  }
  ::mkdir(DiskDir.c_str(), 0755);
  // Write-to-temp + rename, so concurrent bench processes sharing the
  // cache directory only ever observe complete files.
  std::vector<uint8_t> Bytes = serializeOutcome(*Outcome, Key.Fingerprint);
  std::string Final = diskPath(Key);
  std::string Temp =
      Final + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  bool Written = false;
  {
    std::ofstream File(Temp, std::ios::binary | std::ios::trunc);
    if (File) {
      File.write(reinterpret_cast<const char *>(Bytes.data()),
                 static_cast<std::streamsize>(Bytes.size()));
      Written = File.good();
    }
  }
  if (Written && std::rename(Temp.c_str(), Final.c_str()) == 0)
    return;
  // Cache directory not writable or short write; the memory layer still
  // works, so degrade to uncached-on-disk instead of failing the run.
  std::remove(Temp.c_str());
  obs::add(obs::Counter::CacheWriteFailures);
  std::lock_guard<std::mutex> Lock(Mu);
  ++Counts.WriteFailures;
}

RunCache::Stats RunCache::stats() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Counts;
}
