//===- driver/FaultInjector.cpp - Deterministic fault injection ---------------===//

#include "driver/FaultInjector.h"

#include "obs/Obs.h"
#include "support/Env.h"
#include "support/Format.h"

#include <cstdio>
#include <cstdlib>

using namespace pp;
using namespace pp::driver;

namespace {

/// Reads env var \p Name as a strict unsigned count; a malformed value
/// warns (via the shared Env helper) and reads as 0 (seam disabled)
/// rather than silently arming or disarming anything else.
unsigned envCount(const char *Name) {
  uint64_t Value = envUint64Or(Name, "pp-driver", 0);
  return static_cast<unsigned>(Value > UINT32_MAX ? UINT32_MAX : Value);
}

} // namespace

FaultInjector::Config FaultInjector::configFromEnv() {
  Config C;
  uint64_t Seed;
  if (envUint64("PP_FAULT_SEED", "pp-driver", Seed) == EnvParse::Ok)
    C.Seed = Seed;
  C.FlipEveryNthRead = envCount("PP_FAULT_READ_FLIP");
  C.TruncateEveryNthRead = envCount("PP_FAULT_READ_TRUNCATE");
  C.FailEveryNthWrite = envCount("PP_FAULT_WRITE_FAIL");
  C.FailEveryNthRun = envCount("PP_FAULT_RUN_FAIL");
  if (const char *Match = std::getenv("PP_FAULT_RUN_FAIL_MATCH"))
    C.FailRunMatching = Match;
  return C;
}

FaultInjector &FaultInjector::instance() {
  static FaultInjector Injector(configFromEnv());
  return Injector;
}

void FaultInjector::configure(const Config &C) {
  std::lock_guard<std::mutex> Lock(Mu);
  Cfg = C;
  Rng = Prng(C.Seed);
  Reads = Writes = Runs = 0;
  Injected = Counts();
}

bool FaultInjector::enabled() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Cfg.FlipEveryNthRead || Cfg.TruncateEveryNthRead ||
         Cfg.FailEveryNthWrite || Cfg.FailEveryNthRun;
}

bool FaultInjector::mutateCacheRead(std::vector<uint8_t> &Bytes) {
  std::lock_guard<std::mutex> Lock(Mu);
  if (Bytes.empty() || (!Cfg.FlipEveryNthRead && !Cfg.TruncateEveryNthRead))
    return false;
  ++Reads;
  bool Mutated = false;
  if (Cfg.FlipEveryNthRead && Reads % Cfg.FlipEveryNthRead == 0) {
    size_t Offset = static_cast<size_t>(Rng.nextBelow(Bytes.size()));
    Bytes[Offset] ^= uint8_t(1) << Rng.nextBelow(8); // always a real change
    Mutated = true;
  }
  if (Cfg.TruncateEveryNthRead && Reads % Cfg.TruncateEveryNthRead == 0) {
    Bytes.resize(static_cast<size_t>(Rng.nextBelow(Bytes.size())));
    Mutated = true;
  }
  if (Mutated) {
    ++Injected.ReadsCorrupted;
    obs::add(obs::Counter::FaultReadsCorrupted);
  }
  return Mutated;
}

bool FaultInjector::shouldFailCacheWrite() {
  std::lock_guard<std::mutex> Lock(Mu);
  if (!Cfg.FailEveryNthWrite)
    return false;
  ++Writes;
  if (Writes % Cfg.FailEveryNthWrite != 0)
    return false;
  ++Injected.WritesFailed;
  obs::add(obs::Counter::FaultWritesFailed);
  return true;
}

bool FaultInjector::shouldFailRun(const std::string &Fingerprint,
                                  std::string &Error) {
  std::lock_guard<std::mutex> Lock(Mu);
  if (!Cfg.FailEveryNthRun)
    return false;
  if (!Cfg.FailRunMatching.empty() &&
      Fingerprint.find(Cfg.FailRunMatching) == std::string::npos)
    return false;
  ++Runs;
  if (Runs % Cfg.FailEveryNthRun != 0)
    return false;
  ++Injected.RunsFailed;
  obs::add(obs::Counter::FaultRunsFailed);
  Error = formatString("injected fault (run %llu)",
                       static_cast<unsigned long long>(Runs));
  return true;
}

FaultInjector::Counts FaultInjector::counts() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Injected;
}
