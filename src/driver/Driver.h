//===- driver/Driver.h - The experiment-driver facade ----------*- C++ -*-===//
///
/// \file
/// Ties the driver layer together: one RunCache (optionally disk-backed
/// via $PP_RUN_CACHE_DIR) feeding one RunScheduler. Benches and the PP
/// tool declare their full run set through submit(), then collect
/// outcomes with get() while workers execute in parallel behind the
/// scenes.
///
/// defaultDriver() is the process-wide instance every table/figure binary
/// shares; with PP_DRIVER_STATS=1 it reports scheduling and cache counts
/// to stderr at exit (stdout stays reserved for the tables themselves).
///
//===----------------------------------------------------------------------===//

#ifndef PP_DRIVER_DRIVER_H
#define PP_DRIVER_DRIVER_H

#include "driver/RunCache.h"
#include "driver/RunPlan.h"
#include "driver/RunScheduler.h"

namespace pp {
namespace driver {

class Driver {
public:
  explicit Driver(std::string DiskDir = RunCache::diskDirFromEnv(),
                  unsigned Threads = RunScheduler::defaultWorkerThreads())
      : Cache(std::move(DiskDir)), Scheduler(&Cache, Threads) {}
  ~Driver();

  Driver(const Driver &) = delete;
  Driver &operator=(const Driver &) = delete;

  /// Declares a run; workers start on it immediately.
  size_t submit(RunPlan Plan) { return Scheduler.submit(std::move(Plan)); }

  /// Blocks until the run behind \p Ticket finished.
  OutcomePtr get(size_t Ticket) { return Scheduler.get(Ticket); }

  /// Convenience for one-off runs: submit and wait.
  OutcomePtr run(RunPlan Plan) { return get(submit(std::move(Plan))); }

  RunCache &cache() { return Cache; }
  RunScheduler &scheduler() { return Scheduler; }

private:
  RunCache Cache;
  RunScheduler Scheduler;
};

/// The process-wide driver (constructed on first use).
Driver &defaultDriver();

} // namespace driver
} // namespace pp

#endif // PP_DRIVER_DRIVER_H
