//===- ir/Parser.cpp - Textual IR parser -------------------------------------===//

#include "ir/Parser.h"

#include "ir/Module.h"
#include "support/Format.h"

#include <cctype>
#include <cstring>
#include <map>
#include <sstream>
#include <vector>

using namespace pp;
using namespace pp::ir;

namespace {

/// Line-oriented recursive-descent parser over the printer's format.
class Parser {
public:
  explicit Parser(const std::string &Text) {
    std::istringstream Stream(Text);
    std::string Line;
    while (std::getline(Stream, Line))
      Lines.push_back(Line);
  }

  ParseResult run() {
    ParseResult Result;
    M = std::make_unique<Module>();
    if (!scanDeclarations() || !parseBody()) {
      Result.Error = Error;
      return Result;
    }
    Result.M = std::move(M);
    return Result;
  }

private:
  // --- Diagnostics -----------------------------------------------------------

  bool fail(size_t LineNo, const std::string &Message) {
    if (Error.empty())
      Error = formatString("line %zu: %s", LineNo + 1, Message.c_str());
    return false;
  }

  // --- Cursor over one line ---------------------------------------------------

  struct Cursor {
    const std::string &Text;
    size_t Pos = 0;

    void skipSpace() {
      while (Pos < Text.size() && std::isspace((unsigned char)Text[Pos]))
        ++Pos;
    }
    bool atEnd() {
      skipSpace();
      return Pos >= Text.size();
    }
    bool eat(char C) {
      skipSpace();
      if (Pos < Text.size() && Text[Pos] == C) {
        ++Pos;
        return true;
      }
      return false;
    }
    bool eatWord(const char *Word) {
      skipSpace();
      size_t Len = std::strlen(Word);
      if (Text.compare(Pos, Len, Word) == 0) {
        Pos += Len;
        return true;
      }
      return false;
    }
    /// Identifier: [A-Za-z0-9_.$-]+
    std::string ident() {
      skipSpace();
      size_t Start = Pos;
      while (Pos < Text.size() &&
             (std::isalnum((unsigned char)Text[Pos]) || Text[Pos] == '_' ||
              Text[Pos] == '.' || Text[Pos] == '$' || Text[Pos] == '-'))
        ++Pos;
      return Text.substr(Start, Pos - Start);
    }
    bool integer(int64_t &Out) {
      skipSpace();
      size_t Start = Pos;
      if (Pos < Text.size() && (Text[Pos] == '-' || Text[Pos] == '+'))
        ++Pos;
      while (Pos < Text.size() && std::isdigit((unsigned char)Text[Pos]))
        ++Pos;
      if (Pos == Start || (Pos == Start + 1 && !std::isdigit(
                                                   (unsigned char)Text[Start])))
        return false;
      Out = std::strtoll(Text.c_str() + Start, nullptr, 10);
      return true;
    }
  };

  // --- Pass 1: declarations ---------------------------------------------------

  /// Creates globals, functions, and their blocks so pass 2 can resolve
  /// forward references.
  bool scanDeclarations() {
    Function *Current = nullptr;
    for (size_t LineNo = 0; LineNo != Lines.size(); ++LineNo) {
      Cursor C{Lines[LineNo]};
      if (C.atEnd())
        continue;
      if (C.eatWord("global")) {
        if (!C.eat('@'))
          return fail(LineNo, "expected '@name' after 'global'");
        std::string Name = C.ident();
        int64_t Size;
        if (Name.empty() || !C.integer(Size) || Size <= 0)
          return fail(LineNo, "expected 'global @name size'");
        M->addGlobal(Name, static_cast<uint64_t>(Size));
        continue;
      }
      if (C.eatWord("func")) {
        if (!C.eat('@'))
          return fail(LineNo, "expected '@name' after 'func'");
        std::string Name = C.ident();
        int64_t NumParams = 0, NumRegs = 0;
        if (Name.empty() || !C.eat('(') || !C.integer(NumParams) ||
            !C.eat(')'))
          return fail(LineNo, "expected 'func @name(params)'");
        if (!C.eatWord("regs") || !C.eat('=') || !C.integer(NumRegs))
          return fail(LineNo, "expected 'regs=N'");
        if (!C.eat('{'))
          return fail(LineNo, "expected '{'");
        if (Functions.count(Name))
          return fail(LineNo, "duplicate function '" + Name + "'");
        Current = M->addFunction(Name, static_cast<unsigned>(NumParams));
        while (Current->numRegs() < static_cast<unsigned>(NumRegs))
          Current->freshReg();
        Functions[Name] = Current;
        continue;
      }
      if (C.eat('}')) {
        Current = nullptr;
        continue;
      }
      if (C.eatWord("main")) {
        if (!C.eat('@'))
          return fail(LineNo, "expected '@name' after 'main'");
        MainName = C.ident();
        continue;
      }
      // Inside a function: a "label:" line declares a block.
      if (Current) {
        Cursor Probe{Lines[LineNo]};
        std::string Label = Probe.ident();
        if (!Label.empty() && Probe.eat(':') && Probe.atEnd()) {
          if (Blocks.count({Current, Label}))
            return fail(LineNo, "duplicate block '" + Label + "'");
          Blocks[{Current, Label}] = Current->addBlock(Label);
        }
      }
    }
    if (!MainName.empty()) {
      auto It = Functions.find(MainName);
      if (It == Functions.end()) {
        Error = "main function '" + MainName + "' is not defined";
        return false;
      }
      M->setMain(It->second);
    }
    return true;
  }

  // --- Pass 2: instruction bodies ----------------------------------------------

  bool parseBody() {
    Function *Current = nullptr;
    BasicBlock *Block = nullptr;
    for (size_t LineNo = 0; LineNo != Lines.size(); ++LineNo) {
      Cursor C{Lines[LineNo]};
      if (C.atEnd())
        continue;
      if (C.eatWord("global")) {
        continue;
      }
      if (C.eatWord("func")) {
        C.eat('@');
        Current = Functions.at(C.ident());
        Block = nullptr;
        continue;
      }
      {
        Cursor Probe{Lines[LineNo]};
        if (Probe.eat('}')) {
          Current = nullptr;
          continue;
        }
      }
      if (!Current) {
        Cursor Probe{Lines[LineNo]};
        if (Probe.eatWord("main"))
          continue;
        return fail(LineNo, "instruction outside a function");
      }
      // Label line?
      {
        Cursor Probe{Lines[LineNo]};
        std::string Label = Probe.ident();
        if (!Label.empty() && Probe.eat(':') && Probe.atEnd()) {
          Block = Blocks.at({Current, Label});
          continue;
        }
      }
      if (!Block)
        return fail(LineNo, "instruction before any block label");
      Inst I;
      if (!parseInst(LineNo, Current, I))
        return false;
      Block->insts().push_back(std::move(I));
    }
    return Error.empty();
  }

  bool parseReg(Cursor &C, size_t LineNo, Reg &Out, bool AllowNone = false) {
    C.skipSpace();
    if (AllowNone && C.eat('_')) {
      Out = NoReg;
      return true;
    }
    if (!C.eat('r'))
      return fail(LineNo, "expected register");
    int64_t N;
    if (!C.integer(N) || N < 0)
      return fail(LineNo, "expected register number");
    Out = static_cast<Reg>(N);
    return true;
  }

  /// Register or immediate into (BIsImm, B, Imm).
  bool parseOperand(Cursor &C, size_t LineNo, Inst &I) {
    C.skipSpace();
    if (C.Pos < C.Text.size() && C.Text[C.Pos] == 'r' &&
        C.Pos + 1 < C.Text.size() &&
        std::isdigit((unsigned char)C.Text[C.Pos + 1]))
      return parseReg(C, LineNo, I.B);
    int64_t Value;
    if (!C.integer(Value))
      return fail(LineNo, "expected register or immediate");
    I.BIsImm = true;
    I.Imm = Value;
    return true;
  }

  bool parseBlockRef(Cursor &C, size_t LineNo, Function *F,
                     BasicBlock *&Out) {
    if (!C.eat('@'))
      return fail(LineNo, "expected '@block'");
    std::string Name = C.ident();
    auto It = Blocks.find({F, Name});
    if (It == Blocks.end())
      return fail(LineNo, "unknown block '" + Name + "'");
    Out = It->second;
    return true;
  }

  bool parseArgs(Cursor &C, size_t LineNo, Inst &I) {
    if (!C.eat('('))
      return fail(LineNo, "expected '('");
    if (C.eat(')'))
      return true;
    for (;;) {
      Reg Arg;
      if (!parseReg(C, LineNo, Arg))
        return false;
      I.Args.push_back(Arg);
      if (C.eat(')'))
        return true;
      if (!C.eat(','))
        return fail(LineNo, "expected ',' or ')'");
    }
  }

  /// "[rN + off]" or "[_ + off]"; fills A and Imm.
  bool parseMemRef(Cursor &C, size_t LineNo, Inst &I) {
    if (!C.eat('['))
      return fail(LineNo, "expected '['");
    if (!parseReg(C, LineNo, I.A, /*AllowNone=*/true))
      return false;
    if (!C.eat('+'))
      return fail(LineNo, "expected '+'");
    if (!C.integer(I.Imm))
      return fail(LineNo, "expected offset");
    if (!C.eat(']'))
      return fail(LineNo, "expected ']'");
    return true;
  }

  bool parseInst(size_t LineNo, Function *F, Inst &I) {
    Cursor C{Lines[LineNo]};
    std::string Op = C.ident();

    // loadN / storeN carry their width in the mnemonic.
    if (Op.rfind("load", 0) == 0 || Op.rfind("store", 0) == 0) {
      bool IsLoad = Op[0] == 'l';
      std::string WidthText = Op.substr(IsLoad ? 4 : 5);
      int Width = std::atoi(WidthText.c_str());
      if (Width != 1 && Width != 2 && Width != 4 && Width != 8)
        return fail(LineNo, "bad access width in '" + Op + "'");
      I.Size = static_cast<uint8_t>(Width);
      if (IsLoad) {
        I.Op = Opcode::Load;
        if (!parseReg(C, LineNo, I.Dst) || !C.eat(','))
          return fail(LineNo, "expected 'loadN rD, [..]'");
        return parseMemRef(C, LineNo, I);
      }
      I.Op = Opcode::Store;
      if (!parseMemRef(C, LineNo, I) || !C.eat(','))
        return fail(LineNo, "expected 'storeN [..], value'");
      return parseOperand(C, LineNo, I);
    }

    static const std::map<std::string, Opcode> ThreeAddress = {
        {"add", Opcode::Add},       {"sub", Opcode::Sub},
        {"mul", Opcode::Mul},       {"div", Opcode::Div},
        {"rem", Opcode::Rem},       {"and", Opcode::And},
        {"or", Opcode::Or},         {"xor", Opcode::Xor},
        {"shl", Opcode::Shl},       {"shr", Opcode::Shr},
        {"cmpeq", Opcode::CmpEq},   {"cmpne", Opcode::CmpNe},
        {"cmplt", Opcode::CmpLt},   {"cmple", Opcode::CmpLe},
        {"fadd", Opcode::FAdd},     {"fsub", Opcode::FSub},
        {"fmul", Opcode::FMul},     {"fdiv", Opcode::FDiv},
        {"fcmplt", Opcode::FCmpLt}, {"fcmple", Opcode::FCmpLe},
        {"fcmpeq", Opcode::FCmpEq},
    };
    if (auto It = ThreeAddress.find(Op); It != ThreeAddress.end()) {
      I.Op = It->second;
      if (!parseReg(C, LineNo, I.Dst) || !C.eat(','))
        return fail(LineNo, "expected destination");
      if (!parseReg(C, LineNo, I.A) || !C.eat(','))
        return fail(LineNo, "expected first source");
      return parseOperand(C, LineNo, I);
    }

    if (Op == "mov" || Op == "alloc") {
      I.Op = Op == "mov" ? Opcode::Mov : Opcode::Alloc;
      if (!parseReg(C, LineNo, I.Dst) || !C.eat(','))
        return fail(LineNo, "expected destination");
      return parseOperand(C, LineNo, I);
    }
    if (Op == "itof" || Op == "ftoi") {
      I.Op = Op == "itof" ? Opcode::IntToFp : Opcode::FpToInt;
      if (!parseReg(C, LineNo, I.Dst) || !C.eat(','))
        return fail(LineNo, "expected destination");
      return parseReg(C, LineNo, I.A);
    }
    if (Op == "br") {
      I.Op = Opcode::Br;
      return parseBlockRef(C, LineNo, F, I.T1);
    }
    if (Op == "condbr") {
      I.Op = Opcode::CondBr;
      if (!parseReg(C, LineNo, I.A) || !C.eat(','))
        return fail(LineNo, "expected condition");
      if (!parseBlockRef(C, LineNo, F, I.T1) || !C.eat(','))
        return fail(LineNo, "expected true target");
      return parseBlockRef(C, LineNo, F, I.T2);
    }
    if (Op == "switch") {
      I.Op = Opcode::Switch;
      if (!parseReg(C, LineNo, I.A) || !C.eat(','))
        return fail(LineNo, "expected index register");
      if (!parseBlockRef(C, LineNo, F, I.T1))
        return false;
      if (!C.eat('['))
        return fail(LineNo, "expected '['");
      if (!C.eat(']')) {
        for (;;) {
          BasicBlock *Target;
          if (!parseBlockRef(C, LineNo, F, Target))
            return false;
          I.SwitchTargets.push_back(Target);
          if (C.eat(']'))
            break;
          if (!C.eat(','))
            return fail(LineNo, "expected ',' or ']'");
        }
      }
      return true;
    }
    if (Op == "ret") {
      I.Op = Opcode::Ret;
      return parseOperand(C, LineNo, I);
    }
    if (Op == "call" || Op == "icall") {
      I.Op = Op == "call" ? Opcode::Call : Opcode::ICall;
      if (!parseReg(C, LineNo, I.Dst) || !C.eat(','))
        return fail(LineNo, "expected destination");
      if (I.Op == Opcode::Call) {
        if (!C.eat('@'))
          return fail(LineNo, "expected '@function'");
        std::string Name = C.ident();
        auto It = Functions.find(Name);
        if (It == Functions.end())
          return fail(LineNo, "unknown function '" + Name + "'");
        I.Callee = It->second;
      } else if (!parseReg(C, LineNo, I.A)) {
        return false;
      }
      return parseArgs(C, LineNo, I);
    }
    if (Op == "setjmp") {
      I.Op = Opcode::Setjmp;
      if (!parseReg(C, LineNo, I.Dst) || !C.eat(','))
        return fail(LineNo, "expected destination");
      return C.integer(I.Imm) ? true : fail(LineNo, "expected buffer key");
    }
    if (Op == "longjmp") {
      I.Op = Opcode::Longjmp;
      if (!C.integer(I.Imm) || !C.eat(','))
        return fail(LineNo, "expected buffer key");
      return parseOperand(C, LineNo, I);
    }
    if (Op == "rdpic") {
      I.Op = Opcode::RdPic;
      return parseReg(C, LineNo, I.Dst);
    }
    if (Op == "wrpic") {
      I.Op = Opcode::WrPic;
      return parseOperand(C, LineNo, I);
    }
    // Profiling pseudo-ops are printed by instrumented modules; accept
    // them so instrumented dumps round-trip too.
    if (Op == "cct.enter" || Op == "cct.exit") {
      I.Op = Op == "cct.enter" ? Opcode::CctEnter : Opcode::CctExit;
      return true;
    }
    if (Op == "cct.call" || Op == "cct.hwprobe") {
      I.Op = Op == "cct.call" ? Opcode::CctCall : Opcode::CctHwProbe;
      return C.integer(I.Imm) ? true : fail(LineNo, "expected immediate");
    }
    if (Op == "cct.pathcommit") {
      I.Op = Opcode::CctPathCommit;
      if (!parseReg(C, LineNo, I.A) || !C.eat(','))
        return fail(LineNo, "expected key register");
      return parseReg(C, LineNo, I.B, /*AllowNone=*/true);
    }
    if (Op == "path.hashcommit") {
      I.Op = Opcode::PathHashCommit;
      if (!C.integer(I.Imm) || !C.eat(','))
        return fail(LineNo, "expected table id");
      if (!parseReg(C, LineNo, I.A) || !C.eat(','))
        return fail(LineNo, "expected key register");
      return parseReg(C, LineNo, I.B, /*AllowNone=*/true);
    }
    return fail(LineNo, "unknown instruction '" + Op + "'");
  }

  std::vector<std::string> Lines;
  std::unique_ptr<Module> M;
  std::map<std::string, Function *> Functions;
  std::map<std::pair<Function *, std::string>, BasicBlock *> Blocks;
  std::string MainName;
  std::string Error;
};

} // namespace

ParseResult ir::parseModule(const std::string &Text) {
  return Parser(Text).run();
}
