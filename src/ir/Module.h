//===- ir/Module.h - IR module ---------------------------------*- C++ -*-===//
///
/// \file
/// A module: the whole simulated program — functions, global data objects,
/// and the designated main function. The loader assigns simulated addresses
/// to code and globals when a module is loaded into a machine.
///
//===----------------------------------------------------------------------===//

#ifndef PP_IR_MODULE_H
#define PP_IR_MODULE_H

#include "ir/Function.h"
#include "support/AddressLayout.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace pp {
namespace ir {

/// A statically allocated data object in the simulated address space.
struct Global {
  std::string Name;
  uint64_t Size = 0;
  /// Optional initial contents; zero-filled beyond Init.size().
  std::vector<uint8_t> Init;
  /// Simulated address, assigned eagerly when the global is declared so
  /// instrumentation can reference it with absolute addressing.
  uint64_t Addr = 0;
};

/// The unit of instrumentation and execution.
class Module {
public:
  Module() = default;
  Module(const Module &) = delete;
  Module &operator=(const Module &) = delete;

  /// Creates a new function with a dense id.
  Function *addFunction(std::string Name, unsigned NumParams) {
    Functions.push_back(std::make_unique<Function>(
        this, static_cast<unsigned>(Functions.size()), std::move(Name),
        NumParams));
    return Functions.back().get();
  }

  size_t numFunctions() const { return Functions.size(); }
  Function *function(size_t Id) const { return Functions[Id].get(); }

  /// Returns the function named \p Name, or null.
  Function *findFunction(const std::string &Name) const {
    for (const auto &F : Functions)
      if (F->name() == Name)
        return F.get();
    return nullptr;
  }

  const std::vector<std::unique_ptr<Function>> &functions() const {
    return Functions;
  }

  /// Declares a zero-initialised global of \p Size bytes; returns its index.
  size_t addGlobal(std::string Name, uint64_t Size) {
    return addGlobal(std::move(Name), Size, {});
  }

  /// Declares an initialised global; returns its index.
  size_t addGlobal(std::string Name, uint64_t Size,
                   std::vector<uint8_t> Init) {
    uint64_t Addr = (NextGlobalAddr + 15) & ~uint64_t(15);
    NextGlobalAddr = Addr + Size;
    Globals.push_back(Global{std::move(Name), Size, std::move(Init), Addr});
    return Globals.size() - 1;
  }

  size_t numGlobals() const { return Globals.size(); }
  Global &global(size_t Index) { return Globals[Index]; }
  const Global &global(size_t Index) const { return Globals[Index]; }

  /// Returns the global named \p Name, or null.
  const Global *findGlobal(const std::string &Name) const {
    for (const auto &G : Globals)
      if (G.Name == Name)
        return &G;
    return nullptr;
  }

  void setMain(Function *F) { MainFunction = F; }
  Function *main() const { return MainFunction; }

  /// Total instruction count across all functions.
  size_t numInsts() const {
    size_t N = 0;
    for (const auto &F : Functions)
      N += F->numInsts();
    return N;
  }

  /// Deep-copies the module (blocks, instructions, globals). Cross-pointers
  /// (branch targets, callees, main) are remapped into the clone. The
  /// profiler clones before instrumenting so the original stays pristine
  /// for baseline runs.
  std::unique_ptr<Module> clone() const;

private:
  std::vector<std::unique_ptr<Function>> Functions;
  std::vector<Global> Globals;
  Function *MainFunction = nullptr;
  uint64_t NextGlobalAddr = layout::GlobalBase;
};

} // namespace ir
} // namespace pp

#endif // PP_IR_MODULE_H
