//===- ir/Module.cpp - IR module -------------------------------------------===//

#include "ir/Module.h"

#include <cassert>
#include <unordered_map>

using namespace pp;
using namespace pp::ir;

std::unique_ptr<Module> Module::clone() const {
  auto New = std::make_unique<Module>();

  // Pass 1: create functions and blocks so cross-references can resolve.
  std::unordered_map<const Function *, Function *> FnMap;
  std::unordered_map<const BasicBlock *, BasicBlock *> BlockMap;
  for (const auto &F : Functions) {
    Function *NF = New->addFunction(F->name(), F->numParams());
    FnMap[F.get()] = NF;
    while (NF->numRegs() < F->numRegs())
      NF->freshReg();
    NF->setInstrumented(F->isInstrumented());
    for (const auto &BB : F->blocks())
      BlockMap[BB.get()] = NF->addBlock(BB->name());
  }

  // Pass 2: copy instructions, remapping pointers.
  auto MapBlock = [&BlockMap](BasicBlock *BB) -> BasicBlock * {
    if (!BB)
      return nullptr;
    auto It = BlockMap.find(BB);
    assert(It != BlockMap.end() && "branch target outside module");
    return It->second;
  };
  for (const auto &F : Functions) {
    for (const auto &BB : F->blocks()) {
      BasicBlock *NB = BlockMap[BB.get()];
      for (const Inst &I : BB->insts()) {
        Inst NI = I;
        NI.T1 = MapBlock(I.T1);
        NI.T2 = MapBlock(I.T2);
        for (BasicBlock *&Target : NI.SwitchTargets)
          Target = MapBlock(Target);
        if (I.Callee) {
          auto It = FnMap.find(I.Callee);
          assert(It != FnMap.end() && "callee outside module");
          NI.Callee = It->second;
        }
        NB->insts().push_back(std::move(NI));
      }
    }
  }

  for (const Global &G : Globals)
    New->Globals.push_back(G);
  New->NextGlobalAddr = NextGlobalAddr;

  if (MainFunction)
    New->setMain(FnMap.at(MainFunction));
  return New;
}
