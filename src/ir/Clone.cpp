//===- ir/Clone.cpp - Block cloning and call inlining -------------------------===//

#include "ir/Clone.h"

#include "ir/Function.h"
#include "ir/Module.h"

#include <unordered_map>

using namespace pp;
using namespace pp::ir;

BasicBlock *ir::cloneBlock(Function &F, const BasicBlock &Source,
                           const std::string &Suffix) {
  BasicBlock *Copy = F.addBlock(Source.name() + Suffix);
  Copy->insts() = Source.insts();
  return Copy;
}

namespace {

/// Rebases \p R into the caller's register file (NoReg stays NoReg).
Reg rebase(Reg R, Reg Base) { return R == NoReg ? NoReg : R + Base; }

} // namespace

size_t ir::inlineCall(Function &Caller, BasicBlock &BB, size_t CallIndex) {
  if (CallIndex >= BB.insts().size())
    return 0;
  const Inst Call = BB.insts()[CallIndex]; // copy: the vector is edited below
  if (Call.Op != Opcode::Call || !Call.Callee || Call.Callee == &Caller)
    return 0;
  const Function &Callee = *Call.Callee;
  if (Callee.numBlocks() == 0)
    return 0;

  const size_t InstsBefore = Caller.numInsts();

  // Fresh registers shadowing the callee's frame.
  const Reg RegBase = Caller.numRegs();
  for (unsigned R = 0; R != Callee.numRegs(); ++R)
    Caller.freshReg();

  // Unique block names within the caller: the parser resolves branch
  // targets per-function by name, so every clone gets a monotone suffix.
  const std::string Suffix = ".il" + std::to_string(Caller.numBlocks());

  // The continuation: everything after the call, terminator included.
  BasicBlock *Cont = Caller.addBlock(BB.name() + ".cont" + Suffix);
  Cont->insts().assign(BB.insts().begin() + CallIndex + 1, BB.insts().end());

  // Clone the callee body, remapping registers and branch targets.
  std::unordered_map<const BasicBlock *, BasicBlock *> BlockMap;
  for (const auto &CalleeBB : Callee.blocks())
    BlockMap[CalleeBB.get()] =
        Caller.addBlock(Callee.name() + "." + CalleeBB->name() + Suffix);
  for (const auto &CalleeBB : Callee.blocks()) {
    BasicBlock *Copy = BlockMap[CalleeBB.get()];
    for (const Inst &Orig : CalleeBB->insts()) {
      if (Orig.Op == Opcode::Ret) {
        // Return value -> call destination, then fall into the
        // continuation.
        if (Call.Dst != NoReg && (Orig.BIsImm || Orig.B != NoReg)) {
          Inst Mv;
          Mv.Op = Opcode::Mov;
          Mv.Dst = Call.Dst;
          Mv.BIsImm = Orig.BIsImm;
          Mv.B = Orig.BIsImm ? NoReg : rebase(Orig.B, RegBase);
          Mv.Imm = Orig.Imm;
          Copy->insts().push_back(Mv);
        }
        Inst Br;
        Br.Op = Opcode::Br;
        Br.T1 = Cont;
        Copy->insts().push_back(Br);
        continue;
      }
      Inst I = Orig;
      if (I.Dst != NoReg)
        I.Dst += RegBase;
      if (I.A != NoReg)
        I.A += RegBase;
      if (!I.BIsImm && I.B != NoReg)
        I.B += RegBase;
      for (Reg &Arg : I.Args)
        Arg += RegBase;
      if (I.T1) {
        auto It = BlockMap.find(I.T1);
        if (It != BlockMap.end())
          I.T1 = It->second;
      }
      if (I.T2) {
        auto It = BlockMap.find(I.T2);
        if (It != BlockMap.end())
          I.T2 = It->second;
      }
      for (BasicBlock *&Target : I.SwitchTargets) {
        auto It = BlockMap.find(Target);
        if (It != BlockMap.end())
          Target = It->second;
      }
      Copy->insts().push_back(I);
    }
  }

  // Rewrite the call site: drop the call and its tail, marshal the
  // arguments into the callee's parameter registers, enter the clone.
  BB.insts().erase(BB.insts().begin() + CallIndex, BB.insts().end());
  for (unsigned P = 0; P != Callee.numParams(); ++P) {
    Inst Mv;
    Mv.Op = Opcode::Mov;
    Mv.Dst = RegBase + P;
    Mv.B = P < Call.Args.size() ? Call.Args[P] : NoReg;
    BB.insts().push_back(Mv);
  }
  Inst Enter;
  Enter.Op = Opcode::Br;
  Enter.T1 = BlockMap[Callee.entry()];
  BB.insts().push_back(Enter);

  return Caller.numInsts() - InstsBefore;
}
