//===- ir/Opcode.cpp - IR opcode definitions ------------------------------===//

#include "ir/Opcode.h"

#include <cassert>

using namespace pp;
using namespace pp::ir;

const char *ir::opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::Mov:
    return "mov";
  case Opcode::Add:
    return "add";
  case Opcode::Sub:
    return "sub";
  case Opcode::Mul:
    return "mul";
  case Opcode::Div:
    return "div";
  case Opcode::Rem:
    return "rem";
  case Opcode::And:
    return "and";
  case Opcode::Or:
    return "or";
  case Opcode::Xor:
    return "xor";
  case Opcode::Shl:
    return "shl";
  case Opcode::Shr:
    return "shr";
  case Opcode::CmpEq:
    return "cmpeq";
  case Opcode::CmpNe:
    return "cmpne";
  case Opcode::CmpLt:
    return "cmplt";
  case Opcode::CmpLe:
    return "cmple";
  case Opcode::FAdd:
    return "fadd";
  case Opcode::FSub:
    return "fsub";
  case Opcode::FMul:
    return "fmul";
  case Opcode::FDiv:
    return "fdiv";
  case Opcode::FCmpLt:
    return "fcmplt";
  case Opcode::FCmpLe:
    return "fcmple";
  case Opcode::FCmpEq:
    return "fcmpeq";
  case Opcode::IntToFp:
    return "itof";
  case Opcode::FpToInt:
    return "ftoi";
  case Opcode::Load:
    return "load";
  case Opcode::Store:
    return "store";
  case Opcode::Alloc:
    return "alloc";
  case Opcode::Br:
    return "br";
  case Opcode::CondBr:
    return "condbr";
  case Opcode::Switch:
    return "switch";
  case Opcode::Ret:
    return "ret";
  case Opcode::Call:
    return "call";
  case Opcode::ICall:
    return "icall";
  case Opcode::Setjmp:
    return "setjmp";
  case Opcode::Longjmp:
    return "longjmp";
  case Opcode::RdPic:
    return "rdpic";
  case Opcode::WrPic:
    return "wrpic";
  case Opcode::PathHashCommit:
    return "path.hashcommit";
  case Opcode::CctEnter:
    return "cct.enter";
  case Opcode::CctCall:
    return "cct.call";
  case Opcode::CctExit:
    return "cct.exit";
  case Opcode::CctPathCommit:
    return "cct.pathcommit";
  case Opcode::CctHwProbe:
    return "cct.hwprobe";
  case Opcode::NumOpcodes:
    break;
  }
  assert(false && "invalid opcode");
  return "<invalid>";
}
