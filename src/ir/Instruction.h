//===- ir/Instruction.h - IR instruction ----------------------*- C++ -*-===//
///
/// \file
/// The Inst value type: one simulated machine instruction. Instructions are
/// stored by value inside their basic block, so the instrumenter can insert
/// profiling code with ordinary vector operations, mirroring how EEL splices
/// foreign code into an executable.
///
//===----------------------------------------------------------------------===//

#ifndef PP_IR_INSTRUCTION_H
#define PP_IR_INSTRUCTION_H

#include "ir/Opcode.h"

#include <cstdint>
#include <vector>

namespace pp {
namespace ir {

class BasicBlock;
class Function;

/// Virtual register index within a function.
using Reg = uint32_t;

/// Sentinel for "no register".
inline constexpr Reg NoReg = ~0u;

/// One IR instruction. Fields are interpreted per-opcode; see Opcode.h for
/// each opcode's operand conventions. The second source operand is either
/// the register \c B or the immediate \c Imm, selected by \c BIsImm.
struct Inst {
  Opcode Op = Opcode::Mov;
  /// Memory access width in bytes for Load/Store (1, 2, 4, or 8).
  uint8_t Size = 8;
  /// True when the second operand is the immediate Imm instead of register B.
  bool BIsImm = false;
  Reg Dst = NoReg;
  Reg A = NoReg;
  Reg B = NoReg;
  int64_t Imm = 0;
  /// Primary branch target (Br, CondBr true edge, Switch default).
  BasicBlock *T1 = nullptr;
  /// Secondary branch target (CondBr false edge).
  BasicBlock *T2 = nullptr;
  /// Non-default Switch targets, in case order (case value = index).
  std::vector<BasicBlock *> SwitchTargets;
  /// Direct call target.
  Function *Callee = nullptr;
  /// Argument registers for Call/ICall.
  std::vector<Reg> Args;
  /// Simulated code address, assigned by the loader at layout time.
  uint64_t Addr = 0;

  /// True when the second source operand is a register.
  bool usesRegB() const { return !BIsImm && B != NoReg; }
};

} // namespace ir
} // namespace pp

#endif // PP_IR_INSTRUCTION_H
