//===- ir/Clone.h - Block cloning and call inlining -------------*- C++ -*-===//
///
/// \file
/// The IR surgery the profile-guided optimizer needs: duplicating a basic
/// block (superblock tail duplication) and expanding a direct call inline
/// (CCT-hotness-directed inlining). Both are mechanical — all policy
/// (budgets, recursion refusal, hotness thresholds) lives in opt; these
/// utilities only guarantee the result verifies and preserves semantics.
///
//===----------------------------------------------------------------------===//

#ifndef PP_IR_CLONE_H
#define PP_IR_CLONE_H

#include <cstddef>
#include <string>

namespace pp {
namespace ir {

class BasicBlock;
class Function;

/// Appends a copy of \p Source to \p F, named Source.name() + \p Suffix
/// (the parser resolves branch targets per-function by name, so callers
/// must pick suffixes that keep names unique). Instructions are copied
/// verbatim: branch targets still point at Source's successors and
/// registers are unchanged; the caller redirects what it needs to.
BasicBlock *cloneBlock(Function &F, const BasicBlock &Source,
                       const std::string &Suffix);

/// Expands the direct call at \p BB.insts()[CallIndex] into \p Caller:
/// the callee's blocks are cloned with registers rebased onto fresh
/// caller registers, parameters become register moves, every callee Ret
/// becomes a move into the call's destination plus a branch to a new
/// continuation block holding the rest of \p BB. Refuses (returns 0)
/// non-calls, indirect calls, and self-calls; otherwise returns the net
/// number of instructions added to \p Caller. Callees containing Setjmp
/// must be refused by the caller — inlining changes the frame a Setjmp
/// buffer records.
size_t inlineCall(Function &Caller, BasicBlock &BB, size_t CallIndex);

} // namespace ir
} // namespace pp

#endif // PP_IR_CLONE_H
