//===- ir/Parser.h - Textual IR parser -------------------------*- C++ -*-===//
///
/// \file
/// Parses the .ppir textual form produced by ir/Printer.h, so programs can
/// be written by hand, stored as files, and fed to the pp command-line
/// tool. Round-tripping print -> parse -> print is exercised by the tests.
///
//===----------------------------------------------------------------------===//

#ifndef PP_IR_PARSER_H
#define PP_IR_PARSER_H

#include <memory>
#include <string>

namespace pp {
namespace ir {

class Module;

/// Result of a parse: either a module or a diagnostic.
struct ParseResult {
  std::unique_ptr<Module> M;
  /// Empty on success; otherwise "line N: message".
  std::string Error;

  bool ok() const { return M != nullptr; }
};

/// Parses a whole module from \p Text.
ParseResult parseModule(const std::string &Text);

} // namespace ir
} // namespace pp

#endif // PP_IR_PARSER_H
