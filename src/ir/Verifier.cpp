//===- ir/Verifier.cpp - IR well-formedness checks -------------------------===//

#include "ir/Verifier.h"

#include "ir/Module.h"
#include "support/Error.h"
#include "support/Format.h"

#include <unordered_set>

using namespace pp;
using namespace pp::ir;

namespace {

class FunctionVerifier {
public:
  FunctionVerifier(const Function &F, std::vector<std::string> &Errors)
      : F(F), Errors(Errors) {}

  bool run() {
    size_t Before = Errors.size();
    if (F.numBlocks() == 0) {
      error("function has no blocks");
      return false;
    }
    for (const auto &BB : F.blocks())
      OwnBlocks.insert(BB.get());
    for (const auto &BB : F.blocks())
      checkBlock(*BB);
    return Errors.size() == Before;
  }

private:
  void error(const std::string &Message) {
    Errors.push_back("function '" + F.name() + "': " + Message);
  }

  void checkReg(const BasicBlock &BB, const Inst &I, Reg R, const char *Role) {
    if (R == NoReg || R < F.numRegs())
      return;
    error(formatString("block '%s': %s register r%u out of range (%u regs)",
                       BB.name().c_str(), Role, R, F.numRegs()));
  }

  void checkTarget(const BasicBlock &BB, BasicBlock *Target,
                   const char *Role) {
    if (!Target) {
      error(formatString("block '%s': null %s target", BB.name().c_str(),
                         Role));
      return;
    }
    if (!OwnBlocks.count(Target))
      error(formatString("block '%s': %s target '%s' is in another function",
                         BB.name().c_str(), Role, Target->name().c_str()));
  }

  void checkBlock(const BasicBlock &BB) {
    if (BB.empty()) {
      error(formatString("block '%s' is empty", BB.name().c_str()));
      return;
    }
    if (!isTerminator(BB.insts().back().Op)) {
      error(formatString("block '%s' does not end in a terminator",
                         BB.name().c_str()));
      return;
    }
    for (size_t Index = 0; Index != BB.insts().size(); ++Index) {
      const Inst &I = BB.insts()[Index];
      bool IsLast = Index + 1 == BB.insts().size();
      if (isTerminator(I.Op) && !IsLast) {
        error(formatString("block '%s': terminator '%s' before end of block",
                           BB.name().c_str(), opcodeName(I.Op)));
        return;
      }
      checkInst(BB, I);
    }
  }

  void checkInst(const BasicBlock &BB, const Inst &I) {
    checkReg(BB, I, I.A, "source A");
    if (!I.BIsImm)
      checkReg(BB, I, I.B, "source B");
    checkReg(BB, I, I.Dst, "destination");

    if (hasDst(I.Op) && I.Dst == NoReg)
      error(formatString("block '%s': '%s' missing destination register",
                         BB.name().c_str(), opcodeName(I.Op)));

    switch (I.Op) {
    case Opcode::Load:
    case Opcode::Store:
      if (I.Size != 1 && I.Size != 2 && I.Size != 4 && I.Size != 8)
        error(formatString("block '%s': invalid access size %u",
                           BB.name().c_str(), unsigned(I.Size)));
      if (I.Op == Opcode::Store && !I.BIsImm && I.B == NoReg)
        error(formatString("block '%s': store without value operand",
                           BB.name().c_str()));
      break;
    case Opcode::Br:
      checkTarget(BB, I.T1, "branch");
      break;
    case Opcode::CondBr:
      if (I.A == NoReg)
        error(formatString("block '%s': condbr without condition register",
                           BB.name().c_str()));
      checkTarget(BB, I.T1, "true");
      checkTarget(BB, I.T2, "false");
      break;
    case Opcode::Switch:
      if (I.A == NoReg)
        error(formatString("block '%s': switch without index register",
                           BB.name().c_str()));
      checkTarget(BB, I.T1, "default");
      for (BasicBlock *Target : I.SwitchTargets)
        checkTarget(BB, Target, "case");
      break;
    case Opcode::Call:
      if (!I.Callee) {
        error(formatString("block '%s': call without callee",
                           BB.name().c_str()));
        break;
      }
      if (I.Callee->parent() != F.parent())
        error(formatString("block '%s': callee '%s' is in another module",
                           BB.name().c_str(), I.Callee->name().c_str()));
      if (I.Args.size() != I.Callee->numParams())
        error(formatString(
            "block '%s': call to '%s' passes %zu args, expected %u",
            BB.name().c_str(), I.Callee->name().c_str(), I.Args.size(),
            I.Callee->numParams()));
      for (Reg Arg : I.Args)
        checkReg(BB, I, Arg, "argument");
      break;
    case Opcode::ICall:
      if (I.A == NoReg)
        error(formatString("block '%s': icall without target register",
                           BB.name().c_str()));
      for (Reg Arg : I.Args)
        checkReg(BB, I, Arg, "argument");
      break;
    case Opcode::Longjmp:
      if (!I.BIsImm && I.B == NoReg)
        error(formatString("block '%s': longjmp without value operand",
                           BB.name().c_str()));
      break;
    default:
      break;
    }
  }

  const Function &F;
  std::vector<std::string> &Errors;
  std::unordered_set<const BasicBlock *> OwnBlocks;
};

} // namespace

bool ir::verifyFunction(const Function &F, std::vector<std::string> &Errors) {
  return FunctionVerifier(F, Errors).run();
}

bool ir::verifyModule(const Module &M, std::vector<std::string> &Errors) {
  size_t Before = Errors.size();
  if (!M.main())
    Errors.push_back("module has no main function");
  else if (M.main()->numParams() != 0)
    Errors.push_back("main function must take no parameters");
  for (const auto &F : M.functions())
    verifyFunction(*F, Errors);
  for (size_t Index = 0; Index != M.numGlobals(); ++Index) {
    const Global &G = M.global(Index);
    if (G.Size == 0)
      Errors.push_back("global '" + G.Name + "' has zero size");
    if (G.Init.size() > G.Size)
      Errors.push_back("global '" + G.Name + "' initialiser exceeds size");
  }
  return Errors.size() == Before;
}

void ir::verifyModuleOrDie(const Module &M) {
  std::vector<std::string> Errors;
  if (verifyModule(M, Errors))
    return;
  std::string Joined = "module verification failed:";
  for (const std::string &E : Errors)
    Joined += "\n  " + E;
  reportFatalError(Joined);
}
