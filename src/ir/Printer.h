//===- ir/Printer.h - Textual IR output ------------------------*- C++ -*-===//
///
/// \file
/// Prints modules, functions, and instructions in the .ppir textual form
/// that the parser reads back. Round-tripping is exercised by the tests.
///
//===----------------------------------------------------------------------===//

#ifndef PP_IR_PRINTER_H
#define PP_IR_PRINTER_H

#include <string>

namespace pp {
namespace ir {

struct Inst;
class BasicBlock;
class Function;
class Module;

/// Renders one instruction (no trailing newline).
std::string printInst(const Inst &I);

/// Renders a block: label line followed by indented instructions.
std::string printBlock(const BasicBlock &BB);

/// Renders a function definition.
std::string printFunction(const Function &F);

/// Renders the whole module: globals, then functions, then the main marker.
std::string printModule(const Module &M);

} // namespace ir
} // namespace pp

#endif // PP_IR_PRINTER_H
