//===- ir/Function.h - IR function -----------------------------*- C++ -*-===//
///
/// \file
/// A function: an owned list of basic blocks with a distinguished entry
/// block, a parameter count, and a virtual register file. Functions carry a
/// dense id used as their "address" for indirect calls, mirroring how the
/// paper uses a procedure's start address as its identifier.
///
//===----------------------------------------------------------------------===//

#ifndef PP_IR_FUNCTION_H
#define PP_IR_FUNCTION_H

#include "ir/BasicBlock.h"

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

namespace pp {
namespace ir {

class Module;

/// A procedure in the simulated program.
class Function {
public:
  Function(Module *Parent, unsigned Id, std::string Name, unsigned NumParams)
      : Parent(Parent), Id(Id), Name(std::move(Name)), NumParams(NumParams),
        NumRegs(NumParams) {}

  Module *parent() const { return Parent; }
  unsigned id() const { return Id; }
  const std::string &name() const { return Name; }
  unsigned numParams() const { return NumParams; }

  /// Number of virtual registers in use; registers [0, numParams) hold the
  /// arguments on entry.
  unsigned numRegs() const { return NumRegs; }

  /// Allocates a fresh virtual register (the instrumenter relies on this,
  /// like EEL finding a free register for the path sum).
  Reg freshReg() { return NumRegs++; }

  /// Appends a new basic block. The first block created is the entry block.
  BasicBlock *addBlock(std::string BlockName) {
    Blocks.push_back(std::make_unique<BasicBlock>(
        this, static_cast<unsigned>(Blocks.size()), std::move(BlockName)));
    return Blocks.back().get();
  }

  BasicBlock *entry() const {
    assert(!Blocks.empty() && "function has no blocks");
    return Blocks.front().get();
  }

  size_t numBlocks() const { return Blocks.size(); }
  BasicBlock *block(size_t Index) const { return Blocks[Index].get(); }

  const std::vector<std::unique_ptr<BasicBlock>> &blocks() const {
    return Blocks;
  }

  /// Reorders the blocks to \p NewOrder (a permutation of all blocks whose
  /// first element is the current entry's replacement — it becomes the new
  /// entry). Block ids are reassigned to match, and the loader lays code
  /// out in this order, so profile-guided layout (hot paths first) changes
  /// the simulated I-cache behaviour.
  void reorderBlocks(const std::vector<BasicBlock *> &NewOrder) {
    assert(NewOrder.size() == Blocks.size() && "not a permutation");
    std::vector<std::unique_ptr<BasicBlock>> Reordered;
    Reordered.reserve(Blocks.size());
    for (BasicBlock *BB : NewOrder) {
      auto It = std::find_if(
          Blocks.begin(), Blocks.end(),
          [BB](const std::unique_ptr<BasicBlock> &Own) {
            return Own.get() == BB;
          });
      assert(It != Blocks.end() && "block not owned by this function");
      Reordered.push_back(std::move(*It));
      Blocks.erase(It);
    }
    assert(Blocks.empty() && "duplicate blocks in permutation");
    Blocks = std::move(Reordered);
    for (unsigned Index = 0; Index != Blocks.size(); ++Index)
      Blocks[Index]->setId(Index);
  }

  /// Total instruction count across all blocks (the function's code size).
  size_t numInsts() const {
    size_t N = 0;
    for (const auto &BB : Blocks)
      N += BB->insts().size();
    return N;
  }

  /// Marks the function as carrying profiling instrumentation.
  void setInstrumented(bool Value) { Instrumented = Value; }
  bool isInstrumented() const { return Instrumented; }

private:
  Module *Parent;
  unsigned Id;
  std::string Name;
  unsigned NumParams;
  unsigned NumRegs;
  bool Instrumented = false;
  std::vector<std::unique_ptr<BasicBlock>> Blocks;
};

} // namespace ir
} // namespace pp

#endif // PP_IR_FUNCTION_H
