//===- ir/BasicBlock.h - IR basic block ------------------------*- C++ -*-===//
///
/// \file
/// A basic block: a straight-line instruction sequence ending in exactly one
/// terminator. Successors are derived from the terminator; the successor
/// *order* is significant because path profiling identifies CFG edges by
/// (block, successor index).
///
//===----------------------------------------------------------------------===//

#ifndef PP_IR_BASICBLOCK_H
#define PP_IR_BASICBLOCK_H

#include "ir/Instruction.h"

#include <cassert>
#include <string>
#include <vector>

namespace pp {
namespace ir {

class Function;

/// A node of a function's control flow graph.
class BasicBlock {
public:
  BasicBlock(Function *Parent, unsigned Id, std::string Name)
      : Parent(Parent), Id(Id), Name(std::move(Name)) {}

  Function *parent() const { return Parent; }
  /// Dense index of this block within its function, stable across
  /// instrumentation (new blocks get fresh indices at the end) but
  /// renumbered by Function::reorderBlocks.
  unsigned id() const { return Id; }
  /// Used by Function::reorderBlocks only.
  void setId(unsigned NewId) { Id = NewId; }
  const std::string &name() const { return Name; }

  std::vector<Inst> &insts() { return Insts; }
  const std::vector<Inst> &insts() const { return Insts; }

  bool empty() const { return Insts.empty(); }

  /// The block's terminator; the block must be non-empty and well-formed.
  Inst &terminator() {
    assert(!Insts.empty() && isTerminator(Insts.back().Op) &&
           "block has no terminator");
    return Insts.back();
  }
  const Inst &terminator() const {
    return const_cast<BasicBlock *>(this)->terminator();
  }

  /// True once the block ends in a terminator instruction.
  bool hasTerminator() const {
    return !Insts.empty() && isTerminator(Insts.back().Op);
  }

  /// Number of CFG successors, derived from the terminator.
  unsigned numSuccessors() const {
    const Inst &T = terminator();
    switch (T.Op) {
    case Opcode::Br:
      return 1;
    case Opcode::CondBr:
      return 2;
    case Opcode::Switch:
      return 1 + static_cast<unsigned>(T.SwitchTargets.size());
    case Opcode::Ret:
    case Opcode::Longjmp:
      return 0;
    default:
      assert(false && "non-terminator at end of block");
      return 0;
    }
  }

  /// Successor \p Index in canonical edge order: CondBr lists the taken
  /// (true) edge first; Switch lists the default edge first, then cases.
  BasicBlock *successor(unsigned Index) const {
    const Inst &T = terminator();
    switch (T.Op) {
    case Opcode::Br:
      assert(Index == 0);
      return T.T1;
    case Opcode::CondBr:
      assert(Index < 2);
      return Index == 0 ? T.T1 : T.T2;
    case Opcode::Switch:
      if (Index == 0)
        return T.T1;
      assert(Index - 1 < T.SwitchTargets.size());
      return T.SwitchTargets[Index - 1];
    default:
      assert(false && "block has no successors");
      return nullptr;
    }
  }

  /// Redirects successor \p Index to \p NewTarget (used when splitting
  /// critical edges during instrumentation).
  void setSuccessor(unsigned Index, BasicBlock *NewTarget) {
    Inst &T = terminator();
    switch (T.Op) {
    case Opcode::Br:
      assert(Index == 0);
      T.T1 = NewTarget;
      return;
    case Opcode::CondBr:
      assert(Index < 2);
      (Index == 0 ? T.T1 : T.T2) = NewTarget;
      return;
    case Opcode::Switch:
      if (Index == 0) {
        T.T1 = NewTarget;
        return;
      }
      assert(Index - 1 < T.SwitchTargets.size());
      T.SwitchTargets[Index - 1] = NewTarget;
      return;
    default:
      assert(false && "block has no successors");
    }
  }

  /// Index of the instruction before which non-terminator code should be
  /// appended (i.e. just before the terminator if present).
  size_t appendPos() const { return hasTerminator() ? Insts.size() - 1 : Insts.size(); }

private:
  Function *Parent;
  unsigned Id;
  std::string Name;
  std::vector<Inst> Insts;
};

} // namespace ir
} // namespace pp

#endif // PP_IR_BASICBLOCK_H
