//===- ir/IRBuilder.h - Convenience IR constructor -------------*- C++ -*-===//
///
/// \file
/// IRBuilder appends instructions to a basic block, allocating destination
/// registers on demand. Workload generators and the instrumenter use it to
/// emit code compactly.
///
//===----------------------------------------------------------------------===//

#ifndef PP_IR_IRBUILDER_H
#define PP_IR_IRBUILDER_H

#include "ir/Function.h"
#include "ir/Module.h"

#include <bit>
#include <cassert>

namespace pp {
namespace ir {

/// Emits instructions at the end of a block (before its terminator, once one
/// exists). Reposition with setBlock().
class IRBuilder {
public:
  explicit IRBuilder(Function *F) : F(F), BB(nullptr) {}
  IRBuilder(Function *F, BasicBlock *BB) : F(F), BB(BB) {}

  Function *function() const { return F; }
  BasicBlock *block() const { return BB; }
  void setBlock(BasicBlock *NewBB) { BB = NewBB; }

  /// Creates a new block in the function (does not reposition).
  BasicBlock *makeBlock(std::string Name) { return F->addBlock(std::move(Name)); }

  // --- Data movement -----------------------------------------------------

  /// Dst = Imm.
  Reg movImm(int64_t Imm) { return emitDst(Opcode::Mov, NoReg, immOp(Imm)); }

  /// Dst = bit pattern of the double \p Value.
  Reg movFpImm(double Value) {
    return movImm(static_cast<int64_t>(std::bit_cast<uint64_t>(Value)));
  }

  /// Dst = Src.
  Reg mov(Reg Src) { return emitDst(Opcode::Mov, NoReg, regOp(Src)); }

  /// Existing = Imm (writes into a caller-chosen register).
  void movInto(Reg Dst, int64_t Imm) {
    Inst I = makeInst(Opcode::Mov, NoReg, immOp(Imm));
    I.Dst = Dst;
    append(std::move(I));
  }

  /// Existing = Src.
  void movRegInto(Reg Dst, Reg Src) {
    Inst I = makeInst(Opcode::Mov, NoReg, regOp(Src));
    I.Dst = Dst;
    append(std::move(I));
  }

  // --- Integer ALU ---------------------------------------------------------

  Reg add(Reg A, Reg B) { return emitDst(Opcode::Add, A, regOp(B)); }
  Reg addImm(Reg A, int64_t Imm) { return emitDst(Opcode::Add, A, immOp(Imm)); }
  Reg sub(Reg A, Reg B) { return emitDst(Opcode::Sub, A, regOp(B)); }
  Reg subImm(Reg A, int64_t Imm) { return emitDst(Opcode::Sub, A, immOp(Imm)); }
  Reg mul(Reg A, Reg B) { return emitDst(Opcode::Mul, A, regOp(B)); }
  Reg mulImm(Reg A, int64_t Imm) { return emitDst(Opcode::Mul, A, immOp(Imm)); }
  Reg divOp(Reg A, Reg B) { return emitDst(Opcode::Div, A, regOp(B)); }
  Reg divImm(Reg A, int64_t Imm) { return emitDst(Opcode::Div, A, immOp(Imm)); }
  Reg rem(Reg A, Reg B) { return emitDst(Opcode::Rem, A, regOp(B)); }
  Reg remImm(Reg A, int64_t Imm) { return emitDst(Opcode::Rem, A, immOp(Imm)); }
  Reg andOp(Reg A, Reg B) { return emitDst(Opcode::And, A, regOp(B)); }
  Reg andImm(Reg A, int64_t Imm) { return emitDst(Opcode::And, A, immOp(Imm)); }
  Reg orOp(Reg A, Reg B) { return emitDst(Opcode::Or, A, regOp(B)); }
  Reg orImm(Reg A, int64_t Imm) { return emitDst(Opcode::Or, A, immOp(Imm)); }
  Reg xorOp(Reg A, Reg B) { return emitDst(Opcode::Xor, A, regOp(B)); }
  Reg xorImm(Reg A, int64_t Imm) { return emitDst(Opcode::Xor, A, immOp(Imm)); }
  Reg shlImm(Reg A, int64_t Imm) { return emitDst(Opcode::Shl, A, immOp(Imm)); }
  Reg shrImm(Reg A, int64_t Imm) { return emitDst(Opcode::Shr, A, immOp(Imm)); }

  /// addInto: Dst += Imm, in place (the path-register update "r += c").
  void addImmInto(Reg Dst, int64_t Imm) {
    Inst I = makeInst(Opcode::Add, Dst, immOp(Imm));
    I.Dst = Dst;
    append(std::move(I));
  }

  // --- Comparisons ---------------------------------------------------------

  Reg cmpEq(Reg A, Reg B) { return emitDst(Opcode::CmpEq, A, regOp(B)); }
  Reg cmpEqImm(Reg A, int64_t Imm) { return emitDst(Opcode::CmpEq, A, immOp(Imm)); }
  Reg cmpNe(Reg A, Reg B) { return emitDst(Opcode::CmpNe, A, regOp(B)); }
  Reg cmpNeImm(Reg A, int64_t Imm) { return emitDst(Opcode::CmpNe, A, immOp(Imm)); }
  Reg cmpLt(Reg A, Reg B) { return emitDst(Opcode::CmpLt, A, regOp(B)); }
  Reg cmpLtImm(Reg A, int64_t Imm) { return emitDst(Opcode::CmpLt, A, immOp(Imm)); }
  Reg cmpLe(Reg A, Reg B) { return emitDst(Opcode::CmpLe, A, regOp(B)); }
  Reg cmpLeImm(Reg A, int64_t Imm) { return emitDst(Opcode::CmpLe, A, immOp(Imm)); }

  // --- Floating point ------------------------------------------------------

  Reg fadd(Reg A, Reg B) { return emitDst(Opcode::FAdd, A, regOp(B)); }
  Reg fsub(Reg A, Reg B) { return emitDst(Opcode::FSub, A, regOp(B)); }
  Reg fmul(Reg A, Reg B) { return emitDst(Opcode::FMul, A, regOp(B)); }
  Reg fdiv(Reg A, Reg B) { return emitDst(Opcode::FDiv, A, regOp(B)); }
  Reg fcmpLt(Reg A, Reg B) { return emitDst(Opcode::FCmpLt, A, regOp(B)); }
  Reg fcmpLe(Reg A, Reg B) { return emitDst(Opcode::FCmpLe, A, regOp(B)); }
  Reg fcmpEq(Reg A, Reg B) { return emitDst(Opcode::FCmpEq, A, regOp(B)); }
  Reg intToFp(Reg A) { return emitDst(Opcode::IntToFp, A, immOp(0)); }
  Reg fpToInt(Reg A) { return emitDst(Opcode::FpToInt, A, immOp(0)); }

  // --- Memory ----------------------------------------------------------------

  /// Dst = mem[Base + Offset], access width \p Size bytes.
  Reg load(Reg Base, int64_t Offset, uint8_t Size = 8) {
    Inst I = makeInst(Opcode::Load, Base, immOp(Offset));
    I.Size = Size;
    I.Dst = F->freshReg();
    Reg Dst = I.Dst;
    append(std::move(I));
    return Dst;
  }

  /// Dst = mem[AbsoluteAddr].
  Reg loadAbs(int64_t AbsoluteAddr, uint8_t Size = 8) {
    return load(NoReg, AbsoluteAddr, Size);
  }

  /// mem[Base + Offset] = Value.
  void store(Reg Base, int64_t Offset, Reg Value, uint8_t Size = 8) {
    Inst I;
    I.Op = Opcode::Store;
    I.A = Base;
    I.B = Value;
    I.Imm = Offset;
    I.Size = Size;
    append(std::move(I));
  }

  /// mem[AbsoluteAddr] = Value.
  void storeAbs(int64_t AbsoluteAddr, Reg Value, uint8_t Size = 8) {
    store(NoReg, AbsoluteAddr, Value, Size);
  }

  /// Dst = address of a fresh heap allocation of \p SizeReg bytes.
  Reg alloc(Reg SizeReg) { return emitDst(Opcode::Alloc, NoReg, regOp(SizeReg)); }
  Reg allocImm(int64_t Size) { return emitDst(Opcode::Alloc, NoReg, immOp(Size)); }

  // --- Control flow ----------------------------------------------------------

  void br(BasicBlock *Target) {
    Inst I;
    I.Op = Opcode::Br;
    I.T1 = Target;
    append(std::move(I));
  }

  /// if Cond != 0 goto TrueBB else FalseBB.
  void condBr(Reg Cond, BasicBlock *TrueBB, BasicBlock *FalseBB) {
    Inst I;
    I.Op = Opcode::CondBr;
    I.A = Cond;
    I.T1 = TrueBB;
    I.T2 = FalseBB;
    append(std::move(I));
  }

  /// goto Targets[Index], or Default when out of range.
  void switchOn(Reg Index, BasicBlock *Default,
                std::vector<BasicBlock *> Targets) {
    Inst I;
    I.Op = Opcode::Switch;
    I.A = Index;
    I.T1 = Default;
    I.SwitchTargets = std::move(Targets);
    append(std::move(I));
  }

  void ret(Reg Value) {
    Inst I;
    I.Op = Opcode::Ret;
    I.B = Value;
    append(std::move(I));
  }

  void retImm(int64_t Value = 0) {
    Inst I;
    I.Op = Opcode::Ret;
    I.BIsImm = true;
    I.Imm = Value;
    append(std::move(I));
  }

  /// Dst = Callee(Args...).
  Reg call(Function *Callee, std::vector<Reg> Args = {}) {
    assert(Callee->numParams() == Args.size() && "call arity mismatch");
    Inst I;
    I.Op = Opcode::Call;
    I.Callee = Callee;
    I.Args = std::move(Args);
    I.Dst = F->freshReg();
    Reg Dst = I.Dst;
    append(std::move(I));
    return Dst;
  }

  /// Dst = functions[TargetId](Args...), indirect call.
  Reg icall(Reg TargetId, std::vector<Reg> Args = {}) {
    Inst I;
    I.Op = Opcode::ICall;
    I.A = TargetId;
    I.Args = std::move(Args);
    I.Dst = F->freshReg();
    Reg Dst = I.Dst;
    append(std::move(I));
    return Dst;
  }

  /// Dst = 0 when executed directly, the longjmp value on non-local return.
  Reg setjmp(int64_t BufferKey) {
    Inst I;
    I.Op = Opcode::Setjmp;
    I.Imm = BufferKey;
    I.Dst = F->freshReg();
    Reg Dst = I.Dst;
    append(std::move(I));
    return Dst;
  }

  /// Unwinds to the setjmp with \p BufferKey, delivering \p Value.
  void longjmp(int64_t BufferKey, Reg Value) {
    Inst I;
    I.Op = Opcode::Longjmp;
    I.Imm = BufferKey;
    I.B = Value;
    append(std::move(I));
  }

  // --- Hardware counters ------------------------------------------------------

  /// Dst = (PIC1 << 32) | PIC0.
  Reg rdPic() { return emitDst(Opcode::RdPic, NoReg, immOp(0)); }

  void wrPicImm(int64_t Value) {
    Inst I;
    I.Op = Opcode::WrPic;
    I.BIsImm = true;
    I.Imm = Value;
    append(std::move(I));
  }

  void wrPic(Reg Value) {
    Inst I;
    I.Op = Opcode::WrPic;
    I.B = Value;
    append(std::move(I));
  }

  /// Appends a fully constructed instruction. Non-terminators appended to an
  /// already-terminated block are inserted just before the terminator.
  void append(Inst I) {
    assert(BB && "builder not positioned at a block");
    if (BB->hasTerminator()) {
      assert(!isTerminator(I.Op) && "block already terminated");
      BB->insts().insert(BB->insts().begin() + BB->appendPos(), std::move(I));
      return;
    }
    BB->insts().push_back(std::move(I));
  }

private:
  struct Operand {
    bool IsImm;
    Reg R;
    int64_t Imm;
  };
  static Operand regOp(Reg R) { return {false, R, 0}; }
  static Operand immOp(int64_t Imm) { return {true, NoReg, Imm}; }

  Inst makeInst(Opcode Op, Reg A, Operand B) {
    Inst I;
    I.Op = Op;
    I.A = A;
    I.BIsImm = B.IsImm;
    I.B = B.R;
    I.Imm = B.IsImm ? B.Imm : I.Imm;
    return I;
  }

  Reg emitDst(Opcode Op, Reg A, Operand B) {
    Inst I = makeInst(Op, A, B);
    I.Dst = F->freshReg();
    Reg Dst = I.Dst;
    append(std::move(I));
    return Dst;
  }

  Function *F;
  BasicBlock *BB;
};

} // namespace ir
} // namespace pp

#endif // PP_IR_IRBUILDER_H
