//===- ir/Printer.cpp - Textual IR output ----------------------------------===//

#include "ir/Printer.h"

#include "ir/Module.h"
#include "support/Format.h"

using namespace pp;
using namespace pp::ir;

static std::string regName(Reg R) {
  if (R == NoReg)
    return "_";
  return formatString("r%u", R);
}

static std::string operandB(const Inst &I) {
  if (I.BIsImm)
    return formatString("%lld", static_cast<long long>(I.Imm));
  return regName(I.B);
}

std::string ir::printInst(const Inst &I) {
  std::string Out = opcodeName(I.Op);
  switch (I.Op) {
  case Opcode::Mov:
    return Out + " " + regName(I.Dst) + ", " + operandB(I);
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::Div:
  case Opcode::Rem:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::Shl:
  case Opcode::Shr:
  case Opcode::CmpEq:
  case Opcode::CmpNe:
  case Opcode::CmpLt:
  case Opcode::CmpLe:
  case Opcode::FAdd:
  case Opcode::FSub:
  case Opcode::FMul:
  case Opcode::FDiv:
  case Opcode::FCmpLt:
  case Opcode::FCmpLe:
  case Opcode::FCmpEq:
    return Out + " " + regName(I.Dst) + ", " + regName(I.A) + ", " +
           operandB(I);
  case Opcode::IntToFp:
  case Opcode::FpToInt:
    return Out + " " + regName(I.Dst) + ", " + regName(I.A);
  case Opcode::Load:
    return Out + formatString("%u ", unsigned(I.Size)) + regName(I.Dst) +
           ", [" + regName(I.A) + formatString(" + %lld]",
                                               static_cast<long long>(I.Imm));
  case Opcode::Store:
    return Out + formatString("%u [", unsigned(I.Size)) + regName(I.A) +
           formatString(" + %lld], ", static_cast<long long>(I.Imm)) +
           operandB(I);
  case Opcode::Alloc:
    return Out + " " + regName(I.Dst) + ", " + operandB(I);
  case Opcode::Br:
    return Out + " @" + I.T1->name();
  case Opcode::CondBr:
    return Out + " " + regName(I.A) + ", @" + I.T1->name() + ", @" +
           I.T2->name();
  case Opcode::Switch: {
    Out += " " + regName(I.A) + ", @" + I.T1->name() + " [";
    for (size_t Index = 0; Index != I.SwitchTargets.size(); ++Index) {
      if (Index)
        Out += ", ";
      Out += "@" + I.SwitchTargets[Index]->name();
    }
    return Out + "]";
  }
  case Opcode::Ret:
    return Out + " " + operandB(I);
  case Opcode::Call:
  case Opcode::ICall: {
    Out += " " + regName(I.Dst) + ", ";
    Out += I.Op == Opcode::Call ? ("@" + I.Callee->name()) : regName(I.A);
    Out += " (";
    for (size_t Index = 0; Index != I.Args.size(); ++Index) {
      if (Index)
        Out += ", ";
      Out += regName(I.Args[Index]);
    }
    return Out + ")";
  }
  case Opcode::Setjmp:
    return Out + " " + regName(I.Dst) +
           formatString(", %lld", static_cast<long long>(I.Imm));
  case Opcode::Longjmp:
    return Out + formatString(" %lld, ", static_cast<long long>(I.Imm)) +
           operandB(I);
  case Opcode::RdPic:
    return Out + " " + regName(I.Dst);
  case Opcode::WrPic:
    return Out + " " + operandB(I);
  case Opcode::PathHashCommit:
    return Out + formatString(" %lld, ", static_cast<long long>(I.Imm)) +
           regName(I.A) + ", " + regName(I.B);
  case Opcode::CctEnter:
  case Opcode::CctExit:
    return Out;
  case Opcode::CctCall:
  case Opcode::CctHwProbe:
    return Out + formatString(" %lld", static_cast<long long>(I.Imm));
  case Opcode::CctPathCommit:
    return Out + " " + regName(I.A) + ", " + regName(I.B);
  case Opcode::NumOpcodes:
    break;
  }
  return Out + " <?>";
}

std::string ir::printBlock(const BasicBlock &BB) {
  std::string Out = BB.name() + ":\n";
  for (const Inst &I : BB.insts())
    Out += "  " + printInst(I) + "\n";
  return Out;
}

std::string ir::printFunction(const Function &F) {
  std::string Out =
      formatString("func @%s(%u) regs=%u {\n", F.name().c_str(),
                   F.numParams(), F.numRegs());
  for (const auto &BB : F.blocks())
    Out += printBlock(*BB);
  return Out + "}\n";
}

std::string ir::printModule(const Module &M) {
  std::string Out;
  for (size_t Index = 0; Index != M.numGlobals(); ++Index) {
    const Global &G = M.global(Index);
    Out += formatString("global @%s %llu\n", G.Name.c_str(),
                        static_cast<unsigned long long>(G.Size));
  }
  if (!Out.empty())
    Out += "\n";
  for (const auto &F : M.functions()) {
    Out += printFunction(*F);
    Out += "\n";
  }
  if (M.main())
    Out += "main @" + M.main()->name() + "\n";
  return Out;
}
