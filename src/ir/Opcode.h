//===- ir/Opcode.h - IR opcode definitions ---------------------*- C++ -*-===//
///
/// \file
/// Opcode enumeration and opcode traits for the pathprof IR. The IR plays
/// the role that SPARC machine code plays in the paper: a concrete program
/// representation that the instrumenter edits and the simulated machine
/// executes, including the profiling pseudo-ops PP inserts.
///
//===----------------------------------------------------------------------===//

#ifndef PP_IR_OPCODE_H
#define PP_IR_OPCODE_H

#include <cstdint>

namespace pp {
namespace ir {

/// Every instruction kind the simulated machine executes. Registers are
/// untyped 64-bit containers; FP opcodes interpret their bit patterns as
/// IEEE doubles.
enum class Opcode : uint8_t {
  // Data movement: Dst = operand B (register or immediate).
  Mov,
  // Integer ALU: Dst = A op B.
  Add,
  Sub,
  Mul,
  Div,
  Rem,
  And,
  Or,
  Xor,
  Shl,
  Shr,
  // Integer comparisons (signed; result is 0 or 1): Dst = A cmp B.
  CmpEq,
  CmpNe,
  CmpLt,
  CmpLe,
  // Floating point on double bit patterns.
  FAdd,
  FSub,
  FMul,
  FDiv,
  FCmpLt,
  FCmpLe,
  FCmpEq,
  IntToFp,
  FpToInt,
  // Memory: Load Dst = mem[A + Imm]; Store mem[A + Imm] = B. Size gives the
  // access width (1, 2, 4, or 8 bytes); sub-word loads zero-extend. A may be
  // NoReg for absolute addressing.
  Load,
  Store,
  // Bump-allocates B bytes in the simulated heap: Dst = base address.
  Alloc,
  // Control flow terminators.
  Br,     // goto T1
  CondBr, // if A != 0 goto T1 else goto T2
  Switch, // goto SwitchTargets[A], or T1 (default) when A is out of range
  Ret,    // return operand B
  // Calls (not terminators; execution continues in the same block).
  Call,  // Dst = Callee(Args...)
  ICall, // Dst = module.function(A)(Args...)
  // Non-local control transfer (the paper's longjmp discussion, §4.2).
  Setjmp,  // Dst = 0 on direct execution, the longjmp value on re-entry;
           // Imm names the jump buffer
  Longjmp, // unwind to the Setjmp with buffer Imm, returning B (terminator)
  // Hardware counter access (§3.1): RdPic packs PIC0 into the low and PIC1
  // into the high 32 bits of Dst; WrPic writes operand B the same way.
  RdPic,
  WrPic,
  // Profiling runtime pseudo-ops. These stand for instrumentation sequences
  // too irregular to emit inline (hash probes, CCT pointer chasing); the VM
  // runs them through the profiling runtime, which charges the machine the
  // instructions and memory traffic of the equivalent inline expansion.
  PathHashCommit, // hash-table path commit: table Imm, key A, PIC start B
  CctEnter,       // procedure entry: find/create this call's CallRecord
  CctCall,        // before a call: point gCSP at callee slot Imm
  CctExit,        // procedure exit: restore caller's gCSP
  CctPathCommit,  // commit path A into the current CallRecord's path table
  CctHwProbe,     // Imm selects: 0 entry probe, 1 loop backedge, 2 exit

  NumOpcodes
};

/// Returns the mnemonic for \p Op (e.g. "add", "cct.enter").
const char *opcodeName(Opcode Op);

/// True for opcodes that must terminate a basic block.
inline bool isTerminator(Opcode Op) {
  switch (Op) {
  case Opcode::Br:
  case Opcode::CondBr:
  case Opcode::Switch:
  case Opcode::Ret:
  case Opcode::Longjmp:
    return true;
  default:
    return false;
  }
}

/// True for direct and indirect calls.
inline bool isCall(Opcode Op) {
  return Op == Opcode::Call || Op == Opcode::ICall;
}

/// True if the opcode writes a destination register.
inline bool hasDst(Opcode Op) {
  switch (Op) {
  case Opcode::Store:
  case Opcode::Br:
  case Opcode::CondBr:
  case Opcode::Switch:
  case Opcode::Ret:
  case Opcode::Longjmp:
  case Opcode::WrPic:
  case Opcode::PathHashCommit:
  case Opcode::CctEnter:
  case Opcode::CctCall:
  case Opcode::CctExit:
  case Opcode::CctPathCommit:
  case Opcode::CctHwProbe:
    return false;
  default:
    return true;
  }
}

/// True for the floating-point arithmetic opcodes that occupy the FP
/// pipeline (used by the FP-stall scoreboard).
inline bool isFpArith(Opcode Op) {
  switch (Op) {
  case Opcode::FAdd:
  case Opcode::FSub:
  case Opcode::FMul:
  case Opcode::FDiv:
  case Opcode::FCmpLt:
  case Opcode::FCmpLe:
  case Opcode::FCmpEq:
    return true;
  default:
    return false;
  }
}

/// True for the profiling pseudo-ops handled by the profiling runtime.
inline bool isProfRuntimeOp(Opcode Op) {
  switch (Op) {
  case Opcode::PathHashCommit:
  case Opcode::CctEnter:
  case Opcode::CctCall:
  case Opcode::CctExit:
  case Opcode::CctPathCommit:
  case Opcode::CctHwProbe:
    return true;
  default:
    return false;
  }
}

} // namespace ir
} // namespace pp

#endif // PP_IR_OPCODE_H
