//===- ir/Verifier.h - IR well-formedness checks ----------------*- C++ -*-===//
///
/// \file
/// Structural verification of modules: every block ends in exactly one
/// terminator, branch targets stay inside the function, register and call
/// arities are consistent, and the entry block has no predecessors that
/// would invalidate the path-profiling entry assumption.
///
//===----------------------------------------------------------------------===//

#ifndef PP_IR_VERIFIER_H
#define PP_IR_VERIFIER_H

#include <string>
#include <vector>

namespace pp {
namespace ir {

class Function;
class Module;

/// Checks \p F; appends human-readable problems to \p Errors. Returns true
/// when no problems were found.
bool verifyFunction(const Function &F, std::vector<std::string> &Errors);

/// Checks every function of \p M plus module-level invariants (main exists,
/// global sizes are nonzero). Returns true when no problems were found.
bool verifyModule(const Module &M, std::vector<std::string> &Errors);

/// Convenience wrapper: verifies and calls reportFatalError with the first
/// problem if verification fails.
void verifyModuleOrDie(const Module &M);

} // namespace ir
} // namespace pp

#endif // PP_IR_VERIFIER_H
