//===- workloads/Extras.cpp - Non-SPEC registry workloads ---------------------===//
//
// Workloads reachable through buildWorkload() but deliberately kept out of
// spec95Suite(), so the paper's 18-row tables (and their golden outputs)
// stay untouched. pp.kbl-ladder exists for the k-iteration ablation: a
// loop body with enough diamonds that the window count fits at k = 2 but
// overflows 2^62 at k = 3, forcing the per-function fallback ladder on a
// real driver-cached run.
//
//===----------------------------------------------------------------------===//

#include "ir/Verifier.h"
#include "workloads/Spec.h"
#include "workloads/Util.h"

using namespace pp;
using namespace pp::workloads;
using namespace pp::ir;

std::unique_ptr<ir::Module> workloads::buildKblLadder(int Scale) {
  auto M = std::make_unique<Module>();
  uint64_t Input = addRandomGlobal(*M, "input", 1024, 0x6b1, 0);

  Function *Main = M->addFunction("main", 0);
  BasicBlock *Entry = Main->addBlock("entry");
  IRBuilder IRB(Main, Entry);
  Reg Sum = IRB.movImm(0);

  // 24 data-driven diamonds per iteration: ~2^24 acyclic paths through
  // the body, so k-window counts scale like 2^(24k) — under 2^62 at
  // k = 2, far over it at k = 3.
  constexpr int Diamonds = 24;
  Loop L = beginLoop(IRB, 512 * Scale, "iter");
  Reg Slot = IRB.andImm(L.Index, 1023);
  Reg Addr = IRB.addImm(IRB.shlImm(Slot, 3), static_cast<int64_t>(Input));
  Reg Bits = IRB.load(Addr, 0);
  for (int Step = 0; Step != Diamonds; ++Step) {
    BasicBlock *Left = Main->addBlock("l" + std::to_string(Step));
    BasicBlock *Right = Main->addBlock("r" + std::to_string(Step));
    BasicBlock *Join = Main->addBlock("j" + std::to_string(Step));
    Reg Bit = IRB.andImm(IRB.shrImm(Bits, Step), 1);
    IRB.condBr(Bit, Left, Right);
    IRB.setBlock(Left);
    Reg AddL = IRB.addImm(Sum, 3);
    IRB.movRegInto(Sum, AddL);
    IRB.br(Join);
    IRB.setBlock(Right);
    Reg AddR = IRB.xorImm(Sum, 5);
    IRB.movRegInto(Sum, AddR);
    IRB.br(Join);
    IRB.setBlock(Join);
  }
  endLoop(IRB, L);
  Reg Exit = IRB.andImm(Sum, 255);
  IRB.ret(Exit);

  M->setMain(Main);
  verifyModuleOrDie(*M);
  return M;
}
