//===- workloads/Util.cpp - Workload construction helpers --------------------===//

#include "workloads/Util.h"

#include <bit>
#include <cstring>

using namespace pp;
using namespace pp::workloads;

uint64_t workloads::addRandomGlobal(ir::Module &M, const std::string &Name,
                                    uint64_t Count, uint64_t Seed,
                                    uint64_t Bound) {
  Prng R(Seed);
  std::vector<uint8_t> Init(Count * 8);
  for (uint64_t Index = 0; Index != Count; ++Index) {
    uint64_t Value = Bound == 0 ? R.next() : R.nextBelow(Bound);
    std::memcpy(&Init[Index * 8], &Value, 8);
  }
  size_t GlobalIndex = M.addGlobal(Name, Count * 8, std::move(Init));
  return M.global(GlobalIndex).Addr;
}

uint64_t workloads::addRandomFpGlobal(ir::Module &M, const std::string &Name,
                                      uint64_t Count, uint64_t Seed) {
  Prng R(Seed);
  std::vector<uint8_t> Init(Count * 8);
  for (uint64_t Index = 0; Index != Count; ++Index) {
    uint64_t Bits = std::bit_cast<uint64_t>(R.nextDouble());
    std::memcpy(&Init[Index * 8], &Bits, 8);
  }
  size_t GlobalIndex = M.addGlobal(Name, Count * 8, std::move(Init));
  return M.global(GlobalIndex).Addr;
}

uint64_t workloads::addZeroGlobal(ir::Module &M, const std::string &Name,
                                  uint64_t Bytes) {
  size_t GlobalIndex = M.addGlobal(Name, Bytes);
  return M.global(GlobalIndex).Addr;
}
