//===- workloads/Examples.h - The paper's example programs -----*- C++ -*-===//
///
/// \file
/// Small programs reproducing the paper's worked examples: the six-path
/// CFG of Figure 1, the call structures of Figures 4 and 5, and a simple
/// counted loop for back-edge transformation tests. Tests and the figure
/// benches share them.
///
//===----------------------------------------------------------------------===//

#ifndef PP_WORKLOADS_EXAMPLES_H
#define PP_WORKLOADS_EXAMPLES_H

#include "ir/Module.h"

#include <memory>

namespace pp {
namespace workloads {

/// The Figure 1 graph: blocks A..F with edges A->{C,B}, B->{C,D}, C->D,
/// D->{F,E}, E->F, so the six entry-to-exit paths receive the paper's path
/// sums (ACDF=0, ACDEF=1, ABCDF=2, ABCDEF=3, ABDF=4, ABDEF=5). The
/// function "fig1" takes a 3-bit selector: bit0 routes A (1 = B side),
/// bit1 routes B (1 = D side), bit2 routes D (1 = E side). main() runs
/// every selector in [0, 8), so every feasible path executes at least once.
std::unique_ptr<ir::Module> buildFig1Module();

/// The Figure 4 program: main -> M; M calls A and D; A calls B; B calls C;
/// D calls C. Procedure C therefore has the two distinct contexts the
/// paper highlights (M A B C and M D C).
std::unique_ptr<ir::Module> buildFig4Module();

/// The Figure 5 program: M calls A(n); A calls B(n); B calls A(n-1) while
/// n > 0 — mutual recursion that must collapse onto one A record and one B
/// record below the first A.
std::unique_ptr<ir::Module> buildFig5Module();

/// A counted loop summing an array: entry -> head <-> body, head -> exit.
/// \p Iterations controls the trip count; the module's global "data" holds
/// the array.
std::unique_ptr<ir::Module> buildLoopModule(int64_t Iterations);

} // namespace workloads
} // namespace pp

#endif // PP_WORKLOADS_EXAMPLES_H
