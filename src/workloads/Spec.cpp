//===- workloads/Spec.cpp - The SPEC95-shaped workload registry --------------===//

#include "workloads/Spec.h"

using namespace pp;
using namespace pp::workloads;

const std::vector<WorkloadSpec> &workloads::spec95Suite() {
  static const std::vector<WorkloadSpec> Suite = {
      {"099.go", false, buildGo},
      {"124.m88ksim", false, buildM88ksim},
      {"126.gcc", false, buildGcc},
      {"129.compress", false, buildCompress},
      {"130.li", false, buildLi},
      {"132.ijpeg", false, buildIjpeg},
      {"134.perl", false, buildPerl},
      {"147.vortex", false, buildVortex},
      {"101.tomcatv", true, buildTomcatv},
      {"102.swim", true, buildSwim},
      {"103.su2cor", true, buildSu2cor},
      {"104.hydro2d", true, buildHydro2d},
      {"107.mgrid", true, buildMgrid},
      {"110.applu", true, buildApplu},
      {"125.turb3d", true, buildTurb3d},
      {"141.apsi", true, buildApsi},
      {"145.fpppp", true, buildFpppp},
      {"146.wave5", true, buildWave5},
  };
  return Suite;
}

const std::vector<WorkloadSpec> &workloads::extraSuite() {
  static const std::vector<WorkloadSpec> Suite = {
      {"pp.kbl-ladder", false, buildKblLadder},
  };
  return Suite;
}

std::unique_ptr<ir::Module> workloads::buildWorkload(const std::string &Name,
                                                     int Scale) {
  for (const WorkloadSpec &Spec : spec95Suite())
    if (Spec.Name == Name)
      return Spec.Build(Scale);
  for (const WorkloadSpec &Spec : extraSuite())
    if (Spec.Name == Name)
      return Spec.Build(Scale);
  return nullptr;
}
