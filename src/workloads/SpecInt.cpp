//===- workloads/SpecInt.cpp - CINT95-shaped synthetic workloads -------------===//
//
// The integer half of the suite. Shapes that matter for the reproduction:
// go and gcc execute an order of magnitude more distinct paths than the
// rest (branchy evaluation over random data / wide dispatch over a token
// stream); li and vortex are call-heavy (deep recursion / layered
// accessors); compress and perl hammer hash tables (data-dependent misses
// concentrated on probe paths).
//
//===----------------------------------------------------------------------===//

#include "ir/Verifier.h"
#include "workloads/Spec.h"
#include "workloads/Util.h"

using namespace pp;
using namespace pp::workloads;
using namespace pp::ir;

namespace {

/// Emits x = x * A + C (a 64-bit LCG step) in-place.
void emitLcgStep(IRBuilder &IRB, Reg X) {
  Reg Mul = IRB.mulImm(X, 6364136223846793005LL);
  Reg Next = IRB.addImm(Mul, 1442695040888963407LL);
  IRB.movRegInto(X, Next);
}

} // namespace

//===----------------------------------------------------------------------===//
// 099.go — branchy board evaluation with shallow search.
//===----------------------------------------------------------------------===//

std::unique_ptr<ir::Module> workloads::buildGo(int Scale) {
  auto M = std::make_unique<Module>();
  uint64_t Board = addRandomGlobal(*M, "board", 1024, 0x60, 3);
  uint64_t Scores = addZeroGlobal(*M, "scores", 1024 * 8);

  // eval_point(pos): chained three-way branches over the point and four
  // neighbours -> dozens of acyclic paths, selected by board data.
  Function *Eval = M->addFunction("eval_point", 1);
  {
    BasicBlock *Entry = Eval->addBlock("entry");
    IRBuilder IRB(Eval, Entry);
    Reg Pos = 0;
    Reg Score = IRB.movImm(0);

    // Load the point and its +-1, +-32 neighbours (masked into range).
    Reg Offsets[5];
    int64_t Deltas[5] = {0, 1, -1, 32, -32};
    BasicBlock *Cursor = Entry;
    for (int N = 0; N != 5; ++N) {
      IRB.setBlock(Cursor);
      Reg Shifted = IRB.addImm(Pos, Deltas[N]);
      Reg Masked = IRB.andImm(Shifted, 1023);
      Reg Slot = IRB.shlImm(Masked, 3);
      Reg Addr = IRB.addImm(Slot, static_cast<int64_t>(Board));
      Offsets[N] = IRB.load(Addr, 0);

      // Three-way branch: empty (0), mine (1), theirs (2).
      BasicBlock *Empty = Eval->addBlock("empty" + std::to_string(N));
      BasicBlock *NotEmpty = Eval->addBlock("ne" + std::to_string(N));
      BasicBlock *Mine = Eval->addBlock("mine" + std::to_string(N));
      BasicBlock *Theirs = Eval->addBlock("theirs" + std::to_string(N));
      BasicBlock *Join = Eval->addBlock("join" + std::to_string(N));
      Reg IsEmpty = IRB.cmpEqImm(Offsets[N], 0);
      IRB.condBr(IsEmpty, Empty, NotEmpty);
      IRB.setBlock(Empty);
      Reg E = IRB.addImm(Score, 1);
      IRB.movRegInto(Score, E);
      IRB.br(Join);
      IRB.setBlock(NotEmpty);
      Reg IsMine = IRB.cmpEqImm(Offsets[N], 1);
      IRB.condBr(IsMine, Mine, Theirs);
      IRB.setBlock(Mine);
      Reg Ml = IRB.addImm(Score, 5);
      IRB.movRegInto(Score, Ml);
      IRB.br(Join);
      IRB.setBlock(Theirs);
      Reg T = IRB.subImm(Score, 3);
      IRB.movRegInto(Score, T);
      IRB.br(Join);
      Cursor = Join;
    }
    IRB.setBlock(Cursor);
    IRB.ret(Score);
  }

  // scan_region(start): evaluate 32 points, fold scores with a branch.
  Function *Scan = M->addFunction("scan_region", 1);
  {
    IRBuilder IRB(Scan, Scan->addBlock("entry"));
    Reg Start = 0;
    Reg Total = IRB.movImm(0);
    Loop L = beginLoop(IRB, 32, "scan");
    Reg Pos = IRB.add(Start, L.Index);
    Reg Masked = IRB.andImm(Pos, 1023);
    Reg Score = IRB.call(Eval, {Masked});
    BasicBlock *Good = Scan->addBlock("good");
    BasicBlock *Bad = Scan->addBlock("bad");
    BasicBlock *Next = Scan->addBlock("next");
    Reg IsGood = IRB.cmpLtImm(Score, 0);
    IRB.condBr(IsGood, Bad, Good);
    IRB.setBlock(Good);
    Reg G = IRB.add(Total, Score);
    IRB.movRegInto(Total, G);
    // Record the good point's score.
    Reg Slot = IRB.shlImm(Masked, 3);
    Reg Addr = IRB.addImm(Slot, static_cast<int64_t>(Scores));
    IRB.store(Addr, 0, Score);
    IRB.br(Next);
    IRB.setBlock(Bad);
    Reg B = IRB.subImm(Total, 1);
    IRB.movRegInto(Total, B);
    IRB.br(Next);
    IRB.setBlock(Next);
    endLoop(IRB, L);
    IRB.ret(Total);
  }

  // search(depth, pos): shallow recursion over candidate regions.
  Function *Search = M->addFunction("search", 2);
  {
    BasicBlock *Entry = Search->addBlock("entry");
    BasicBlock *Leaf = Search->addBlock("leaf");
    BasicBlock *Inner = Search->addBlock("inner");
    IRBuilder IRB(Search, Entry);
    Reg Depth = 0, Pos = 1;
    Reg AtLeaf = IRB.cmpLeImm(Depth, 0);
    IRB.condBr(AtLeaf, Leaf, Inner);
    IRB.setBlock(Leaf);
    Reg LeafScore = IRB.call(Scan, {Pos});
    IRB.ret(LeafScore);
    IRB.setBlock(Inner);
    Reg Here = IRB.call(Scan, {Pos});
    Reg NextDepth = IRB.subImm(Depth, 1);
    Reg Left = IRB.addImm(Pos, 64);
    Reg LeftMasked = IRB.andImm(Left, 1023);
    Reg LeftScore = IRB.call(Search, {NextDepth, LeftMasked});
    Reg Right = IRB.addImm(Pos, 512);
    Reg RightMasked = IRB.andImm(Right, 1023);
    Reg RightScore = IRB.call(Search, {NextDepth, RightMasked});
    Reg Sum = IRB.add(LeftScore, RightScore);
    Reg Total = IRB.add(Sum, Here);
    IRB.ret(Total);
  }

  Function *Main = M->addFunction("main", 0);
  {
    IRBuilder IRB(Main, Main->addBlock("entry"));
    Reg Rng = IRB.movImm(0x12345);
    Reg Acc = IRB.movImm(0);
    Loop L = beginLoop(IRB, 6 * Scale, "game");
    emitLcgStep(IRB, Rng);
    Reg Pos = IRB.shrImm(Rng, 13);
    Reg Masked = IRB.andImm(Pos, 1023);
    Reg Two = IRB.movImm(2);
    Reg Score = IRB.call(Search, {Two, Masked});
    Reg NewAcc = IRB.add(Acc, Score);
    IRB.movRegInto(Acc, NewAcc);
    endLoop(IRB, L);
    IRB.ret(Acc);
  }
  M->setMain(Main);
  verifyModuleOrDie(*M);
  return M;
}

//===----------------------------------------------------------------------===//
// 124.m88ksim — a fetch/decode/execute CPU simulator.
//===----------------------------------------------------------------------===//

std::unique_ptr<ir::Module> workloads::buildM88ksim(int Scale) {
  auto M = std::make_unique<Module>();
  uint64_t Imem = addRandomGlobal(*M, "imem", 4096, 0x88, 0);
  uint64_t Regs = addZeroGlobal(*M, "regs", 32 * 8);
  uint64_t Dmem = addZeroGlobal(*M, "dmem", 2048 * 8);

  // read_reg(r) / write_reg(r, v): the register-file accessors.
  Function *ReadReg = M->addFunction("read_reg", 1);
  {
    IRBuilder IRB(ReadReg, ReadReg->addBlock("entry"));
    Reg Slot = IRB.andImm(0, 31);
    Reg Offset = IRB.shlImm(Slot, 3);
    Reg Addr = IRB.addImm(Offset, static_cast<int64_t>(Regs));
    Reg Value = IRB.load(Addr, 0);
    IRB.ret(Value);
  }
  Function *WriteReg = M->addFunction("write_reg", 2);
  {
    IRBuilder IRB(WriteReg, WriteReg->addBlock("entry"));
    Reg Slot = IRB.andImm(0, 31);
    Reg Offset = IRB.shlImm(Slot, 3);
    Reg Addr = IRB.addImm(Offset, static_cast<int64_t>(Regs));
    IRB.store(Addr, 0, 1);
    IRB.retImm(0);
  }

  // step(pc): decode imem[pc] and execute one instruction; returns new pc.
  Function *Step = M->addFunction("step", 1);
  {
    BasicBlock *Entry = Step->addBlock("entry");
    IRBuilder IRB(Step, Entry);
    Reg Pc = 0;
    Reg Masked = IRB.andImm(Pc, 4095);
    Reg Slot = IRB.shlImm(Masked, 3);
    Reg IAddr = IRB.addImm(Slot, static_cast<int64_t>(Imem));
    Reg Word = IRB.load(IAddr, 0);
    Reg Op = IRB.andImm(Word, 7);
    Reg Rs1 = IRB.shrImm(Word, 3);
    Reg Rs1M = IRB.andImm(Rs1, 31);
    Reg Rs2 = IRB.shrImm(Word, 8);
    Reg Rs2M = IRB.andImm(Rs2, 31);
    Reg Rd = IRB.shrImm(Word, 13);
    Reg RdM = IRB.andImm(Rd, 31);
    Reg A = IRB.call(ReadReg, {Rs1M});
    Reg B = IRB.call(ReadReg, {Rs2M});

    BasicBlock *Default = Step->addBlock("op.default");
    std::vector<BasicBlock *> Cases;
    for (int Index = 0; Index != 8; ++Index)
      Cases.push_back(Step->addBlock("op" + std::to_string(Index)));
    IRB.switchOn(Op, Default, Cases);

    BasicBlock *Commit = Step->addBlock("commit");
    Reg Result = Step->freshReg();
    Reg NextPc = Step->freshReg();

    auto Finish = [&](Reg Value) {
      IRB.movRegInto(Result, Value);
      Reg Bumped = IRB.addImm(Pc, 1);
      IRB.movRegInto(NextPc, Bumped);
      IRB.br(Commit);
    };

    IRB.setBlock(Cases[0]); // add
    Finish(IRB.add(A, B));
    IRB.setBlock(Cases[1]); // sub
    Finish(IRB.sub(A, B));
    IRB.setBlock(Cases[2]); // and
    Finish(IRB.andOp(A, B));
    IRB.setBlock(Cases[3]); // xor
    Finish(IRB.xorOp(A, B));
    IRB.setBlock(Cases[4]); // mul (slower)
    Finish(IRB.mul(A, B));
    IRB.setBlock(Cases[5]); // load
    {
      Reg DSlot = IRB.andImm(A, 2047);
      Reg DOff = IRB.shlImm(DSlot, 3);
      Reg DAddr = IRB.addImm(DOff, static_cast<int64_t>(Dmem));
      Finish(IRB.load(DAddr, 0));
    }
    IRB.setBlock(Cases[6]); // store
    {
      Reg DSlot = IRB.andImm(A, 2047);
      Reg DOff = IRB.shlImm(DSlot, 3);
      Reg DAddr = IRB.addImm(DOff, static_cast<int64_t>(Dmem));
      IRB.store(DAddr, 0, B);
      Finish(IRB.movImm(0));
    }
    IRB.setBlock(Cases[7]); // conditional branch on A == 0
    {
      BasicBlock *Taken = Step->addBlock("br.taken");
      BasicBlock *NotTaken = Step->addBlock("br.not");
      Reg IsZero = IRB.cmpEqImm(A, 0);
      IRB.condBr(IsZero, Taken, NotTaken);
      IRB.setBlock(Taken);
      Reg Target = IRB.andImm(B, 4095);
      IRB.movRegInto(NextPc, Target);
      IRB.movInto(Result, 0);
      IRB.br(Commit);
      IRB.setBlock(NotTaken);
      Reg Fall = IRB.addImm(Pc, 1);
      IRB.movRegInto(NextPc, Fall);
      IRB.movInto(Result, 1);
      IRB.br(Commit);
    }
    IRB.setBlock(Default);
    Finish(IRB.movImm(0));

    IRB.setBlock(Commit);
    IRB.call(WriteReg, {RdM, Result});
    IRB.ret(NextPc);
  }

  Function *Main = M->addFunction("main", 0);
  {
    IRBuilder IRB(Main, Main->addBlock("entry"));
    Reg Pc = IRB.movImm(0);
    Loop L = beginLoop(IRB, 2500 * Scale, "run");
    Reg NewPc = IRB.call(Step, {Pc});
    IRB.movRegInto(Pc, NewPc);
    endLoop(IRB, L);
    IRB.ret(Pc);
  }
  M->setMain(Main);
  verifyModuleOrDie(*M);
  return M;
}

//===----------------------------------------------------------------------===//
// 126.gcc — wide dispatch over a token stream through many small handlers.
//===----------------------------------------------------------------------===//

std::unique_ptr<ir::Module> workloads::buildGcc(int Scale) {
  auto M = std::make_unique<Module>();
  uint64_t Tokens = addRandomGlobal(*M, "tokens", 4096, 0xcc, 12);
  uint64_t Table = addZeroGlobal(*M, "fold_table", 1024 * 8);

  // fold(a, b): shared utility with value-dependent branches.
  Function *Fold = M->addFunction("fold", 2);
  {
    BasicBlock *Entry = Fold->addBlock("entry");
    BasicBlock *Small = Fold->addBlock("small");
    BasicBlock *Big = Fold->addBlock("big");
    BasicBlock *Join = Fold->addBlock("join");
    IRBuilder IRB(Fold, Entry);
    Reg Sum = IRB.add(0, 1);
    Reg IsSmall = IRB.cmpLtImm(Sum, 100);
    Reg Out = Fold->freshReg();
    IRB.condBr(IsSmall, Small, Big);
    IRB.setBlock(Small);
    Reg S = IRB.mulImm(Sum, 3);
    IRB.movRegInto(Out, S);
    IRB.br(Join);
    IRB.setBlock(Big);
    Reg G = IRB.andImm(Sum, 1023);
    IRB.movRegInto(Out, G);
    IRB.br(Join);
    IRB.setBlock(Join);
    Reg Slot = IRB.andImm(Out, 1023);
    Reg Off = IRB.shlImm(Slot, 3);
    Reg Addr = IRB.addImm(Off, static_cast<int64_t>(Table));
    Reg Memo = IRB.load(Addr, 0);
    Reg Bumped = IRB.add(Memo, Out);
    IRB.store(Addr, 0, Bumped);
    IRB.ret(Bumped);
  }

  // emit(v): record a "generated instruction" with a size branch.
  Function *Emit = M->addFunction("emit", 1);
  {
    BasicBlock *Entry = Emit->addBlock("entry");
    BasicBlock *Narrow = Emit->addBlock("narrow");
    BasicBlock *Wide = Emit->addBlock("wide");
    BasicBlock *Out = Emit->addBlock("out");
    IRBuilder IRB(Emit, Entry);
    Reg V = 0;
    Reg Enc = Emit->freshReg();
    Reg Fits = IRB.cmpLtImm(V, 256);
    IRB.condBr(Fits, Narrow, Wide);
    IRB.setBlock(Narrow);
    Reg N = IRB.orImm(V, 0x100);
    IRB.movRegInto(Enc, N);
    IRB.br(Out);
    IRB.setBlock(Wide);
    Reg W = IRB.shlImm(V, 2);
    Reg W2 = IRB.orImm(W, 3);
    IRB.movRegInto(Enc, W2);
    IRB.br(Out);
    IRB.setBlock(Out);
    Reg Slot = IRB.andImm(Enc, 1023);
    Reg Off = IRB.shlImm(Slot, 3);
    Reg Addr = IRB.addImm(Off, static_cast<int64_t>(Table));
    IRB.store(Addr, 0, Enc);
    IRB.ret(Enc);
  }

  // simplify(v): constant-fold flavoured peephole with two paths.
  Function *Simplify = M->addFunction("simplify", 1);
  {
    BasicBlock *Entry = Simplify->addBlock("entry");
    BasicBlock *Even = Simplify->addBlock("even");
    BasicBlock *Odd = Simplify->addBlock("odd");
    IRBuilder IRB(Simplify, Entry);
    Reg V = 0;
    Reg Bit = IRB.andImm(V, 1);
    Reg IsEven = IRB.cmpEqImm(Bit, 0);
    IRB.condBr(IsEven, Even, Odd);
    IRB.setBlock(Even);
    Reg Halved = IRB.shrImm(V, 1);
    IRB.ret(Halved);
    IRB.setBlock(Odd);
    Reg Tripled = IRB.mulImm(V, 3);
    Reg Bumped = IRB.addImm(Tripled, 1);
    IRB.ret(Bumped);
  }

  // Twelve handlers, each with its own small branch structure and calls
  // into the shared utilities from several sites (the context fan-out of
  // a compiler's fold/emit helpers). Handlers 0..5 branch three ways on
  // the operand and nest a second dispatch; 6..11 loop a few times.
  std::vector<Function *> Handlers;
  for (int H = 0; H != 12; ++H) {
    Function *Handler =
        M->addFunction("handle_" + std::to_string(H), 1);
    Handlers.push_back(Handler);
    IRBuilder IRB(Handler, Handler->addBlock("entry"));
    Reg Arg = 0;
    if (H < 6) {
      BasicBlock *Lo = Handler->addBlock("lo");
      BasicBlock *Mid = Handler->addBlock("mid");
      BasicBlock *Hi = Handler->addBlock("hi");
      BasicBlock *NotLo = Handler->addBlock("notlo");
      Reg IsLo = IRB.cmpLtImm(Arg, 300);
      IRB.condBr(IsLo, Lo, NotLo);
      IRB.setBlock(NotLo);
      Reg IsMid = IRB.cmpLtImm(Arg, 700);
      IRB.condBr(IsMid, Mid, Hi);
      IRB.setBlock(Lo);
      Reg L = IRB.addImm(Arg, H);
      Reg LF = IRB.call(Fold, {L, Arg});
      Reg LS = IRB.call(Simplify, {LF});
      IRB.ret(LS);
      IRB.setBlock(Mid);
      // Nested dispatch: a second-level branch tree over the operand's
      // low bits (gcc-like case analysis depth -> many distinct paths).
      Reg Low = IRB.andImm(Arg, 3);
      BasicBlock *MDefault = Handler->addBlock("m.def");
      std::vector<BasicBlock *> MCases;
      for (int Sub = 0; Sub != 4; ++Sub)
        MCases.push_back(Handler->addBlock("m" + std::to_string(Sub)));
      IRB.switchOn(Low, MDefault, MCases);
      for (int Sub = 0; Sub != 4; ++Sub) {
        IRB.setBlock(MCases[Sub]);
        if (Sub % 2 == 0) {
          Reg MV = IRB.mulImm(Arg, Sub + 2);
          Reg ME = IRB.call(Emit, {MV});
          IRB.ret(ME);
        } else {
          Reg MV = IRB.xorImm(Arg, Sub * 0x111);
          Reg MS = IRB.call(Simplify, {MV});
          IRB.ret(MS);
        }
      }
      IRB.setBlock(MDefault);
      Reg Md = IRB.mulImm(Arg, H + 2);
      IRB.ret(Md);
      IRB.setBlock(Hi);
      Reg HiV = IRB.xorImm(Arg, 0x5555);
      Reg HF = IRB.call(Fold, {HiV, Arg});
      Reg HE = IRB.call(Emit, {HF});
      IRB.ret(HE);
    } else {
      Reg Acc = IRB.movImm(H);
      Loop L = beginLoop(IRB, 2 + H % 3, "spin");
      Reg T = IRB.add(Acc, L.Index);
      Reg T2 = IRB.mulImm(T, 5);
      Reg T3 = IRB.andImm(T2, 0xffff);
      IRB.movRegInto(Acc, T3);
      endLoop(IRB, L);
      Reg Folded = IRB.call(Fold, {Acc, Acc});
      Reg Final = IRB.call(Emit, {Folded});
      IRB.ret(Final);
    }
  }

  Function *Main = M->addFunction("main", 0);
  {
    IRBuilder IRB(Main, Main->addBlock("entry"));
    Reg Rng = IRB.movImm(0x777);
    Reg Acc = IRB.movImm(0);
    Loop L = beginLoop(IRB, 2200 * Scale, "drive");
    Reg Masked = IRB.andImm(L.Index, 4095);
    Reg Slot = IRB.shlImm(Masked, 3);
    Reg Addr = IRB.addImm(Slot, static_cast<int64_t>(Tokens));
    Reg Token = IRB.load(Addr, 0);
    emitLcgStep(IRB, Rng);
    Reg Operand = IRB.shrImm(Rng, 23);
    Reg OperandM = IRB.andImm(Operand, 1023);

    BasicBlock *Default = Main->addBlock("tok.default");
    std::vector<BasicBlock *> Cases;
    for (int H = 0; H != 12; ++H)
      Cases.push_back(Main->addBlock("tok" + std::to_string(H)));
    BasicBlock *Merge = Main->addBlock("merge");
    Reg Out = Main->freshReg();
    IRB.switchOn(Token, Default, Cases);
    for (int H = 0; H != 12; ++H) {
      IRB.setBlock(Cases[H]);
      Reg V = IRB.call(Handlers[H], {OperandM});
      IRB.movRegInto(Out, V);
      IRB.br(Merge);
    }
    IRB.setBlock(Default);
    IRB.movInto(Out, 0);
    IRB.br(Merge);
    IRB.setBlock(Merge);
    Reg NewAcc = IRB.add(Acc, Out);
    IRB.movRegInto(Acc, NewAcc);
    endLoop(IRB, L);
    IRB.ret(Acc);
  }
  M->setMain(Main);
  verifyModuleOrDie(*M);
  return M;
}

//===----------------------------------------------------------------------===//
// 129.compress — LZW-style hash probing over semi-repetitive input.
//===----------------------------------------------------------------------===//

std::unique_ptr<ir::Module> workloads::buildCompress(int Scale) {
  auto M = std::make_unique<Module>();
  // Input: repetitive "text" (PRNG over a small alphabet so prefixes
  // recur, exercising the hit path).
  Prng R(0x2920);
  uint64_t InputCount = 16384;
  std::vector<uint8_t> Text;
  Text.reserve(InputCount * 8);
  for (uint64_t Index = 0; Index != InputCount; ++Index) {
    uint64_t Byte = R.nextBool(0.7) ? R.nextBelow(8) : R.nextBelow(64);
    for (int B = 0; B != 8; ++B)
      Text.push_back(B == 0 ? static_cast<uint8_t>(Byte) : 0);
  }
  size_t InputIndex = M->addGlobal("input", InputCount * 8, std::move(Text));
  uint64_t Input = M->global(InputIndex).Addr;
  uint64_t HashKeys = addZeroGlobal(*M, "hash_keys", 8192 * 8);
  uint64_t HashCodes = addZeroGlobal(*M, "hash_codes", 8192 * 8);
  uint64_t Output = addZeroGlobal(*M, "output", 32768 * 8);

  // probe(key): open-addressed search; returns code or 0.
  Function *Probe = M->addFunction("probe", 1);
  {
    BasicBlock *Entry = Probe->addBlock("entry");
    BasicBlock *Loop = Probe->addBlock("loop");
    BasicBlock *CheckKey = Probe->addBlock("check");
    BasicBlock *Found = Probe->addBlock("found");
    BasicBlock *Miss = Probe->addBlock("miss");
    BasicBlock *Again = Probe->addBlock("again");
    IRBuilder IRB(Probe, Entry);
    Reg Key = 0;
    Reg Hash = IRB.mulImm(Key, 0x9e3779b9);
    Reg Hash2 = IRB.shrImm(Hash, 7);
    Reg Index = IRB.andImm(Hash2, 8191);
    Reg Cursor = IRB.mov(Index);
    IRB.br(Loop);
    IRB.setBlock(Loop);
    Reg Off = IRB.shlImm(Cursor, 3);
    Reg KeyAddr = IRB.addImm(Off, static_cast<int64_t>(HashKeys));
    Reg Stored = IRB.load(KeyAddr, 0);
    Reg Empty = IRB.cmpEqImm(Stored, 0);
    IRB.condBr(Empty, Miss, CheckKey);
    IRB.setBlock(CheckKey);
    Reg Same = IRB.cmpEq(Stored, Key);
    IRB.condBr(Same, Found, Again);
    IRB.setBlock(Again);
    Reg Next = IRB.addImm(Cursor, 1);
    Reg Wrapped = IRB.andImm(Next, 8191);
    IRB.movRegInto(Cursor, Wrapped);
    IRB.br(Loop);
    IRB.setBlock(Found);
    Reg Off2 = IRB.shlImm(Cursor, 3);
    Reg CodeAddr = IRB.addImm(Off2, static_cast<int64_t>(HashCodes));
    Reg Code = IRB.load(CodeAddr, 0);
    IRB.ret(Code);
    IRB.setBlock(Miss);
    IRB.retImm(0);
  }

  // insert(key, code).
  Function *Insert = M->addFunction("insert", 2);
  {
    BasicBlock *Entry = Insert->addBlock("entry");
    BasicBlock *Loop = Insert->addBlock("loop");
    BasicBlock *Slot = Insert->addBlock("slot");
    BasicBlock *Again = Insert->addBlock("again");
    IRBuilder IRB(Insert, Entry);
    Reg Key = 0, Code = 1;
    Reg Hash = IRB.mulImm(Key, 0x9e3779b9);
    Reg Hash2 = IRB.shrImm(Hash, 7);
    Reg Index = IRB.andImm(Hash2, 8191);
    Reg Cursor = IRB.mov(Index);
    IRB.br(Loop);
    IRB.setBlock(Loop);
    Reg Off = IRB.shlImm(Cursor, 3);
    Reg KeyAddr = IRB.addImm(Off, static_cast<int64_t>(HashKeys));
    Reg Stored = IRB.load(KeyAddr, 0);
    Reg Empty = IRB.cmpEqImm(Stored, 0);
    IRB.condBr(Empty, Slot, Again);
    IRB.setBlock(Again);
    Reg Next = IRB.addImm(Cursor, 1);
    Reg Wrapped = IRB.andImm(Next, 8191);
    IRB.movRegInto(Cursor, Wrapped);
    IRB.br(Loop);
    IRB.setBlock(Slot);
    IRB.store(KeyAddr, 0, Key);
    Reg CodeAddr = IRB.addImm(Off, static_cast<int64_t>(HashCodes));
    IRB.store(CodeAddr, 0, Code);
    IRB.retImm(0);
  }

  Function *Main = M->addFunction("main", 0);
  {
    IRBuilder IRB(Main, Main->addBlock("entry"));
    Reg Prefix = IRB.movImm(0);
    Reg NextCode = IRB.movImm(256);
    Reg OutCursor = IRB.movImm(0);
    int64_t Limit = std::min<int64_t>(16384, 3000 * Scale);
    Loop L = beginLoop(IRB, Limit, "scan");
    Reg Off = IRB.shlImm(L.Index, 3);
    Reg InAddr = IRB.addImm(Off, static_cast<int64_t>(Input));
    Reg Byte = IRB.load(InAddr, 0);
    Reg ByteP1 = IRB.addImm(Byte, 1); // keys are nonzero
    Reg Shift = IRB.shlImm(Prefix, 7);
    Reg Key = IRB.xorOp(Shift, ByteP1);
    Reg KeyMasked = IRB.andImm(Key, 0x3fffff);
    Reg Code = IRB.call(Probe, {KeyMasked});

    BasicBlock *Hit = Main->addBlock("hit");
    BasicBlock *MissBlock = Main->addBlock("miss");
    BasicBlock *Continue = Main->addBlock("cont");
    Reg WasHit = IRB.cmpNeImm(Code, 0);
    IRB.condBr(WasHit, Hit, MissBlock);

    IRB.setBlock(Hit);
    IRB.movRegInto(Prefix, Code);
    IRB.br(Continue);

    IRB.setBlock(MissBlock);
    IRB.call(Insert, {KeyMasked, NextCode});
    Reg Bumped = IRB.addImm(NextCode, 1);
    Reg Capped = IRB.andImm(Bumped, 0xffff);
    IRB.movRegInto(NextCode, Capped);
    // Emit the prefix code.
    Reg OutOff = IRB.shlImm(OutCursor, 3);
    Reg OutMask = IRB.andImm(OutOff, 32767 * 8);
    Reg OutAddr = IRB.addImm(OutMask, static_cast<int64_t>(Output));
    IRB.store(OutAddr, 0, Prefix);
    Reg NewCursor = IRB.addImm(OutCursor, 1);
    IRB.movRegInto(OutCursor, NewCursor);
    IRB.movRegInto(Prefix, ByteP1);
    IRB.br(Continue);

    IRB.setBlock(Continue);
    endLoop(IRB, L);
    IRB.ret(OutCursor);
  }
  M->setMain(Main);
  verifyModuleOrDie(*M);
  return M;
}

//===----------------------------------------------------------------------===//
// 130.li — a recursive expression-tree interpreter over heap cons cells.
//===----------------------------------------------------------------------===//

std::unique_ptr<ir::Module> workloads::buildLi(int Scale) {
  auto M = std::make_unique<Module>();
  uint64_t Env = addZeroGlobal(*M, "env", 64 * 8);

  // build(depth, seed): allocates an expression tree. Cell layout:
  // [tag, left/value, right]. Tags: 0 const, 1 var, 2 add, 3 mul, 4 sub.
  Function *Build = M->addFunction("build_tree", 2);
  {
    BasicBlock *Entry = Build->addBlock("entry");
    BasicBlock *LeafBlock = Build->addBlock("leaf");
    BasicBlock *LeafConst = Build->addBlock("leaf.const");
    BasicBlock *LeafVar = Build->addBlock("leaf.var");
    BasicBlock *Inner = Build->addBlock("inner");
    IRBuilder IRB(Build, Entry);
    Reg Depth = 0, Seed = 1;
    Reg AtLeaf = IRB.cmpLeImm(Depth, 0);
    IRB.condBr(AtLeaf, LeafBlock, Inner);

    IRB.setBlock(LeafBlock);
    Reg Cell = IRB.allocImm(24);
    Reg Bit = IRB.andImm(Seed, 1);
    Reg IsConst = IRB.cmpEqImm(Bit, 0);
    IRB.condBr(IsConst, LeafConst, LeafVar);
    IRB.setBlock(LeafConst);
    Reg Zero = IRB.movImm(0);
    IRB.store(Cell, 0, Zero);
    Reg CVal = IRB.andImm(Seed, 255);
    IRB.store(Cell, 8, CVal);
    IRB.ret(Cell);
    IRB.setBlock(LeafVar);
    Reg One = IRB.movImm(1);
    IRB.store(Cell, 0, One);
    Reg VIndex = IRB.andImm(Seed, 63);
    IRB.store(Cell, 8, VIndex);
    IRB.ret(Cell);

    IRB.setBlock(Inner);
    Reg ICell = IRB.allocImm(24);
    Reg OpBits = IRB.remImm(Seed, 3);
    Reg Tag = IRB.addImm(OpBits, 2);
    IRB.store(ICell, 0, Tag);
    Reg NextDepth = IRB.subImm(Depth, 1);
    Reg SeedL = IRB.mulImm(Seed, 2654435761LL);
    Reg SeedL2 = IRB.shrImm(SeedL, 5);
    Reg LeftCell = IRB.call(Build, {NextDepth, SeedL2});
    IRB.store(ICell, 8, LeftCell);
    Reg SeedR = IRB.addImm(SeedL2, 0x9e37);
    Reg RightCell = IRB.call(Build, {NextDepth, SeedR});
    IRB.store(ICell, 16, RightCell);
    IRB.ret(ICell);
  }

  // eval(cell): recursive interpreter with a tag switch.
  Function *Eval = M->addFunction("eval", 1);
  {
    BasicBlock *Entry = Eval->addBlock("entry");
    IRBuilder IRB(Eval, Entry);
    Reg Cell = 0;
    Reg Tag = IRB.load(Cell, 0);
    BasicBlock *Default = Eval->addBlock("t.default");
    BasicBlock *TConst = Eval->addBlock("t.const");
    BasicBlock *TVar = Eval->addBlock("t.var");
    BasicBlock *TAdd = Eval->addBlock("t.add");
    BasicBlock *TMul = Eval->addBlock("t.mul");
    BasicBlock *TSub = Eval->addBlock("t.sub");
    IRB.switchOn(Tag, Default, {TConst, TVar, TAdd, TMul, TSub});

    IRB.setBlock(TConst);
    Reg CV = IRB.load(Cell, 8);
    IRB.ret(CV);

    IRB.setBlock(TVar);
    Reg VI = IRB.load(Cell, 8);
    Reg VOff = IRB.shlImm(VI, 3);
    Reg VAddr = IRB.addImm(VOff, static_cast<int64_t>(Env));
    Reg VV = IRB.load(VAddr, 0);
    IRB.ret(VV);

    auto Binary = [&](BasicBlock *BB, auto Combine) {
      IRB.setBlock(BB);
      Reg LeftCell = IRB.load(Cell, 8);
      Reg LeftV = IRB.call(Eval, {LeftCell});
      Reg RightCell = IRB.load(Cell, 16);
      Reg RightV = IRB.call(Eval, {RightCell});
      Reg Out = Combine(LeftV, RightV);
      IRB.ret(Out);
    };
    Binary(TAdd, [&](Reg A, Reg B) { return IRB.add(A, B); });
    Binary(TMul, [&](Reg A, Reg B) {
      Reg P = IRB.mul(A, B);
      return IRB.andImm(P, 0xffffff);
    });
    Binary(TSub, [&](Reg A, Reg B) { return IRB.sub(A, B); });

    IRB.setBlock(Default);
    IRB.retImm(0);
  }

  Function *Main = M->addFunction("main", 0);
  {
    IRBuilder IRB(Main, Main->addBlock("entry"));
    // Populate the environment.
    Loop Init = beginLoop(IRB, 64, "init");
    Reg Off = IRB.shlImm(Init.Index, 3);
    Reg Addr = IRB.addImm(Off, static_cast<int64_t>(Env));
    Reg Val = IRB.mulImm(Init.Index, 17);
    IRB.store(Addr, 0, Val);
    endLoop(IRB, Init);

    Reg Depth = IRB.movImm(7);
    Reg Seed = IRB.movImm(0xabcdef);
    Reg Tree = IRB.call(Build, {Depth, Seed});
    Reg Acc = IRB.movImm(0);
    Loop L = beginLoop(IRB, 45 * Scale, "evals");
    // Mutate one env slot so evaluations differ.
    Reg Slot = IRB.andImm(L.Index, 63);
    Reg SOff = IRB.shlImm(Slot, 3);
    Reg SAddr = IRB.addImm(SOff, static_cast<int64_t>(Env));
    IRB.store(SAddr, 0, L.Index);
    Reg V = IRB.call(Eval, {Tree});
    Reg NewAcc = IRB.add(Acc, V);
    Reg Masked = IRB.andImm(NewAcc, 0xffffffff);
    IRB.movRegInto(Acc, Masked);
    endLoop(IRB, L);
    IRB.ret(Acc);
  }
  M->setMain(Main);
  verifyModuleOrDie(*M);
  return M;
}

//===----------------------------------------------------------------------===//
// 132.ijpeg — 8x8 integer transform blocks over an image.
//===----------------------------------------------------------------------===//

std::unique_ptr<ir::Module> workloads::buildIjpeg(int Scale) {
  auto M = std::make_unique<Module>();
  uint64_t Image = addRandomGlobal(*M, "image", 64 * 64, 0x1, 256);
  uint64_t Coeffs = addRandomGlobal(*M, "coeffs", 64, 0x2, 16);
  uint64_t Out = addZeroGlobal(*M, "out", 64 * 64 * 8);

  // transform_block(bx, by): the 8x8 integer kernel with quantisation.
  Function *Block = M->addFunction("transform_block", 2);
  {
    IRBuilder IRB(Block, Block->addBlock("entry"));
    Reg Bx = 0, By = 1;
    Reg BaseCol = IRB.shlImm(Bx, 3);
    Reg RowStart = IRB.shlImm(By, 3);

    Loop RowLoop = beginLoop(IRB, 8, "row");
    Loop ColLoop = beginLoop(IRB, 8, "col");
    // Accumulate sum over k of image[row, k] * coeff[k, col].
    Reg Acc = IRB.movImm(0);
    Loop KLoop = beginLoop(IRB, 8, "k");
    Reg Row = IRB.add(RowStart, RowLoop.Index);
    Reg RowOff = IRB.shlImm(Row, 6); // *64
    Reg Col = IRB.add(BaseCol, KLoop.Index);
    Reg Pixel0 = IRB.add(RowOff, Col);
    Reg POff = IRB.shlImm(Pixel0, 3);
    Reg PAddr = IRB.addImm(POff, static_cast<int64_t>(Image));
    Reg Pixel = IRB.load(PAddr, 0);
    Reg CIndex = IRB.shlImm(KLoop.Index, 3);
    Reg CIndex2 = IRB.add(CIndex, ColLoop.Index);
    Reg CMask = IRB.andImm(CIndex2, 63);
    Reg COff = IRB.shlImm(CMask, 3);
    Reg CAddr = IRB.addImm(COff, static_cast<int64_t>(Coeffs));
    Reg Coeff = IRB.load(CAddr, 0);
    Reg Prod = IRB.mul(Pixel, Coeff);
    Reg NewAcc = IRB.add(Acc, Prod);
    IRB.movRegInto(Acc, NewAcc);
    endLoop(IRB, KLoop);

    // Quantise: divide and clamp (a data-dependent branch).
    Reg Quant = IRB.divImm(Acc, 13);
    BasicBlock *Clamp = Block->addBlock("clamp");
    BasicBlock *Keep = Block->addBlock("keep");
    BasicBlock *StoreBlock = Block->addBlock("store");
    Reg Final = Block->freshReg();
    Reg TooBig = IRB.cmpLtImm(Quant, 2048);
    IRB.condBr(TooBig, Keep, Clamp);
    IRB.setBlock(Keep);
    IRB.movRegInto(Final, Quant);
    IRB.br(StoreBlock);
    IRB.setBlock(Clamp);
    IRB.movInto(Final, 2047);
    IRB.br(StoreBlock);
    IRB.setBlock(StoreBlock);
    Reg ORow = IRB.add(RowStart, RowLoop.Index);
    Reg OROff = IRB.shlImm(ORow, 6);
    Reg OCol = IRB.add(BaseCol, ColLoop.Index);
    Reg OIndex = IRB.add(OROff, OCol);
    Reg OOff = IRB.shlImm(OIndex, 3);
    Reg OAddr = IRB.addImm(OOff, static_cast<int64_t>(Out));
    IRB.store(OAddr, 0, Final);
    endLoop(IRB, ColLoop);
    endLoop(IRB, RowLoop);
    IRB.retImm(0);
  }

  Function *Main = M->addFunction("main", 0);
  {
    IRBuilder IRB(Main, Main->addBlock("entry"));
    Loop Frames = beginLoop(IRB, 2 * Scale, "frame");
    Loop ByLoop = beginLoop(IRB, 8, "by");
    Loop BxLoop = beginLoop(IRB, 8, "bx");
    IRB.call(Block, {BxLoop.Index, ByLoop.Index});
    endLoop(IRB, BxLoop);
    endLoop(IRB, ByLoop);
    endLoop(IRB, Frames);
    Reg Sample = IRB.loadAbs(static_cast<int64_t>(Out), 8);
    IRB.ret(Sample);
  }
  M->setMain(Main);
  verifyModuleOrDie(*M);
  return M;
}

//===----------------------------------------------------------------------===//
// 134.perl — stack-machine interpreter with an associative array.
//===----------------------------------------------------------------------===//

std::unique_ptr<ir::Module> workloads::buildPerl(int Scale) {
  auto M = std::make_unique<Module>();
  uint64_t Program = addRandomGlobal(*M, "program", 2048, 0x99, 6);
  uint64_t Operands = addRandomGlobal(*M, "operands", 2048, 0x9a, 0);
  uint64_t Stack = addZeroGlobal(*M, "stack", 256 * 8);
  uint64_t HashK = addZeroGlobal(*M, "hk", 4096 * 8);
  uint64_t HashV = addZeroGlobal(*M, "hv", 4096 * 8);

  // assoc_put(key, value) / assoc_get(key): open addressing.
  Function *Put = M->addFunction("assoc_put", 2);
  {
    BasicBlock *Entry = Put->addBlock("entry");
    BasicBlock *Loop = Put->addBlock("loop");
    BasicBlock *Write = Put->addBlock("write");
    BasicBlock *Again = Put->addBlock("again");
    BasicBlock *CheckSame = Put->addBlock("same");
    IRBuilder IRB(Put, Entry);
    Reg Key = 0, Value = 1;
    Reg H = IRB.mulImm(Key, 0x85ebca6b);
    Reg H2 = IRB.shrImm(H, 9);
    Reg Cursor = IRB.andImm(H2, 4095);
    IRB.br(Loop);
    IRB.setBlock(Loop);
    Reg Off = IRB.shlImm(Cursor, 3);
    Reg KAddr = IRB.addImm(Off, static_cast<int64_t>(HashK));
    Reg Stored = IRB.load(KAddr, 0);
    Reg Empty = IRB.cmpEqImm(Stored, 0);
    IRB.condBr(Empty, Write, CheckSame);
    IRB.setBlock(CheckSame);
    Reg Same = IRB.cmpEq(Stored, Key);
    IRB.condBr(Same, Write, Again);
    IRB.setBlock(Again);
    Reg Next = IRB.addImm(Cursor, 1);
    Reg Wrapped = IRB.andImm(Next, 4095);
    IRB.movRegInto(Cursor, Wrapped);
    IRB.br(Loop);
    IRB.setBlock(Write);
    IRB.store(KAddr, 0, Key);
    Reg VAddr = IRB.addImm(Off, static_cast<int64_t>(HashV));
    IRB.store(VAddr, 0, Value);
    IRB.retImm(0);
  }
  Function *Get = M->addFunction("assoc_get", 1);
  {
    BasicBlock *Entry = Get->addBlock("entry");
    BasicBlock *Loop = Get->addBlock("loop");
    BasicBlock *Found = Get->addBlock("found");
    BasicBlock *Missing = Get->addBlock("missing");
    BasicBlock *Again = Get->addBlock("again");
    BasicBlock *CheckSame = Get->addBlock("same");
    IRBuilder IRB(Get, Entry);
    Reg Key = 0;
    Reg H = IRB.mulImm(Key, 0x85ebca6b);
    Reg H2 = IRB.shrImm(H, 9);
    Reg Cursor = IRB.andImm(H2, 4095);
    IRB.br(Loop);
    IRB.setBlock(Loop);
    Reg Off = IRB.shlImm(Cursor, 3);
    Reg KAddr = IRB.addImm(Off, static_cast<int64_t>(HashK));
    Reg Stored = IRB.load(KAddr, 0);
    Reg Empty = IRB.cmpEqImm(Stored, 0);
    IRB.condBr(Empty, Missing, CheckSame);
    IRB.setBlock(CheckSame);
    Reg Same = IRB.cmpEq(Stored, Key);
    IRB.condBr(Same, Found, Again);
    IRB.setBlock(Again);
    Reg Next = IRB.addImm(Cursor, 1);
    Reg Wrapped = IRB.andImm(Next, 4095);
    IRB.movRegInto(Cursor, Wrapped);
    IRB.br(Loop);
    IRB.setBlock(Found);
    Reg VAddr = IRB.addImm(Off, static_cast<int64_t>(HashV));
    Reg Value = IRB.load(VAddr, 0);
    IRB.ret(Value);
    IRB.setBlock(Missing);
    IRB.retImm(0);
  }

  Function *Main = M->addFunction("main", 0);
  {
    IRBuilder IRB(Main, Main->addBlock("entry"));
    Reg Sp = IRB.movImm(0);
    Reg Acc = IRB.movImm(0);
    Loop L = beginLoop(IRB, 3000 * Scale, "interp");
    Reg PIndex = IRB.andImm(L.Index, 2047);
    Reg POff = IRB.shlImm(PIndex, 3);
    Reg PAddr = IRB.addImm(POff, static_cast<int64_t>(Program));
    Reg Op = IRB.load(PAddr, 0);
    Reg OAddr = IRB.addImm(POff, static_cast<int64_t>(Operands));
    Reg Operand = IRB.load(OAddr, 0);
    Reg OperandM = IRB.andImm(Operand, 0xffff);
    Reg OperandK = IRB.addImm(OperandM, 1); // keys nonzero

    BasicBlock *Default = Main->addBlock("op.default");
    std::vector<BasicBlock *> Cases;
    for (int Index = 0; Index != 6; ++Index)
      Cases.push_back(Main->addBlock("op" + std::to_string(Index)));
    BasicBlock *Merge = Main->addBlock("merge");
    IRB.switchOn(Op, Default, Cases);

    auto StackAddr = [&](Reg Slot) {
      Reg Masked = IRB.andImm(Slot, 255);
      Reg Off = IRB.shlImm(Masked, 3);
      return IRB.addImm(Off, static_cast<int64_t>(Stack));
    };

    IRB.setBlock(Cases[0]); // push operand
    {
      Reg Addr = StackAddr(Sp);
      IRB.store(Addr, 0, OperandK);
      Reg NewSp = IRB.addImm(Sp, 1);
      IRB.movRegInto(Sp, NewSp);
      IRB.br(Merge);
    }
    IRB.setBlock(Cases[1]); // pop into acc
    {
      Reg NewSp = IRB.subImm(Sp, 1);
      Reg Clamped = IRB.andImm(NewSp, 255);
      IRB.movRegInto(Sp, Clamped);
      Reg Addr = StackAddr(Sp);
      Reg Top = IRB.load(Addr, 0);
      Reg NewAcc = IRB.add(Acc, Top);
      IRB.movRegInto(Acc, NewAcc);
      IRB.br(Merge);
    }
    IRB.setBlock(Cases[2]); // add top two
    {
      Reg Top1 = IRB.subImm(Sp, 1);
      Reg A1 = StackAddr(Top1);
      Reg V1 = IRB.load(A1, 0);
      Reg Top2 = IRB.subImm(Sp, 2);
      Reg A2 = StackAddr(Top2);
      Reg V2 = IRB.load(A2, 0);
      Reg Sum = IRB.add(V1, V2);
      IRB.store(A2, 0, Sum);
      Reg Clamped = IRB.andImm(Top1, 255);
      IRB.movRegInto(Sp, Clamped);
      IRB.br(Merge);
    }
    IRB.setBlock(Cases[3]); // hash put
    {
      IRB.call(Put, {OperandK, L.Index});
      IRB.br(Merge);
    }
    IRB.setBlock(Cases[4]); // hash get
    {
      Reg Value = IRB.call(Get, {OperandK});
      Reg NewAcc = IRB.add(Acc, Value);
      IRB.movRegInto(Acc, NewAcc);
      IRB.br(Merge);
    }
    IRB.setBlock(Cases[5]); // xor accumulate
    {
      Reg X = IRB.xorOp(Acc, OperandK);
      IRB.movRegInto(Acc, X);
      IRB.br(Merge);
    }
    IRB.setBlock(Default);
    IRB.br(Merge);
    IRB.setBlock(Merge);
    endLoop(IRB, L);
    Reg Masked = IRB.andImm(Acc, 0x7fffffff);
    IRB.ret(Masked);
  }
  M->setMain(Main);
  verifyModuleOrDie(*M);
  return M;
}

//===----------------------------------------------------------------------===//
// 147.vortex — layered object accessors over linked records (call heavy).
//===----------------------------------------------------------------------===//

std::unique_ptr<ir::Module> workloads::buildVortex(int Scale) {
  auto M = std::make_unique<Module>();
  // Object store: slots of [type, a, b, next]; heads per type.
  uint64_t Heads = addZeroGlobal(*M, "heads", 8 * 8);

  Function *GetType = M->addFunction("obj_type", 1);
  {
    IRBuilder IRB(GetType, GetType->addBlock("entry"));
    Reg T = IRB.load(0, 0);
    IRB.ret(T);
  }
  Function *GetA = M->addFunction("obj_a", 1);
  {
    IRBuilder IRB(GetA, GetA->addBlock("entry"));
    Reg A = IRB.load(0, 8);
    IRB.ret(A);
  }
  Function *SetB = M->addFunction("obj_set_b", 2);
  {
    IRBuilder IRB(SetB, SetB->addBlock("entry"));
    IRB.store(0, 16, 1);
    IRB.retImm(0);
  }
  Function *GetNext = M->addFunction("obj_next", 1);
  {
    IRBuilder IRB(GetNext, GetNext->addBlock("entry"));
    Reg N = IRB.load(0, 24);
    IRB.ret(N);
  }

  // validate(obj): per-type checks through the accessors.
  Function *Validate = M->addFunction("validate", 1);
  {
    BasicBlock *Entry = Validate->addBlock("entry");
    IRBuilder IRB(Validate, Entry);
    Reg Obj = 0;
    Reg Type = IRB.call(GetType, {Obj});
    BasicBlock *Default = Validate->addBlock("v.default");
    std::vector<BasicBlock *> Cases;
    for (int T = 0; T != 4; ++T)
      Cases.push_back(Validate->addBlock("v" + std::to_string(T)));
    IRB.switchOn(Type, Default, Cases);
    for (int T = 0; T != 4; ++T) {
      IRB.setBlock(Cases[T]);
      Reg A = IRB.call(GetA, {Obj});
      Reg Adj = IRB.addImm(A, T * 3 + 1);
      IRB.call(SetB, {Obj, Adj});
      IRB.ret(Adj);
    }
    IRB.setBlock(Default);
    IRB.retImm(0);
  }

  // insert(obj, type): push onto the per-type list.
  Function *Insert = M->addFunction("insert", 2);
  {
    IRBuilder IRB(Insert, Insert->addBlock("entry"));
    Reg Obj = 0, Type = 1;
    Reg TMask = IRB.andImm(Type, 7);
    Reg HOff = IRB.shlImm(TMask, 3);
    Reg HAddr = IRB.addImm(HOff, static_cast<int64_t>(Heads));
    Reg Head = IRB.load(HAddr, 0);
    IRB.store(Obj, 24, Head);
    IRB.store(HAddr, 0, Obj);
    IRB.retImm(0);
  }

  // walk(type): traverse a type's list, validating each object.
  Function *Walk = M->addFunction("walk", 1);
  {
    BasicBlock *Entry = Walk->addBlock("entry");
    BasicBlock *Head = Walk->addBlock("head");
    BasicBlock *Body = Walk->addBlock("body");
    BasicBlock *Done = Walk->addBlock("done");
    IRBuilder IRB(Walk, Entry);
    Reg Type = 0;
    Reg TMask = IRB.andImm(Type, 7);
    Reg HOff = IRB.shlImm(TMask, 3);
    Reg HAddr = IRB.addImm(HOff, static_cast<int64_t>(Heads));
    Reg Cursor = IRB.load(HAddr, 0);
    Reg Acc = IRB.movImm(0);
    IRB.br(Head);
    IRB.setBlock(Head);
    Reg NonNull = IRB.cmpNeImm(Cursor, 0);
    IRB.condBr(NonNull, Body, Done);
    IRB.setBlock(Body);
    Reg Score = IRB.call(Validate, {Cursor});
    Reg NewAcc = IRB.add(Acc, Score);
    IRB.movRegInto(Acc, NewAcc);
    Reg Next = IRB.call(GetNext, {Cursor});
    IRB.movRegInto(Cursor, Next);
    IRB.br(Head);
    IRB.setBlock(Done);
    IRB.ret(Acc);
  }

  // Transaction layer: three operations that each traverse through the
  // shared machinery from their own call sites — the layered-accessor
  // context fan-out that makes vortex's CCT the suite's largest.
  Function *TxnQuery = M->addFunction("txn_query", 1);
  {
    IRBuilder IRB(TxnQuery, TxnQuery->addBlock("entry"));
    Reg Type = 0;
    Reg First = IRB.call(Walk, {Type});
    Reg Next = IRB.addImm(Type, 1);
    Reg NextMasked = IRB.andImm(Next, 3);
    Reg Second = IRB.call(Walk, {NextMasked});
    Reg Sum = IRB.add(First, Second);
    IRB.ret(Sum);
  }
  Function *TxnUpdate = M->addFunction("txn_update", 1);
  {
    IRBuilder IRB(TxnUpdate, TxnUpdate->addBlock("entry"));
    Reg Type = 0;
    Reg Score = IRB.call(Walk, {Type});
    // Append one fresh object per update.
    Reg Obj = IRB.allocImm(32);
    IRB.store(Obj, 0, Type);
    Reg Seed = IRB.andImm(Score, 1023);
    IRB.store(Obj, 8, Seed);
    IRB.call(Insert, {Obj, Type});
    IRB.ret(Score);
  }
  Function *TxnAudit = M->addFunction("txn_audit", 1);
  {
    IRBuilder IRB(TxnAudit, TxnAudit->addBlock("entry"));
    Reg Acc = IRB.movImm(0);
    Loop All = beginLoop(IRB, 4, "audit");
    Reg Score = IRB.call(Walk, {All.Index});
    Reg NewAcc = IRB.add(Acc, Score);
    IRB.movRegInto(Acc, NewAcc);
    endLoop(IRB, All);
    IRB.ret(Acc);
  }

  Function *Main = M->addFunction("main", 0);
  {
    IRBuilder IRB(Main, Main->addBlock("entry"));
    Reg Rng = IRB.movImm(0xbeef);
    // Create objects.
    Loop Create = beginLoop(IRB, 300, "create");
    Reg Obj = IRB.allocImm(32);
    emitLcgStep(IRB, Rng);
    Reg Type = IRB.shrImm(Rng, 17);
    Reg TMask = IRB.andImm(Type, 3);
    IRB.store(Obj, 0, TMask);
    Reg AVal = IRB.andImm(Rng, 1023);
    IRB.store(Obj, 8, AVal);
    IRB.call(Insert, {Obj, TMask});
    endLoop(IRB, Create);

    // Repeated transactions, dispatched over the three kinds.
    Reg Acc = IRB.movImm(0);
    Loop Txn = beginLoop(IRB, 24 * Scale, "txn");
    Reg TypeSel = IRB.andImm(Txn.Index, 3);
    Reg Kind = IRB.remImm(Txn.Index, 3);
    BasicBlock *KindDefault = Main->addBlock("k.def");
    BasicBlock *KQuery = Main->addBlock("k.query");
    BasicBlock *KUpdate = Main->addBlock("k.update");
    BasicBlock *KAudit = Main->addBlock("k.audit");
    BasicBlock *KMerge = Main->addBlock("k.merge");
    Reg Score = Main->freshReg();
    IRB.switchOn(Kind, KindDefault, {KQuery, KUpdate, KAudit});
    IRB.setBlock(KQuery);
    Reg Q = IRB.call(TxnQuery, {TypeSel});
    IRB.movRegInto(Score, Q);
    IRB.br(KMerge);
    IRB.setBlock(KUpdate);
    Reg U = IRB.call(TxnUpdate, {TypeSel});
    IRB.movRegInto(Score, U);
    IRB.br(KMerge);
    IRB.setBlock(KAudit);
    Reg A = IRB.call(TxnAudit, {TypeSel});
    IRB.movRegInto(Score, A);
    IRB.br(KMerge);
    IRB.setBlock(KindDefault);
    IRB.movInto(Score, 0);
    IRB.br(KMerge);
    IRB.setBlock(KMerge);
    Reg NewAcc = IRB.add(Acc, Score);
    Reg Masked = IRB.andImm(NewAcc, 0xffffffff);
    IRB.movRegInto(Acc, Masked);
    endLoop(IRB, Txn);
    IRB.ret(Acc);
  }
  M->setMain(Main);
  verifyModuleOrDie(*M);
  return M;
}
