//===- workloads/Examples.cpp - The paper's example programs -----------------===//

#include "workloads/Examples.h"

#include "ir/IRBuilder.h"
#include "ir/Verifier.h"

using namespace pp;
using namespace pp::workloads;
using namespace pp::ir;

std::unique_ptr<ir::Module> workloads::buildFig1Module() {
  auto M = std::make_unique<Module>();

  // fig1(selector): the Figure 1 CFG. Successor order matters: the paper's
  // edge values arise when A orders its successors [C, B], B orders [C, D],
  // and D orders [F, E].
  Function *Fig1 = M->addFunction("fig1", 1);
  BasicBlock *A = Fig1->addBlock("A");
  BasicBlock *B = Fig1->addBlock("B");
  BasicBlock *C = Fig1->addBlock("C");
  BasicBlock *D = Fig1->addBlock("D");
  BasicBlock *E = Fig1->addBlock("E");
  BasicBlock *F = Fig1->addBlock("F");

  IRBuilder IRB(Fig1, A);
  Reg Sel = 0; // parameter
  Reg Acc = IRB.movImm(0);
  // A: bit0 == 0 -> C (first successor), else B.
  Reg Bit0 = IRB.andImm(Sel, 1);
  Reg TakeC = IRB.cmpEqImm(Bit0, 0);
  IRB.condBr(TakeC, C, B);

  // B: bit1 == 0 -> C, else D.
  IRB.setBlock(B);
  Reg Bit1 = IRB.andImm(Sel, 2);
  Reg BTakeC = IRB.cmpEqImm(Bit1, 0);
  IRB.condBr(BTakeC, C, D);

  // C: fall through to D.
  IRB.setBlock(C);
  Reg CWork = IRB.addImm(Acc, 7);
  IRB.movRegInto(Acc, CWork);
  IRB.br(D);

  // D: bit2 == 0 -> F, else E.
  IRB.setBlock(D);
  Reg Bit2 = IRB.andImm(Sel, 4);
  Reg TakeF = IRB.cmpEqImm(Bit2, 0);
  IRB.condBr(TakeF, F, E);

  // E: a little work, then F.
  IRB.setBlock(E);
  Reg EWork = IRB.mulImm(Acc, 3);
  IRB.movRegInto(Acc, EWork);
  IRB.br(F);

  IRB.setBlock(F);
  IRB.ret(Acc);

  // main: run every selector once.
  Function *Main = M->addFunction("main", 0);
  BasicBlock *Entry = Main->addBlock("entry");
  BasicBlock *Head = Main->addBlock("head");
  BasicBlock *Body = Main->addBlock("body");
  BasicBlock *Done = Main->addBlock("done");

  IRBuilder MB(Main, Entry);
  Reg I = MB.movImm(0);
  Reg Total = MB.movImm(0);
  MB.br(Head);

  MB.setBlock(Head);
  Reg More = MB.cmpLtImm(I, 8);
  MB.condBr(More, Body, Done);

  MB.setBlock(Body);
  Reg Value = MB.call(Fig1, {I});
  Reg NewTotal = MB.add(Total, Value);
  MB.movRegInto(Total, NewTotal);
  Reg NextI = MB.addImm(I, 1);
  MB.movRegInto(I, NextI);
  MB.br(Head);

  MB.setBlock(Done);
  MB.ret(Total);

  M->setMain(Main);
  verifyModuleOrDie(*M);
  return M;
}

std::unique_ptr<ir::Module> workloads::buildFig4Module() {
  auto M = std::make_unique<Module>();

  // Leaf first: C does trivial work.
  Function *C = M->addFunction("C", 1);
  {
    IRBuilder IRB(C, C->addBlock("entry"));
    Reg Doubled = IRB.mulImm(0, 2);
    IRB.ret(Doubled);
  }
  // B calls C once.
  Function *B = M->addFunction("B", 1);
  {
    IRBuilder IRB(B, B->addBlock("entry"));
    Reg FromC = IRB.call(C, {0});
    IRB.ret(FromC);
  }
  // A calls B once.
  Function *A = M->addFunction("A", 1);
  {
    IRBuilder IRB(A, A->addBlock("entry"));
    Reg FromB = IRB.call(B, {0});
    IRB.ret(FromB);
  }
  // D calls C once.
  Function *D = M->addFunction("D", 1);
  {
    IRBuilder IRB(D, D->addBlock("entry"));
    Reg FromC = IRB.call(C, {0});
    IRB.ret(FromC);
  }
  // M calls A then D.
  Function *MProc = M->addFunction("M", 0);
  {
    IRBuilder IRB(MProc, MProc->addBlock("entry"));
    Reg Seed = IRB.movImm(5);
    Reg FromA = IRB.call(A, {Seed});
    Reg FromD = IRB.call(D, {FromA});
    IRB.ret(FromD);
  }
  Function *Main = M->addFunction("main", 0);
  {
    IRBuilder IRB(Main, Main->addBlock("entry"));
    Reg Result = IRB.call(MProc, {});
    IRB.ret(Result);
  }
  M->setMain(Main);
  verifyModuleOrDie(*M);
  return M;
}

std::unique_ptr<ir::Module> workloads::buildFig5Module() {
  auto M = std::make_unique<Module>();

  Function *A = M->addFunction("A", 1);
  Function *B = M->addFunction("B", 1);

  // A(n): if n <= 0 return 0 else return 1 + B(n).
  {
    BasicBlock *Entry = A->addBlock("entry");
    BasicBlock *Base = A->addBlock("base");
    BasicBlock *Recurse = A->addBlock("recurse");
    IRBuilder IRB(A, Entry);
    Reg Stop = IRB.cmpLeImm(0, 0);
    IRB.condBr(Stop, Base, Recurse);
    IRB.setBlock(Base);
    IRB.retImm(0);
    IRB.setBlock(Recurse);
    Reg FromB = IRB.call(B, {0});
    Reg Result = IRB.addImm(FromB, 1);
    IRB.ret(Result);
  }
  // B(n): return A(n - 1).
  {
    IRBuilder IRB(B, B->addBlock("entry"));
    Reg Less = IRB.subImm(0, 1);
    Reg FromA = IRB.call(A, {Less});
    IRB.ret(FromA);
  }
  Function *MProc = M->addFunction("M", 0);
  {
    IRBuilder IRB(MProc, MProc->addBlock("entry"));
    Reg Depth = IRB.movImm(4);
    Reg Result = IRB.call(A, {Depth});
    IRB.ret(Result);
  }
  Function *Main = M->addFunction("main", 0);
  {
    IRBuilder IRB(Main, Main->addBlock("entry"));
    Reg Result = IRB.call(MProc, {});
    IRB.ret(Result);
  }
  M->setMain(Main);
  verifyModuleOrDie(*M);
  return M;
}

std::unique_ptr<ir::Module> workloads::buildLoopModule(int64_t Iterations) {
  auto M = std::make_unique<Module>();
  size_t DataIndex = M->addGlobal("data", 8 * 1024);
  uint64_t DataAddr = M->global(DataIndex).Addr;

  Function *Main = M->addFunction("main", 0);
  BasicBlock *Entry = Main->addBlock("entry");
  BasicBlock *Head = Main->addBlock("head");
  BasicBlock *Body = Main->addBlock("body");
  BasicBlock *Done = Main->addBlock("done");

  IRBuilder IRB(Main, Entry);
  Reg I = IRB.movImm(0);
  Reg Sum = IRB.movImm(0);
  IRB.br(Head);

  IRB.setBlock(Head);
  Reg More = IRB.cmpLtImm(I, Iterations);
  IRB.condBr(More, Body, Done);

  IRB.setBlock(Body);
  Reg Slot = IRB.andImm(I, 1023);
  Reg Offset = IRB.shlImm(Slot, 3);
  Reg Addr = IRB.addImm(Offset, static_cast<int64_t>(DataAddr));
  Reg Value = IRB.load(Addr, 0);
  Reg Bumped = IRB.add(Value, I);
  IRB.store(Addr, 0, Bumped);
  Reg NewSum = IRB.add(Sum, Bumped);
  IRB.movRegInto(Sum, NewSum);
  Reg NextI = IRB.addImm(I, 1);
  IRB.movRegInto(I, NextI);
  IRB.br(Head);

  IRB.setBlock(Done);
  IRB.ret(Sum);

  M->setMain(Main);
  verifyModuleOrDie(*M);
  return M;
}
