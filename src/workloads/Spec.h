//===- workloads/Spec.h - The SPEC95-shaped workload suite -----*- C++ -*-===//
///
/// \file
/// Eighteen deterministic synthetic programs, one per SPEC95 benchmark the
/// paper measures. Each reproduces the control-flow and locality *shape*
/// that drives the paper's results — branchy searches and interpreters with
/// many executed paths on the integer side, loop nests over double arrays
/// with few paths on the floating-point side — at a scale a simulator runs
/// in milliseconds. See DESIGN.md for the substitution rationale.
///
//===----------------------------------------------------------------------===//

#ifndef PP_WORKLOADS_SPEC_H
#define PP_WORKLOADS_SPEC_H

#include "ir/Module.h"

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace pp {
namespace workloads {

/// A registry entry for one workload.
struct WorkloadSpec {
  /// The SPEC95 name the workload mirrors (e.g. "099.go").
  std::string Name;
  /// True for the CFP95 half of the suite.
  bool IsFloat;
  /// Builds the module; \p Scale multiplies the main iteration count
  /// (1 = the default used by the benches).
  std::function<std::unique_ptr<ir::Module>(int Scale)> Build;
};

/// All 18 workloads, CINT95 first, in the paper's table order.
const std::vector<WorkloadSpec> &spec95Suite();

/// Registry workloads outside the paper's 18-row suite (so its tables and
/// golden outputs stay fixed) but still reachable by name through
/// buildWorkload() and the experiment driver. Currently: pp.kbl-ladder,
/// a diamond-heavy loop whose window count overflows at k >= 3, built for
/// the k-iteration ablation's fallback-ladder row.
const std::vector<WorkloadSpec> &extraSuite();

/// Convenience lookup over both registries; returns nullptr for unknown
/// names.
std::unique_ptr<ir::Module> buildWorkload(const std::string &Name, int Scale);

// Individual builders (each also reachable through the registry).
std::unique_ptr<ir::Module> buildGo(int Scale);        // 099.go
std::unique_ptr<ir::Module> buildM88ksim(int Scale);   // 124.m88ksim
std::unique_ptr<ir::Module> buildGcc(int Scale);       // 126.gcc
std::unique_ptr<ir::Module> buildCompress(int Scale);  // 129.compress
std::unique_ptr<ir::Module> buildLi(int Scale);        // 130.li
std::unique_ptr<ir::Module> buildIjpeg(int Scale);     // 132.ijpeg
std::unique_ptr<ir::Module> buildPerl(int Scale);      // 134.perl
std::unique_ptr<ir::Module> buildVortex(int Scale);    // 147.vortex
std::unique_ptr<ir::Module> buildTomcatv(int Scale);   // 101.tomcatv
std::unique_ptr<ir::Module> buildSwim(int Scale);      // 102.swim
std::unique_ptr<ir::Module> buildSu2cor(int Scale);    // 103.su2cor
std::unique_ptr<ir::Module> buildHydro2d(int Scale);   // 104.hydro2d
std::unique_ptr<ir::Module> buildMgrid(int Scale);     // 107.mgrid
std::unique_ptr<ir::Module> buildApplu(int Scale);     // 110.applu
std::unique_ptr<ir::Module> buildTurb3d(int Scale);    // 125.turb3d
std::unique_ptr<ir::Module> buildApsi(int Scale);      // 141.apsi
std::unique_ptr<ir::Module> buildFpppp(int Scale);     // 145.fpppp
std::unique_ptr<ir::Module> buildWave5(int Scale);     // 146.wave5
std::unique_ptr<ir::Module> buildKblLadder(int Scale); // pp.kbl-ladder

} // namespace workloads
} // namespace pp

#endif // PP_WORKLOADS_SPEC_H
