//===- workloads/SpecFp.cpp - CFP95-shaped synthetic workloads ----------------===//
//
// The floating-point half of the suite: loop nests over double arrays with
// few acyclic paths per procedure, FP-pipeline pressure, and array
// footprints chosen around the 16 KB L1 so stencils and strided sweeps
// produce the miss patterns the paper attributes to a handful of hot loop
// paths. fpppp is the outlier by design: one enormous straight-line block.
//
//===----------------------------------------------------------------------===//

#include "ir/Verifier.h"
#include "workloads/Spec.h"
#include "workloads/Util.h"

using namespace pp;
using namespace pp::workloads;
using namespace pp::ir;

namespace {

/// addr = Base + Index * 8 helper.
Reg elemAddr(IRBuilder &IRB, uint64_t Base, Reg Index) {
  Reg Off = IRB.shlImm(Index, 3);
  return IRB.addImm(Off, static_cast<int64_t>(Base));
}

} // namespace

//===----------------------------------------------------------------------===//
// 101.tomcatv — 2D 5-point stencil relaxation on a 64x64 mesh.
//===----------------------------------------------------------------------===//

std::unique_ptr<ir::Module> workloads::buildTomcatv(int Scale) {
  constexpr int64_t N = 64;
  auto M = std::make_unique<Module>();
  uint64_t X = addRandomFpGlobal(*M, "x", N * N, 0x101);
  uint64_t Y = addZeroGlobal(*M, "y", N * N * 8);

  // relax(src, dst pass flag): one sweep of the stencil.
  Function *Relax = M->addFunction("relax", 1);
  {
    IRBuilder IRB(Relax, Relax->addBlock("entry"));
    Reg Flip = 0;
    Reg Quarter = IRB.movFpImm(0.25);
    Loop RowLoop = beginLoop(IRB, N - 2, "row");
    Loop ColLoop = beginLoop(IRB, N - 2, "col");
    Reg Row = IRB.addImm(RowLoop.Index, 1);
    Reg Col = IRB.addImm(ColLoop.Index, 1);
    Reg RowOff = IRB.shlImm(Row, 6);
    Reg Center = IRB.add(RowOff, Col);
    // Alternate sweep direction by flipping source/destination.
    Reg SrcBase = Relax->freshReg();
    Reg DstBase = Relax->freshReg();
    BasicBlock *Even = Relax->addBlock("even");
    BasicBlock *Odd = Relax->addBlock("odd");
    BasicBlock *Compute = Relax->addBlock("compute");
    Reg IsOdd = IRB.andImm(Flip, 1);
    IRB.condBr(IsOdd, Odd, Even);
    IRB.setBlock(Even);
    IRB.movInto(SrcBase, static_cast<int64_t>(X));
    IRB.movInto(DstBase, static_cast<int64_t>(Y));
    IRB.br(Compute);
    IRB.setBlock(Odd);
    IRB.movInto(SrcBase, static_cast<int64_t>(Y));
    IRB.movInto(DstBase, static_cast<int64_t>(X));
    IRB.br(Compute);
    IRB.setBlock(Compute);
    Reg COff = IRB.shlImm(Center, 3);
    Reg CAddr = IRB.add(SrcBase, COff);
    Reg Up = IRB.load(CAddr, -8 * N);
    Reg Down = IRB.load(CAddr, 8 * N);
    Reg Left = IRB.load(CAddr, -8);
    Reg Right = IRB.load(CAddr, 8);
    Reg S1 = IRB.fadd(Up, Down);
    Reg S2 = IRB.fadd(Left, Right);
    Reg S3 = IRB.fadd(S1, S2);
    Reg Avg = IRB.fmul(S3, Quarter);
    Reg DAddr = IRB.add(DstBase, COff);
    IRB.store(DAddr, 0, Avg);
    endLoop(IRB, ColLoop);
    endLoop(IRB, RowLoop);
    IRB.retImm(0);
  }

  Function *Main = M->addFunction("main", 0);
  {
    IRBuilder IRB(Main, Main->addBlock("entry"));
    Loop Sweeps = beginLoop(IRB, 6 * Scale, "sweep");
    IRB.call(Relax, {Sweeps.Index});
    endLoop(IRB, Sweeps);
    Reg Sample = IRB.loadAbs(static_cast<int64_t>(Y) + 8 * (N + 1), 8);
    Reg AsInt = IRB.fpToInt(Sample);
    IRB.ret(AsInt);
  }
  M->setMain(Main);
  verifyModuleOrDie(*M);
  return M;
}

//===----------------------------------------------------------------------===//
// 102.swim — shallow-water update over three 64x64 fields.
//===----------------------------------------------------------------------===//

std::unique_ptr<ir::Module> workloads::buildSwim(int Scale) {
  constexpr int64_t N = 64;
  auto M = std::make_unique<Module>();
  uint64_t U = addRandomFpGlobal(*M, "u", N * N, 0x201);
  uint64_t V = addRandomFpGlobal(*M, "v", N * N, 0x202);
  uint64_t P = addRandomFpGlobal(*M, "p", N * N, 0x203);

  Function *Step = M->addFunction("swim_step", 0);
  {
    IRBuilder IRB(Step, Step->addBlock("entry"));
    Reg Dt = IRB.movFpImm(0.01);
    Loop RowLoop = beginLoop(IRB, N - 2, "row");
    Loop ColLoop = beginLoop(IRB, N - 2, "col");
    Reg Row = IRB.addImm(RowLoop.Index, 1);
    Reg Col = IRB.addImm(ColLoop.Index, 1);
    Reg RowOff = IRB.shlImm(Row, 6);
    Reg Center = IRB.add(RowOff, Col);
    Reg COff = IRB.shlImm(Center, 3);
    Reg UAddr = IRB.addImm(COff, static_cast<int64_t>(U));
    Reg VAddr = IRB.addImm(COff, static_cast<int64_t>(V));
    Reg PAddr = IRB.addImm(COff, static_cast<int64_t>(P));
    Reg Uc = IRB.load(UAddr, 0);
    Reg Vc = IRB.load(VAddr, 0);
    Reg PRight = IRB.load(PAddr, 8);
    Reg PLeft = IRB.load(PAddr, -8);
    Reg PDown = IRB.load(PAddr, 8 * N);
    Reg PUp = IRB.load(PAddr, -8 * N);
    Reg GradX = IRB.fsub(PRight, PLeft);
    Reg GradY = IRB.fsub(PDown, PUp);
    Reg DU = IRB.fmul(GradX, Dt);
    Reg DV = IRB.fmul(GradY, Dt);
    Reg NewU = IRB.fsub(Uc, DU);
    Reg NewV = IRB.fsub(Vc, DV);
    IRB.store(UAddr, 0, NewU);
    IRB.store(VAddr, 0, NewV);
    Reg Div = IRB.fadd(NewU, NewV);
    Reg DP = IRB.fmul(Div, Dt);
    Reg Pc = IRB.load(PAddr, 0);
    Reg NewP = IRB.fsub(Pc, DP);
    IRB.store(PAddr, 0, NewP);
    endLoop(IRB, ColLoop);
    endLoop(IRB, RowLoop);
    IRB.retImm(0);
  }

  Function *Main = M->addFunction("main", 0);
  {
    IRBuilder IRB(Main, Main->addBlock("entry"));
    Loop Steps = beginLoop(IRB, 5 * Scale, "step");
    IRB.call(Step, {});
    endLoop(IRB, Steps);
    Reg Sample = IRB.loadAbs(static_cast<int64_t>(P) + 8 * (N + 1), 8);
    Reg AsInt = IRB.fpToInt(Sample);
    IRB.ret(AsInt);
  }
  M->setMain(Main);
  verifyModuleOrDie(*M);
  return M;
}

//===----------------------------------------------------------------------===//
// 103.su2cor — repeated matrix-vector products (gauge update flavour).
//===----------------------------------------------------------------------===//

std::unique_ptr<ir::Module> workloads::buildSu2cor(int Scale) {
  constexpr int64_t Dim = 48;
  auto M = std::make_unique<Module>();
  uint64_t Mat = addRandomFpGlobal(*M, "mat", Dim * Dim, 0x301);
  uint64_t Vec = addRandomFpGlobal(*M, "vec", Dim, 0x302);
  uint64_t Out = addZeroGlobal(*M, "outv", Dim * 8);

  Function *MatVec = M->addFunction("matvec", 0);
  {
    IRBuilder IRB(MatVec, MatVec->addBlock("entry"));
    Loop RowLoop = beginLoop(IRB, Dim, "row");
    Reg Acc = IRB.movFpImm(0.0);
    Loop ColLoop = beginLoop(IRB, Dim, "col");
    Reg RowBase = IRB.mulImm(RowLoop.Index, Dim);
    Reg Index = IRB.add(RowBase, ColLoop.Index);
    Reg MAddr = elemAddr(IRB, Mat, Index);
    Reg MVal = IRB.load(MAddr, 0);
    Reg VAddr = elemAddr(IRB, Vec, ColLoop.Index);
    Reg VVal = IRB.load(VAddr, 0);
    Reg Prod = IRB.fmul(MVal, VVal);
    Reg NewAcc = IRB.fadd(Acc, Prod);
    IRB.movRegInto(Acc, NewAcc);
    endLoop(IRB, ColLoop);
    Reg OAddr = elemAddr(IRB, Out, RowLoop.Index);
    IRB.store(OAddr, 0, Acc);
    endLoop(IRB, RowLoop);
    IRB.retImm(0);
  }

  // normalize(): copy out back to vec with scaling.
  Function *Normalize = M->addFunction("normalize", 0);
  {
    IRBuilder IRB(Normalize, Normalize->addBlock("entry"));
    Reg Scale = IRB.movFpImm(1.0 / 48.0);
    Loop L = beginLoop(IRB, Dim, "norm");
    Reg OAddr = elemAddr(IRB, Out, L.Index);
    Reg Val = IRB.load(OAddr, 0);
    Reg Scaled = IRB.fmul(Val, Scale);
    Reg VAddr = elemAddr(IRB, Vec, L.Index);
    IRB.store(VAddr, 0, Scaled);
    endLoop(IRB, L);
    IRB.retImm(0);
  }

  Function *Main = M->addFunction("main", 0);
  {
    IRBuilder IRB(Main, Main->addBlock("entry"));
    Loop Iters = beginLoop(IRB, 8 * Scale, "iter");
    IRB.call(MatVec, {});
    IRB.call(Normalize, {});
    endLoop(IRB, Iters);
    Reg Sample = IRB.loadAbs(static_cast<int64_t>(Vec), 8);
    Reg AsInt = IRB.fpToInt(Sample);
    IRB.ret(AsInt);
  }
  M->setMain(Main);
  verifyModuleOrDie(*M);
  return M;
}

//===----------------------------------------------------------------------===//
// 104.hydro2d — hydrodynamics sweep with a limiter branch.
//===----------------------------------------------------------------------===//

std::unique_ptr<ir::Module> workloads::buildHydro2d(int Scale) {
  constexpr int64_t N = 64;
  auto M = std::make_unique<Module>();
  uint64_t Rho = addRandomFpGlobal(*M, "rho", N * N, 0x401);
  uint64_t Flux = addZeroGlobal(*M, "flux", N * N * 8);

  Function *Sweep = M->addFunction("hydro_sweep", 0);
  {
    IRBuilder IRB(Sweep, Sweep->addBlock("entry"));
    Reg Zero = IRB.movFpImm(0.0);
    Reg Gamma = IRB.movFpImm(1.4);
    Loop RowLoop = beginLoop(IRB, N - 2, "row");
    Loop ColLoop = beginLoop(IRB, N - 2, "col");
    Reg Row = IRB.addImm(RowLoop.Index, 1);
    Reg Col = IRB.addImm(ColLoop.Index, 1);
    Reg RowOff = IRB.shlImm(Row, 6);
    Reg Center = IRB.add(RowOff, Col);
    Reg COff = IRB.shlImm(Center, 3);
    Reg RAddr = IRB.addImm(COff, static_cast<int64_t>(Rho));
    Reg Rc = IRB.load(RAddr, 0);
    Reg Rr = IRB.load(RAddr, 8);
    Reg Diff = IRB.fsub(Rr, Rc);
    // Limiter: negative gradients are clamped (data-dependent branch).
    BasicBlock *Clamp = Sweep->addBlock("clamp");
    BasicBlock *Keep = Sweep->addBlock("keep");
    BasicBlock *StoreBlock = Sweep->addBlock("store");
    Reg FluxVal = Sweep->freshReg();
    Reg IsNeg = IRB.fcmpLt(Diff, Zero);
    IRB.condBr(IsNeg, Clamp, Keep);
    IRB.setBlock(Clamp);
    IRB.movRegInto(FluxVal, Zero);
    IRB.br(StoreBlock);
    IRB.setBlock(Keep);
    Reg Scaled = IRB.fmul(Diff, Gamma);
    IRB.movRegInto(FluxVal, Scaled);
    IRB.br(StoreBlock);
    IRB.setBlock(StoreBlock);
    Reg FAddr = IRB.addImm(COff, static_cast<int64_t>(Flux));
    IRB.store(FAddr, 0, FluxVal);
    // Relax density toward the flux.
    Reg Half = IRB.movFpImm(0.5);
    Reg Mixed = IRB.fmul(FluxVal, Half);
    Reg NewR = IRB.fadd(Rc, Mixed);
    IRB.store(RAddr, 0, NewR);
    endLoop(IRB, ColLoop);
    endLoop(IRB, RowLoop);
    IRB.retImm(0);
  }

  Function *Main = M->addFunction("main", 0);
  {
    IRBuilder IRB(Main, Main->addBlock("entry"));
    Loop Steps = beginLoop(IRB, 5 * Scale, "step");
    IRB.call(Sweep, {});
    endLoop(IRB, Steps);
    Reg Sample = IRB.loadAbs(static_cast<int64_t>(Flux) + 8 * (N + 1), 8);
    Reg AsInt = IRB.fpToInt(Sample);
    IRB.ret(AsInt);
  }
  M->setMain(Main);
  verifyModuleOrDie(*M);
  return M;
}

//===----------------------------------------------------------------------===//
// 107.mgrid — 3D 7-point stencil on a 16^3 grid (multigrid smoothing).
//===----------------------------------------------------------------------===//

std::unique_ptr<ir::Module> workloads::buildMgrid(int Scale) {
  constexpr int64_t N = 16;
  auto M = std::make_unique<Module>();
  uint64_t Grid = addRandomFpGlobal(*M, "grid", N * N * N, 0x501);
  uint64_t Tmp = addZeroGlobal(*M, "tmp", N * N * N * 8);

  Function *Smooth = M->addFunction("smooth", 0);
  {
    IRBuilder IRB(Smooth, Smooth->addBlock("entry"));
    Reg Sixth = IRB.movFpImm(1.0 / 6.0);
    Loop ZL = beginLoop(IRB, N - 2, "z");
    Loop YL = beginLoop(IRB, N - 2, "y");
    Loop XL = beginLoop(IRB, N - 2, "x");
    Reg Z = IRB.addImm(ZL.Index, 1);
    Reg Y = IRB.addImm(YL.Index, 1);
    Reg Xc = IRB.addImm(XL.Index, 1);
    Reg ZOff = IRB.mulImm(Z, N * N);
    Reg YOff = IRB.mulImm(Y, N);
    Reg Sum0 = IRB.add(ZOff, YOff);
    Reg Index = IRB.add(Sum0, Xc);
    Reg COff = IRB.shlImm(Index, 3);
    Reg CAddr = IRB.addImm(COff, static_cast<int64_t>(Grid));
    Reg XPlus = IRB.load(CAddr, 8);
    Reg XMinus = IRB.load(CAddr, -8);
    Reg YPlus = IRB.load(CAddr, 8 * N);
    Reg YMinus = IRB.load(CAddr, -8 * N);
    Reg ZPlus = IRB.load(CAddr, 8 * N * N);
    Reg ZMinus = IRB.load(CAddr, -8 * N * N);
    Reg S1 = IRB.fadd(XPlus, XMinus);
    Reg S2 = IRB.fadd(YPlus, YMinus);
    Reg S3 = IRB.fadd(ZPlus, ZMinus);
    Reg S4 = IRB.fadd(S1, S2);
    Reg S5 = IRB.fadd(S3, S4);
    Reg Avg = IRB.fmul(S5, Sixth);
    Reg TAddr = IRB.addImm(COff, static_cast<int64_t>(Tmp));
    IRB.store(TAddr, 0, Avg);
    endLoop(IRB, XL);
    endLoop(IRB, YL);
    endLoop(IRB, ZL);
    IRB.retImm(0);
  }

  // copy_back(): tmp -> grid.
  Function *CopyBack = M->addFunction("copy_back", 0);
  {
    IRBuilder IRB(CopyBack, CopyBack->addBlock("entry"));
    Loop L = beginLoop(IRB, N * N * N, "copy");
    Reg TAddr = elemAddr(IRB, Tmp, L.Index);
    Reg Val = IRB.load(TAddr, 0);
    Reg GAddr = elemAddr(IRB, Grid, L.Index);
    IRB.store(GAddr, 0, Val);
    endLoop(IRB, L);
    IRB.retImm(0);
  }

  Function *Main = M->addFunction("main", 0);
  {
    IRBuilder IRB(Main, Main->addBlock("entry"));
    Loop Cycles = beginLoop(IRB, 6 * Scale, "vcycle");
    IRB.call(Smooth, {});
    IRB.call(CopyBack, {});
    endLoop(IRB, Cycles);
    Reg Sample =
        IRB.loadAbs(static_cast<int64_t>(Grid) + 8 * (N * N + N + 1), 8);
    Reg AsInt = IRB.fpToInt(Sample);
    IRB.ret(AsInt);
  }
  M->setMain(Main);
  verifyModuleOrDie(*M);
  return M;
}

//===----------------------------------------------------------------------===//
// 110.applu — SSOR-flavoured sweep with small inner solves and divides.
//===----------------------------------------------------------------------===//

std::unique_ptr<ir::Module> workloads::buildApplu(int Scale) {
  constexpr int64_t N = 32;
  auto M = std::make_unique<Module>();
  uint64_t A = addRandomFpGlobal(*M, "a", N * N, 0x601);
  uint64_t B = addRandomFpGlobal(*M, "b", N * N, 0x602);

  // solve_row(row): forward elimination across one row with divides.
  Function *SolveRow = M->addFunction("solve_row", 1);
  {
    IRBuilder IRB(SolveRow, SolveRow->addBlock("entry"));
    Reg Row = 0;
    Reg RowBase = IRB.mulImm(Row, N);
    Reg Pivot = IRB.movFpImm(1.0);
    Loop L = beginLoop(IRB, N - 1, "elim");
    Reg Index = IRB.add(RowBase, L.Index);
    Reg AAddr = elemAddr(IRB, A, Index);
    Reg AVal = IRB.load(AAddr, 0);
    Reg BAddr = elemAddr(IRB, B, Index);
    Reg BVal = IRB.load(BAddr, 0);
    Reg Num = IRB.fadd(AVal, BVal);
    Reg Denom = IRB.fadd(Pivot, Pivot);
    Reg Ratio = IRB.fdiv(Num, Denom);
    IRB.store(AAddr, 8, Ratio);
    IRB.movRegInto(Pivot, Ratio);
    endLoop(IRB, L);
    Reg AsInt = IRB.fpToInt(Pivot);
    IRB.ret(AsInt);
  }

  Function *Main = M->addFunction("main", 0);
  {
    IRBuilder IRB(Main, Main->addBlock("entry"));
    Reg Acc = IRB.movImm(0);
    Loop Sweeps = beginLoop(IRB, 10 * Scale, "sweep");
    Loop Rows = beginLoop(IRB, N, "rows");
    Reg V = IRB.call(SolveRow, {Rows.Index});
    Reg NewAcc = IRB.add(Acc, V);
    IRB.movRegInto(Acc, NewAcc);
    endLoop(IRB, Rows);
    endLoop(IRB, Sweeps);
    Reg Masked = IRB.andImm(Acc, 0x7fffffff);
    IRB.ret(Masked);
  }
  M->setMain(Main);
  verifyModuleOrDie(*M);
  return M;
}

//===----------------------------------------------------------------------===//
// 125.turb3d — butterfly passes with power-of-two strides (FFT flavour).
//===----------------------------------------------------------------------===//

std::unique_ptr<ir::Module> workloads::buildTurb3d(int Scale) {
  constexpr int64_t Size = 4096; // 32 KB: strided passes sweep the cache
  auto M = std::make_unique<Module>();
  uint64_t Re = addRandomFpGlobal(*M, "re", Size, 0x701);
  uint64_t Im = addRandomFpGlobal(*M, "im", Size, 0x702);

  // butterfly(stride): pairwise updates at distance stride.
  Function *Butterfly = M->addFunction("butterfly", 1);
  {
    IRBuilder IRB(Butterfly, Butterfly->addBlock("entry"));
    Reg Stride = 0;
    Reg Half = IRB.movFpImm(0.5);
    Loop L = beginLoop(IRB, Size / 2, "pairs");
    // Partner index: i and i ^ stride (masked).
    Reg Partner = IRB.xorOp(L.Index, Stride);
    Reg PMask = IRB.andImm(Partner, Size - 1);
    Reg AAddr = elemAddr(IRB, Re, L.Index);
    Reg BAddr = elemAddr(IRB, Re, PMask);
    Reg AVal = IRB.load(AAddr, 0);
    Reg BVal = IRB.load(BAddr, 0);
    Reg Sum = IRB.fadd(AVal, BVal);
    Reg Diff = IRB.fsub(AVal, BVal);
    Reg SumH = IRB.fmul(Sum, Half);
    Reg DiffH = IRB.fmul(Diff, Half);
    IRB.store(AAddr, 0, SumH);
    IRB.store(BAddr, 0, DiffH);
    // Same on the imaginary plane.
    Reg IAAddr = elemAddr(IRB, Im, L.Index);
    Reg IBAddr = elemAddr(IRB, Im, PMask);
    Reg IAVal = IRB.load(IAAddr, 0);
    Reg IBVal = IRB.load(IBAddr, 0);
    Reg ISum = IRB.fadd(IAVal, IBVal);
    Reg IDiff = IRB.fsub(IAVal, IBVal);
    Reg ISumH = IRB.fmul(ISum, Half);
    Reg IDiffH = IRB.fmul(IDiff, Half);
    IRB.store(IAAddr, 0, ISumH);
    IRB.store(IBAddr, 0, IDiffH);
    endLoop(IRB, L);
    IRB.retImm(0);
  }

  Function *Main = M->addFunction("main", 0);
  {
    IRBuilder IRB(Main, Main->addBlock("entry"));
    Loop Rounds = beginLoop(IRB, 2 * Scale, "round");
    // Strides 1, 2, 4, ..., 2048.
    Reg Stride = IRB.movImm(1);
    Loop Passes = beginLoop(IRB, 12, "pass");
    IRB.call(Butterfly, {Stride});
    Reg Doubled = IRB.shlImm(Stride, 1);
    IRB.movRegInto(Stride, Doubled);
    endLoop(IRB, Passes);
    endLoop(IRB, Rounds);
    Reg Sample = IRB.loadAbs(static_cast<int64_t>(Re), 8);
    Reg AsInt = IRB.fpToInt(Sample);
    IRB.ret(AsInt);
  }
  M->setMain(Main);
  verifyModuleOrDie(*M);
  return M;
}

//===----------------------------------------------------------------------===//
// 141.apsi — several sequential kernels with a conditional deposition step.
//===----------------------------------------------------------------------===//

std::unique_ptr<ir::Module> workloads::buildApsi(int Scale) {
  constexpr int64_t N = 48;
  auto M = std::make_unique<Module>();
  uint64_t Temp = addRandomFpGlobal(*M, "temp", N * N, 0x801);
  uint64_t Wind = addRandomFpGlobal(*M, "wind", N * N, 0x802);
  uint64_t Conc = addZeroGlobal(*M, "conc", N * N * 8);

  // advect(): upwind update chosen by the wind's sign.
  Function *Advect = M->addFunction("advect", 0);
  {
    IRBuilder IRB(Advect, Advect->addBlock("entry"));
    Reg Zero = IRB.movFpImm(0.0);
    Reg Dt = IRB.movFpImm(0.1);
    Loop RL = beginLoop(IRB, N - 2, "row");
    Loop CL = beginLoop(IRB, N - 2, "col");
    Reg Row = IRB.addImm(RL.Index, 1);
    Reg Col = IRB.addImm(CL.Index, 1);
    Reg RowOff = IRB.mulImm(Row, N);
    Reg Index = IRB.add(RowOff, Col);
    Reg COff = IRB.shlImm(Index, 3);
    Reg WAddr = IRB.addImm(COff, static_cast<int64_t>(Wind));
    Reg W = IRB.load(WAddr, 0);
    Reg TAddr = IRB.addImm(COff, static_cast<int64_t>(Temp));
    BasicBlock *FromLeft = Advect->addBlock("left");
    BasicBlock *FromRight = Advect->addBlock("right");
    BasicBlock *Deposit = Advect->addBlock("deposit");
    Reg Upwind = Advect->freshReg();
    Reg Positive = IRB.fcmpLt(Zero, W);
    IRB.condBr(Positive, FromLeft, FromRight);
    IRB.setBlock(FromLeft);
    Reg TL = IRB.load(TAddr, -8);
    IRB.movRegInto(Upwind, TL);
    IRB.br(Deposit);
    IRB.setBlock(FromRight);
    Reg TR = IRB.load(TAddr, 8);
    IRB.movRegInto(Upwind, TR);
    IRB.br(Deposit);
    IRB.setBlock(Deposit);
    Reg Tc = IRB.load(TAddr, 0);
    Reg Delta = IRB.fsub(Upwind, Tc);
    Reg Scaled = IRB.fmul(Delta, Dt);
    Reg NewT = IRB.fadd(Tc, Scaled);
    IRB.store(TAddr, 0, NewT);
    Reg CAddr = IRB.addImm(COff, static_cast<int64_t>(Conc));
    Reg Old = IRB.load(CAddr, 0);
    Reg Deposited = IRB.fadd(Old, Scaled);
    IRB.store(CAddr, 0, Deposited);
    endLoop(IRB, CL);
    endLoop(IRB, RL);
    IRB.retImm(0);
  }

  // diffuse(): 1D vertical smoothing.
  Function *Diffuse = M->addFunction("diffuse", 0);
  {
    IRBuilder IRB(Diffuse, Diffuse->addBlock("entry"));
    Reg Third = IRB.movFpImm(1.0 / 3.0);
    Loop L = beginLoop(IRB, N * (N - 2), "diff");
    Reg Index = IRB.addImm(L.Index, N);
    Reg COff = IRB.shlImm(Index, 3);
    Reg CAddr = IRB.addImm(COff, static_cast<int64_t>(Conc));
    Reg Above = IRB.load(CAddr, -8 * N);
    Reg Here = IRB.load(CAddr, 0);
    Reg Below = IRB.load(CAddr, 8 * N);
    Reg S1 = IRB.fadd(Above, Below);
    Reg S2 = IRB.fadd(S1, Here);
    Reg Smoothed = IRB.fmul(S2, Third);
    IRB.store(CAddr, 0, Smoothed);
    endLoop(IRB, L);
    IRB.retImm(0);
  }

  Function *Main = M->addFunction("main", 0);
  {
    IRBuilder IRB(Main, Main->addBlock("entry"));
    Loop Steps = beginLoop(IRB, 4 * Scale, "step");
    IRB.call(Advect, {});
    IRB.call(Diffuse, {});
    endLoop(IRB, Steps);
    Reg Sample = IRB.loadAbs(static_cast<int64_t>(Conc) + 8 * (N + 1), 8);
    Reg AsInt = IRB.fpToInt(Sample);
    IRB.ret(AsInt);
  }
  M->setMain(Main);
  verifyModuleOrDie(*M);
  return M;
}

//===----------------------------------------------------------------------===//
// 145.fpppp — one enormous straight-line FP block (a single hot path).
//===----------------------------------------------------------------------===//

std::unique_ptr<ir::Module> workloads::buildFpppp(int Scale) {
  constexpr int64_t Size = 256;
  auto M = std::make_unique<Module>();
  uint64_t Data = addRandomFpGlobal(*M, "fdata", Size, 0x901);

  // integrals(): ~300 dependent FP operations, no branches — the paper's
  // fpppp is famous for gigantic basic blocks.
  Function *Integrals = M->addFunction("integrals", 1);
  {
    IRBuilder IRB(Integrals, Integrals->addBlock("entry"));
    Reg Base = 0;
    Reg Acc = IRB.movFpImm(1.0);
    for (int Term = 0; Term != 48; ++Term) {
      Reg Index = IRB.addImm(Base, Term * 5 % Size);
      Reg Masked = IRB.andImm(Index, Size - 1);
      Reg Addr = elemAddr(IRB, Data, Masked);
      Reg V0 = IRB.load(Addr, 0);
      Reg V1 = IRB.load(Addr, 8 * ((Term % 7) + 1));
      Reg P = IRB.fmul(V0, V1);
      Reg S = IRB.fadd(Acc, P);
      Reg Q = IRB.fmul(S, V0);
      Reg R2 = IRB.fadd(Q, V1);
      IRB.movRegInto(Acc, R2);
    }
    Reg AsInt = IRB.fpToInt(Acc);
    Reg Masked = IRB.andImm(AsInt, 0xffff);
    IRB.ret(Masked);
  }

  Function *Main = M->addFunction("main", 0);
  {
    IRBuilder IRB(Main, Main->addBlock("entry"));
    Reg Acc = IRB.movImm(0);
    Loop L = beginLoop(IRB, 120 * Scale, "shell");
    Reg Masked = IRB.andImm(L.Index, 63);
    Reg V = IRB.call(Integrals, {Masked});
    Reg NewAcc = IRB.add(Acc, V);
    IRB.movRegInto(Acc, NewAcc);
    endLoop(IRB, L);
    Reg Final = IRB.andImm(Acc, 0x7fffffff);
    IRB.ret(Final);
  }
  M->setMain(Main);
  verifyModuleOrDie(*M);
  return M;
}

//===----------------------------------------------------------------------===//
// 146.wave5 — particle push with indexed gather/scatter.
//===----------------------------------------------------------------------===//

std::unique_ptr<ir::Module> workloads::buildWave5(int Scale) {
  constexpr int64_t Cells = 8192;   // 64 KB field
  constexpr int64_t Particles = 2048;
  auto M = std::make_unique<Module>();
  uint64_t Field = addRandomFpGlobal(*M, "field", Cells, 0xa01);
  uint64_t Pos = addRandomGlobal(*M, "pos", Particles, 0xa02, Cells);
  uint64_t Vel = addRandomFpGlobal(*M, "velocity", Particles, 0xa03);

  Function *Push = M->addFunction("push_particles", 0);
  {
    IRBuilder IRB(Push, Push->addBlock("entry"));
    Reg Dt = IRB.movFpImm(0.5);
    Reg Sixteen = IRB.movImm(16);
    Loop L = beginLoop(IRB, Particles, "push");
    Reg PAddr = elemAddr(IRB, Pos, L.Index);
    Reg Cell = IRB.load(PAddr, 0);
    // Gather the field at the particle's cell (random index: misses).
    Reg FAddr = elemAddr(IRB, Field, Cell);
    Reg E = IRB.load(FAddr, 0);
    Reg VAddr = elemAddr(IRB, Vel, L.Index);
    Reg V = IRB.load(VAddr, 0);
    Reg Kick = IRB.fmul(E, Dt);
    Reg NewV = IRB.fadd(V, Kick);
    IRB.store(VAddr, 0, NewV);
    // Move the particle: cell += int(v * 16) (mod Cells).
    Reg Scaled = IRB.fmul(NewV, Dt);
    Reg Step = IRB.fpToInt(Scaled);
    Reg StepScaled = IRB.mul(Step, Sixteen);
    Reg NewCell = IRB.add(Cell, StepScaled);
    Reg Wrapped = IRB.andImm(NewCell, Cells - 1);
    IRB.store(PAddr, 0, Wrapped);
    // Scatter charge back.
    Reg NewFAddr = elemAddr(IRB, Field, Wrapped);
    Reg Old = IRB.load(NewFAddr, 0);
    Reg Deposited = IRB.fadd(Old, Kick);
    IRB.store(NewFAddr, 0, Deposited);
    endLoop(IRB, L);
    IRB.retImm(0);
  }

  Function *Main = M->addFunction("main", 0);
  {
    IRBuilder IRB(Main, Main->addBlock("entry"));
    Loop Steps = beginLoop(IRB, 8 * Scale, "step");
    IRB.call(Push, {});
    endLoop(IRB, Steps);
    Reg Sample = IRB.loadAbs(static_cast<int64_t>(Field), 8);
    Reg AsInt = IRB.fpToInt(Sample);
    Reg Masked = IRB.andImm(AsInt, 0xffff);
    IRB.ret(Masked);
  }
  M->setMain(Main);
  verifyModuleOrDie(*M);
  return M;
}
