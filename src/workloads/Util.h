//===- workloads/Util.h - Workload construction helpers --------*- C++ -*-===//
///
/// \file
/// Shared scaffolding for the synthetic SPEC95-shaped workloads: counted
/// loop emission, PRNG-initialised data globals, and the workload registry
/// entry type.
///
//===----------------------------------------------------------------------===//

#ifndef PP_WORKLOADS_UTIL_H
#define PP_WORKLOADS_UTIL_H

#include "ir/IRBuilder.h"
#include "support/Prng.h"

#include <cstdint>
#include <string>
#include <vector>

namespace pp {
namespace workloads {

/// An in-construction counted loop: `for (Index = 0; Index < Count; ++Index)`.
struct Loop {
  ir::BasicBlock *Head = nullptr;
  ir::BasicBlock *Body = nullptr;
  ir::BasicBlock *Done = nullptr;
  ir::Reg Index = ir::NoReg;
};

/// Emits the loop header and positions the builder at the body. The bound
/// may be an immediate (beginLoop) or a register (beginLoopReg).
inline Loop beginLoop(ir::IRBuilder &IRB, int64_t Count,
                      const std::string &Name) {
  Loop L;
  ir::Function *F = IRB.function();
  L.Head = F->addBlock(Name + ".head");
  L.Body = F->addBlock(Name + ".body");
  L.Done = F->addBlock(Name + ".done");
  L.Index = IRB.movImm(0);
  IRB.br(L.Head);
  IRB.setBlock(L.Head);
  ir::Reg More = IRB.cmpLtImm(L.Index, Count);
  IRB.condBr(More, L.Body, L.Done);
  IRB.setBlock(L.Body);
  return L;
}

inline Loop beginLoopReg(ir::IRBuilder &IRB, ir::Reg Count,
                         const std::string &Name) {
  Loop L;
  ir::Function *F = IRB.function();
  L.Head = F->addBlock(Name + ".head");
  L.Body = F->addBlock(Name + ".body");
  L.Done = F->addBlock(Name + ".done");
  L.Index = IRB.movImm(0);
  IRB.br(L.Head);
  IRB.setBlock(L.Head);
  ir::Reg More = IRB.cmpLt(L.Index, Count);
  IRB.condBr(More, L.Body, L.Done);
  IRB.setBlock(L.Body);
  return L;
}

/// Emits the index increment and back edge, then positions the builder at
/// the loop exit.
inline void endLoop(ir::IRBuilder &IRB, Loop &L) {
  ir::Reg Next = IRB.addImm(L.Index, 1);
  IRB.movRegInto(L.Index, Next);
  IRB.br(L.Head);
  IRB.setBlock(L.Done);
}

/// Declares a global of \p Count 64-bit slots filled with PRNG values below
/// \p Bound (or raw 64-bit values when Bound is 0); returns its address.
uint64_t addRandomGlobal(ir::Module &M, const std::string &Name,
                         uint64_t Count, uint64_t Seed, uint64_t Bound);

/// Declares a global of \p Count doubles uniform in [0, 1); returns its
/// address.
uint64_t addRandomFpGlobal(ir::Module &M, const std::string &Name,
                           uint64_t Count, uint64_t Seed);

/// Declares a zeroed global of \p Bytes bytes; returns its address.
uint64_t addZeroGlobal(ir::Module &M, const std::string &Name,
                       uint64_t Bytes);

} // namespace workloads
} // namespace pp

#endif // PP_WORKLOADS_UTIL_H
