//===- bl/PathNumbering.h - Ball-Larus path numbering ----------*- C++ -*-===//
///
/// \file
/// The Ball-Larus efficient path profiling algorithm (§2 of the paper):
///
///  * transforms a cyclic CFG into an acyclic one by replacing every back
///    edge b = v -> w with the pseudo edges b_start = ENTRY -> w and
///    b_end = v -> EXIT;
///  * computes NP(n), the number of paths from n to EXIT, in reverse
///    topological order;
///  * assigns each edge a value Val(e) so that summing the values along any
///    ENTRY -> EXIT path produces a unique sum in [0, NP(ENTRY));
///  * regenerates the block sequence of a path from its sum.
///
/// The numbering handles reducible and irreducible CFGs (back edges come
/// from a DFS, whose removal always leaves an acyclic graph).
///
//===----------------------------------------------------------------------===//

#ifndef PP_BL_PATHNUMBERING_H
#define PP_BL_PATHNUMBERING_H

#include "cfg/Cfg.h"

#include <cstdint>
#include <vector>

namespace pp {
namespace bl {

/// Kind of an edge of the transformed (acyclic) graph.
enum class TEdgeKind : uint8_t {
  /// An original CFG edge that is not a back edge.
  Real,
  /// ENTRY -> w, standing for "a path that begins by taking back edge
  /// v -> w".
  EntryPseudo,
  /// v -> EXIT, standing for "a path that ends by taking back edge
  /// v -> w".
  ExitPseudo,
};

/// One edge of the transformed graph, with its assigned value.
struct TEdge {
  TEdgeKind Kind;
  unsigned From;
  unsigned To;
  /// The originating CFG edge: itself for Real edges, the back edge for
  /// pseudo edges.
  unsigned CfgEdgeId;
  /// The Ball-Larus increment for this edge.
  uint64_t Val = 0;
};

/// Why a numbering query could not be answered. Overflowed numberings used
/// to answer these queries with debug-only asserts (silent garbage in
/// release builds); every query now has a try-variant returning one of
/// these, and the narrow legacy accessors report a fatal error instead of
/// reading unassigned values.
enum class NumberingQueryStatus : uint8_t {
  Ok,
  /// The numbering overflowed 2^62 potential paths; no values exist.
  Overflowed,
  /// A back-edge query was asked about an ordinary edge.
  NotABackedge,
  /// An ordinary-edge query was asked about a back edge.
  IsABackedge,
  /// The edge's source is unreachable from ENTRY (no transformed edge).
  Unreachable,
  /// The path sum is outside [0, numPaths()).
  OutOfRange,
};

/// Short label for \p Status ("ok", "overflowed", ...).
const char *numberingQueryStatusName(NumberingQueryStatus Status);

/// A path reconstructed from its path sum.
struct RegeneratedPath {
  /// Executed blocks, as CFG node indices (never includes the virtual
  /// EXIT). Starts at the function entry, or at a loop head if the path
  /// began with a back edge.
  std::vector<unsigned> Nodes;
  /// True when the path begins just after a back edge was taken.
  bool StartsAfterBackedge = false;
  /// True when the path ends by taking a back edge (rather than returning).
  bool EndsWithBackedge = false;
  /// CFG edge id of the back edge the path starts after / ends with
  /// (~0u when not applicable). Distinguishes paths whose block sequences
  /// coincide but that follow different back edges.
  unsigned EntryBackedge = ~0u;
  unsigned ExitBackedge = ~0u;
  /// CFG edge ids of the ordinary edges traversed, in order. Parallel
  /// edges (a conditional branch whose arms share a target) make this the
  /// path's true identity; the node list alone can collide.
  std::vector<unsigned> Edges;
};

/// Path numbering for one function's CFG. The paths that can exceed 64-bit
/// counts are detected: valid() returns false and the function must fall
/// back to edge profiling (numbers this large never index tables anyway).
class PathNumbering {
public:
  /// Path counts at or beyond this are treated as overflow; such functions
  /// cannot use path profiling and fall back to edge profiling.
  static constexpr uint64_t MaxPaths = uint64_t(1) << 62;

  explicit PathNumbering(const cfg::Cfg &G);

  const cfg::Cfg &graph() const { return G; }

  /// False if the potential-path count overflowed 2^62.
  bool valid() const { return !Overflowed; }

  /// NP(ENTRY): number of distinct measurable paths; path sums lie in
  /// [0, numPaths()).
  uint64_t numPaths() const { return NumPathsFrom[G.entryNode()]; }

  /// NP(n) for any node (0 for nodes unreachable from ENTRY).
  uint64_t numPathsFrom(unsigned Node) const { return NumPathsFrom[Node]; }

  const std::vector<TEdge> &transformedEdges() const { return TEdges; }

  /// Out-edge indices (into transformedEdges()) of \p Node, in the order
  /// used for value assignment.
  const std::vector<unsigned> &transformedOutEdges(unsigned Node) const {
    return TOut[Node];
  }

  /// Val(e) for a non-back-edge CFG edge (the "r += Val" increment).
  /// Reports a fatal error on any non-Ok tryValueForCfgEdge status.
  uint64_t valueForCfgEdge(unsigned CfgEdgeId) const;

  /// For back edge \p CfgEdgeId: the value of its v -> EXIT pseudo edge
  /// (added to r when committing the ending path, "count[r+END]++").
  /// Reports a fatal error on any non-Ok tryBackedgeEndValue status.
  uint64_t backedgeEndValue(unsigned CfgEdgeId) const;

  /// For back edge \p CfgEdgeId: the value of its ENTRY -> w pseudo edge
  /// (the new path sum after the back edge, "r = START").
  /// Reports a fatal error on any non-Ok tryBackedgeStartValue status.
  uint64_t backedgeStartValue(unsigned CfgEdgeId) const;

  /// Reconstructs the block sequence for \p PathSum (< numPaths()).
  /// Reports a fatal error on any non-Ok tryRegenerate status.
  RegeneratedPath regenerate(uint64_t PathSum) const;

  // --- Typed queries --------------------------------------------------------
  // The try-variants answer the same questions but refuse with a status
  // instead of asserting: Overflowed numberings, misdirected edge kinds,
  // unreachable edges, and out-of-range sums are all reportable states a
  // caller holding untrusted input (a stored artifact, another run's
  // profile) must be able to probe without UB.

  NumberingQueryStatus tryValueForCfgEdge(unsigned CfgEdgeId,
                                          uint64_t &Out) const;
  NumberingQueryStatus tryBackedgeEndValue(unsigned CfgEdgeId,
                                           uint64_t &Out) const;
  NumberingQueryStatus tryBackedgeStartValue(unsigned CfgEdgeId,
                                             uint64_t &Out) const;
  NumberingQueryStatus tryRegenerate(uint64_t PathSum,
                                     RegeneratedPath &Out) const;

  // --- Structure accessors (the k-iteration numbering builds on these) -----

  /// Transformed-edge index of a CFG edge: the Real edge for ordinary
  /// edges, the ExitPseudo edge for back edges; ~0u when absent
  /// (unreachable source).
  unsigned transformedIndexForCfgEdge(unsigned CfgEdgeId) const {
    return RealIndex[CfgEdgeId];
  }
  /// EntryPseudo index of a back edge; ~0u when absent (unreachable, or
  /// elided because the back edge targets the entry block).
  unsigned entryPseudoIndexForBackedge(unsigned CfgEdgeId) const {
    return EntryPseudoIndex[CfgEdgeId];
  }
  /// Reverse topological order of the transformed DAG (every node after
  /// all of its transformed successors; EXIT first, ENTRY last). Only the
  /// nodes reachable from ENTRY appear.
  const std::vector<unsigned> &finishOrder() const { return FinishOrder; }

private:
  void buildTransformedGraph();
  void computeNumPaths();
  void assignEdgeValues();
  RegeneratedPath regenerateUnchecked(uint64_t PathSum) const;

  const cfg::Cfg &G;
  bool Overflowed = false;
  std::vector<TEdge> TEdges;
  std::vector<std::vector<unsigned>> TOut;
  std::vector<uint64_t> NumPathsFrom;
  std::vector<unsigned> FinishOrder;
  /// Map from CFG edge id to transformed-edge index for Real edges, or to
  /// the ExitPseudo index for back edges; ~0u when absent.
  std::vector<unsigned> RealIndex;
  /// Map from back-edge CFG id to its EntryPseudo index; ~0u when absent.
  std::vector<unsigned> EntryPseudoIndex;
};

} // namespace bl
} // namespace pp

#endif // PP_BL_PATHNUMBERING_H
