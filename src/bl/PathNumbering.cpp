//===- bl/PathNumbering.cpp - Ball-Larus path numbering --------------------===//

#include "bl/PathNumbering.h"

#include "support/Error.h"
#include "support/Format.h"

#include <cassert>
#include <cstddef>
#include <limits>

using namespace pp;
using namespace pp::bl;

const char *bl::numberingQueryStatusName(NumberingQueryStatus Status) {
  switch (Status) {
  case NumberingQueryStatus::Ok:
    return "ok";
  case NumberingQueryStatus::Overflowed:
    return "overflowed";
  case NumberingQueryStatus::NotABackedge:
    return "not-a-backedge";
  case NumberingQueryStatus::IsABackedge:
    return "is-a-backedge";
  case NumberingQueryStatus::Unreachable:
    return "unreachable";
  case NumberingQueryStatus::OutOfRange:
    return "out-of-range";
  }
  return "unknown";
}

namespace {

/// Aborts with a uniform message for the narrow accessors, which promise a
/// value and therefore cannot report.
[[noreturn]] void refuseQuery(const char *Query, NumberingQueryStatus S) {
  reportFatalError(formatString("path numbering query %s refused: %s", Query,
                                numberingQueryStatusName(S)));
}

} // namespace

PathNumbering::PathNumbering(const cfg::Cfg &G) : G(G) {
  buildTransformedGraph();
  computeNumPaths();
  if (!Overflowed)
    assignEdgeValues();
}

void PathNumbering::buildTransformedGraph() {
  TOut.resize(G.numNodes());
  RealIndex.assign(G.numEdges(), ~0u);
  EntryPseudoIndex.assign(G.numEdges(), ~0u);

  // Real (non-back) edges first, preserving successor order within each
  // node; the order determines value assignment but any fixed order works.
  for (unsigned Node = 0; Node != G.numNodes(); ++Node) {
    if (!G.isReachable(Node))
      continue;
    for (unsigned EdgeId : G.outEdges(Node)) {
      const cfg::Edge &E = G.edge(EdgeId);
      if (G.isBackedge(EdgeId))
        continue;
      unsigned Index = static_cast<unsigned>(TEdges.size());
      TEdges.push_back(TEdge{TEdgeKind::Real, E.From, E.To, EdgeId, 0});
      TOut[E.From].push_back(Index);
      RealIndex[EdgeId] = Index;
    }
  }

  // Pseudo edges for every back edge b = v -> w: b_start = ENTRY -> w and
  // b_end = v -> EXIT. A back edge *into* the entry block would make
  // b_start a self-loop; such paths restart exactly like ordinary entry
  // paths, so the pseudo edge is elided and the runtime reset value is 0
  // (backedgeStartValue handles this case).
  for (unsigned EdgeId = 0; EdgeId != G.numEdges(); ++EdgeId) {
    if (!G.isBackedge(EdgeId))
      continue;
    const cfg::Edge &E = G.edge(EdgeId);
    if (E.To != G.entryNode()) {
      unsigned StartIndex = static_cast<unsigned>(TEdges.size());
      TEdges.push_back(
          TEdge{TEdgeKind::EntryPseudo, G.entryNode(), E.To, EdgeId, 0});
      TOut[G.entryNode()].push_back(StartIndex);
      EntryPseudoIndex[EdgeId] = StartIndex;
    }

    unsigned EndIndex = static_cast<unsigned>(TEdges.size());
    TEdges.push_back(
        TEdge{TEdgeKind::ExitPseudo, E.From, G.exitNode(), EdgeId, 0});
    TOut[E.From].push_back(EndIndex);
    RealIndex[EdgeId] = EndIndex;
  }
}

void PathNumbering::computeNumPaths() {
  // The transformed graph is acyclic; compute a reverse topological order
  // with an iterative DFS over it (finish order), then accumulate NP.
  unsigned NumNodes = G.numNodes();
  NumPathsFrom.assign(NumNodes, 0);

  FinishOrder.reserve(NumNodes);
  std::vector<uint8_t> Visited(NumNodes, 0); // 0 white, 1 grey, 2 black
  struct Frame {
    unsigned Node;
    size_t NextOut;
  };
  std::vector<Frame> Stack;
  Stack.push_back({G.entryNode(), 0});
  Visited[G.entryNode()] = 1;
  while (!Stack.empty()) {
    Frame &Top = Stack.back();
    if (Top.NextOut == TOut[Top.Node].size()) {
      Visited[Top.Node] = 2;
      FinishOrder.push_back(Top.Node);
      Stack.pop_back();
      continue;
    }
    unsigned To = TEdges[TOut[Top.Node][Top.NextOut++]].To;
    assert(Visited[To] != 1 && "transformed graph must be acyclic");
    if (Visited[To] == 0) {
      Visited[To] = 1;
      Stack.push_back({To, 0});
    }
  }

  // Finish order lists every node after all of its successors, so a single
  // sweep suffices.
  for (unsigned Node : FinishOrder) {
    if (Node == G.exitNode()) {
      NumPathsFrom[Node] = 1;
      continue;
    }
    if (TOut[Node].empty()) {
      // Reachable node with no way to EXIT cannot occur: every terminator
      // either branches, returns (synthetic EXIT edge), or closes a loop
      // (whose back edge contributes an ExitPseudo edge).
      assert(false && "reachable node with no outgoing transformed edges");
      NumPathsFrom[Node] = 0;
      continue;
    }
    uint64_t Sum = 0;
    for (unsigned Index : TOut[Node]) {
      Sum += NumPathsFrom[TEdges[Index].To];
      if (Sum >= MaxPaths) {
        Overflowed = true;
        return;
      }
    }
    NumPathsFrom[Node] = Sum;
  }
}

void PathNumbering::assignEdgeValues() {
  // Val(e_i) = sum over earlier successors of NP (Figure 2).
  for (unsigned Node = 0; Node != G.numNodes(); ++Node) {
    uint64_t Prefix = 0;
    for (unsigned Index : TOut[Node]) {
      TEdges[Index].Val = Prefix;
      Prefix += NumPathsFrom[TEdges[Index].To];
    }
  }
}

NumberingQueryStatus
PathNumbering::tryValueForCfgEdge(unsigned CfgEdgeId, uint64_t &Out) const {
  if (Overflowed)
    return NumberingQueryStatus::Overflowed;
  if (CfgEdgeId >= G.numEdges())
    return NumberingQueryStatus::OutOfRange;
  if (G.isBackedge(CfgEdgeId))
    return NumberingQueryStatus::IsABackedge;
  unsigned Index = RealIndex[CfgEdgeId];
  if (Index == ~0u)
    return NumberingQueryStatus::Unreachable;
  Out = TEdges[Index].Val;
  return NumberingQueryStatus::Ok;
}

NumberingQueryStatus
PathNumbering::tryBackedgeEndValue(unsigned CfgEdgeId, uint64_t &Out) const {
  if (Overflowed)
    return NumberingQueryStatus::Overflowed;
  if (CfgEdgeId >= G.numEdges())
    return NumberingQueryStatus::OutOfRange;
  if (!G.isBackedge(CfgEdgeId))
    return NumberingQueryStatus::NotABackedge;
  unsigned Index = RealIndex[CfgEdgeId];
  if (Index == ~0u)
    return NumberingQueryStatus::Unreachable;
  assert(TEdges[Index].Kind == TEdgeKind::ExitPseudo);
  Out = TEdges[Index].Val;
  return NumberingQueryStatus::Ok;
}

NumberingQueryStatus
PathNumbering::tryBackedgeStartValue(unsigned CfgEdgeId,
                                     uint64_t &Out) const {
  if (Overflowed)
    return NumberingQueryStatus::Overflowed;
  if (CfgEdgeId >= G.numEdges())
    return NumberingQueryStatus::OutOfRange;
  if (!G.isBackedge(CfgEdgeId))
    return NumberingQueryStatus::NotABackedge;
  unsigned Index = EntryPseudoIndex[CfgEdgeId];
  if (Index == ~0u) {
    if (RealIndex[CfgEdgeId] == ~0u)
      return NumberingQueryStatus::Unreachable;
    // Back edge into the entry block: restarted paths are ordinary entry
    // paths.
    assert(G.edge(CfgEdgeId).To == G.entryNode());
    Out = 0;
    return NumberingQueryStatus::Ok;
  }
  assert(TEdges[Index].Kind == TEdgeKind::EntryPseudo);
  Out = TEdges[Index].Val;
  return NumberingQueryStatus::Ok;
}

uint64_t PathNumbering::valueForCfgEdge(unsigned CfgEdgeId) const {
  uint64_t Value = 0;
  NumberingQueryStatus S = tryValueForCfgEdge(CfgEdgeId, Value);
  if (S != NumberingQueryStatus::Ok)
    refuseQuery("valueForCfgEdge", S);
  return Value;
}

uint64_t PathNumbering::backedgeEndValue(unsigned CfgEdgeId) const {
  uint64_t Value = 0;
  NumberingQueryStatus S = tryBackedgeEndValue(CfgEdgeId, Value);
  if (S != NumberingQueryStatus::Ok)
    refuseQuery("backedgeEndValue", S);
  return Value;
}

uint64_t PathNumbering::backedgeStartValue(unsigned CfgEdgeId) const {
  uint64_t Value = 0;
  NumberingQueryStatus S = tryBackedgeStartValue(CfgEdgeId, Value);
  if (S != NumberingQueryStatus::Ok)
    refuseQuery("backedgeStartValue", S);
  return Value;
}

NumberingQueryStatus PathNumbering::tryRegenerate(uint64_t PathSum,
                                                  RegeneratedPath &Out) const {
  if (Overflowed)
    return NumberingQueryStatus::Overflowed;
  if (PathSum >= numPaths())
    return NumberingQueryStatus::OutOfRange;
  Out = regenerateUnchecked(PathSum);
  return NumberingQueryStatus::Ok;
}

RegeneratedPath PathNumbering::regenerate(uint64_t PathSum) const {
  if (Overflowed)
    refuseQuery("regenerate", NumberingQueryStatus::Overflowed);
  if (PathSum >= numPaths())
    refuseQuery("regenerate", NumberingQueryStatus::OutOfRange);
  return regenerateUnchecked(PathSum);
}

RegeneratedPath PathNumbering::regenerateUnchecked(uint64_t PathSum) const {
  RegeneratedPath Path;
  uint64_t Remaining = PathSum;
  unsigned Node = G.entryNode();
  bool First = true;
  while (Node != G.exitNode()) {
    // Successor values are strictly increasing prefix sums in TOut order,
    // so the edge to take is the last one whose Val <= Remaining.
    const std::vector<unsigned> &OutIds = TOut[Node];
    assert(!OutIds.empty() && "walked into a dead end");
    unsigned Chosen = OutIds[0];
    for (unsigned Index : OutIds) {
      if (TEdges[Index].Val <= Remaining)
        Chosen = Index;
      else
        break;
    }
    const TEdge &E = TEdges[Chosen];
    assert(E.Val <= Remaining);
    Remaining -= E.Val;

    if (First) {
      First = false;
      if (E.Kind == TEdgeKind::EntryPseudo) {
        // Path begins just after a back edge: its first block is the loop
        // head the back edge targets.
        Path.StartsAfterBackedge = true;
        Path.EntryBackedge = E.CfgEdgeId;
        Path.Nodes.push_back(E.To);
        Node = E.To;
        continue;
      }
      Path.Nodes.push_back(Node);
    }
    switch (E.Kind) {
    case TEdgeKind::Real:
      Path.Edges.push_back(E.CfgEdgeId);
      if (E.To != G.exitNode())
        Path.Nodes.push_back(E.To);
      break;
    case TEdgeKind::ExitPseudo:
      Path.EndsWithBackedge = true;
      Path.ExitBackedge = E.CfgEdgeId;
      break;
    case TEdgeKind::EntryPseudo:
      assert(false && "entry pseudo edge cannot occur mid-path");
      break;
    }
    Node = E.To;
  }
  assert(Remaining == 0 && "path sum not fully consumed");
  return Path;
}
