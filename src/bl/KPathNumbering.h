//===- bl/KPathNumbering.h - Multi-iteration path numbering ----*- C++ -*-===//
///
/// \file
/// Ball-Larus path numbering across k loop iterations, after D'Elia &
/// Demetrescu, "Ball-Larus Path Profiling Across Multiple Loop Iterations"
/// (arXiv 1304.5197). A k-path (a "window") is a sequence of up to k
/// acyclic Ball-Larus paths ("segments") joined by back edges: the window
/// ends when the procedure returns, or when the k-th segment ends with a
/// back edge.
///
/// The numbering reuses the single-iteration transformed graph unchanged
/// and replicates it across k levels (level j = number of back edges
/// already crossed inside the window):
///
///  * a Real edge at level j stays within the level and weighs NP_j(To);
///  * the ExitPseudo edge of back edge b = v -> w weighs 1 at the top
///    level (the window ends) and NP_{j+1}(w) below it (it is the
///    level-crossing edge);
///  * EntryPseudo edges encode "the window starts at w just after back
///    edge b" and therefore carry weight only at level 0 (NP_0(To)); at
///    deeper levels they weigh nothing and are never taken (every CFG edge
///    into the entry block is a DFS back edge, so mid-window visits to
///    ENTRY arrive via level crossings and continue through real edges).
///
/// Summing per-level prefix values along any window yields a dense id in
/// [0, numPaths()); k = 1 reproduces the legacy numbering value-for-value.
/// Construction runs a deterministic fallback ladder k, k-1, ..., 1: the
/// largest k whose NP stays below 2^62 wins (the count is monotone in k,
/// and the single-iteration numbering is valid by precondition).
///
//===----------------------------------------------------------------------===//

#ifndef PP_BL_KPATHNUMBERING_H
#define PP_BL_KPATHNUMBERING_H

#include "bl/PathNumbering.h"

#include <memory>

namespace pp {
namespace bl {

/// k-iteration path numbering layered over a valid single-iteration
/// PathNumbering (which must outlive this object).
class KPathNumbering {
public:
  /// Builds the numbering for the largest k <= RequestedK that does not
  /// overflow (the fallback ladder). \p PN must be valid().
  KPathNumbering(const PathNumbering &PN, unsigned RequestedK);

  const PathNumbering &base() const { return PN; }

  /// The k the caller asked for.
  unsigned requestedK() const { return RequestedK; }
  /// The k the ladder settled on (>= 1; == requestedK() when nothing
  /// overflowed). 1 means the numbering is exactly the legacy one.
  unsigned effectiveK() const { return EffectiveK; }
  /// True when windows span more than one iteration (effectiveK() >= 2).
  bool multiIteration() const { return EffectiveK >= 2; }

  /// NP_0(ENTRY): window sums lie in [0, numPaths()).
  uint64_t numPaths() const { return NP[0][PN.graph().entryNode()]; }

  /// NP_j(n): windows suffixes from node \p Node at level \p Level.
  uint64_t numPathsFrom(unsigned Level, unsigned Node) const {
    return NP[Level][Node];
  }
  /// Val_j(e): the level-\p Level value of transformed edge \p TEdgeIndex.
  uint64_t levelValue(unsigned Level, unsigned TEdgeIndex) const {
    return Val[Level][TEdgeIndex];
  }

  /// The contribution of one decoded segment executed at level \p Level to
  /// its window's sum: the level-0 EntryPseudo start value when the window
  /// itself began just after a back edge, plus the level values of the
  /// segment's ordinary edges, plus the ExitPseudo value when the segment
  /// ends with a back edge. Summing segmentValue(S_j, j) over a window's
  /// segments reproduces the window sum.
  uint64_t segmentValue(const RegeneratedPath &Segment,
                        unsigned Level) const;

  /// Reconstructs the per-iteration segments of window \p WindowSum.
  /// Segment j executed at level j; every segment but the last ends with a
  /// back edge, and the last ends with a back edge only when the window
  /// closed at the top level.
  NumberingQueryStatus tryRegenerate(uint64_t WindowSum,
                                     std::vector<RegeneratedPath> &Out) const;
  /// Reports a fatal error on any non-Ok tryRegenerate status.
  std::vector<RegeneratedPath> regenerate(uint64_t WindowSum) const;

private:
  /// Computes NP/Val for k = \p K; false when NP overflows 2^62.
  bool tryBuild(unsigned K);

  const PathNumbering &PN;
  unsigned RequestedK;
  unsigned EffectiveK = 1;
  /// NP[level][node] and Val[level][transformed-edge], level < effectiveK.
  std::vector<std::vector<uint64_t>> NP;
  std::vector<std::vector<uint64_t>> Val;
};

/// Everything the runtime and the renderers need to interpret one
/// function's k-paths, with owned storage: the CFG snapshot (taken on the
/// pristine function, before instrumentation inserts code), the legacy
/// numbering it feeds, and the k-numbering on top. Built once per
/// instrumented function and shared read-only.
struct KPathBundle {
  cfg::Cfg G;
  PathNumbering PN;
  KPathNumbering KPN;

  KPathBundle(const ir::Function &F, unsigned RequestedK)
      : G(F), PN(G), KPN(PN, RequestedK) {}
};

} // namespace bl
} // namespace pp

#endif // PP_BL_KPATHNUMBERING_H
