//===- bl/InstrumentationPlan.cpp - Where path probes go -------------------===//

#include "bl/InstrumentationPlan.h"

using namespace pp;
using namespace pp::bl;

PathPlan bl::buildPathPlan(const PathNumbering &PN,
                           const PlanOptions &Options) {
  PathPlan Plan;
  if (!PN.valid())
    return Plan;
  const cfg::Cfg &G = PN.graph();

  Plan.Valid = true;
  Plan.NumPaths = PN.numPaths();
  Plan.UseHashTable = Plan.NumPaths > Options.ArrayThreshold;

  for (unsigned EdgeId = 0; EdgeId != G.numEdges(); ++EdgeId) {
    const cfg::Edge &E = G.edge(EdgeId);
    if (!G.isReachable(E.From))
      continue;

    if (G.isBackedge(EdgeId)) {
      Plan.Backedges.push_back(BackedgeOp{EdgeId, PN.backedgeEndValue(EdgeId),
                                          PN.backedgeStartValue(EdgeId)});
      continue;
    }

    uint64_t Value = PN.valueForCfgEdge(EdgeId);
    if (E.SuccIndex < 0) {
      // Synthetic edge to the virtual EXIT: the commit point in a return or
      // longjmp block.
      if (Options.FoldFinalValues) {
        Plan.ExitCommits.push_back(ExitCommit{E.From, Value});
      } else {
        if (Value != 0)
          Plan.Increments.push_back(EdgeIncrement{EdgeId, Value});
        Plan.ExitCommits.push_back(ExitCommit{E.From, 0});
      }
      continue;
    }
    if (Value != 0)
      Plan.Increments.push_back(EdgeIncrement{EdgeId, Value});
  }
  return Plan;
}
