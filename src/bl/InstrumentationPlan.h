//===- bl/InstrumentationPlan.h - Where path probes go ---------*- C++ -*-===//
///
/// \file
/// Turns a PathNumbering into a placement plan: which CFG edges receive
/// "r += Val" increments, where path sums are committed (return blocks and
/// back edges), and whether the function's counters fit an array or need a
/// hash table. The plan is representation-only; the instrumenter in
/// src/prof lowers it to IR.
///
//===----------------------------------------------------------------------===//

#ifndef PP_BL_INSTRUMENTATIONPLAN_H
#define PP_BL_INSTRUMENTATIONPLAN_H

#include "bl/PathNumbering.h"

#include <cstdint>
#include <vector>

namespace pp {
namespace bl {

/// Placement options.
struct PlanOptions {
  /// Fold the value of the final edge into the commit's table offset
  /// instead of emitting a separate increment (the Figure 1(d) style
  /// optimisation). When false, every nonzero edge gets an explicit
  /// increment and commits use offset zero (Figure 1(c) style).
  bool FoldFinalValues = true;
  /// Path-count threshold above which counters live in a hash table
  /// instead of a dense array (§2: "if the number of potential paths is
  /// large").
  uint64_t ArrayThreshold = 1 << 16;
};

/// An "r += Value" increment on a non-back CFG edge.
struct EdgeIncrement {
  unsigned CfgEdgeId;
  uint64_t Value;
};

/// A path commit in a block that leaves the procedure (return or longjmp).
/// The committed index is r + FoldValue.
struct ExitCommit {
  /// CFG node (block id) whose terminator leaves the procedure.
  unsigned Node;
  uint64_t FoldValue;
};

/// The combined commit/reset on a back edge: count[r + EndValue]++ then
/// r = StartValue.
struct BackedgeOp {
  unsigned CfgEdgeId;
  uint64_t EndValue;
  uint64_t StartValue;
};

/// A complete placement plan for one function.
struct PathPlan {
  /// False when the potential-path count overflowed; the function must be
  /// profiled some other way (e.g. edge profiling).
  bool Valid = false;
  uint64_t NumPaths = 0;
  bool UseHashTable = false;
  std::vector<EdgeIncrement> Increments;
  std::vector<ExitCommit> ExitCommits;
  std::vector<BackedgeOp> Backedges;
};

/// Builds the plan for \p PN.
PathPlan buildPathPlan(const PathNumbering &PN, const PlanOptions &Options);

} // namespace bl
} // namespace pp

#endif // PP_BL_INSTRUMENTATIONPLAN_H
