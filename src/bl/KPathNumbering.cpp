//===- bl/KPathNumbering.cpp - Multi-iteration path numbering ---------------===//

#include "bl/KPathNumbering.h"

#include "support/Error.h"
#include "support/Format.h"

#include <cassert>

using namespace pp;
using namespace pp::bl;

KPathNumbering::KPathNumbering(const PathNumbering &PN, unsigned RequestedK)
    : PN(PN), RequestedK(RequestedK == 0 ? 1 : RequestedK) {
  if (!PN.valid())
    reportFatalError("k-path numbering requires a valid single-iteration "
                     "numbering (the ladder bottoms out at edge profiling "
                     "before reaching here)");
  // The fallback ladder: the window count is monotone in k, so the first
  // k that fits is the largest usable one. k = 1 recomputes exactly the
  // legacy sums and cannot overflow when the base numbering is valid.
  for (unsigned K = this->RequestedK; K >= 1; --K) {
    if (tryBuild(K)) {
      EffectiveK = K;
      return;
    }
  }
  unreachable("single-iteration numbering overflowed despite a valid base");
}

bool KPathNumbering::tryBuild(unsigned K) {
  const cfg::Cfg &G = PN.graph();
  const std::vector<TEdge> &TEdges = PN.transformedEdges();
  unsigned NumNodes = G.numNodes();
  NP.assign(K, std::vector<uint64_t>(NumNodes, 0));
  Val.assign(K, std::vector<uint64_t>(TEdges.size(), 0));

  // Top level first: ExitPseudo edges below the top reference the next
  // level up; within one level the finish order lists every node after
  // all of its same-level successors (and, at level 0, the back-edge
  // targets the EntryPseudo edges of ENTRY reference).
  for (unsigned Level = K; Level-- > 0;) {
    std::vector<uint64_t> &LevelNP = NP[Level];
    std::vector<uint64_t> &LevelVal = Val[Level];
    for (unsigned Node : PN.finishOrder()) {
      if (Node == G.exitNode()) {
        LevelNP[Node] = 1;
        continue;
      }
      uint64_t Sum = 0;
      for (unsigned Index : PN.transformedOutEdges(Node)) {
        const TEdge &E = TEdges[Index];
        uint64_t Weight = 0;
        switch (E.Kind) {
        case TEdgeKind::Real:
          Weight = LevelNP[E.To];
          break;
        case TEdgeKind::ExitPseudo:
          // Top level: the window ends here (one way). Below: cross to the
          // back edge's target on the next level.
          Weight = Level + 1 == K ? 1 : NP[Level + 1][G.edge(E.CfgEdgeId).To];
          break;
        case TEdgeKind::EntryPseudo:
          // "The window starts at the back edge's target": meaningful only
          // at level 0; mid-window visits to ENTRY (back edges into the
          // entry block) continue through real edges alone.
          Weight = Level == 0 ? LevelNP[E.To] : 0;
          break;
        }
        LevelVal[Index] = Sum;
        Sum += Weight;
        if (Sum >= PathNumbering::MaxPaths)
          return false;
      }
      LevelNP[Node] = Sum;
    }
  }
  return true;
}

uint64_t KPathNumbering::segmentValue(const RegeneratedPath &Segment,
                                      unsigned Level) const {
  assert(Level < EffectiveK && "level beyond the effective window size");
  uint64_t Sum = 0;
  if (Level == 0 && Segment.StartsAfterBackedge) {
    // The elided case (back edge into ENTRY) decodes as an ordinary entry
    // path and never reaches here; guard anyway so a hand-built segment
    // gets the start value 0 the runtime would use.
    unsigned Index = PN.entryPseudoIndexForBackedge(Segment.EntryBackedge);
    if (Index != ~0u)
      Sum += Val[0][Index];
  }
  for (unsigned CfgEdgeId : Segment.Edges) {
    unsigned Index = PN.transformedIndexForCfgEdge(CfgEdgeId);
    assert(Index != ~0u && "segment traverses an unreachable edge");
    Sum += Val[Level][Index];
  }
  if (Segment.EndsWithBackedge) {
    unsigned Index = PN.transformedIndexForCfgEdge(Segment.ExitBackedge);
    assert(Index != ~0u && "segment ends with an unreachable back edge");
    Sum += Val[Level][Index];
  }
  return Sum;
}

NumberingQueryStatus
KPathNumbering::tryRegenerate(uint64_t WindowSum,
                              std::vector<RegeneratedPath> &Out) const {
  if (WindowSum >= numPaths())
    return NumberingQueryStatus::OutOfRange;
  Out.clear();

  const cfg::Cfg &G = PN.graph();
  const std::vector<TEdge> &TEdges = PN.transformedEdges();
  uint64_t Remaining = WindowSum;
  unsigned Level = 0;
  unsigned Node = G.entryNode();
  bool FirstStep = true;
  RegeneratedPath Seg;
  Seg.Nodes.push_back(Node);

  while (Node != G.exitNode()) {
    const std::vector<unsigned> &OutIds = PN.transformedOutEdges(Node);
    assert(!OutIds.empty() && "walked into a dead end");
    // Choosable prefix values are strictly increasing in TOut order, so
    // the edge to take is the last one whose value <= Remaining.
    // EntryPseudo edges are window starts: weightless and unchoosable
    // after the first step (including at levels >= 1, where mid-window
    // visits to ENTRY make them share a prefix value with their
    // neighbour).
    unsigned Chosen = ~0u;
    for (unsigned Index : OutIds) {
      if (TEdges[Index].Kind == TEdgeKind::EntryPseudo && !FirstStep)
        continue;
      if (Chosen != ~0u && Val[Level][Index] > Remaining)
        break;
      Chosen = Index;
    }
    assert(Chosen != ~0u && "no choosable out-edge");
    const TEdge &E = TEdges[Chosen];
    assert(Val[Level][Chosen] <= Remaining);
    Remaining -= Val[Level][Chosen];
    FirstStep = false;

    switch (E.Kind) {
    case TEdgeKind::Real:
      Seg.Edges.push_back(E.CfgEdgeId);
      if (E.To != G.exitNode())
        Seg.Nodes.push_back(E.To);
      Node = E.To;
      break;
    case TEdgeKind::EntryPseudo:
      // First step only: the window begins just after a back edge, at its
      // target.
      Seg.StartsAfterBackedge = true;
      Seg.EntryBackedge = E.CfgEdgeId;
      Seg.Nodes.assign(1, E.To);
      Node = E.To;
      break;
    case TEdgeKind::ExitPseudo: {
      Seg.EndsWithBackedge = true;
      Seg.ExitBackedge = E.CfgEdgeId;
      if (Level + 1 == EffectiveK) {
        // The window closes at the top level.
        Node = G.exitNode();
        break;
      }
      // Level crossing: the next segment starts at the back edge's target.
      Out.push_back(std::move(Seg));
      Seg = RegeneratedPath();
      unsigned Target = G.edge(E.CfgEdgeId).To;
      Seg.StartsAfterBackedge = true;
      Seg.EntryBackedge = E.CfgEdgeId;
      Seg.Nodes.push_back(Target);
      ++Level;
      Node = Target;
      break;
    }
    }
  }
  Out.push_back(std::move(Seg));
  assert(Remaining == 0 && "window sum not fully consumed");
  return NumberingQueryStatus::Ok;
}

std::vector<RegeneratedPath>
KPathNumbering::regenerate(uint64_t WindowSum) const {
  std::vector<RegeneratedPath> Segments;
  NumberingQueryStatus S = tryRegenerate(WindowSum, Segments);
  if (S != NumberingQueryStatus::Ok)
    reportFatalError(formatString("k-path regenerate refused: %s",
                                  numberingQueryStatusName(S)));
  return Segments;
}
