//===- vm/Predecoder.h - Predecoded instruction streams --------*- C++ -*-===//
///
/// \file
/// Lowers each ir::Function once into a flat stream of DecodedInst — the
/// threaded engine's execution format. Predecoding pays the per-instruction
/// decode cost (operand-B register/immediate selection, successor block
/// lookups, switch-target vectors, profiling pseudo-op hook resolution)
/// exactly once per function instead of on every dynamic execution, the
/// same economy the paper demands of its instrumentation sequences: keep
/// the recurring per-event cost minimal, push everything movable to setup.
///
/// The decoded stream preserves reference-interpreter semantics bit for
/// bit: the same Machine events fire in the same order, the same error
/// strings surface on the same dynamic instruction, the same tracer and
/// runtime callbacks run. Only the dispatch mechanics differ.
///
//===----------------------------------------------------------------------===//

#ifndef PP_VM_PREDECODER_H
#define PP_VM_PREDECODER_H

#include "vm/Vm.h"

#include <cstdint>
#include <vector>

namespace pp {
namespace vm {

/// Decoded operation kinds. Register/immediate variants of the integer ops
/// are split (suffix RR/RI) so the hot handlers read their second operand
/// unconditionally; rarer ops keep the BIsImm flag.
enum class DOp : uint8_t {
  MovR,
  MovI,
  AddRR,
  AddRI,
  SubRR,
  SubRI,
  MulRR,
  MulRI,
  DivRR,
  DivRI,
  RemRR,
  RemRI,
  AndRR,
  AndRI,
  OrRR,
  OrRI,
  XorRR,
  XorRI,
  ShlRR,
  ShlRI,
  ShrRR,
  ShrRI,
  CmpEqRR,
  CmpEqRI,
  CmpNeRR,
  CmpNeRI,
  CmpLtRR,
  CmpLtRI,
  CmpLeRR,
  CmpLeRI,
  FAdd,
  FSub,
  FMul,
  FDiv,
  FCmpLt,
  FCmpLe,
  FCmpEq,
  IntToFp,
  FpToInt,
  LoadAbs, // absolute address (A == NoReg)
  LoadReg, // base register + immediate offset
  StoreAbs,
  StoreReg,
  Alloc,
  Br,
  CondBr,
  Switch,
  Ret,
  Call,
  ICall,
  Setjmp,
  Longjmp,
  RdPic,
  WrPic,
  Prof,          // pre-bound profiling pseudo-op (Hook set)
  ProfNoRuntime, // profiling pseudo-op with no runtime attached: fails
  // Fused compare + conditional branch. The pair occupies its original two
  // stream slots (the CondBr keeps its own slot, operands, and address);
  // the fused handler executes both instructions' full effects —
  // including the branch's fetch accounting and budget check — in one
  // dispatch. Emitted only when no signal handler is installed, so no
  // delivery boundary can fall between the two halves.
  CmpEqRRBr,
  CmpEqRIBr,
  CmpNeRRBr,
  CmpNeRIBr,
  CmpLtRRBr,
  CmpLtRIBr,
  CmpLeRRBr,
  CmpLeRIBr,
  NumDOps
};

/// One predecoded instruction — exactly 32 bytes (two per host cache
/// line), carrying only what the hot dispatch path reads. Branch targets
/// are offsets into the owning function's flat stream; everything that is
/// pointer-sized and cold (call argument lists, tracer blocks, runtime
/// hooks) lives in the parallel DecodedExtra array.
struct DecodedInst {
  int64_t Imm = 0;
  /// Simulated code address (drives beginInst and branch-predictor keys).
  /// The simulated layout tops out far below 4 GB; the decoder asserts.
  uint32_t Addr = 0;
  /// Primary successor offset (Br, CondBr true edge, Switch default).
  uint32_t T1 = 0;
  /// CondBr false-edge offset; for Switch, the base index into the owning
  /// function's SwitchPool.
  uint32_t T2 = 0;
  /// Switch target count.
  uint32_t NTargets = 0;
  /// Register numbers, narrowed (the decoder asserts they fit; an absent
  /// register truncates to 0xffff and is never read).
  uint16_t Dst = 0;
  uint16_t A = 0;
  uint16_t B = 0;
  DOp Op = DOp::MovI;
  /// Bit 0: second-operand-is-immediate, for the ops that keep the flag
  /// (FP arithmetic, stores, Alloc, Ret, Longjmp, WrPic). Bits 1+: the
  /// memory access width for LoadAbs/LoadReg/StoreAbs/StoreReg.
  uint8_t Flags = 0;

  static constexpr uint8_t FlagBIsImm = 1;
  bool bIsImm() const { return Flags & FlagBIsImm; }
  unsigned size() const { return Flags >> 1; }
};
static_assert(sizeof(DecodedInst) == 32,
              "DecodedInst must stay two-per-cache-line");

/// Cold per-instruction data, parallel to DecodedFunction::Stream; only
/// call, profiling, and tracer paths touch it.
struct DecodedExtra {
  /// The original instruction (argument vectors, pseudo-op operands).
  const ir::Inst *Src = nullptr;
  /// The owning basic block (canonical-edge tracer callbacks).
  const ir::BasicBlock *From = nullptr;
  /// Direct-call target.
  ir::Function *Callee = nullptr;
  /// Pre-bound profiling runtime handler (DOp::Prof only).
  ProfRuntime::HookFn Hook = nullptr;
};

/// One function's decoded stream. Block boundaries disappear: successor
/// references become stream offsets, and the entry block starts at 0.
struct DecodedFunction {
  ir::Function *F = nullptr;
  std::vector<DecodedInst> Stream;
  /// Parallel cold data: Extras[i] belongs to Stream[i].
  std::vector<DecodedExtra> Extras;
  /// Flattened Switch target offsets (DecodedInst::T2 indexes here).
  std::vector<uint32_t> SwitchPool;
};

/// Decodes a whole module. Runs after layout (instruction addresses must
/// be assigned) and after the profiling runtime is attached, so pseudo-op
/// hooks bind to their final receiver.
class Predecoder {
public:
  /// \p FuseCmpBr enables the compare+branch superinstructions; the
  /// engine passes false when a signal handler is installed (delivery
  /// must be able to preempt every instruction boundary).
  Predecoder(ir::Module &M, ProfRuntime *RT, bool FuseCmpBr = false);

  const DecodedFunction &function(unsigned Id) const { return Funcs[Id]; }
  DecodedFunction &function(unsigned Id) { return Funcs[Id]; }
  size_t numFunctions() const { return Funcs.size(); }

private:
  void decodeFunction(ir::Function &F, ProfRuntime *RT, bool FuseCmpBr,
                      DecodedFunction &Out);

  std::vector<DecodedFunction> Funcs;
};

} // namespace vm
} // namespace pp

#endif // PP_VM_PREDECODER_H
