//===- vm/ThreadedEngine.cpp - Predecoded threaded-dispatch engine -----------===//
//
// The threaded execution engine: runs the Predecoder's flat DecodedInst
// streams with computed-goto dispatch on GCC/Clang (each handler ends in
// its own indirect branch, so the host branch predictor learns per-opcode
// successor patterns) and a portable switch loop elsewhere (or when
// PP_VM_NO_COMPUTED_GOTO is defined).
//
// Semantics are intentionally a line-for-line mirror of Vm::runReference:
// the same Machine events in the same order, the same error strings on the
// same dynamic instruction, the same tracer/runtime callbacks. Any
// observable divergence is a bug, and tests/EngineEquivalenceTest.cpp is
// the differential harness that hunts for one. When editing either engine,
// edit both.
//
//===----------------------------------------------------------------------===//

#include "vm/Predecoder.h"
#include "vm/Vm.h"

#include "support/Error.h"
#include "support/Format.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <limits>

using namespace pp;
using namespace pp::vm;

#if (defined(__GNUC__) || defined(__clang__)) && \
    !defined(PP_VM_NO_COMPUTED_GOTO)
#define PP_CGOTO 1
#else
#define PP_CGOTO 0
#endif

// Refreshes the cached current-frame pointers after any push/pop. The
// program counter is the roaming stream pointer D itself; any handler
// that pushes a frame must write D's index back to FR->InstIdx first
// (Call/ICall/deliver_signal do), and this macro re-seeds D from the
// frame that becomes current.
#define PP_SET_FRAME()                                                         \
  do {                                                                         \
    FR = &Frames.back();                                                       \
    R = FR->Regs.data();                                                       \
    Rdy = FR->Ready.data();                                                    \
    Code = FR->DF->Stream.data();                                              \
    EX = FR->DF->Extras.data();                                                \
    StreamLen = FR->DF->Stream.size();                                         \
    (void)StreamLen;                                                           \
    D = Code + FR->InstIdx;                                                    \
  } while (0)

// D's index in the current frame's stream (for frame sync and setjmp).
#define PP_PC() (static_cast<size_t>(D - Code))

// Per-instruction work shared by both dispatch flavours; mirrors the
// reference loop's head: signal delivery, fetch, I-cache/issue accounting,
// interval-timer tick, instruction budget. The countdown ticks before the
// instruction executes rather than after (both engines agree): delivery
// points are identical either way, since the counter decrements exactly
// once per executed instruction between boundary checks. With no signal
// handler installed (SigHandler is run-invariant) the signal work folds
// to one never-taken register test; likewise the overflow-trap check
// (TrapH run-invariant) vanishes when no trap handler is installed, and
// otherwise costs one load+compare against the armed PIC's threshold.
#define PP_PROLOGUE()                                                          \
  do {                                                                         \
    if (SigHandler && !InSignal) {                                             \
      if (SignalCountdown == 0)                                                \
        goto deliver_signal;                                                   \
      --SignalCountdown;                                                       \
    }                                                                          \
    if (TrapH && MC.counters().overflowPending()) {                            \
      FR->InstIdx = PP_PC();                                                   \
      deliverOverflowTrap(D->Addr);                                            \
    }                                                                          \
    assert(PP_PC() < StreamLen && "ran off end of stream");                    \
    MC.beginInst(D->Addr);                                                     \
    if (++Executed > Budget)                                                   \
      goto budget_exhausted;                                                   \
  } while (0)

// The computed-goto flavour is direct threading proper: every handler
// ends by running the fetch prologue and dispatching through the
// label-address table itself, so each of the ~64 indirect-branch sites
// keys the host's predictor to the opcode that precedes it (per-opcode
// successor patterns — the classic threaded-dispatch win over a single
// shared switch site). Replication is affordable because the prologue's
// cold paths (the cache tag/LRU walk behind Machine::beginInst) live out
// of line; only a compare and two counter adds are copied per handler.
// The portable flavour keeps one shared switch at the fetch label.
#if PP_CGOTO
#define PP_CASE(Name) H_##Name
#define PP_DISPATCH()                                                          \
  goto *const_cast<void *>(Handlers[static_cast<size_t>(D->Op)])
#define PP_FETCH()                                                             \
  do {                                                                         \
    PP_PROLOGUE();                                                             \
    PP_DISPATCH();                                                             \
  } while (0)
#else
#define PP_FETCH() goto fetch
#define PP_CASE(Name) case DOp::Name
#endif

// Advance past a straight-line instruction and dispatch the next one.
#define PP_NEXT()                                                              \
  do {                                                                         \
    ++D;                                                                       \
    PP_FETCH();                                                                \
  } while (0)

// Straight-line ALU handler pair: register and immediate second operand.
#define PP_ALU(Name, Expr)                                                     \
  PP_CASE(Name##RR) : {                                                        \
    uint64_t Av = R[D->A];                                                     \
    uint64_t Bv = R[D->B];                                                     \
    (void)Av;                                                                  \
    R[D->Dst] = (Expr);                                                        \
    PP_NEXT();                                                                 \
  }                                                                            \
  PP_CASE(Name##RI) : {                                                        \
    uint64_t Av = R[D->A];                                                     \
    uint64_t Bv = static_cast<uint64_t>(D->Imm);                               \
    (void)Av;                                                                  \
    R[D->Dst] = (Expr);                                                        \
    PP_NEXT();                                                                 \
  }

// Signed divide/remainder with the reference engine's edge-case results.
#define PP_DIVREM(Name, IsDiv)                                                 \
  {                                                                            \
    MC.addCycles(MC.cost().DivCycles);                               \
    int64_t Lhs = static_cast<int64_t>(R[D->A]);                               \
    int64_t Rhs = static_cast<int64_t>(Bv);                                    \
    if (Rhs == 0)                                                              \
      R[D->Dst] = (IsDiv) ? 0 : 0;                                             \
    else if (Lhs == std::numeric_limits<int64_t>::min() && Rhs == -1)          \
      R[D->Dst] = (IsDiv) ? static_cast<uint64_t>(Lhs) : 0;                    \
    else                                                                       \
      R[D->Dst] = static_cast<uint64_t>((IsDiv) ? Lhs / Rhs : Lhs % Rhs);      \
    PP_NEXT();                                                                 \
  }

// Fused compare+branch halves: evaluate the compare, store its
// architectural result, and jump to the shared branch tail with the
// condition in FusedCond. Only reachable when no signal handler is
// installed (the Predecoder gates fusion on that), so no delivery check
// is needed at the fused pair's internal boundary.
#define PP_CMPBR(Name, Expr)                                                   \
  PP_CASE(Name##RRBr) : {                                                      \
    uint64_t Av = R[D->A];                                                     \
    uint64_t Bv = R[D->B];                                                     \
    FusedCond = (Expr);                                                        \
    R[D->Dst] = FusedCond;                                                     \
    goto fused_br;                                                             \
  }                                                                            \
  PP_CASE(Name##RIBr) : {                                                      \
    uint64_t Av = R[D->A];                                                     \
    uint64_t Bv = static_cast<uint64_t>(D->Imm);                               \
    FusedCond = (Expr);                                                        \
    R[D->Dst] = FusedCond;                                                     \
    goto fused_br;                                                             \
  }

// FP arithmetic with the scoreboard stall, mirroring the reference engine.
#define PP_FP(Name, ValueExpr, LatencyExpr)                                    \
  PP_CASE(Name) : {                                                            \
    uint64_t ReadyAt = Rdy[D->A];                                              \
    if (!D->bIsImm())                                                            \
      ReadyAt = std::max(ReadyAt, Rdy[D->B]);                                  \
    uint64_t Now = MC.now();                                              \
    if (ReadyAt > Now)                                                         \
      MC.stall(hw::Event::FpStall, ReadyAt - Now);                        \
    double Lhs = std::bit_cast<double>(R[D->A]);                               \
    double Rhs = std::bit_cast<double>(                                        \
        D->bIsImm() ? static_cast<uint64_t>(D->Imm) : R[D->B]);                  \
    (void)Lhs;                                                                 \
    (void)Rhs;                                                                 \
    uint64_t Latency = (LatencyExpr);                                          \
    R[D->Dst] = (ValueExpr);                                                   \
    Rdy[D->Dst] = MC.now() + Latency;                                     \
    PP_NEXT();                                                                 \
  }

RunResult Vm::runThreaded() {
  RunResult Result;
  ir::Function *Main = M.main();
  if (!Main) {
    Result.Error = "module has no main function";
    return Result;
  }

  // Lower the module once per run; pseudo-op hooks bind to the currently
  // attached runtime, so the stream cannot be reused across setRuntime.
  // Superinstruction fusion is only sound when neither signal delivery
  // nor a counter-overflow trap can preempt the boundary inside a fused
  // pair.
  Decoded = std::make_unique<Predecoder>(
      M, Runtime,
      /*FuseCmpBr=*/SignalHandler == nullptr && TrapHook == nullptr);

  Frames.clear();
  {
    Frame Initial;
    Initial.F = Main;
    Initial.BB = nullptr;
    Initial.InstIdx = 0;
    Initial.DF = &Decoded->function(Main->id());
    Initial.Serial = NextSerial++;
    Initial.RetDst = ir::NoReg;
    Initial.Regs.assign(Main->numRegs(), 0);
    Initial.Ready.assign(Main->numRegs(), 0);
    Frames.push_back(std::move(Initial));
  }
  if (TracerHook)
    TracerHook->onEnterFunction(*Main);

  Result.Ok = true;

  // Hot interpreter state, hoisted into locals so the dispatch loop keeps
  // it in registers: the program counter, the current frame's decoded
  // stream, and run-invariant configuration (setTracer/setRuntime/
  // setSignal/setMaxInsts cannot be called mid-run).
  Frame *FR = nullptr;
  uint64_t *R = nullptr;
  uint64_t *Rdy = nullptr;
  const DecodedInst *Code = nullptr;
  const DecodedExtra *EX = nullptr;
  size_t StreamLen = 0;
  const DecodedInst *D = nullptr;
  uint64_t Executed = 0;
  uint64_t FusedCond = 0;
  ir::Function *const SigHandler = SignalHandler;
  TrapHandler *const TrapH = TrapHook;
  const uint64_t Budget = MaxInsts;
  Tracer *const TH = TracerHook;
  ProfRuntime *const RT = Runtime;
  hw::Machine &MC = Machine;

#if PP_CGOTO
  // Direct threading: one indirect jump through the label-address table,
  // indexed by the instruction's decoded opcode.
  static const void *const Handlers[] = {
      &&H_MovR,     &&H_MovI,     &&H_AddRR,   &&H_AddRI,   &&H_SubRR,
      &&H_SubRI,    &&H_MulRR,    &&H_MulRI,   &&H_DivRR,   &&H_DivRI,
      &&H_RemRR,    &&H_RemRI,    &&H_AndRR,   &&H_AndRI,   &&H_OrRR,
      &&H_OrRI,     &&H_XorRR,    &&H_XorRI,   &&H_ShlRR,   &&H_ShlRI,
      &&H_ShrRR,    &&H_ShrRI,    &&H_CmpEqRR, &&H_CmpEqRI, &&H_CmpNeRR,
      &&H_CmpNeRI,  &&H_CmpLtRR,  &&H_CmpLtRI, &&H_CmpLeRR, &&H_CmpLeRI,
      &&H_FAdd,     &&H_FSub,     &&H_FMul,    &&H_FDiv,    &&H_FCmpLt,
      &&H_FCmpLe,   &&H_FCmpEq,   &&H_IntToFp, &&H_FpToInt, &&H_LoadAbs,
      &&H_LoadReg,  &&H_StoreAbs, &&H_StoreReg, &&H_Alloc,  &&H_Br,
      &&H_CondBr,   &&H_Switch,   &&H_Ret,     &&H_Call,    &&H_ICall,
      &&H_Setjmp,   &&H_Longjmp,  &&H_RdPic,   &&H_WrPic,   &&H_Prof,
      &&H_ProfNoRuntime,
      &&H_CmpEqRRBr, &&H_CmpEqRIBr, &&H_CmpNeRRBr, &&H_CmpNeRIBr,
      &&H_CmpLtRRBr, &&H_CmpLtRIBr, &&H_CmpLeRRBr, &&H_CmpLeRIBr,
  };
  static_assert(sizeof(Handlers) / sizeof(Handlers[0]) ==
                    static_cast<size_t>(DOp::NumDOps),
                "handler table must cover every decoded op, in enum order");
#endif

  PP_SET_FRAME();
#if PP_CGOTO
  PP_FETCH();
#else
fetch:
  PP_PROLOGUE();
  switch (D->Op) {
#endif

  PP_CASE(MovR) : {
    R[D->Dst] = R[D->B];
    PP_NEXT();
  }
  PP_CASE(MovI) : {
    R[D->Dst] = static_cast<uint64_t>(D->Imm);
    PP_NEXT();
  }

  PP_ALU(Add, Av + Bv)
  PP_ALU(Sub, Av - Bv)
  PP_ALU(Mul, Av *Bv)

  PP_CASE(DivRR) : {
    uint64_t Bv = R[D->B];
    PP_DIVREM(Div, true)
  }
  PP_CASE(DivRI) : {
    uint64_t Bv = static_cast<uint64_t>(D->Imm);
    PP_DIVREM(Div, true)
  }
  PP_CASE(RemRR) : {
    uint64_t Bv = R[D->B];
    PP_DIVREM(Rem, false)
  }
  PP_CASE(RemRI) : {
    uint64_t Bv = static_cast<uint64_t>(D->Imm);
    PP_DIVREM(Rem, false)
  }

  PP_ALU(And, Av &Bv)
  PP_ALU(Or, Av | Bv)
  PP_ALU(Xor, Av ^ Bv)
  PP_ALU(Shl, Av << (Bv & 63))
  PP_ALU(Shr, Av >> (Bv & 63))
  PP_ALU(CmpEq, static_cast<uint64_t>(Av == Bv))
  PP_ALU(CmpNe, static_cast<uint64_t>(Av != Bv))
  PP_ALU(CmpLt, static_cast<uint64_t>(static_cast<int64_t>(Av) <
                                      static_cast<int64_t>(Bv)))
  PP_ALU(CmpLe, static_cast<uint64_t>(static_cast<int64_t>(Av) <=
                                      static_cast<int64_t>(Bv)))

  PP_FP(FAdd, std::bit_cast<uint64_t>(Lhs + Rhs), MC.cost().FpLatency)
  PP_FP(FSub, std::bit_cast<uint64_t>(Lhs - Rhs), MC.cost().FpLatency)
  PP_FP(FMul, std::bit_cast<uint64_t>(Lhs *Rhs), MC.cost().FpLatency)
  PP_FP(FDiv, std::bit_cast<uint64_t>(Lhs / Rhs), MC.cost().FpDivLatency)
  PP_FP(FCmpLt, static_cast<uint64_t>(Lhs < Rhs), 1)
  PP_FP(FCmpLe, static_cast<uint64_t>(Lhs <= Rhs), 1)
  PP_FP(FCmpEq, static_cast<uint64_t>(Lhs == Rhs), 1)

  PP_CASE(IntToFp) : {
    R[D->Dst] = std::bit_cast<uint64_t>(
        static_cast<double>(static_cast<int64_t>(R[D->A])));
    PP_NEXT();
  }
  PP_CASE(FpToInt) : {
    R[D->Dst] = static_cast<uint64_t>(
        static_cast<int64_t>(std::bit_cast<double>(R[D->A])));
    PP_NEXT();
  }

  PP_CASE(LoadAbs) : {
    uint64_t Addr = static_cast<uint64_t>(D->Imm);
    if (Addr < layout::CodeBase) {
      fail(Result, formatString("load from unmapped address 0x%llx in %s",
                                (unsigned long long)Addr,
                                FR->F->name().c_str()));
      goto done;
    }
    R[D->Dst] = MC.load(Addr, D->size());
    Rdy[D->Dst] = MC.now() + MC.cost().LoadLatency;
    PP_NEXT();
  }
  PP_CASE(LoadReg) : {
    uint64_t Addr = R[D->A] + static_cast<uint64_t>(D->Imm);
    if (Addr < layout::CodeBase) {
      fail(Result, formatString("load from unmapped address 0x%llx in %s",
                                (unsigned long long)Addr,
                                FR->F->name().c_str()));
      goto done;
    }
    R[D->Dst] = MC.load(Addr, D->size());
    Rdy[D->Dst] = MC.now() + MC.cost().LoadLatency;
    PP_NEXT();
  }
  PP_CASE(StoreAbs) : {
    uint64_t Addr = static_cast<uint64_t>(D->Imm);
    if (Addr < layout::CodeBase) {
      fail(Result, formatString("store to unmapped address 0x%llx in %s",
                                (unsigned long long)Addr,
                                FR->F->name().c_str()));
      goto done;
    }
    MC.store(Addr, D->size(),
                  D->bIsImm() ? static_cast<uint64_t>(D->Imm) : R[D->B]);
    PP_NEXT();
  }
  PP_CASE(StoreReg) : {
    uint64_t Addr = R[D->A] + static_cast<uint64_t>(D->Imm);
    if (Addr < layout::CodeBase) {
      fail(Result, formatString("store to unmapped address 0x%llx in %s",
                                (unsigned long long)Addr,
                                FR->F->name().c_str()));
      goto done;
    }
    MC.store(Addr, D->size(),
                  D->bIsImm() ? static_cast<uint64_t>(D->Imm) : R[D->B]);
    PP_NEXT();
  }
  PP_CASE(Alloc) : {
    R[D->Dst] =
        heapAlloc(D->bIsImm() ? static_cast<uint64_t>(D->Imm) : R[D->B]);
    PP_NEXT();
  }

  PP_CASE(Br) : {
    if (TH)
      TH->onEdgeTaken(*EX[PP_PC()].From, 0);
    D = Code + D->T1;
    PP_FETCH();
  }
  PP_CASE(CondBr) : {
    bool Taken = R[D->A] != 0;
    MC.condBranch(D->Addr, Taken);
    if (TH)
      TH->onEdgeTaken(*EX[PP_PC()].From, Taken ? 0 : 1);
    D = Code + (Taken ? D->T1 : D->T2);
    PP_FETCH();
  }
  PP_CASE(Switch) : {
    uint64_t Index = R[D->A];
    uint32_t Target;
    int SuccIndex;
    if (Index < D->NTargets) {
      Target = FR->DF->SwitchPool[D->T2 + Index];
      SuccIndex = static_cast<int>(Index) + 1;
    } else {
      Target = D->T1;
      SuccIndex = 0;
    }
    MC.indirectBranch(D->Addr, Code[Target].Addr);
    if (TH)
      TH->onEdgeTaken(*EX[PP_PC()].From, SuccIndex);
    D = Code + Target;
    PP_FETCH();
  }
  PP_CASE(Ret) : {
    uint64_t Value = D->bIsImm() ? static_cast<uint64_t>(D->Imm) : R[D->B];
    if (TH) {
      TH->onEdgeTaken(*EX[PP_PC()].From, -1);
      TH->onExitFunction(*FR->F);
    }
    ir::Reg Dst = FR->RetDst;
    bool WasSignal = FR->IsSignal;
    recycleFrame();
    if (WasSignal) {
      // Resume the interrupted instruction stream exactly where it was:
      // the interrupted frame's InstIdx was synced at delivery, so
      // PP_SET_FRAME restores the pre-signal PC unadvanced.
      InSignal = false;
      if (RT)
        RT->onSignalReturn(*this);
      PP_SET_FRAME();
      PP_FETCH();
    }
    if (Frames.empty()) {
      Result.ExitValue = Value;
      goto done;
    }
    PP_SET_FRAME();
    if (Dst != ir::NoReg)
      R[Dst] = Value;
    ++D; // step past the call
    PP_FETCH();
  }

  PP_CASE(Call) : {
    const DecodedExtra &X = EX[PP_PC()];
    ir::Function *Callee = X.Callee;
    if (Frames.size() >= 100000) {
      fail(Result, "call stack overflow (runaway recursion)");
      goto done;
    }
    if (TH) {
      TH->onCall(*FR->F, *X.Src, *Callee);
      TH->onEnterFunction(*Callee);
    }
    FR->InstIdx = PP_PC(); // the return path re-reads it via PP_SET_FRAME
    pushFrame(Callee, *FR, *X.Src);
    Frames.back().DF = &Decoded->function(Callee->id());
    PP_SET_FRAME();
    PP_FETCH();
  }
  PP_CASE(ICall) : {
    const DecodedExtra &X = EX[PP_PC()];
    uint64_t Id = R[D->A];
    if (Id >= M.numFunctions()) {
      fail(Result,
           formatString("indirect call to invalid function id %llu in %s",
                        (unsigned long long)Id, FR->F->name().c_str()));
      goto done;
    }
    ir::Function *Callee = M.function(Id);
    MC.indirectBranch(D->Addr, EntryAddrs[Callee->id()]);
    if (Callee->numParams() != X.Src->Args.size()) {
      fail(Result, formatString("indirect call arity mismatch: %s(%u) "
                                "called with %zu args",
                                Callee->name().c_str(), Callee->numParams(),
                                X.Src->Args.size()));
      goto done;
    }
    if (Frames.size() >= 100000) {
      fail(Result, "call stack overflow (runaway recursion)");
      goto done;
    }
    if (TH) {
      TH->onCall(*FR->F, *X.Src, *Callee);
      TH->onEnterFunction(*Callee);
    }
    FR->InstIdx = PP_PC(); // the return path re-reads it via PP_SET_FRAME
    pushFrame(Callee, *FR, *X.Src);
    Frames.back().DF = &Decoded->function(Callee->id());
    PP_SET_FRAME();
    PP_FETCH();
  }

  PP_CASE(Setjmp) : {
    JmpBufs[D->Imm] =
        JmpBuf{Frames.size() - 1, FR->Serial, nullptr, PP_PC(), D->Dst};
    R[D->Dst] = 0;
    PP_NEXT();
  }
  PP_CASE(Longjmp) : {
    auto It = JmpBufs.find(D->Imm);
    if (It == JmpBufs.end()) {
      fail(Result,
           formatString("longjmp to unset buffer %lld", (long long)D->Imm));
      goto done;
    }
    const JmpBuf &Buf = It->second;
    if (Buf.FrameIndex >= Frames.size() ||
        Frames[Buf.FrameIndex].Serial != Buf.Serial) {
      fail(Result, formatString("longjmp to dead frame (buffer %lld)",
                                (long long)D->Imm));
      goto done;
    }
    uint64_t Value = D->bIsImm() ? static_cast<uint64_t>(D->Imm) : R[D->B];
    if (TH)
      TH->onEdgeTaken(*EX[PP_PC()].From, -1);
    // Unwind every frame above the target without returning through it.
    while (Frames.size() - 1 > Buf.FrameIndex) {
      const ir::Function &Dead = *Frames.back().F;
      bool DeadWasSignal = Frames.back().IsSignal;
      if (RT)
        RT->onFrameUnwound(*this, Dead);
      if (TH)
        TH->onUnwindFunction(Dead);
      recycleFrame();
      if (DeadWasSignal) {
        InSignal = false;
        if (RT)
          RT->onSignalReturn(*this);
      }
    }
    PP_SET_FRAME();
    D = Code + Buf.InstIdx + 1; // resume after the setjmp
    R[Buf.Dst] = Value;
    PP_FETCH();
  }

  PP_CASE(RdPic) : {
    R[D->Dst] = MC.counters().readPics();
    PP_NEXT();
  }
  PP_CASE(WrPic) : {
    MC.counters().writePics(
        D->bIsImm() ? static_cast<uint64_t>(D->Imm) : R[D->B]);
    PP_NEXT();
  }

  PP_CASE(Prof) : {
    const DecodedExtra &X = EX[PP_PC()];
    X.Hook(*RT, *this, *X.Src);
    PP_NEXT();
  }
  PP_CASE(ProfNoRuntime) : {
    fail(Result, "profiling pseudo-op executed without a runtime");
    goto done;
  }

  PP_CMPBR(CmpEq, static_cast<uint64_t>(Av == Bv))
  PP_CMPBR(CmpNe, static_cast<uint64_t>(Av != Bv))
  PP_CMPBR(CmpLt, static_cast<uint64_t>(static_cast<int64_t>(Av) <
                                        static_cast<int64_t>(Bv)))
  PP_CMPBR(CmpLe, static_cast<uint64_t>(static_cast<int64_t>(Av) <=
                                        static_cast<int64_t>(Bv)))

#if !PP_CGOTO
  case DOp::NumDOps:
    break;
  }
  unreachable("invalid decoded opcode");
#endif

fused_br : {
  // Second half of a fused compare+branch: D advances onto the CondBr's
  // own slot and replays the fetch prologue for it — minus the signal and
  // overflow-trap checks, which cannot fire here because fusion is
  // disabled whenever either handler is installed.
  assert(!SigHandler && !TrapH && "fused ops require no async handlers");
  ++D;
  assert(PP_PC() < StreamLen && "ran off end of stream");
  MC.beginInst(D->Addr);
  if (++Executed > Budget)
    goto budget_exhausted;
  bool Taken = FusedCond != 0;
  MC.condBranch(D->Addr, Taken);
  if (TH)
    TH->onEdgeTaken(*EX[PP_PC()].From, Taken ? 0 : 1);
  D = Code + (Taken ? D->T1 : D->T2);
  PP_FETCH();
}

deliver_signal : {
  // Signal delivery at instruction boundaries (resumption semantics,
  // non-nesting): the handler runs as a fresh frame and the interrupted
  // instruction executes after it returns.
  ++SignalsDelivered;
  SignalCountdown = SignalInterval;
  InSignal = true;
  if (RT)
    RT->onSignalDeliver(*this);
  if (TH)
    TH->onEnterFunction(*SigHandler);
  FR->InstIdx = PP_PC(); // Ret from the handler resumes here, unadvanced
  Frame HandlerFrame;
  HandlerFrame.F = SigHandler;
  HandlerFrame.BB = nullptr;
  HandlerFrame.InstIdx = 0;
  HandlerFrame.DF = &Decoded->function(SigHandler->id());
  HandlerFrame.Serial = NextSerial++;
  HandlerFrame.RetDst = ir::NoReg;
  HandlerFrame.IsSignal = true;
  HandlerFrame.Regs.assign(SigHandler->numRegs(), 0);
  HandlerFrame.Ready.assign(SigHandler->numRegs(), 0);
  Frames.push_back(std::move(HandlerFrame));
  PP_SET_FRAME();
  PP_FETCH();
}

budget_exhausted:
  fail(Result, "instruction budget exhausted (likely an infinite loop)");

done:
  Result.ExecutedInsts = Executed;
  return Result;
}
