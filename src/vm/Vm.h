//===- vm/Vm.h - IR interpreter on the simulated machine -------*- C++ -*-===//
///
/// \file
/// Executes a module on a hw::Machine, driving the caches, branch
/// predictor, store buffer, FP scoreboard, and performance counters one
/// instruction at a time. Profiling pseudo-ops are dispatched to a
/// ProfRuntime; an optional Tracer observes control flow (tests use it to
/// build oracle profiles the instrumented measurements must match).
///
//===----------------------------------------------------------------------===//

#ifndef PP_VM_VM_H
#define PP_VM_VM_H

#include "hw/Machine.h"
#include "ir/Module.h"

#include <string>
#include <unordered_map>
#include <vector>

namespace pp {
namespace vm {

class Vm;

/// Callbacks the profiling runtime implements (src/prof). The VM invokes
/// execOp for every Opcode with isProfRuntimeOp(); onFrameUnwound fires for
/// every frame a longjmp discards, so the runtime can pop its shadow state
/// the way the paper's exception discussion requires (§4.2).
class ProfRuntime {
public:
  virtual ~ProfRuntime();
  virtual void execOp(Vm &VM, const ir::Inst &I) = 0;
  virtual void onFrameUnwound(Vm &VM, const ir::Function &F) = 0;
  /// A signal handler is about to run / has returned. The CCT gives signal
  /// handlers their own root slot ("the CCT would need multiple roots",
  /// §4.2), so the runtime repoints the gCSP for the handler's duration.
  virtual void onSignalDeliver(Vm &VM) {}
  virtual void onSignalReturn(Vm &VM) {}
};

/// Control-flow observer. Default implementations do nothing.
class Tracer {
public:
  virtual ~Tracer();
  /// A CFG edge was taken; SuccIndex is the canonical successor index, or
  /// -1 for leaving the function (return or longjmp).
  virtual void onEdgeTaken(const ir::BasicBlock &From, int SuccIndex) {}
  virtual void onEnterFunction(const ir::Function &F) {}
  virtual void onExitFunction(const ir::Function &F) {}
  /// A frame was discarded by longjmp without returning.
  virtual void onUnwindFunction(const ir::Function &F) {}
  /// A call is about to transfer to \p Callee.
  virtual void onCall(const ir::Function &Caller, const ir::Inst &CallInst,
                      const ir::Function &Callee) {}
};

/// Outcome of a run.
struct RunResult {
  bool Ok = false;
  std::string Error;
  uint64_t ExitValue = 0;
  /// IR instructions the VM dispatched (excludes runtime-op charges).
  uint64_t ExecutedInsts = 0;
};

/// The interpreter. Construction lays the module out in the machine's
/// address space: code addresses are assigned (4 bytes per instruction) and
/// global initialisers are copied into memory.
class Vm {
public:
  Vm(ir::Module &M, hw::Machine &Machine);

  void setRuntime(ProfRuntime *R) { Runtime = R; }
  void setTracer(Tracer *T) { TracerHook = T; }
  /// Aborts the run with an error after this many executed instructions.
  void setMaxInsts(uint64_t Max) { MaxInsts = Max; }

  /// Delivers a simulated signal every \p IntervalInsts executed
  /// instructions: \p Handler (a zero-argument function) runs to
  /// completion, then the interrupted code resumes. Signals have
  /// resumption semantics and do not nest.
  void setSignal(ir::Function *Handler, uint64_t IntervalInsts) {
    assert(Handler && Handler->numParams() == 0 &&
           "signal handlers take no arguments");
    SignalHandler = Handler;
    SignalInterval = IntervalInsts;
    SignalCountdown = IntervalInsts;
  }

  /// Number of signals delivered so far.
  uint64_t signalsDelivered() const { return SignalsDelivered; }

  /// Runs main() to completion.
  RunResult run();

  // --- Services for the profiling runtime ---------------------------------

  hw::Machine &machine() { return Machine; }
  ir::Module &module() { return M; }

  /// Depth of the call stack (1 while main runs).
  size_t frameDepth() const { return Frames.size(); }
  const ir::Function *currentFunction() const {
    return Frames.empty() ? nullptr : Frames.back().F;
  }

  /// Register access in the current frame.
  uint64_t reg(ir::Reg R) const;
  void setReg(ir::Reg R, uint64_t Value);

  /// Bump-allocates in the simulated program heap.
  uint64_t heapAlloc(uint64_t Size);

  /// Entry code address of \p F (the paper's procedure identifier).
  uint64_t functionEntryAddr(const ir::Function &F) const {
    return EntryAddrs[F.id()];
  }

private:
  struct Frame {
    ir::Function *F;
    ir::BasicBlock *BB;
    size_t InstIdx;
    uint64_t Serial;
    /// Return continuation in the caller.
    ir::Reg RetDst;
    /// True for a frame pushed by signal delivery: returning from it
    /// resumes the interrupted instruction stream without advancing it.
    bool IsSignal = false;
    std::vector<uint64_t> Regs;
    /// Result-ready cycle per register, for the FP scoreboard.
    std::vector<uint64_t> Ready;
  };

  struct JmpBuf {
    size_t FrameIndex;
    uint64_t Serial;
    ir::BasicBlock *BB;
    size_t InstIdx;
    ir::Reg Dst;
  };

  void layout();
  void fail(RunResult &Result, const std::string &Message);
  uint64_t operandB(const Frame &FR, const ir::Inst &I) const {
    return I.BIsImm ? static_cast<uint64_t>(I.Imm) : FR.Regs[I.B];
  }
  void pushFrame(ir::Function *Callee, const Frame &Caller,
                 const ir::Inst &CallInst);
  void takeEdge(Frame &FR, const ir::BasicBlock &From, int SuccIndex,
                ir::BasicBlock *To);

  ir::Module &M;
  hw::Machine &Machine;
  ProfRuntime *Runtime = nullptr;
  Tracer *TracerHook = nullptr;
  uint64_t MaxInsts = uint64_t(1) << 34;
  std::vector<Frame> Frames;
  std::unordered_map<int64_t, JmpBuf> JmpBufs;
  std::vector<uint64_t> EntryAddrs;
  uint64_t HeapNext = layout::HeapBase;
  uint64_t NextSerial = 1;
  ir::Function *SignalHandler = nullptr;
  uint64_t SignalInterval = 0;
  uint64_t SignalCountdown = 0;
  uint64_t SignalsDelivered = 0;
  bool InSignal = false;
};

} // namespace vm
} // namespace pp

#endif // PP_VM_VM_H
