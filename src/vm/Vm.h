//===- vm/Vm.h - IR interpreter on the simulated machine -------*- C++ -*-===//
///
/// \file
/// Executes a module on a hw::Machine, driving the caches, branch
/// predictor, store buffer, FP scoreboard, and performance counters one
/// instruction at a time. Profiling pseudo-ops are dispatched to a
/// ProfRuntime; an optional Tracer observes control flow (tests use it to
/// build oracle profiles the instrumented measurements must match).
///
/// Two execution engines share one set of semantics: the reference
/// switch-on-Opcode interpreter (the semantic oracle) and a predecoded,
/// direct-threaded engine that lowers each function once into a flat
/// DecodedInst stream (see Predecoder.h). Both drive the Machine through
/// identical event sequences, so every RunResult, counter vector, path
/// profile, and CCT export is bit-identical between them —
/// tests/EngineEquivalenceTest.cpp enforces exactly that.
///
//===----------------------------------------------------------------------===//

#ifndef PP_VM_VM_H
#define PP_VM_VM_H

#include "hw/Machine.h"
#include "ir/Module.h"

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace pp {
namespace vm {

class Vm;
struct DecodedFunction;
class Predecoder;

/// Which interpretation engine a Vm runs.
enum class Engine : uint8_t {
  /// The original switch-dispatch interpreter; kept as the semantic oracle.
  Reference,
  /// The predecoded threaded-dispatch engine (computed goto on GCC/Clang,
  /// portable switch fallback elsewhere).
  Threaded,
};

/// Short engine label ("reference"/"threaded") for fingerprints and logs.
const char *engineName(Engine E);

/// The process-wide engine choice: $PP_VM_ENGINE=reference|threaded,
/// default threaded. Parsed once; an unknown value warns on stderr and
/// falls back to the default.
Engine defaultEngine();

/// Callbacks the profiling runtime implements (src/prof). The VM invokes
/// execOp for every Opcode with isProfRuntimeOp(); onFrameUnwound fires for
/// every frame a longjmp discards, so the runtime can pop its shadow state
/// the way the paper's exception discussion requires (§4.2).
class ProfRuntime {
public:
  /// A pre-bound pseudo-op handler: the predecoder resolves each profiling
  /// pseudo-op to one of these once, so the threaded engine's dispatch
  /// skips the runtime's per-execution opcode switch.
  using HookFn = void (*)(ProfRuntime &RT, Vm &VM, const ir::Inst &I);

  virtual ~ProfRuntime();
  virtual void execOp(Vm &VM, const ir::Inst &I) = 0;
  /// Resolves the handler for \p I at predecode time. The default binding
  /// is a thunk that calls execOp; src/prof overrides it with per-opcode
  /// trampolines.
  virtual HookFn bindOp(const ir::Inst &I);
  virtual void onFrameUnwound(Vm &VM, const ir::Function &F) = 0;
  /// A signal handler is about to run / has returned. The CCT gives signal
  /// handlers their own root slot ("the CCT would need multiple roots",
  /// §4.2), so the runtime repoints the gCSP for the handler's duration.
  virtual void onSignalDeliver(Vm &VM) {}
  virtual void onSignalReturn(Vm &VM) {}
};

/// Control-flow observer. Default implementations do nothing.
class Tracer {
public:
  virtual ~Tracer();
  /// A CFG edge was taken; SuccIndex is the canonical successor index, or
  /// -1 for leaving the function (return or longjmp).
  virtual void onEdgeTaken(const ir::BasicBlock &From, int SuccIndex) {}
  virtual void onEnterFunction(const ir::Function &F) {}
  virtual void onExitFunction(const ir::Function &F) {}
  /// A frame was discarded by longjmp without returning.
  virtual void onUnwindFunction(const ir::Function &F) {}
  /// A call is about to transfer to \p Callee.
  virtual void onCall(const ir::Function &Caller, const ir::Inst &CallInst,
                      const ir::Function &Callee) {}
};

/// Observer of counter-overflow traps (hw::PerfCounters::armOverflowTrap).
/// Traps are delivered at instruction boundaries, before the instruction
/// at \p Pc executes; the VM disarms the trap and charges
/// CostModel::TrapDeliveryCycles before invoking the handler, which
/// re-arms if it wants further traps. Handlers run as host code — they
/// must not push simulated frames.
class TrapHandler {
public:
  virtual ~TrapHandler();
  virtual void onOverflowTrap(Vm &VM, uint64_t Pc) = 0;
};

/// Outcome of a run.
struct RunResult {
  bool Ok = false;
  std::string Error;
  uint64_t ExitValue = 0;
  /// IR instructions the VM dispatched (excludes runtime-op charges).
  uint64_t ExecutedInsts = 0;
};

/// The interpreter. Construction lays the module out in the machine's
/// address space: code addresses are assigned (4 bytes per instruction) and
/// global initialisers are copied into memory.
class Vm {
public:
  Vm(ir::Module &M, hw::Machine &Machine);
  ~Vm();

  void setRuntime(ProfRuntime *R) { Runtime = R; }
  void setTracer(Tracer *T) { TracerHook = T; }
  /// Receives counter-overflow traps. Installing a handler disables
  /// cmp+branch superinstruction fusion in the threaded engine (a trap
  /// must not be deliverable at the hidden boundary inside a fused pair),
  /// exactly as installing a signal handler does.
  void setTrapHandler(TrapHandler *T) { TrapHook = T; }
  /// Selects the execution engine (default: defaultEngine(), i.e. the
  /// $PP_VM_ENGINE choice). Must be called before run().
  void setEngine(Engine E) { Eng = E; }
  Engine engine() const { return Eng; }
  /// Aborts the run with an error after this many executed instructions.
  void setMaxInsts(uint64_t Max) { MaxInsts = Max; }

  /// Delivers a simulated signal every \p IntervalInsts executed
  /// instructions: \p Handler (a zero-argument function) runs to
  /// completion, then the interrupted code resumes. Signals have
  /// resumption semantics and do not nest.
  void setSignal(ir::Function *Handler, uint64_t IntervalInsts) {
    assert(Handler && Handler->numParams() == 0 &&
           "signal handlers take no arguments");
    SignalHandler = Handler;
    SignalInterval = IntervalInsts;
    SignalCountdown = IntervalInsts;
  }

  /// Number of signals delivered so far.
  uint64_t signalsDelivered() const { return SignalsDelivered; }

  /// Number of counter-overflow traps delivered so far.
  uint64_t trapsDelivered() const { return TrapsDelivered; }

  /// Runs main() to completion.
  RunResult run();

  // --- Services for the profiling runtime ---------------------------------

  hw::Machine &machine() { return Machine; }
  ir::Module &module() { return M; }

  /// Depth of the call stack (1 while main runs).
  size_t frameDepth() const { return Frames.size(); }
  const ir::Function *currentFunction() const {
    return Frames.empty() ? nullptr : Frames.back().F;
  }

  /// Register access in the current frame.
  uint64_t reg(ir::Reg R) const;
  void setReg(ir::Reg R, uint64_t Value);

  /// Bump-allocates in the simulated program heap.
  uint64_t heapAlloc(uint64_t Size);

  /// Entry code address of \p F (the paper's procedure identifier).
  uint64_t functionEntryAddr(const ir::Function &F) const {
    return EntryAddrs[F.id()];
  }

private:
  struct Frame {
    ir::Function *F;
    ir::BasicBlock *BB;
    /// Reference engine: index into BB's instruction vector. Threaded
    /// engine: index into DF's flat decoded stream (BB stays null there).
    size_t InstIdx;
    /// The function's decoded stream (threaded engine only).
    const DecodedFunction *DF = nullptr;
    uint64_t Serial;
    /// Return continuation in the caller.
    ir::Reg RetDst;
    /// True for a frame pushed by signal delivery: returning from it
    /// resumes the interrupted instruction stream without advancing it.
    bool IsSignal = false;
    std::vector<uint64_t> Regs;
    /// Result-ready cycle per register, for the FP scoreboard.
    std::vector<uint64_t> Ready;
  };

  struct JmpBuf {
    size_t FrameIndex;
    uint64_t Serial;
    ir::BasicBlock *BB;
    size_t InstIdx;
    ir::Reg Dst;
  };

  void layout();
  /// The two engine bodies behind run().
  RunResult runReference();
  RunResult runThreaded();
  void fail(RunResult &Result, const std::string &Message);
  uint64_t operandB(const Frame &FR, const ir::Inst &I) const {
    return I.BIsImm ? static_cast<uint64_t>(I.Imm) : FR.Regs[I.B];
  }
  void pushFrame(ir::Function *Callee, const Frame &Caller,
                 const ir::Inst &CallInst);
  /// Takes a frame shell from the pool (register vectors keep their heap
  /// buffers) or default-constructs one; pushFrame overwrites every field.
  Frame takePooledFrame() {
    if (FramePool.empty())
      return Frame();
    Frame Shell = std::move(FramePool.back());
    FramePool.pop_back();
    return Shell;
  }
  /// Pops the current frame, parking its allocations for reuse — calls are
  /// hot enough that two heap round-trips per call/return pair matter.
  void recycleFrame() {
    FramePool.push_back(std::move(Frames.back()));
    Frames.pop_back();
  }
  void takeEdge(Frame &FR, const ir::BasicBlock &From, int SuccIndex,
                ir::BasicBlock *To);
  /// Delivers a pending counter-overflow trap at the boundary before the
  /// instruction at \p Pc: disarm, charge TrapDeliveryCycles, invoke the
  /// handler. Cold path, shared by both engines.
  void deliverOverflowTrap(uint64_t Pc);

  ir::Module &M;
  hw::Machine &Machine;
  ProfRuntime *Runtime = nullptr;
  Tracer *TracerHook = nullptr;
  TrapHandler *TrapHook = nullptr;
  Engine Eng = defaultEngine();
  uint64_t MaxInsts = uint64_t(1) << 34;
  std::vector<Frame> Frames;
  /// Popped frames, kept for their register-vector allocations.
  std::vector<Frame> FramePool;
  /// The decoded module, built on first threaded run (owned here so frame
  /// DF pointers stay valid for the Vm's lifetime).
  std::unique_ptr<Predecoder> Decoded;
  std::unordered_map<int64_t, JmpBuf> JmpBufs;
  std::vector<uint64_t> EntryAddrs;
  uint64_t HeapNext = layout::HeapBase;
  uint64_t NextSerial = 1;
  ir::Function *SignalHandler = nullptr;
  uint64_t SignalInterval = 0;
  uint64_t SignalCountdown = 0;
  uint64_t SignalsDelivered = 0;
  uint64_t TrapsDelivered = 0;
  bool InSignal = false;
};

} // namespace vm
} // namespace pp

#endif // PP_VM_VM_H
