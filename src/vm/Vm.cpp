//===- vm/Vm.cpp - IR interpreter on the simulated machine -----------------===//

#include "vm/Vm.h"

#include "vm/Predecoder.h"

#include "obs/Obs.h"
#include "support/Error.h"
#include "support/Format.h"

#include <bit>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>

using namespace pp;
using namespace pp::vm;
using ir::Inst;
using ir::Opcode;

ProfRuntime::~ProfRuntime() = default;
Tracer::~Tracer() = default;
TrapHandler::~TrapHandler() = default;

ProfRuntime::HookFn ProfRuntime::bindOp(const ir::Inst &) {
  // Generic binding: route through the virtual execOp. The profiling
  // runtime overrides bindOp with per-opcode trampolines.
  return [](ProfRuntime &RT, Vm &VM, const ir::Inst &I) { RT.execOp(VM, I); };
}

const char *pp::vm::engineName(Engine E) {
  return E == Engine::Reference ? "reference" : "threaded";
}

Engine pp::vm::defaultEngine() {
  static Engine Choice = [] {
    const char *Env = std::getenv("PP_VM_ENGINE");
    if (!Env || !*Env || std::strcmp(Env, "threaded") == 0)
      return Engine::Threaded;
    if (std::strcmp(Env, "reference") == 0)
      return Engine::Reference;
    std::fprintf(stderr,
                 "pp-vm: warning: ignoring unknown PP_VM_ENGINE='%s' "
                 "(want reference|threaded); using threaded\n",
                 Env);
    return Engine::Threaded;
  }();
  return Choice;
}

Vm::Vm(ir::Module &M, hw::Machine &Machine) : M(M), Machine(Machine) {
  layout();
}

Vm::~Vm() = default;

RunResult Vm::run() {
  RunResult Result =
      Eng == Engine::Threaded ? runThreaded() : runReference();
  // One add per run, not per instruction: the dispatch loops stay
  // untouched and the pipeline report still sees per-engine totals.
  obs::add(Eng == Engine::Threaded ? obs::Counter::VmInstsThreaded
                                   : obs::Counter::VmInstsReference,
           Result.ExecutedInsts);
  return Result;
}

void Vm::deliverOverflowTrap(uint64_t Pc) {
  // Hardware delivery order: the wrap disarms the trap (the handler
  // re-arms for the next period), the pipeline flush costs cycles, then
  // the handler observes the machine with the interrupted PC.
  Machine.counters().disarmOverflowTrap();
  Machine.addCycles(Machine.cost().TrapDeliveryCycles);
  ++TrapsDelivered;
  TrapHook->onOverflowTrap(*this, Pc);
}

void Vm::layout() {
  // Code layout: 4 bytes per instruction, functions back to back, blocks in
  // creation order (instrumentation-added blocks land at the function's
  // tail, growing its I-cache footprint like EEL's edited-code layout).
  uint64_t Addr = layout::CodeBase;
  EntryAddrs.assign(M.numFunctions(), 0);
  for (const auto &F : M.functions()) {
    EntryAddrs[F->id()] = Addr;
    for (const auto &BB : F->blocks()) {
      for (Inst &I : BB->insts()) {
        I.Addr = Addr;
        Addr += layout::BytesPerInst;
      }
    }
  }
  // Globals: initial contents into memory (addresses were assigned when the
  // globals were declared).
  for (size_t Index = 0; Index != M.numGlobals(); ++Index) {
    const ir::Global &G = M.global(Index);
    if (!G.Init.empty())
      Machine.memory().pokeBytes(G.Addr, G.Init.data(), G.Init.size());
  }
}

uint64_t Vm::reg(ir::Reg R) const {
  assert(!Frames.empty() && R < Frames.back().Regs.size());
  return Frames.back().Regs[R];
}

void Vm::setReg(ir::Reg R, uint64_t Value) {
  assert(!Frames.empty() && R < Frames.back().Regs.size());
  Frames.back().Regs[R] = Value;
}

uint64_t Vm::heapAlloc(uint64_t Size) {
  uint64_t Addr = (HeapNext + 15) & ~uint64_t(15);
  HeapNext = Addr + Size;
  if (HeapNext >= layout::CctHeapBase)
    reportFatalError("simulated program heap exhausted");
  return Addr;
}

void Vm::fail(RunResult &Result, const std::string &Message) {
  Result.Ok = false;
  Result.Error = Message;
  Frames.clear();
}

void Vm::pushFrame(ir::Function *Callee, const Frame &Caller,
                   const Inst &CallInst) {
  Frame NewFrame = takePooledFrame();
  NewFrame.F = Callee;
  NewFrame.BB = Callee->entry();
  NewFrame.InstIdx = 0;
  NewFrame.DF = nullptr;
  NewFrame.Serial = NextSerial++;
  NewFrame.RetDst = CallInst.Dst;
  NewFrame.IsSignal = false;
  NewFrame.Regs.assign(Callee->numRegs(), 0);
  NewFrame.Ready.assign(Callee->numRegs(), 0);
  assert(CallInst.Args.size() == Callee->numParams() && "arity mismatch");
  for (size_t Index = 0; Index != CallInst.Args.size(); ++Index)
    NewFrame.Regs[Index] = Caller.Regs[CallInst.Args[Index]];
  Frames.push_back(std::move(NewFrame));
}

void Vm::takeEdge(Frame &FR, const ir::BasicBlock &From, int SuccIndex,
                  ir::BasicBlock *To) {
  if (TracerHook)
    TracerHook->onEdgeTaken(From, SuccIndex);
  FR.BB = To;
  FR.InstIdx = 0;
}

RunResult Vm::runReference() {
  RunResult Result;
  ir::Function *Main = M.main();
  if (!Main) {
    Result.Error = "module has no main function";
    return Result;
  }

  Frames.clear();
  {
    Frame Initial;
    Initial.F = Main;
    Initial.BB = Main->entry();
    Initial.InstIdx = 0;
    Initial.Serial = NextSerial++;
    Initial.RetDst = ir::NoReg;
    Initial.Regs.assign(Main->numRegs(), 0);
    Initial.Ready.assign(Main->numRegs(), 0);
    Frames.push_back(std::move(Initial));
  }
  if (TracerHook)
    TracerHook->onEnterFunction(*Main);

  Result.Ok = true;
  while (!Frames.empty()) {
    // Signal delivery at instruction boundaries (resumption semantics,
    // non-nesting): the handler runs as a fresh frame and the interrupted
    // instruction executes after it returns.
    if (SignalHandler && !InSignal) {
      if (SignalCountdown == 0) {
        ++SignalsDelivered;
        SignalCountdown = SignalInterval;
        InSignal = true;
        if (Runtime)
          Runtime->onSignalDeliver(*this);
        if (TracerHook)
          TracerHook->onEnterFunction(*SignalHandler);
        Frame HandlerFrame;
        HandlerFrame.F = SignalHandler;
        HandlerFrame.BB = SignalHandler->entry();
        HandlerFrame.InstIdx = 0;
        HandlerFrame.Serial = NextSerial++;
        HandlerFrame.RetDst = ir::NoReg;
        HandlerFrame.IsSignal = true;
        HandlerFrame.Regs.assign(SignalHandler->numRegs(), 0);
        HandlerFrame.Ready.assign(SignalHandler->numRegs(), 0);
        Frames.push_back(std::move(HandlerFrame));
        continue;
      }
      // Tick the interval timer before the instruction executes (the
      // threaded engine's prologue agrees): delivery points are identical
      // either way, since the countdown decrements exactly once per
      // executed instruction between boundary checks. The timer pauses
      // while the handler runs, so a handler longer than the interval
      // cannot livelock the program.
      --SignalCountdown;
    }

    Frame &FR = Frames.back();
    assert(FR.InstIdx < FR.BB->insts().size() && "ran off end of block");
    const Inst &I = FR.BB->insts()[FR.InstIdx];

    // Counter-overflow traps fire at the same boundary: after signal
    // work, before the interrupted instruction issues (the threaded
    // prologue agrees, so delivery points are engine-identical).
    if (TrapHook && Machine.counters().overflowPending())
      deliverOverflowTrap(I.Addr);

    Machine.beginInst(I.Addr);
    if (++Result.ExecutedInsts > MaxInsts) {
      fail(Result, "instruction budget exhausted (likely an infinite loop)");
      break;
    }

    switch (I.Op) {
    case Opcode::Mov:
      FR.Regs[I.Dst] = operandB(FR, I);
      break;
    case Opcode::Add:
      FR.Regs[I.Dst] = FR.Regs[I.A] + operandB(FR, I);
      break;
    case Opcode::Sub:
      FR.Regs[I.Dst] = FR.Regs[I.A] - operandB(FR, I);
      break;
    case Opcode::Mul:
      FR.Regs[I.Dst] = FR.Regs[I.A] * operandB(FR, I);
      break;
    case Opcode::Div: {
      Machine.addCycles(Machine.cost().DivCycles);
      int64_t Lhs = static_cast<int64_t>(FR.Regs[I.A]);
      int64_t Rhs = static_cast<int64_t>(operandB(FR, I));
      if (Rhs == 0)
        FR.Regs[I.Dst] = 0;
      else if (Lhs == std::numeric_limits<int64_t>::min() && Rhs == -1)
        FR.Regs[I.Dst] = static_cast<uint64_t>(Lhs);
      else
        FR.Regs[I.Dst] = static_cast<uint64_t>(Lhs / Rhs);
      break;
    }
    case Opcode::Rem: {
      Machine.addCycles(Machine.cost().DivCycles);
      int64_t Lhs = static_cast<int64_t>(FR.Regs[I.A]);
      int64_t Rhs = static_cast<int64_t>(operandB(FR, I));
      if (Rhs == 0 || (Lhs == std::numeric_limits<int64_t>::min() && Rhs == -1))
        FR.Regs[I.Dst] = 0;
      else
        FR.Regs[I.Dst] = static_cast<uint64_t>(Lhs % Rhs);
      break;
    }
    case Opcode::And:
      FR.Regs[I.Dst] = FR.Regs[I.A] & operandB(FR, I);
      break;
    case Opcode::Or:
      FR.Regs[I.Dst] = FR.Regs[I.A] | operandB(FR, I);
      break;
    case Opcode::Xor:
      FR.Regs[I.Dst] = FR.Regs[I.A] ^ operandB(FR, I);
      break;
    case Opcode::Shl:
      FR.Regs[I.Dst] = FR.Regs[I.A] << (operandB(FR, I) & 63);
      break;
    case Opcode::Shr:
      FR.Regs[I.Dst] = FR.Regs[I.A] >> (operandB(FR, I) & 63);
      break;
    case Opcode::CmpEq:
      FR.Regs[I.Dst] = FR.Regs[I.A] == operandB(FR, I);
      break;
    case Opcode::CmpNe:
      FR.Regs[I.Dst] = FR.Regs[I.A] != operandB(FR, I);
      break;
    case Opcode::CmpLt:
      FR.Regs[I.Dst] = static_cast<int64_t>(FR.Regs[I.A]) <
                       static_cast<int64_t>(operandB(FR, I));
      break;
    case Opcode::CmpLe:
      FR.Regs[I.Dst] = static_cast<int64_t>(FR.Regs[I.A]) <=
                       static_cast<int64_t>(operandB(FR, I));
      break;

    case Opcode::FAdd:
    case Opcode::FSub:
    case Opcode::FMul:
    case Opcode::FDiv:
    case Opcode::FCmpLt:
    case Opcode::FCmpLe:
    case Opcode::FCmpEq: {
      // FP scoreboard: stall until both operands are ready.
      uint64_t ReadyAt = FR.Ready[I.A];
      if (!I.BIsImm)
        ReadyAt = std::max(ReadyAt, FR.Ready[I.B]);
      uint64_t Now = Machine.now();
      if (ReadyAt > Now)
        Machine.stall(hw::Event::FpStall, ReadyAt - Now);
      double Lhs = std::bit_cast<double>(FR.Regs[I.A]);
      double Rhs = std::bit_cast<double>(operandB(FR, I));
      uint64_t Value;
      uint64_t Latency = Machine.cost().FpLatency;
      switch (I.Op) {
      case Opcode::FAdd:
        Value = std::bit_cast<uint64_t>(Lhs + Rhs);
        break;
      case Opcode::FSub:
        Value = std::bit_cast<uint64_t>(Lhs - Rhs);
        break;
      case Opcode::FMul:
        Value = std::bit_cast<uint64_t>(Lhs * Rhs);
        break;
      case Opcode::FDiv:
        Value = std::bit_cast<uint64_t>(Lhs / Rhs);
        Latency = Machine.cost().FpDivLatency;
        break;
      case Opcode::FCmpLt:
        Value = Lhs < Rhs;
        Latency = 1;
        break;
      case Opcode::FCmpLe:
        Value = Lhs <= Rhs;
        Latency = 1;
        break;
      default: // FCmpEq
        Value = Lhs == Rhs;
        Latency = 1;
        break;
      }
      FR.Regs[I.Dst] = Value;
      FR.Ready[I.Dst] = Machine.now() + Latency;
      break;
    }
    case Opcode::IntToFp:
      FR.Regs[I.Dst] = std::bit_cast<uint64_t>(
          static_cast<double>(static_cast<int64_t>(FR.Regs[I.A])));
      break;
    case Opcode::FpToInt:
      FR.Regs[I.Dst] = static_cast<uint64_t>(
          static_cast<int64_t>(std::bit_cast<double>(FR.Regs[I.A])));
      break;

    case Opcode::Load: {
      uint64_t Addr =
          (I.A == ir::NoReg ? 0 : FR.Regs[I.A]) + static_cast<uint64_t>(I.Imm);
      if (Addr < layout::CodeBase) {
        fail(Result, formatString("load from unmapped address 0x%llx in %s",
                                  (unsigned long long)Addr,
                                  FR.F->name().c_str()));
        continue;
      }
      FR.Regs[I.Dst] = Machine.load(Addr, I.Size);
      FR.Ready[I.Dst] = Machine.now() + Machine.cost().LoadLatency;
      break;
    }
    case Opcode::Store: {
      uint64_t Addr =
          (I.A == ir::NoReg ? 0 : FR.Regs[I.A]) + static_cast<uint64_t>(I.Imm);
      if (Addr < layout::CodeBase) {
        fail(Result, formatString("store to unmapped address 0x%llx in %s",
                                  (unsigned long long)Addr,
                                  FR.F->name().c_str()));
        continue;
      }
      Machine.store(Addr, I.Size, operandB(FR, I));
      break;
    }
    case Opcode::Alloc:
      FR.Regs[I.Dst] = heapAlloc(operandB(FR, I));
      break;

    case Opcode::Br:
      takeEdge(FR, *FR.BB, 0, I.T1);
      continue;
    case Opcode::CondBr: {
      bool Taken = FR.Regs[I.A] != 0;
      Machine.condBranch(I.Addr, Taken);
      takeEdge(FR, *FR.BB, Taken ? 0 : 1, Taken ? I.T1 : I.T2);
      continue;
    }
    case Opcode::Switch: {
      uint64_t Index = FR.Regs[I.A];
      ir::BasicBlock *Target;
      int SuccIndex;
      if (Index < I.SwitchTargets.size()) {
        Target = I.SwitchTargets[Index];
        SuccIndex = static_cast<int>(Index) + 1;
      } else {
        Target = I.T1;
        SuccIndex = 0;
      }
      Machine.indirectBranch(I.Addr, Target->insts().front().Addr);
      takeEdge(FR, *FR.BB, SuccIndex, Target);
      continue;
    }
    case Opcode::Ret: {
      uint64_t Value = operandB(FR, I);
      if (TracerHook) {
        TracerHook->onEdgeTaken(*FR.BB, -1);
        TracerHook->onExitFunction(*FR.F);
      }
      ir::Reg Dst = FR.RetDst;
      bool WasSignal = FR.IsSignal;
      recycleFrame();
      if (WasSignal) {
        // Resume the interrupted instruction stream exactly where it was.
        InSignal = false;
        if (Runtime)
          Runtime->onSignalReturn(*this);
        continue;
      }
      if (Frames.empty()) {
        Result.ExitValue = Value;
        break;
      }
      Frame &Caller = Frames.back();
      if (Dst != ir::NoReg)
        Caller.Regs[Dst] = Value;
      ++Caller.InstIdx; // step past the call
      continue;
    }

    case Opcode::Call:
    case Opcode::ICall: {
      ir::Function *Callee;
      if (I.Op == Opcode::Call) {
        Callee = I.Callee;
      } else {
        uint64_t Id = FR.Regs[I.A];
        if (Id >= M.numFunctions()) {
          fail(Result,
               formatString("indirect call to invalid function id %llu in %s",
                            (unsigned long long)Id, FR.F->name().c_str()));
          continue;
        }
        Callee = M.function(Id);
        Machine.indirectBranch(I.Addr, EntryAddrs[Callee->id()]);
        if (Callee->numParams() != I.Args.size()) {
          fail(Result, formatString("indirect call arity mismatch: %s(%u) "
                                    "called with %zu args",
                                    Callee->name().c_str(),
                                    Callee->numParams(), I.Args.size()));
          continue;
        }
      }
      if (Frames.size() >= 100000) {
        fail(Result, "call stack overflow (runaway recursion)");
        continue;
      }
      if (TracerHook) {
        TracerHook->onCall(*FR.F, I, *Callee);
        TracerHook->onEnterFunction(*Callee);
      }
      pushFrame(Callee, FR, I);
      continue; // FR reference is invalidated by the push
    }

    case Opcode::Setjmp:
      JmpBufs[I.Imm] =
          JmpBuf{Frames.size() - 1, FR.Serial, FR.BB, FR.InstIdx, I.Dst};
      FR.Regs[I.Dst] = 0;
      break;
    case Opcode::Longjmp: {
      auto It = JmpBufs.find(I.Imm);
      if (It == JmpBufs.end()) {
        fail(Result, formatString("longjmp to unset buffer %lld",
                                  (long long)I.Imm));
        continue;
      }
      const JmpBuf &Buf = It->second;
      if (Buf.FrameIndex >= Frames.size() ||
          Frames[Buf.FrameIndex].Serial != Buf.Serial) {
        fail(Result, formatString("longjmp to dead frame (buffer %lld)",
                                  (long long)I.Imm));
        continue;
      }
      uint64_t Value = operandB(FR, I);
      if (TracerHook)
        TracerHook->onEdgeTaken(*FR.BB, -1);
      // Unwind every frame above the target without returning through it.
      while (Frames.size() - 1 > Buf.FrameIndex) {
        const ir::Function &Dead = *Frames.back().F;
        bool DeadWasSignal = Frames.back().IsSignal;
        if (Runtime)
          Runtime->onFrameUnwound(*this, Dead);
        if (TracerHook)
          TracerHook->onUnwindFunction(Dead);
        recycleFrame();
        if (DeadWasSignal) {
          InSignal = false;
          if (Runtime)
            Runtime->onSignalReturn(*this);
        }
      }
      Frame &Target = Frames.back();
      Target.BB = Buf.BB;
      Target.InstIdx = Buf.InstIdx + 1; // resume after the setjmp
      Target.Regs[Buf.Dst] = Value;
      continue;
    }

    case Opcode::RdPic:
      FR.Regs[I.Dst] = Machine.counters().readPics();
      break;
    case Opcode::WrPic:
      Machine.counters().writePics(operandB(FR, I));
      break;

    case Opcode::PathHashCommit:
    case Opcode::CctEnter:
    case Opcode::CctCall:
    case Opcode::CctExit:
    case Opcode::CctPathCommit:
    case Opcode::CctHwProbe:
      if (!Runtime) {
        fail(Result, "profiling pseudo-op executed without a runtime");
        continue;
      }
      Runtime->execOp(*this, I);
      break;

    case Opcode::NumOpcodes:
      unreachable("invalid opcode");
    }

    if (Frames.empty())
      break;
    ++Frames.back().InstIdx;
  }
  return Result;
}
