//===- vm/Predecoder.cpp - Predecoded instruction streams --------------------===//

#include "vm/Predecoder.h"

#include "support/Error.h"

#include <cassert>
#include <unordered_map>

using namespace pp;
using namespace pp::vm;
using ir::Inst;
using ir::Opcode;

Predecoder::Predecoder(ir::Module &M, ProfRuntime *RT, bool FuseCmpBr) {
  Funcs.resize(M.numFunctions());
  for (const auto &F : M.functions())
    decodeFunction(*F, RT, FuseCmpBr, Funcs[F->id()]);
}

namespace {

/// Maps a register-or-immediate opcode to its RR/RI decoded variant.
DOp splitRI(bool BIsImm, DOp RR, DOp RI) { return BIsImm ? RI : RR; }

/// The fused variant of a compare op, or NumDOps if \p Op is not a
/// fusable compare.
DOp fusedCmpBr(DOp Op) {
  switch (Op) {
  case DOp::CmpEqRR:
    return DOp::CmpEqRRBr;
  case DOp::CmpEqRI:
    return DOp::CmpEqRIBr;
  case DOp::CmpNeRR:
    return DOp::CmpNeRRBr;
  case DOp::CmpNeRI:
    return DOp::CmpNeRIBr;
  case DOp::CmpLtRR:
    return DOp::CmpLtRRBr;
  case DOp::CmpLtRI:
    return DOp::CmpLtRIBr;
  case DOp::CmpLeRR:
    return DOp::CmpLeRRBr;
  case DOp::CmpLeRI:
    return DOp::CmpLeRIBr;
  default:
    return DOp::NumDOps;
  }
}

} // namespace

void Predecoder::decodeFunction(ir::Function &F, ProfRuntime *RT,
                                bool FuseCmpBr, DecodedFunction &Out) {
  Out.F = &F;

  // Pass 1: stream offset of each block's first instruction. Blocks are
  // walked in creation order, matching the loader's address layout.
  std::unordered_map<const ir::BasicBlock *, uint32_t> BlockOffset;
  uint32_t Offset = 0;
  for (const auto &BB : F.blocks()) {
    BlockOffset[BB.get()] = Offset;
    Offset += static_cast<uint32_t>(BB->insts().size());
  }
  Out.Stream.reserve(Offset);
  Out.Extras.reserve(Offset);
  assert(F.numRegs() < 0xffff && "register numbers must fit 16 bits");

  // Pass 2: emit.
  for (const auto &BB : F.blocks()) {
    for (const Inst &I : BB->insts()) {
      DecodedInst D;
      D.Flags = (I.BIsImm ? DecodedInst::FlagBIsImm : 0) |
                static_cast<uint8_t>(I.Size << 1);
      D.Dst = static_cast<uint16_t>(I.Dst);
      D.A = static_cast<uint16_t>(I.A);
      D.B = static_cast<uint16_t>(I.B);
      D.Imm = I.Imm;
      assert(I.Addr <= 0xffffffffull && "simulated code address exceeds 32 bits");
      D.Addr = static_cast<uint32_t>(I.Addr);
      DecodedExtra E;
      E.Src = &I;
      E.From = BB.get();

      switch (I.Op) {
      case Opcode::Mov:
        D.Op = splitRI(I.BIsImm, DOp::MovR, DOp::MovI);
        break;
      case Opcode::Add:
        D.Op = splitRI(I.BIsImm, DOp::AddRR, DOp::AddRI);
        break;
      case Opcode::Sub:
        D.Op = splitRI(I.BIsImm, DOp::SubRR, DOp::SubRI);
        break;
      case Opcode::Mul:
        D.Op = splitRI(I.BIsImm, DOp::MulRR, DOp::MulRI);
        break;
      case Opcode::Div:
        D.Op = splitRI(I.BIsImm, DOp::DivRR, DOp::DivRI);
        break;
      case Opcode::Rem:
        D.Op = splitRI(I.BIsImm, DOp::RemRR, DOp::RemRI);
        break;
      case Opcode::And:
        D.Op = splitRI(I.BIsImm, DOp::AndRR, DOp::AndRI);
        break;
      case Opcode::Or:
        D.Op = splitRI(I.BIsImm, DOp::OrRR, DOp::OrRI);
        break;
      case Opcode::Xor:
        D.Op = splitRI(I.BIsImm, DOp::XorRR, DOp::XorRI);
        break;
      case Opcode::Shl:
        D.Op = splitRI(I.BIsImm, DOp::ShlRR, DOp::ShlRI);
        break;
      case Opcode::Shr:
        D.Op = splitRI(I.BIsImm, DOp::ShrRR, DOp::ShrRI);
        break;
      case Opcode::CmpEq:
        D.Op = splitRI(I.BIsImm, DOp::CmpEqRR, DOp::CmpEqRI);
        break;
      case Opcode::CmpNe:
        D.Op = splitRI(I.BIsImm, DOp::CmpNeRR, DOp::CmpNeRI);
        break;
      case Opcode::CmpLt:
        D.Op = splitRI(I.BIsImm, DOp::CmpLtRR, DOp::CmpLtRI);
        break;
      case Opcode::CmpLe:
        D.Op = splitRI(I.BIsImm, DOp::CmpLeRR, DOp::CmpLeRI);
        break;

      case Opcode::FAdd:
        D.Op = DOp::FAdd;
        break;
      case Opcode::FSub:
        D.Op = DOp::FSub;
        break;
      case Opcode::FMul:
        D.Op = DOp::FMul;
        break;
      case Opcode::FDiv:
        D.Op = DOp::FDiv;
        break;
      case Opcode::FCmpLt:
        D.Op = DOp::FCmpLt;
        break;
      case Opcode::FCmpLe:
        D.Op = DOp::FCmpLe;
        break;
      case Opcode::FCmpEq:
        D.Op = DOp::FCmpEq;
        break;
      case Opcode::IntToFp:
        D.Op = DOp::IntToFp;
        break;
      case Opcode::FpToInt:
        D.Op = DOp::FpToInt;
        break;

      case Opcode::Load:
        D.Op = I.A == ir::NoReg ? DOp::LoadAbs : DOp::LoadReg;
        break;
      case Opcode::Store:
        D.Op = I.A == ir::NoReg ? DOp::StoreAbs : DOp::StoreReg;
        break;
      case Opcode::Alloc:
        D.Op = DOp::Alloc;
        break;

      case Opcode::Br:
        D.Op = DOp::Br;
        D.T1 = BlockOffset.at(I.T1);
        break;
      case Opcode::CondBr:
        D.Op = DOp::CondBr;
        D.T1 = BlockOffset.at(I.T1);
        D.T2 = BlockOffset.at(I.T2);
        break;
      case Opcode::Switch:
        D.Op = DOp::Switch;
        D.T1 = BlockOffset.at(I.T1);
        D.T2 = static_cast<uint32_t>(Out.SwitchPool.size());
        D.NTargets = static_cast<uint32_t>(I.SwitchTargets.size());
        for (const ir::BasicBlock *Target : I.SwitchTargets)
          Out.SwitchPool.push_back(BlockOffset.at(Target));
        break;
      case Opcode::Ret:
        D.Op = DOp::Ret;
        break;

      case Opcode::Call:
        D.Op = DOp::Call;
        E.Callee = I.Callee;
        break;
      case Opcode::ICall:
        D.Op = DOp::ICall;
        break;

      case Opcode::Setjmp:
        D.Op = DOp::Setjmp;
        break;
      case Opcode::Longjmp:
        D.Op = DOp::Longjmp;
        break;

      case Opcode::RdPic:
        D.Op = DOp::RdPic;
        break;
      case Opcode::WrPic:
        D.Op = DOp::WrPic;
        break;

      case Opcode::PathHashCommit:
      case Opcode::CctEnter:
      case Opcode::CctCall:
      case Opcode::CctExit:
      case Opcode::CctPathCommit:
      case Opcode::CctHwProbe:
        // Bind the runtime hook once here; the no-runtime case becomes a
        // decoded op that fails on execution (not eagerly at decode —
        // the reference engine only fails if the op actually runs).
        if (RT) {
          D.Op = DOp::Prof;
          E.Hook = RT->bindOp(I);
        } else {
          D.Op = DOp::ProfNoRuntime;
        }
        break;

      case Opcode::NumOpcodes:
        unreachable("invalid opcode");
      }
      Out.Stream.push_back(D);
      Out.Extras.push_back(E);
    }
  }

  // Fusion pass: a compare feeding the immediately following CondBr
  // becomes one superinstruction. The CondBr keeps its slot (so branch
  // targets and addresses are unchanged and the fused handler reads its
  // operands from the next slot); only the compare's opcode is rewritten.
  // A compare is never a terminator, so Stream[I + 1] is always the same
  // block's next instruction.
  if (FuseCmpBr) {
    for (size_t I = 0; I + 1 < Out.Stream.size(); ++I) {
      DecodedInst &Cmp = Out.Stream[I];
      const DecodedInst &Br = Out.Stream[I + 1];
      DOp Fused = fusedCmpBr(Cmp.Op);
      if (Fused != DOp::NumDOps && Br.Op == DOp::CondBr && Br.A == Cmp.Dst)
        Cmp.Op = Fused;
    }
  }
}
