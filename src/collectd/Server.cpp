//===- collectd/Server.cpp - epoll socket front end ---------------------------===//

#include "collectd/Server.h"

#include "obs/Obs.h"

#include <arpa/inet.h>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace pp;
using namespace pp::collectd;

namespace {

uint64_t nowMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

bool setNonBlocking(int Fd) {
  int Flags = fcntl(Fd, F_GETFL, 0);
  return Flags >= 0 && fcntl(Fd, F_SETFL, Flags | O_NONBLOCK) == 0;
}

} // namespace

/// Per-socket session state. Owned by the event thread; nothing here is
/// shared.
struct Server::Connection {
  int Fd = -1;
  FrameDecoder Decoder;
  /// Encoded replies not yet accepted by the kernel; WriteStart is the
  /// sent prefix (compacted when fully drained).
  std::vector<uint8_t> WriteBuf;
  size_t WriteStart = 0;
  /// Session phase: HELLO seen and accepted.
  bool HelloDone = false;
  /// Tenant bound by HELLO; stamped on every upload.
  std::string Tenant;
  /// Peer finished sending (EOF) — flush replies, then close.
  bool ReadEof = false;
  /// Fatal protocol error queued a REJECT — close once it flushes.
  bool Failing = false;
  /// Reads paused by write backpressure.
  bool ReadPaused = false;
  /// Current epoll interest, so updateInterest only syscalls on change.
  uint32_t Interest = 0;
  uint64_t LastActiveMs = 0;
  uint64_t ConnBytesIn = 0;
  /// One span covering the whole session; Work = bytes read.
  std::unique_ptr<obs::SpanScope> Span;

  size_t pendingWrite() const { return WriteBuf.size() - WriteStart; }
};

Server::Server(ServerConfig C, IngestService &Service)
    : Cfg(std::move(C)), Service(Service) {}

Server::~Server() { stop(); }

bool Server::start(std::string &Error) {
  ListenFd = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (ListenFd < 0) {
    Error = std::string("socket: ") + strerror(errno);
    return false;
  }
  int One = 1;
  setsockopt(ListenFd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));

  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(Cfg.Port);
  if (inet_pton(AF_INET, Cfg.BindAddress.c_str(), &Addr.sin_addr) != 1) {
    Error = "bad bind address: " + Cfg.BindAddress;
    stop();
    return false;
  }
  if (bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    Error = std::string("bind: ") + strerror(errno);
    stop();
    return false;
  }
  if (listen(ListenFd, Cfg.Backlog) != 0) {
    Error = std::string("listen: ") + strerror(errno);
    stop();
    return false;
  }

  socklen_t Len = sizeof(Addr);
  if (getsockname(ListenFd, reinterpret_cast<sockaddr *>(&Addr), &Len) != 0) {
    Error = std::string("getsockname: ") + strerror(errno);
    stop();
    return false;
  }
  BoundPort = ntohs(Addr.sin_port);

  EpollFd = epoll_create1(EPOLL_CLOEXEC);
  WakeFd = eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (EpollFd < 0 || WakeFd < 0) {
    Error = std::string("epoll/eventfd: ") + strerror(errno);
    stop();
    return false;
  }
  epoll_event Ev{};
  Ev.events = EPOLLIN;
  Ev.data.fd = ListenFd;
  epoll_ctl(EpollFd, EPOLL_CTL_ADD, ListenFd, &Ev);
  Ev.data.fd = WakeFd;
  epoll_ctl(EpollFd, EPOLL_CTL_ADD, WakeFd, &Ev);

  Stopping.store(false, std::memory_order_relaxed);
  EventThread = std::thread([this] { eventLoop(); });
  return true;
}

void Server::stop() {
  if (EventThread.joinable()) {
    Stopping.store(true, std::memory_order_relaxed);
    uint64_t One = 1;
    ssize_t Ignored = write(WakeFd, &One, sizeof(One));
    (void)Ignored;
    EventThread.join();
  }
  // The event thread is gone; tear down whatever remains.
  for (auto &Entry : Connections)
    close(Entry.second->Fd);
  Connections.clear();
  for (int *Fd : {&ListenFd, &EpollFd, &WakeFd}) {
    if (*Fd >= 0)
      close(*Fd);
    *Fd = -1;
  }
}

ServerStats Server::stats() const {
  std::lock_guard<std::mutex> Lock(StatsMu);
  return Stats;
}

void Server::eventLoop() {
  // Half the idle timeout bounds the sweep latency; one second bounds
  // the shutdown latency when idle closing is off.
  int TimeoutMs = 1000;
  if (Cfg.IdleTimeoutMs)
    TimeoutMs = static_cast<int>(
        std::min<uint64_t>(1000, std::max<uint64_t>(1, Cfg.IdleTimeoutMs / 2)));

  epoll_event Events[64];
  while (!Stopping.load(std::memory_order_relaxed)) {
    int N = epoll_wait(EpollFd, Events, 64, TimeoutMs);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      break;
    }
    for (int Index = 0; Index != N; ++Index) {
      int Fd = Events[Index].data.fd;
      uint32_t Mask = Events[Index].events;
      if (Fd == WakeFd) {
        uint64_t Count;
        ssize_t Ignored = read(WakeFd, &Count, sizeof(Count));
        (void)Ignored;
        continue;
      }
      if (Fd == ListenFd) {
        acceptReady();
        continue;
      }
      // The connection may have been closed by an earlier event in this
      // same batch; look it up fresh.
      auto It = Connections.find(Fd);
      if (It == Connections.end())
        continue;
      Connection &Conn = *It->second;
      if (Mask & EPOLLOUT)
        writeReady(Conn);
      if (Connections.find(Fd) == Connections.end())
        continue;
      if (Mask & (EPOLLIN | EPOLLHUP | EPOLLERR))
        readReady(Conn);
    }
    if (Cfg.IdleTimeoutMs)
      sweepIdle(nowMs());
  }
}

void Server::acceptReady() {
  for (;;) {
    int Fd = accept4(ListenFd, nullptr, nullptr,
                     SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (Fd < 0) {
      if (errno == EINTR)
        continue;
      return; // EAGAIN or transient accept failure: wait for the next wake
    }
    int One = 1;
    setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
    if (Cfg.SendBufferBytes)
      setsockopt(Fd, SOL_SOCKET, SO_SNDBUF, &Cfg.SendBufferBytes,
                 sizeof(Cfg.SendBufferBytes));

    auto Conn = std::make_unique<Connection>();
    Conn->Fd = Fd;
    Conn->Decoder = FrameDecoder(Cfg.MaxPayloadBytes);
    Conn->LastActiveMs = nowMs();
    Conn->Span = std::make_unique<obs::SpanScope>("collectd", "serve",
                                                  "conn", /*Work=*/0);
    Conn->Interest = EPOLLIN;
    epoll_event Ev{};
    Ev.events = Conn->Interest;
    Ev.data.fd = Fd;
    epoll_ctl(EpollFd, EPOLL_CTL_ADD, Fd, &Ev);
    Connections[Fd] = std::move(Conn);

    obs::add(obs::Counter::CollectdNetConns);
    std::lock_guard<std::mutex> Lock(StatsMu);
    ++Stats.ConnectionsAccepted;
    Stats.OpenConnections = Connections.size();
  }
}

void Server::updateInterest(Connection &Conn) {
  uint32_t Want = 0;
  if (!Conn.ReadEof && !Conn.ReadPaused && !Conn.Failing)
    Want |= EPOLLIN;
  if (Conn.pendingWrite())
    Want |= EPOLLOUT;
  if (Want == Conn.Interest)
    return;
  Conn.Interest = Want;
  epoll_event Ev{};
  Ev.events = Want;
  Ev.data.fd = Conn.Fd;
  epoll_ctl(EpollFd, EPOLL_CTL_MOD, Conn.Fd, &Ev);
}

void Server::readReady(Connection &Conn) {
  int Fd = Conn.Fd;
  uint8_t Chunk[64 * 1024];
  bool SawEof = false;
  for (;;) {
    ssize_t Got = recv(Fd, Chunk, sizeof(Chunk), 0);
    if (Got < 0) {
      if (errno == EINTR)
        continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK)
        break;
      closeConnection(Fd); // reset underfoot
      return;
    }
    if (Got == 0) {
      SawEof = true;
      break;
    }
    Conn.LastActiveMs = nowMs();
    Conn.ConnBytesIn += static_cast<uint64_t>(Got);
    Conn.Decoder.feed(Chunk, static_cast<size_t>(Got));
    obs::add(obs::Counter::CollectdNetBytesIn, static_cast<uint64_t>(Got));
    {
      std::lock_guard<std::mutex> Lock(StatsMu);
      Stats.BytesIn += static_cast<uint64_t>(Got);
    }

    Frame F;
    WireStatus Status;
    while ((Status = Conn.Decoder.next(F)) == WireStatus::Ok) {
      obs::add(obs::Counter::CollectdNetFramesIn);
      {
        std::lock_guard<std::mutex> Lock(StatsMu);
        ++Stats.FramesIn;
      }
      handleFrame(Conn, F);
      // handleFrame may have closed the connection (protocol error with
      // an empty write queue); Conn is gone then.
      if (Connections.find(Fd) == Connections.end())
        return;
      if (Conn.Failing)
        break;
    }
    if (Status != WireStatus::NeedMore && !Conn.Failing) {
      failStream(Conn, Status);
      if (Connections.find(Fd) == Connections.end())
        return;
    }
    if (Conn.Failing || Conn.ReadPaused)
      break;
  }

  if (Connections.find(Fd) == Connections.end())
    return;
  if (SawEof) {
    Conn.ReadEof = true;
    if (!Conn.pendingWrite()) {
      closeConnection(Fd);
      return;
    }
  }
  Conn.Span->setWork(Conn.ConnBytesIn);
  updateInterest(Conn);
}

void Server::writeReady(Connection &Conn) {
  int Fd = Conn.Fd;
  while (Conn.pendingWrite()) {
    ssize_t Sent = send(Fd, Conn.WriteBuf.data() + Conn.WriteStart,
                        Conn.pendingWrite(), MSG_NOSIGNAL);
    if (Sent < 0) {
      if (errno == EINTR)
        continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK)
        break;
      closeConnection(Fd);
      return;
    }
    Conn.WriteStart += static_cast<size_t>(Sent);
    obs::add(obs::Counter::CollectdNetBytesOut, static_cast<uint64_t>(Sent));
    std::lock_guard<std::mutex> Lock(StatsMu);
    Stats.BytesOut += static_cast<uint64_t>(Sent);
  }
  if (!Conn.pendingWrite()) {
    Conn.WriteBuf.clear();
    Conn.WriteStart = 0;
    if (Conn.Failing || Conn.ReadEof) {
      closeConnection(Fd);
      return;
    }
  }
  // Resume reading once the queued replies drain below half the limit —
  // hysteresis so a connection near the edge does not thrash.
  if (Conn.ReadPaused && Conn.pendingWrite() < Cfg.WriteBufferLimit / 2)
    Conn.ReadPaused = false;
  Conn.LastActiveMs = nowMs();
  updateInterest(Conn);
}

void Server::sendFrame(Connection &Conn, const Frame &F) {
  int Fd = Conn.Fd;
  std::vector<uint8_t> Bytes = encodeFrame(F);
  Conn.WriteBuf.insert(Conn.WriteBuf.end(), Bytes.begin(), Bytes.end());
  obs::add(obs::Counter::CollectdNetFramesOut);
  {
    std::lock_guard<std::mutex> Lock(StatsMu);
    ++Stats.FramesOut;
  }
  // Optimistic flush: most replies fit the socket buffer and never need
  // an EPOLLOUT round trip. It may close the connection (send error);
  // Conn must not be touched after that.
  writeReady(Conn);
  if (Connections.find(Fd) == Connections.end())
    return;
  if (!Conn.ReadPaused && Conn.pendingWrite() > Cfg.WriteBufferLimit) {
    Conn.ReadPaused = true;
    std::lock_guard<std::mutex> Lock(StatsMu);
    ++Stats.ReadPauses;
  }
}

void Server::failStream(Connection &Conn, WireStatus Status) {
  obs::add(obs::Counter::CollectdNetProtocolErrors);
  {
    std::lock_guard<std::mutex> Lock(StatsMu);
    ++Stats.ProtocolErrors;
  }
  Conn.Failing = true;
  int Fd = Conn.Fd;
  Frame Reject;
  Reject.Type = FrameType::Reject;
  Reject.Wire = Status;
  Reject.Message = std::string("stream error: ") + wireStatusName(Status);
  sendFrame(Conn, Reject);
  if (Connections.find(Fd) != Connections.end() && !Conn.pendingWrite())
    closeConnection(Fd);
}

void Server::handleFrame(Connection &Conn, Frame &F) {
  Conn.LastActiveMs = nowMs();

  // Session phase errors are REJECTs with a message, then a close: the
  // peer is speaking valid frames in an invalid order.
  auto Refuse = [&](uint64_t Serial, const std::string &Message) {
    obs::add(obs::Counter::CollectdNetProtocolErrors);
    {
      std::lock_guard<std::mutex> Lock(StatsMu);
      ++Stats.ProtocolErrors;
    }
    Conn.Failing = true;
    int Fd = Conn.Fd;
    Frame Reject;
    Reject.Type = FrameType::Reject;
    Reject.Serial = Serial;
    Reject.Message = Message;
    sendFrame(Conn, Reject);
    if (Connections.find(Fd) != Connections.end() && !Conn.pendingWrite())
      closeConnection(Fd);
  };

  switch (F.Type) {
  case FrameType::Hello: {
    if (Conn.HelloDone)
      return Refuse(0, "duplicate hello");
    if (F.Protocol != WireVersion)
      return Refuse(0, "unsupported protocol " + std::to_string(F.Protocol));
    if (F.Tenant.empty())
      return Refuse(0, "hello names no tenant");
    Conn.HelloDone = true;
    Conn.Tenant = F.Tenant;
    Frame Ack;
    Ack.Type = FrameType::Ack;
    Ack.Text = "hello " + F.Tenant;
    sendFrame(Conn, Ack);
    return;
  }
  case FrameType::Upload: {
    if (!Conn.HelloDone)
      return Refuse(F.Serial, "hello required before upload");
    {
      std::lock_guard<std::mutex> Lock(StatsMu);
      ++Stats.Uploads;
    }
    Upload U;
    U.Tenant = Conn.Tenant;
    U.Window = F.Window;
    U.Bytes = std::move(F.Artifact);
    UploadResult Result = Service.ingestNow(std::move(U));
    Frame Reply;
    Reply.Serial = F.Serial;
    if (Result.Accepted) {
      Reply.Type = FrameType::Ack;
    } else {
      Reply.Type = FrameType::Reject;
      Reply.Reason = Result.Reason;
      Reply.Decode = Result.Decode;
      Reply.Message = rejectReasonName(Result.Reason);
    }
    sendFrame(Conn, Reply);
    return;
  }
  case FrameType::Query: {
    if (!Conn.HelloDone)
      return Refuse(F.Serial, "hello required before query");
    {
      std::lock_guard<std::mutex> Lock(StatsMu);
      ++Stats.Queries;
    }
    std::string Error;
    std::string Text;
    switch (F.Kind) {
    case QueryKind::TopPaths:
      Text = Service.queryTopPaths(F.Window, F.Limit, Error);
      break;
    case QueryKind::TopProcs:
      Text = Service.queryTopProcs(F.Window, F.Limit, Error);
      break;
    case QueryKind::CctStats:
      Text = Service.queryCctStats(F.Window, Error);
      break;
    }
    Frame Reply;
    Reply.Serial = F.Serial;
    if (!Error.empty()) {
      // A query for an absent window is an error for this request, not
      // for the session: reply typed and keep the connection.
      Reply.Type = FrameType::Reject;
      Reply.Message = Error;
    } else {
      Reply.Type = FrameType::Ack;
      Reply.Text = std::move(Text);
    }
    sendFrame(Conn, Reply);
    return;
  }
  case FrameType::Ack:
  case FrameType::Reject:
    // Server-to-client frames have no business arriving here.
    return Refuse(F.Serial, "unexpected server frame from client");
  }
}

void Server::closeConnection(int Fd) {
  auto It = Connections.find(Fd);
  if (It == Connections.end())
    return;
  It->second->Span->setWork(It->second->ConnBytesIn);
  Connections.erase(It);
  // Stats first, fd second: the close() wakes the peer, and a peer that
  // reads stats the moment it sees EOF must find them settled.
  {
    std::lock_guard<std::mutex> Lock(StatsMu);
    ++Stats.ConnectionsClosed;
    Stats.OpenConnections = Connections.size();
  }
  close(Fd);
}

void Server::sweepIdle(uint64_t NowMs) {
  std::vector<int> Stale;
  for (auto &Entry : Connections)
    if (NowMs - Entry.second->LastActiveMs >= Cfg.IdleTimeoutMs)
      Stale.push_back(Entry.first);
  for (int Fd : Stale) {
    obs::add(obs::Counter::CollectdNetIdleClosed);
    {
      std::lock_guard<std::mutex> Lock(StatsMu);
      ++Stats.IdleClosed;
    }
    closeConnection(Fd);
  }
}
