//===- collectd/MergeTree.h - Windowed incremental merging -----*- C++ -*-===//
///
/// \file
/// The fleet collector's per-window accumulator: an LSM-style tree of
/// profile artifacts. Accepted uploads land in level 0; when a level
/// reaches the fanout it is compacted — merged into one artifact
/// (profdb::mergeAll) that is pushed to the next level — so resident
/// memory is O(fanout * log N) artifacts for N accepted uploads, not
/// O(N).
///
/// Determinism: because pairwise artifact merging is associative and
/// commutative with canonical re-emission (see profdb/Merge.h), the fold
/// of a window is bit-identical for any upload arrival order, any
/// compaction grouping, and any merge thread count. CollectdTest pins
/// this by shuffling arrivals and comparing encoded bytes.
///
//===----------------------------------------------------------------------===//

#ifndef PP_COLLECTD_MERGETREE_H
#define PP_COLLECTD_MERGETREE_H

#include "profdb/Artifact.h"

#include <memory>
#include <string>
#include <vector>

namespace pp {
namespace collectd {

/// One schema group's merge tree within one time window. Not
/// thread-safe; the ingest service serializes access per window.
class MergeTree {
public:
  /// \p Fanout artifacts per level before a compaction (clamped to >= 2);
  /// \p MergeThreads is handed to mergeAll's reduction waves.
  explicit MergeTree(unsigned Fanout = 8, unsigned MergeThreads = 1);

  /// Folds \p A into the tree, compacting any level the add fills. The
  /// add is transactional: \p A is trial-merged against the running fold
  /// (which carries the union of every accepted leaf's structure) before
  /// any level is touched, and a compaction cascade commits only after
  /// every merge in the chain has succeeded. A merge-incompatible
  /// artifact — structural corruption that slipped past the decoder, or
  /// a shape the group key does not distinguish — therefore surfaces as
  /// false + \p Error on *this* add, and provably leaves the tree (and
  /// its folded bytes) exactly as if the artifact was never offered.
  bool add(profdb::Artifact A, std::string &Error);

  /// The fold of everything added so far: one artifact merging every
  /// leaf, maintained incrementally across adds (bit-identical to a flat
  /// mergeAll of the leaves by the associativity pinned in CollectdTest).
  /// Null (with \p Error set) only when the tree is empty.
  const profdb::Artifact *folded(std::string &Error);

  /// Total artifacts accepted into the tree.
  uint64_t leafCount() const { return Leaves; }
  /// Level compactions performed so far.
  uint64_t compactions() const { return Compactions; }
  /// Artifacts currently resident across all levels — the memory bound
  /// the LSM shape exists to enforce.
  size_t residentArtifacts() const;

private:
  unsigned Fanout;
  unsigned MergeThreads;
  /// Levels[0] holds raw uploads; Levels[i] holds merges of Fanout^i.
  std::vector<std::vector<profdb::Artifact>> Levels;
  uint64_t Leaves = 0;
  uint64_t Compactions = 0;
  /// The incremental fold of every accepted leaf — both what folded()
  /// serves and the admission witness add() trial-merges against.
  std::unique_ptr<profdb::Artifact> Fold;
};

} // namespace collectd
} // namespace pp

#endif // PP_COLLECTD_MERGETREE_H
