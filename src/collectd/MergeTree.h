//===- collectd/MergeTree.h - Windowed incremental merging -----*- C++ -*-===//
///
/// \file
/// The fleet collector's per-window accumulator: an LSM-style tree of
/// profile artifacts. Accepted uploads land in level 0; when a level
/// reaches the fanout it is compacted — merged into one artifact
/// (profdb::mergeAll) that is pushed to the next level — so resident
/// memory is O(fanout * log N) artifacts for N accepted uploads, not
/// O(N).
///
/// Determinism: because pairwise artifact merging is associative and
/// commutative with canonical re-emission (see profdb/Merge.h), the fold
/// of a window is bit-identical for any upload arrival order, any
/// compaction grouping, and any merge thread count. CollectdTest pins
/// this by shuffling arrivals and comparing encoded bytes.
///
//===----------------------------------------------------------------------===//

#ifndef PP_COLLECTD_MERGETREE_H
#define PP_COLLECTD_MERGETREE_H

#include "profdb/Artifact.h"

#include <memory>
#include <string>
#include <vector>

namespace pp {
namespace collectd {

/// One schema group's merge tree within one time window. Not
/// thread-safe; the ingest service serializes access per window.
class MergeTree {
public:
  /// \p Fanout artifacts per level before a compaction (clamped to >= 2);
  /// \p MergeThreads is handed to mergeAll's reduction waves.
  explicit MergeTree(unsigned Fanout = 8, unsigned MergeThreads = 1);

  /// Folds \p A into the tree, compacting any level the add fills. The
  /// caller has already verified \p A belongs to this tree's schema
  /// group, so a merge failure here is structural corruption that slipped
  /// past the decoder; it surfaces as false + \p Error.
  bool add(profdb::Artifact A, std::string &Error);

  /// The fold of everything added so far: one artifact merging every
  /// leaf. Cached until the next add. Null (with \p Error set) when the
  /// tree is empty or a fold merge fails.
  const profdb::Artifact *folded(std::string &Error);

  /// Total artifacts accepted into the tree.
  uint64_t leafCount() const { return Leaves; }
  /// Level compactions performed so far.
  uint64_t compactions() const { return Compactions; }
  /// Artifacts currently resident across all levels — the memory bound
  /// the LSM shape exists to enforce.
  size_t residentArtifacts() const;

private:
  unsigned Fanout;
  unsigned MergeThreads;
  /// Levels[0] holds raw uploads; Levels[i] holds merges of Fanout^i.
  std::vector<std::vector<profdb::Artifact>> Levels;
  uint64_t Leaves = 0;
  uint64_t Compactions = 0;
  std::unique_ptr<profdb::Artifact> Cache;
};

} // namespace collectd
} // namespace pp

#endif // PP_COLLECTD_MERGETREE_H
