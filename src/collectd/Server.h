//===- collectd/Server.h - epoll socket front end --------------*- C++ -*-===//
///
/// \file
/// The collector's socket front end: a non-blocking epoll event loop
/// that speaks the framed protocol of collectd/Wire.h and feeds decoded
/// uploads into an IngestService. One event thread owns every socket;
/// ingest verdicts are computed synchronously per frame (ingestNow), so
/// a client's ACK/REJECT replies come back in upload order on its own
/// connection.
///
/// Session shape, per connection:
///
///   1. HELLO first. It binds the connection to a tenant and pins the
///      protocol version; anything else before it is a typed REJECT and
///      a close.
///   2. UPLOAD frames flow through the ingest admission pipeline (rate
///      limit, decode, acquisition, expiry, quota, trial merge); each
///      gets an ACK or a REJECT that mirrors the typed RejectReason.
///   3. QUERY frames render the folded windows through the same
///      renderers pp-report uses; answers ride in ACK text.
///   4. EOF from the client closes the session after the replies flush.
///
/// Resource discipline — the part that lets thousands of clients share
/// one loop:
///
///   * Bounded reads. Each connection's decoder buffers at most one
///     maximal frame (length fields are validated from the ten header
///     bytes, before the payload is awaited), so per-connection read
///     memory is capped whatever a client sends.
///   * Write backpressure. Replies queue in a per-connection buffer;
///     when it exceeds WriteBufferLimit the server stops *reading* that
///     connection until the buffer drains below half — a slow reader
///     throttles itself, not the fleet.
///   * Idle timeouts. A connection with no traffic for IdleTimeoutMs is
///     closed and counted.
///   * Frame-level errors (bad magic, liar lengths, CRC mismatches) are
///     answered with a REJECT carrying the typed WireStatus, then the
///     stream is closed — framing after corruption is unrecoverable.
///
//===----------------------------------------------------------------------===//

#ifndef PP_COLLECTD_SERVER_H
#define PP_COLLECTD_SERVER_H

#include "collectd/Ingest.h"
#include "collectd/Wire.h"

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

namespace pp {
namespace obs {
class SpanScope;
} // namespace obs

namespace collectd {

struct ServerConfig {
  /// Dotted-quad address to bind; tests and the loopback bench use the
  /// default.
  std::string BindAddress = "127.0.0.1";
  /// 0 = ephemeral: the kernel picks, port() reports.
  uint16_t Port = 0;
  /// Per-frame payload ceiling handed to each connection's decoder.
  size_t MaxPayloadBytes = DefaultMaxPayloadBytes;
  /// Queued-reply bytes above which a connection stops being read until
  /// its writes drain below half of this.
  size_t WriteBufferLimit = 4u << 20;
  /// Connections silent for this long are closed; 0 disables.
  uint64_t IdleTimeoutMs = 30000;
  /// SO_SNDBUF for accepted sockets; 0 = kernel default. Small values
  /// make the kernel push back early, which is how the backpressure
  /// tests force the write path into its paused state deterministically.
  int SendBufferBytes = 0;
  /// listen(2) backlog.
  int Backlog = 511;
};

/// Event-loop counters. Read-side totals are exact; OpenConnections is a
/// snapshot.
struct ServerStats {
  uint64_t ConnectionsAccepted = 0;
  uint64_t ConnectionsClosed = 0;
  uint64_t IdleClosed = 0;
  uint64_t ProtocolErrors = 0;
  uint64_t FramesIn = 0;
  uint64_t FramesOut = 0;
  uint64_t BytesIn = 0;
  uint64_t BytesOut = 0;
  uint64_t Uploads = 0;
  uint64_t Queries = 0;
  /// Times write backpressure paused reading a connection.
  uint64_t ReadPauses = 0;
  size_t OpenConnections = 0;
};

class Server {
public:
  /// \p Service outlives the server and takes every decoded upload.
  Server(ServerConfig C, IngestService &Service);
  ~Server();

  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Binds, listens, and starts the event thread. False + \p Error on
  /// any socket-layer failure.
  bool start(std::string &Error);
  /// Closes every connection and joins the event thread (idempotent).
  void stop();

  /// The bound port (the kernel's pick when Port was 0); 0 before
  /// start().
  uint16_t port() const { return BoundPort; }

  ServerStats stats() const;

private:
  struct Connection;

  void eventLoop();
  void acceptReady();
  void readReady(Connection &Conn);
  void writeReady(Connection &Conn);
  void handleFrame(Connection &Conn, Frame &F);
  void sendFrame(Connection &Conn, const Frame &F);
  /// REJECT + close-after-flush for a frame-level stream error.
  void failStream(Connection &Conn, WireStatus Status);
  void closeConnection(int Fd);
  void sweepIdle(uint64_t NowMs);
  void updateInterest(Connection &Conn);

  ServerConfig Cfg;
  IngestService &Service;

  int ListenFd = -1;
  int EpollFd = -1;
  int WakeFd = -1;
  uint16_t BoundPort = 0;
  std::atomic<bool> Stopping{false};
  std::thread EventThread;

  /// Owned by the event thread; the map itself is only touched there.
  std::map<int, std::unique_ptr<Connection>> Connections;

  mutable std::mutex StatsMu;
  ServerStats Stats;
};

} // namespace collectd
} // namespace pp

#endif // PP_COLLECTD_SERVER_H
