//===- collectd/Wire.cpp - Framed upload protocol -----------------------------===//

#include "collectd/Wire.h"

#include "support/BinaryIO.h"
#include "support/Checksum.h"

#include <algorithm>

using namespace pp;
using namespace pp::collectd;

const char *collectd::wireStatusName(WireStatus S) {
  switch (S) {
  case WireStatus::Ok:
    return "ok";
  case WireStatus::NeedMore:
    return "need-more";
  case WireStatus::BadMagic:
    return "bad-magic";
  case WireStatus::BadVersion:
    return "bad-version";
  case WireStatus::BadType:
    return "bad-type";
  case WireStatus::FrameTooLarge:
    return "frame-too-large";
  case WireStatus::BadChecksum:
    return "bad-checksum";
  case WireStatus::Malformed:
    return "malformed";
  case WireStatus::TrailingBytes:
    return "trailing-bytes";
  }
  return "?";
}

namespace {

void appendU32(std::vector<uint8_t> &Out, uint32_t Value) {
  for (unsigned Index = 0; Index != 4; ++Index)
    Out.push_back(static_cast<uint8_t>(Value >> (8 * Index)));
}

uint32_t readU32(const uint8_t *Data) {
  uint32_t Value = 0;
  for (unsigned Index = 0; Index != 4; ++Index)
    Value |= uint32_t(Data[Index]) << (8 * Index);
  return Value;
}

/// Parses one frame's payload bytes into \p Out (whose Type is already
/// set from the header). Structural failures are Malformed; a payload
/// with unexplained bytes after the last field is TrailingBytes.
WireStatus decodePayload(const uint8_t *Data, size_t Size, Frame &Out) {
  ByteReader Reader(Data, Size);
  uint8_t Byte;
  switch (Out.Type) {
  case FrameType::Hello:
    if (!Reader.u64(Out.Protocol) || !Reader.str(Out.Tenant) ||
        !Reader.str(Out.Acquisition))
      return WireStatus::Malformed;
    break;
  case FrameType::Upload:
    if (!Reader.u64(Out.Serial) || !Reader.u64(Out.Window) ||
        !Reader.bytes(Out.Artifact))
      return WireStatus::Malformed;
    break;
  case FrameType::Ack:
    if (!Reader.u64(Out.Serial) || !Reader.str(Out.Text))
      return WireStatus::Malformed;
    break;
  case FrameType::Reject:
    if (!Reader.u64(Out.Serial) || !Reader.u8(Byte) ||
        Byte >= static_cast<uint8_t>(RejectReason::NumReasons))
      return WireStatus::Malformed;
    Out.Reason = static_cast<RejectReason>(Byte);
    if (!Reader.u8(Byte) ||
        Byte > static_cast<uint8_t>(profdb::DecodeStatus::TrailingBytes))
      return WireStatus::Malformed;
    Out.Decode = static_cast<profdb::DecodeStatus>(Byte);
    if (!Reader.u8(Byte) ||
        Byte > static_cast<uint8_t>(WireStatus::TrailingBytes))
      return WireStatus::Malformed;
    Out.Wire = static_cast<WireStatus>(Byte);
    if (!Reader.str(Out.Message))
      return WireStatus::Malformed;
    break;
  case FrameType::Query:
    if (!Reader.u64(Out.Serial) || !Reader.u8(Byte) ||
        Byte < static_cast<uint8_t>(QueryKind::TopPaths) ||
        Byte > static_cast<uint8_t>(QueryKind::CctStats))
      return WireStatus::Malformed;
    Out.Kind = static_cast<QueryKind>(Byte);
    if (!Reader.u64(Out.Window) || !Reader.u64(Out.Limit))
      return WireStatus::Malformed;
    break;
  }
  if (!Reader.atEnd())
    return WireStatus::TrailingBytes;
  return WireStatus::Ok;
}

} // namespace

std::vector<uint8_t> collectd::encodeFrame(const Frame &F) {
  ByteWriter Payload;
  switch (F.Type) {
  case FrameType::Hello:
    Payload.u64(F.Protocol);
    Payload.str(F.Tenant);
    Payload.str(F.Acquisition);
    break;
  case FrameType::Upload:
    Payload.u64(F.Serial);
    Payload.u64(F.Window);
    Payload.bytes(F.Artifact);
    break;
  case FrameType::Ack:
    Payload.u64(F.Serial);
    Payload.str(F.Text);
    break;
  case FrameType::Reject:
    Payload.u64(F.Serial);
    Payload.u8(static_cast<uint8_t>(F.Reason));
    Payload.u8(static_cast<uint8_t>(F.Decode));
    Payload.u8(static_cast<uint8_t>(F.Wire));
    Payload.str(F.Message);
    break;
  case FrameType::Query:
    Payload.u64(F.Serial);
    Payload.u8(static_cast<uint8_t>(F.Kind));
    Payload.u64(F.Window);
    Payload.u64(F.Limit);
    break;
  }

  std::vector<uint8_t> Out;
  Out.reserve(WireHeaderBytes + Payload.Bytes.size() + WireTrailerBytes);
  Out.insert(Out.end(), WireMagic, WireMagic + 4);
  Out.push_back(WireVersion);
  Out.push_back(static_cast<uint8_t>(F.Type));
  appendU32(Out, static_cast<uint32_t>(Payload.Bytes.size()));
  Out.insert(Out.end(), Payload.Bytes.begin(), Payload.Bytes.end());
  appendU32(Out, crc32(Out.data(), Out.size()));
  return Out;
}

void FrameDecoder::feed(const uint8_t *Data, size_t Size) {
  // Reclaim the consumed prefix before growing: the live bytes are
  // bounded by one frame, the history is not.
  if (Start) {
    Buffer.erase(Buffer.begin(),
                 Buffer.begin() + static_cast<ptrdiff_t>(Start));
    Start = 0;
  }
  Buffer.insert(Buffer.end(), Data, Data + Size);
}

WireStatus FrameDecoder::next(Frame &Out) {
  const uint8_t *Head = Buffer.data() + Start;
  size_t Avail = buffered();

  // Magic is checked on however many bytes are present: one garbage byte
  // is enough to know the stream is not speaking this protocol.
  for (size_t Index = 0; Index != std::min<size_t>(Avail, 4); ++Index)
    if (Head[Index] != WireMagic[Index])
      return WireStatus::BadMagic;
  if (Avail < WireHeaderBytes)
    return WireStatus::NeedMore;

  if (Head[4] != WireVersion)
    return WireStatus::BadVersion;
  uint8_t Type = Head[5];
  if (Type < static_cast<uint8_t>(FrameType::Hello) ||
      Type > static_cast<uint8_t>(FrameType::Query))
    return WireStatus::BadType;
  // The length ceiling is enforced here, from ten buffered header bytes,
  // before the payload is awaited or any allocation is sized from it —
  // a liar's 4 GiB length costs nothing.
  uint32_t PayloadLen = readU32(Head + 6);
  if (PayloadLen > MaxPayload)
    return WireStatus::FrameTooLarge;

  size_t Total = WireHeaderBytes + PayloadLen + WireTrailerBytes;
  if (Avail < Total)
    return WireStatus::NeedMore;

  uint32_t Want = readU32(Head + WireHeaderBytes + PayloadLen);
  if (crc32(Head, WireHeaderBytes + PayloadLen) != Want)
    return WireStatus::BadChecksum;

  Frame Parsed;
  Parsed.Type = static_cast<FrameType>(Type);
  WireStatus Status =
      decodePayload(Head + WireHeaderBytes, PayloadLen, Parsed);
  if (Status != WireStatus::Ok)
    return Status;

  Out = std::move(Parsed);
  Start += Total;
  if (Start == Buffer.size()) {
    Buffer.clear();
    Start = 0;
  }
  return WireStatus::Ok;
}
