//===- collectd/Ingest.h - Fleet artifact ingest service -------*- C++ -*-===//
///
/// \file
/// The continuous-profiling collector: a long-running service that
/// accepts encoded profile artifacts (.ppa bytes) uploaded by a fleet of
/// clients and folds them into per-window incremental merge trees
/// (collectd/MergeTree.h). The paper's tables are batch reports over one
/// run; this is the "always on" production shape — thousands of uploads
/// an hour, bounded memory, queries served from the folded windows.
///
/// Admission pipeline, per upload:
///
///   1. The bytes pass through the FaultInjector read seam, standing in
///      for network/disk corruption in flight.
///   2. decodeArtifact — every upload is untrusted; a typed DecodeStatus
///      rejects the upload, never the window.
///   3. Acquisition check — exact counts and sampled estimates must not
///      fold together, so an upload whose schema acquisition differs
///      from the service's is rejected (CrossAcquisition).
///   4. Per-(tenant, window) quota (charged to accepted uploads only).
///   5. Fold into the window's schema group (keyed by workload, scale,
///      schema, and program shape). The group's MergeTree trial-merges
///      the artifact against its running fold before committing it, so
///      an incompatibility the key cannot see (CCT edge structure,
///      hashed-table thresholds) rejects this upload at admission —
///      never a later one, and never the group's accepted contents.
///
/// Ingest runs on a thread pool behind a bounded queue: submit() blocks
/// for space (backpressure), trySubmit() refuses instead. Threads == 0
/// selects manual-pump mode — submissions only enqueue, drain() processes
/// them on the calling thread — which is what the deterministic tests
/// use.
///
/// Every fold is deterministic: the window's merged bytes are identical
/// for any arrival order, thread count, or compaction grouping (see
/// MergeTree.h), so a rejected upload provably leaves the window
/// byte-identical to a run that never saw it.
///
//===----------------------------------------------------------------------===//

#ifndef PP_COLLECTD_INGEST_H
#define PP_COLLECTD_INGEST_H

#include "collectd/MergeTree.h"

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace pp {
namespace collectd {

/// Why an upload was not folded into its window.
enum class RejectReason : unsigned {
  None = 0,
  /// The bytes failed decodeArtifact; UploadResult::Decode says how.
  Corrupt,
  /// The artifact's schema acquisition differs from the service's.
  CrossAcquisition,
  /// The (tenant, window) accepted-upload quota is exhausted.
  QuotaExceeded,
  /// The admission trial merge failed (structural corruption that passed
  /// the decoder, or a shape the group key does not distinguish); the
  /// upload is dropped at admission, the window survives byte-identical.
  MergeFailed,
  /// The tenant's token bucket is empty. Checked ahead of everything
  /// else — a rate-limited refusal costs no decode work.
  RateLimited,
  /// The upload names a window retention already persisted and dropped
  /// from residency; the window is closed to further uploads.
  WindowExpired,
  NumReasons
};

/// Human-readable name ("corrupt", "cross-acquisition", ...).
const char *rejectReasonName(RejectReason R);

/// One client upload: encoded artifact bytes bound for a time window.
struct Upload {
  std::string Tenant;
  uint64_t Window = 0;
  std::vector<uint8_t> Bytes;
};

/// The typed outcome of ingesting one upload.
struct UploadResult {
  bool Accepted = false;
  RejectReason Reason = RejectReason::None;
  /// Valid when Reason == Corrupt.
  profdb::DecodeStatus Decode = profdb::DecodeStatus::Ok;
};

struct IngestConfig {
  /// Ingest worker threads; 0 = manual-pump mode (drain() processes the
  /// queue on the calling thread — deterministic, used by tests).
  unsigned Threads = 4;
  /// Bounded queue depth; submit() blocks at capacity, trySubmit()
  /// refuses.
  size_t QueueCapacity = 1024;
  /// Accepted uploads allowed per (tenant, window); 0 = unlimited.
  uint64_t TenantWindowQuota = 0;
  /// MergeTree level fanout.
  unsigned Fanout = 8;
  /// Threads per mergeAll reduction wave.
  unsigned MergeThreads = 1;
  /// The acquisition this collector accepts ("exact" or "overflow").
  std::string Acquisition = "exact";
  /// Root for persist(): window folds land in StoreDir/w<window>/.
  /// Empty = memory-only.
  std::string StoreDir;
  /// Sustained per-tenant admission rate (uploads/second) enforced by a
  /// token bucket *ahead* of the per-window quota; 0 disables it. The
  /// quota caps how much of a window one tenant may own, the bucket caps
  /// how hard a tenant may hammer the service getting there.
  double TenantRatePerSec = 0;
  /// Bucket depth (burst allowance); 0 = max(1, TenantRatePerSec).
  double TenantRateBurst = 0;
  /// Monotonic nanosecond clock for the token buckets; null = the steady
  /// clock. Tests inject a manual clock to make refill deterministic.
  std::function<uint64_t()> RateClockNs;
  /// Resident-window cap: when more windows than this hold uploads, the
  /// oldest are persisted to StoreDir and dropped from memory (then
  /// closed to late uploads — WindowExpired). 0 = unlimited. A window
  /// that cannot be persisted (no StoreDir, write failure) is never
  /// dropped. Constructor default: $PP_COLLECTD_RETAIN_WINDOWS.
  size_t RetainWindows = 0;
};

/// Aggregate service counters. The totals (Submitted, Accepted,
/// Rejected, RejectedBy, Compactions) depend only on the set of
/// submitted uploads, never on worker interleaving — with one carve-out:
/// when TenantWindowQuota is set and uploads race over a shared quota,
/// *which* uploads win the remaining slots (and therefore the windows'
/// folded contents) follows admission order; only the counts are stable.
struct IngestStats {
  uint64_t Submitted = 0;
  uint64_t Accepted = 0;
  uint64_t Rejected = 0;
  uint64_t RejectedBy[static_cast<size_t>(RejectReason::NumReasons)] = {};
  /// trySubmit() refusals — backpressure, not upload verdicts.
  uint64_t Backpressured = 0;
  uint64_t Compactions = 0;
  uint64_t Queries = 0;
  size_t Windows = 0;
  /// Windows persisted and dropped from residency by RetainWindows.
  uint64_t WindowsExpired = 0;
  /// Times retention wanted to drop a window but could not persist it —
  /// the window stayed resident (unpersisted data is never dropped).
  uint64_t RetentionHeld = 0;
};

/// $PP_COLLECTD_RETAIN_WINDOWS via the strict env path (support/Env.h);
/// 0 (and unset, and junk-with-a-warning) = unlimited.
size_t retainWindowsFromEnv();

class IngestService {
public:
  explicit IngestService(IngestConfig C);
  /// Drains the queue and joins the workers.
  ~IngestService();

  IngestService(const IngestService &) = delete;
  IngestService &operator=(const IngestService &) = delete;

  /// Enqueues \p U, blocking while the queue is at capacity. In
  /// manual-pump mode there is no consumer to wait for, so a full queue
  /// pumps queued uploads inline on the calling thread instead of
  /// deadlocking.
  void submit(Upload U);
  /// Enqueues \p U unless the queue is at capacity; false = backpressure,
  /// the caller should retry later.
  bool trySubmit(Upload U);
  /// Blocks until every enqueued upload has been ingested. In
  /// manual-pump mode this processes the queue on the calling thread.
  void drain();

  /// Synchronous ingest on the calling thread, returning the typed
  /// verdict. The queued paths funnel into this.
  UploadResult ingestNow(Upload U);

  /// The hottest paths / procedures / CCT statistics of \p Window,
  /// rendered per schema group through the same profdb report code
  /// pp-report uses (so a collector answer is byte-comparable to a
  /// pp-report run over the same artifacts).
  std::string queryTopPaths(uint64_t Window, size_t Limit,
                            std::string &Error);
  std::string queryTopProcs(uint64_t Window, size_t Limit,
                            std::string &Error);
  std::string queryCctStats(uint64_t Window, std::string &Error);

  /// The encoded folded artifact of each schema group in \p Window, in
  /// group-key order — the byte-identity hook the determinism and
  /// rejection-isolation tests compare.
  std::vector<std::vector<uint8_t>> windowBytes(uint64_t Window,
                                                std::string &Error);

  /// Ascending ids of every window that has accepted at least one upload.
  std::vector<uint64_t> windows() const;

  IngestStats stats() const;

  /// Writes every window's folded groups to StoreDir/w<window>/ as
  /// ordinary .ppa artifact files (pp-report can load them directly).
  bool persist(std::string &Error);

private:
  struct Group {
    std::string Label; ///< workload name, for query headers
    MergeTree Tree;
    Group(const std::string &Label, unsigned Fanout, unsigned MergeThreads)
        : Label(Label), Tree(Fanout, MergeThreads) {}
  };
  using Window = std::map<std::string, Group>;

  void workerLoop();
  bool popUpload(Upload &Out);
  /// Renders \p Window group by group via \p Render; shared shape of the
  /// three queries.
  template <typename RenderFn>
  std::string queryWindow(uint64_t Window, std::string &Error,
                          RenderFn Render);
  /// Token-bucket check for \p Tenant (StateMu held). False = refuse.
  bool rateAllowLocked(const std::string &Tenant);
  /// Writes window \p Id's folded groups under StoreDir/w<Id>/ (StateMu
  /// held). Shared by persist() and retention expiry.
  bool persistWindowLocked(uint64_t Id, Window &W, std::string &Error);
  /// Persists and drops the oldest windows until at most RetainWindows
  /// remain resident (StateMu held). A window that cannot be persisted
  /// stays resident and stops the sweep.
  void enforceRetentionLocked();

  IngestConfig Cfg;

  mutable std::mutex QueueMu;
  std::condition_variable QueueNotEmpty;
  std::condition_variable QueueNotFull;
  std::deque<Upload> Queue;
  size_t InFlight = 0; ///< popped but not yet ingested
  bool Stopping = false;

  mutable std::mutex StateMu;
  std::map<uint64_t, Window> Windows;
  std::map<std::pair<std::string, uint64_t>, uint64_t> QuotaUsed;
  IngestStats Stats;
  /// Per-tenant token buckets (rate limiting).
  struct Bucket {
    double Tokens = 0;
    uint64_t LastNs = 0;
  };
  std::map<std::string, Bucket> Buckets;
  /// Retention watermark: every window id below this has been persisted
  /// and dropped; late uploads aimed under it reject as WindowExpired.
  uint64_t ExpiredBelow = 0;

  std::vector<std::thread> Workers;
};

} // namespace collectd
} // namespace pp

#endif // PP_COLLECTD_INGEST_H
