//===- collectd/MergeTree.cpp - Windowed incremental merging ------------------===//

#include "collectd/MergeTree.h"

#include "obs/Obs.h"
#include "profdb/Merge.h"

using namespace pp;
using namespace pp::collectd;

MergeTree::MergeTree(unsigned Fanout, unsigned MergeThreads)
    : Fanout(Fanout < 2 ? 2 : Fanout),
      MergeThreads(MergeThreads ? MergeThreads : 1) {}

bool MergeTree::add(profdb::Artifact A, std::string &Error) {
  if (Levels.empty())
    Levels.emplace_back();
  Levels[0].push_back(std::move(A));
  ++Leaves;
  Cache.reset();

  // Cascade compactions up the levels. A full level is merged into one
  // artifact on the next level, which may fill that level in turn.
  for (size_t Level = 0; Level != Levels.size(); ++Level) {
    if (Levels[Level].size() < Fanout)
      break;
    obs::SpanScope Span("collectd", "compact", "",
                        /*Work=*/Levels[Level].size(),
                        /*Items=*/Levels[Level].size());
    profdb::Artifact Merged;
    std::vector<profdb::Artifact> Inputs = std::move(Levels[Level]);
    Levels[Level].clear();
    if (!profdb::mergeAll(std::move(Inputs), Merged, Error, MergeThreads))
      return false;
    ++Compactions;
    obs::add(obs::Counter::CollectdCompactions);
    if (Level + 1 == Levels.size())
      Levels.emplace_back();
    Levels[Level + 1].push_back(std::move(Merged));
  }
  return true;
}

const profdb::Artifact *MergeTree::folded(std::string &Error) {
  if (Cache)
    return Cache.get();
  std::vector<profdb::Artifact> Resident;
  for (const std::vector<profdb::Artifact> &Level : Levels)
    for (const profdb::Artifact &A : Level)
      Resident.push_back(profdb::cloneArtifact(A));
  if (Resident.empty()) {
    Error = "empty merge tree";
    return nullptr;
  }
  profdb::Artifact Out;
  if (!profdb::mergeAll(std::move(Resident), Out, Error, MergeThreads))
    return nullptr;
  Cache = std::make_unique<profdb::Artifact>(std::move(Out));
  return Cache.get();
}

size_t MergeTree::residentArtifacts() const {
  size_t Count = 0;
  for (const std::vector<profdb::Artifact> &Level : Levels)
    Count += Level.size();
  return Count;
}
