//===- collectd/MergeTree.cpp - Windowed incremental merging ------------------===//

#include "collectd/MergeTree.h"

#include "obs/Obs.h"
#include "profdb/Merge.h"

using namespace pp;
using namespace pp::collectd;

MergeTree::MergeTree(unsigned Fanout, unsigned MergeThreads)
    : Fanout(Fanout < 2 ? 2 : Fanout),
      MergeThreads(MergeThreads ? MergeThreads : 1) {}

bool MergeTree::add(profdb::Artifact A, std::string &Error) {
  // Admission trial: fold the candidate into the running window fold
  // before anything is mutated. The fold carries the union of every
  // accepted leaf's structure, so a clean merge against it proves the
  // candidate is mergeable with every subset a compaction below can
  // form; a failure rejects this one add with the tree untouched.
  profdb::Artifact NewFold;
  if (!Fold) {
    // First leaf: self-merge exercises the structural checks the decoder
    // does not make (tree shape, backedge consistency), so a structurally
    // corrupt artifact cannot seed a group it would then poison.
    if (!profdb::mergeArtifacts(A, A, NewFold, Error))
      return false;
    NewFold = profdb::cloneArtifact(A);
  } else if (!profdb::mergeArtifacts(*Fold, A, NewFold, Error)) {
    return false;
  }

  if (Levels.empty())
    Levels.emplace_back();
  Levels[0].push_back(std::move(A));

  // Cascade compactions up the levels on cloned inputs: a full level is
  // merged into one artifact destined for the next level, which may fill
  // that level in turn. No level is modified until the whole chain has
  // succeeded, so a merge failure — which the admission trial above
  // should have made impossible — still cannot destroy accepted uploads:
  // the new leaf is popped back out and the tree is exactly as before.
  std::vector<profdb::Artifact> Chain; // Chain[L] = compaction of level L
  for (size_t Level = 0; Level != Levels.size(); ++Level) {
    bool Incoming = Level != 0 && Chain.size() == Level;
    size_t Count = Levels[Level].size() + (Incoming ? 1 : 0);
    if (Count < Fanout)
      break;
    obs::SpanScope Span("collectd", "compact", "", /*Work=*/Count,
                        /*Items=*/Count);
    std::vector<profdb::Artifact> Inputs;
    Inputs.reserve(Count);
    for (const profdb::Artifact &Resident : Levels[Level])
      Inputs.push_back(profdb::cloneArtifact(Resident));
    if (Incoming)
      Inputs.push_back(profdb::cloneArtifact(Chain.back()));
    profdb::Artifact Merged;
    if (!profdb::mergeAll(std::move(Inputs), Merged, Error, MergeThreads)) {
      Levels[0].pop_back();
      return false;
    }
    Chain.push_back(std::move(Merged));
  }

  // Commit: every compacted level empties out and the last chain artifact
  // lands one level above the highest compacted one.
  for (size_t Level = 0; Level != Chain.size(); ++Level)
    Levels[Level].clear();
  if (!Chain.empty()) {
    if (Chain.size() == Levels.size())
      Levels.emplace_back();
    Levels[Chain.size()].push_back(std::move(Chain.back()));
    Compactions += Chain.size();
    obs::add(obs::Counter::CollectdCompactions, Chain.size());
  }
  ++Leaves;
  Fold = std::make_unique<profdb::Artifact>(std::move(NewFold));
  return true;
}

const profdb::Artifact *MergeTree::folded(std::string &Error) {
  if (!Fold) {
    Error = "empty merge tree";
    return nullptr;
  }
  return Fold.get();
}

size_t MergeTree::residentArtifacts() const {
  size_t Count = 0;
  for (const std::vector<profdb::Artifact> &Level : Levels)
    Count += Level.size();
  return Count;
}
