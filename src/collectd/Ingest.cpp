//===- collectd/Ingest.cpp - Fleet artifact ingest service --------------------===//

#include "collectd/Ingest.h"

#include "driver/FaultInjector.h"
#include "obs/Obs.h"
#include "profdb/Merge.h"
#include "profdb/Report.h"
#include "profdb/Store.h"
#include "support/Env.h"
#include "support/Format.h"

#include <algorithm>
#include <chrono>

using namespace pp;
using namespace pp::collectd;

const char *collectd::rejectReasonName(RejectReason R) {
  switch (R) {
  case RejectReason::None:
    return "none";
  case RejectReason::Corrupt:
    return "corrupt";
  case RejectReason::CrossAcquisition:
    return "cross-acquisition";
  case RejectReason::QuotaExceeded:
    return "quota-exceeded";
  case RejectReason::MergeFailed:
    return "merge-failed";
  case RejectReason::RateLimited:
    return "rate-limited";
  case RejectReason::WindowExpired:
    return "window-expired";
  case RejectReason::NumReasons:
    break;
  }
  return "?";
}

size_t collectd::retainWindowsFromEnv() {
  return static_cast<size_t>(
      envUint64Or("PP_COLLECTD_RETAIN_WINDOWS", "pp-collectd", 0));
}

namespace {

/// The admission key of an artifact: the cheap shape checks
/// mergeArtifacts makes before summing — workload, scale, full metric
/// schema, function table, path-table geometry, CCT presence. It routes
/// obviously-distinct shapes to distinct trees; it is NOT a mergeability
/// proof (it cannot see CCT edge structure or hashed-table thresholds),
/// so the authoritative gate is MergeTree::add's trial merge, which
/// rejects an incompatible artifact at admission with the tree intact.
std::string groupKeyOf(const profdb::Artifact &A) {
  std::string Shape;
  for (const std::string &F : A.Functions) {
    Shape += F;
    Shape += ';';
  }
  for (const prof::FunctionPathProfile &P : A.PathProfiles)
    Shape += formatString("%u:%d:%llu;", P.FuncId, int(P.HasProfile),
                          static_cast<unsigned long long>(P.NumPaths));
  return formatString(
      "%s|%llu|%s|%s|%s|%s|%c|%016llx", A.Workload.c_str(),
      static_cast<unsigned long long>(A.Scale), A.Schema.Mode.c_str(),
      A.Schema.Pic0.c_str(), A.Schema.Pic1.c_str(),
      A.Schema.Acquisition.c_str(), A.Tree ? 'c' : '-',
      static_cast<unsigned long long>(profdb::fnv1a(Shape)));
}

} // namespace

IngestService::IngestService(IngestConfig C) : Cfg(std::move(C)) {
  if (Cfg.QueueCapacity == 0)
    Cfg.QueueCapacity = 1;
  if (Cfg.RetainWindows == 0)
    Cfg.RetainWindows = retainWindowsFromEnv();
  if (Cfg.TenantRatePerSec > 0 && Cfg.TenantRateBurst <= 0)
    Cfg.TenantRateBurst = std::max(1.0, Cfg.TenantRatePerSec);
  if (!Cfg.RateClockNs)
    Cfg.RateClockNs = [] {
      return static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now().time_since_epoch())
              .count());
    };
  for (unsigned I = 0; I != Cfg.Threads; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

IngestService::~IngestService() {
  drain();
  {
    std::lock_guard<std::mutex> Lock(QueueMu);
    Stopping = true;
  }
  QueueNotEmpty.notify_all();
  QueueNotFull.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void IngestService::submit(Upload U) {
  std::unique_lock<std::mutex> Lock(QueueMu);
  if (Workers.empty()) {
    // Manual-pump mode: blocking on QueueNotFull would deadlock — the
    // calling thread is the only consumer. Make room by ingesting the
    // queue head inline; capacity still bounds memory.
    while (Queue.size() >= Cfg.QueueCapacity && !Stopping) {
      Upload Head = std::move(Queue.front());
      Queue.pop_front();
      Lock.unlock();
      ingestNow(std::move(Head));
      Lock.lock();
    }
  } else {
    QueueNotFull.wait(
        Lock, [this] { return Queue.size() < Cfg.QueueCapacity || Stopping; });
  }
  if (Stopping)
    return;
  Queue.push_back(std::move(U));
  QueueNotEmpty.notify_one();
}

bool IngestService::trySubmit(Upload U) {
  {
    std::lock_guard<std::mutex> Lock(QueueMu);
    if (!Stopping && Queue.size() < Cfg.QueueCapacity) {
      Queue.push_back(std::move(U));
      QueueNotEmpty.notify_one();
      return true;
    }
  }
  std::lock_guard<std::mutex> Lock(StateMu);
  ++Stats.Backpressured;
  return false;
}

bool IngestService::popUpload(Upload &Out) {
  std::unique_lock<std::mutex> Lock(QueueMu);
  QueueNotEmpty.wait(Lock, [this] { return !Queue.empty() || Stopping; });
  if (Queue.empty())
    return false;
  Out = std::move(Queue.front());
  Queue.pop_front();
  ++InFlight;
  QueueNotFull.notify_all();
  return true;
}

void IngestService::workerLoop() {
  Upload U;
  while (popUpload(U)) {
    ingestNow(std::move(U));
    std::lock_guard<std::mutex> Lock(QueueMu);
    --InFlight;
    // Wake both blocked submitters and a drain() waiting for idle.
    QueueNotFull.notify_all();
  }
}

void IngestService::drain() {
  if (Workers.empty()) {
    // Manual-pump mode: the calling thread is the worker.
    while (true) {
      Upload U;
      {
        std::lock_guard<std::mutex> Lock(QueueMu);
        if (Queue.empty())
          break;
        U = std::move(Queue.front());
        Queue.pop_front();
        QueueNotFull.notify_all();
      }
      ingestNow(std::move(U));
    }
    return;
  }
  std::unique_lock<std::mutex> Lock(QueueMu);
  QueueNotFull.wait(Lock, [this] { return Queue.empty() && InFlight == 0; });
}

UploadResult IngestService::ingestNow(Upload U) {
  obs::SpanScope Span("collectd", "ingest", "", /*Work=*/U.Bytes.size());
  auto Reject = [this](RejectReason Reason,
                       profdb::DecodeStatus Decode) -> UploadResult {
    obs::add(obs::Counter::CollectdRejected);
    std::lock_guard<std::mutex> Lock(StateMu);
    ++Stats.Submitted;
    ++Stats.Rejected;
    ++Stats.RejectedBy[static_cast<size_t>(Reason)];
    return UploadResult{false, Reason, Decode};
  };

  // The token bucket gates admission before any byte of the upload is
  // touched: a tenant hammering the collector is refused at the cost of
  // a map lookup, not a decode.
  if (Cfg.TenantRatePerSec > 0) {
    std::lock_guard<std::mutex> Lock(StateMu);
    if (!rateAllowLocked(U.Tenant)) {
      obs::add(obs::Counter::CollectdRejected);
      obs::add(obs::Counter::CollectdRateLimited);
      ++Stats.Submitted;
      ++Stats.Rejected;
      ++Stats.RejectedBy[static_cast<size_t>(RejectReason::RateLimited)];
      return UploadResult{false, RejectReason::RateLimited,
                          profdb::DecodeStatus::Ok};
    }
  }

  // The read seam stands in for corruption in flight; whatever it does
  // to the bytes, the decoder's CRC + bounds checks turn it into a typed
  // rejection of this one upload.
  driver::FaultInjector::instance().mutateCacheRead(U.Bytes);

  profdb::Artifact A;
  profdb::DecodeStatus Decode = profdb::decodeArtifact(U.Bytes, A);
  if (Decode != profdb::DecodeStatus::Ok)
    return Reject(RejectReason::Corrupt, Decode);

  if (A.Schema.Acquisition != Cfg.Acquisition)
    return Reject(RejectReason::CrossAcquisition, profdb::DecodeStatus::Ok);

  std::string Key = groupKeyOf(A);
  std::lock_guard<std::mutex> Lock(StateMu);
  ++Stats.Submitted;

  // A window below the retention watermark has been persisted and
  // dropped; folding into a fresh resident copy would make the stored
  // artifact and the late fold disagree about the same window, so the
  // window is simply closed.
  if (U.Window < ExpiredBelow) {
    obs::add(obs::Counter::CollectdRejected);
    ++Stats.Rejected;
    ++Stats.RejectedBy[static_cast<size_t>(RejectReason::WindowExpired)];
    return UploadResult{false, RejectReason::WindowExpired,
                        profdb::DecodeStatus::Ok};
  }

  if (Cfg.TenantWindowQuota) {
    uint64_t Used = QuotaUsed[{U.Tenant, U.Window}];
    if (Used >= Cfg.TenantWindowQuota) {
      obs::add(obs::Counter::CollectdRejected);
      ++Stats.Rejected;
      ++Stats.RejectedBy[static_cast<size_t>(RejectReason::QuotaExceeded)];
      return UploadResult{false, RejectReason::QuotaExceeded,
                          profdb::DecodeStatus::Ok};
    }
  }

  Window &W = Windows[U.Window];
  auto It = W.find(Key);
  bool NewGroup = It == W.end();
  if (NewGroup)
    It = W.emplace(std::piecewise_construct, std::forward_as_tuple(Key),
                   std::forward_as_tuple(A.Workload, Cfg.Fanout,
                                         Cfg.MergeThreads))
             .first;
  std::string Error;
  if (!It->second.Tree.add(std::move(A), Error)) {
    // The trial merge inside add() rejected the upload with the tree
    // untouched. A group (and window) created only for this upload must
    // not linger empty — an empty tree would fail every later query.
    if (NewGroup) {
      W.erase(It);
      if (W.empty())
        Windows.erase(U.Window);
    }
    obs::add(obs::Counter::CollectdRejected);
    ++Stats.Rejected;
    ++Stats.RejectedBy[static_cast<size_t>(RejectReason::MergeFailed)];
    return UploadResult{false, RejectReason::MergeFailed,
                        profdb::DecodeStatus::Ok};
  }
  // Quota charges accepted uploads only, as IngestConfig documents.
  if (Cfg.TenantWindowQuota)
    ++QuotaUsed[{U.Tenant, U.Window}];
  obs::add(obs::Counter::CollectdAccepted);
  ++Stats.Accepted;
  if (Cfg.RetainWindows && Windows.size() > Cfg.RetainWindows)
    enforceRetentionLocked();
  return UploadResult{true, RejectReason::None, profdb::DecodeStatus::Ok};
}

bool IngestService::rateAllowLocked(const std::string &Tenant) {
  uint64_t NowNs = Cfg.RateClockNs();
  auto [It, New] = Buckets.try_emplace(Tenant);
  Bucket &B = It->second;
  if (New) {
    // A tenant's first contact finds a full bucket: bursts up to the
    // burst depth are the design, sustained overrun is not.
    B.Tokens = Cfg.TenantRateBurst;
    B.LastNs = NowNs;
  }
  double Elapsed = NowNs >= B.LastNs ? (NowNs - B.LastNs) * 1e-9 : 0.0;
  B.LastNs = NowNs;
  B.Tokens = std::min(Cfg.TenantRateBurst,
                      B.Tokens + Elapsed * Cfg.TenantRatePerSec);
  if (B.Tokens < 1.0)
    return false;
  B.Tokens -= 1.0;
  return true;
}

void IngestService::enforceRetentionLocked() {
  while (Windows.size() > Cfg.RetainWindows) {
    auto Oldest = Windows.begin();
    std::string Error;
    if (Cfg.StoreDir.empty() ||
        !persistWindowLocked(Oldest->first, Oldest->second, Error)) {
      // Unpersisted uploads are never dropped: the window stays resident
      // (over the cap) until a later accept retries the sweep.
      ++Stats.RetentionHeld;
      return;
    }
    uint64_t Id = Oldest->first;
    Windows.erase(Oldest);
    ExpiredBelow = std::max(ExpiredBelow, Id + 1);
    ++Stats.WindowsExpired;
    obs::add(obs::Counter::CollectdWindowsExpired);
    // The window's quota ledger goes with it; the watermark now rejects
    // anything that would need it.
    for (auto It = QuotaUsed.begin(); It != QuotaUsed.end();)
      It = It->first.second == Id ? QuotaUsed.erase(It) : std::next(It);
  }
}

template <typename RenderFn>
std::string IngestService::queryWindow(uint64_t Window, std::string &Error,
                                       RenderFn Render) {
  obs::add(obs::Counter::CollectdQueries);
  std::lock_guard<std::mutex> Lock(StateMu);
  ++Stats.Queries;
  auto It = Windows.find(Window);
  if (It == Windows.end()) {
    Error = formatString("no such window %llu",
                         static_cast<unsigned long long>(Window));
    return "";
  }
  std::string Out;
  for (auto &[Key, G] : It->second) {
    const profdb::Artifact *F = G.Tree.folded(Error);
    if (!F)
      return "";
    // The renderers open with reportHeader themselves.
    Out += Render(*F);
    Out += "\n";
  }
  return Out;
}

std::string IngestService::queryTopPaths(uint64_t Window, size_t Limit,
                                         std::string &Error) {
  obs::SpanScope Span("collectd", "query", "top-paths");
  return queryWindow(Window, Error, [Limit](const profdb::Artifact &A) {
    return profdb::reportTopPaths(A, Limit);
  });
}

std::string IngestService::queryTopProcs(uint64_t Window, size_t Limit,
                                         std::string &Error) {
  obs::SpanScope Span("collectd", "query", "top-procs");
  return queryWindow(Window, Error, [Limit](const profdb::Artifact &A) {
    return profdb::reportTopProcs(A, Limit);
  });
}

std::string IngestService::queryCctStats(uint64_t Window,
                                         std::string &Error) {
  obs::SpanScope Span("collectd", "query", "cct-stats");
  return queryWindow(Window, Error, [](const profdb::Artifact &A) {
    return profdb::reportCctStats(A);
  });
}

std::vector<std::vector<uint8_t>>
IngestService::windowBytes(uint64_t Window, std::string &Error) {
  std::lock_guard<std::mutex> Lock(StateMu);
  std::vector<std::vector<uint8_t>> Out;
  auto It = Windows.find(Window);
  if (It == Windows.end()) {
    Error = formatString("no such window %llu",
                         static_cast<unsigned long long>(Window));
    return Out;
  }
  for (auto &[Key, G] : It->second) {
    const profdb::Artifact *F = G.Tree.folded(Error);
    if (!F)
      return {};
    Out.push_back(profdb::encodeArtifact(*F));
  }
  return Out;
}

std::vector<uint64_t> IngestService::windows() const {
  std::lock_guard<std::mutex> Lock(StateMu);
  std::vector<uint64_t> Ids;
  for (const auto &[Id, W] : Windows)
    Ids.push_back(Id);
  return Ids;
}

IngestStats IngestService::stats() const {
  std::lock_guard<std::mutex> Lock(StateMu);
  IngestStats Out = Stats;
  Out.Windows = Windows.size();
  for (const auto &[Id, W] : Windows)
    for (const auto &[Key, G] : W)
      Out.Compactions += G.Tree.compactions();
  return Out;
}

bool IngestService::persistWindowLocked(uint64_t Id, Window &W,
                                        std::string &Error) {
  std::string Dir =
      Cfg.StoreDir + "/w" + formatString("%llu", (unsigned long long)Id);
  for (auto &[Key, G] : W) {
    const profdb::Artifact *F = G.Tree.folded(Error);
    if (!F)
      return false;
    // Named by group key, not fingerprint: two groups whose merged
    // fingerprints degenerate to the same hash (XOR of identical
    // sources) must still land in distinct files.
    std::string Path = Dir + "/" + profdb::artifactFileName(Key);
    if (!profdb::writeArtifactFile(Path, *F, Error))
      return false;
  }
  return true;
}

bool IngestService::persist(std::string &Error) {
  if (Cfg.StoreDir.empty()) {
    Error = "no store directory configured";
    return false;
  }
  std::lock_guard<std::mutex> Lock(StateMu);
  for (auto &[Id, W] : Windows)
    if (!persistWindowLocked(Id, W, Error))
      return false;
  return true;
}
