//===- collectd/Wire.h - Framed upload protocol ----------------*- C++ -*-===//
///
/// \file
/// The collector's wire protocol: how a fleet client talks to a
/// pp-collectd socket front end. Everything that crosses the socket is a
/// *frame* — a fixed header, a typed payload, and a CRC32 trailer:
///
///   offset  size  field
///   0       4     magic "PPWF"
///   4       1     wire version (WireVersion)
///   5       1     frame type (FrameType)
///   6       4     payload length, little endian
///   10      len   payload (per-type layout below)
///   10+len  4     CRC32 of bytes [0, 10+len), little endian
///
/// Payloads reuse the repository's little-endian primitives
/// (support/BinaryIO.h: u64s, u64-length-prefixed strings/bytes):
///
///   HELLO   u64 protocol; str tenant; str acquisition
///   UPLOAD  u64 serial; u64 window; bytes artifact (.ppa)
///   ACK     u64 serial; str text           (query answers ride in text)
///   REJECT  u64 serial; u8 reason (RejectReason); u8 decode
///           (profdb::DecodeStatus); u8 wire (WireStatus); str message
///   QUERY   u64 serial; u8 kind (QueryKind); u64 window; u64 limit
///
/// Trust model: frames arrive from the network and are as untrusted as a
/// .ppa file on disk. The decoder is incremental (bytes arrive in
/// whatever chunks the kernel delivers) and fully bounds-checked in the
/// profdb DecodeStatus style: every verdict is a typed WireStatus, a
/// length field is validated against MaxPayloadBytes *before* any
/// allocation (a giant-length lie costs ten buffered bytes, not
/// gigabytes), the CRC gates payload parsing, and a payload that decodes
/// but leaves unexplained bytes is TrailingBytes, never silently
/// accepted. A frame-level error poisons the stream — after corruption
/// the framing itself cannot be trusted, so the server replies with a
/// typed REJECT and closes.
///
//===----------------------------------------------------------------------===//

#ifndef PP_COLLECTD_WIRE_H
#define PP_COLLECTD_WIRE_H

#include "collectd/Ingest.h"
#include "profdb/Artifact.h"

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace pp {
namespace collectd {

/// Frame header magic: "PPWF" (path-profile wire frame).
constexpr uint8_t WireMagic[4] = {'P', 'P', 'W', 'F'};
/// Bumped on any layout change; a mismatched peer is rejected typed.
constexpr uint8_t WireVersion = 1;
/// Fixed bytes before the payload (magic + version + type + length).
constexpr size_t WireHeaderBytes = 10;
/// CRC32 trailer.
constexpr size_t WireTrailerBytes = 4;
/// Default ceiling on one frame's payload. Large enough for any honest
/// artifact upload, small enough that a malicious length field cannot
/// balloon a connection's memory.
constexpr size_t DefaultMaxPayloadBytes = 16u << 20;

enum class FrameType : uint8_t {
  Hello = 1,  ///< client -> server, once, first
  Upload = 2, ///< client -> server: one .ppa artifact for a window
  Ack = 3,    ///< server -> client: accepted (query answers ride here)
  Reject = 4, ///< server -> client: typed refusal
  Query = 5,  ///< client -> server: render a window
};

/// What a QUERY frame asks of the folded window.
enum class QueryKind : uint8_t {
  TopPaths = 1,
  TopProcs = 2,
  CctStats = 3,
};

/// The typed verdict of the incremental decoder. Everything except Ok
/// and NeedMore is fatal to the stream: framing after a corrupt frame
/// cannot be re-synchronised and the connection must close.
enum class WireStatus : unsigned {
  Ok = 0,
  /// Not an error: the buffered bytes do not yet hold a whole frame.
  NeedMore,
  BadMagic,
  BadVersion,
  /// The type byte names no known frame.
  BadType,
  /// The length field exceeds the decoder's payload ceiling.
  FrameTooLarge,
  /// The CRC32 trailer does not match the header + payload bytes.
  BadChecksum,
  /// The payload structure is inconsistent with its frame type.
  Malformed,
  /// The payload decodes but is followed by unexplained bytes.
  TrailingBytes,
};

/// Human-readable name ("ok", "need-more", "bad-magic", ...).
const char *wireStatusName(WireStatus S);

/// One decoded (or to-be-encoded) frame. Only the fields of its Type are
/// meaningful; the rest stay at their defaults.
struct Frame {
  FrameType Type = FrameType::Hello;
  /// Correlation id echoed by ACK/REJECT (Upload/Ack/Reject/Query).
  uint64_t Serial = 0;

  // Hello
  uint64_t Protocol = WireVersion;
  std::string Tenant;
  std::string Acquisition;

  // Upload
  uint64_t Window = 0;
  std::vector<uint8_t> Artifact;

  // Ack
  std::string Text;

  // Reject
  RejectReason Reason = RejectReason::None;
  profdb::DecodeStatus Decode = profdb::DecodeStatus::Ok;
  WireStatus Wire = WireStatus::Ok;
  std::string Message;

  // Query
  QueryKind Kind = QueryKind::TopPaths;
  uint64_t Limit = 0;
};

/// Serialises \p F into one complete frame (header + payload + CRC).
std::vector<uint8_t> encodeFrame(const Frame &F);

/// Incremental, bounds-checked frame decoder. Feed it whatever chunk the
/// socket produced; next() yields complete frames in order. The buffer
/// is bounded: a frame can hold at most MaxPayloadBytes of payload
/// (checked from the header, before the payload is buffered or any
/// allocation sized from it), so buffered() never exceeds one maximal
/// frame plus the last fed chunk.
class FrameDecoder {
public:
  explicit FrameDecoder(size_t MaxPayloadBytes = DefaultMaxPayloadBytes)
      : MaxPayload(MaxPayloadBytes) {}

  /// Appends \p Size raw bytes to the stream.
  void feed(const uint8_t *Data, size_t Size);
  void feed(const std::vector<uint8_t> &Bytes) {
    feed(Bytes.data(), Bytes.size());
  }

  /// Extracts the next complete frame. Ok fills \p Out and consumes the
  /// frame's bytes; NeedMore leaves the buffer for a later feed; any
  /// other status is a fatal stream error and leaves the offending bytes
  /// unconsumed (the caller should reject and close).
  WireStatus next(Frame &Out);

  /// Bytes fed but not yet consumed by decoded frames.
  size_t buffered() const { return Buffer.size() - Start; }

private:
  size_t MaxPayload;
  std::vector<uint8_t> Buffer;
  /// Consumed prefix of Buffer; compacted opportunistically so the
  /// buffer's capacity tracks the live bytes, not stream history.
  size_t Start = 0;
};

} // namespace collectd
} // namespace pp

#endif // PP_COLLECTD_WIRE_H
