//===- cct/CallingContextTree.cpp - The calling context tree ---------------===//

#include "cct/CallingContextTree.h"

#include "support/Error.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

using namespace pp;
using namespace pp::cct;

MemCharger::~MemCharger() = default;

CallingContextTree::CallingContextTree(std::vector<ProcDesc> Procs,
                                       unsigned NumMetrics,
                                       MemCharger *Charger,
                                       unsigned PathCellBytes,
                                       uint64_t HashThreshold)
    : Procs(std::move(Procs)), NumMetrics(NumMetrics), Charger(Charger),
      PathCellBytes(PathCellBytes), HashThreshold(HashThreshold) {
  // The root call record, labelled with the pseudo-procedure T. Slot 0 is
  // the program entry point; slot 1 is a list slot for signal handlers —
  // the "multiple roots" the paper notes a signal-handling extension
  // needs (§4.2). The root accumulates no metrics.
  Root = makeRecord(RootProcId, nullptr);
  Root->Slots[SignalSlot].K = CallRecord::Slot::Kind::List;
}

uint64_t CallingContextTree::heapAlloc(uint64_t Size) {
  uint64_t Addr = (HeapNext + 7) & ~uint64_t(7);
  HeapNext = Addr + Size;
  if (HeapNext >= layout::ProfStackBase)
    reportFatalError("CCT heap exhausted");
  return Addr;
}

CallRecord *CallingContextTree::makeRecord(ProcId Proc, CallRecord *Parent) {
  auto Record = std::make_unique<CallRecord>();
  CallRecord *R = Record.get();
  Records.push_back(std::move(Record));

  R->Proc = Proc;
  R->Parent = Parent;
  R->Depth = Parent ? Parent->Depth + 1 : 0;
  R->Metrics.assign(NumMetrics, 0);

  unsigned NumSites;
  uint64_t NumPaths = 0;
  if (Proc == RootProcId) {
    NumSites = 2; // program entry + signal handlers
  } else {
    assert(Proc < Procs.size() && "unknown procedure");
    NumSites = Procs[Proc].NumSites;
    NumPaths = Procs[Proc].NumPaths;
  }
  R->Slots.resize(NumSites);
  for (unsigned Index = 0; Index != NumSites; ++Index) {
    if (Proc != RootProcId && Index < Procs[Proc].SiteIsIndirect.size() &&
        Procs[Proc].SiteIsIndirect[Index])
      R->Slots[Index].K = CallRecord::Slot::Kind::List;
  }

  uint64_t Bytes = 8 + 8 + 8 * uint64_t(NumMetrics) + 8 * NumSites;
  R->Addr = heapAlloc(Bytes);

  // Charge the initialising stores: ID, parent, zeroed metrics, and the
  // tagged-offset slot initialisation (§4.2 "creates and initializes its
  // own call records").
  charge(3 + NumMetrics + NumSites);
  touch(R->Addr, 8, /*IsWrite=*/true);     // ID
  touch(R->Addr + 8, 8, /*IsWrite=*/true); // parent
  for (unsigned Index = 0; Index != NumMetrics; ++Index)
    touch(R->Addr + 16 + 8 * Index, 8, /*IsWrite=*/true);
  uint64_t SlotBase = R->Addr + 16 + 8 * uint64_t(NumMetrics);
  for (unsigned Index = 0; Index != NumSites; ++Index)
    touch(SlotBase + 8 * Index, 8, /*IsWrite=*/true);

  // Per-record path counter table (combined flow + context profiling):
  // an array when small, a fixed hash table otherwise.
  if (NumPaths != 0) {
    uint64_t Cells = std::min<uint64_t>(NumPaths, HashThreshold);
    uint64_t CellStride = PathCellBytes + (NumPaths > HashThreshold ? 8 : 0);
    R->PathTableAddr = heapAlloc(Cells * CellStride);
  }
  return R;
}

CallRecord *CallingContextTree::findAncestor(CallRecord *From, ProcId Proc) {
  // "The code then searches the parent pointers, looking for an ancestral
  // instance of the callee" — a vertex is its own ancestor (§4.1 footnote).
  for (CallRecord *R = From; R; R = R->Parent) {
    // Load the record's ID and its parent pointer.
    touch(R->Addr, 8, /*IsWrite=*/false);
    touch(R->Addr + 8, 8, /*IsWrite=*/false);
    charge(3);
    if (R->Proc == Proc)
      return R;
  }
  return nullptr;
}

CallRecord *CallingContextTree::enter(CallRecord *Caller, unsigned SlotIndex,
                                      ProcId Proc) {
  assert(Caller && SlotIndex < Caller->Slots.size() && "bad gCSP");
  CallRecord::Slot &S = Caller->Slots[SlotIndex];
  uint64_t SlotAddr = Caller->Addr + 16 + 8 * uint64_t(NumMetrics) +
                      8 * uint64_t(SlotIndex);

  // Entry code: load the slot word through the gCSP and dispatch on its
  // low-order tag bits.
  touch(SlotAddr, 8, /*IsWrite=*/false);
  charge(2);

  switch (S.K) {
  case CallRecord::Slot::Kind::Record:
    // Tag 0: the slot already points at this context's record; recursion
    // or not, the callee finds it immediately.
    assert(S.Direct && S.Direct->Proc == Proc &&
           "direct slot resolved to a different procedure");
    return S.Direct;

  case CallRecord::Slot::Kind::Unresolved: {
    // Tag 1: first call from this context. Search the ancestors; reuse the
    // recursive instance or allocate a fresh child.
    CallRecord *Found = findAncestor(Caller, Proc);
    CallRecord *R = Found ? Found : makeRecord(Proc, Caller);
    S.K = CallRecord::Slot::Kind::Record;
    S.Direct = R;
    touch(SlotAddr, 8, /*IsWrite=*/true);
    charge(1);
    return R;
  }

  case CallRecord::Slot::Kind::List: {
    // Tag 2: indirect call site; search the callee list, move-to-front on
    // a hit so the common target stays cheap.
    for (size_t Position = 0; Position != S.List.size(); ++Position) {
      auto &Cell = S.List[Position];
      touch(Cell.second, 8, /*IsWrite=*/false);     // record pointer
      touch(Cell.second + 8, 8, /*IsWrite=*/false); // next pointer
      charge(3);
      if (Cell.first->Proc != Proc)
        continue;
      CallRecord *R = Cell.first;
      if (Position != 0) {
        // Move to the front of the list (two pointer rewrites plus the
        // head update).
        auto Moved = Cell;
        S.List.erase(S.List.begin() + static_cast<long>(Position));
        S.List.insert(S.List.begin(), Moved);
        touch(SlotAddr, 8, /*IsWrite=*/true);
        touch(Moved.second + 8, 8, /*IsWrite=*/true);
        charge(3);
      }
      return R;
    }
    // Not in the list: resolve through the ancestors, then prepend a cell.
    CallRecord *Found = findAncestor(Caller, Proc);
    CallRecord *R = Found ? Found : makeRecord(Proc, Caller);
    uint64_t CellAddr = heapAlloc(ListCellBytes);
    ++ListCellCount;
    S.List.insert(S.List.begin(), {R, CellAddr});
    touch(CellAddr, 8, /*IsWrite=*/true);
    touch(CellAddr + 8, 8, /*IsWrite=*/true);
    touch(SlotAddr, 8, /*IsWrite=*/true);
    charge(4);
    return R;
  }
  }
  unreachable("invalid slot kind");
}

void CallingContextTree::commitPath(CallRecord *R, uint64_t PathSum,
                                    bool WithMetrics, uint64_t Metric0,
                                    uint64_t Metric1) {
  assert(R->PathTableAddr != 0 && "record has no path table");
  PathCell &Cell = R->PathTable[PathSum];
  ++Cell.Freq;

  uint64_t NumPaths =
      R->Proc == RootProcId ? 0 : Procs[R->Proc].NumPaths;
  uint64_t CellAddr;
  if (NumPaths > HashThreshold) {
    // Hash mode: one probe into the fixed-size open-addressed table. (The
    // charge assumes the common single-probe case; see DESIGN.md.)
    uint64_t Mixed = PathSum * 0x9e3779b97f4a7c15ULL;
    uint64_t Cells = HashThreshold;
    CellAddr = R->PathTableAddr + (Mixed % Cells) * (PathCellBytes + 8);
    touch(CellAddr, 8, /*IsWrite=*/false); // key compare
    charge(6);
    CellAddr += 8;
  } else {
    // Array mode: count[r]++ with the path sum as index.
    CellAddr = R->PathTableAddr + PathSum * PathCellBytes;
    charge(3);
  }
  touch(CellAddr, 8, /*IsWrite=*/false);
  touch(CellAddr, 8, /*IsWrite=*/true);
  charge(2);
  if (WithMetrics) {
    Cell.Metric0 += Metric0;
    Cell.Metric1 += Metric1;
    for (unsigned Index = 1; Index <= 2; ++Index) {
      touch(CellAddr + 8 * Index, 8, /*IsWrite=*/false);
      touch(CellAddr + 8 * Index, 8, /*IsWrite=*/true);
      charge(3);
    }
  }
}

CctStats CallingContextTree::computeStats() const {
  CctStats Stats;
  Stats.NumRecords = Records.size();
  Stats.TotalBytes = heapBytes();

  std::vector<uint64_t> ChildCounts(Records.size(), 0);
  std::unordered_map<ProcId, uint64_t> Replication;
  // Index records for child counting.
  std::unordered_map<const CallRecord *, size_t> IndexOf;
  for (size_t Index = 0; Index != Records.size(); ++Index)
    IndexOf[Records[Index].get()] = Index;

  uint64_t LeafCount = 0, LeafDepthSum = 0;
  for (const auto &R : Records) {
    if (R->Parent)
      ++ChildCounts[IndexOf.at(R->Parent)];
    Stats.MaxDepth = std::max<uint64_t>(Stats.MaxDepth, R->depth());
    if (R->procId() != RootProcId)
      ++Replication[R->procId()];
    Stats.RecordBytes += recordBytes(R->procId());
    Stats.TotalSlots += R->numSlots();
    for (unsigned Index = 0; Index != R->numSlots(); ++Index) {
      const CallRecord::Slot &S = R->slot(Index);
      bool Used = (S.K == CallRecord::Slot::Kind::Record && S.Direct) ||
                  (S.K == CallRecord::Slot::Kind::List && !S.List.empty());
      if (!Used)
        continue;
      ++Stats.UsedSlots;
      // A slot is a backedge when it resolves to a record that is an
      // ancestor of (or equal to) the owner.
      auto IsAncestor = [&R](const CallRecord *Target) {
        for (const CallRecord *A = R.get(); A; A = A->parent())
          if (A == Target)
            return true;
        return false;
      };
      if (S.K == CallRecord::Slot::Kind::Record) {
        if (IsAncestor(S.Direct))
          ++Stats.BackedgeSlots;
      } else {
        for (const auto &Cell : S.List)
          if (IsAncestor(Cell.first))
            ++Stats.BackedgeSlots;
      }
    }
  }

  uint64_t InteriorCount = 0, InteriorChildren = 0;
  for (size_t Index = 0; Index != Records.size(); ++Index) {
    if (ChildCounts[Index] == 0) {
      ++LeafCount;
      LeafDepthSum += Records[Index]->depth();
    } else {
      ++InteriorCount;
      InteriorChildren += ChildCounts[Index];
    }
  }
  Stats.AvgNodeBytes =
      Records.empty() ? 0 : double(Stats.RecordBytes) / double(Records.size());
  Stats.AvgOutDegree =
      InteriorCount == 0 ? 0 : double(InteriorChildren) / double(InteriorCount);
  Stats.AvgLeafDepth =
      LeafCount == 0 ? 0 : double(LeafDepthSum) / double(LeafCount);
  for (const auto &[Proc, Count] : Replication) {
    if (Count > Stats.MaxReplication) {
      Stats.MaxReplication = Count;
      Stats.MaxReplicationProc = Proc;
    }
  }
  return Stats;
}

TreeImage CallingContextTree::image() const {
  TreeImage Image;
  Image.Procs = Procs;
  Image.NumMetrics = NumMetrics;
  Image.PathCellBytes = PathCellBytes;
  Image.HashThreshold = HashThreshold;
  Image.HeapBytes = heapBytes();
  Image.ListCells = ListCellCount;

  std::unordered_map<const CallRecord *, uint64_t> IndexOf;
  for (size_t Index = 0; Index != Records.size(); ++Index)
    IndexOf[Records[Index].get()] = Index;

  Image.Records.reserve(Records.size());
  for (const auto &R : Records) {
    TreeImage::Record Rec;
    Rec.Proc = R->Proc;
    Rec.Parent = R->Parent ? static_cast<int64_t>(IndexOf.at(R->Parent)) : -1;
    Rec.Addr = R->Addr;
    Rec.PathTableAddr = R->PathTableAddr;
    Rec.Metrics = R->Metrics;
    Rec.PathCells.assign(R->PathTable.begin(), R->PathTable.end());
    // Canonical order, so identical trees produce identical images even
    // though the live counters sit in an unordered map.
    std::sort(Rec.PathCells.begin(), Rec.PathCells.end(),
              [](const auto &A, const auto &B) { return A.first < B.first; });
    for (const CallRecord::Slot &S : R->Slots) {
      TreeImage::Slot Slot;
      Slot.Kind = static_cast<uint8_t>(S.K);
      if (S.K == CallRecord::Slot::Kind::Record && S.Direct)
        Slot.Targets.push_back({IndexOf.at(S.Direct), 0});
      else if (S.K == CallRecord::Slot::Kind::List)
        for (const auto &Cell : S.List)
          Slot.Targets.push_back({IndexOf.at(Cell.first), Cell.second});
      Rec.Slots.push_back(std::move(Slot));
    }
    Image.Records.push_back(std::move(Rec));
  }
  return Image;
}

std::unique_ptr<CallingContextTree>
CallingContextTree::fromImage(const TreeImage &Image) {
  if (Image.Records.empty())
    return nullptr;
  auto Tree = std::make_unique<CallingContextTree>(
      Image.Procs, Image.NumMetrics, nullptr, Image.PathCellBytes,
      Image.HashThreshold);
  // Discard the constructor's root; every record is rebuilt verbatim.
  Tree->Records.clear();
  Tree->Root = nullptr;
  Tree->ListCellCount = Image.ListCells;
  Tree->HeapNext = layout::CctHeapBase + Image.HeapBytes;

  for (const TreeImage::Record &Rec : Image.Records) {
    auto Record = std::make_unique<CallRecord>();
    CallRecord *R = Record.get();
    Tree->Records.push_back(std::move(Record));
    R->Proc = Rec.Proc;
    if (Rec.Parent >= 0) {
      if (static_cast<uint64_t>(Rec.Parent) + 1 >= Tree->Records.size())
        return nullptr; // parents must precede children
      R->Parent = Tree->Records[static_cast<size_t>(Rec.Parent)].get();
      R->Depth = R->Parent->Depth + 1;
    }
    R->Addr = Rec.Addr;
    R->PathTableAddr = Rec.PathTableAddr;
    R->Metrics = Rec.Metrics;
    for (const auto &[Sum, Cell] : Rec.PathCells)
      R->PathTable.emplace(Sum, Cell);
    R->Slots.resize(Rec.Slots.size());
  }
  // Slots resolve against fully constructed records, so fill them second.
  for (size_t Index = 0; Index != Image.Records.size(); ++Index) {
    const TreeImage::Record &Rec = Image.Records[Index];
    CallRecord *R = Tree->Records[Index].get();
    for (size_t S = 0; S != Rec.Slots.size(); ++S) {
      const TreeImage::Slot &Slot = Rec.Slots[S];
      CallRecord::Slot &Out = R->Slots[S];
      Out.K = static_cast<CallRecord::Slot::Kind>(Slot.Kind);
      for (const auto &[Target, CellAddr] : Slot.Targets) {
        if (Target >= Tree->Records.size())
          return nullptr;
        CallRecord *T = Tree->Records[Target].get();
        if (Out.K == CallRecord::Slot::Kind::Record)
          Out.Direct = T;
        else
          Out.List.push_back({T, CellAddr});
      }
    }
  }
  Tree->Root = Tree->Records.front().get();
  return Tree;
}
