//===- cct/Export.h - CCT serialisation and dot export ---------*- C++ -*-===//
///
/// \file
/// Program-exit persistence of the CCT (§4.2: "the instrumentation writes
/// the heap containing the CCT to a file from which the CCT can be
/// reconstructed"): a compact binary encoding with a reader, plus Graphviz
/// export for visual inspection.
///
//===----------------------------------------------------------------------===//

#ifndef PP_CCT_EXPORT_H
#define PP_CCT_EXPORT_H

#include "cct/CallingContextTree.h"

#include <cstdint>
#include <string>
#include <vector>

namespace pp {
namespace cct {

/// A reconstructed record from a serialised CCT.
struct LoadedRecord {
  ProcId Proc;
  int Parent; // index into the loaded vector; -1 for the root
  std::vector<uint64_t> Metrics;
  std::vector<std::pair<uint64_t, PathCell>> PathCells;
};

/// Serialises the tree (records in allocation order, tree edges, metrics,
/// path tables). Slots/backedges are reconstructible from the metrics use
/// case and are not persisted, matching the paper's profile-file role.
std::vector<uint8_t> serialize(const CallingContextTree &Tree);

/// Reads back what serialize() wrote. Returns false on malformed input.
bool deserialize(const std::vector<uint8_t> &Bytes,
                 std::vector<LoadedRecord> &Out);

/// Graphviz rendering: tree edges solid, recursion backedges dashed.
std::string exportDot(const CallingContextTree &Tree);

} // namespace cct
} // namespace pp

#endif // PP_CCT_EXPORT_H
