//===- cct/ImageIO.h - TreeImage binary codec ------------------*- C++ -*-===//
///
/// \file
/// The binary encoding of a full-fidelity cct::TreeImage, shared by the
/// driver's on-disk run cache (driver/OutcomeIO) and the profdb profile
/// artifacts. The byte layout is exactly what OutcomeIO version 2 has
/// always written for the embedded tree, so cache files and artifacts can
/// share one decoder.
///
/// The reader is bounds-checked in the OutcomeIO style: every count is
/// validated against the bytes remaining, and decoded geometry is held
/// under sanity ceilings before it reaches the CCT allocator (which
/// treats exhaustion as fatal).
///
//===----------------------------------------------------------------------===//

#ifndef PP_CCT_IMAGEIO_H
#define PP_CCT_IMAGEIO_H

#include "cct/CallingContextTree.h"
#include "support/BinaryIO.h"

namespace pp {
namespace cct {

/// Sanity ceilings for decoded tree geometry. Real images sit far below
/// them; a corrupt file that exceeds one is rejected as malformed instead
/// of driving the CCT allocator or the host allocator into the ground.
inline constexpr uint64_t MaxTreeMetrics = 1024;
inline constexpr uint64_t MaxPathCellBytes = 4096;
inline constexpr uint64_t MaxProcSites = uint64_t(1) << 20;
inline constexpr uint64_t MaxCctHeapBytes =
    layout::ProfStackBase - layout::CctHeapBase;

/// Why an embedded tree image failed to decode.
enum class ImageDecodeStatus : unsigned {
  Ok = 0,
  /// A length or count field exceeds the bytes remaining.
  Truncated,
  /// A field holds a structurally impossible value (bad slot kind,
  /// geometry above a ceiling, out-of-range procedure id).
  Malformed,
};

/// Appends the encoding of \p Image to \p W.
void writeTreeImage(ByteWriter &W, const TreeImage &Image);

/// Decodes an image written by writeTreeImage. On failure \p Out is
/// unspecified and must be discarded.
ImageDecodeStatus readTreeImage(ByteReader &R, TreeImage &Out);

} // namespace cct
} // namespace pp

#endif // PP_CCT_IMAGEIO_H
