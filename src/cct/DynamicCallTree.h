//===- cct/DynamicCallTree.h - DCT and DCG references ----------*- C++ -*-===//
///
/// \file
/// The two ends of the spectrum the CCT sits between (§4.1, Figures 4-5):
/// the dynamic call tree (one vertex per activation, unbounded) and the
/// dynamic call graph (one vertex per procedure, maximally aggregated).
/// Tests and the figure benches build all three from the same trace and
/// compare their shapes; the DCT also serves as the oracle for CCT
/// correctness (every DCT path must map to a unique CCT vertex, recursion
/// aside).
///
//===----------------------------------------------------------------------===//

#ifndef PP_CCT_DYNAMICCALLTREE_H
#define PP_CCT_DYNAMICCALLTREE_H

#include "cct/CallingContextTree.h"

#include <cassert>
#include <cstdint>
#include <set>
#include <utility>
#include <vector>

namespace pp {
namespace cct {

/// The full dynamic call tree: every activation is a vertex, so the size is
/// proportional to the number of calls.
class DynamicCallTree {
public:
  struct Node {
    ProcId Proc;
    int Parent; // -1 for the root
    std::vector<int> Children;
  };

  DynamicCallTree() {
    Nodes.push_back(Node{RootProcId, -1, {}});
    Stack.push_back(0);
  }

  /// Records entry into \p Proc as a child of the current activation.
  void enter(ProcId Proc) {
    int Index = static_cast<int>(Nodes.size());
    Nodes.push_back(Node{Proc, Stack.back(), {}});
    Nodes[Stack.back()].Children.push_back(Index);
    Stack.push_back(Index);
  }

  /// Records return from the current activation.
  void exit() {
    assert(Stack.size() > 1 && "exit without matching enter");
    Stack.pop_back();
  }

  size_t numActivations() const { return Nodes.size() - 1; }
  const std::vector<Node> &nodes() const { return Nodes; }
  const Node &node(int Index) const { return Nodes[Index]; }

  /// The call chain (root excluded) leading to activation \p Index.
  std::vector<ProcId> contextOf(int Index) const {
    std::vector<ProcId> Chain;
    for (int Cursor = Index; Cursor > 0; Cursor = Nodes[Cursor].Parent)
      Chain.push_back(Nodes[Cursor].Proc);
    return {Chain.rbegin(), Chain.rend()};
  }

  /// Number of *distinct* call chains, which is exactly the vertex count a
  /// recursion-free CCT must have.
  size_t numDistinctContexts() const;

private:
  std::vector<Node> Nodes;
  std::vector<int> Stack;
};

/// The dynamic call graph: one vertex per procedure, an edge X -> Y iff X
/// called Y at least once.
class DynamicCallGraph {
public:
  void addCall(ProcId Caller, ProcId Callee) {
    Procs.insert(Caller);
    Procs.insert(Callee);
    Edges.insert({Caller, Callee});
  }

  size_t numProcs() const { return Procs.size(); }
  size_t numEdges() const { return Edges.size(); }
  bool hasEdge(ProcId Caller, ProcId Callee) const {
    return Edges.count({Caller, Callee}) != 0;
  }

  const std::set<std::pair<ProcId, ProcId>> &edges() const { return Edges; }

private:
  std::set<ProcId> Procs;
  std::set<std::pair<ProcId, ProcId>> Edges;
};

} // namespace cct
} // namespace pp

#endif // PP_CCT_DYNAMICCALLTREE_H
