//===- cct/DynamicCallTree.cpp - DCT and DCG references --------------------===//

#include "cct/DynamicCallTree.h"

#include <map>

using namespace pp;
using namespace pp::cct;

size_t DynamicCallTree::numDistinctContexts() const {
  // Two activations share a context iff they share a (procedure, parent
  // context) pair; count equivalence classes with a trie walk over the
  // tree, merging identical-procedure siblings.
  size_t Count = 0;
  // Work list of merged sibling groups: each group is a set of DCT nodes
  // that map to the same context.
  std::vector<std::vector<int>> Work;
  Work.push_back({0});
  while (!Work.empty()) {
    std::vector<int> Group = std::move(Work.back());
    Work.pop_back();
    if (Nodes[Group.front()].Proc != RootProcId)
      ++Count;
    std::map<ProcId, std::vector<int>> ByProc;
    for (int Index : Group)
      for (int Child : Nodes[Index].Children)
        ByProc[Nodes[Child].Proc].push_back(Child);
    for (auto &[Proc, Members] : ByProc)
      Work.push_back(std::move(Members));
  }
  return Count;
}
