//===- cct/CallingContextTree.h - The calling context tree ------*- C++ -*-===//
///
/// \file
/// The calling context tree of §4: a run-time structure between the dynamic
/// call tree (unbounded, one vertex per activation) and the dynamic call
/// graph (bounded, but merges all contexts). A CCT vertex — a *call record*
/// (Figure 6) — represents one equivalence class of activations: same
/// procedure, equivalent caller context, with recursion collapsed onto the
/// ancestor record (introducing backedges and bounding the depth by the
/// number of procedures).
///
/// The construction mirrors the paper's instrumentation protocol: the
/// caller passes a (record, callee-slot) pair — the gCSP — down to the
/// callee, whose entry code resolves the slot: directly (already a record
/// pointer), through the indirect-call list (with move-to-front), or by
/// walking parent pointers to detect recursion before allocating a fresh
/// record.
///
/// Records carry simulated addresses in the CCT heap region; an optional
/// MemCharger observes every field access the algorithm performs, letting
/// the profiling runtime charge the simulated machine exactly the memory
/// traffic the inline instrumentation would generate.
///
//===----------------------------------------------------------------------===//

#ifndef PP_CCT_CALLINGCONTEXTTREE_H
#define PP_CCT_CALLINGCONTEXTTREE_H

#include "support/AddressLayout.h"

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace pp {
namespace cct {

/// Procedure identifier (the function id; the paper uses the procedure's
/// start address).
using ProcId = uint32_t;

/// The pseudo-procedure of the root record ("T", §4.2).
inline constexpr ProcId RootProcId = ~ProcId(0);

/// The root's callee slot for signal handlers (slot 0 enters main). This
/// realises the paper's note that handling signals requires the CCT to
/// have multiple roots: every handler activation hangs off the root, not
/// off whatever procedure the signal interrupted.
inline constexpr unsigned SignalSlot = 1;

/// Static description of one procedure, supplied by the instrumenter.
struct ProcDesc {
  std::string Name;
  /// Number of call sites (= callee slots per record).
  unsigned NumSites = 0;
  /// Per-site flag: true for indirect call sites (their slots hold lists).
  std::vector<uint8_t> SiteIsIndirect;
  /// Potential Ball-Larus paths, for sizing the per-record path table in
  /// combined flow+context profiling; 0 when no path profile is kept.
  uint64_t NumPaths = 0;
};

/// Observer of the memory traffic and instruction footprint of CCT
/// operations (implemented by the profiling runtime; null = free).
class MemCharger {
public:
  virtual ~MemCharger();
  virtual void touchMemory(uint64_t Addr, unsigned Size, bool IsWrite) = 0;
  virtual void chargeInsts(unsigned N) = 0;
};

/// Per-path counters held inside a call record (flow + context profiling).
struct PathCell {
  uint64_t Freq = 0;
  uint64_t Metric0 = 0;
  uint64_t Metric1 = 0;
};

class CallingContextTree;

/// One CCT vertex (Figure 6's CallRecord).
class CallRecord {
public:
  /// A tagged callee slot (Figure 7): unresolved (offset tag), a direct
  /// pointer to one record, or a move-to-front list for indirect sites.
  struct Slot {
    enum class Kind : uint8_t { Unresolved, Record, List };
    Kind K = Kind::Unresolved;
    CallRecord *Direct = nullptr;
    /// (record, simulated list-cell address) pairs, front = most recent.
    std::vector<std::pair<CallRecord *, uint64_t>> List;
  };

  ProcId procId() const { return Proc; }
  CallRecord *parent() const { return Parent; }
  /// Simulated address of this record in the CCT heap.
  uint64_t addr() const { return Addr; }
  /// Tree depth (root = 0).
  unsigned depth() const { return Depth; }

  unsigned numSlots() const { return static_cast<unsigned>(Slots.size()); }
  const Slot &slot(unsigned Index) const { return Slots[Index]; }

  /// Metric accumulators (schema defined by the runtime; index 0 is
  /// conventionally the invocation count).
  std::vector<uint64_t> Metrics;

  /// Per-path counters when combined flow+context profiling is active.
  std::unordered_map<uint64_t, PathCell> PathTable;

  /// Simulated base address of the path counter table (array mode), or of
  /// the per-record hash table (hash mode).
  uint64_t pathTableAddr() const { return PathTableAddr; }

private:
  friend class CallingContextTree;

  ProcId Proc = RootProcId;
  CallRecord *Parent = nullptr;
  uint64_t Addr = 0;
  uint64_t PathTableAddr = 0;
  unsigned Depth = 0;
  std::vector<Slot> Slots;
};

/// Aggregate statistics (the raw material of the paper's Table 3).
struct CctStats {
  uint64_t NumRecords = 0;
  /// Simulated bytes: records + list cells + path tables.
  uint64_t TotalBytes = 0;
  uint64_t RecordBytes = 0;
  double AvgNodeBytes = 0;
  /// Average children of interior (non-leaf) records, via tree edges.
  double AvgOutDegree = 0;
  double AvgLeafDepth = 0;
  uint64_t MaxDepth = 0;
  /// Records of the most-replicated procedure.
  uint64_t MaxReplication = 0;
  ProcId MaxReplicationProc = RootProcId;
  uint64_t TotalSlots = 0;
  uint64_t UsedSlots = 0;
  /// Slots resolved to an ancestor record (recursion backedges).
  uint64_t BackedgeSlots = 0;
};

/// A full-fidelity, pointer-free copy of a tree, suitable for persistence
/// (the driver layer's on-disk run cache). Unlike the compact profile-file
/// encoding in cct/Export.h, an image preserves slots, simulated
/// addresses, and heap usage, so CallingContextTree::fromImage rebuilds a
/// tree whose statistics are identical to the original's.
struct TreeImage {
  struct Slot {
    /// Mirrors CallRecord::Slot::Kind.
    uint8_t Kind = 0;
    /// Resolved targets as (record index, simulated list-cell address);
    /// direct slots carry one pair with address 0.
    std::vector<std::pair<uint64_t, uint64_t>> Targets;
  };
  struct Record {
    ProcId Proc = RootProcId;
    /// Index of the parent record, or -1 for the root.
    int64_t Parent = -1;
    uint64_t Addr = 0;
    uint64_t PathTableAddr = 0;
    std::vector<uint64_t> Metrics;
    std::vector<std::pair<uint64_t, PathCell>> PathCells;
    std::vector<Slot> Slots;
  };

  std::vector<ProcDesc> Procs;
  unsigned NumMetrics = 0;
  unsigned PathCellBytes = 24;
  uint64_t HashThreshold = 1 << 16;
  uint64_t HeapBytes = 0;
  uint64_t ListCells = 0;
  /// Allocation order, root first (parents precede children).
  std::vector<Record> Records;
};

/// The tree itself plus its simulated-heap allocator.
class CallingContextTree {
public:
  /// \p Procs is indexed by ProcId. \p NumMetrics counters are allocated
  /// per record. \p PathCellBytes is the per-path counter stride (8 for
  /// frequency only, 24 with two metric accumulators); \p HashThreshold
  /// bounds array-mode path tables.
  CallingContextTree(std::vector<ProcDesc> Procs, unsigned NumMetrics,
                     MemCharger *Charger = nullptr,
                     unsigned PathCellBytes = 24,
                     uint64_t HashThreshold = 1 << 16);

  CallRecord *root() { return Root; }
  const CallRecord *root() const { return Root; }

  const ProcDesc &procDesc(ProcId Proc) const { return Procs[Proc]; }
  size_t numProcs() const { return Procs.size(); }

  /// The procedure-entry operation of §4.2: resolves \p SlotIndex of
  /// \p Caller for callee \p Proc, reusing, backedging, or allocating a
  /// record. Charges the configured MemCharger for every touch.
  CallRecord *enter(CallRecord *Caller, unsigned SlotIndex, ProcId Proc);

  /// Adds to a record metric (free; the caller charges separately if the
  /// update is program-visible).
  static void bumpMetric(CallRecord *R, unsigned Metric, uint64_t Delta) {
    R->Metrics[Metric] += Delta;
  }

  /// Commits one path execution into \p R's path table, charging the
  /// simulated accesses (array indexing or hash probing).
  void commitPath(CallRecord *R, uint64_t PathSum, bool WithMetrics,
                  uint64_t Metric0, uint64_t Metric1);

  size_t numRecords() const { return Records.size(); }
  /// All records in allocation order (root first).
  const std::vector<std::unique_ptr<CallRecord>> &records() const {
    return Records;
  }

  /// Total simulated bytes allocated in the CCT heap.
  uint64_t heapBytes() const { return HeapNext - layout::CctHeapBase; }

  CctStats computeStats() const;

  /// Snapshots the complete tree state for persistence.
  TreeImage image() const;
  /// Rebuilds a tree from an image. The result is structurally identical
  /// (records, slots, addresses, heap usage) but carries no MemCharger;
  /// it is a read-only profile, not a live instrumentation target.
  /// Returns nullptr for malformed images (bad indices or an empty record
  /// list).
  static std::unique_ptr<CallingContextTree> fromImage(const TreeImage &Image);

  /// Record layout constants (Figure 6: ID, parent, metrics[], children[]).
  /// The root record has two slots (program entry + signal handlers).
  uint64_t recordBytes(ProcId Proc) const {
    uint64_t NumSites = Proc == RootProcId ? 2 : Procs[Proc].NumSites;
    return 8 + 8 + 8 * uint64_t(NumMetrics) + 8 * NumSites;
  }
  static constexpr uint64_t ListCellBytes = 16;

private:
  uint64_t heapAlloc(uint64_t Size);
  CallRecord *makeRecord(ProcId Proc, CallRecord *Parent);
  /// Ancestor search for recursion: \p From and its ancestors, nearest
  /// first. Charges the walk.
  CallRecord *findAncestor(CallRecord *From, ProcId Proc);
  void touch(uint64_t Addr, unsigned Size, bool IsWrite) {
    if (Charger)
      Charger->touchMemory(Addr, Size, IsWrite);
  }
  void charge(unsigned Insts) {
    if (Charger)
      Charger->chargeInsts(Insts);
  }

  std::vector<ProcDesc> Procs;
  unsigned NumMetrics;
  MemCharger *Charger;
  unsigned PathCellBytes;
  uint64_t HashThreshold;
  uint64_t HeapNext = layout::CctHeapBase;
  std::vector<std::unique_ptr<CallRecord>> Records;
  CallRecord *Root = nullptr;
  uint64_t ListCellCount = 0;
};

} // namespace cct
} // namespace pp

#endif // PP_CCT_CALLINGCONTEXTTREE_H
