//===- cct/ImageIO.cpp - TreeImage binary codec --------------------------------===//

#include "cct/ImageIO.h"

using namespace pp;
using namespace pp::cct;

namespace {

// Minimum encoded sizes (bytes) of variable-count elements, used to bound
// counts before allocation.
constexpr size_t MinProcBytes = 8 + 8 + 8 + 8; // name, sites, mask, paths
constexpr size_t MinRecordBytes = 5 * 8 + 2 * 8; // fixed fields + 2 counts
constexpr size_t MinPathCellBytes = 4 * 8;
constexpr size_t MinSlotBytes = 1 + 8;
constexpr size_t MinTargetBytes = 2 * 8;

} // namespace

void cct::writeTreeImage(ByteWriter &W, const TreeImage &Image) {
  W.u64(Image.Procs.size());
  for (const ProcDesc &Proc : Image.Procs) {
    W.str(Proc.Name);
    W.u64(Proc.NumSites);
    W.bytes(Proc.SiteIsIndirect);
    W.u64(Proc.NumPaths);
  }
  W.u64(Image.NumMetrics);
  W.u64(Image.PathCellBytes);
  W.u64(Image.HashThreshold);
  W.u64(Image.HeapBytes);
  W.u64(Image.ListCells);
  W.u64(Image.Records.size());
  for (const TreeImage::Record &Rec : Image.Records) {
    W.u64(Rec.Proc);
    W.u64(static_cast<uint64_t>(Rec.Parent));
    W.u64(Rec.Addr);
    W.u64(Rec.PathTableAddr);
    W.u64(Rec.Metrics.size());
    for (uint64_t Metric : Rec.Metrics)
      W.u64(Metric);
    W.u64(Rec.PathCells.size());
    for (const auto &[Sum, Cell] : Rec.PathCells) {
      W.u64(Sum);
      W.u64(Cell.Freq);
      W.u64(Cell.Metric0);
      W.u64(Cell.Metric1);
    }
    W.u64(Rec.Slots.size());
    for (const TreeImage::Slot &Slot : Rec.Slots) {
      W.u8(Slot.Kind);
      W.u64(Slot.Targets.size());
      for (const auto &[Target, CellAddr] : Slot.Targets) {
        W.u64(Target);
        W.u64(CellAddr);
      }
    }
  }
}

ImageDecodeStatus cct::readTreeImage(ByteReader &R, TreeImage &Out) {
  uint64_t NumProcs;
  if (!R.count(NumProcs, MinProcBytes))
    return ImageDecodeStatus::Truncated;
  Out.Procs.resize(NumProcs);
  for (ProcDesc &Proc : Out.Procs) {
    uint64_t Sites, Paths;
    if (!R.str(Proc.Name) || !R.u64(Sites) || !R.bytes(Proc.SiteIsIndirect) ||
        !R.u64(Paths))
      return ImageDecodeStatus::Truncated;
    if (Sites > MaxProcSites)
      return ImageDecodeStatus::Malformed;
    Proc.NumSites = static_cast<unsigned>(Sites);
    Proc.NumPaths = Paths;
  }
  uint64_t NumMetrics, CellBytes, NumRecords;
  if (!R.u64(NumMetrics) || !R.u64(CellBytes) || !R.u64(Out.HashThreshold) ||
      !R.u64(Out.HeapBytes) || !R.u64(Out.ListCells))
    return ImageDecodeStatus::Truncated;
  // The tree constructor allocates per-record metric arrays and simulated
  // heap space up front; insane geometry would abort inside it, so reject
  // it here.
  if (NumMetrics > MaxTreeMetrics || CellBytes > MaxPathCellBytes ||
      Out.HeapBytes > MaxCctHeapBytes)
    return ImageDecodeStatus::Malformed;
  if (!R.count(NumRecords, MinRecordBytes))
    return ImageDecodeStatus::Truncated;
  Out.NumMetrics = static_cast<unsigned>(NumMetrics);
  Out.PathCellBytes = static_cast<unsigned>(CellBytes);
  Out.Records.resize(NumRecords);
  for (TreeImage::Record &Rec : Out.Records) {
    uint64_t Proc, Parent, NumRecMetrics, NumCells, NumSlots;
    if (!R.u64(Proc) || !R.u64(Parent) || !R.u64(Rec.Addr) ||
        !R.u64(Rec.PathTableAddr) || !R.count(NumRecMetrics, 8))
      return ImageDecodeStatus::Truncated;
    Rec.Proc = static_cast<ProcId>(Proc);
    Rec.Parent = static_cast<int64_t>(Parent);
    if (Rec.Proc != RootProcId && Rec.Proc >= Out.Procs.size())
      return ImageDecodeStatus::Malformed;
    Rec.Metrics.resize(NumRecMetrics);
    for (uint64_t &Metric : Rec.Metrics)
      if (!R.u64(Metric))
        return ImageDecodeStatus::Truncated;
    if (!R.count(NumCells, MinPathCellBytes))
      return ImageDecodeStatus::Truncated;
    Rec.PathCells.resize(NumCells);
    for (auto &[Sum, Cell] : Rec.PathCells)
      if (!R.u64(Sum) || !R.u64(Cell.Freq) || !R.u64(Cell.Metric0) ||
          !R.u64(Cell.Metric1))
        return ImageDecodeStatus::Truncated;
    if (!R.count(NumSlots, MinSlotBytes))
      return ImageDecodeStatus::Truncated;
    Rec.Slots.resize(NumSlots);
    for (TreeImage::Slot &Slot : Rec.Slots) {
      uint64_t NumTargets;
      if (!R.u8(Slot.Kind) || !R.count(NumTargets, MinTargetBytes))
        return ImageDecodeStatus::Truncated;
      if (Slot.Kind > static_cast<uint8_t>(CallRecord::Slot::Kind::List))
        return ImageDecodeStatus::Malformed;
      Slot.Targets.resize(NumTargets);
      for (auto &[Target, CellAddr] : Slot.Targets)
        if (!R.u64(Target) || !R.u64(CellAddr))
          return ImageDecodeStatus::Truncated;
    }
  }
  return ImageDecodeStatus::Ok;
}
