//===- cct/Export.cpp - CCT serialisation and dot export -------------------===//

#include "cct/Export.h"

#include "support/Format.h"

#include <cstring>
#include <unordered_map>

using namespace pp;
using namespace pp::cct;

namespace {

constexpr uint32_t Magic = 0x50504354; // "PPCT"

void writeU64(std::vector<uint8_t> &Out, uint64_t Value) {
  for (unsigned Index = 0; Index != 8; ++Index)
    Out.push_back(static_cast<uint8_t>(Value >> (8 * Index)));
}

class Reader {
public:
  explicit Reader(const std::vector<uint8_t> &Bytes) : Bytes(Bytes) {}

  bool readU64(uint64_t &Value) {
    if (Cursor + 8 > Bytes.size())
      return false;
    Value = 0;
    for (unsigned Index = 0; Index != 8; ++Index)
      Value |= uint64_t(Bytes[Cursor + Index]) << (8 * Index);
    Cursor += 8;
    return true;
  }

private:
  const std::vector<uint8_t> &Bytes;
  size_t Cursor = 0;
};

} // namespace

std::vector<uint8_t> cct::serialize(const CallingContextTree &Tree) {
  std::vector<uint8_t> Out;
  writeU64(Out, Magic);
  writeU64(Out, Tree.numRecords());

  std::unordered_map<const CallRecord *, uint64_t> IndexOf;
  for (size_t Index = 0; Index != Tree.records().size(); ++Index)
    IndexOf[Tree.records()[Index].get()] = Index;

  for (const auto &R : Tree.records()) {
    writeU64(Out, R->procId());
    writeU64(Out, R->parent() ? IndexOf.at(R->parent()) + 1 : 0);
    writeU64(Out, R->Metrics.size());
    for (uint64_t Metric : R->Metrics)
      writeU64(Out, Metric);
    writeU64(Out, R->PathTable.size());
    for (const auto &[Sum, Cell] : R->PathTable) {
      writeU64(Out, Sum);
      writeU64(Out, Cell.Freq);
      writeU64(Out, Cell.Metric0);
      writeU64(Out, Cell.Metric1);
    }
  }
  return Out;
}

bool cct::deserialize(const std::vector<uint8_t> &Bytes,
                      std::vector<LoadedRecord> &Out) {
  Reader R(Bytes);
  uint64_t Header, NumRecords;
  if (!R.readU64(Header) || Header != Magic || !R.readU64(NumRecords))
    return false;
  Out.clear();
  Out.reserve(NumRecords);
  for (uint64_t Index = 0; Index != NumRecords; ++Index) {
    LoadedRecord Record;
    uint64_t Proc, ParentPlus1, NumMetrics, NumCells;
    if (!R.readU64(Proc) || !R.readU64(ParentPlus1) || !R.readU64(NumMetrics))
      return false;
    Record.Proc = static_cast<ProcId>(Proc);
    if (ParentPlus1 > Index)
      return false; // parents precede children in allocation order
    Record.Parent = static_cast<int>(ParentPlus1) - 1;
    Record.Metrics.resize(NumMetrics);
    for (uint64_t M = 0; M != NumMetrics; ++M)
      if (!R.readU64(Record.Metrics[M]))
        return false;
    if (!R.readU64(NumCells))
      return false;
    for (uint64_t C = 0; C != NumCells; ++C) {
      uint64_t Sum;
      PathCell Cell;
      if (!R.readU64(Sum) || !R.readU64(Cell.Freq) ||
          !R.readU64(Cell.Metric0) || !R.readU64(Cell.Metric1))
        return false;
      Record.PathCells.push_back({Sum, Cell});
    }
    Out.push_back(std::move(Record));
  }
  return true;
}

std::string cct::exportDot(const CallingContextTree &Tree) {
  std::string Out = "digraph cct {\n  node [shape=box];\n";
  std::unordered_map<const CallRecord *, uint64_t> IndexOf;
  for (size_t Index = 0; Index != Tree.records().size(); ++Index)
    IndexOf[Tree.records()[Index].get()] = Index;

  for (const auto &R : Tree.records()) {
    std::string Label =
        R->procId() == RootProcId
            ? std::string("T")
            : Tree.procDesc(R->procId()).Name;
    Out += formatString("  n%llu [label=\"%s\"];\n",
                        (unsigned long long)IndexOf.at(R.get()),
                        Label.c_str());
  }
  for (const auto &R : Tree.records()) {
    uint64_t From = IndexOf.at(R.get());
    auto EmitEdge = [&](const CallRecord *To) {
      bool TreeEdge = To->parent() == R.get();
      Out += formatString("  n%llu -> n%llu%s;\n", (unsigned long long)From,
                          (unsigned long long)IndexOf.at(To),
                          TreeEdge ? "" : " [style=dashed]");
    };
    for (unsigned Index = 0; Index != R->numSlots(); ++Index) {
      const CallRecord::Slot &S = R->slot(Index);
      if (S.K == CallRecord::Slot::Kind::Record && S.Direct)
        EmitEdge(S.Direct);
      else if (S.K == CallRecord::Slot::Kind::List)
        for (const auto &Cell : S.List)
          EmitEdge(Cell.first);
    }
  }
  return Out + "}\n";
}
