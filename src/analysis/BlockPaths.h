//===- analysis/BlockPaths.h - §6.4.3's blocks-vs-paths statistic -*- C++ -*-===//
///
/// \file
/// The paper's argument against statement-level attribution (§6.4.3):
/// "the basic blocks along hot paths execute along an average of 16
/// different paths", so knowing a block misses does not say which path
/// caused it. This computes that statistic from a flow profile.
///
//===----------------------------------------------------------------------===//

#ifndef PP_ANALYSIS_BLOCKPATHS_H
#define PP_ANALYSIS_BLOCKPATHS_H

#include "analysis/HotPaths.h"

namespace pp {
namespace ir {
class Module;
} // namespace ir

namespace analysis {

/// How ambiguously blocks map to paths.
struct BlockPathStats {
  /// Distinct (function, block) pairs lying on at least one hot path.
  uint64_t HotPathBlocks = 0;
  /// Average number of *executed* paths (of any temperature) through
  /// those blocks.
  double AvgPathsPerBlock = 0;
  uint64_t MaxPathsPerBlock = 0;
};

/// Computes the statistic. \p Original is the pristine module whose CFGs
/// define the path sums in \p Records; \p Analysis identifies the hot
/// paths.
BlockPathStats computeBlockPathStats(const ir::Module &Original,
                                     const std::vector<PathRecord> &Records,
                                     const HotPathAnalysis &Analysis);

} // namespace analysis
} // namespace pp

#endif // PP_ANALYSIS_BLOCKPATHS_H
