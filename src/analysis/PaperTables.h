//===- analysis/PaperTables.h - Tables 3-5 rendering -----------*- C++ -*-===//
///
/// \file
/// The complete stdout rendering of the paper's Tables 3, 4, and 5,
/// factored out of the bench binaries so that live runs (bench/) and
/// stored profile artifacts (tools/pp-report) format their rows through
/// the same code and are byte-comparable: the acceptance check for the
/// profile repository is that a report regenerated from artifacts equals
/// the live table exactly.
///
/// Also home of SuiteAverager, the CINT95/CFP95/SPEC95 averaging rows
/// shared by every suite-wide table.
///
//===----------------------------------------------------------------------===//

#ifndef PP_ANALYSIS_PAPERTABLES_H
#define PP_ANALYSIS_PAPERTABLES_H

#include "analysis/HotPaths.h"
#include "analysis/SiteStats.h"
#include "cct/CallingContextTree.h"

#include <cassert>
#include <string>
#include <vector>

namespace pp {
namespace analysis {

/// Accumulates per-benchmark values and emits the paper's three averaging
/// rows (CINT95 Avg, CFP95 Avg, SPEC95 Avg), plus the "without go and
/// gcc" row used by Tables 4 and 5.
class SuiteAverager {
public:
  void add(const std::string &Name, bool IsFloat,
           std::vector<double> Values) {
    Rows.push_back(Row{Name, IsFloat, std::move(Values)});
  }

  std::vector<double> average(bool IncludeInt, bool IncludeFloat,
                              bool ExcludeGoGcc = false) const {
    std::vector<double> Sums;
    size_t Count = 0;
    for (const Row &R : Rows) {
      if ((R.IsFloat && !IncludeFloat) || (!R.IsFloat && !IncludeInt))
        continue;
      if (ExcludeGoGcc && (R.Name == "099.go" || R.Name == "126.gcc"))
        continue;
      if (Sums.empty())
        Sums.assign(R.Values.size(), 0);
      assert(R.Values.size() == Sums.size() &&
             "SuiteAverager rows must all have the same number of values");
      for (size_t Index = 0; Index != R.Values.size(); ++Index)
        Sums[Index] += R.Values[Index];
      ++Count;
    }
    for (double &Sum : Sums)
      Sum /= Count ? double(Count) : 1.0;
    return Sums;
  }

private:
  struct Row {
    std::string Name;
    bool IsFloat;
    std::vector<double> Values;
  };
  std::vector<Row> Rows;
};

/// One benchmark's row of Table 3 (CCT statistics from a Context-and-Flow
/// profile).
struct Table3Row {
  std::string Name;
  /// Serialised profile size plus simulated CCT heap bytes.
  uint64_t ProfileBytes = 0;
  cct::CctStats Stats;
  SitePathStats Sites;
};

/// One benchmark's flattened Flow-and-HW path records, the raw material
/// of Tables 4 and 5.
struct SuitePathRows {
  std::string Name;
  bool IsFloat = false;
  std::vector<PathRecord> Records;
};

/// Renders the complete stdout of the Table 3 / 4 / 5 binaries (title,
/// table, averaging rows, outlier follow-ups, and commentary). Rows for
/// failed runs are simply absent from the input; the renderers print
/// whatever rows they are given.
std::string renderTable3(const std::vector<Table3Row> &Rows);
std::string renderTable4(const std::vector<SuitePathRows> &Rows);
std::string renderTable5(const std::vector<SuitePathRows> &Rows);

} // namespace analysis
} // namespace pp

#endif // PP_ANALYSIS_PAPERTABLES_H
