//===- analysis/EdgeProjection.h - paths refine edges ----------*- C++ -*-===//
///
/// \file
/// A path profile strictly refines an edge profile: summing path
/// frequencies over the edges each path traverses (including the back
/// edge a path ends with) must reproduce the exact per-edge execution
/// counts. This projection is both a useful downgrade (edge-profile
/// consumers can run off path profiles) and a powerful consistency check
/// between the two instrumentation schemes — the tests verify it against
/// the chord-reconstructed Edge mode and the oracle.
///
//===----------------------------------------------------------------------===//

#ifndef PP_ANALYSIS_EDGEPROJECTION_H
#define PP_ANALYSIS_EDGEPROJECTION_H

#include "prof/Session.h"

#include <cstdint>
#include <vector>

namespace pp {
namespace ir {
class Module;
} // namespace ir

namespace analysis {

/// Projects \p Profile (of function \p FuncId) onto per-CFG-edge counts.
/// The result is indexed by the CFG edge ids of the pristine module's
/// function. Returns an empty vector when the function has no valid
/// numbering.
std::vector<uint64_t>
edgeCountsFromPaths(const ir::Module &Original, unsigned FuncId,
                    const prof::FunctionPathProfile &Profile);

} // namespace analysis
} // namespace pp

#endif // PP_ANALYSIS_EDGEPROJECTION_H
