//===- analysis/PaperTables.cpp - Tables 3-5 rendering --------------------===//

#include "analysis/PaperTables.h"

#include "support/Format.h"
#include "support/TableWriter.h"

#include <cstdio>

using namespace pp;
using namespace pp::analysis;

std::string analysis::renderTable3(const std::vector<Table3Row> &Rows) {
  std::string Out = "Table 3: statistics for a CCT with intraprocedural path "
                    "information\n\n";

  TableWriter Table;
  Table.setHeader({"Benchmark", "Size", "Nodes", "AvgNode", "AvgOut",
                   "Ht avg", "Ht max", "MaxRepl", "Sites", "Used",
                   "OnePath"});
  for (const Table3Row &Row : Rows)
    Table.addRow({Row.Name, formatEng(double(Row.ProfileBytes)),
                  std::to_string(Row.Stats.NumRecords),
                  formatString("%.1f", Row.Stats.AvgNodeBytes),
                  formatString("%.1f", Row.Stats.AvgOutDegree),
                  formatString("%.1f", Row.Stats.AvgLeafDepth),
                  std::to_string(Row.Stats.MaxDepth),
                  std::to_string(Row.Stats.MaxReplication),
                  std::to_string(Row.Sites.TotalSites),
                  std::to_string(Row.Sites.UsedSites),
                  std::to_string(Row.Sites.OnePathSites)});

  Out += Table.render();
  Out += "\nPaper's shape: CCTs are bushy rather than tall (out-degree\n"
         "well above 1, height bounded by the procedure count); call-\n"
         "heavy codes (vortex-like) dominate node counts; a sizeable\n"
         "fraction of used call sites is reached by exactly one path,\n"
         "where flow+context profiling equals full interprocedural\n"
         "path profiling.\n";
  return Out;
}

std::string analysis::renderTable4(const std::vector<SuitePathRows> &Rows) {
  std::string Out = "Table 4: L1 data cache misses by path "
                    "(hot threshold = 1% of misses)\n\n";

  TableWriter Table;
  Table.setHeader({"Benchmark", "Paths", "Inst", "Miss", "Hot", "Inst%",
                   "Miss%", "Dense", "Inst%", "Miss%", "Sparse", "Cold",
                   "Miss%"});
  SuiteAverager Averager;
  std::vector<const SuitePathRows *> GoGcc;

  for (const SuitePathRows &Row : Rows) {
    HotPathAnalysis A = analyzeHotPaths(Row.Records, 0.01);
    Table.addRow({Row.Name, std::to_string(A.TotalPaths),
                  formatEng(double(A.TotalInsts)),
                  formatEng(double(A.TotalMisses)),
                  std::to_string(A.Hot.Num),
                  formatPercent(double(A.Hot.Insts), double(A.TotalInsts)),
                  formatPercent(double(A.Hot.Misses), double(A.TotalMisses)),
                  std::to_string(A.Dense.Num),
                  formatPercent(double(A.Dense.Insts), double(A.TotalInsts)),
                  formatPercent(double(A.Dense.Misses),
                                double(A.TotalMisses)),
                  std::to_string(A.Sparse.Num), std::to_string(A.Cold.Num),
                  formatPercent(double(A.Cold.Misses),
                                double(A.TotalMisses))});
    Averager.add(Row.Name, Row.IsFloat,
                 {double(A.TotalPaths), double(A.Hot.Num),
                  100.0 * double(A.Hot.Misses) / double(A.TotalMisses),
                  double(A.Dense.Num), double(A.Sparse.Num),
                  double(A.Cold.Num)});
    if (Row.Name == "099.go" || Row.Name == "126.gcc")
      GoGcc.push_back(&Row);
  }

  auto AddAverage = [&](const char *Label, bool Int, bool Float,
                        bool NoGoGcc) {
    std::vector<double> Avg = Averager.average(Int, Float, NoGoGcc);
    Table.addRow({Label, formatString("%.1f", Avg[0]), "", "",
                  formatString("%.1f", Avg[1]), "",
                  formatString("%.1f%%", Avg[2]),
                  formatString("%.1f", Avg[3]), "", "",
                  formatString("%.1f", Avg[4]), formatString("%.1f", Avg[5]),
                  ""});
  };
  Table.addSeparator();
  AddAverage("CINT95 Avg", true, false, false);
  AddAverage("CFP95 Avg", false, true, false);
  AddAverage("SPEC95 Avg", true, true, false);
  AddAverage("SPEC95 Avg - go,gcc", true, true, true);
  Out += Table.render();

  // The paper's go/gcc follow-up: lower the threshold to 0.1%.
  Out += "\nOutliers rerun with a 0.1% threshold (the paper finds "
         "~1% of executed\npaths then cover roughly half the "
         "misses):\n\n";
  TableWriter Outliers;
  Outliers.setHeader({"Benchmark", "Paths", "Hot@0.1%", "Hot paths/all",
                      "Miss%"});
  for (const SuitePathRows *Row : GoGcc) {
    HotPathAnalysis A = analyzeHotPaths(Row->Records, 0.001);
    Outliers.addRow(
        {Row->Name, std::to_string(A.TotalPaths), std::to_string(A.Hot.Num),
         formatPercent(double(A.Hot.Num), double(A.TotalPaths)),
         formatPercent(double(A.Hot.Misses), double(A.TotalMisses))});
  }
  Out += Outliers.render();
  Out += "\nPaper's shape: a handful of hot paths (3-28) covers most "
         "misses, most\nhot paths are dense, and go/gcc execute an "
         "order of magnitude more\npaths with a flatter distribution.\n";
  return Out;
}

std::string analysis::renderTable5(const std::vector<SuitePathRows> &Rows) {
  std::string Out = "Table 5: L1 data cache misses per procedure "
                    "(hot threshold = 1%)\n\n";

  TableWriter Table;
  Table.setHeader({"Benchmark", "Hot", "Path/Proc", "Miss%", "Dense",
                   "Path/Proc", "Miss%", "Sparse", "Path/Proc", "Cold",
                   "Path/Proc", "Miss%"});
  SuiteAverager Averager;

  for (const SuitePathRows &Row : Rows) {
    std::vector<ProcRecord> Procs = aggregateByProcedure(Row.Records);
    HotProcAnalysis A = analyzeHotProcs(Procs, 0.01);

    Table.addRow(
        {Row.Name, std::to_string(A.Hot.Num),
         formatString("%.1f", A.HotPathsPerProc),
         formatPercent(double(A.Hot.Misses), double(A.TotalMisses)),
         std::to_string(A.Dense.Num),
         formatString("%.1f", A.DensePathsPerProc),
         formatPercent(double(A.Dense.Misses), double(A.TotalMisses)),
         std::to_string(A.Sparse.Num),
         formatString("%.1f", A.SparsePathsPerProc),
         std::to_string(A.Cold.Num),
         formatString("%.1f", A.ColdPathsPerProc),
         formatPercent(double(A.Cold.Misses), double(A.TotalMisses))});
    Averager.add(
        Row.Name, Row.IsFloat,
        {double(A.Hot.Num), A.HotPathsPerProc,
         100.0 * double(A.Hot.Misses) / double(A.TotalMisses),
         double(A.Dense.Num), A.DensePathsPerProc, double(A.Sparse.Num),
         A.SparsePathsPerProc, double(A.Cold.Num), A.ColdPathsPerProc});
  }

  auto AddAverage = [&](const char *Label, bool Int, bool Float,
                        bool NoGoGcc) {
    std::vector<double> Avg = Averager.average(Int, Float, NoGoGcc);
    Table.addRow({Label, formatString("%.1f", Avg[0]),
                  formatString("%.1f", Avg[1]),
                  formatString("%.1f%%", Avg[2]),
                  formatString("%.1f", Avg[3]), formatString("%.1f", Avg[4]),
                  "", formatString("%.1f", Avg[5]),
                  formatString("%.1f", Avg[6]), formatString("%.1f", Avg[7]),
                  formatString("%.1f", Avg[8]), ""});
  };
  Table.addSeparator();
  AddAverage("CINT95 Avg", true, false, false);
  AddAverage("CFP95 Avg", false, true, false);
  AddAverage("SPEC95 Avg", true, true, false);
  AddAverage("SPEC95 Avg - go,gcc", true, true, true);

  Out += Table.render();
  Out += "\nPaper's shape: a few procedures (1-24) absorb most misses, "
         "but hot\nprocedures execute roughly ten times as many paths "
         "as cold ones, so\nknowing the procedure does not isolate the "
         "misses -- the argument for\npath-level attribution.\n";
  return Out;
}
