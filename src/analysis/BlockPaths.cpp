//===- analysis/BlockPaths.cpp - §6.4.3's blocks-vs-paths statistic -----------===//

#include "analysis/BlockPaths.h"

#include "bl/PathNumbering.h"
#include "cfg/Cfg.h"
#include "ir/Module.h"

#include <map>
#include <memory>
#include <set>

using namespace pp;
using namespace pp::analysis;

BlockPathStats
analysis::computeBlockPathStats(const ir::Module &Original,
                                const std::vector<PathRecord> &Records,
                                const HotPathAnalysis &Analysis) {
  BlockPathStats Stats;

  // Count executed paths through every block, and mark the blocks that
  // appear on hot paths.
  std::map<std::pair<unsigned, unsigned>, uint64_t> PathsThrough;
  std::set<std::pair<unsigned, unsigned>> HotBlocks;
  std::set<size_t> HotIndexSet(Analysis.HotIndices.begin(),
                               Analysis.HotIndices.end());

  std::map<unsigned, std::unique_ptr<cfg::Cfg>> Cfgs;
  std::map<unsigned, std::unique_ptr<bl::PathNumbering>> Numberings;
  for (size_t Index = 0; Index != Records.size(); ++Index) {
    const PathRecord &Record = Records[Index];
    auto &PN = Numberings[Record.FuncId];
    if (!PN) {
      Cfgs[Record.FuncId] =
          std::make_unique<cfg::Cfg>(*Original.function(Record.FuncId));
      PN = std::make_unique<bl::PathNumbering>(*Cfgs[Record.FuncId]);
    }
    if (!PN->valid())
      continue;
    bl::RegeneratedPath Path = PN->regenerate(Record.PathSum);
    std::set<unsigned> Blocks(Path.Nodes.begin(), Path.Nodes.end());
    for (unsigned Block : Blocks) {
      std::pair<unsigned, unsigned> Key{Record.FuncId, Block};
      ++PathsThrough[Key];
      if (HotIndexSet.count(Index))
        HotBlocks.insert(Key);
    }
  }

  uint64_t Sum = 0;
  for (const auto &Key : HotBlocks) {
    uint64_t Count = PathsThrough.at(Key);
    Sum += Count;
    Stats.MaxPathsPerBlock = std::max(Stats.MaxPathsPerBlock, Count);
  }
  Stats.HotPathBlocks = HotBlocks.size();
  Stats.AvgPathsPerBlock =
      HotBlocks.empty() ? 0 : double(Sum) / double(HotBlocks.size());
  return Stats;
}
