//===- analysis/SiteStats.h - CCT call-site path statistics ----*- C++ -*-===//
///
/// \file
/// The last columns of the paper's Table 3: of the call sites in allocated
/// call records, how many were actually reached, and how many were reached
/// by exactly one intraprocedural path from the procedure's entry — the
/// case where combined flow and context sensitive profiling is as precise
/// as full interprocedural path profiling (§6.3).
///
//===----------------------------------------------------------------------===//

#ifndef PP_ANALYSIS_SITESTATS_H
#define PP_ANALYSIS_SITESTATS_H

#include "cct/CallingContextTree.h"
#include "prof/Instrumenter.h"

#include <cstdint>

namespace pp {
namespace ir {
class Module;
} // namespace ir

namespace analysis {

/// Call-site coverage of a combined flow+context profile.
struct SitePathStats {
  /// Call sites summed over all allocated call records.
  uint64_t TotalSites = 0;
  /// Sites whose block lies on at least one executed path of the record.
  uint64_t UsedSites = 0;
  /// Sites reached by exactly one executed path in their record.
  uint64_t OnePathSites = 0;
};

/// Computes the statistics from a Context-and-Flow run. \p Original is the
/// pristine module (its CFGs define the path numbering the records' path
/// sums refer to).
SitePathStats computeSitePathStats(const cct::CallingContextTree &Tree,
                                   const ir::Module &Original,
                                   const prof::Instrumented &Instr);

} // namespace analysis
} // namespace pp

#endif // PP_ANALYSIS_SITESTATS_H
