//===- analysis/SiteStats.cpp - CCT call-site path statistics ----------------===//

#include "analysis/SiteStats.h"

#include "bl/PathNumbering.h"
#include "cfg/Cfg.h"
#include "ir/Module.h"
#include "prof/CallSites.h"

#include <map>
#include <memory>
#include <set>

using namespace pp;
using namespace pp::analysis;

SitePathStats
analysis::computeSitePathStats(const cct::CallingContextTree &Tree,
                               const ir::Module &Original,
                               const prof::Instrumented &Instr) {
  SitePathStats Stats;

  // Per-function machinery, built lazily: CFG + numbering on the pristine
  // module, the call-site block list, and a cache of regenerated paths'
  // block sets.
  struct FuncContext {
    std::unique_ptr<cfg::Cfg> G;
    std::unique_ptr<bl::PathNumbering> PN;
    std::vector<unsigned> SiteBlocks;
    std::map<uint64_t, std::set<unsigned>> PathBlocks;
  };
  std::map<unsigned, FuncContext> Contexts;

  auto GetContext = [&](unsigned FuncId) -> FuncContext & {
    auto It = Contexts.find(FuncId);
    if (It != Contexts.end())
      return It->second;
    FuncContext &Ctx = Contexts[FuncId];
    const ir::Function &F = *Original.function(FuncId);
    Ctx.G = std::make_unique<cfg::Cfg>(F);
    Ctx.PN = std::make_unique<bl::PathNumbering>(*Ctx.G);
    for (const prof::CallSite &Site : prof::enumerateCallSites(F))
      Ctx.SiteBlocks.push_back(Site.BlockId);
    return Ctx;
  };

  for (const auto &R : Tree.records()) {
    if (R->procId() == cct::RootProcId)
      continue;
    unsigned FuncId = R->procId();
    const prof::FunctionInstrInfo &Info = Instr.Functions[FuncId];
    if (!Info.HasPathProfile)
      continue;
    FuncContext &Ctx = GetContext(FuncId);
    if (!Ctx.PN->valid())
      continue;

    Stats.TotalSites += Ctx.SiteBlocks.size();
    if (Ctx.SiteBlocks.empty())
      continue;

    // Count, per site block, how many of this record's executed paths
    // cover it.
    std::map<unsigned, uint64_t> CoverCounts;
    for (const auto &[Sum, Cell] : R->PathTable) {
      auto PathIt = Ctx.PathBlocks.find(Sum);
      if (PathIt == Ctx.PathBlocks.end()) {
        bl::RegeneratedPath Path = Ctx.PN->regenerate(Sum);
        std::set<unsigned> Blocks(Path.Nodes.begin(), Path.Nodes.end());
        PathIt = Ctx.PathBlocks.emplace(Sum, std::move(Blocks)).first;
      }
      for (unsigned Block : PathIt->second)
        ++CoverCounts[Block];
    }
    for (unsigned SiteBlock : Ctx.SiteBlocks) {
      auto CoverIt = CoverCounts.find(SiteBlock);
      if (CoverIt == CoverCounts.end())
        continue;
      ++Stats.UsedSites;
      if (CoverIt->second == 1)
        ++Stats.OnePathSites;
    }
  }
  return Stats;
}
