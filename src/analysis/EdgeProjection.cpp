//===- analysis/EdgeProjection.cpp - paths refine edges -----------------------===//

#include "analysis/EdgeProjection.h"

#include "bl/PathNumbering.h"
#include "cfg/Cfg.h"
#include "ir/Module.h"

using namespace pp;
using namespace pp::analysis;

std::vector<uint64_t>
analysis::edgeCountsFromPaths(const ir::Module &Original, unsigned FuncId,
                              const prof::FunctionPathProfile &Profile) {
  // k-iteration window sums live in a different id space than the
  // single-iteration numbering built below; projecting them would charge
  // edge counts to unrelated paths.
  if (Profile.KIters > 1)
    return {};
  const ir::Function &F = *Original.function(FuncId);
  cfg::Cfg G(F);
  bl::PathNumbering PN(G);
  if (!PN.valid())
    return {};

  std::vector<uint64_t> Counts(G.numEdges(), 0);
  for (const prof::PathEntry &Entry : Profile.Paths) {
    bl::RegeneratedPath Path = PN.regenerate(Entry.PathSum);
    // Ordinary edges traversed by the path...
    for (unsigned EdgeId : Path.Edges)
      Counts[EdgeId] += Entry.Freq;
    // ...plus the back edge the path ends with, which the pseudo-edge
    // transform factored out of the path body.
    if (Path.EndsWithBackedge)
      Counts[Path.ExitBackedge] += Entry.Freq;
  }
  return Counts;
}
