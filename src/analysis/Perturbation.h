//===- analysis/Perturbation.h - §3.2's frequency-based correction -*- C++ -*-===//
///
/// \file
/// "For simple, predictable metrics, such as instruction frequency, a
/// profiling tool can correct for perturbation by using path frequency to
/// subtract the effect of instrumentation code" (§3.2). For the
/// instruction metric the correction is complete: a path's true
/// instruction count is its frequency times the static length of the
/// original (uninstrumented) path, so the measured, perturbed PIC value
/// can be replaced by an exact derived one. Metrics like cache misses have
/// no such correction — that is the paper's point about why perturbation
/// of those metrics is hard.
///
//===----------------------------------------------------------------------===//

#ifndef PP_ANALYSIS_PERTURBATION_H
#define PP_ANALYSIS_PERTURBATION_H

#include "prof/Session.h"

#include <cstdint>
#include <vector>

namespace pp {
namespace ir {
class Module;
} // namespace ir

namespace analysis {

/// One path's measured vs derived instruction counts.
struct CorrectedPath {
  uint64_t PathSum = 0;
  uint64_t Freq = 0;
  /// The PIC-measured count (includes instrumentation instructions and
  /// callee entry/exit code outside the PIC save window).
  uint64_t MeasuredInsts = 0;
  /// Freq x static length of the original path: the uninstrumented truth
  /// for the path's own instructions. Exact when the path contains no
  /// calls; calls contribute the callee's pre-save/post-restore code to
  /// the measurement but not to the derivation.
  uint64_t DerivedInsts = 0;
  /// Number of call instructions on the path (0 means DerivedInsts is an
  /// exact correction).
  unsigned CallsOnPath = 0;
};

/// Derives corrected counts for every executed path of \p FuncId.
/// \p Original must be the pristine module the instrumented run was made
/// from (its CFG defines the path sums).
std::vector<CorrectedPath>
correctInstructionCounts(const ir::Module &Original, unsigned FuncId,
                         const prof::FunctionPathProfile &Profile);

} // namespace analysis
} // namespace pp

#endif // PP_ANALYSIS_PERTURBATION_H
