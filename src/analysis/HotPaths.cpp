//===- analysis/HotPaths.cpp - Hot path / procedure analysis -----------------===//

#include "analysis/HotPaths.h"

#include <algorithm>
#include <map>

using namespace pp;
using namespace pp::analysis;

std::vector<PathRecord>
analysis::collectPathRecords(const prof::RunOutcome &Outcome) {
  std::vector<PathRecord> Records;
  for (const prof::FunctionPathProfile &Profile : Outcome.PathProfiles) {
    if (!Profile.HasProfile)
      continue;
    for (const prof::PathEntry &Entry : Profile.Paths) {
      PathRecord Record;
      Record.FuncId = Profile.FuncId;
      Record.PathSum = Entry.PathSum;
      Record.Freq = Entry.Freq;
      Record.Insts = Entry.Metric0;
      Record.Misses = Entry.Metric1;
      Records.push_back(Record);
    }
  }
  return Records;
}

HotPathAnalysis
analysis::analyzeHotPaths(const std::vector<PathRecord> &Records,
                          double Threshold) {
  HotPathAnalysis Out;
  Out.TotalPaths = Records.size();
  for (const PathRecord &Record : Records) {
    Out.TotalInsts += Record.Insts;
    Out.TotalMisses += Record.Misses;
  }
  double AvgMissRatio =
      Out.TotalInsts == 0
          ? 0
          : double(Out.TotalMisses) / double(Out.TotalInsts);
  double HotCut = Threshold * double(Out.TotalMisses);

  for (size_t Index = 0; Index != Records.size(); ++Index) {
    const PathRecord &Record = Records[Index];
    bool IsHot = double(Record.Misses) >= HotCut && Record.Misses > 0;
    ClassStats &Class = IsHot ? Out.Hot : Out.Cold;
    ++Class.Num;
    Class.Insts += Record.Insts;
    Class.Misses += Record.Misses;
    if (!IsHot)
      continue;
    Out.HotIndices.push_back(Index);
    double Ratio =
        Record.Insts == 0 ? 0 : double(Record.Misses) / double(Record.Insts);
    ClassStats &Density = Ratio > AvgMissRatio ? Out.Dense : Out.Sparse;
    ++Density.Num;
    Density.Insts += Record.Insts;
    Density.Misses += Record.Misses;
  }
  std::sort(Out.HotIndices.begin(), Out.HotIndices.end(),
            [&Records](size_t A, size_t B) {
              return Records[A].Misses > Records[B].Misses;
            });
  return Out;
}

std::vector<ProcRecord>
analysis::aggregateByProcedure(const std::vector<PathRecord> &Records) {
  std::map<unsigned, ProcRecord> ByProc;
  for (const PathRecord &Record : Records) {
    ProcRecord &Proc = ByProc[Record.FuncId];
    Proc.FuncId = Record.FuncId;
    ++Proc.NumPathsExecuted;
    Proc.Freq += Record.Freq;
    Proc.Insts += Record.Insts;
    Proc.Misses += Record.Misses;
  }
  std::vector<ProcRecord> Out;
  Out.reserve(ByProc.size());
  for (auto &[FuncId, Proc] : ByProc)
    Out.push_back(Proc);
  return Out;
}

HotProcAnalysis
analysis::analyzeHotProcs(const std::vector<ProcRecord> &Procs,
                          double Threshold) {
  HotProcAnalysis Out;
  for (const ProcRecord &Proc : Procs) {
    Out.TotalMisses += Proc.Misses;
    Out.TotalInsts += Proc.Insts;
  }
  double AvgMissRatio =
      Out.TotalInsts == 0 ? 0
                          : double(Out.TotalMisses) / double(Out.TotalInsts);
  double HotCut = Threshold * double(Out.TotalMisses);

  uint64_t HotPaths = 0, ColdPaths = 0, DensePaths = 0, SparsePaths = 0;
  for (const ProcRecord &Proc : Procs) {
    bool IsHot = double(Proc.Misses) >= HotCut && Proc.Misses > 0;
    ClassStats &Class = IsHot ? Out.Hot : Out.Cold;
    ++Class.Num;
    Class.Insts += Proc.Insts;
    Class.Misses += Proc.Misses;
    (IsHot ? HotPaths : ColdPaths) += Proc.NumPathsExecuted;
    if (!IsHot)
      continue;
    double Ratio =
        Proc.Insts == 0 ? 0 : double(Proc.Misses) / double(Proc.Insts);
    bool IsDense = Ratio > AvgMissRatio;
    ClassStats &Density = IsDense ? Out.Dense : Out.Sparse;
    ++Density.Num;
    Density.Insts += Proc.Insts;
    Density.Misses += Proc.Misses;
    (IsDense ? DensePaths : SparsePaths) += Proc.NumPathsExecuted;
  }
  auto Avg = [](uint64_t Paths, uint64_t Num) {
    return Num == 0 ? 0.0 : double(Paths) / double(Num);
  };
  Out.HotPathsPerProc = Avg(HotPaths, Out.Hot.Num);
  Out.ColdPathsPerProc = Avg(ColdPaths, Out.Cold.Num);
  Out.DensePathsPerProc = Avg(DensePaths, Out.Dense.Num);
  Out.SparsePathsPerProc = Avg(SparsePaths, Out.Sparse.Num);
  return Out;
}
