//===- analysis/HotPaths.h - Hot path / procedure analysis -----*- C++ -*-===//
///
/// \file
/// The paper's §6.4 analyses: classify executed paths as hot (at least a
/// threshold fraction — 1% by default — of the program's L1 D-cache
/// misses) or cold, and hot paths as dense (miss ratio above the program
/// average) or sparse; then the same at procedure granularity, including
/// the paths-per-procedure counts that make the paper's case that
/// procedure-level reporting cannot isolate hot paths.
///
//===----------------------------------------------------------------------===//

#ifndef PP_ANALYSIS_HOTPATHS_H
#define PP_ANALYSIS_HOTPATHS_H

#include "prof/Session.h"

#include <cstdint>
#include <vector>

namespace pp {
namespace analysis {

/// One executed path with its measurements (from a Flow-and-HW run with
/// PIC0 = instructions, PIC1 = D-cache read misses).
struct PathRecord {
  unsigned FuncId = 0;
  uint64_t PathSum = 0;
  uint64_t Freq = 0;
  uint64_t Insts = 0;
  uint64_t Misses = 0;
};

/// Flattens a FlowHw RunOutcome into path records.
std::vector<PathRecord> collectPathRecords(const prof::RunOutcome &Outcome);

/// Sums over one class of paths or procedures.
struct ClassStats {
  uint64_t Num = 0;
  uint64_t Insts = 0;
  uint64_t Misses = 0;
};

/// The Table 4 classification for one program.
struct HotPathAnalysis {
  uint64_t TotalPaths = 0;
  uint64_t TotalInsts = 0;
  uint64_t TotalMisses = 0;
  ClassStats Hot, Cold, Dense, Sparse;
  /// Indices (into the input records) of the hot paths, densest first.
  std::vector<size_t> HotIndices;
};

/// Classifies \p Records with hot threshold \p Threshold (fraction of total
/// misses; the paper uses 0.01, and 0.001 for go/gcc).
HotPathAnalysis analyzeHotPaths(const std::vector<PathRecord> &Records,
                                double Threshold);

/// Per-procedure aggregate of path records.
struct ProcRecord {
  unsigned FuncId = 0;
  uint64_t NumPathsExecuted = 0;
  uint64_t Freq = 0;
  uint64_t Insts = 0;
  uint64_t Misses = 0;
};

std::vector<ProcRecord>
aggregateByProcedure(const std::vector<PathRecord> &Records);

/// The Table 5 classification for one program.
struct HotProcAnalysis {
  uint64_t TotalMisses = 0;
  uint64_t TotalInsts = 0;
  ClassStats Hot, Cold, Dense, Sparse;
  /// Average executed paths per procedure in each class.
  double HotPathsPerProc = 0;
  double ColdPathsPerProc = 0;
  double DensePathsPerProc = 0;
  double SparsePathsPerProc = 0;
};

HotProcAnalysis analyzeHotProcs(const std::vector<ProcRecord> &Procs,
                                double Threshold);

} // namespace analysis
} // namespace pp

#endif // PP_ANALYSIS_HOTPATHS_H
