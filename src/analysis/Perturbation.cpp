//===- analysis/Perturbation.cpp - §3.2's frequency-based correction ----------===//

#include "analysis/Perturbation.h"

#include "bl/PathNumbering.h"
#include "cfg/Cfg.h"
#include "ir/Module.h"

using namespace pp;
using namespace pp::analysis;

std::vector<CorrectedPath>
analysis::correctInstructionCounts(const ir::Module &Original,
                                   unsigned FuncId,
                                   const prof::FunctionPathProfile &Profile) {
  std::vector<CorrectedPath> Out;
  // k-iteration window sums are not classic path sums; the correction is
  // defined per acyclic path, so there is nothing sound to derive here.
  if (Profile.KIters > 1)
    return Out;
  const ir::Function &F = *Original.function(FuncId);
  cfg::Cfg G(F);
  bl::PathNumbering PN(G);
  if (!PN.valid())
    return Out;

  for (const prof::PathEntry &Entry : Profile.Paths) {
    CorrectedPath Corrected;
    Corrected.PathSum = Entry.PathSum;
    Corrected.Freq = Entry.Freq;
    Corrected.MeasuredInsts = Entry.Metric0;

    bl::RegeneratedPath Path = PN.regenerate(Entry.PathSum);
    uint64_t StaticLength = 0;
    unsigned Calls = 0;
    for (unsigned Node : Path.Nodes) {
      const ir::BasicBlock &BB = *G.block(Node);
      StaticLength += BB.insts().size();
      for (const ir::Inst &I : BB.insts())
        Calls += ir::isCall(I.Op);
    }
    Corrected.DerivedInsts = Entry.Freq * StaticLength;
    Corrected.CallsOnPath = Calls;
    Out.push_back(Corrected);
  }
  return Out;
}
