//===- prof/OverflowSampling.h - Counter-overflow sampling -----*- C++ -*-===//
///
/// \file
/// The sampling acquisition engine: a PIC is armed to trap after Period
/// events (hw::PerfCounters::armOverflowTrap) and every trap samples the
/// interrupted PC plus a shadow call stack maintained from VM trace
/// callbacks. From the samples it reconstructs the approximate analogues
/// of the exact profiles — per-function Ball-Larus path tables (each
/// sample is attributed to the path in flight when the trap fired) and a
/// sampled CCT (each trap walks the shadow stack through cct::enter from
/// the root, which is "every sample requires walking the call stack to
/// establish the context", §7.2). It also keeps the raw sample log whose
/// unbounded growth the paper holds against stack sampling; the ablation
/// bench weighs both costs against the CCT.
///
/// The engine is instrumentation-free: the executed module is a pristine
/// clone and the only simulated cost is CostModel::TrapDeliveryCycles per
/// trap. It subsumes the earlier cycle-polling SamplingProfiler, which it
/// replaces. Runs are deterministic for a fixed (seed, period, workload):
/// trap points depend only on event totals, which are engine-invariant.
///
//===----------------------------------------------------------------------===//

#ifndef PP_PROF_OVERFLOWSAMPLING_H
#define PP_PROF_OVERFLOWSAMPLING_H

#include "bl/PathNumbering.h"
#include "cct/CallingContextTree.h"
#include "cfg/Cfg.h"
#include "prof/Acquisition.h"
#include "support/Prng.h"
#include "vm/Vm.h"

#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

namespace pp {
namespace prof {

/// Sampling acquisition over counter-overflow traps. Usable through the
/// RunStager (makeAcquisitionEngine) or standalone: construct, prepare(),
/// build a VM over the prepared module, attach(), run, extract().
class OverflowSampling final : public AcquisitionEngine,
                               public vm::Tracer,
                               public vm::TrapHandler {
public:
  /// \p M is the pristine module; \p Config supplies the mode (which
  /// profiles to reconstruct) and the PIC event routing; \p Acq the
  /// sampling knobs. All referenced objects must outlive the engine.
  OverflowSampling(const ir::Module &M, const ProfileConfig &Config,
                   const AcquisitionOptions &Acq);
  ~OverflowSampling() override;

  // --- AcquisitionEngine ---------------------------------------------------
  Instrumented prepare() override;
  void attach(hw::Machine &Machine, vm::Vm &VM, Instrumented &Instr) override;
  void extract(RunOutcome &Outcome, hw::Machine &Machine) override;
  const char *name() const override { return "overflow"; }

  // --- vm::Tracer ----------------------------------------------------------
  void onEdgeTaken(const ir::BasicBlock &From, int SuccIndex) override;
  void onEnterFunction(const ir::Function &F) override;
  void onExitFunction(const ir::Function &F) override;
  void onUnwindFunction(const ir::Function &F) override;
  void onCall(const ir::Function &Caller, const ir::Inst &CallInst,
              const ir::Function &Callee) override;

  // --- vm::TrapHandler -----------------------------------------------------
  void onOverflowTrap(vm::Vm &VM, uint64_t Pc) override;

  // --- Results (tests and the ablation bench read these directly) ---------
  const AcquisitionStats &stats() const { return Stats; }
  size_t numSamples() const { return Log.size(); }
  uint64_t framesWalked() const { return Stats.FramesWalked; }
  /// Bytes of the raw sample log: the interrupted PC plus one word per
  /// stack frame per sample ("each sample is recorded along with its call
  /// stack").
  uint64_t logBytes() const { return Stats.LogBytes; }
  /// Distinct sampled contexts (for comparison with the CCT's complete
  /// record count).
  size_t numDistinctContexts() const;
  /// The raw log: one sampled stack (function ids, bottom to top) per trap.
  const std::vector<std::vector<uint32_t>> &samples() const { return Log; }

private:
  struct FrameState {
    unsigned FuncId = 0;
    /// In-flight Ball-Larus path sum (the Oracle's tracking, reused).
    uint64_t PathSum = 0;
    /// Traps taken while the current path was in flight, and the event
    /// weight they represent; both are attributed when the path commits.
    uint64_t PendingSamples = 0;
    uint64_t PendingWeight = 0;
    /// Caller slot this frame was entered through (call-site index, or 0
    /// for main).
    unsigned Slot = 0;
    /// Entered by signal delivery: re-roots at cct::SignalSlot.
    bool IsSignal = false;
  };

  /// Flushes the top frame's pending samples into \p Fid's path table at
  /// the just-completed \p PathSum.
  void commitPath(FrameState &Frame, unsigned Fid, uint64_t PathSum);
  /// The next sampling period: fixed, or jittered by the seeded PRNG.
  uint32_t nextPeriod();

  const ir::Module &M;
  ProfileConfig Config;
  AcquisitionOptions Acq;
  Prng Jitter;

  // Structural facts of the executed (pristine) module, built in attach().
  std::vector<std::unique_ptr<cfg::Cfg>> Cfgs;
  std::vector<std::unique_ptr<bl::PathNumbering>> Numberings;
  /// Code address of a call instruction -> its call-site index (the CCT
  /// slot) within its function.
  std::unordered_map<uint64_t, unsigned> SiteIndexByAddr;

  std::vector<FrameState> Stack;
  /// Call-site slot of a just-traced onCall, claimed by the next
  /// onEnterFunction; -1 when the next enter is main or a signal handler.
  int PendingCallSite = -1;

  /// Sampled path tables: path sum -> (samples, event weight) per function.
  std::vector<std::map<uint64_t, std::pair<uint64_t, uint64_t>>> SampledPaths;
  /// The sampled CCT (context modes only).
  std::unique_ptr<cct::CallingContextTree> Tree;
  std::vector<std::vector<uint32_t>> Log;
  AcquisitionStats Stats;
  /// Period the currently armed trap was programmed with (its weight).
  uint64_t ArmedPeriod = 0;
  hw::Machine *AttachedMachine = nullptr;
};

} // namespace prof
} // namespace pp

#endif // PP_PROF_OVERFLOWSAMPLING_H
