//===- prof/Acquisition.h - How profiles are acquired ----------*- C++ -*-===//
///
/// \file
/// The acquisition seam: *how* a run's profiles are obtained, independent
/// of *what* is profiled (the Mode). The paper's instrumentation reads the
/// PICs exactly at path ends; the same UltraSPARC counters also support
/// trap-on-overflow, the acquisition every sampling profiler builds on.
/// Each strategy is an AcquisitionEngine the RunStager drives through its
/// fixed four-stage pipeline:
///
///   prepare()  - produce the module to execute (instrumented clone for
///                exact acquisition, pristine clone for sampling)
///   attach()   - wire the engine to the loaded machine/VM (profiling
///                runtime vs. tracer + armed overflow trap)
///   extract()  - read the engine's profiles back into the RunOutcome
///
/// Engines are single-use, like the stager that owns them. The exact
/// engine reproduces the historical Session behaviour byte for byte; the
/// overflow engine reconstructs approximate path and CCT profiles from
/// sampled PCs plus a shadow call stack, with zero instrumentation in the
/// simulated program (its only simulated cost is trap delivery).
///
//===----------------------------------------------------------------------===//

#ifndef PP_PROF_ACQUISITION_H
#define PP_PROF_ACQUISITION_H

#include "prof/Instrumenter.h"

#include <cstdint>
#include <memory>
#include <string>

namespace pp {
namespace hw {
class Machine;
} // namespace hw
namespace vm {
class Vm;
} // namespace vm

namespace prof {

struct SessionOptions;
struct RunOutcome;

/// The acquisition strategies a run can use.
enum class Acquisition : uint8_t {
  /// Spliced-in instrumentation reading the PICs exactly (the paper's
  /// scheme; the only strategy prior to the seam).
  Exact,
  /// Counter-overflow traps sampling the PC and shadow call stack.
  Overflow,
};

/// Short label ("exact"/"overflow") for fingerprints, schemas, and flags.
const char *acquisitionName(Acquisition A);

/// Parses an acquisition label; returns false on an unknown name.
bool parseAcquisition(const std::string &Name, Acquisition &Out);

/// Acquisition knobs of a run. Defaults reproduce historical behaviour
/// (exact instrumentation); the sampling fields are ignored unless
/// Kind == Overflow.
struct AcquisitionOptions {
  Acquisition Kind = Acquisition::Exact;
  /// Which PIC's overflow drives sampling (0 or 1); the sampled event is
  /// whatever ProfileConfig routes to that PIC.
  unsigned Pic = 0;
  /// Events per sample (the armed PIC starts at 2^32 - Period).
  uint64_t Period = 1 << 16;
  /// 0 = fixed period. Nonzero seeds a deterministic PRNG that jitters
  /// each period uniformly in [Period/2, 3*Period/2), de-correlating the
  /// sample clock from loop periods.
  uint64_t Seed = 0;
};

/// What acquiring the profiles cost, in the currencies the paper uses to
/// argue against stack sampling (§7.2): trap count, samples, stack frames
/// walked per sample, and the unbounded raw log the samples would occupy.
/// All zero for exact acquisition.
struct AcquisitionStats {
  uint64_t Traps = 0;
  uint64_t Samples = 0;
  uint64_t FramesWalked = 0;
  uint64_t LogBytes = 0;
};

/// One acquisition strategy, driven by RunStager. Stage order is fixed:
/// prepare, attach, extract; each is called exactly once.
class AcquisitionEngine {
public:
  virtual ~AcquisitionEngine();

  /// Stage 1 (instrument): the module the VM will execute.
  virtual Instrumented prepare() = 0;

  /// Stage 2 (load): attach runtime/tracer/trap wiring to the machine and
  /// VM the stager built. Called after engine/budget/signal configuration,
  /// immediately before execution.
  virtual void attach(hw::Machine &Machine, vm::Vm &VM,
                      Instrumented &Instr) = 0;

  /// Stage 4 (extract): read profiles back into \p Outcome. The stager
  /// has already copied the ground-truth event totals.
  virtual void extract(RunOutcome &Outcome, hw::Machine &Machine) = 0;

  /// The engine's acquisition label (= acquisitionName of its kind).
  virtual const char *name() const = 0;
};

/// Builds the engine \p Options selects for a run over \p M. Both
/// references must outlive the engine.
std::unique_ptr<AcquisitionEngine>
makeAcquisitionEngine(const ir::Module &M, const SessionOptions &Options);

} // namespace prof
} // namespace pp

#endif // PP_PROF_ACQUISITION_H
