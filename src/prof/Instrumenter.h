//===- prof/Instrumenter.h - The EEL-role binary editor --------*- C++ -*-===//
///
/// \file
/// Rewrites a module with profiling instrumentation, playing the role EEL
/// plays for PP (§5): it splices real instructions into the program —
/// path-register updates on edges (splitting critical edges), counter
/// commits at path ends, PIC save/zero/read sequences, CCT entry/call/exit
/// ops, and spanning-tree chord counters for the edge-profiling baseline.
/// All inserted code executes on the simulated machine and perturbs it,
/// which is what Tables 1 and 2 measure.
///
//===----------------------------------------------------------------------===//

#ifndef PP_PROF_INSTRUMENTER_H
#define PP_PROF_INSTRUMENTER_H

#include "bl/KPathNumbering.h"
#include "ir/Module.h"
#include "prof/Mode.h"

#include <memory>
#include <vector>

namespace pp {
namespace prof {

/// Per-function facts the runtime and the analysis need about what the
/// instrumenter did.
struct FunctionInstrInfo {
  /// The function in the *instrumented* module.
  ir::Function *F = nullptr;
  bool Instrumented = false;

  // --- Path profiling ------------------------------------------------------
  bool HasPathProfile = false;
  uint64_t NumPaths = 0;
  /// True when counters live in a hash table (held by the runtime) instead
  /// of the in-memory array at TableAddr.
  bool Hashed = false;
  uint64_t TableAddr = 0;
  /// Bytes per path cell: 8 (frequency) or 24 (frequency + 2 metrics).
  unsigned Stride = 0;
  /// Effective iterations per counted path after the per-function fallback
  /// ladder: ProfileConfig::K when the k-numbering fits, a smaller k when
  /// it overflowed. 1 means classic single-iteration paths; >= 2 means
  /// NumPaths counts k-iteration windows and Hashed is forced (window ids
  /// are too sparse for arrays).
  unsigned KIters = 1;
  /// The k-numbering behind KIters >= 2 (CFG snapshot + both numberings,
  /// owned); null for single-iteration functions. Not serialized: outcomes
  /// restored from the run cache carry KIters but rebuild bundles on
  /// demand (the numbering is deterministic in the pristine module).
  std::shared_ptr<const bl::KPathBundle> KPaths;

  // --- Edge profiling ------------------------------------------------------
  uint64_t EdgeTableAddr = 0;
  /// CFG edge ids carrying chord counters; slot i counts ChordEdges[i].
  /// One extra trailing slot counts function invocations (the virtual
  /// EXIT -> ENTRY edge).
  std::vector<unsigned> ChordEdges;

  // --- CCT -----------------------------------------------------------------
  unsigned NumSites = 0;
  std::vector<uint8_t> SiteIsIndirect;
};

/// An instrumented clone of a module plus its metadata.
struct Instrumented {
  std::unique_ptr<ir::Module> M;
  ProfileConfig Config;
  /// Indexed by function id.
  std::vector<FunctionInstrInfo> Functions;
};

/// Clones \p Original and instruments the clone per \p Config. The original
/// is untouched (it serves as the baseline and as the structural reference
/// for interpreting path sums, since cloning preserves block and edge
/// order).
Instrumented instrument(const ir::Module &Original,
                        const ProfileConfig &Config);

} // namespace prof
} // namespace pp

#endif // PP_PROF_INSTRUMENTER_H
