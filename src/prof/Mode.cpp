//===- prof/Mode.cpp - Profiling modes --------------------------------------===//

#include "prof/Mode.h"

#include <cassert>

using namespace pp;
using namespace pp::prof;

const char *prof::modeName(Mode M) {
  switch (M) {
  case Mode::None:
    return "Base";
  case Mode::Edge:
    return "Edge";
  case Mode::Flow:
    return "Flow";
  case Mode::FlowHw:
    return "Flow and HW";
  case Mode::Context:
    return "Context";
  case Mode::ContextHw:
    return "Context and HW";
  case Mode::ContextFlow:
    return "Context and Flow";
  case Mode::ContextFlowHw:
    return "Context and Flow and HW";
  }
  assert(false && "invalid mode");
  return "<invalid>";
}
