//===- prof/Mode.cpp - Profiling modes --------------------------------------===//

#include "prof/Mode.h"

#include "support/Env.h"

#include <cassert>
#include <cstdio>

using namespace pp;
using namespace pp::prof;

const char *prof::modeName(Mode M) {
  switch (M) {
  case Mode::None:
    return "Base";
  case Mode::Edge:
    return "Edge";
  case Mode::Flow:
    return "Flow";
  case Mode::FlowHw:
    return "Flow and HW";
  case Mode::Context:
    return "Context";
  case Mode::ContextHw:
    return "Context and HW";
  case Mode::ContextFlow:
    return "Context and Flow";
  case Mode::ContextFlowHw:
    return "Context and Flow and HW";
  }
  assert(false && "invalid mode");
  return "<invalid>";
}

unsigned prof::defaultKFromEnv(const char *Tool) {
  uint64_t K = envUint64Or("PP_BL_K", Tool, 1);
  if (K >= 1 && K <= 16)
    return static_cast<unsigned>(K);
  std::fprintf(stderr, "%s: ignoring PP_BL_K=%llu (want 1..16)\n", Tool,
               static_cast<unsigned long long>(K));
  return 1;
}
