//===- prof/CallSites.h - Call site enumeration ----------------*- C++ -*-===//
///
/// \file
/// Assigns dense indices to a function's call sites (block order, then
/// instruction order). The instrumenter and the CCT runtime agree on these
/// indices: CctCall's immediate names the slot the caller's record reserves
/// for the site.
///
//===----------------------------------------------------------------------===//

#ifndef PP_PROF_CALLSITES_H
#define PP_PROF_CALLSITES_H

#include <vector>

namespace pp {
namespace ir {
class Function;
} // namespace ir

namespace prof {

/// One call site of a function.
struct CallSite {
  unsigned BlockId;
  /// Instruction index at enumeration time (pre-instrumentation).
  unsigned InstIndex;
  bool Indirect;
};

/// Enumerates the call sites of \p F in canonical order.
std::vector<CallSite> enumerateCallSites(const ir::Function &F);

} // namespace prof
} // namespace pp

#endif // PP_PROF_CALLSITES_H
