//===- prof/Session.h - One profiling run end to end -----------*- C++ -*-===//
///
/// \file
/// Orchestration of a complete profiling run: clone + instrument, load into
/// a fresh machine, execute, then read the profiles back — path counter
/// arrays from simulated memory, hash tables and the CCT from the runtime,
/// ground-truth event totals from the machine.
///
//===----------------------------------------------------------------------===//

#ifndef PP_PROF_SESSION_H
#define PP_PROF_SESSION_H

#include "cct/CallingContextTree.h"
#include "prof/Acquisition.h"
#include "prof/Instrumenter.h"
#include "vm/Vm.h"

#include <array>
#include <memory>
#include <vector>

namespace pp {
namespace prof {

/// Knobs of a run.
struct SessionOptions {
  ProfileConfig Config;
  hw::MachineConfig MachineCfg;
  uint64_t MaxInsts = uint64_t(1) << 32;
  /// Which VM engine executes the run. Both engines are bit-identical (see
  /// tests/EngineEquivalenceTest.cpp), but the choice is still part of the
  /// run's identity so cached results never mix engines.
  vm::Engine Engine = vm::defaultEngine();
  /// When non-empty, the named zero-argument function runs as a simulated
  /// signal handler every SignalInterval executed instructions.
  std::string SignalHandler;
  uint64_t SignalInterval = 0;
  /// How profiles are acquired: exact instrumentation (default, the
  /// historical behaviour) or counter-overflow sampling.
  AcquisitionOptions Acq;
};

/// One executed path and its accumulated measurements.
struct PathEntry {
  uint64_t PathSum = 0;
  uint64_t Freq = 0;
  /// Sums of the PIC0/PIC1 events over the path's executions (HW modes).
  uint64_t Metric0 = 0;
  uint64_t Metric1 = 0;
};

/// All executed paths of one function.
struct FunctionPathProfile {
  unsigned FuncId = 0;
  bool HasProfile = false;
  uint64_t NumPaths = 0;
  bool Hashed = false;
  /// Iterations per counted path: 1 for classic Ball-Larus, >= 2 when the
  /// entries are k-iteration window sums (the function's effective k after
  /// the fallback ladder; NumPaths is then the window-id space). Sums of
  /// different KIters are incomparable — merge/diff refuse to mix them.
  unsigned KIters = 1;
  /// Executed paths only (Freq > 0), sorted by PathSum.
  std::vector<PathEntry> Paths;
};

/// Edge counts of one function, reconstructed from chord counters.
struct EdgeProfile {
  unsigned FuncId = 0;
  bool HasProfile = false;
  /// Execution count per CFG edge id (CFG of the pristine module).
  std::vector<uint64_t> EdgeCounts;
  uint64_t Invocations = 0;
};

/// Everything a run produced.
struct RunOutcome {
  Instrumented Instr;
  vm::RunResult Result;
  /// Ground-truth event totals of the whole run.
  std::array<uint64_t, hw::NumEvents> Totals{};
  /// Flow-mode path profiles, indexed by function id.
  std::vector<FunctionPathProfile> PathProfiles;
  /// Edge-mode reconstructed profiles, indexed by function id.
  std::vector<EdgeProfile> EdgeProfiles;
  /// The CCT (context modes).
  std::unique_ptr<cct::CallingContextTree> Tree;
  /// What acquisition cost (all zero for exact instrumentation).
  AcquisitionStats Acq;

  uint64_t total(hw::Event E) const {
    return Totals[static_cast<unsigned>(E)];
  }
};

/// The decomposed pipeline of one profiling run. runProfile() drives the
/// four stages in order; callers that need to observe or reuse
/// intermediate state (the driver layer, the figure benches) can step
/// through them one at a time instead:
///
///   RunStager Stager(M, Options);
///   Stager.instrument();   // clone + edit the module
///   Stager.load();         // machine, VM, runtime, signal wiring
///   Stager.execute();      // run main() to completion
///   RunOutcome Out = Stager.extract();  // read the profiles back
///
/// A stager is single-use and keeps references to \p M and \p Options,
/// which must outlive it. Each stage requires the previous one; extract()
/// consumes the stager's state.
///
/// The stager owns the run's machinery (machine, VM, signal wiring) and
/// delegates everything acquisition-specific — what to instrument, what
/// to attach, how to read profiles back — to the AcquisitionEngine that
/// Options.Acq selects (see prof/Acquisition.h).
class RunStager {
public:
  RunStager(const ir::Module &M, const SessionOptions &Options);
  ~RunStager();

  /// Stage 1: clone \p M and splice in the instrumentation for the
  /// configured mode.
  void instrument();
  /// Stage 2: build the machine, lay the instrumented module out in its
  /// address space, and attach the profiling runtime and signal handler.
  void load();
  /// Stage 3: execute main() to completion on the simulated machine.
  void execute();
  /// Stage 4: read counters, path tables, edge counters, and the CCT back
  /// out of the machine and runtime. Consumes the stager.
  RunOutcome extract();

  /// The instrumented module (valid after instrument()).
  const Instrumented &instrumented() const;

private:
  const ir::Module &M;
  const SessionOptions &Options;
  struct State;
  std::unique_ptr<State> S;
};

/// Runs \p M under \p Options (Mode::None = uninstrumented baseline).
RunOutcome runProfile(const ir::Module &M, const SessionOptions &Options);

} // namespace prof
} // namespace pp

#endif // PP_PROF_SESSION_H
