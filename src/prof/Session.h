//===- prof/Session.h - One profiling run end to end -----------*- C++ -*-===//
///
/// \file
/// Orchestration of a complete profiling run: clone + instrument, load into
/// a fresh machine, execute, then read the profiles back — path counter
/// arrays from simulated memory, hash tables and the CCT from the runtime,
/// ground-truth event totals from the machine.
///
//===----------------------------------------------------------------------===//

#ifndef PP_PROF_SESSION_H
#define PP_PROF_SESSION_H

#include "cct/CallingContextTree.h"
#include "prof/Instrumenter.h"
#include "vm/Vm.h"

#include <array>
#include <memory>
#include <vector>

namespace pp {
namespace prof {

/// Knobs of a run.
struct SessionOptions {
  ProfileConfig Config;
  hw::MachineConfig MachineCfg;
  uint64_t MaxInsts = uint64_t(1) << 32;
  /// When non-empty, the named zero-argument function runs as a simulated
  /// signal handler every SignalInterval executed instructions.
  std::string SignalHandler;
  uint64_t SignalInterval = 0;
};

/// One executed path and its accumulated measurements.
struct PathEntry {
  uint64_t PathSum = 0;
  uint64_t Freq = 0;
  /// Sums of the PIC0/PIC1 events over the path's executions (HW modes).
  uint64_t Metric0 = 0;
  uint64_t Metric1 = 0;
};

/// All executed paths of one function.
struct FunctionPathProfile {
  unsigned FuncId = 0;
  bool HasProfile = false;
  uint64_t NumPaths = 0;
  bool Hashed = false;
  /// Executed paths only (Freq > 0), sorted by PathSum.
  std::vector<PathEntry> Paths;
};

/// Edge counts of one function, reconstructed from chord counters.
struct EdgeProfile {
  unsigned FuncId = 0;
  bool HasProfile = false;
  /// Execution count per CFG edge id (CFG of the pristine module).
  std::vector<uint64_t> EdgeCounts;
  uint64_t Invocations = 0;
};

/// Everything a run produced.
struct RunOutcome {
  Instrumented Instr;
  vm::RunResult Result;
  /// Ground-truth event totals of the whole run.
  std::array<uint64_t, hw::NumEvents> Totals{};
  /// Flow-mode path profiles, indexed by function id.
  std::vector<FunctionPathProfile> PathProfiles;
  /// Edge-mode reconstructed profiles, indexed by function id.
  std::vector<EdgeProfile> EdgeProfiles;
  /// The CCT (context modes).
  std::unique_ptr<cct::CallingContextTree> Tree;

  uint64_t total(hw::Event E) const {
    return Totals[static_cast<unsigned>(E)];
  }
};

/// Runs \p M under \p Options (Mode::None = uninstrumented baseline).
RunOutcome runProfile(const ir::Module &M, const SessionOptions &Options);

} // namespace prof
} // namespace pp

#endif // PP_PROF_SESSION_H
