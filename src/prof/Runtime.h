//===- prof/Runtime.h - The profiling runtime ------------------*- C++ -*-===//
///
/// \file
/// Implements the profiling pseudo-ops the instrumenter emits. The CCT
/// protocol state (the gCSP "callee slot pointer" register, the per-frame
/// shadow of saved gCSPs, per-activation PIC snapshots) lives here, as do
/// the hash-table path counters for functions whose potential-path count
/// exceeds the array threshold.
///
/// Every operation charges the simulated machine the instruction count and
/// memory traffic of its inline expansion — CCT heap and profiling-stack
/// addresses go through the simulated D-cache — so runtime-implemented
/// instrumentation perturbs the machine like emitted code does.
///
//===----------------------------------------------------------------------===//

#ifndef PP_PROF_RUNTIME_H
#define PP_PROF_RUNTIME_H

#include "cct/CallingContextTree.h"
#include "prof/Instrumenter.h"
#include "vm/Vm.h"

#include <memory>
#include <unordered_map>
#include <vector>

namespace pp {
namespace prof {

/// One hash-table path counter cell (for functions too big for arrays).
struct HashPathCell {
  uint64_t Freq = 0;
  uint64_t Metric0 = 0;
  uint64_t Metric1 = 0;
};

/// The runtime behind the instrumented program.
class Runtime : public vm::ProfRuntime, public cct::MemCharger {
public:
  Runtime(const Instrumented &Instr, hw::Machine &Machine);
  ~Runtime() override;

  // --- vm::ProfRuntime ----------------------------------------------------
  void execOp(vm::Vm &VM, const ir::Inst &I) override;
  /// Per-opcode trampolines for the predecoded engine: each pseudo-op is
  /// resolved to its handler once at predecode time, so executing one skips
  /// execOp's switch.
  HookFn bindOp(const ir::Inst &I) override;
  void onFrameUnwound(vm::Vm &VM, const ir::Function &F) override;
  void onSignalDeliver(vm::Vm &VM) override;
  void onSignalReturn(vm::Vm &VM) override;

  // --- cct::MemCharger -----------------------------------------------------
  void touchMemory(uint64_t Addr, unsigned Size, bool IsWrite) override {
    Machine.touchData(Addr, Size, IsWrite);
  }
  void chargeInsts(unsigned N) override { Machine.chargeInsts(N); }

  // --- Results --------------------------------------------------------------
  /// Null unless a context mode is active.
  cct::CallingContextTree *tree() { return Tree.get(); }
  std::unique_ptr<cct::CallingContextTree> takeTree() {
    return std::move(Tree);
  }

  /// Hash-mode path counters of function \p FuncId (empty map if none).
  const std::unordered_map<uint64_t, HashPathCell> &
  hashTable(unsigned FuncId) const;

private:
  struct ShadowEntry {
    size_t FrameDepth;
    cct::CallRecord *Record;
    cct::CallRecord *SavedGcspRecord;
    unsigned SavedGcspSlot;
    /// Packed PIC snapshot at the last probe (Context and HW).
    uint64_t HwStart;
  };

  /// One in-flight k-iteration window of one activation: the window sum
  /// and metric lanes accumulated so far, and the level (back edges
  /// crossed) the next segment commits at. Stacked because activations
  /// nest; matched to activations by frame depth.
  struct KWindow {
    size_t FrameDepth;
    unsigned FuncId;
    unsigned Level = 0;
    uint64_t Acc = 0;
    uint64_t M0 = 0;
    uint64_t M1 = 0;
  };

  /// Memoized decode of one legacy segment sum: its per-level window-sum
  /// contributions and whether it ended with a back edge. Keys repeat
  /// enormously (hot paths), so each is decoded once per run.
  struct KSegment {
    std::vector<uint64_t> LevelVals;
    bool EndsWithBackedge = false;
  };

  void doCctEnter(vm::Vm &VM);
  void doCctExit(vm::Vm &VM);
  void doHwProbe(vm::Vm &VM, int Kind);
  void doPathHashCommit(vm::Vm &VM, const ir::Inst &I);
  void doCctPathCommit(vm::Vm &VM, const ir::Inst &I);
  void doKSegmentCommit(vm::Vm &VM, const FunctionInstrInfo &Info,
                        unsigned FuncId, uint64_t Key);
  void commitKWindow(const FunctionInstrInfo &Info, const KWindow &W);
  const KSegment &decodeSegment(const FunctionInstrInfo &Info,
                                unsigned FuncId, uint64_t Key);

  cct::CallRecord *currentRecord() {
    return Shadow.empty() ? Tree->root() : Shadow.back().Record;
  }

  const Instrumented &Instr;
  hw::Machine &Machine;
  std::unique_ptr<cct::CallingContextTree> Tree;
  /// The gCSP global register: (record, callee slot index).
  cct::CallRecord *GcspRecord = nullptr;
  unsigned GcspSlot = 0;
  std::vector<ShadowEntry> Shadow;
  /// gCSPs saved across signal-handler activations.
  std::vector<std::pair<cct::CallRecord *, unsigned>> SignalSavedGcsps;
  std::unordered_map<unsigned, std::unordered_map<uint64_t, HashPathCell>>
      HashTables;
  /// In-flight k-iteration windows, innermost activation last. Only
  /// functions with KIters >= 2 push entries.
  std::vector<KWindow> KStack;
  /// Per-function segment decode cache (KIters >= 2 functions only).
  std::unordered_map<unsigned, std::unordered_map<uint64_t, KSegment>>
      KSegCache;
};

} // namespace prof
} // namespace pp

#endif // PP_PROF_RUNTIME_H
