//===- prof/Oracle.h - Reference profiles via tracing ----------*- C++ -*-===//
///
/// \file
/// A VM tracer that derives ground-truth profiles without instrumentation:
/// per-function Ball-Larus path frequencies, CFG edge counts, call counts,
/// and a dynamic call tree. Runs on the pristine module; tests and benches
/// compare the instrumented program's measurements against it (the
/// simulator's equivalent of the paper's uninstrumented sampled baseline).
///
//===----------------------------------------------------------------------===//

#ifndef PP_PROF_ORACLE_H
#define PP_PROF_ORACLE_H

#include "bl/PathNumbering.h"
#include "cct/DynamicCallTree.h"
#include "cfg/Cfg.h"
#include "ir/Module.h"
#include "vm/Vm.h"

#include <map>
#include <memory>
#include <vector>

namespace pp {
namespace prof {

/// Shadow profiler driven by VM trace callbacks.
class OracleProfiler : public vm::Tracer {
public:
  explicit OracleProfiler(const ir::Module &M);
  ~OracleProfiler() override;

  // --- vm::Tracer -----------------------------------------------------------
  void onEdgeTaken(const ir::BasicBlock &From, int SuccIndex) override;
  void onEnterFunction(const ir::Function &F) override;
  void onExitFunction(const ir::Function &F) override;
  void onUnwindFunction(const ir::Function &F) override;
  void onCall(const ir::Function &Caller, const ir::Inst &CallInst,
              const ir::Function &Callee) override;

  // --- Results ---------------------------------------------------------------
  /// Path-sum -> frequency for \p FuncId (empty when numbering overflowed).
  const std::map<uint64_t, uint64_t> &pathFreqs(unsigned FuncId) const {
    return PathFreqs[FuncId];
  }
  /// Execution count per CFG edge id of \p FuncId.
  const std::vector<uint64_t> &edgeCounts(unsigned FuncId) const {
    return EdgeCounts[FuncId];
  }
  uint64_t callCount(unsigned FuncId) const { return CallCounts[FuncId]; }

  const cct::DynamicCallTree &dct() const { return Dct; }
  const cct::DynamicCallGraph &dcg() const { return Dcg; }

  const cfg::Cfg &cfgOf(unsigned FuncId) const { return *Cfgs[FuncId]; }
  const bl::PathNumbering &numberingOf(unsigned FuncId) const {
    return *Numberings[FuncId];
  }

private:
  struct FrameState {
    unsigned FuncId;
    uint64_t PathSum;
  };

  std::vector<std::unique_ptr<cfg::Cfg>> Cfgs;
  std::vector<std::unique_ptr<bl::PathNumbering>> Numberings;
  std::vector<std::map<uint64_t, uint64_t>> PathFreqs;
  std::vector<std::vector<uint64_t>> EdgeCounts;
  std::vector<uint64_t> CallCounts;
  std::vector<FrameState> Stack;
  cct::DynamicCallTree Dct;
  cct::DynamicCallGraph Dcg;
};

} // namespace prof
} // namespace pp

#endif // PP_PROF_ORACLE_H
