//===- prof/OverflowSampling.cpp - Counter-overflow sampling ----------------===//

#include "prof/OverflowSampling.h"

#include "ir/Function.h"
#include "obs/Obs.h"
#include "prof/CallSites.h"
#include "prof/Session.h"

#include <set>

using namespace pp;
using namespace pp::prof;

OverflowSampling::OverflowSampling(const ir::Module &M,
                                   const ProfileConfig &Config,
                                   const AcquisitionOptions &Acq)
    : M(M), Config(Config), Acq(Acq), Jitter(Acq.Seed) {
  this->Acq.Pic = this->Acq.Pic ? 1 : 0;
  // The PIC is 32 bits wide, so a valid period is [1, 2^32-1]: zero would
  // arm a 2^32-event trap (the register wraps all the way around) and
  // anything above the register width cannot be programmed at all. The
  // CLI rejects out-of-range values; programmatic callers are clamped.
  if (this->Acq.Period == 0)
    this->Acq.Period = 1;
  if (this->Acq.Period > 0xffffffffULL)
    this->Acq.Period = 0xffffffffULL;

  // Structural facts come from the pristine module; the executed clone
  // preserves block and edge order, so ids and path sums line up.
  size_t NumFuncs = M.numFunctions();
  Cfgs.resize(NumFuncs);
  Numberings.resize(NumFuncs);
  SampledPaths.resize(NumFuncs);
  for (size_t Id = 0; Id != NumFuncs; ++Id) {
    const ir::Function &F = *M.function(Id);
    if (F.numBlocks() == 0)
      continue;
    Cfgs[Id] = std::make_unique<cfg::Cfg>(F);
    Numberings[Id] = std::make_unique<bl::PathNumbering>(*Cfgs[Id]);
  }

  if (modeUsesCct(Config.M)) {
    std::vector<cct::ProcDesc> Procs(NumFuncs);
    for (size_t Id = 0; Id != NumFuncs; ++Id) {
      const ir::Function &F = *M.function(Id);
      Procs[Id].Name = F.name();
      std::vector<CallSite> Sites = enumerateCallSites(F);
      Procs[Id].NumSites = static_cast<unsigned>(Sites.size());
      Procs[Id].SiteIsIndirect.resize(Sites.size());
      for (size_t I = 0; I != Sites.size(); ++I)
        Procs[Id].SiteIsIndirect[I] = Sites[I].Indirect;
    }
    // Metrics per record: [0] samples landing in the context, [1]/[2] the
    // event weight those samples represent on PIC0/PIC1 — the sampled
    // estimate of the exact CCT's invocations + two metric accumulators.
    // No MemCharger: the tree is built by the trap handler (host code),
    // not by instrumentation in the simulated program.
    Tree = std::make_unique<cct::CallingContextTree>(std::move(Procs), 3);
  }
}

OverflowSampling::~OverflowSampling() = default;

Instrumented OverflowSampling::prepare() {
  // Sampling executes an uninstrumented clone: acquisition is free of
  // program perturbation except for trap delivery itself.
  ProfileConfig NoInstr = Config;
  NoInstr.M = Mode::None;
  return prof::instrument(M, NoInstr);
}

void OverflowSampling::attach(hw::Machine &Machine, vm::Vm &VM,
                              Instrumented &Instr) {
  // Map call-instruction code addresses (assigned by the VM's layout of
  // the executed clone) to their call-site indices, mirroring
  // enumerateCallSites' canonical order — the slot the CCT walk uses.
  for (size_t Id = 0; Id != Instr.M->numFunctions(); ++Id) {
    const ir::Function &F = *Instr.M->function(Id);
    unsigned Index = 0;
    for (const auto &BB : F.blocks())
      for (const ir::Inst &I : BB->insts())
        if (ir::isCall(I.Op))
          SiteIndexByAddr[I.Addr] = Index++;
  }

  VM.setTracer(this);
  VM.setTrapHandler(this);
  AttachedMachine = &Machine;
  ArmedPeriod = nextPeriod();
  Machine.counters().armOverflowTrap(Acq.Pic,
                                     static_cast<uint32_t>(ArmedPeriod));
}

uint32_t OverflowSampling::nextPeriod() {
  uint64_t P = Acq.Period ? Acq.Period : 1;
  if (Acq.Seed)
    P = P / 2 + Jitter.next() % P;
  if (P == 0)
    P = 1;
  if (P > 0xffffffffULL)
    P = 0xffffffffULL;
  return static_cast<uint32_t>(P);
}

void OverflowSampling::onCall(const ir::Function &Caller,
                              const ir::Inst &CallInst,
                              const ir::Function &Callee) {
  auto It = SiteIndexByAddr.find(CallInst.Addr);
  PendingCallSite = It == SiteIndexByAddr.end() ? -1 : static_cast<int>(It->second);
}

void OverflowSampling::onEnterFunction(const ir::Function &F) {
  FrameState FS;
  FS.FuncId = F.id();
  if (PendingCallSite >= 0) {
    FS.Slot = static_cast<unsigned>(PendingCallSite);
  } else if (!Stack.empty()) {
    // An enter with no traced call and a live stack is signal delivery:
    // the frame re-roots at the CCT's signal slot ("the CCT would need
    // multiple roots", §4.2).
    FS.IsSignal = true;
  }
  PendingCallSite = -1;
  Stack.push_back(FS);
}

void OverflowSampling::onExitFunction(const ir::Function &F) {
  // A tracer attached mid-execution (or a longjmp past frames it never
  // saw entered) delivers exits with no matching enter; absorb them
  // instead of underflowing the shadow stack.
  if (!Stack.empty())
    Stack.pop_back();
}

void OverflowSampling::onUnwindFunction(const ir::Function &F) {
  // Longjmp discards the frame: its in-flight path — and any samples
  // pending on it — is abandoned, exactly as the exact engine's commit
  // never runs.
  if (!Stack.empty())
    Stack.pop_back();
}

void OverflowSampling::commitPath(FrameState &Frame, unsigned Fid,
                                  uint64_t PathSum) {
  if (!Frame.PendingSamples)
    return;
  auto &Cell = SampledPaths[Fid][PathSum];
  Cell.first += Frame.PendingSamples;
  Cell.second += Frame.PendingWeight;
  Frame.PendingSamples = 0;
  Frame.PendingWeight = 0;
}

void OverflowSampling::onEdgeTaken(const ir::BasicBlock &From, int SuccIndex) {
  if (Stack.empty())
    return;
  FrameState &Frame = Stack.back();
  unsigned Fid = Frame.FuncId;
  if (Fid >= Cfgs.size() || From.parent()->id() != Fid)
    return;
  const cfg::Cfg *G = Cfgs[Fid].get();
  const bl::PathNumbering *PN = Numberings[Fid].get();
  if (!G || !PN->valid())
    return;

  const auto &OutIds = G->outEdges(From.id());
  unsigned EdgeId =
      SuccIndex < 0 ? OutIds[0] : OutIds[static_cast<unsigned>(SuccIndex)];
  if (G->isBackedge(EdgeId)) {
    commitPath(Frame, Fid, Frame.PathSum + PN->backedgeEndValue(EdgeId));
    Frame.PathSum = PN->backedgeStartValue(EdgeId);
    return;
  }
  uint64_t Val = PN->valueForCfgEdge(EdgeId);
  if (G->edge(EdgeId).SuccIndex < 0) {
    commitPath(Frame, Fid, Frame.PathSum + Val);
    Frame.PathSum = 0;
    return;
  }
  Frame.PathSum += Val;
}

void OverflowSampling::onOverflowTrap(vm::Vm &VM, uint64_t Pc) {
  ++Stats.Traps;
  ++Stats.Samples;
  Stats.FramesWalked += Stack.size();
  // The raw log: the interrupted PC plus the whole stack, per sample.
  Stats.LogBytes += 8 * (Stack.size() + 1);
  Log.emplace_back();
  Log.back().reserve(Stack.size());
  for (const FrameState &FS : Stack)
    Log.back().push_back(FS.FuncId);

  if (Tree) {
    // Establish the context by walking the sampled stack through the CCT
    // from the root — the per-sample cost the paper charges against stack
    // sampling, surfaced in Stats.FramesWalked.
    cct::CallRecord *Cur = Tree->root();
    for (const FrameState &FS : Stack) {
      cct::CallRecord *Base = FS.IsSignal ? Tree->root() : Cur;
      unsigned Slot = FS.IsSignal ? cct::SignalSlot : FS.Slot;
      if (Slot >= Base->numSlots()) {
        Cur = nullptr; // inconsistent shadow stack (attached mid-run)
        break;
      }
      Cur = Tree->enter(Base, Slot, FS.FuncId);
    }
    if (Cur && Cur != Tree->root()) {
      cct::CallingContextTree::bumpMetric(Cur, 0, 1);
      cct::CallingContextTree::bumpMetric(Cur, 1 + Acq.Pic, ArmedPeriod);
    }
  }

  // Path attribution is deferred: the sample rides on the frame until its
  // in-flight Ball-Larus path completes, then lands on that path's sum.
  if (!Stack.empty()) {
    Stack.back().PendingSamples += 1;
    Stack.back().PendingWeight += ArmedPeriod;
  }

  ArmedPeriod = nextPeriod();
  VM.machine().counters().armOverflowTrap(Acq.Pic,
                                          static_cast<uint32_t>(ArmedPeriod));
}

size_t OverflowSampling::numDistinctContexts() const {
  // The sampled CCT folds recursion exactly as the exhaustive CCT does,
  // so its record count compares apples-to-apples; the raw log does not
  // (it keeps every recursion depth distinct) and is only used when no
  // tree was built.
  if (Tree)
    return Tree->numRecords() - 1; // root excluded
  std::set<std::vector<uint32_t>> Distinct(Log.begin(), Log.end());
  return Distinct.size();
}

void OverflowSampling::extract(RunOutcome &Outcome, hw::Machine &Machine) {
  if (modeUsesPaths(Config.M)) {
    Outcome.PathProfiles.resize(SampledPaths.size());
    for (size_t Id = 0; Id != SampledPaths.size(); ++Id) {
      FunctionPathProfile &Profile = Outcome.PathProfiles[Id];
      Profile.FuncId = static_cast<unsigned>(Id);
      const bl::PathNumbering *PN = Numberings[Id].get();
      if (!PN || !PN->valid())
        continue;
      Profile.HasProfile = true;
      Profile.NumPaths = PN->numPaths();
      Profile.Hashed = true; // sampled tables are sparse maps, never arrays
      for (const auto &[Sum, Cell] : SampledPaths[Id]) {
        PathEntry Entry;
        Entry.PathSum = Sum;
        Entry.Freq = Cell.first;
        // Each sample stands for ArmedPeriod events of the armed PIC's
        // event; the other PIC is not observed by this acquisition.
        (Acq.Pic == 0 ? Entry.Metric0 : Entry.Metric1) = Cell.second;
        Profile.Paths.push_back(Entry);
      }
    }
  }

  if (Tree && modeUsesCct(Config.M))
    Outcome.Tree = std::move(Tree);

  Outcome.Acq = Stats;
  obs::add(obs::Counter::AcqTrapsDelivered, Stats.Traps);
  obs::add(obs::Counter::AcqSamplesRecorded, Stats.Samples);
}
