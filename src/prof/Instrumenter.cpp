//===- prof/Instrumenter.cpp - The EEL-role binary editor -------------------===//

#include "prof/Instrumenter.h"

#include "bl/InstrumentationPlan.h"
#include "bl/PathNumbering.h"
#include "cfg/Cfg.h"
#include "prof/CallSites.h"
#include "support/Error.h"
#include "support/Format.h"

#include <cassert>
#include <unordered_map>

using namespace pp;
using namespace pp::prof;
using ir::BasicBlock;
using ir::Function;
using ir::Inst;
using ir::Opcode;
using ir::Reg;

namespace {

// --- Small instruction constructors ----------------------------------------

Inst mkMovImm(Reg Dst, int64_t Value) {
  Inst I;
  I.Op = Opcode::Mov;
  I.Dst = Dst;
  I.BIsImm = true;
  I.Imm = Value;
  return I;
}

Inst mkBin(Opcode Op, Reg Dst, Reg A, int64_t Imm) {
  Inst I;
  I.Op = Op;
  I.Dst = Dst;
  I.A = A;
  I.BIsImm = true;
  I.Imm = Imm;
  return I;
}

Inst mkBinReg(Opcode Op, Reg Dst, Reg A, Reg B) {
  Inst I;
  I.Op = Op;
  I.Dst = Dst;
  I.A = A;
  I.B = B;
  return I;
}

Inst mkLoadAbs(Reg Dst, uint64_t Addr) {
  Inst I;
  I.Op = Opcode::Load;
  I.Dst = Dst;
  I.A = ir::NoReg;
  I.Imm = static_cast<int64_t>(Addr);
  I.Size = 8;
  return I;
}

Inst mkLoad(Reg Dst, Reg Base, int64_t Offset) {
  Inst I;
  I.Op = Opcode::Load;
  I.Dst = Dst;
  I.A = Base;
  I.Imm = Offset;
  I.Size = 8;
  return I;
}

Inst mkStoreAbs(uint64_t Addr, Reg Value) {
  Inst I;
  I.Op = Opcode::Store;
  I.A = ir::NoReg;
  I.B = Value;
  I.Imm = static_cast<int64_t>(Addr);
  I.Size = 8;
  return I;
}

Inst mkStore(Reg Base, int64_t Offset, Reg Value) {
  Inst I;
  I.Op = Opcode::Store;
  I.A = Base;
  I.B = Value;
  I.Imm = Offset;
  I.Size = 8;
  return I;
}

Inst mkRdPic(Reg Dst) {
  Inst I;
  I.Op = Opcode::RdPic;
  I.Dst = Dst;
  return I;
}

Inst mkWrPicImm(int64_t Value) {
  Inst I;
  I.Op = Opcode::WrPic;
  I.BIsImm = true;
  I.Imm = Value;
  return I;
}

Inst mkWrPicReg(Reg Value) {
  Inst I;
  I.Op = Opcode::WrPic;
  I.B = Value;
  return I;
}

Inst mkRuntimeOp(Opcode Op, int64_t Imm = 0, Reg A = ir::NoReg) {
  Inst I;
  I.Op = Op;
  I.Imm = Imm;
  I.A = A;
  return I;
}

// --- Per-function instrumentation -------------------------------------------

/// Rewrites one function. The CFG, numbering, and plan are computed on the
/// pristine clone before any code is inserted; placement then only appends
/// to block fronts/backs or to freshly split edge blocks, so the plan's
/// (block, successor-index) coordinates stay valid throughout.
class FunctionInstrumenter {
public:
  FunctionInstrumenter(ir::Module &M, Function &F,
                       const ProfileConfig &Config, FunctionInstrInfo &Info)
      : M(M), F(F), Config(Config), Info(Info), G(F) {}

  void run() {
    Info.F = &F;
    Info.Instrumented = true;
    F.setInstrumented(true);

    bool WantPaths = modeUsesPaths(Config.M);
    bool WantCct = modeUsesCct(Config.M);

    if (WantCct)
      describeCallSites();
    if (WantPaths)
      planPaths();
    if (Config.M == Mode::Edge)
      planEdgeProfile();

    // Scratch registers ("EEL requires a free local register in each
    // procedure", §3.2).
    PathReg = F.freshReg();
    PicSaveReg = F.freshReg();
    for (Reg &S : Scratch)
      S = F.freshReg();

    if (WantCct)
      instrumentCallSites();
    placeEdgeOps();
    placeEntry();
    placeExits();
  }

private:
  /// Enumerates call sites into Info (slot indices for the CCT).
  void describeCallSites() {
    Sites = enumerateCallSites(F);
    Info.SiteIsIndirect.clear();
    if (Config.DistinguishCallSites) {
      Info.NumSites = static_cast<unsigned>(Sites.size());
      for (const CallSite &Site : Sites)
        Info.SiteIsIndirect.push_back(Site.Indirect);
      return;
    }
    // Per-procedure aggregation (§4.1's space/precision trade-off): all
    // sites share one list-valued slot, so a callee gets one record per
    // (caller context, callee) pair rather than per call site.
    Info.NumSites = Sites.empty() ? 0 : 1;
    if (!Sites.empty())
      Info.SiteIsIndirect.push_back(1);
  }

  /// Computes the Ball-Larus plan and allocates the counter table.
  void planPaths() {
    PN = std::make_unique<bl::PathNumbering>(G);
    Plan = bl::buildPathPlan(*PN, Config.Plan);
    if (!Plan.Valid)
      return; // path-count overflow: no flow profile for this function
    Info.HasPathProfile = true;
    Info.NumPaths = Plan.NumPaths;
    Info.Hashed = Plan.UseHashTable;
    Info.Stride = modeUsesHw(Config.M) ? 24 : 8;
    // Multi-iteration windows: build the k-numbering (its internal ladder
    // settles on the largest k <= Config.K that fits) on the still
    // pristine clone. The emitted instrumentation is unchanged — the
    // runtime stitches the per-segment commits into windows — but the
    // counter space becomes the window-id space, which is far too sparse
    // for arrays, so hashing is forced.
    if (Config.K > 1 && !modeUsesPerRecordPaths(Config.M)) {
      auto Bundle = std::make_shared<const bl::KPathBundle>(F, Config.K);
      if (Bundle->KPN.multiIteration()) {
        Info.KIters = Bundle->KPN.effectiveK();
        Info.NumPaths = Bundle->KPN.numPaths();
        Info.Hashed = true;
        Info.KPaths = std::move(Bundle);
      }
    }
    if (modeUsesPerRecordPaths(Config.M))
      return; // per-record tables live in the CCT heap
    uint64_t Bytes = Info.Hashed
                         ? (uint64_t(Config.Plan.ArrayThreshold) * 32)
                         : Plan.NumPaths * Info.Stride;
    size_t Index = M.addGlobal("__pp.paths." + F.name(), Bytes);
    Info.TableAddr = M.global(Index).Addr;
  }

  /// Chooses spanning-tree chords for the edge-profiling baseline (Knuth's
  /// method, as used by qpt): only chords carry counters; tree edge counts
  /// are reconstructed offline by flow conservation.
  void planEdgeProfile() {
    // Undirected DFS over the CFG (plus the implicit EXIT -> ENTRY edge,
    // which is "counted" by the trailing invocation counter).
    std::vector<bool> InTree(G.numEdges(), false);
    std::vector<bool> Visited(G.numNodes(), false);
    std::vector<unsigned> Stack{G.entryNode()};
    Visited[G.entryNode()] = true;
    while (!Stack.empty()) {
      unsigned Node = Stack.back();
      Stack.pop_back();
      auto Consider = [&](unsigned EdgeId, unsigned Other) {
        if (Visited[Other])
          return;
        Visited[Other] = true;
        InTree[EdgeId] = true;
        Stack.push_back(Other);
      };
      for (unsigned EdgeId : G.outEdges(Node))
        Consider(EdgeId, G.edge(EdgeId).To);
      for (unsigned EdgeId : G.inEdges(Node))
        Consider(EdgeId, G.edge(EdgeId).From);
    }
    for (unsigned EdgeId = 0; EdgeId != G.numEdges(); ++EdgeId)
      if (!InTree[EdgeId] && G.isReachable(G.edge(EdgeId).From))
        Info.ChordEdges.push_back(EdgeId);
    uint64_t Slots = Info.ChordEdges.size() + 1; // +1 invocation count
    size_t Index = M.addGlobal("__pp.edges." + F.name(), Slots * 8);
    Info.EdgeTableAddr = M.global(Index).Addr;
  }

  /// Inserts a cct.call before every call so the callee finds its slot
  /// through the gCSP.
  void instrumentCallSites() {
    unsigned SiteIndex = 0;
    for (const auto &BB : F.blocks()) {
      auto &Insts = BB->insts();
      for (size_t Index = 0; Index != Insts.size(); ++Index) {
        if (!ir::isCall(Insts[Index].Op))
          continue;
        unsigned Slot = Config.DistinguishCallSites ? SiteIndex : 0;
        Insts.insert(Insts.begin() + static_cast<long>(Index),
                     mkRuntimeOp(Opcode::CctCall, Slot));
        ++Index; // skip the call we just stepped over
        ++SiteIndex;
      }
    }
    assert(SiteIndex == Sites.size() && "site enumeration drifted");
  }

  /// The "count[r + Fold]++ (+ metric accumulation)" sequence.
  std::vector<Inst> commitSequence(uint64_t Fold) {
    std::vector<Inst> Code;
    bool Hw = Config.M == Mode::FlowHw;
    if (modeUsesPerRecordPaths(Config.M)) {
      // Commit into the current call record's table via the runtime.
      Reg Key = PathReg;
      if (Fold != 0) {
        Code.push_back(mkBin(Opcode::Add, Scratch[0], PathReg,
                             static_cast<int64_t>(Fold)));
        Key = Scratch[0];
      }
      Code.push_back(mkRuntimeOp(Opcode::CctPathCommit, 0, Key));
      return Code;
    }
    if (Info.Hashed) {
      Reg Key = PathReg;
      if (Fold != 0) {
        Code.push_back(mkBin(Opcode::Add, Scratch[0], PathReg,
                             static_cast<int64_t>(Fold)));
        Key = Scratch[0];
      }
      Code.push_back(mkRuntimeOp(Opcode::PathHashCommit, F.id(), Key));
      return Code;
    }
    // Array mode, inline: address = Table + (r + Fold) * Stride.
    Reg Addr = Scratch[0];
    if (Info.Stride == 8)
      Code.push_back(mkBin(Opcode::Shl, Addr, PathReg, 3));
    else
      Code.push_back(mkBin(Opcode::Mul, Addr, PathReg,
                           static_cast<int64_t>(Info.Stride)));
    Code.push_back(mkBin(Opcode::Add, Addr, Addr,
                         static_cast<int64_t>(Info.TableAddr +
                                              Fold * Info.Stride)));
    Reg Count = Scratch[1];
    Code.push_back(mkLoad(Count, Addr, 0));
    Code.push_back(mkBin(Opcode::Add, Count, Count, 1));
    Code.push_back(mkStore(Addr, 0, Count));
    if (Hw) {
      // Read both PICs, split the lanes, and accumulate 64-bit sums
      // (§3.1: "thirteen or more instructions").
      Reg Cur = Scratch[2], Lane0 = Scratch[3], Lane1 = Scratch[4],
          Acc = Scratch[5];
      Code.push_back(mkRdPic(Cur));
      Code.push_back(mkBin(Opcode::And, Lane0, Cur, 0xffffffffLL));
      Code.push_back(mkBin(Opcode::Shr, Lane1, Cur, 32));
      Code.push_back(mkLoad(Acc, Addr, 8));
      Code.push_back(mkBinReg(Opcode::Add, Acc, Acc, Lane0));
      Code.push_back(mkStore(Addr, 8, Acc));
      Code.push_back(mkLoad(Acc, Addr, 16));
      Code.push_back(mkBinReg(Opcode::Add, Acc, Acc, Lane1));
      Code.push_back(mkStore(Addr, 16, Acc));
    }
    return Code;
  }

  /// The "zero the counters, with the UltraSPARC read-after-write" pair.
  void appendPicRestart(std::vector<Inst> &Code) {
    Code.push_back(mkWrPicImm(0));
    Code.push_back(mkRdPic(Scratch[2]));
  }

  /// Chord counter bump for edge profiling.
  std::vector<Inst> chordSequence(uint64_t Slot) {
    uint64_t Addr = Info.EdgeTableAddr + Slot * 8;
    std::vector<Inst> Code;
    Code.push_back(mkLoadAbs(Scratch[0], Addr));
    Code.push_back(mkBin(Opcode::Add, Scratch[0], Scratch[0], 1));
    Code.push_back(mkStoreAbs(Addr, Scratch[0]));
    return Code;
  }

  /// Inserts \p Code on CFG edge \p EdgeId, splitting critical edges.
  void insertOnEdge(unsigned EdgeId, std::vector<Inst> Code) {
    const cfg::Edge &E = G.edge(EdgeId);
    BasicBlock *From = G.block(E.From);
    assert(From && "cannot place code on a synthetic exit edge");
    if (E.SuccIndex < 0) {
      insertBeforeTerminator(From, std::move(Code));
      return;
    }
    BasicBlock *To = G.block(E.To);

    if (From->numSuccessors() == 1) {
      insertBeforeTerminator(From, std::move(Code));
      return;
    }
    if (G.inEdges(E.To).size() == 1 && E.To != G.entryNode()) {
      prependToBlock(To, std::move(Code));
      return;
    }
    // Critical edge: route through a fresh block (once per edge; later
    // insertions on the same edge append to it).
    auto It = SplitBlocks.find(EdgeId);
    BasicBlock *Split;
    if (It != SplitBlocks.end()) {
      Split = It->second;
    } else {
      Split = F.addBlock(From->name() + ".split" + std::to_string(EdgeId));
      Inst Jump;
      Jump.Op = Opcode::Br;
      Jump.T1 = To;
      Split->insts().push_back(Jump);
      From->setSuccessor(static_cast<unsigned>(E.SuccIndex), Split);
      SplitBlocks[EdgeId] = Split;
    }
    insertBeforeTerminator(Split, std::move(Code));
  }

  void insertBeforeTerminator(BasicBlock *BB, std::vector<Inst> Code) {
    auto &Insts = BB->insts();
    Insts.insert(Insts.begin() + static_cast<long>(BB->appendPos()),
                 std::make_move_iterator(Code.begin()),
                 std::make_move_iterator(Code.end()));
  }

  void prependToBlock(BasicBlock *BB, std::vector<Inst> Code) {
    size_t &Offset = PrependCounts[BB];
    auto &Insts = BB->insts();
    Insts.insert(Insts.begin() + static_cast<long>(Offset),
                 std::make_move_iterator(Code.begin()),
                 std::make_move_iterator(Code.end()));
    Offset += Code.size();
  }

  /// Path increments, back-edge commit/reset pairs, CCT loop probes, and
  /// edge-profiling chords — everything that lives on CFG edges.
  void placeEdgeOps() {
    if (Info.HasPathProfile) {
      for (const bl::EdgeIncrement &Incr : Plan.Increments)
        insertOnEdge(Incr.CfgEdgeId,
                     {mkBin(Opcode::Add, PathReg, PathReg,
                            static_cast<int64_t>(Incr.Value))});
      for (const bl::BackedgeOp &Op : Plan.Backedges) {
        std::vector<Inst> Code = commitSequence(Op.EndValue);
        Code.push_back(mkMovImm(PathReg, static_cast<int64_t>(Op.StartValue)));
        if (modeUsesHw(Config.M))
          appendPicRestart(Code);
        insertOnEdge(Op.CfgEdgeId, std::move(Code));
      }
    }

    if (Config.M == Mode::ContextHw) {
      // Read the counters along loop back edges too (§4.3), bounding the
      // measured interval to avoid 32-bit wrap and longjmp loss.
      for (unsigned EdgeId = 0; EdgeId != G.numEdges(); ++EdgeId)
        if (G.isBackedge(EdgeId) && G.isReachable(G.edge(EdgeId).From))
          insertOnEdge(EdgeId, {mkRuntimeOp(Opcode::CctHwProbe, 1)});
    }

    if (Config.M == Mode::Edge)
      for (size_t Slot = 0; Slot != Info.ChordEdges.size(); ++Slot)
        insertOnEdge(Info.ChordEdges[Slot], chordSequence(Slot));
  }

  /// Entry preamble, in order: CCT entry, CCT entry probe, PIC save, path
  /// register init, PIC zero + forced read.
  void placeEntry() {
    std::vector<Inst> Code;
    if (modeUsesCct(Config.M)) {
      Code.push_back(mkRuntimeOp(Opcode::CctEnter));
      if (Config.M == Mode::ContextHw)
        Code.push_back(mkRuntimeOp(Opcode::CctHwProbe, 0));
    }
    if (Info.HasPathProfile) {
      if (modeUsesHw(Config.M))
        Code.push_back(mkRdPic(PicSaveReg));
      Code.push_back(mkMovImm(PathReg, 0));
      if (modeUsesHw(Config.M))
        appendPicRestart(Code);
    }
    if (Config.M == Mode::Edge)
      Code = chordSequence(Info.ChordEdges.size()); // invocation counter
    if (Code.empty())
      return;
    auto &Insts = F.entry()->insts();
    Insts.insert(Insts.begin(), std::make_move_iterator(Code.begin()),
                 std::make_move_iterator(Code.end()));
  }

  /// Exit sequences before every return (and path commits before longjmp,
  /// whose frames the runtime unwinds without cct.exit).
  void placeExits() {
    for (const bl::ExitCommit &Commit : Plan.ExitCommits) {
      BasicBlock *BB = G.block(Commit.Node);
      bool IsReturn = BB->terminator().Op == Opcode::Ret;
      std::vector<Inst> Code;
      if (Info.HasPathProfile) {
        Code = commitSequence(Commit.FoldValue);
        if (modeUsesHw(Config.M) && IsReturn) {
          // Restore the caller's counter values (§3.1: save on entry,
          // restore before exit, capturing the cost of call instructions).
          Code.push_back(mkWrPicReg(PicSaveReg));
          Code.push_back(mkRdPic(Scratch[2]));
        }
      }
      insertBeforeTerminator(BB, std::move(Code));
    }
    if (!modeUsesCct(Config.M))
      return;
    for (const auto &BB : F.blocks()) {
      if (!BB->hasTerminator() || BB->terminator().Op != Opcode::Ret)
        continue;
      std::vector<Inst> Code;
      if (Config.M == Mode::ContextHw)
        Code.push_back(mkRuntimeOp(Opcode::CctHwProbe, 2));
      Code.push_back(mkRuntimeOp(Opcode::CctExit));
      insertBeforeTerminator(BB.get(), std::move(Code));
    }
  }

  ir::Module &M;
  Function &F;
  const ProfileConfig &Config;
  FunctionInstrInfo &Info;
  cfg::Cfg G;
  std::unique_ptr<bl::PathNumbering> PN;
  bl::PathPlan Plan;
  std::vector<CallSite> Sites;
  Reg PathReg = ir::NoReg;
  Reg PicSaveReg = ir::NoReg;
  Reg Scratch[6] = {ir::NoReg, ir::NoReg, ir::NoReg,
                    ir::NoReg, ir::NoReg, ir::NoReg};
  std::unordered_map<unsigned, BasicBlock *> SplitBlocks;
  std::unordered_map<BasicBlock *, size_t> PrependCounts;
};

} // namespace

Instrumented prof::instrument(const ir::Module &Original,
                              const ProfileConfig &Config) {
  // Multi-iteration windows only exist for whole-function path tables:
  // per-record (CCT) tables and the non-path modes have no window the
  // runtime could stitch. Refuse up front rather than silently profiling
  // something other than what was asked for.
  if (Config.K > 1 && Config.M != Mode::Flow && Config.M != Mode::FlowHw)
    reportFatalError(formatString(
        "k-iteration path profiling (k=%u) requires flow or flowhw mode, "
        "not %s",
        Config.K, modeName(Config.M)));
  Instrumented Result;
  Result.M = Original.clone();
  Result.Config = Config;
  Result.Functions.resize(Result.M->numFunctions());

  if (Config.M == Mode::None) {
    for (size_t Id = 0; Id != Result.M->numFunctions(); ++Id)
      Result.Functions[Id].F = Result.M->function(Id);
    return Result;
  }

  for (size_t Id = 0; Id != Result.M->numFunctions(); ++Id) {
    Function *F = Result.M->function(Id);
    Result.Functions[Id].F = F;
    if (F->numBlocks() == 0 || !Config.shouldInstrument(*F))
      continue;
    FunctionInstrumenter FI(*Result.M, *F, Config, Result.Functions[Id]);
    FI.run();
  }
  return Result;
}
