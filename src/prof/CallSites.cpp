//===- prof/CallSites.cpp - Call site enumeration ---------------------------===//

#include "prof/CallSites.h"

#include "ir/Function.h"

using namespace pp;
using namespace pp::prof;

std::vector<CallSite> prof::enumerateCallSites(const ir::Function &F) {
  std::vector<CallSite> Sites;
  for (const auto &BB : F.blocks()) {
    const auto &Insts = BB->insts();
    for (unsigned Index = 0; Index != Insts.size(); ++Index) {
      const ir::Inst &I = Insts[Index];
      if (!ir::isCall(I.Op))
        continue;
      Sites.push_back(
          CallSite{BB->id(), Index, I.Op == ir::Opcode::ICall});
    }
  }
  return Sites;
}
