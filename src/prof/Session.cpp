//===- prof/Session.cpp - One profiling run end to end ----------------------===//

#include "prof/Session.h"

#include "cfg/Cfg.h"
#include "prof/Runtime.h"
#include "support/Error.h"

#include <algorithm>
#include <cassert>

using namespace pp;
using namespace pp::prof;

namespace {

/// Reads a function's array-mode path counters back out of simulated
/// memory.
void readArrayTable(const FunctionInstrInfo &Info, const hw::Machine &Machine,
                    FunctionPathProfile &Profile) {
  for (uint64_t Sum = 0; Sum != Info.NumPaths; ++Sum) {
    uint64_t Addr = Info.TableAddr + Sum * Info.Stride;
    uint64_t Freq = Machine.peek(Addr, 8);
    if (Freq == 0)
      continue;
    PathEntry Entry;
    Entry.PathSum = Sum;
    Entry.Freq = Freq;
    if (Info.Stride >= 24) {
      Entry.Metric0 = Machine.peek(Addr + 8, 8);
      Entry.Metric1 = Machine.peek(Addr + 16, 8);
    }
    Profile.Paths.push_back(Entry);
  }
}

/// Reconstructs full edge counts from chord counters by flow conservation
/// over the spanning tree (Knuth's method).
void reconstructEdgeCounts(const ir::Function &OriginalF,
                           const FunctionInstrInfo &Info,
                           const hw::Machine &Machine, EdgeProfile &Profile) {
  cfg::Cfg G(OriginalF);
  Profile.EdgeCounts.assign(G.numEdges(), 0);

  std::vector<bool> Known(G.numEdges(), false);
  for (size_t Slot = 0; Slot != Info.ChordEdges.size(); ++Slot) {
    unsigned EdgeId = Info.ChordEdges[Slot];
    Profile.EdgeCounts[EdgeId] =
        Machine.peek(Info.EdgeTableAddr + Slot * 8, 8);
    Known[EdgeId] = true;
  }
  Profile.Invocations =
      Machine.peek(Info.EdgeTableAddr + Info.ChordEdges.size() * 8, 8);

  // Mark edges from unreachable sources as known zeros.
  for (unsigned EdgeId = 0; EdgeId != G.numEdges(); ++EdgeId)
    if (!G.isReachable(G.edge(EdgeId).From))
      Known[EdgeId] = true;

  // Flow conservation per node, with the virtual EXIT -> ENTRY edge
  // carrying the invocation count: repeatedly solve any node with exactly
  // one unknown incident edge.
  auto VirtualIn = [&](unsigned Node) -> uint64_t {
    return Node == G.entryNode() ? Profile.Invocations : 0;
  };
  auto VirtualOut = [&](unsigned Node) -> uint64_t {
    return Node == G.exitNode() ? Profile.Invocations : 0;
  };

  bool Progress = true;
  while (Progress) {
    Progress = false;
    for (unsigned Node = 0; Node != G.numNodes(); ++Node) {
      if (Node != G.exitNode() && !G.isReachable(Node))
        continue;
      int UnknownEdge = -1;
      bool UnknownIsIn = false;
      unsigned UnknownCount = 0;
      uint64_t InSum = VirtualIn(Node), OutSum = VirtualOut(Node);
      for (unsigned EdgeId : G.inEdges(Node)) {
        if (Known[EdgeId]) {
          InSum += Profile.EdgeCounts[EdgeId];
        } else {
          ++UnknownCount;
          UnknownEdge = static_cast<int>(EdgeId);
          UnknownIsIn = true;
        }
      }
      for (unsigned EdgeId : G.outEdges(Node)) {
        if (Known[EdgeId]) {
          OutSum += Profile.EdgeCounts[EdgeId];
        } else {
          ++UnknownCount;
          UnknownEdge = static_cast<int>(EdgeId);
          UnknownIsIn = false;
        }
      }
      if (UnknownCount != 1)
        continue;
      uint64_t Value = UnknownIsIn ? OutSum - InSum : InSum - OutSum;
      Profile.EdgeCounts[static_cast<unsigned>(UnknownEdge)] = Value;
      Known[static_cast<unsigned>(UnknownEdge)] = true;
      Progress = true;
    }
  }
}

} // namespace

/// The stager's mutable cross-stage state: the partially built outcome plus
/// the execution apparatus (machine, VM, runtime) stages 2-4 share.
struct RunStager::State {
  RunOutcome Outcome;
  std::unique_ptr<hw::Machine> Machine;
  std::unique_ptr<vm::Vm> VM;
  std::unique_ptr<Runtime> RT;
  bool Instrumented = false;
  bool Loaded = false;
  bool Executed = false;
};

RunStager::RunStager(const ir::Module &M, const SessionOptions &Options)
    : M(M), Options(Options), S(std::make_unique<State>()) {}

RunStager::~RunStager() = default;

void RunStager::instrument() {
  assert(!S->Instrumented && "instrument() runs once");
  S->Outcome.Instr = prof::instrument(M, Options.Config);
  S->Instrumented = true;
}

void RunStager::load() {
  assert(S->Instrumented && !S->Loaded && "load() follows instrument()");
  S->Machine = std::make_unique<hw::Machine>(Options.MachineCfg);
  S->Machine->counters().selectPicEvents(Options.Config.Pic0,
                                         Options.Config.Pic1);

  S->VM = std::make_unique<vm::Vm>(*S->Outcome.Instr.M, *S->Machine);
  S->VM->setEngine(Options.Engine);
  S->VM->setMaxInsts(Options.MaxInsts);
  if (!Options.SignalHandler.empty()) {
    ir::Function *Handler =
        S->Outcome.Instr.M->findFunction(Options.SignalHandler);
    if (!Handler)
      reportFatalError("signal handler '" + Options.SignalHandler +
                       "' not found");
    S->VM->setSignal(Handler, Options.SignalInterval);
  }

  if (Options.Config.M != Mode::None) {
    S->RT = std::make_unique<Runtime>(S->Outcome.Instr, *S->Machine);
    S->VM->setRuntime(S->RT.get());
  }
  S->Loaded = true;
}

void RunStager::execute() {
  assert(S->Loaded && !S->Executed && "execute() follows load()");
  S->Outcome.Result = S->VM->run();
  S->Executed = true;
}

const Instrumented &RunStager::instrumented() const {
  assert(S->Instrumented && "no instrumented module before instrument()");
  return S->Outcome.Instr;
}

RunOutcome RunStager::extract() {
  assert(S->Executed && "extract() follows execute()");
  RunOutcome &Outcome = S->Outcome;
  hw::Machine &Machine = *S->Machine;
  Runtime *RT = S->RT.get();

  for (unsigned E = 0; E != hw::NumEvents; ++E)
    Outcome.Totals[E] = Machine.counters().total(static_cast<hw::Event>(E));

  Mode ActiveMode = Options.Config.M;
  if (ActiveMode == Mode::Flow || ActiveMode == Mode::FlowHw) {
    Outcome.PathProfiles.resize(Outcome.Instr.Functions.size());
    for (size_t Id = 0; Id != Outcome.Instr.Functions.size(); ++Id) {
      const FunctionInstrInfo &Info = Outcome.Instr.Functions[Id];
      FunctionPathProfile &Profile = Outcome.PathProfiles[Id];
      Profile.FuncId = static_cast<unsigned>(Id);
      if (!Info.HasPathProfile)
        continue;
      Profile.HasProfile = true;
      Profile.NumPaths = Info.NumPaths;
      Profile.Hashed = Info.Hashed;
      if (!Info.Hashed) {
        readArrayTable(Info, Machine, Profile);
      } else {
        for (const auto &[Key, Cell] : RT->hashTable(Profile.FuncId)) {
          PathEntry Entry;
          Entry.PathSum = Key;
          Entry.Freq = Cell.Freq;
          Entry.Metric0 = Cell.Metric0;
          Entry.Metric1 = Cell.Metric1;
          Profile.Paths.push_back(Entry);
        }
        std::sort(Profile.Paths.begin(), Profile.Paths.end(),
                  [](const PathEntry &A, const PathEntry &B) {
                    return A.PathSum < B.PathSum;
                  });
      }
    }
  }

  if (ActiveMode == Mode::Edge) {
    Outcome.EdgeProfiles.resize(Outcome.Instr.Functions.size());
    for (size_t Id = 0; Id != Outcome.Instr.Functions.size(); ++Id) {
      const FunctionInstrInfo &Info = Outcome.Instr.Functions[Id];
      EdgeProfile &Profile = Outcome.EdgeProfiles[Id];
      Profile.FuncId = static_cast<unsigned>(Id);
      if (!Info.Instrumented)
        continue;
      Profile.HasProfile = true;
      reconstructEdgeCounts(*M.function(Id), Info, Machine, Profile);
    }
  }

  if (RT && modeUsesCct(ActiveMode))
    Outcome.Tree = RT->takeTree();

  return std::move(S->Outcome);
}

RunOutcome prof::runProfile(const ir::Module &M,
                            const SessionOptions &Options) {
  RunStager Stager(M, Options);
  Stager.instrument();
  Stager.load();
  Stager.execute();
  return Stager.extract();
}
