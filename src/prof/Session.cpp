//===- prof/Session.cpp - One profiling run end to end ----------------------===//

#include "prof/Session.h"

#include "obs/Obs.h"
#include "support/Error.h"

#include <cassert>

using namespace pp;
using namespace pp::prof;

/// The stager's mutable cross-stage state: the partially built outcome,
/// the acquisition engine doing the mode-specific work, and the execution
/// apparatus (machine, VM) stages 2-4 share.
struct RunStager::State {
  RunOutcome Outcome;
  std::unique_ptr<AcquisitionEngine> Engine;
  std::unique_ptr<hw::Machine> Machine;
  std::unique_ptr<vm::Vm> VM;
  /// Span label shared by the four stage spans: "exact/flowhw",
  /// "overflow/context", ... — what pp-report obs breaks acquisition cost
  /// down by.
  std::string SpanLabel;
  bool Instrumented = false;
  bool Loaded = false;
  bool Executed = false;
};

RunStager::RunStager(const ir::Module &M, const SessionOptions &Options)
    : M(M), Options(Options), S(std::make_unique<State>()) {
  S->Engine = makeAcquisitionEngine(M, Options);
  S->SpanLabel =
      std::string(S->Engine->name()) + "/" + modeName(Options.Config.M);
}

RunStager::~RunStager() = default;

void RunStager::instrument() {
  assert(!S->Instrumented && "instrument() runs once");
  obs::SpanScope Span("prof", "instrument", S->SpanLabel);
  S->Outcome.Instr = S->Engine->prepare();
  S->Instrumented = true;
}

void RunStager::load() {
  assert(S->Instrumented && !S->Loaded && "load() follows instrument()");
  obs::SpanScope Span("prof", "load", S->SpanLabel);
  S->Machine = std::make_unique<hw::Machine>(Options.MachineCfg);
  S->Machine->counters().selectPicEvents(Options.Config.Pic0,
                                         Options.Config.Pic1);

  S->VM = std::make_unique<vm::Vm>(*S->Outcome.Instr.M, *S->Machine);
  S->VM->setEngine(Options.Engine);
  S->VM->setMaxInsts(Options.MaxInsts);
  if (!Options.SignalHandler.empty()) {
    ir::Function *Handler =
        S->Outcome.Instr.M->findFunction(Options.SignalHandler);
    if (!Handler)
      reportFatalError("signal handler '" + Options.SignalHandler +
                       "' not found");
    S->VM->setSignal(Handler, Options.SignalInterval);
  }

  S->Engine->attach(*S->Machine, *S->VM, S->Outcome.Instr);
  S->Loaded = true;
}

void RunStager::execute() {
  assert(S->Loaded && !S->Executed && "execute() follows load()");
  obs::SpanScope Span("prof", "execute", S->SpanLabel);
  S->Outcome.Result = S->VM->run();
  Span.setWork(S->Machine->counters().total(hw::Event::Cycles));
  S->Executed = true;
}

const Instrumented &RunStager::instrumented() const {
  assert(S->Instrumented && "no instrumented module before instrument()");
  return S->Outcome.Instr;
}

RunOutcome RunStager::extract() {
  assert(S->Executed && "extract() follows execute()");
  obs::SpanScope Span("prof", "extract", S->SpanLabel);
  RunOutcome &Outcome = S->Outcome;
  hw::Machine &Machine = *S->Machine;

  for (unsigned E = 0; E != hw::NumEvents; ++E)
    Outcome.Totals[E] = Machine.counters().total(static_cast<hw::Event>(E));

  S->Engine->extract(Outcome, Machine);

  return std::move(S->Outcome);
}

RunOutcome prof::runProfile(const ir::Module &M,
                            const SessionOptions &Options) {
  RunStager Stager(M, Options);
  Stager.instrument();
  Stager.load();
  Stager.execute();
  return Stager.extract();
}
