//===- prof/Mode.h - Profiling modes and configuration ---------*- C++ -*-===//
///
/// \file
/// The profiling modes PP supports and the knobs of a profiling run. The
/// three headline modes match the paper's Table 1 columns — Flow and HW,
/// Context and HW, Context and Flow — plus frequency-only flow profiling,
/// context-only profiling, and the classic edge-profiling baseline (§6.1
/// compares against it).
///
//===----------------------------------------------------------------------===//

#ifndef PP_PROF_MODE_H
#define PP_PROF_MODE_H

#include "bl/InstrumentationPlan.h"
#include "hw/Event.h"

#include <functional>

namespace pp {
namespace ir {
class Function;
} // namespace ir

namespace prof {

/// What to instrument and record.
enum class Mode {
  /// No instrumentation (the baseline run).
  None,
  /// Knuth-style edge profiling on spanning-tree chords (qpt baseline).
  Edge,
  /// Intraprocedural path frequencies only ([BL96]).
  Flow,
  /// Path frequencies plus two hardware metrics per path ("Flow and HW").
  FlowHw,
  /// Calling context tree with invocation counts only.
  Context,
  /// CCT with two hardware metrics per call record ("Context and HW").
  ContextHw,
  /// CCT with per-record path frequencies ("Context and Flow"; the paper's
  /// approximation of interprocedural path profiling).
  ContextFlow,
  /// The full combination: per-record path frequencies plus two hardware
  /// metrics per (context, path) pair — hardware measurements at
  /// interprocedural-path precision.
  ContextFlowHw,
};

/// Short mode label for reports.
const char *modeName(Mode M);

/// The tools' default ProfileConfig::K: $PP_BL_K, strictly parsed.
/// Malformed or out-of-range values (want 1..16) warn under \p Tool's
/// name and fall back to classic k = 1; an explicit --k= flag wins over
/// the environment.
unsigned defaultKFromEnv(const char *Tool);

inline bool modeUsesPaths(Mode M) {
  return M == Mode::Flow || M == Mode::FlowHw || M == Mode::ContextFlow ||
         M == Mode::ContextFlowHw;
}
inline bool modeUsesCct(Mode M) {
  return M == Mode::Context || M == Mode::ContextHw ||
         M == Mode::ContextFlow || M == Mode::ContextFlowHw;
}
inline bool modeUsesHw(Mode M) {
  return M == Mode::FlowHw || M == Mode::ContextHw ||
         M == Mode::ContextFlowHw;
}
/// True when path counters live in per-CCT-record tables instead of one
/// table per function.
inline bool modeUsesPerRecordPaths(Mode M) {
  return M == Mode::ContextFlow || M == Mode::ContextFlowHw;
}

/// Configuration of one profiling run.
struct ProfileConfig {
  Mode M = Mode::FlowHw;
  /// Events routed to the two PICs in the HW modes.
  hw::Event Pic0 = hw::Event::Insts;
  hw::Event Pic1 = hw::Event::DCacheReadMiss;
  /// Path-probe placement options.
  bl::PlanOptions Plan;
  /// Window size for multi-iteration (k-BL) path profiling: paths may span
  /// up to K loop iterations (K-1 back edges). 1 is classic Ball-Larus and
  /// keeps every fingerprint, profile, and report byte-identical; K >= 2
  /// requires Flow or FlowHw mode with the exact acquisition engine.
  /// Per-function, the numbering ladder falls back K -> K-1 -> ... -> 1
  /// (then edge profiling) when the path count overflows 2^62; the level
  /// actually chosen is recorded in FunctionInstrInfo::KIters.
  unsigned K = 1;
  /// Distinguish call sites in the CCT (the paper's default; disabling
  /// aggregates per (caller, callee) pair — the §4.1 space/precision
  /// trade-off, measured by the ablation bench).
  bool DistinguishCallSites = true;
  /// Predicate selecting which functions to instrument (null = all). The
  /// CCT protocol tolerates uninstrumented procedures via gCSP
  /// save/restore, which the tests exercise.
  std::function<bool(const ir::Function &)> ShouldInstrument;

  bool shouldInstrument(const ir::Function &F) const {
    return !ShouldInstrument || ShouldInstrument(F);
  }
};

} // namespace prof
} // namespace pp

#endif // PP_PROF_MODE_H
