//===- prof/Oracle.cpp - Reference profiles via tracing ---------------------===//

#include "prof/Oracle.h"

#include <cassert>

using namespace pp;
using namespace pp::prof;

OracleProfiler::OracleProfiler(const ir::Module &M) {
  size_t NumFuncs = M.numFunctions();
  Cfgs.resize(NumFuncs);
  Numberings.resize(NumFuncs);
  PathFreqs.resize(NumFuncs);
  EdgeCounts.resize(NumFuncs);
  CallCounts.assign(NumFuncs, 0);
  for (size_t Id = 0; Id != NumFuncs; ++Id) {
    const ir::Function &F = *M.function(Id);
    if (F.numBlocks() == 0)
      continue;
    Cfgs[Id] = std::make_unique<cfg::Cfg>(F);
    Numberings[Id] = std::make_unique<bl::PathNumbering>(*Cfgs[Id]);
    EdgeCounts[Id].assign(Cfgs[Id]->numEdges(), 0);
  }
}

OracleProfiler::~OracleProfiler() = default;

void OracleProfiler::onEnterFunction(const ir::Function &F) {
  ++CallCounts[F.id()];
  Stack.push_back(FrameState{F.id(), 0});
  Dct.enter(F.id());
}

void OracleProfiler::onExitFunction(const ir::Function &F) {
  assert(!Stack.empty() && Stack.back().FuncId == F.id());
  Stack.pop_back();
  Dct.exit();
}

void OracleProfiler::onUnwindFunction(const ir::Function &F) {
  // Longjmp discards the frame: its in-flight path is abandoned, exactly
  // like the instrumented program, whose commit never runs.
  assert(!Stack.empty() && Stack.back().FuncId == F.id());
  Stack.pop_back();
  Dct.exit();
}

void OracleProfiler::onCall(const ir::Function &Caller,
                            const ir::Inst &CallInst,
                            const ir::Function &Callee) {
  Dcg.addCall(Caller.id(), Callee.id());
}

void OracleProfiler::onEdgeTaken(const ir::BasicBlock &From, int SuccIndex) {
  assert(!Stack.empty());
  FrameState &Frame = Stack.back();
  unsigned FuncId = Frame.FuncId;
  assert(From.parent()->id() == FuncId && "edge in unexpected function");

  const cfg::Cfg &G = *Cfgs[FuncId];
  const auto &OutIds = G.outEdges(From.id());
  unsigned EdgeId =
      SuccIndex < 0 ? OutIds[0] : OutIds[static_cast<unsigned>(SuccIndex)];
  assert((SuccIndex >= 0 || G.edge(EdgeId).SuccIndex == -1) &&
         "exit edge mismatch");
  ++EdgeCounts[FuncId][EdgeId];

  const bl::PathNumbering &PN = *Numberings[FuncId];
  if (!PN.valid())
    return;
  if (G.isBackedge(EdgeId)) {
    ++PathFreqs[FuncId][Frame.PathSum + PN.backedgeEndValue(EdgeId)];
    Frame.PathSum = PN.backedgeStartValue(EdgeId);
    return;
  }
  uint64_t Val = PN.valueForCfgEdge(EdgeId);
  if (G.edge(EdgeId).SuccIndex < 0) {
    // Leaving the function (return or longjmp): commit the ended path.
    ++PathFreqs[FuncId][Frame.PathSum + Val];
    Frame.PathSum = 0;
    return;
  }
  Frame.PathSum += Val;
}
