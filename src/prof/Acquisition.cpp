//===- prof/Acquisition.cpp - How profiles are acquired ---------------------===//

#include "prof/Acquisition.h"

#include "cfg/Cfg.h"
#include "prof/OverflowSampling.h"
#include "prof/Runtime.h"
#include "prof/Session.h"
#include "support/Error.h"

#include <algorithm>
#include <cassert>

using namespace pp;
using namespace pp::prof;

AcquisitionEngine::~AcquisitionEngine() = default;

const char *prof::acquisitionName(Acquisition A) {
  return A == Acquisition::Exact ? "exact" : "overflow";
}

bool prof::parseAcquisition(const std::string &Name, Acquisition &Out) {
  if (Name == "exact") {
    Out = Acquisition::Exact;
    return true;
  }
  if (Name == "overflow") {
    Out = Acquisition::Overflow;
    return true;
  }
  return false;
}

namespace {

/// Reads a function's array-mode path counters back out of simulated
/// memory.
void readArrayTable(const FunctionInstrInfo &Info, const hw::Machine &Machine,
                    FunctionPathProfile &Profile) {
  for (uint64_t Sum = 0; Sum != Info.NumPaths; ++Sum) {
    uint64_t Addr = Info.TableAddr + Sum * Info.Stride;
    uint64_t Freq = Machine.peek(Addr, 8);
    if (Freq == 0)
      continue;
    PathEntry Entry;
    Entry.PathSum = Sum;
    Entry.Freq = Freq;
    if (Info.Stride >= 24) {
      Entry.Metric0 = Machine.peek(Addr + 8, 8);
      Entry.Metric1 = Machine.peek(Addr + 16, 8);
    }
    Profile.Paths.push_back(Entry);
  }
}

/// Reconstructs full edge counts from chord counters by flow conservation
/// over the spanning tree (Knuth's method).
void reconstructEdgeCounts(const ir::Function &OriginalF,
                           const FunctionInstrInfo &Info,
                           const hw::Machine &Machine, EdgeProfile &Profile) {
  cfg::Cfg G(OriginalF);
  Profile.EdgeCounts.assign(G.numEdges(), 0);

  std::vector<bool> Known(G.numEdges(), false);
  for (size_t Slot = 0; Slot != Info.ChordEdges.size(); ++Slot) {
    unsigned EdgeId = Info.ChordEdges[Slot];
    Profile.EdgeCounts[EdgeId] =
        Machine.peek(Info.EdgeTableAddr + Slot * 8, 8);
    Known[EdgeId] = true;
  }
  Profile.Invocations =
      Machine.peek(Info.EdgeTableAddr + Info.ChordEdges.size() * 8, 8);

  // Mark edges from unreachable sources as known zeros.
  for (unsigned EdgeId = 0; EdgeId != G.numEdges(); ++EdgeId)
    if (!G.isReachable(G.edge(EdgeId).From))
      Known[EdgeId] = true;

  // Flow conservation per node, with the virtual EXIT -> ENTRY edge
  // carrying the invocation count: repeatedly solve any node with exactly
  // one unknown incident edge.
  auto VirtualIn = [&](unsigned Node) -> uint64_t {
    return Node == G.entryNode() ? Profile.Invocations : 0;
  };
  auto VirtualOut = [&](unsigned Node) -> uint64_t {
    return Node == G.exitNode() ? Profile.Invocations : 0;
  };

  bool Progress = true;
  while (Progress) {
    Progress = false;
    for (unsigned Node = 0; Node != G.numNodes(); ++Node) {
      if (Node != G.exitNode() && !G.isReachable(Node))
        continue;
      int UnknownEdge = -1;
      bool UnknownIsIn = false;
      unsigned UnknownCount = 0;
      uint64_t InSum = VirtualIn(Node), OutSum = VirtualOut(Node);
      for (unsigned EdgeId : G.inEdges(Node)) {
        if (Known[EdgeId]) {
          InSum += Profile.EdgeCounts[EdgeId];
        } else {
          ++UnknownCount;
          UnknownEdge = static_cast<int>(EdgeId);
          UnknownIsIn = true;
        }
      }
      for (unsigned EdgeId : G.outEdges(Node)) {
        if (Known[EdgeId]) {
          OutSum += Profile.EdgeCounts[EdgeId];
        } else {
          ++UnknownCount;
          UnknownEdge = static_cast<int>(EdgeId);
          UnknownIsIn = false;
        }
      }
      if (UnknownCount != 1)
        continue;
      uint64_t Value = UnknownIsIn ? OutSum - InSum : InSum - OutSum;
      Profile.EdgeCounts[static_cast<unsigned>(UnknownEdge)] = Value;
      Known[static_cast<unsigned>(UnknownEdge)] = true;
      Progress = true;
    }
  }
}

/// The historical acquisition path, extracted from Session.cpp unchanged:
/// instrument the clone, attach the profiling runtime, read counter
/// arrays / hash tables / chord counters / the CCT back out.
class ExactInstrumentation final : public AcquisitionEngine {
public:
  ExactInstrumentation(const ir::Module &M, const SessionOptions &Options)
      : M(M), Options(Options) {}

  Instrumented prepare() override {
    return prof::instrument(M, Options.Config);
  }

  void attach(hw::Machine &Machine, vm::Vm &VM, Instrumented &Instr) override {
    if (Options.Config.M != Mode::None) {
      RT = std::make_unique<Runtime>(Instr, Machine);
      VM.setRuntime(RT.get());
    }
  }

  void extract(RunOutcome &Outcome, hw::Machine &Machine) override {
    Mode ActiveMode = Options.Config.M;
    if (ActiveMode == Mode::Flow || ActiveMode == Mode::FlowHw) {
      Outcome.PathProfiles.resize(Outcome.Instr.Functions.size());
      for (size_t Id = 0; Id != Outcome.Instr.Functions.size(); ++Id) {
        const FunctionInstrInfo &Info = Outcome.Instr.Functions[Id];
        FunctionPathProfile &Profile = Outcome.PathProfiles[Id];
        Profile.FuncId = static_cast<unsigned>(Id);
        if (!Info.HasPathProfile)
          continue;
        Profile.HasProfile = true;
        Profile.NumPaths = Info.NumPaths;
        Profile.Hashed = Info.Hashed;
        Profile.KIters = Info.KIters;
        if (!Info.Hashed) {
          readArrayTable(Info, Machine, Profile);
        } else {
          for (const auto &[Key, Cell] : RT->hashTable(Profile.FuncId)) {
            PathEntry Entry;
            Entry.PathSum = Key;
            Entry.Freq = Cell.Freq;
            Entry.Metric0 = Cell.Metric0;
            Entry.Metric1 = Cell.Metric1;
            Profile.Paths.push_back(Entry);
          }
          std::sort(Profile.Paths.begin(), Profile.Paths.end(),
                    [](const PathEntry &A, const PathEntry &B) {
                      return A.PathSum < B.PathSum;
                    });
        }
      }
    }

    if (ActiveMode == Mode::Edge) {
      Outcome.EdgeProfiles.resize(Outcome.Instr.Functions.size());
      for (size_t Id = 0; Id != Outcome.Instr.Functions.size(); ++Id) {
        const FunctionInstrInfo &Info = Outcome.Instr.Functions[Id];
        EdgeProfile &Profile = Outcome.EdgeProfiles[Id];
        Profile.FuncId = static_cast<unsigned>(Id);
        if (!Info.Instrumented)
          continue;
        Profile.HasProfile = true;
        reconstructEdgeCounts(*M.function(Id), Info, Machine, Profile);
      }
    }

    if (RT && modeUsesCct(ActiveMode))
      Outcome.Tree = RT->takeTree();
  }

  const char *name() const override { return "exact"; }

private:
  const ir::Module &M;
  const SessionOptions &Options;
  std::unique_ptr<Runtime> RT;
};

} // namespace

std::unique_ptr<AcquisitionEngine>
prof::makeAcquisitionEngine(const ir::Module &M,
                            const SessionOptions &Options) {
  switch (Options.Acq.Kind) {
  case Acquisition::Exact:
    return std::make_unique<ExactInstrumentation>(M, Options);
  case Acquisition::Overflow:
    // Sampled PCs reconstruct single-iteration paths; there is no window
    // state to sample, so k-BL runs must be exact.
    if (Options.Config.K > 1)
      reportFatalError("k-iteration path profiling (k>1) requires the "
                       "exact acquisition engine");
    return std::make_unique<OverflowSampling>(M, Options.Config, Options.Acq);
  }
  assert(false && "unknown acquisition kind");
  return nullptr;
}
