//===- prof/SamplingProfiler.h - §7.2's sampled call paths -----*- C++ -*-===//
///
/// \file
/// The related-work baseline the paper contrasts the CCT against
/// (Goldberg and Hall, §7.2): periodically interrupt the program and
/// record the whole call stack. Its two disadvantages, per the paper, are
/// that "every sample requires walking the call stack to establish the
/// context" and that "the size of their data structure is unbounded,
/// since each sample is recorded along with its call stack" — plus the
/// inherent statistical error of sampling. This implementation exists so
/// the ablation bench can measure both effects against the CCT.
///
//===----------------------------------------------------------------------===//

#ifndef PP_PROF_SAMPLINGPROFILER_H
#define PP_PROF_SAMPLINGPROFILER_H

#include "cct/CallingContextTree.h"
#include "vm/Vm.h"

#include <cstdint>
#include <map>
#include <vector>

namespace pp {
namespace prof {

/// A tracer that maintains a shadow call stack and snapshots it every
/// \p IntervalCycles simulated cycles, appending each snapshot to an
/// unbounded sample log (faithful to the scheme's storage behaviour).
class SamplingProfiler : public vm::Tracer {
public:
  /// \p Machine supplies the cycle clock driving the sampling interrupts.
  SamplingProfiler(const hw::Machine &Machine, uint64_t IntervalCycles)
      : Machine(Machine), IntervalCycles(IntervalCycles),
        NextSampleAt(IntervalCycles) {}

  // --- vm::Tracer ------------------------------------------------------------
  void onEnterFunction(const ir::Function &F) override {
    maybeSample();
    Stack.push_back(F.id());
  }
  void onExitFunction(const ir::Function &F) override {
    maybeSample();
    // A non-local return (longjmp, possibly out of a signal handler) may
    // have unwound frames this tracer never saw entered — e.g. when it
    // was attached after frames existed. An unmatched exit must not
    // underflow the shadow stack (pop_back on empty is UB); drop it.
    if (!Stack.empty())
      Stack.pop_back();
  }
  void onUnwindFunction(const ir::Function &F) override {
    if (!Stack.empty())
      Stack.pop_back();
  }
  void onEdgeTaken(const ir::BasicBlock &From, int SuccIndex) override {
    maybeSample();
  }

  // --- Results ----------------------------------------------------------------
  /// Number of samples taken.
  size_t numSamples() const { return Samples.size(); }

  /// Total stack frames walked across all samples (the per-sample walking
  /// cost the paper calls out).
  uint64_t framesWalked() const { return FramesWalked; }

  /// Bytes of the raw sample log: one word per frame per sample, exactly
  /// the "each sample is recorded along with its call stack" storage.
  uint64_t logBytes() const { return FramesWalked * 8; }

  /// Distinct contexts observed (for comparing against the CCT's record
  /// count, which is the *complete* set).
  size_t numDistinctContexts() const { return histogram().size(); }

  /// Sample count per context, aggregated.
  std::map<std::vector<uint32_t>, uint64_t> histogram() const {
    std::map<std::vector<uint32_t>, uint64_t> Out;
    for (const std::vector<uint32_t> &Sample : Samples)
      ++Out[Sample];
    return Out;
  }

  const std::vector<std::vector<uint32_t>> &samples() const {
    return Samples;
  }

private:
  void maybeSample() {
    // Cycle-driven "timer interrupts" at trace-visible points; a sample
    // copies the whole stack.
    while (Machine.now() >= NextSampleAt) {
      Samples.push_back(Stack);
      FramesWalked += Stack.size();
      NextSampleAt += IntervalCycles;
    }
  }

  const hw::Machine &Machine;
  uint64_t IntervalCycles;
  uint64_t NextSampleAt;
  std::vector<uint32_t> Stack;
  std::vector<std::vector<uint32_t>> Samples;
  uint64_t FramesWalked = 0;
};

} // namespace prof
} // namespace pp

#endif // PP_PROF_SAMPLINGPROFILER_H
