//===- prof/Runtime.cpp - The profiling runtime ------------------------------===//

#include "prof/Runtime.h"

#include "support/Error.h"

#include <cassert>

using namespace pp;
using namespace pp::prof;

Runtime::Runtime(const Instrumented &Instr, hw::Machine &Machine)
    : Instr(Instr), Machine(Machine) {
  if (!modeUsesCct(Instr.Config.M))
    return;
  // Build the procedure descriptor table the CCT needs: slot counts and
  // kinds per function, plus path-table sizes in Context+Flow mode.
  std::vector<cct::ProcDesc> Procs;
  Procs.reserve(Instr.Functions.size());
  for (const FunctionInstrInfo &Info : Instr.Functions) {
    cct::ProcDesc Desc;
    Desc.Name = Info.F ? Info.F->name() : "<null>";
    Desc.NumSites = Info.NumSites;
    Desc.SiteIsIndirect = Info.SiteIsIndirect;
    if (modeUsesPerRecordPaths(Instr.Config.M) && Info.HasPathProfile)
      Desc.NumPaths = Info.NumPaths;
    Procs.push_back(std::move(Desc));
  }
  // Metrics: [0] invocations, [1] PIC0 sum, [2] PIC1 sum. Path cells carry
  // metric accumulators only in the full flow+context+HW combination.
  Tree = std::make_unique<cct::CallingContextTree>(
      std::move(Procs), /*NumMetrics=*/3, /*Charger=*/this,
      /*PathCellBytes=*/
      Instr.Config.M == Mode::ContextFlowHw ? 24u : 8u,
      /*HashThreshold=*/Instr.Config.Plan.ArrayThreshold);
  GcspRecord = Tree->root();
  GcspSlot = 0;
}

Runtime::~Runtime() = default;

const std::unordered_map<uint64_t, HashPathCell> &
Runtime::hashTable(unsigned FuncId) const {
  static const std::unordered_map<uint64_t, HashPathCell> Empty;
  auto It = HashTables.find(FuncId);
  return It == HashTables.end() ? Empty : It->second;
}

void Runtime::execOp(vm::Vm &VM, const ir::Inst &I) {
  switch (I.Op) {
  case ir::Opcode::CctEnter:
    doCctEnter(VM);
    return;
  case ir::Opcode::CctCall:
    // The caller points the gCSP at this site's slot in its record: one
    // add off the local call record pointer (§4.2 "Procedure call").
    GcspRecord = currentRecord();
    GcspSlot = static_cast<unsigned>(I.Imm);
    Machine.chargeInsts(1);
    return;
  case ir::Opcode::CctExit:
    doCctExit(VM);
    return;
  case ir::Opcode::CctHwProbe:
    doHwProbe(VM, static_cast<int>(I.Imm));
    return;
  case ir::Opcode::CctPathCommit:
    doCctPathCommit(VM, I);
    return;
  case ir::Opcode::PathHashCommit:
    doPathHashCommit(VM, I);
    return;
  default:
    unreachable("not a profiling runtime op");
  }
}

vm::ProfRuntime::HookFn Runtime::bindOp(const ir::Inst &I) {
  // One captureless trampoline per opcode; the bodies mirror execOp's cases
  // exactly so both engines charge the machine identically.
  switch (I.Op) {
  case ir::Opcode::CctEnter:
    return [](vm::ProfRuntime &RT, vm::Vm &VM, const ir::Inst &) {
      static_cast<Runtime &>(RT).doCctEnter(VM);
    };
  case ir::Opcode::CctCall:
    return [](vm::ProfRuntime &RT, vm::Vm &, const ir::Inst &I) {
      Runtime &Self = static_cast<Runtime &>(RT);
      Self.GcspRecord = Self.currentRecord();
      Self.GcspSlot = static_cast<unsigned>(I.Imm);
      Self.Machine.chargeInsts(1);
    };
  case ir::Opcode::CctExit:
    return [](vm::ProfRuntime &RT, vm::Vm &VM, const ir::Inst &) {
      static_cast<Runtime &>(RT).doCctExit(VM);
    };
  case ir::Opcode::CctHwProbe:
    return [](vm::ProfRuntime &RT, vm::Vm &VM, const ir::Inst &I) {
      static_cast<Runtime &>(RT).doHwProbe(VM, static_cast<int>(I.Imm));
    };
  case ir::Opcode::CctPathCommit:
    return [](vm::ProfRuntime &RT, vm::Vm &VM, const ir::Inst &I) {
      static_cast<Runtime &>(RT).doCctPathCommit(VM, I);
    };
  case ir::Opcode::PathHashCommit:
    return [](vm::ProfRuntime &RT, vm::Vm &VM, const ir::Inst &I) {
      static_cast<Runtime &>(RT).doPathHashCommit(VM, I);
    };
  default:
    unreachable("not a profiling runtime op");
  }
}

void Runtime::doCctEnter(vm::Vm &VM) {
  assert(Tree && "cct op without a context mode");
  const ir::Function *F = VM.currentFunction();
  assert(F && "cct.enter outside a function");

  // Save the caller's gCSP to the (simulated) stack so calls through
  // uninstrumented procedures still attribute correctly.
  Machine.touchData(layout::ProfStackBase + 16 * Shadow.size(), 8,
                    /*IsWrite=*/true);
  Machine.chargeInsts(2);

  cct::CallRecord *R = Tree->enter(GcspRecord, GcspSlot, F->id());

  // Invocation count lives in the record's first metric slot.
  cct::CallingContextTree::bumpMetric(R, 0, 1);
  Machine.touchData(R->addr() + 16, 8, /*IsWrite=*/false);
  Machine.touchData(R->addr() + 16, 8, /*IsWrite=*/true);
  Machine.chargeInsts(3);

  Shadow.push_back(ShadowEntry{VM.frameDepth(), R, GcspRecord, GcspSlot, 0});
}

void Runtime::doCctExit(vm::Vm &VM) {
  assert(Tree && !Shadow.empty() && "cct.exit without matching enter");
  const ShadowEntry &Entry = Shadow.back();
  GcspRecord = Entry.SavedGcspRecord;
  GcspSlot = Entry.SavedGcspSlot;
  Shadow.pop_back();
  // Reload the saved gCSP from the stack.
  Machine.touchData(layout::ProfStackBase + 16 * Shadow.size(), 8,
                    /*IsWrite=*/false);
  Machine.chargeInsts(2);
}

void Runtime::doHwProbe(vm::Vm &VM, int Kind) {
  assert(Tree && !Shadow.empty() && "hw probe without an active record");
  ShadowEntry &Entry = Shadow.back();
  if (Kind == 0) {
    // Entry probe: snapshot the free-running PICs.
    Entry.HwStart = Machine.counters().readPics();
    Machine.chargeInsts(2);
    return;
  }
  // Loop back edge (1) or exit (2): accumulate the 32-bit lane deltas into
  // the record and restart the interval (§4.3: reading along back edges
  // bounds the interval, avoiding wrap and longjmp loss).
  uint64_t Cur = Machine.counters().readPics();
  uint64_t Start = Entry.HwStart;
  uint64_t Delta0 = static_cast<uint32_t>(Cur) - static_cast<uint32_t>(Start);
  Delta0 &= 0xffffffffu;
  uint64_t Delta1 = (Cur >> 32) - (Start >> 32);
  Delta1 &= 0xffffffffu;
  cct::CallRecord *R = Entry.Record;
  cct::CallingContextTree::bumpMetric(R, 1, Delta0);
  cct::CallingContextTree::bumpMetric(R, 2, Delta1);
  Entry.HwStart = Cur;
  for (unsigned Metric = 1; Metric <= 2; ++Metric) {
    Machine.touchData(R->addr() + 16 + 8 * Metric, 8, /*IsWrite=*/false);
    Machine.touchData(R->addr() + 16 + 8 * Metric, 8, /*IsWrite=*/true);
  }
  Machine.chargeInsts(8);
}

void Runtime::doCctPathCommit(vm::Vm &VM, const ir::Inst &I) {
  assert(Tree && !Shadow.empty() && "path commit without an active record");
  uint64_t PathSum = VM.reg(I.A);
  if (Instr.Config.M == Mode::ContextFlowHw) {
    // The counters were zeroed at the path start, so the current PIC
    // values are the path's metric deltas.
    uint64_t Cur = Machine.counters().readPics();
    Machine.chargeInsts(3); // rd + lane extraction
    Tree->commitPath(Shadow.back().Record, PathSum, /*WithMetrics=*/true,
                     static_cast<uint32_t>(Cur), Cur >> 32);
    return;
  }
  Tree->commitPath(Shadow.back().Record, PathSum, /*WithMetrics=*/false, 0,
                   0);
}

void Runtime::doPathHashCommit(vm::Vm &VM, const ir::Inst &I) {
  unsigned FuncId = static_cast<unsigned>(I.Imm);
  assert(FuncId < Instr.Functions.size());
  const FunctionInstrInfo &Info = Instr.Functions[FuncId];
  uint64_t Key = VM.reg(I.A);
  HashPathCell &Cell = HashTables[FuncId][Key];
  ++Cell.Freq;

  // Charge one probe of the open-addressed table plus the counter update.
  uint64_t Cells = Instr.Config.Plan.ArrayThreshold;
  uint64_t Mixed = Key * 0x9e3779b97f4a7c15ULL;
  uint64_t CellAddr = Info.TableAddr + (Mixed % Cells) * 32;
  Machine.touchData(CellAddr, 8, /*IsWrite=*/false); // key compare
  Machine.touchData(CellAddr + 8, 8, /*IsWrite=*/false);
  Machine.touchData(CellAddr + 8, 8, /*IsWrite=*/true);
  Machine.chargeInsts(8);

  if (Instr.Config.M == Mode::FlowHw) {
    uint64_t Cur = Machine.counters().readPics();
    Cell.Metric0 += static_cast<uint32_t>(Cur);
    Cell.Metric1 += Cur >> 32;
    Machine.touchData(CellAddr + 16, 8, /*IsWrite=*/true);
    Machine.touchData(CellAddr + 24, 8, /*IsWrite=*/true);
    Machine.chargeInsts(6);
  }
}

void Runtime::onSignalDeliver(vm::Vm &VM) {
  if (!Tree)
    return;
  // The handler is a fresh entry point: point the gCSP at the root's
  // signal slot so its cct.enter hangs the activation off the root
  // instead of whatever procedure the signal interrupted.
  SignalSavedGcsps.push_back({GcspRecord, GcspSlot});
  GcspRecord = Tree->root();
  GcspSlot = cct::SignalSlot;
  Machine.chargeInsts(2);
}

void Runtime::onSignalReturn(vm::Vm &VM) {
  if (!Tree || SignalSavedGcsps.empty())
    return;
  GcspRecord = SignalSavedGcsps.back().first;
  GcspSlot = SignalSavedGcsps.back().second;
  SignalSavedGcsps.pop_back();
  Machine.chargeInsts(2);
}

void Runtime::onFrameUnwound(vm::Vm &VM, const ir::Function &F) {
  // A longjmp is discarding the current frame: drop its shadow entry (if
  // the function was instrumented) and restore the gCSP it saved, exactly
  // what the normal exception mechanism does for instrumented code (§4.2).
  while (!Shadow.empty() && Shadow.back().FrameDepth >= VM.frameDepth()) {
    GcspRecord = Shadow.back().SavedGcspRecord;
    GcspSlot = Shadow.back().SavedGcspSlot;
    Shadow.pop_back();
  }
}
