//===- prof/Runtime.cpp - The profiling runtime ------------------------------===//

#include "prof/Runtime.h"

#include "support/Error.h"

#include <cassert>

using namespace pp;
using namespace pp::prof;

Runtime::Runtime(const Instrumented &Instr, hw::Machine &Machine)
    : Instr(Instr), Machine(Machine) {
  if (!modeUsesCct(Instr.Config.M))
    return;
  // Build the procedure descriptor table the CCT needs: slot counts and
  // kinds per function, plus path-table sizes in Context+Flow mode.
  std::vector<cct::ProcDesc> Procs;
  Procs.reserve(Instr.Functions.size());
  for (const FunctionInstrInfo &Info : Instr.Functions) {
    cct::ProcDesc Desc;
    Desc.Name = Info.F ? Info.F->name() : "<null>";
    Desc.NumSites = Info.NumSites;
    Desc.SiteIsIndirect = Info.SiteIsIndirect;
    if (modeUsesPerRecordPaths(Instr.Config.M) && Info.HasPathProfile)
      Desc.NumPaths = Info.NumPaths;
    Procs.push_back(std::move(Desc));
  }
  // Metrics: [0] invocations, [1] PIC0 sum, [2] PIC1 sum. Path cells carry
  // metric accumulators only in the full flow+context+HW combination.
  Tree = std::make_unique<cct::CallingContextTree>(
      std::move(Procs), /*NumMetrics=*/3, /*Charger=*/this,
      /*PathCellBytes=*/
      Instr.Config.M == Mode::ContextFlowHw ? 24u : 8u,
      /*HashThreshold=*/Instr.Config.Plan.ArrayThreshold);
  GcspRecord = Tree->root();
  GcspSlot = 0;
}

Runtime::~Runtime() = default;

const std::unordered_map<uint64_t, HashPathCell> &
Runtime::hashTable(unsigned FuncId) const {
  static const std::unordered_map<uint64_t, HashPathCell> Empty;
  auto It = HashTables.find(FuncId);
  return It == HashTables.end() ? Empty : It->second;
}

void Runtime::execOp(vm::Vm &VM, const ir::Inst &I) {
  switch (I.Op) {
  case ir::Opcode::CctEnter:
    doCctEnter(VM);
    return;
  case ir::Opcode::CctCall:
    // The caller points the gCSP at this site's slot in its record: one
    // add off the local call record pointer (§4.2 "Procedure call").
    GcspRecord = currentRecord();
    GcspSlot = static_cast<unsigned>(I.Imm);
    Machine.chargeInsts(1);
    return;
  case ir::Opcode::CctExit:
    doCctExit(VM);
    return;
  case ir::Opcode::CctHwProbe:
    doHwProbe(VM, static_cast<int>(I.Imm));
    return;
  case ir::Opcode::CctPathCommit:
    doCctPathCommit(VM, I);
    return;
  case ir::Opcode::PathHashCommit:
    doPathHashCommit(VM, I);
    return;
  default:
    unreachable("not a profiling runtime op");
  }
}

vm::ProfRuntime::HookFn Runtime::bindOp(const ir::Inst &I) {
  // One captureless trampoline per opcode; the bodies mirror execOp's cases
  // exactly so both engines charge the machine identically.
  switch (I.Op) {
  case ir::Opcode::CctEnter:
    return [](vm::ProfRuntime &RT, vm::Vm &VM, const ir::Inst &) {
      static_cast<Runtime &>(RT).doCctEnter(VM);
    };
  case ir::Opcode::CctCall:
    return [](vm::ProfRuntime &RT, vm::Vm &, const ir::Inst &I) {
      Runtime &Self = static_cast<Runtime &>(RT);
      Self.GcspRecord = Self.currentRecord();
      Self.GcspSlot = static_cast<unsigned>(I.Imm);
      Self.Machine.chargeInsts(1);
    };
  case ir::Opcode::CctExit:
    return [](vm::ProfRuntime &RT, vm::Vm &VM, const ir::Inst &) {
      static_cast<Runtime &>(RT).doCctExit(VM);
    };
  case ir::Opcode::CctHwProbe:
    return [](vm::ProfRuntime &RT, vm::Vm &VM, const ir::Inst &I) {
      static_cast<Runtime &>(RT).doHwProbe(VM, static_cast<int>(I.Imm));
    };
  case ir::Opcode::CctPathCommit:
    return [](vm::ProfRuntime &RT, vm::Vm &VM, const ir::Inst &I) {
      static_cast<Runtime &>(RT).doCctPathCommit(VM, I);
    };
  case ir::Opcode::PathHashCommit:
    return [](vm::ProfRuntime &RT, vm::Vm &VM, const ir::Inst &I) {
      static_cast<Runtime &>(RT).doPathHashCommit(VM, I);
    };
  default:
    unreachable("not a profiling runtime op");
  }
}

void Runtime::doCctEnter(vm::Vm &VM) {
  assert(Tree && "cct op without a context mode");
  const ir::Function *F = VM.currentFunction();
  assert(F && "cct.enter outside a function");

  // Save the caller's gCSP to the (simulated) stack so calls through
  // uninstrumented procedures still attribute correctly.
  Machine.touchData(layout::ProfStackBase + 16 * Shadow.size(), 8,
                    /*IsWrite=*/true);
  Machine.chargeInsts(2);

  cct::CallRecord *R = Tree->enter(GcspRecord, GcspSlot, F->id());

  // Invocation count lives in the record's first metric slot.
  cct::CallingContextTree::bumpMetric(R, 0, 1);
  Machine.touchData(R->addr() + 16, 8, /*IsWrite=*/false);
  Machine.touchData(R->addr() + 16, 8, /*IsWrite=*/true);
  Machine.chargeInsts(3);

  Shadow.push_back(ShadowEntry{VM.frameDepth(), R, GcspRecord, GcspSlot, 0});
}

void Runtime::doCctExit(vm::Vm &VM) {
  assert(Tree && !Shadow.empty() && "cct.exit without matching enter");
  const ShadowEntry &Entry = Shadow.back();
  GcspRecord = Entry.SavedGcspRecord;
  GcspSlot = Entry.SavedGcspSlot;
  Shadow.pop_back();
  // Reload the saved gCSP from the stack.
  Machine.touchData(layout::ProfStackBase + 16 * Shadow.size(), 8,
                    /*IsWrite=*/false);
  Machine.chargeInsts(2);
}

void Runtime::doHwProbe(vm::Vm &VM, int Kind) {
  assert(Tree && !Shadow.empty() && "hw probe without an active record");
  ShadowEntry &Entry = Shadow.back();
  if (Kind == 0) {
    // Entry probe: snapshot the free-running PICs.
    Entry.HwStart = Machine.counters().readPics();
    Machine.chargeInsts(2);
    return;
  }
  // Loop back edge (1) or exit (2): accumulate the 32-bit lane deltas into
  // the record and restart the interval (§4.3: reading along back edges
  // bounds the interval, avoiding wrap and longjmp loss).
  uint64_t Cur = Machine.counters().readPics();
  uint64_t Start = Entry.HwStart;
  uint64_t Delta0 = static_cast<uint32_t>(Cur) - static_cast<uint32_t>(Start);
  Delta0 &= 0xffffffffu;
  uint64_t Delta1 = (Cur >> 32) - (Start >> 32);
  Delta1 &= 0xffffffffu;
  cct::CallRecord *R = Entry.Record;
  cct::CallingContextTree::bumpMetric(R, 1, Delta0);
  cct::CallingContextTree::bumpMetric(R, 2, Delta1);
  Entry.HwStart = Cur;
  for (unsigned Metric = 1; Metric <= 2; ++Metric) {
    Machine.touchData(R->addr() + 16 + 8 * Metric, 8, /*IsWrite=*/false);
    Machine.touchData(R->addr() + 16 + 8 * Metric, 8, /*IsWrite=*/true);
  }
  Machine.chargeInsts(8);
}

void Runtime::doCctPathCommit(vm::Vm &VM, const ir::Inst &I) {
  assert(Tree && !Shadow.empty() && "path commit without an active record");
  uint64_t PathSum = VM.reg(I.A);
  if (Instr.Config.M == Mode::ContextFlowHw) {
    // The counters were zeroed at the path start, so the current PIC
    // values are the path's metric deltas.
    uint64_t Cur = Machine.counters().readPics();
    Machine.chargeInsts(3); // rd + lane extraction
    Tree->commitPath(Shadow.back().Record, PathSum, /*WithMetrics=*/true,
                     static_cast<uint32_t>(Cur), Cur >> 32);
    return;
  }
  Tree->commitPath(Shadow.back().Record, PathSum, /*WithMetrics=*/false, 0,
                   0);
}

void Runtime::doPathHashCommit(vm::Vm &VM, const ir::Inst &I) {
  unsigned FuncId = static_cast<unsigned>(I.Imm);
  assert(FuncId < Instr.Functions.size());
  const FunctionInstrInfo &Info = Instr.Functions[FuncId];
  uint64_t Key = VM.reg(I.A);
  if (Info.KIters >= 2) {
    // Multi-iteration windows: the emitted commit is unchanged (Key is
    // the legacy segment sum), but the runtime stitches segments into
    // k-iteration windows and counts those instead.
    doKSegmentCommit(VM, Info, FuncId, Key);
    return;
  }
  HashPathCell &Cell = HashTables[FuncId][Key];
  ++Cell.Freq;

  // Charge one probe of the open-addressed table plus the counter update.
  uint64_t Cells = Instr.Config.Plan.ArrayThreshold;
  uint64_t Mixed = Key * 0x9e3779b97f4a7c15ULL;
  uint64_t CellAddr = Info.TableAddr + (Mixed % Cells) * 32;
  Machine.touchData(CellAddr, 8, /*IsWrite=*/false); // key compare
  Machine.touchData(CellAddr + 8, 8, /*IsWrite=*/false);
  Machine.touchData(CellAddr + 8, 8, /*IsWrite=*/true);
  Machine.chargeInsts(8);

  if (Instr.Config.M == Mode::FlowHw) {
    uint64_t Cur = Machine.counters().readPics();
    Cell.Metric0 += static_cast<uint32_t>(Cur);
    Cell.Metric1 += Cur >> 32;
    Machine.touchData(CellAddr + 16, 8, /*IsWrite=*/true);
    Machine.touchData(CellAddr + 24, 8, /*IsWrite=*/true);
    Machine.chargeInsts(6);
  }
}

const Runtime::KSegment &Runtime::decodeSegment(const FunctionInstrInfo &Info,
                                                unsigned FuncId,
                                                uint64_t Key) {
  std::unordered_map<uint64_t, KSegment> &Table = KSegCache[FuncId];
  auto It = Table.find(Key);
  if (It != Table.end())
    return It->second;

  assert(Info.KPaths && "k-segment commit without a k-numbering");
  const bl::KPathBundle &Bundle = *Info.KPaths;
  bl::RegeneratedPath Seg;
  bl::NumberingQueryStatus S = Bundle.PN.tryRegenerate(Key, Seg);
  if (S != bl::NumberingQueryStatus::Ok)
    reportFatalError(std::string("k-segment decode refused: ") +
                     bl::numberingQueryStatusName(S));
  KSegment Decoded;
  Decoded.EndsWithBackedge = Seg.EndsWithBackedge;
  Decoded.LevelVals.reserve(Info.KIters);
  for (unsigned Level = 0; Level != Info.KIters; ++Level)
    Decoded.LevelVals.push_back(Bundle.KPN.segmentValue(Seg, Level));
  return Table.emplace(Key, std::move(Decoded)).first->second;
}

void Runtime::commitKWindow(const FunctionInstrInfo &Info, const KWindow &W) {
  HashPathCell &Cell = HashTables[W.FuncId][W.Acc];
  ++Cell.Freq;

  // Charge one probe of the open-addressed table plus the counter update
  // — the same traffic the per-path commit pays in single-iteration runs,
  // but only once per window.
  uint64_t Cells = Instr.Config.Plan.ArrayThreshold;
  uint64_t Mixed = W.Acc * 0x9e3779b97f4a7c15ULL;
  uint64_t CellAddr = Info.TableAddr + (Mixed % Cells) * 32;
  Machine.touchData(CellAddr, 8, /*IsWrite=*/false); // key compare
  Machine.touchData(CellAddr + 8, 8, /*IsWrite=*/false);
  Machine.touchData(CellAddr + 8, 8, /*IsWrite=*/true);
  Machine.chargeInsts(8);

  if (Instr.Config.M == Mode::FlowHw) {
    Cell.Metric0 += W.M0;
    Cell.Metric1 += W.M1;
    Machine.touchData(CellAddr + 16, 8, /*IsWrite=*/true);
    Machine.touchData(CellAddr + 24, 8, /*IsWrite=*/true);
    Machine.chargeInsts(6);
  }
}

void Runtime::doKSegmentCommit(vm::Vm &VM, const FunctionInstrInfo &Info,
                               unsigned FuncId, uint64_t Key) {
  const KSegment &Seg = decodeSegment(Info, FuncId, Key);

  // The activation's window is the innermost one; a first commit in this
  // activation pushes a fresh window (longjmp discards are handled by
  // onFrameUnwound, so anything deeper is already gone).
  size_t Depth = VM.frameDepth();
  assert((KStack.empty() || KStack.back().FrameDepth <= Depth) &&
         "stale window from an unwound frame");
  if (KStack.empty() || KStack.back().FrameDepth != Depth)
    KStack.push_back(KWindow{Depth, FuncId, 0, 0, 0, 0});
  KWindow &W = KStack.back();
  assert(W.FuncId == FuncId && "window belongs to another function");
  assert(W.Level < Seg.LevelVals.size());

  // Register-accumulate the segment's level value: the in-flight window
  // sum lives in a register pair, so a mid-window segment costs a table
  // lookup's worth less than a single-iteration commit.
  W.Acc += Seg.LevelVals[W.Level];
  Machine.chargeInsts(3);
  if (Instr.Config.M == Mode::FlowHw) {
    // The PICs are zeroed at entry and at every back-edge restart, so the
    // current values are this segment's metric deltas; fold the 32-bit
    // lanes into the window accumulators.
    uint64_t Cur = Machine.counters().readPics();
    W.M0 += static_cast<uint32_t>(Cur);
    W.M1 += Cur >> 32;
    Machine.chargeInsts(4);
  }

  if (Seg.EndsWithBackedge && W.Level + 1 < Info.KIters) {
    ++W.Level;
    return;
  }
  commitKWindow(Info, W);
  if (Seg.EndsWithBackedge) {
    // Window closed at the top level; the activation continues with a
    // fresh window whose first segment starts just after this back edge
    // (its decode carries the EntryPseudo start value, so nothing is
    // added here).
    W.Level = 0;
    W.Acc = 0;
    W.M0 = 0;
    W.M1 = 0;
    return;
  }
  // The segment returned: the activation is done.
  KStack.pop_back();
}

void Runtime::onSignalDeliver(vm::Vm &VM) {
  if (!Tree)
    return;
  // The handler is a fresh entry point: point the gCSP at the root's
  // signal slot so its cct.enter hangs the activation off the root
  // instead of whatever procedure the signal interrupted.
  SignalSavedGcsps.push_back({GcspRecord, GcspSlot});
  GcspRecord = Tree->root();
  GcspSlot = cct::SignalSlot;
  Machine.chargeInsts(2);
}

void Runtime::onSignalReturn(vm::Vm &VM) {
  if (!Tree || SignalSavedGcsps.empty())
    return;
  GcspRecord = SignalSavedGcsps.back().first;
  GcspSlot = SignalSavedGcsps.back().second;
  SignalSavedGcsps.pop_back();
  Machine.chargeInsts(2);
}

void Runtime::onFrameUnwound(vm::Vm &VM, const ir::Function &F) {
  // A longjmp is discarding the current frame: drop its shadow entry (if
  // the function was instrumented) and restore the gCSP it saved, exactly
  // what the normal exception mechanism does for instrumented code (§4.2).
  while (!Shadow.empty() && Shadow.back().FrameDepth >= VM.frameDepth()) {
    GcspRecord = Shadow.back().SavedGcspRecord;
    GcspSlot = Shadow.back().SavedGcspSlot;
    Shadow.pop_back();
  }
  // Partial k-iteration windows of unwound activations are discarded, the
  // same way a longjmp loses the in-flight path register r.
  while (!KStack.empty() && KStack.back().FrameDepth >= VM.frameDepth())
    KStack.pop_back();
}
