//===- cfg/Cfg.cpp - Control flow graph snapshot ---------------------------===//

#include "cfg/Cfg.h"

#include "ir/Function.h"

#include <cassert>

using namespace pp;
using namespace pp::cfg;

Cfg::Cfg(const ir::Function &F) : F(F) {
  NumNodes = static_cast<unsigned>(F.numBlocks()) + 1; // +1 for virtual EXIT
  build();
  computeReachability();
  computeBackedgesAndOrder();
}

ir::BasicBlock *Cfg::block(unsigned Node) const {
  if (Node == exitNode())
    return nullptr;
  return F.block(Node);
}

void Cfg::build() {
  Out.resize(NumNodes);
  In.resize(NumNodes);
  for (unsigned Node = 0; Node + 1 < NumNodes; ++Node) {
    const ir::BasicBlock *BB = F.block(Node);
    assert(BB->id() == Node && "block ids must be dense and in order");
    unsigned NumSuccs = BB->numSuccessors();
    if (NumSuccs == 0) {
      // Return / longjmp: synthetic edge to the virtual EXIT.
      unsigned Id = static_cast<unsigned>(Edges.size());
      Edges.push_back(Edge{Id, Node, exitNode(), -1});
      Out[Node].push_back(Id);
      In[exitNode()].push_back(Id);
      continue;
    }
    for (unsigned SuccIndex = 0; SuccIndex != NumSuccs; ++SuccIndex) {
      unsigned To = BB->successor(SuccIndex)->id();
      unsigned Id = static_cast<unsigned>(Edges.size());
      Edges.push_back(Edge{Id, Node, To, static_cast<int>(SuccIndex)});
      Out[Node].push_back(Id);
      In[To].push_back(Id);
    }
  }
}

void Cfg::computeReachability() {
  Reachable.assign(NumNodes, false);
  std::vector<unsigned> Stack;
  Stack.push_back(entryNode());
  Reachable[entryNode()] = true;
  while (!Stack.empty()) {
    unsigned Node = Stack.back();
    Stack.pop_back();
    for (unsigned EdgeId : Out[Node]) {
      unsigned To = Edges[EdgeId].To;
      if (!Reachable[To]) {
        Reachable[To] = true;
        Stack.push_back(To);
      }
    }
  }
}

void Cfg::computeBackedgesAndOrder() {
  IsBackedge.assign(Edges.size(), false);
  RevTopo.clear();
  RevTopo.reserve(NumNodes);

  // Iterative DFS with an explicit edge cursor. An edge whose target is on
  // the DFS stack is a back edge; finished nodes are appended to RevTopo,
  // which therefore holds a reverse topological order of the graph with
  // back edges removed (finish order = reverse topological order of the
  // remaining DAG).
  enum Colour : uint8_t { White, Grey, Black };
  std::vector<Colour> Colours(NumNodes, White);
  struct StackFrame {
    unsigned Node;
    size_t NextOut;
  };
  std::vector<StackFrame> Stack;
  Stack.push_back({entryNode(), 0});
  Colours[entryNode()] = Grey;

  while (!Stack.empty()) {
    StackFrame &Top = Stack.back();
    if (Top.NextOut == Out[Top.Node].size()) {
      Colours[Top.Node] = Black;
      RevTopo.push_back(Top.Node);
      Stack.pop_back();
      continue;
    }
    unsigned EdgeId = Out[Top.Node][Top.NextOut++];
    unsigned To = Edges[EdgeId].To;
    if (Colours[To] == Grey) {
      IsBackedge[EdgeId] = true;
      ++NumBackedges;
    } else if (Colours[To] == White) {
      Colours[To] = Grey;
      Stack.push_back({To, 0});
    }
  }
}
