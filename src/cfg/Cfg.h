//===- cfg/Cfg.h - Control flow graph snapshot -----------------*- C++ -*-===//
///
/// \file
/// A control-flow-graph snapshot of one function, with the normalisation
/// path profiling requires (§2 of the paper): a unique ENTRY (the function's
/// entry block) and a unique virtual EXIT that every return/longjmp block
/// feeds. Edges get dense ids so analyses can attach per-edge data; each
/// edge remembers the (block, successor-index) pair that identifies it in
/// the IR so the instrumenter can find it again.
///
//===----------------------------------------------------------------------===//

#ifndef PP_CFG_CFG_H
#define PP_CFG_CFG_H

#include <cstdint>
#include <vector>

namespace pp {
namespace ir {
class BasicBlock;
class Function;
} // namespace ir

namespace cfg {

/// One directed edge of the snapshot.
struct Edge {
  /// Dense edge id, index into Cfg's edge array.
  unsigned Id;
  /// Source and destination node indices.
  unsigned From;
  unsigned To;
  /// Successor index in the source block's terminator, or -1 for the
  /// synthetic edge from a return/longjmp block to the virtual EXIT.
  int SuccIndex;
};

/// Immutable CFG snapshot. Node i (< numBlocks) corresponds to block(i) of
/// the function; node exitNode() is the virtual EXIT. The entry node is 0.
class Cfg {
public:
  explicit Cfg(const ir::Function &F);

  const ir::Function &function() const { return F; }

  unsigned numNodes() const { return NumNodes; }
  unsigned entryNode() const { return 0; }
  unsigned exitNode() const { return NumNodes - 1; }

  /// Block for node \p Node; null for the virtual EXIT node.
  ir::BasicBlock *block(unsigned Node) const;

  unsigned numEdges() const { return static_cast<unsigned>(Edges.size()); }
  const Edge &edge(unsigned Id) const { return Edges[Id]; }
  const std::vector<Edge> &edges() const { return Edges; }

  /// Out-edge ids of \p Node, in successor order.
  const std::vector<unsigned> &outEdges(unsigned Node) const {
    return Out[Node];
  }
  /// In-edge ids of \p Node.
  const std::vector<unsigned> &inEdges(unsigned Node) const {
    return In[Node];
  }

  /// True for nodes reachable from the entry node.
  bool isReachable(unsigned Node) const { return Reachable[Node]; }

  /// Edge ids that are DFS back edges (targets on the DFS stack). Removing
  /// them always leaves the graph acyclic, for reducible and irreducible
  /// CFGs alike.
  const std::vector<bool> &backedges() const { return IsBackedge; }
  bool isBackedge(unsigned EdgeId) const { return IsBackedge[EdgeId]; }
  unsigned numBackedges() const { return NumBackedges; }

  /// Reverse topological order of the reachable nodes of the graph with
  /// back edges removed (EXIT first, ENTRY last).
  const std::vector<unsigned> &reverseTopoOrder() const { return RevTopo; }

private:
  void build();
  void computeReachability();
  void computeBackedgesAndOrder();

  const ir::Function &F;
  unsigned NumNodes = 0;
  std::vector<Edge> Edges;
  std::vector<std::vector<unsigned>> Out;
  std::vector<std::vector<unsigned>> In;
  std::vector<bool> Reachable;
  std::vector<bool> IsBackedge;
  unsigned NumBackedges = 0;
  std::vector<unsigned> RevTopo;
};

} // namespace cfg
} // namespace pp

#endif // PP_CFG_CFG_H
