//===- obs/ObsReport.h - Reading and diffing obs run reports ---*- C++ -*-===//
///
/// \file
/// The consumer side of the observability JSON report (obs/Obs.h):
/// parsing a report file back into a structure, pretty-printing it as
/// tables, and diffing two reports counter by counter and span by span —
/// the workflow behind `pp-report obs a.json [b.json]`. Because reports
/// are byte-stable for identical RunPlans, a non-empty diff is a real
/// behaviour change (different work executed, different cache hit
/// pattern), never schedule noise.
///
//===----------------------------------------------------------------------===//

#ifndef PP_OBS_OBSREPORT_H
#define PP_OBS_OBSREPORT_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace pp {
namespace obs {

/// A parsed observability report.
struct ObsReport {
  uint64_t Version = 0;
  uint64_t DroppedRecords = 0;
  /// Counters in file (= enum) order.
  std::vector<std::pair<std::string, uint64_t>> Counters;
  struct Span {
    std::string Cat;
    std::string Name;
    std::string Label;
    uint64_t Count = 0;
    uint64_t Items = 0;
    uint64_t Work = 0;
    uint64_t Vt0 = 0;
    uint64_t Vt1 = 0;
  };
  std::vector<Span> Spans;
};

/// Parses \p Json (the bytes of a PP_OBS_OUT file). False + \p Error on
/// malformed input.
bool parseObsReport(const std::string &Json, ObsReport &Out,
                    std::string &Error);

/// Reads and parses the report file at \p Path.
bool readObsReportFile(const std::string &Path, ObsReport &Out,
                       std::string &Error);

/// Pretty-prints one report: a counter table and a span table sorted by
/// descending work.
std::string renderObsReport(const ObsReport &R);

/// Diffs two reports (B - A): counter deltas and per-span work/count
/// deltas, omitting rows that did not change. Reports "no differences"
/// when the reports agree.
std::string diffObsReports(const ObsReport &A, const ObsReport &B);

/// Every "*.json" file directly inside \p Dir, sorted by name — the
/// repository layout `pp --obs-out DIR/run.json` accumulates. Empty when
/// the directory is missing or holds no reports.
std::vector<std::string> listObsReportFiles(const std::string &Dir);

/// Folds \p Reports into one fleet-wide aggregate: counters sum by name
/// (first-seen order, so the append-only enum order survives), spans sum
/// count/items/work by (cat, name, label) with the virtual-time interval
/// widened to cover every contributor, and dropped records sum. False +
/// \p Error when \p Reports is empty.
bool aggregateObsReports(const std::vector<ObsReport> &Reports,
                         ObsReport &Out, std::string &Error);

} // namespace obs
} // namespace pp

#endif // PP_OBS_OBSREPORT_H
