//===- obs/Obs.cpp - Self-observability for the profiling pipeline ------------===//

#include "obs/Obs.h"

#include "support/Env.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>
#include <vector>

using namespace pp;
using namespace pp::obs;

namespace {

const char *const CounterNames[] = {
    "cache.memory_hits",      "cache.disk_hits",
    "cache.misses",           "cache.stores",
    "cache.corrupt_evictions", "cache.write_failures",
    "scheduler.submitted",    "scheduler.folded",
    "scheduler.executed",     "scheduler.failed",
    "vm.insts_reference",     "vm.insts_threaded",
    "profdb.bytes_encoded",   "profdb.bytes_decoded",
    "profdb.merges",          "fault.reads_corrupted",
    "fault.writes_failed",    "fault.runs_failed",
    "acq.traps_delivered",    "acq.samples_recorded",
    "collectd.accepted",      "collectd.rejected",
    "collectd.compactions",   "collectd.queries",
    "collectd.rate_limited",  "collectd.windows_expired",
    "collectd.net.conns",     "collectd.net.frames_in",
    "collectd.net.frames_out", "collectd.net.bytes_in",
    "collectd.net.bytes_out", "collectd.net.protocol_errors",
    "collectd.net.idle_closed", "opt.functions_reordered",
    "opt.blocks_duplicated",  "opt.sites_inlined",
    "opt.profile_refusals",
};
static_assert(sizeof(CounterNames) / sizeof(CounterNames[0]) ==
                  static_cast<size_t>(Counter::NumCounters),
              "counter name table out of sync with the enum");

uint64_t hostNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// One ring-buffer entry: a closed span or a gauge sample.
struct Record {
  const char *Cat = "";
  const char *Name = "";
  char Label[64] = {0};
  uint64_t Work = 0;
  uint64_t Items = 0;
  uint64_t T0Ns = 0;
  uint64_t T1Ns = 0;
  int64_t GaugeValue = 0;
  bool IsGauge = false;
};

/// The env-configured ring capacity, read once at first buffer
/// allocation (every buffer in a process has the same capacity).
size_t cachedRingCapacity() {
  static const size_t Cap = configuredRingCapacity();
  return Cap;
}

/// A fixed-capacity single-writer ring. The owning thread appends with a
/// release store of Count; any reader that loads Count with acquire sees
/// every record below it fully written. Appends never lock and never
/// block: a full ring counts the drop and moves on.
struct ThreadBuffer {
  const size_t Capacity = cachedRingCapacity();
  std::vector<Record> Ring{Capacity};
  std::atomic<size_t> Count{0};
  std::atomic<uint64_t> Dropped{0};
  unsigned Lane = 0;

  void append(const Record &R) {
    size_t Index = Count.load(std::memory_order_relaxed);
    if (Index == Capacity) {
      Dropped.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    Ring[Index] = R;
    Count.store(Index + 1, std::memory_order_release);
  }
};

class Collector {
public:
  static Collector &instance() {
    static Collector C;
    return C;
  }

  Collector() : StartNs(hostNowNs()) {
    // Recording defaults on; only a strict PP_OBS=0 disables it. A value
    // like PP_OBS=true warns and keeps the default instead of silently
    // reading as anything.
    Enabled.store(envBoolOr("PP_OBS", "pp-obs", true),
                  std::memory_order_relaxed);
    if (const char *Out = std::getenv("PP_OBS_OUT"))
      ReportPath = Out;
    if (const char *Trace = std::getenv("PP_OBS_TRACE"))
      TracePath = Trace;
  }

  ~Collector() {
    // Process exit: the scheduler (a function-local static constructed
    // after this collector, because its construction records counters)
    // has already been destroyed and its workers joined, so the rings
    // are quiescent.
    std::string Report, Trace;
    {
      std::lock_guard<std::mutex> Lock(PathMu);
      Report = ReportPath;
      Trace = TracePath;
    }
    if (!Report.empty())
      writeFile(Report, renderJson(), "report");
    if (!Trace.empty())
      writeFile(Trace, renderTrace(), "trace");
  }

  ThreadBuffer &threadBuffer() {
    thread_local ThreadBuffer *Buffer = nullptr;
    if (!Buffer) {
      auto Owned = std::make_unique<ThreadBuffer>();
      Buffer = Owned.get();
      std::lock_guard<std::mutex> Lock(RegistryMu);
      Buffer->Lane = static_cast<unsigned>(Buffers.size());
      Buffers.push_back(std::move(Owned));
    }
    return *Buffer;
  }

  std::atomic<bool> Enabled{true};
  std::array<std::atomic<uint64_t>,
             static_cast<size_t>(Counter::NumCounters)>
      Counters{};
  uint64_t StartNs;

  void setReportPath(const std::string &Path) {
    std::lock_guard<std::mutex> Lock(PathMu);
    ReportPath = Path;
  }
  void setTracePath(const std::string &Path) {
    std::lock_guard<std::mutex> Lock(PathMu);
    TracePath = Path;
  }

  void reset() {
    for (auto &C : Counters)
      C.store(0, std::memory_order_relaxed);
    std::lock_guard<std::mutex> Lock(RegistryMu);
    for (auto &Buffer : Buffers) {
      Buffer->Count.store(0, std::memory_order_relaxed);
      Buffer->Dropped.store(0, std::memory_order_relaxed);
    }
  }

  std::string renderJson();
  std::string renderTrace();

private:
  static void writeFile(const std::string &Path, const std::string &Bytes,
                        const char *What) {
    std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
    if (!Out) {
      std::fprintf(stderr, "pp-obs: warning: cannot write %s to '%s'\n",
                   What, Path.c_str());
      return;
    }
    Out.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
  }

  std::mutex RegistryMu;
  std::vector<std::unique_ptr<ThreadBuffer>> Buffers;
  std::mutex PathMu;
  std::string ReportPath;
  std::string TracePath;
};

void jsonEscapeInto(std::string &Out, const char *Text) {
  for (const char *P = Text; *P; ++P) {
    unsigned char C = static_cast<unsigned char>(*P);
    if (C == '"' || C == '\\') {
      Out += '\\';
      Out += static_cast<char>(C);
    } else if (C < 0x20) {
      char Buf[8];
      std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
      Out += Buf;
    } else {
      Out += static_cast<char>(C);
    }
  }
}

void appendUint(std::string &Out, uint64_t Value) {
  char Buf[24];
  std::snprintf(Buf, sizeof(Buf), "%llu",
                static_cast<unsigned long long>(Value));
  Out += Buf;
}

std::string Collector::renderJson() {
  // Aggregate spans by (category, name, label). The map iteration order
  // is the sort; drops of per-thread interleaving happen here — the
  // aggregate depends only on the set of records, not on which thread
  // recorded them or when.
  struct Agg {
    uint64_t Count = 0;
    uint64_t Items = 0;
    uint64_t Work = 0;
  };
  std::map<std::tuple<std::string, std::string, std::string>, Agg> Spans;
  uint64_t Dropped = 0;
  {
    std::lock_guard<std::mutex> Lock(RegistryMu);
    for (const auto &Buffer : Buffers) {
      size_t N = Buffer->Count.load(std::memory_order_acquire);
      Dropped += Buffer->Dropped.load(std::memory_order_relaxed);
      for (size_t Index = 0; Index != N; ++Index) {
        const Record &R = Buffer->Ring[Index];
        if (R.IsGauge)
          continue; // host-time samples: trace-only (nondeterministic)
        Agg &A = Spans[{R.Cat, R.Name, R.Label}];
        ++A.Count;
        A.Items += R.Items;
        A.Work += R.Work;
      }
    }
  }

  std::string Out;
  Out += "{\n  \"pp_obs_version\": 1,\n  \"dropped_records\": ";
  appendUint(Out, Dropped);
  Out += ",\n  \"counters\": {\n";
  for (size_t Index = 0;
       Index != static_cast<size_t>(Counter::NumCounters); ++Index) {
    Out += "    \"";
    Out += CounterNames[Index];
    Out += "\": ";
    appendUint(Out, Counters[Index].load(std::memory_order_relaxed));
    Out += Index + 1 == static_cast<size_t>(Counter::NumCounters) ? "\n"
                                                                  : ",\n";
  }
  Out += "  },\n  \"spans\": [\n";
  // Virtual time: aggregated spans laid end to end in sorted order, each
  // occupying exactly its work measure. No host clock anywhere.
  uint64_t Cursor = 0;
  size_t Emitted = 0;
  for (const auto &[Key, A] : Spans) {
    Out += "    {\"cat\": \"";
    jsonEscapeInto(Out, std::get<0>(Key).c_str());
    Out += "\", \"name\": \"";
    jsonEscapeInto(Out, std::get<1>(Key).c_str());
    Out += "\", \"label\": \"";
    jsonEscapeInto(Out, std::get<2>(Key).c_str());
    Out += "\", \"count\": ";
    appendUint(Out, A.Count);
    Out += ", \"items\": ";
    appendUint(Out, A.Items);
    Out += ", \"work\": ";
    appendUint(Out, A.Work);
    Out += ", \"vt0\": ";
    appendUint(Out, Cursor);
    Out += ", \"vt1\": ";
    appendUint(Out, Cursor + A.Work);
    Cursor += A.Work;
    Out += ++Emitted == Spans.size() ? "}\n" : "},\n";
  }
  Out += "  ]\n}\n";
  return Out;
}

std::string Collector::renderTrace() {
  std::string Out = "{\"traceEvents\": [\n";
  bool First = true;
  std::lock_guard<std::mutex> Lock(RegistryMu);
  for (const auto &Buffer : Buffers) {
    size_t N = Buffer->Count.load(std::memory_order_acquire);
    for (size_t Index = 0; Index != N; ++Index) {
      const Record &R = Buffer->Ring[Index];
      if (!First)
        Out += ",\n";
      First = false;
      char Head[160];
      if (R.IsGauge) {
        std::snprintf(Head, sizeof(Head),
                      "{\"ph\": \"C\", \"pid\": 1, \"tid\": %u, "
                      "\"ts\": %.3f, \"name\": \"",
                      Buffer->Lane,
                      double(R.T0Ns - StartNs) / 1e3);
        Out += Head;
        jsonEscapeInto(Out, R.Name);
        Out += "\", \"args\": {\"value\": ";
        char Val[32];
        std::snprintf(Val, sizeof(Val), "%lld",
                      static_cast<long long>(R.GaugeValue));
        Out += Val;
        Out += "}}";
        continue;
      }
      std::snprintf(Head, sizeof(Head),
                    "{\"ph\": \"X\", \"pid\": 1, \"tid\": %u, "
                    "\"ts\": %.3f, \"dur\": %.3f, \"cat\": \"",
                    Buffer->Lane, double(R.T0Ns - StartNs) / 1e3,
                    double(R.T1Ns - R.T0Ns) / 1e3);
      Out += Head;
      jsonEscapeInto(Out, R.Cat);
      Out += "\", \"name\": \"";
      jsonEscapeInto(Out, R.Name);
      Out += "\", \"args\": {\"label\": \"";
      jsonEscapeInto(Out, R.Label);
      Out += "\", \"work\": ";
      appendUint(Out, R.Work);
      Out += ", \"items\": ";
      appendUint(Out, R.Items);
      Out += "}}";
    }
  }
  Out += "\n]}\n";
  return Out;
}

} // namespace

const char *obs::counterName(Counter C) {
  return CounterNames[static_cast<size_t>(C)];
}

size_t obs::configuredRingCapacity() {
  uint64_t Cap =
      envUint64Or("PP_OBS_RING_CAPACITY", "pp-obs", uint64_t(1) << 14);
  // Below 64 records a ring cannot hold even one run's spans; above 2^20
  // the report pass would allocate gigabytes across a wide worker pool.
  if (Cap < 64)
    Cap = 64;
  if (Cap > (uint64_t(1) << 20))
    Cap = uint64_t(1) << 20;
  return static_cast<size_t>(Cap);
}

bool obs::enabled() {
  return Collector::instance().Enabled.load(std::memory_order_relaxed);
}

void obs::setEnabled(bool On) {
  Collector::instance().Enabled.store(On, std::memory_order_relaxed);
}

void obs::add(Counter C, uint64_t Delta) {
  Collector &Coll = Collector::instance();
  if (!Coll.Enabled.load(std::memory_order_relaxed))
    return;
  Coll.Counters[static_cast<size_t>(C)].fetch_add(
      Delta, std::memory_order_relaxed);
}

uint64_t obs::counterValue(Counter C) {
  return Collector::instance().Counters[static_cast<size_t>(C)].load(
      std::memory_order_relaxed);
}

void obs::gauge(const char *Name, int64_t Value) {
  Collector &Coll = Collector::instance();
  if (!Coll.Enabled.load(std::memory_order_relaxed))
    return;
  Record R;
  R.Cat = "gauge";
  R.Name = Name;
  R.IsGauge = true;
  R.GaugeValue = Value;
  R.T0Ns = R.T1Ns = hostNowNs();
  Coll.threadBuffer().append(R);
}

SpanScope::SpanScope(const char *Cat, const char *Name,
                     const std::string &Label, uint64_t Work, uint64_t Items)
    : Cat(Cat), Name(Name), Work(Work), Items(Items), T0Ns(0),
      Armed(obs::enabled()) {
  this->Label[0] = '\0';
  if (!Armed)
    return;
  std::strncpy(this->Label, Label.c_str(), sizeof(this->Label) - 1);
  this->Label[sizeof(this->Label) - 1] = '\0';
  T0Ns = hostNowNs();
}

SpanScope::~SpanScope() {
  if (!Armed)
    return;
  Record R;
  R.Cat = Cat;
  R.Name = Name;
  std::memcpy(R.Label, Label, sizeof(R.Label));
  R.Work = Work;
  R.Items = Items;
  R.T0Ns = T0Ns;
  R.T1Ns = hostNowNs();
  Collector::instance().threadBuffer().append(R);
}

std::string obs::renderJsonReport() {
  return Collector::instance().renderJson();
}

std::string obs::renderChromeTrace() {
  return Collector::instance().renderTrace();
}

void obs::setReportPath(const std::string &Path) {
  Collector::instance().setReportPath(Path);
}

void obs::setTracePath(const std::string &Path) {
  Collector::instance().setTracePath(Path);
}

void obs::resetForTesting() { Collector::instance().reset(); }
