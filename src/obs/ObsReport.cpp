//===- obs/ObsReport.cpp - Reading and diffing obs run reports ----------------===//

#include "obs/ObsReport.h"

#include "support/Format.h"
#include "support/TableWriter.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <map>
#include <sstream>
#include <tuple>

#include <dirent.h>

using namespace pp;
using namespace pp::obs;

namespace {

/// A minimal recursive-descent JSON reader, sufficient for (a superset
/// of) what obs::renderJsonReport emits: objects, arrays, strings,
/// unsigned integers, and the literals true/false/null. No floats.
/// \uXXXX escapes (including surrogate pairs) decode to UTF-8, so
/// reports written by other emitters round-trip without mangling.
class JsonReader {
public:
  JsonReader(const std::string &Text, std::string &Error)
      : Text(Text), Error(Error) {}

  bool atEnd() {
    skipSpace();
    return Pos == Text.size();
  }

  bool enterObject() { return expect('{'); }
  bool leaveObject() { return expect('}'); }
  bool enterArray() { return expect('['); }

  /// True when the next non-space char is \p C (consumed when matched).
  bool accept(char C) {
    skipSpace();
    if (Pos != Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  bool expect(char C) {
    if (accept(C))
      return true;
    fail(formatString("expected '%c'", C));
    return false;
  }

  /// Four hex digits of a \uXXXX escape (the backslash and 'u' already
  /// consumed). False + fail() on truncation or a non-hex digit.
  bool readHex4(unsigned &Value) {
    if (Pos + 4 > Text.size())
      return fail("truncated \\u escape"), false;
    Value = 0;
    for (int Nibble = 0; Nibble != 4; ++Nibble) {
      char H = Text[Pos++];
      Value <<= 4;
      if (H >= '0' && H <= '9')
        Value |= static_cast<unsigned>(H - '0');
      else if (H >= 'a' && H <= 'f')
        Value |= static_cast<unsigned>(H - 'a' + 10);
      else if (H >= 'A' && H <= 'F')
        Value |= static_cast<unsigned>(H - 'A' + 10);
      else
        return fail("bad \\u escape"), false;
    }
    return true;
  }

  /// Appends \p CodePoint as UTF-8 — the encoding span labels travel in
  /// everywhere else (raw bytes through the emitter), so an escaped and a
  /// raw label of the same text parse identically.
  static void appendUtf8(std::string &Out, unsigned CodePoint) {
    if (CodePoint < 0x80) {
      Out += static_cast<char>(CodePoint);
    } else if (CodePoint < 0x800) {
      Out += static_cast<char>(0xC0 | (CodePoint >> 6));
      Out += static_cast<char>(0x80 | (CodePoint & 0x3F));
    } else if (CodePoint < 0x10000) {
      Out += static_cast<char>(0xE0 | (CodePoint >> 12));
      Out += static_cast<char>(0x80 | ((CodePoint >> 6) & 0x3F));
      Out += static_cast<char>(0x80 | (CodePoint & 0x3F));
    } else {
      Out += static_cast<char>(0xF0 | (CodePoint >> 18));
      Out += static_cast<char>(0x80 | ((CodePoint >> 12) & 0x3F));
      Out += static_cast<char>(0x80 | ((CodePoint >> 6) & 0x3F));
      Out += static_cast<char>(0x80 | (CodePoint & 0x3F));
    }
  }

  bool readString(std::string &Out) {
    skipSpace();
    if (!expect('"'))
      return false;
    Out.clear();
    while (Pos != Text.size()) {
      char C = Text[Pos++];
      if (C == '"')
        return true;
      if (C == '\\') {
        if (Pos == Text.size())
          break;
        char E = Text[Pos++];
        switch (E) {
        case '"':
        case '\\':
        case '/':
          Out += E;
          break;
        case 'n':
          Out += '\n';
          break;
        case 't':
          Out += '\t';
          break;
        case 'r':
          Out += '\r';
          break;
        case 'u': {
          unsigned Value;
          if (!readHex4(Value))
            return false;
          // Surrogate pairs encode one supplementary-plane code point
          // across two \u escapes; a lone half is not a character and is
          // rejected rather than smuggled through as garbage.
          if (Value >= 0xD800 && Value <= 0xDBFF) {
            if (Pos + 2 > Text.size() || Text[Pos] != '\\' ||
                Text[Pos + 1] != 'u')
              return fail("unpaired \\u surrogate"), false;
            Pos += 2;
            unsigned Low;
            if (!readHex4(Low))
              return false;
            if (Low < 0xDC00 || Low > 0xDFFF)
              return fail("unpaired \\u surrogate"), false;
            Value = 0x10000 + ((Value - 0xD800) << 10) + (Low - 0xDC00);
          } else if (Value >= 0xDC00 && Value <= 0xDFFF) {
            return fail("unpaired \\u surrogate"), false;
          }
          appendUtf8(Out, Value);
          break;
        }
        default:
          return fail("unknown escape"), false;
        }
        continue;
      }
      Out += C;
    }
    fail("unterminated string");
    return false;
  }

  bool readUint(uint64_t &Out) {
    skipSpace();
    size_t Start = Pos;
    while (Pos != Text.size() &&
           std::isdigit(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
    if (Pos == Start) {
      fail("expected a number");
      return false;
    }
    return parseUint64(Text.substr(Start, Pos - Start).c_str(), Out) ||
           (fail("number out of range"), false);
  }

  void fail(const std::string &Why) {
    if (Error.empty())
      Error = formatString("at byte %zu: %s", Pos, Why.c_str());
  }

private:
  void skipSpace() {
    while (Pos != Text.size() &&
           std::isspace(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
  }

  const std::string &Text;
  std::string &Error;
  size_t Pos = 0;
};

std::string spanKey(const ObsReport::Span &S) {
  return S.Cat + "/" + S.Name + (S.Label.empty() ? "" : " " + S.Label);
}

} // namespace

bool obs::parseObsReport(const std::string &Json, ObsReport &Out,
                         std::string &Error) {
  Error.clear();
  Out = ObsReport();
  JsonReader R(Json, Error);
  if (!R.enterObject())
    return false;
  bool FirstKey = true;
  while (!R.accept('}')) {
    if (!FirstKey && !R.expect(','))
      return false;
    FirstKey = false;
    std::string Key;
    if (!R.readString(Key) || !R.expect(':'))
      return false;
    if (Key == "pp_obs_version") {
      if (!R.readUint(Out.Version))
        return false;
    } else if (Key == "dropped_records") {
      if (!R.readUint(Out.DroppedRecords))
        return false;
    } else if (Key == "counters") {
      if (!R.enterObject())
        return false;
      bool First = true;
      while (!R.accept('}')) {
        if (!First && !R.expect(','))
          return false;
        First = false;
        std::string Name;
        uint64_t Value;
        if (!R.readString(Name) || !R.expect(':') || !R.readUint(Value))
          return false;
        Out.Counters.emplace_back(std::move(Name), Value);
      }
    } else if (Key == "spans") {
      if (!R.enterArray())
        return false;
      bool First = true;
      while (!R.accept(']')) {
        if (!First && !R.expect(','))
          return false;
        First = false;
        if (!R.enterObject())
          return false;
        ObsReport::Span S;
        bool FirstField = true;
        while (!R.accept('}')) {
          if (!FirstField && !R.expect(','))
            return false;
          FirstField = false;
          std::string Field;
          if (!R.readString(Field) || !R.expect(':'))
            return false;
          bool Ok = true;
          if (Field == "cat")
            Ok = R.readString(S.Cat);
          else if (Field == "name")
            Ok = R.readString(S.Name);
          else if (Field == "label")
            Ok = R.readString(S.Label);
          else if (Field == "count")
            Ok = R.readUint(S.Count);
          else if (Field == "items")
            Ok = R.readUint(S.Items);
          else if (Field == "work")
            Ok = R.readUint(S.Work);
          else if (Field == "vt0")
            Ok = R.readUint(S.Vt0);
          else if (Field == "vt1")
            Ok = R.readUint(S.Vt1);
          else {
            R.fail("unknown span field '" + Field + "'");
            Ok = false;
          }
          if (!Ok)
            return false;
        }
        Out.Spans.push_back(std::move(S));
      }
    } else {
      R.fail("unknown top-level key '" + Key + "'");
      return false;
    }
  }
  if (Out.Version != 1) {
    Error = formatString("unsupported pp_obs_version %llu",
                         static_cast<unsigned long long>(Out.Version));
    return false;
  }
  return R.atEnd() || (R.fail("trailing bytes after the report"), false);
}

bool obs::readObsReportFile(const std::string &Path, ObsReport &Out,
                            std::string &Error) {
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    Error = "cannot open '" + Path + "'";
    return false;
  }
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  if (!parseObsReport(Buffer.str(), Out, Error)) {
    Error = Path + ": " + Error;
    return false;
  }
  return true;
}

std::string obs::renderObsReport(const ObsReport &R) {
  std::string Out = formatString(
      "obs report (version %llu, %llu dropped records)\n\n",
      static_cast<unsigned long long>(R.Version),
      static_cast<unsigned long long>(R.DroppedRecords));

  TableWriter Counters;
  Counters.setHeader({"Counter", "Value"});
  for (const auto &[Name, Value] : R.Counters)
    Counters.addRow({Name, std::to_string(Value)});
  Out += Counters.render();
  Out += "\n";

  std::vector<const ObsReport::Span *> Sorted;
  for (const ObsReport::Span &S : R.Spans)
    Sorted.push_back(&S);
  std::stable_sort(Sorted.begin(), Sorted.end(),
                   [](const ObsReport::Span *A, const ObsReport::Span *B) {
                     return A->Work > B->Work;
                   });
  TableWriter Spans;
  Spans.setHeader({"Span", "Count", "Items", "Work", "VT"});
  for (const ObsReport::Span *S : Sorted)
    Spans.addRow({spanKey(*S), std::to_string(S->Count),
                  std::to_string(S->Items), std::to_string(S->Work),
                  formatString("[%llu, %llu)",
                               static_cast<unsigned long long>(S->Vt0),
                               static_cast<unsigned long long>(S->Vt1))});
  Out += Spans.render();
  return Out;
}

std::vector<std::string> obs::listObsReportFiles(const std::string &Dir) {
  std::vector<std::string> Paths;
  DIR *D = opendir(Dir.c_str());
  if (!D)
    return Paths;
  while (dirent *Entry = readdir(D)) {
    std::string Name = Entry->d_name;
    if (Name.size() > 5 && Name.compare(Name.size() - 5, 5, ".json") == 0)
      Paths.push_back(Dir + "/" + Name);
  }
  closedir(D);
  std::sort(Paths.begin(), Paths.end());
  return Paths;
}

bool obs::aggregateObsReports(const std::vector<ObsReport> &Reports,
                              ObsReport &Out, std::string &Error) {
  Out = ObsReport();
  if (Reports.empty()) {
    Error = "no obs reports to aggregate";
    return false;
  }
  // Counter and span identity is the name, not the position: reports
  // written by different binary builds may differ in which (append-only)
  // counters exist, and a counter one report lacks simply contributes 0.
  std::map<std::string, size_t> CounterIndex;
  using Key = std::tuple<std::string, std::string, std::string>;
  std::map<Key, size_t> SpanIndex;
  for (const ObsReport &R : Reports) {
    Out.Version = std::max(Out.Version, R.Version);
    Out.DroppedRecords += R.DroppedRecords;
    for (const auto &[Name, Value] : R.Counters) {
      auto [It, Inserted] = CounterIndex.emplace(Name, Out.Counters.size());
      if (Inserted)
        Out.Counters.emplace_back(Name, Value);
      else
        Out.Counters[It->second].second += Value;
    }
    for (const ObsReport::Span &S : R.Spans) {
      auto [It, Inserted] =
          SpanIndex.emplace(Key{S.Cat, S.Name, S.Label}, Out.Spans.size());
      if (Inserted) {
        Out.Spans.push_back(S);
        continue;
      }
      ObsReport::Span &Sum = Out.Spans[It->second];
      Sum.Count += S.Count;
      Sum.Items += S.Items;
      Sum.Work += S.Work;
      // Virtual time is per-run, so the interval union is a coverage
      // envelope, not a wall-clock ordering.
      Sum.Vt0 = std::min(Sum.Vt0, S.Vt0);
      Sum.Vt1 = std::max(Sum.Vt1, S.Vt1);
    }
  }
  return true;
}

std::string obs::diffObsReports(const ObsReport &A, const ObsReport &B) {
  std::string Out;

  TableWriter Counters;
  Counters.setHeader({"Counter", "A", "B", "Delta"});
  std::map<std::string, uint64_t> CountersA(A.Counters.begin(),
                                            A.Counters.end());
  std::map<std::string, uint64_t> CountersB(B.Counters.begin(),
                                            B.Counters.end());
  auto SignedDelta = [](uint64_t From, uint64_t To) {
    return To >= From ? formatString("+%llu", static_cast<unsigned long long>(
                                                  To - From))
                      : formatString("-%llu", static_cast<unsigned long long>(
                                                  From - To));
  };
  for (const auto &[Name, ValueA] : CountersA) {
    auto It = CountersB.find(Name);
    uint64_t ValueB = It == CountersB.end() ? 0 : It->second;
    if (ValueB != ValueA)
      Counters.addRow({Name, std::to_string(ValueA),
                       std::to_string(ValueB), SignedDelta(ValueA, ValueB)});
  }
  for (const auto &[Name, ValueB] : CountersB)
    if (!CountersA.count(Name))
      Counters.addRow({Name, "0", std::to_string(ValueB),
                       SignedDelta(0, ValueB)});

  using Key = std::tuple<std::string, std::string, std::string>;
  std::map<Key, const ObsReport::Span *> SpansA, SpansB;
  for (const ObsReport::Span &S : A.Spans)
    SpansA[{S.Cat, S.Name, S.Label}] = &S;
  for (const ObsReport::Span &S : B.Spans)
    SpansB[{S.Cat, S.Name, S.Label}] = &S;
  TableWriter Spans;
  Spans.setHeader({"Span", "Count A", "Count B", "Work A", "Work B",
                   "Work delta"});
  ObsReport::Span Zero;
  auto AddSpanRow = [&](const Key &K, const ObsReport::Span &SA,
                        const ObsReport::Span &SB) {
    if (SA.Count == SB.Count && SA.Work == SB.Work)
      return;
    ObsReport::Span Named;
    Named.Cat = std::get<0>(K);
    Named.Name = std::get<1>(K);
    Named.Label = std::get<2>(K);
    Spans.addRow({spanKey(Named), std::to_string(SA.Count),
                  std::to_string(SB.Count), std::to_string(SA.Work),
                  std::to_string(SB.Work), SignedDelta(SA.Work, SB.Work)});
  };
  for (const auto &[K, SA] : SpansA) {
    auto It = SpansB.find(K);
    AddSpanRow(K, *SA, It == SpansB.end() ? Zero : *It->second);
  }
  for (const auto &[K, SB] : SpansB)
    if (!SpansA.count(K))
      AddSpanRow(K, Zero, *SB);

  if (!Counters.numRows() && !Spans.numRows())
    return "no differences\n";
  if (Counters.numRows()) {
    Out += "counter deltas (B - A):\n";
    Out += Counters.render();
  }
  if (Spans.numRows()) {
    if (!Out.empty())
      Out += "\n";
    Out += "span deltas (B - A):\n";
    Out += Spans.render();
  }
  return Out;
}
