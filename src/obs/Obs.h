//===- obs/Obs.h - Self-observability for the profiling pipeline -*- C++ -*-===//
///
/// \file
/// The profiler's profiler. The paper's premise is that a profiling tool
/// must account for its own cost (Table 1 overhead, Table 2
/// perturbation); this subsystem applies the same discipline to the
/// pipeline itself — the run scheduler, the run cache, the two VM
/// engines, and the profile-repository merges — so a slow 72-run table
/// suite or a regressed cache hit-rate has something to look at.
///
/// Design:
///
///  * Always compiled, near-zero overhead. Recording sites are stage
///    boundaries (a handful of events per run), never per-instruction.
///    A process-global enabled flag (obs::setEnabled, PP_OBS=0) turns the
///    record sites into one relaxed atomic load.
///
///  * Per-thread lock-free ring buffers. Each thread appends span records
///    to its own fixed-capacity buffer with release stores; no locks, no
///    sharing on the hot path. Buffers are owned by the process-global
///    Collector and outlive their threads, so a drained report sees every
///    record of every (joined) worker. Overflow drops the record and
///    counts the drop — it never blocks.
///
///  * Two exports with different determinism contracts:
///
///    - A structured JSON run report (PP_OBS_OUT / pp --obs-out,
///      renderJsonReport). Byte-stable by construction: counters are
///      schedule-independent sums emitted in fixed enum order, spans are
///      aggregated by (category, name, label) and sorted, and timestamps
///      are *virtual* — each aggregated span's [vt0, vt1) interval is laid
///      end-to-end from its deterministic work measure (simulated cycles
///      for execution stages, bytes for codec stages), never from the
///      host clock. Identical RunPlans therefore produce byte-identical
///      reports under any PP_DRIVER_THREADS value, which is what makes
///      reports diffable artifacts (pp-report obs).
///
///    - A Chrome trace_event stream (PP_OBS_TRACE, renderChromeTrace) for
///      flame-style inspection in a trace viewer. This one *is* host-time
///      and per-thread — worker lanes, queue-depth counter track, wall
///      durations — and is deliberately excluded from the determinism
///      contract.
///
//===----------------------------------------------------------------------===//

#ifndef PP_OBS_OBS_H
#define PP_OBS_OBS_H

#include <cstdint>
#include <string>

namespace pp {
namespace obs {

/// Pipeline counters. Every counter is a schedule-independent sum: its
/// total depends only on the submitted work, not on thread interleaving,
/// which is what lets the JSON report include all of them while staying
/// byte-identical across PP_DRIVER_THREADS values. Order here is the
/// report's field order — append only.
enum class Counter : unsigned {
  CacheMemoryHits,       ///< run-cache lookups served from memory
  CacheDiskHits,         ///< run-cache lookups served from disk
  CacheMisses,           ///< run-cache lookups that found nothing usable
  CacheStores,           ///< outcomes memoized into the cache
  CacheCorruptEvictions, ///< undecodable cache files deleted on lookup
  CacheWriteFailures,    ///< cache writes that degraded to memory-only
  SchedulerSubmitted,    ///< tickets issued by submit()
  SchedulerFolded,       ///< submissions folded onto an earlier task
  SchedulerExecuted,     ///< runs actually executed (not cache hits)
  SchedulerFailed,       ///< runs resolving to a failed outcome
  VmInstsReference,      ///< instructions dispatched by the switch engine
  VmInstsThreaded,       ///< instructions dispatched by the threaded engine
  ProfDbBytesEncoded,    ///< artifact bytes produced by encodeArtifact
  ProfDbBytesDecoded,    ///< artifact bytes consumed by decodeArtifact
  ProfDbMerges,          ///< pairwise artifact merges performed
  FaultReadsCorrupted,   ///< fault-injector cache-read corruptions
  FaultWritesFailed,     ///< fault-injector cache-write failures
  FaultRunsFailed,       ///< fault-injector run failures
  AcqTrapsDelivered,     ///< counter-overflow traps delivered to samplers
  AcqSamplesRecorded,    ///< stack samples recorded by overflow sampling
  CollectdAccepted,      ///< fleet uploads folded into a window tree
  CollectdRejected,      ///< fleet uploads rejected with a typed reason
  CollectdCompactions,   ///< merge-tree level compactions performed
  CollectdQueries,       ///< window queries served
  CollectdRateLimited,   ///< uploads refused by the per-tenant token bucket
  CollectdWindowsExpired, ///< windows persisted + dropped by retention
  CollectdNetConns,      ///< connections accepted by the socket front end
  CollectdNetFramesIn,   ///< frames decoded off client sockets
  CollectdNetFramesOut,  ///< frames written back to clients
  CollectdNetBytesIn,    ///< bytes read off client sockets
  CollectdNetBytesOut,   ///< bytes written back to clients
  CollectdNetProtocolErrors, ///< streams dropped for frame-level errors
  CollectdNetIdleClosed, ///< connections closed by the idle timeout
  OptFunctionsReordered, ///< functions re-laid-out hot-path-first
  OptBlocksDuplicated,   ///< blocks tail-duplicated by superblock formation
  OptSitesInlined,       ///< call sites expanded by the inliner
  OptProfileRefusals,    ///< artifacts refused by ProfileView with a typed reason
  NumCounters
};

/// The report key of \p C ("cache.memory_hits", ...).
const char *counterName(Counter C);

/// True when recording is on (the default; PP_OBS=0 disables at startup).
bool enabled();
/// Turns recording on or off process-wide (bench/obs_overhead's A/B knob).
void setEnabled(bool On);

/// Adds \p Delta to \p C (relaxed atomic; no-op when disabled).
void add(Counter C, uint64_t Delta = 1);
/// Current total of \p C.
uint64_t counterValue(Counter C);

/// Records an instantaneous gauge sample (scheduler queue depth). Gauges
/// are host-time samples and appear only in the Chrome trace, never in
/// the deterministic JSON report.
void gauge(const char *Name, int64_t Value);

/// RAII span over one pipeline stage. Construction stamps the host
/// clock; destruction appends one record to the calling thread's ring.
/// \p Cat and \p Name must be string literals (stored by pointer);
/// \p Label is copied (truncated to the record's inline capacity).
/// \p Work is the span's deterministic work measure — simulated cycles,
/// bytes, shards — and is what virtual time is built from; call setWork
/// when the measure is only known at the end of the stage.
class SpanScope {
public:
  SpanScope(const char *Cat, const char *Name, const std::string &Label,
            uint64_t Work = 0, uint64_t Items = 1);
  ~SpanScope();

  SpanScope(const SpanScope &) = delete;
  SpanScope &operator=(const SpanScope &) = delete;

  void setWork(uint64_t Work) { this->Work = Work; }
  void addWork(uint64_t Delta) { Work += Delta; }
  void setItems(uint64_t Items) { this->Items = Items; }

private:
  const char *Cat;
  const char *Name;
  char Label[64];
  uint64_t Work;
  uint64_t Items;
  uint64_t T0Ns;
  bool Armed;
};

/// The deterministic JSON run report (field order fixed, timestamps
/// virtual; see the file comment). Safe to call only when no recording
/// thread is running (workers joined).
std::string renderJsonReport();

/// The Chrome trace_event stream (host-time, per-thread lanes, gauge
/// counter tracks). Same quiescence requirement.
std::string renderChromeTrace();

/// Where the JSON report is written at process exit ("" disables).
/// Initialised from $PP_OBS_OUT; pp's --obs-out flag overrides it.
void setReportPath(const std::string &Path);
/// Where the Chrome trace is written at process exit ("" disables).
/// Initialised from $PP_OBS_TRACE.
void setTracePath(const std::string &Path);

/// Per-thread ring capacity in records: $PP_OBS_RING_CAPACITY via the
/// strict env path (support/Env.h), default 2^14, clamped to [64, 2^20].
/// Re-reads the environment on every call so tests can exercise the
/// parsing; the collector reads it once, at the first buffer allocation.
size_t configuredRingCapacity();

/// Drops every recorded span, gauge, and counter (tests only; callers
/// must ensure no recording thread is running).
void resetForTesting();

} // namespace obs
} // namespace pp

#endif // PP_OBS_OBS_H
