//===- profdb/Diff.h - Per-path and per-context profile deltas -*- C++ -*-===//
///
/// \file
/// Differencing of two compatible artifacts (or merged sets): the
/// programmatic version of the paper's Table 2 perturbation comparison.
/// Reports metric deltas per Ball-Larus path (keyed by function + path
/// sum) and per calling context (keyed by the root-to-record procedure
/// chain), sorted by descending PIC1 magnitude with deterministic
/// tie-breaks so diff output is stable.
///
//===----------------------------------------------------------------------===//

#ifndef PP_PROFDB_DIFF_H
#define PP_PROFDB_DIFF_H

#include "profdb/Artifact.h"

#include <string>
#include <vector>

namespace pp {
namespace profdb {

/// Delta of one Ball-Larus path between two profiles (B minus A). The
/// (FuncId, PathSum) key names a path only within one path-id space;
/// diffArtifacts validates that both artifacts agree on k (schema-level
/// and per-function KIters) and on each function's NumPaths before any
/// sums are compared, so a k=2 window sum never silently diffs against a
/// k=1 path sum that happens to share its value.
struct PathDelta {
  unsigned FuncId = 0;
  uint64_t PathSum = 0;
  int64_t DFreq = 0;
  int64_t DPic0 = 0;
  int64_t DPic1 = 0;
};

/// Delta of one calling context (B minus A). Pic0/Pic1 fold in both the
/// per-record metric accumulators and the record's path-cell sums, so
/// every context mode contributes whichever representation it used.
struct ContextDelta {
  /// " > "-joined procedure names from the root (root excluded).
  std::string Context;
  int64_t DCalls = 0;
  int64_t DPic0 = 0;
  int64_t DPic1 = 0;
};

struct ArtifactDiff {
  std::vector<PathDelta> Paths;
  std::vector<ContextDelta> Contexts;
};

/// Diffs \p B against \p A (deltas are B - A). The artifacts must agree
/// on workload, scale, schema, and function table; returns false with
/// \p Error set otherwise. Identical entries (all deltas zero) are
/// omitted.
bool diffArtifacts(const Artifact &A, const Artifact &B, ArtifactDiff &Out,
                   std::string &Error);

} // namespace profdb
} // namespace pp

#endif // PP_PROFDB_DIFF_H
