//===- profdb/Diff.cpp - Per-path and per-context profile deltas --------------===//

#include "profdb/Diff.h"

#include "support/Format.h"

#include <algorithm>
#include <map>

using namespace pp;
using namespace pp::profdb;

namespace {

struct Triple {
  uint64_t V0 = 0, V1 = 0, V2 = 0;
};

void collectPaths(const Artifact &A,
                  std::map<std::pair<unsigned, uint64_t>, Triple> &Out) {
  for (const prof::FunctionPathProfile &Profile : A.PathProfiles) {
    if (!Profile.HasProfile)
      continue;
    for (const prof::PathEntry &Entry : Profile.Paths) {
      Triple &T = Out[{Profile.FuncId, Entry.PathSum}];
      T.V0 += Entry.Freq;
      T.V1 += Entry.Metric0;
      T.V2 += Entry.Metric1;
    }
  }
}

std::string contextName(const cct::CallRecord *R,
                        const std::vector<std::string> &Functions) {
  // Names from the root down, root's pseudo-procedure excluded.
  std::vector<const cct::CallRecord *> Chain;
  for (; R && R->procId() != cct::RootProcId; R = R->parent())
    Chain.push_back(R);
  std::string Name;
  for (auto It = Chain.rbegin(); It != Chain.rend(); ++It) {
    if (!Name.empty())
      Name += " > ";
    cct::ProcId Proc = (*It)->procId();
    Name += Proc < Functions.size() ? Functions[Proc]
                                    : "proc" + std::to_string(Proc);
  }
  return Name;
}

void collectContexts(const Artifact &A, std::map<std::string, Triple> &Out) {
  if (!A.Tree)
    return;
  for (const auto &R : A.Tree->records()) {
    if (R->procId() == cct::RootProcId)
      continue;
    Triple T;
    if (!R->Metrics.empty())
      T.V0 = R->Metrics[0];
    if (R->Metrics.size() > 1)
      T.V1 = R->Metrics[1];
    if (R->Metrics.size() > 2)
      T.V2 = R->Metrics[2];
    for (const auto &[Sum, Cell] : R->PathTable) {
      (void)Sum;
      T.V1 += Cell.Metric0;
      T.V2 += Cell.Metric1;
    }
    Triple &Into = Out[contextName(R.get(), A.Functions)];
    Into.V0 += T.V0;
    Into.V1 += T.V1;
    Into.V2 += T.V2;
  }
}

int64_t delta(uint64_t B, uint64_t A) {
  return static_cast<int64_t>(B) - static_cast<int64_t>(A);
}

uint64_t magnitude(int64_t V) {
  return V < 0 ? static_cast<uint64_t>(-V) : static_cast<uint64_t>(V);
}

} // namespace

bool profdb::diffArtifacts(const Artifact &A, const Artifact &B,
                           ArtifactDiff &Out, std::string &Error) {
  // Cross-k schemas fail the generic comparison too, but get the specific
  // message: the sums are incomparable path-id spaces, not merely
  // different metrics.
  if (A.Schema.K != B.Schema.K) {
    Error = formatString("cannot diff artifacts across k: k=%u vs k=%u",
                         A.Schema.K, B.Schema.K);
    return false;
  }
  if (A.Schema != B.Schema) {
    Error = "incompatible metric schemas";
    return false;
  }
  if (A.Workload != B.Workload || A.Scale != B.Scale) {
    Error = "different programs";
    return false;
  }
  if (A.Functions != B.Functions) {
    Error = "function tables differ";
    return false;
  }
  // The (FuncId, PathSum) diff key is only meaningful within one
  // path-id space, so validate each function's space before comparing
  // sums: the fallback ladder can leave one run at a lower effective k
  // than another even when the requested (schema) k matches.
  for (size_t I = 0,
              N = std::min(A.PathProfiles.size(), B.PathProfiles.size());
       I != N; ++I) {
    const prof::FunctionPathProfile &PA = A.PathProfiles[I];
    const prof::FunctionPathProfile &PB = B.PathProfiles[I];
    if (PA.KIters != PB.KIters) {
      Error = formatString(
          "cannot diff across k for function %u: k=%u vs k=%u", PA.FuncId,
          PA.KIters, PB.KIters);
      return false;
    }
    if (PA.HasProfile && PB.HasProfile && PA.NumPaths != PB.NumPaths) {
      Error = formatString(
          "path-id spaces differ for function %u: %llu vs %llu paths",
          PA.FuncId, static_cast<unsigned long long>(PA.NumPaths),
          static_cast<unsigned long long>(PB.NumPaths));
      return false;
    }
  }
  Out.Paths.clear();
  Out.Contexts.clear();

  std::map<std::pair<unsigned, uint64_t>, Triple> PathsA, PathsB;
  collectPaths(A, PathsA);
  collectPaths(B, PathsB);
  // Union of both key sets; the std::map keeps it ordered.
  for (const auto &[Key, T] : PathsB)
    (void)PathsA[Key], (void)T;
  for (const auto &[Key, TA] : PathsA) {
    auto It = PathsB.find(Key);
    Triple TB = It == PathsB.end() ? Triple{} : It->second;
    PathDelta D;
    D.FuncId = Key.first;
    D.PathSum = Key.second;
    D.DFreq = delta(TB.V0, TA.V0);
    D.DPic0 = delta(TB.V1, TA.V1);
    D.DPic1 = delta(TB.V2, TA.V2);
    if (D.DFreq || D.DPic0 || D.DPic1)
      Out.Paths.push_back(D);
  }
  std::stable_sort(Out.Paths.begin(), Out.Paths.end(),
                   [](const PathDelta &X, const PathDelta &Y) {
                     if (magnitude(X.DPic1) != magnitude(Y.DPic1))
                       return magnitude(X.DPic1) > magnitude(Y.DPic1);
                     if (magnitude(X.DPic0) != magnitude(Y.DPic0))
                       return magnitude(X.DPic0) > magnitude(Y.DPic0);
                     if (X.FuncId != Y.FuncId)
                       return X.FuncId < Y.FuncId;
                     return X.PathSum < Y.PathSum;
                   });

  std::map<std::string, Triple> ContextsA, ContextsB;
  collectContexts(A, ContextsA);
  collectContexts(B, ContextsB);
  for (const auto &[Key, T] : ContextsB)
    (void)ContextsA[Key], (void)T;
  for (const auto &[Key, TA] : ContextsA) {
    auto It = ContextsB.find(Key);
    Triple TB = It == ContextsB.end() ? Triple{} : It->second;
    ContextDelta D;
    D.Context = Key;
    D.DCalls = delta(TB.V0, TA.V0);
    D.DPic0 = delta(TB.V1, TA.V1);
    D.DPic1 = delta(TB.V2, TA.V2);
    if (D.DCalls || D.DPic0 || D.DPic1)
      Out.Contexts.push_back(std::move(D));
  }
  std::stable_sort(Out.Contexts.begin(), Out.Contexts.end(),
                   [](const ContextDelta &X, const ContextDelta &Y) {
                     if (magnitude(X.DPic1) != magnitude(Y.DPic1))
                       return magnitude(X.DPic1) > magnitude(Y.DPic1);
                     if (magnitude(X.DCalls) != magnitude(Y.DCalls))
                       return magnitude(X.DCalls) > magnitude(Y.DCalls);
                     return X.Context < Y.Context;
                   });
  return true;
}
