//===- profdb/Store.h - Artifact files on disk -----------------*- C++ -*-===//
///
/// \file
/// The on-disk side of the profile repository: artifact file naming
/// ("ppa-<fnv1a-of-fingerprint>.ppa"), atomic writes (temp file + rename,
/// the run cache's torn-write discipline), reads that fold I/O failures
/// into the decoder's typed DecodeStatus, and directory listing for
/// repository-wide queries. The PP_PROFILE_OUT environment knob names the
/// directory every driver run deposits its artifact into.
///
//===----------------------------------------------------------------------===//

#ifndef PP_PROFDB_STORE_H
#define PP_PROFDB_STORE_H

#include "profdb/Artifact.h"

#include <string>
#include <vector>

namespace pp {
namespace profdb {

/// "ppa-<16 hex digits>.ppa" derived from the run fingerprint.
std::string artifactFileName(const std::string &Fingerprint);

/// $PP_PROFILE_OUT, or "" when unset (emission disabled).
std::string profileOutDirFromEnv();

/// Creates \p Dir and every missing parent (mkdir -p). Returns false with
/// \p Error set on the first component that cannot be created.
bool makeDirs(const std::string &Dir, std::string &Error);

/// Serialises \p A to \p Path atomically (temp file + rename; the
/// directory — including nested parents — is created if missing).
/// Returns false with \p Error set on any failure; a half-written file is
/// never left at \p Path.
bool writeArtifactFile(const std::string &Path, const Artifact &A,
                       std::string &Error);

/// Deletes "*.ppa.tmp.<pid>" temps in \p Dir whose writer pid is dead —
/// the debris a writer that crashed between open and rename leaves
/// behind. Temps of live (or unprobeable) pids are kept. Returns how many
/// files were removed. listArtifactFiles runs this automatically.
size_t sweepStaleTemps(const std::string &Dir);

/// Reads and decodes \p Path. I/O failures report Unreadable; everything
/// else is the decoder's verdict.
DecodeStatus readArtifactFile(const std::string &Path, Artifact &Out);

/// All "*.ppa" files directly inside \p Dir, as full paths, sorted — the
/// listing order never depends on directory enumeration order.
std::vector<std::string> listArtifactFiles(const std::string &Dir);

} // namespace profdb
} // namespace pp

#endif // PP_PROFDB_STORE_H
