//===- profdb/Store.h - Artifact files on disk -----------------*- C++ -*-===//
///
/// \file
/// The on-disk side of the profile repository: artifact file naming
/// ("ppa-<fnv1a-of-fingerprint>.ppa"), atomic writes (temp file + rename,
/// the run cache's torn-write discipline), reads that fold I/O failures
/// into the decoder's typed DecodeStatus, and directory listing for
/// repository-wide queries. The PP_PROFILE_OUT environment knob names the
/// directory every driver run deposits its artifact into.
///
//===----------------------------------------------------------------------===//

#ifndef PP_PROFDB_STORE_H
#define PP_PROFDB_STORE_H

#include "profdb/Artifact.h"

#include <ctime>
#include <string>
#include <vector>

namespace pp {
namespace profdb {

/// "ppa-<16 hex digits>.ppa" derived from the run fingerprint.
std::string artifactFileName(const std::string &Fingerprint);

/// $PP_PROFILE_OUT, or "" when unset (emission disabled).
std::string profileOutDirFromEnv();

/// Creates \p Dir and every missing parent (mkdir -p). Returns false with
/// \p Error set on the first component that cannot be created.
bool makeDirs(const std::string &Dir, std::string &Error);

/// Serialises \p A to \p Path atomically (temp file + rename; the
/// directory — including nested parents — is created if missing).
/// Returns false with \p Error set on any failure; a half-written file is
/// never left at \p Path.
bool writeArtifactFile(const std::string &Path, const Artifact &A,
                       std::string &Error);

/// A temp younger than this many seconds is never swept: its writer may
/// still be between open and rename, and the writer pid alone cannot
/// prove otherwise (pids recycle; on a shared filesystem they belong to
/// another host's pid domain entirely).
constexpr time_t StaleTempGraceSeconds = 15 * 60;
/// Past this age a temp is swept even when its recorded pid probes as
/// alive — an atomic write takes milliseconds, so by now the pid has
/// been recycled by an unrelated process (which would otherwise shield
/// dead writers' debris forever).
constexpr time_t StaleTempHardSeconds = 24 * 60 * 60;

/// The grace threshold actually used by the sweep:
/// $PP_COLLECTD_TEMP_GRACE_SECS via the strict env path (junk warns and
/// keeps the default), StaleTempGraceSeconds when unset. A fleet
/// collector whose uploaders crash often can shorten it; a shared
/// filesystem with slow writers can lengthen it.
time_t staleTempGraceSeconds();
/// The hard-age threshold actually used by the sweep:
/// $PP_COLLECTD_TEMP_HARD_SECS, StaleTempHardSeconds when unset. Never
/// reads below the grace threshold — an inverted pair would sweep temps
/// the grace period promised to keep.
time_t staleTempHardSeconds();

/// Deletes "*.ppa.tmp.<pid>" temps in \p Dir whose writer can no longer
/// finish the rename — the debris a writer that crashed between open and
/// rename leaves behind. Staleness is age-first: temps younger than
/// StaleTempGraceSeconds are always kept; older ones are swept once
/// their writer pid probes dead, the kill(pid, 0) probe being only a
/// same-host optimisation that lets a live writer keep its temp until
/// StaleTempHardSeconds. Returns how many files were removed.
/// listArtifactFiles runs this automatically.
size_t sweepStaleTemps(const std::string &Dir);

/// Reads and decodes \p Path. I/O failures report Unreadable; everything
/// else is the decoder's verdict.
DecodeStatus readArtifactFile(const std::string &Path, Artifact &Out);

/// All "*.ppa" files directly inside \p Dir, as full paths, sorted — the
/// listing order never depends on directory enumeration order.
std::vector<std::string> listArtifactFiles(const std::string &Dir);

} // namespace profdb
} // namespace pp

#endif // PP_PROFDB_STORE_H
