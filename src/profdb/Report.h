//===- profdb/Report.h - Textual reports over artifacts --------*- C++ -*-===//
///
/// \file
/// Rendering of single-artifact queries for tools/pp-report: the hottest
/// Ball-Larus paths and procedures by PIC1, CCT aggregate statistics, the
/// diff report, and a Brendan-Gregg collapsed-stack export of the CCT
/// ("main;f;g 42" lines) weighted by any counter, so stored profiles feed
/// standard flamegraph tooling directly.
///
//===----------------------------------------------------------------------===//

#ifndef PP_PROFDB_REPORT_H
#define PP_PROFDB_REPORT_H

#include "profdb/Artifact.h"
#include "profdb/Diff.h"

#include <string>

namespace pp {
namespace profdb {

/// "== <workload> (scale N, <mode>, PIC0=..., PIC1=..., runs=N) ==\n".
std::string reportHeader(const Artifact &A);

/// The \p Limit hottest executed paths by PIC1 (ties broken by PIC0,
/// then function id, then path sum).
std::string reportTopPaths(const Artifact &A, size_t Limit);

/// Per-procedure aggregation of the path profiles, hottest \p Limit by
/// PIC1.
std::string reportTopProcs(const Artifact &A, size_t Limit);

/// The Table 3 raw material for one artifact's CCT; an explanatory line
/// when the artifact has none.
std::string reportCctStats(const Artifact &A);

/// Which counter weighs the collapsed stacks.
enum class CollapsedCounter { Calls, Pic0, Pic1 };

/// Parses "calls" / "pic0" / "pic1"; false on anything else.
bool parseCollapsedCounter(const std::string &Text, CollapsedCounter &Out);

/// One "name;name;... weight" line per CCT record with a non-zero weight,
/// sorted lexicographically. Records fold their path-cell metric sums
/// into Pic0/Pic1 alongside the per-record accumulators. Empty string
/// (with \p Error set) when the artifact has no CCT.
std::string collapsedStacks(const Artifact &A, CollapsedCounter Counter,
                            std::string &Error);

/// Renders a diff (see Diff.h) limited to the top \p Limit rows per
/// section.
std::string renderDiff(const ArtifactDiff &Diff, size_t Limit);

} // namespace profdb
} // namespace pp

#endif // PP_PROFDB_REPORT_H
