//===- profdb/Store.cpp - Artifact files on disk ------------------------------===//

#include "profdb/Store.h"

#include "support/Env.h"
#include "support/Format.h"

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <dirent.h>
#include <fstream>
#include <sys/stat.h>
#include <unistd.h>

using namespace pp;
using namespace pp::profdb;

std::string profdb::artifactFileName(const std::string &Fingerprint) {
  return formatString("ppa-%016llx.ppa",
                      static_cast<unsigned long long>(fnv1a(Fingerprint)));
}

std::string profdb::profileOutDirFromEnv() {
  const char *Dir = std::getenv("PP_PROFILE_OUT");
  return Dir ? Dir : "";
}

bool profdb::makeDirs(const std::string &Dir, std::string &Error) {
  if (Dir.empty())
    return true;
  // Create each prefix in turn, mkdir -p style: a nested repository
  // directory (PP_PROFILE_OUT=a/b/c, a collectd window directory) must
  // not require its parents to pre-exist. EEXIST is fine at every level;
  // a component that exists as a regular file surfaces as the final
  // open/rename failure with that path in the message.
  size_t Pos = Dir[0] == '/' ? 1 : 0;
  while (true) {
    size_t Slash = Dir.find('/', Pos);
    std::string Prefix =
        Slash == std::string::npos ? Dir : Dir.substr(0, Slash);
    if (!Prefix.empty() && Prefix != "." && mkdir(Prefix.c_str(), 0755) != 0 &&
        errno != EEXIST) {
      Error = "cannot create directory '" + Prefix + "'";
      return false;
    }
    if (Slash == std::string::npos)
      return true;
    Pos = Slash + 1;
  }
}

bool profdb::writeArtifactFile(const std::string &Path, const Artifact &A,
                               std::string &Error) {
  size_t Slash = Path.find_last_of('/');
  if (Slash != std::string::npos && Slash != 0)
    if (!makeDirs(Path.substr(0, Slash), Error))
      return false;

  std::vector<uint8_t> Bytes = encodeArtifact(A);
  // Write-to-temp + rename: a crash or concurrent writer never leaves a
  // torn file under the final name (identical inputs produce identical
  // bytes, so racing writers are harmless).
  std::string Temp = Path + ".tmp." + std::to_string(getpid());
  {
    std::ofstream Out(Temp, std::ios::binary | std::ios::trunc);
    if (!Out) {
      Error = "cannot open '" + Temp + "' for writing";
      return false;
    }
    Out.write(reinterpret_cast<const char *>(Bytes.data()),
              static_cast<std::streamsize>(Bytes.size()));
    if (!Out) {
      Out.close();
      std::remove(Temp.c_str());
      Error = "short write to '" + Temp + "'";
      return false;
    }
  }
  if (std::rename(Temp.c_str(), Path.c_str()) != 0) {
    std::remove(Temp.c_str());
    Error = "cannot rename '" + Temp + "' to '" + Path + "'";
    return false;
  }
  return true;
}

DecodeStatus profdb::readArtifactFile(const std::string &Path,
                                      Artifact &Out) {
  struct stat St;
  if (::stat(Path.c_str(), &St) != 0 || !S_ISREG(St.st_mode))
    return DecodeStatus::Unreadable;
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return DecodeStatus::Unreadable;
  std::vector<uint8_t> Bytes((std::istreambuf_iterator<char>(In)),
                             std::istreambuf_iterator<char>());
  if (In.bad())
    return DecodeStatus::Unreadable;
  return decodeArtifact(Bytes, Out);
}

namespace {

/// True when \p Name is a writeArtifactFile temp ("<base>.ppa.tmp.<pid>");
/// \p Pid receives the recorded writer pid.
bool parseTempName(const std::string &Name, pid_t &Pid) {
  static const char Marker[] = ".ppa.tmp.";
  size_t At = Name.rfind(Marker);
  if (At == std::string::npos)
    return false;
  std::string PidText = Name.substr(At + sizeof(Marker) - 1);
  if (PidText.empty() ||
      PidText.find_first_not_of("0123456789") != std::string::npos)
    return false;
  errno = 0;
  long Value = std::strtol(PidText.c_str(), nullptr, 10);
  if (errno != 0 || Value <= 0)
    return false;
  Pid = static_cast<pid_t>(Value);
  return true;
}

/// Whether the temp at \p Path (writer \p Pid) can be reclaimed. Age is
/// the primary signal: a temp younger than the grace period is always
/// kept, whatever the pid probe says — on a shared filesystem the pid of
/// a live writer on another host reads as dead, and sweeping it would
/// race the writer's own rename. Past the grace period the temp goes as
/// soon as the pid probes dead; a probe that says "alive" (which may be
/// an unrelated process that recycled the number) only defers the sweep
/// until the hard age limit.
bool isStaleTemp(const std::string &Path, pid_t Pid) {
  struct stat St;
  if (::stat(Path.c_str(), &St) != 0)
    return false;
  time_t Age = ::time(nullptr) - St.st_mtime;
  if (Age < staleTempGraceSeconds())
    return false;
  if (Age >= staleTempHardSeconds())
    return true;
  return ::kill(Pid, 0) != 0 && errno == ESRCH;
}

} // namespace

time_t profdb::staleTempGraceSeconds() {
  return static_cast<time_t>(envUint64Or(
      "PP_COLLECTD_TEMP_GRACE_SECS", "pp-collectd",
      static_cast<uint64_t>(StaleTempGraceSeconds)));
}

time_t profdb::staleTempHardSeconds() {
  time_t Grace = staleTempGraceSeconds();
  time_t Hard = static_cast<time_t>(envUint64Or(
      "PP_COLLECTD_TEMP_HARD_SECS", "pp-collectd",
      static_cast<uint64_t>(StaleTempHardSeconds)));
  // An inverted pair would sweep live-writer temps the grace period
  // promised to keep; clamp rather than guess which knob was meant.
  return std::max(Hard, Grace);
}

size_t profdb::sweepStaleTemps(const std::string &Dir) {
  size_t Swept = 0;
  DIR *D = opendir(Dir.c_str());
  if (!D)
    return Swept;
  std::vector<std::string> Stale;
  while (dirent *Entry = readdir(D)) {
    pid_t Pid;
    std::string Path = Dir + "/" + Entry->d_name;
    if (parseTempName(Entry->d_name, Pid) && isStaleTemp(Path, Pid))
      Stale.push_back(std::move(Path));
  }
  closedir(D);
  for (const std::string &Path : Stale)
    if (::unlink(Path.c_str()) == 0)
      ++Swept;
  return Swept;
}

std::vector<std::string> profdb::listArtifactFiles(const std::string &Dir) {
  // Opening a repository is the natural sweep point for temps orphaned by
  // writers that died between open and rename: without it, a fleet of
  // crashing uploaders grows the directory without bound.
  sweepStaleTemps(Dir);
  std::vector<std::string> Paths;
  DIR *D = opendir(Dir.c_str());
  if (!D)
    return Paths;
  while (dirent *Entry = readdir(D)) {
    std::string Name = Entry->d_name;
    if (Name.size() > 4 && Name.compare(Name.size() - 4, 4, ".ppa") == 0)
      Paths.push_back(Dir + "/" + Name);
  }
  closedir(D);
  std::sort(Paths.begin(), Paths.end());
  return Paths;
}
