//===- profdb/Store.cpp - Artifact files on disk ------------------------------===//

#include "profdb/Store.h"

#include "support/Format.h"

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <dirent.h>
#include <fstream>
#include <sys/stat.h>
#include <unistd.h>

using namespace pp;
using namespace pp::profdb;

std::string profdb::artifactFileName(const std::string &Fingerprint) {
  return formatString("ppa-%016llx.ppa",
                      static_cast<unsigned long long>(fnv1a(Fingerprint)));
}

std::string profdb::profileOutDirFromEnv() {
  const char *Dir = std::getenv("PP_PROFILE_OUT");
  return Dir ? Dir : "";
}

bool profdb::makeDirs(const std::string &Dir, std::string &Error) {
  if (Dir.empty())
    return true;
  // Create each prefix in turn, mkdir -p style: a nested repository
  // directory (PP_PROFILE_OUT=a/b/c, a collectd window directory) must
  // not require its parents to pre-exist. EEXIST is fine at every level;
  // a component that exists as a regular file surfaces as the final
  // open/rename failure with that path in the message.
  size_t Pos = Dir[0] == '/' ? 1 : 0;
  while (true) {
    size_t Slash = Dir.find('/', Pos);
    std::string Prefix =
        Slash == std::string::npos ? Dir : Dir.substr(0, Slash);
    if (!Prefix.empty() && Prefix != "." && mkdir(Prefix.c_str(), 0755) != 0 &&
        errno != EEXIST) {
      Error = "cannot create directory '" + Prefix + "'";
      return false;
    }
    if (Slash == std::string::npos)
      return true;
    Pos = Slash + 1;
  }
}

bool profdb::writeArtifactFile(const std::string &Path, const Artifact &A,
                               std::string &Error) {
  size_t Slash = Path.find_last_of('/');
  if (Slash != std::string::npos && Slash != 0)
    if (!makeDirs(Path.substr(0, Slash), Error))
      return false;

  std::vector<uint8_t> Bytes = encodeArtifact(A);
  // Write-to-temp + rename: a crash or concurrent writer never leaves a
  // torn file under the final name (identical inputs produce identical
  // bytes, so racing writers are harmless).
  std::string Temp = Path + ".tmp." + std::to_string(getpid());
  {
    std::ofstream Out(Temp, std::ios::binary | std::ios::trunc);
    if (!Out) {
      Error = "cannot open '" + Temp + "' for writing";
      return false;
    }
    Out.write(reinterpret_cast<const char *>(Bytes.data()),
              static_cast<std::streamsize>(Bytes.size()));
    if (!Out) {
      Out.close();
      std::remove(Temp.c_str());
      Error = "short write to '" + Temp + "'";
      return false;
    }
  }
  if (std::rename(Temp.c_str(), Path.c_str()) != 0) {
    std::remove(Temp.c_str());
    Error = "cannot rename '" + Temp + "' to '" + Path + "'";
    return false;
  }
  return true;
}

DecodeStatus profdb::readArtifactFile(const std::string &Path,
                                      Artifact &Out) {
  struct stat St;
  if (::stat(Path.c_str(), &St) != 0 || !S_ISREG(St.st_mode))
    return DecodeStatus::Unreadable;
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return DecodeStatus::Unreadable;
  std::vector<uint8_t> Bytes((std::istreambuf_iterator<char>(In)),
                             std::istreambuf_iterator<char>());
  if (In.bad())
    return DecodeStatus::Unreadable;
  return decodeArtifact(Bytes, Out);
}

namespace {

/// True when \p Name is a writeArtifactFile temp ("<base>.ppa.tmp.<pid>")
/// whose writer is gone: the pid can no longer perform the rename, so the
/// temp is garbage forever unless someone sweeps it. A live pid (or one
/// we cannot probe, EPERM) keeps the temp — the writer may still be
/// between open and rename.
bool isStaleTempName(const std::string &Name) {
  static const char Marker[] = ".ppa.tmp.";
  size_t At = Name.rfind(Marker);
  if (At == std::string::npos)
    return false;
  std::string PidText = Name.substr(At + sizeof(Marker) - 1);
  if (PidText.empty() ||
      PidText.find_first_not_of("0123456789") != std::string::npos)
    return false;
  errno = 0;
  long Pid = std::strtol(PidText.c_str(), nullptr, 10);
  if (errno != 0 || Pid <= 0)
    return false;
  return ::kill(static_cast<pid_t>(Pid), 0) != 0 && errno == ESRCH;
}

} // namespace

size_t profdb::sweepStaleTemps(const std::string &Dir) {
  size_t Swept = 0;
  DIR *D = opendir(Dir.c_str());
  if (!D)
    return Swept;
  std::vector<std::string> Stale;
  while (dirent *Entry = readdir(D))
    if (isStaleTempName(Entry->d_name))
      Stale.push_back(Dir + "/" + Entry->d_name);
  closedir(D);
  for (const std::string &Path : Stale)
    if (::unlink(Path.c_str()) == 0)
      ++Swept;
  return Swept;
}

std::vector<std::string> profdb::listArtifactFiles(const std::string &Dir) {
  // Opening a repository is the natural sweep point for temps orphaned by
  // writers that died between open and rename: without it, a fleet of
  // crashing uploaders grows the directory without bound.
  sweepStaleTemps(Dir);
  std::vector<std::string> Paths;
  DIR *D = opendir(Dir.c_str());
  if (!D)
    return Paths;
  while (dirent *Entry = readdir(D)) {
    std::string Name = Entry->d_name;
    if (Name.size() > 4 && Name.compare(Name.size() - 4, 4, ".ppa") == 0)
      Paths.push_back(Dir + "/" + Name);
  }
  closedir(D);
  std::sort(Paths.begin(), Paths.end());
  return Paths;
}
