//===- profdb/Store.cpp - Artifact files on disk ------------------------------===//

#include "profdb/Store.h"

#include "support/Format.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <dirent.h>
#include <fstream>
#include <sys/stat.h>
#include <unistd.h>

using namespace pp;
using namespace pp::profdb;

std::string profdb::artifactFileName(const std::string &Fingerprint) {
  return formatString("ppa-%016llx.ppa",
                      static_cast<unsigned long long>(fnv1a(Fingerprint)));
}

std::string profdb::profileOutDirFromEnv() {
  const char *Dir = std::getenv("PP_PROFILE_OUT");
  return Dir ? Dir : "";
}

bool profdb::writeArtifactFile(const std::string &Path, const Artifact &A,
                               std::string &Error) {
  size_t Slash = Path.find_last_of('/');
  if (Slash != std::string::npos && Slash != 0) {
    std::string Dir = Path.substr(0, Slash);
    if (mkdir(Dir.c_str(), 0755) != 0 && errno != EEXIST) {
      Error = "cannot create directory '" + Dir + "'";
      return false;
    }
  }

  std::vector<uint8_t> Bytes = encodeArtifact(A);
  // Write-to-temp + rename: a crash or concurrent writer never leaves a
  // torn file under the final name (identical inputs produce identical
  // bytes, so racing writers are harmless).
  std::string Temp = Path + ".tmp." + std::to_string(getpid());
  {
    std::ofstream Out(Temp, std::ios::binary | std::ios::trunc);
    if (!Out) {
      Error = "cannot open '" + Temp + "' for writing";
      return false;
    }
    Out.write(reinterpret_cast<const char *>(Bytes.data()),
              static_cast<std::streamsize>(Bytes.size()));
    if (!Out) {
      Out.close();
      std::remove(Temp.c_str());
      Error = "short write to '" + Temp + "'";
      return false;
    }
  }
  if (std::rename(Temp.c_str(), Path.c_str()) != 0) {
    std::remove(Temp.c_str());
    Error = "cannot rename '" + Temp + "' to '" + Path + "'";
    return false;
  }
  return true;
}

DecodeStatus profdb::readArtifactFile(const std::string &Path,
                                      Artifact &Out) {
  struct stat St;
  if (::stat(Path.c_str(), &St) != 0 || !S_ISREG(St.st_mode))
    return DecodeStatus::Unreadable;
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return DecodeStatus::Unreadable;
  std::vector<uint8_t> Bytes((std::istreambuf_iterator<char>(In)),
                             std::istreambuf_iterator<char>());
  if (In.bad())
    return DecodeStatus::Unreadable;
  return decodeArtifact(Bytes, Out);
}

std::vector<std::string> profdb::listArtifactFiles(const std::string &Dir) {
  std::vector<std::string> Paths;
  DIR *D = opendir(Dir.c_str());
  if (!D)
    return Paths;
  while (dirent *Entry = readdir(D)) {
    std::string Name = Entry->d_name;
    if (Name.size() > 4 && Name.compare(Name.size() - 4, 4, ".ppa") == 0)
      Paths.push_back(Dir + "/" + Name);
  }
  closedir(D);
  std::sort(Paths.begin(), Paths.end());
  return Paths;
}
