//===- profdb/Artifact.cpp - Persistent profile artifacts ---------------------===//

#include "profdb/Artifact.h"

#include "cct/ImageIO.h"
#include "obs/Obs.h"
#include "ir/Module.h"
#include "support/BinaryIO.h"
#include "support/Checksum.h"

using namespace pp;
using namespace pp::profdb;

namespace {

constexpr uint64_t Magic = 0x50504442; // "PPDB"
// 2: acquisition joined the schema; 3: k-BL (schema K, per-function KIters)
constexpr uint64_t Version = 3;

// Minimum encoded sizes (bytes) of variable-count elements, used to bound
// counts before allocation.
constexpr size_t MinFunctionBytes = 8;               // name length
constexpr size_t MinPathProfileBytes = 8 + 1 + 8 + 1 + 8 + 8;
constexpr size_t MinPathEntryBytes = 4 * 8;

} // namespace

const char *profdb::decodeStatusName(DecodeStatus Status) {
  switch (Status) {
  case DecodeStatus::Ok:
    return "ok";
  case DecodeStatus::Unreadable:
    return "unreadable";
  case DecodeStatus::TooShort:
    return "too-short";
  case DecodeStatus::BadMagic:
    return "bad-magic";
  case DecodeStatus::BadVersion:
    return "bad-version";
  case DecodeStatus::BadChecksum:
    return "bad-checksum";
  case DecodeStatus::Truncated:
    return "truncated";
  case DecodeStatus::Malformed:
    return "malformed";
  case DecodeStatus::TrailingBytes:
    return "trailing-bytes";
  }
  return "unknown";
}

uint64_t profdb::fnv1a(const std::string &Text) {
  uint64_t Hash = 0xcbf29ce484222325ULL;
  for (char C : Text) {
    Hash ^= static_cast<uint8_t>(C);
    Hash *= 0x100000001b3ULL;
  }
  return Hash;
}

std::vector<uint8_t> profdb::encodeArtifact(const Artifact &A) {
  ByteWriter W;
  W.u64(Magic);
  W.u64(Version);
  W.str(A.Fingerprint);
  W.u64(A.SourceHash);
  W.u64(A.RunCount);
  W.str(A.Workload);
  W.u64(A.Scale);
  W.str(A.Schema.Mode);
  W.str(A.Schema.Pic0);
  W.str(A.Schema.Pic1);
  W.str(A.Schema.Acquisition);
  W.u64(A.Schema.K);
  W.u64(A.ExecutedInsts);

  W.u64(hw::NumEvents);
  for (uint64_t Total : A.Totals)
    W.u64(Total);

  W.u64(A.Functions.size());
  for (const std::string &Name : A.Functions)
    W.str(Name);

  W.u64(A.PathProfiles.size());
  for (const prof::FunctionPathProfile &Profile : A.PathProfiles) {
    W.u64(Profile.FuncId);
    W.u8(Profile.HasProfile ? 1 : 0);
    W.u64(Profile.NumPaths);
    W.u8(Profile.Hashed ? 1 : 0);
    W.u64(Profile.KIters);
    W.u64(Profile.Paths.size());
    for (const prof::PathEntry &Entry : Profile.Paths) {
      W.u64(Entry.PathSum);
      W.u64(Entry.Freq);
      W.u64(Entry.Metric0);
      W.u64(Entry.Metric1);
    }
  }

  W.u8(A.Tree ? 1 : 0);
  if (A.Tree)
    cct::writeTreeImage(W, A.Tree->image());

  // Integrity trailer over everything above.
  uint32_t Crc = crc32(W.Bytes.data(), W.Bytes.size());
  for (unsigned Index = 0; Index != 4; ++Index)
    W.u8(static_cast<uint8_t>(Crc >> (8 * Index)));
  obs::add(obs::Counter::ProfDbBytesEncoded, W.Bytes.size());
  return std::move(W.Bytes);
}

DecodeStatus profdb::decodeArtifact(const std::vector<uint8_t> &Bytes,
                                    Artifact &Out) {
  obs::add(obs::Counter::ProfDbBytesDecoded, Bytes.size());
  // Fixed header (magic + version + fingerprint length) plus CRC trailer.
  if (Bytes.size() < 3 * 8 + 4)
    return DecodeStatus::TooShort;

  // Identify the format before checksumming, so a foreign or
  // future-versioned file reports its real problem, not a CRC error.
  ByteReader Header(Bytes.data(), Bytes.size());
  uint64_t FileMagic, FileVersion;
  (void)Header.u64(FileMagic);
  (void)Header.u64(FileVersion);
  if (FileMagic != Magic)
    return DecodeStatus::BadMagic;
  // Version 1 predates the acquisition schema field (those artifacts are
  // all exact) and version 2 predates k-BL (all classic k=1); both decode
  // with the defaults.
  if (FileVersion != Version && FileVersion != 1 && FileVersion != 2)
    return DecodeStatus::BadVersion;

  size_t PayloadSize = Bytes.size() - 4;
  uint32_t Stored = 0;
  for (unsigned Index = 0; Index != 4; ++Index)
    Stored |= uint32_t(Bytes[PayloadSize + Index]) << (8 * Index);
  if (crc32(Bytes.data(), PayloadSize) != Stored)
    return DecodeStatus::BadChecksum;

  ByteReader R(Bytes.data(), PayloadSize);
  uint64_t Skip;
  (void)R.u64(Skip); // magic, validated above
  (void)R.u64(Skip); // version, validated above

  if (!R.str(Out.Fingerprint) || !R.u64(Out.SourceHash) ||
      !R.u64(Out.RunCount) || !R.str(Out.Workload) || !R.u64(Out.Scale) ||
      !R.str(Out.Schema.Mode) || !R.str(Out.Schema.Pic0) ||
      !R.str(Out.Schema.Pic1))
    return DecodeStatus::Truncated;
  Out.Schema.Acquisition = "exact";
  if (FileVersion >= 2 && !R.str(Out.Schema.Acquisition))
    return DecodeStatus::Truncated;
  Out.Schema.K = 1;
  if (FileVersion >= 3) {
    uint64_t K;
    if (!R.u64(K))
      return DecodeStatus::Truncated;
    if (K == 0)
      return DecodeStatus::Malformed;
    Out.Schema.K = static_cast<unsigned>(K);
  }
  if (!R.u64(Out.ExecutedInsts))
    return DecodeStatus::Truncated;

  uint64_t NumTotals;
  if (!R.u64(NumTotals))
    return DecodeStatus::Truncated;
  if (NumTotals != hw::NumEvents)
    return DecodeStatus::Malformed;
  for (uint64_t &Total : Out.Totals)
    if (!R.u64(Total))
      return DecodeStatus::Truncated;

  uint64_t NumFunctions;
  if (!R.count(NumFunctions, MinFunctionBytes))
    return DecodeStatus::Truncated;
  Out.Functions.resize(NumFunctions);
  for (std::string &Name : Out.Functions)
    if (!R.str(Name))
      return DecodeStatus::Truncated;

  uint64_t NumPathProfiles;
  if (!R.count(NumPathProfiles, MinPathProfileBytes))
    return DecodeStatus::Truncated;
  Out.PathProfiles.resize(NumPathProfiles);
  for (prof::FunctionPathProfile &Profile : Out.PathProfiles) {
    uint64_t FuncId, NumEntries;
    uint8_t HasProfile, Hashed;
    if (!R.u64(FuncId) || !R.u8(HasProfile) || !R.u64(Profile.NumPaths) ||
        !R.u8(Hashed))
      return DecodeStatus::Truncated;
    Profile.KIters = 1;
    if (FileVersion >= 3) {
      uint64_t KIters;
      if (!R.u64(KIters))
        return DecodeStatus::Truncated;
      if (KIters == 0)
        return DecodeStatus::Malformed;
      Profile.KIters = static_cast<unsigned>(KIters);
    }
    if (!R.count(NumEntries, MinPathEntryBytes))
      return DecodeStatus::Truncated;
    Profile.FuncId = static_cast<unsigned>(FuncId);
    Profile.HasProfile = HasProfile != 0;
    Profile.Hashed = Hashed != 0;
    Profile.Paths.resize(NumEntries);
    for (prof::PathEntry &Entry : Profile.Paths)
      if (!R.u64(Entry.PathSum) || !R.u64(Entry.Freq) ||
          !R.u64(Entry.Metric0) || !R.u64(Entry.Metric1))
        return DecodeStatus::Truncated;
  }

  uint8_t HasTree;
  if (!R.u8(HasTree))
    return DecodeStatus::Truncated;
  Out.Tree = nullptr;
  if (HasTree) {
    cct::TreeImage Image;
    switch (cct::readTreeImage(R, Image)) {
    case cct::ImageDecodeStatus::Ok:
      break;
    case cct::ImageDecodeStatus::Truncated:
      return DecodeStatus::Truncated;
    case cct::ImageDecodeStatus::Malformed:
      return DecodeStatus::Malformed;
    }
    Out.Tree = cct::CallingContextTree::fromImage(Image);
    if (!Out.Tree)
      return DecodeStatus::Malformed;
  }
  return R.atEnd() ? DecodeStatus::Ok : DecodeStatus::TrailingBytes;
}

Artifact profdb::artifactFromOutcome(const prof::RunOutcome &Outcome,
                                     const ir::Module &M,
                                     const std::string &Fingerprint,
                                     const std::string &Workload,
                                     uint64_t Scale,
                                     const prof::ProfileConfig &Config,
                                     const std::string &Acquisition) {
  Artifact A;
  A.Fingerprint = Fingerprint;
  A.SourceHash = fnv1a(Fingerprint);
  A.RunCount = 1;
  A.Workload = Workload;
  A.Scale = Scale;
  A.Schema.Mode = prof::modeName(Config.M);
  A.Schema.Pic0 = hw::eventName(Config.Pic0);
  A.Schema.Pic1 = hw::eventName(Config.Pic1);
  A.Schema.Acquisition = Acquisition;
  A.Schema.K = Config.K;
  A.ExecutedInsts = Outcome.Result.ExecutedInsts;
  A.Totals = Outcome.Totals;
  A.Functions.reserve(M.numFunctions());
  for (size_t Id = 0; Id != M.numFunctions(); ++Id)
    A.Functions.push_back(M.function(Id)->name());
  A.PathProfiles = Outcome.PathProfiles;
  if (Outcome.Tree)
    A.Tree = cct::CallingContextTree::fromImage(Outcome.Tree->image());
  return A;
}

Artifact profdb::cloneArtifact(const Artifact &A) {
  Artifact Copy;
  Copy.Fingerprint = A.Fingerprint;
  Copy.SourceHash = A.SourceHash;
  Copy.RunCount = A.RunCount;
  Copy.Workload = A.Workload;
  Copy.Scale = A.Scale;
  Copy.Schema = A.Schema;
  Copy.ExecutedInsts = A.ExecutedInsts;
  Copy.Totals = A.Totals;
  Copy.Functions = A.Functions;
  Copy.PathProfiles = A.PathProfiles;
  if (A.Tree)
    Copy.Tree = cct::CallingContextTree::fromImage(A.Tree->image());
  return Copy;
}
