//===- profdb/Report.cpp - Textual reports over artifacts ---------------------===//

#include "profdb/Report.h"

#include "support/Format.h"
#include "support/TableWriter.h"

#include <algorithm>
#include <map>

using namespace pp;
using namespace pp::profdb;

namespace {

std::string functionName(const std::vector<std::string> &Functions,
                         unsigned FuncId) {
  return FuncId < Functions.size() ? Functions[FuncId]
                                   : "func" + std::to_string(FuncId);
}

struct PathRow {
  unsigned FuncId = 0;
  uint64_t PathSum = 0;
  uint64_t Freq = 0;
  uint64_t Pic0 = 0;
  uint64_t Pic1 = 0;
  /// The owning function's effective k (the fallback ladder can leave it
  /// below the artifact's requested Schema.K).
  unsigned KIters = 1;
};

std::vector<PathRow> flattenPaths(const Artifact &A) {
  std::vector<PathRow> Rows;
  for (const prof::FunctionPathProfile &Profile : A.PathProfiles) {
    if (!Profile.HasProfile)
      continue;
    for (const prof::PathEntry &Entry : Profile.Paths)
      Rows.push_back({Profile.FuncId, Entry.PathSum, Entry.Freq,
                      Entry.Metric0, Entry.Metric1, Profile.KIters});
  }
  return Rows;
}

void sortHottest(std::vector<PathRow> &Rows) {
  std::stable_sort(Rows.begin(), Rows.end(),
                   [](const PathRow &X, const PathRow &Y) {
                     if (X.Pic1 != Y.Pic1)
                       return X.Pic1 > Y.Pic1;
                     if (X.Pic0 != Y.Pic0)
                       return X.Pic0 > Y.Pic0;
                     if (X.FuncId != Y.FuncId)
                       return X.FuncId < Y.FuncId;
                     return X.PathSum < Y.PathSum;
                   });
}

} // namespace

std::string profdb::reportHeader(const Artifact &A) {
  // The k tag only appears for k > 1 so classic artifacts keep their
  // golden-locked header bytes.
  std::string KTag =
      A.Schema.K > 1 ? formatString(", k=%u", A.Schema.K) : std::string();
  return formatString(
      "== %s (scale %llu, %s%s, PIC0=%s, PIC1=%s, runs=%llu) ==\n",
      A.Workload.c_str(), static_cast<unsigned long long>(A.Scale),
      A.Schema.Mode.c_str(), KTag.c_str(), A.Schema.Pic0.c_str(),
      A.Schema.Pic1.c_str(), static_cast<unsigned long long>(A.RunCount));
}

std::string profdb::reportTopPaths(const Artifact &A, size_t Limit) {
  std::string Out = reportHeader(A);
  std::vector<PathRow> Rows = flattenPaths(A);
  if (Rows.empty())
    return Out + "no path profiles in this artifact\n";
  uint64_t TotalPic1 = 0;
  for (const PathRow &Row : Rows)
    TotalPic1 += Row.Pic1;
  sortHottest(Rows);
  if (Rows.size() > Limit)
    Rows.resize(Limit);

  TableWriter Table;
  // k-BL artifacts label the sums as window sums and expose each
  // function's effective k; classic artifacts keep their exact layout.
  bool ShowK = A.Schema.K > 1;
  if (ShowK)
    Table.setHeader(
        {"Function", "k", "WindowSum", "Freq", "PIC0", "PIC1", "PIC1%"});
  else
    Table.setHeader({"Function", "PathSum", "Freq", "PIC0", "PIC1", "PIC1%"});
  for (const PathRow &Row : Rows) {
    std::vector<std::string> Cells{functionName(A.Functions, Row.FuncId)};
    if (ShowK)
      Cells.push_back(std::to_string(Row.KIters));
    Cells.insert(Cells.end(),
                 {std::to_string(Row.PathSum), std::to_string(Row.Freq),
                  std::to_string(Row.Pic0), std::to_string(Row.Pic1),
                  formatPercent(double(Row.Pic1), double(TotalPic1))});
    Table.addRow(std::move(Cells));
  }
  return Out + Table.render();
}

std::string profdb::reportTopProcs(const Artifact &A, size_t Limit) {
  std::string Out = reportHeader(A);
  std::vector<PathRow> Paths = flattenPaths(A);
  if (Paths.empty())
    return Out + "no path profiles in this artifact\n";

  std::map<unsigned, PathRow> ByProc;
  uint64_t TotalPic1 = 0;
  std::map<unsigned, uint64_t> PathsOf;
  for (const PathRow &Row : Paths) {
    PathRow &Into = ByProc[Row.FuncId];
    Into.FuncId = Row.FuncId;
    Into.Freq += Row.Freq;
    Into.Pic0 += Row.Pic0;
    Into.Pic1 += Row.Pic1;
    ++PathsOf[Row.FuncId];
    TotalPic1 += Row.Pic1;
  }
  std::vector<PathRow> Rows;
  for (const auto &[FuncId, Row] : ByProc) {
    (void)FuncId;
    Rows.push_back(Row);
  }
  sortHottest(Rows);
  if (Rows.size() > Limit)
    Rows.resize(Limit);

  TableWriter Table;
  Table.setHeader({"Function", "Paths", "Freq", "PIC0", "PIC1", "PIC1%"});
  for (const PathRow &Row : Rows)
    Table.addRow({functionName(A.Functions, Row.FuncId),
                  std::to_string(PathsOf[Row.FuncId]),
                  std::to_string(Row.Freq), std::to_string(Row.Pic0),
                  std::to_string(Row.Pic1),
                  formatPercent(double(Row.Pic1), double(TotalPic1))});
  return Out + Table.render();
}

std::string profdb::reportCctStats(const Artifact &A) {
  std::string Out = reportHeader(A);
  if (!A.Tree)
    return Out + "no calling context tree in this artifact\n";
  cct::CctStats Stats = A.Tree->computeStats();

  TableWriter Table;
  Table.setHeader({"Stat", "Value"});
  Table.addRow({"Nodes", std::to_string(Stats.NumRecords)});
  Table.addRow({"Heap bytes", std::to_string(Stats.TotalBytes)});
  Table.addRow({"Avg node bytes", formatString("%.1f", Stats.AvgNodeBytes)});
  Table.addRow(
      {"Avg out-degree", formatString("%.1f", Stats.AvgOutDegree)});
  Table.addRow({"Avg leaf depth", formatString("%.1f", Stats.AvgLeafDepth)});
  Table.addRow({"Max depth", std::to_string(Stats.MaxDepth)});
  Table.addRow({"Max replication",
                formatString("%llu (%s)",
                             static_cast<unsigned long long>(
                                 Stats.MaxReplication),
                             Stats.MaxReplicationProc == cct::RootProcId
                                 ? "-"
                                 : functionName(A.Functions,
                                                Stats.MaxReplicationProc)
                                       .c_str())});
  Table.addRow({"Call-site slots", std::to_string(Stats.TotalSlots)});
  Table.addRow({"Used slots", std::to_string(Stats.UsedSlots)});
  Table.addRow({"Backedge slots", std::to_string(Stats.BackedgeSlots)});
  return Out + Table.render();
}

bool profdb::parseCollapsedCounter(const std::string &Text,
                                   CollapsedCounter &Out) {
  if (Text == "calls")
    Out = CollapsedCounter::Calls;
  else if (Text == "pic0")
    Out = CollapsedCounter::Pic0;
  else if (Text == "pic1")
    Out = CollapsedCounter::Pic1;
  else
    return false;
  return true;
}

std::string profdb::collapsedStacks(const Artifact &A,
                                    CollapsedCounter Counter,
                                    std::string &Error) {
  if (!A.Tree) {
    Error = "artifact has no calling context tree";
    return "";
  }
  std::vector<std::string> Lines;
  for (const auto &R : A.Tree->records()) {
    if (R->procId() == cct::RootProcId)
      continue;
    uint64_t Weight = 0;
    switch (Counter) {
    case CollapsedCounter::Calls:
      Weight = R->Metrics.empty() ? 0 : R->Metrics[0];
      break;
    case CollapsedCounter::Pic0:
      Weight = R->Metrics.size() > 1 ? R->Metrics[1] : 0;
      for (const auto &[Sum, Cell] : R->PathTable)
        (void)Sum, Weight += Cell.Metric0;
      break;
    case CollapsedCounter::Pic1:
      Weight = R->Metrics.size() > 2 ? R->Metrics[2] : 0;
      for (const auto &[Sum, Cell] : R->PathTable)
        (void)Sum, Weight += Cell.Metric1;
      break;
    }
    if (Weight == 0)
      continue;
    std::vector<const cct::CallRecord *> Chain;
    for (const cct::CallRecord *Walk = R.get();
         Walk && Walk->procId() != cct::RootProcId; Walk = Walk->parent())
      Chain.push_back(Walk);
    std::string Line;
    for (auto It = Chain.rbegin(); It != Chain.rend(); ++It) {
      if (!Line.empty())
        Line += ';';
      Line += functionName(A.Functions, (*It)->procId());
    }
    Line += ' ';
    Line += std::to_string(Weight);
    Lines.push_back(std::move(Line));
  }
  std::sort(Lines.begin(), Lines.end());
  std::string Out;
  for (const std::string &Line : Lines) {
    Out += Line;
    Out += '\n';
  }
  return Out;
}

std::string profdb::renderDiff(const ArtifactDiff &Diff, size_t Limit) {
  std::string Out;
  Out += formatString("Per-path deltas (B - A): %zu changed\n\n",
                      Diff.Paths.size());
  if (!Diff.Paths.empty()) {
    TableWriter Table;
    Table.setHeader({"Func", "PathSum", "dFreq", "dPIC0", "dPIC1"});
    size_t Shown = std::min(Limit, Diff.Paths.size());
    for (size_t Index = 0; Index != Shown; ++Index) {
      const PathDelta &D = Diff.Paths[Index];
      Table.addRow({std::to_string(D.FuncId), std::to_string(D.PathSum),
                    formatString("%+lld", static_cast<long long>(D.DFreq)),
                    formatString("%+lld", static_cast<long long>(D.DPic0)),
                    formatString("%+lld", static_cast<long long>(D.DPic1))});
    }
    Out += Table.render();
  }
  Out += formatString("\nPer-context deltas (B - A): %zu changed\n\n",
                      Diff.Contexts.size());
  if (!Diff.Contexts.empty()) {
    TableWriter Table;
    Table.setHeader({"Context", "dCalls", "dPIC0", "dPIC1"});
    size_t Shown = std::min(Limit, Diff.Contexts.size());
    for (size_t Index = 0; Index != Shown; ++Index) {
      const ContextDelta &D = Diff.Contexts[Index];
      Table.addRow({D.Context,
                    formatString("%+lld", static_cast<long long>(D.DCalls)),
                    formatString("%+lld", static_cast<long long>(D.DPic0)),
                    formatString("%+lld", static_cast<long long>(D.DPic1))});
    }
    Out += Table.render();
  }
  return Out;
}
