//===- profdb/Merge.cpp - Structural profile merging --------------------------===//

#include "profdb/Merge.h"

#include "obs/Obs.h"
#include "support/Env.h"
#include "support/Format.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <thread>

using namespace pp;
using namespace pp::profdb;

unsigned profdb::mergeThreadsFromEnv() {
  uint64_t Value;
  if (envUint64("PP_PROFDB_THREADS", "pp-profdb", Value) == EnvParse::Ok)
    return static_cast<unsigned>(
        std::max<uint64_t>(1, std::min<uint64_t>(Value, 64)));
  if (envFlag("PP_DRIVER_SERIAL", "pp-profdb"))
    return 1;
  // The driver fallback parses just as strictly: a malformed
  // PP_DRIVER_THREADS used to be skipped silently here while the
  // scheduler warned about the same variable — now both warn.
  if (envUint64("PP_DRIVER_THREADS", "pp-profdb", Value) == EnvParse::Ok)
    return static_cast<unsigned>(
        std::max<uint64_t>(1, std::min<uint64_t>(Value, 64)));
  unsigned Hardware = std::thread::hardware_concurrency();
  return std::clamp(Hardware ? Hardware : 4u, 4u, 16u);
}

namespace {

/// The merge-time view of one CCT vertex: children keyed by (slot,
/// callee), backedges by (slot, callee, ancestor distance). std::map keys
/// make every traversal canonical regardless of the order the shards
/// presented their records in.
struct MNode {
  cct::ProcId Proc = cct::RootProcId;
  std::vector<uint64_t> Metrics;
  std::map<uint64_t, cct::PathCell> Cells;

  struct MSlot {
    uint8_t Kind = 0; // CallRecord::Slot::Kind
    std::map<cct::ProcId, std::unique_ptr<MNode>> Children;
    /// Recursion backedges: callee -> ancestor distance from the owner
    /// (0 = the owner itself, 1 = its parent, ...).
    std::map<cct::ProcId, unsigned> Backedges;
  };
  std::vector<MSlot> Slots;
};

constexpr uint8_t KindUnresolved =
    static_cast<uint8_t>(cct::CallRecord::Slot::Kind::Unresolved);

/// Lifts \p Image into the merge structure. Rejects images whose edges do
/// not form a tree-with-backedges (the only shape enter() can build).
bool buildMergedTree(const cct::TreeImage &Image, std::unique_ptr<MNode> &Out,
                     std::string &Error) {
  const auto &Records = Image.Records;
  if (Records.empty() || Records[0].Proc != cct::RootProcId ||
      Records[0].Parent != -1) {
    Error = "tree has no root record";
    return false;
  }
  size_t N = Records.size();
  std::vector<std::unique_ptr<MNode>> Owned(N);
  std::vector<MNode *> Node(N);
  std::vector<unsigned> Depth(N, 0);
  for (size_t Index = 0; Index != N; ++Index) {
    Owned[Index] = std::make_unique<MNode>();
    Node[Index] = Owned[Index].get();
    Node[Index]->Proc = Records[Index].Proc;
    Node[Index]->Metrics = Records[Index].Metrics;
    if (Node[Index]->Metrics.size() != Image.NumMetrics) {
      Error = "record metric vector disagrees with the tree's metric count";
      return false;
    }
    for (const auto &[Sum, Cell] : Records[Index].PathCells)
      Node[Index]->Cells[Sum] = Cell;
    Node[Index]->Slots.resize(Records[Index].Slots.size());
    if (Index == 0)
      continue;
    int64_t Parent = Records[Index].Parent;
    if (Parent < 0 || static_cast<size_t>(Parent) >= Index) {
      Error = "record parents do not precede their children";
      return false;
    }
    Depth[Index] = Depth[static_cast<size_t>(Parent)] + 1;
  }

  std::vector<uint8_t> Placed(N, 0);
  for (size_t Index = 0; Index != N; ++Index) {
    const cct::TreeImage::Record &Rec = Records[Index];
    for (size_t S = 0; S != Rec.Slots.size(); ++S) {
      MNode::MSlot &Slot = Node[Index]->Slots[S];
      Slot.Kind = Rec.Slots[S].Kind;
      for (const auto &[Target, CellAddr] : Rec.Slots[S].Targets) {
        (void)CellAddr; // list-cell addresses are reassigned canonically
        if (Target >= N) {
          Error = "slot target out of range";
          return false;
        }
        cct::ProcId Callee = Records[Target].Proc;
        if (Target != Index &&
            Records[Target].Parent == static_cast<int64_t>(Index)) {
          // Tree edge: this slot owns the child.
          if (Placed[Target]) {
            Error = "record claimed as a child by two slots";
            return false;
          }
          if (Slot.Children.count(Callee) || Slot.Backedges.count(Callee)) {
            Error = "duplicate callee in one call-site slot";
            return false;
          }
          Slot.Children[Callee] = std::move(Owned[Target]);
          Placed[Target] = 1;
        } else {
          // Must be a recursion backedge: the target is the owner or one
          // of its ancestors.
          size_t Walk = Index;
          for (;;) {
            if (Walk == Target)
              break;
            if (Records[Walk].Parent < 0) {
              Error = "slot target is neither a child nor an ancestor";
              return false;
            }
            Walk = static_cast<size_t>(Records[Walk].Parent);
          }
          unsigned Distance = Depth[Index] - Depth[Target];
          auto It = Slot.Backedges.find(Callee);
          if (Slot.Children.count(Callee) ||
              (It != Slot.Backedges.end() && It->second != Distance)) {
            Error = "conflicting backedge for one call-site slot";
            return false;
          }
          Slot.Backedges[Callee] = Distance;
        }
      }
    }
  }
  for (size_t Index = 1; Index != N; ++Index)
    if (!Placed[Index]) {
      Error = "orphan record: no slot of its parent reaches it";
      return false;
    }
  Out = std::move(Owned[0]);
  return true;
}

/// Sums \p B into \p A, uniting structure. \p B is consumed (unmatched
/// subtrees are moved, not copied).
bool overlay(MNode &A, MNode &B, std::string &Error) {
  if (A.Proc != B.Proc) {
    Error = "procedure mismatch between matched records";
    return false;
  }
  if (A.Metrics.size() != B.Metrics.size()) {
    Error = "metric vector length mismatch between matched records";
    return false;
  }
  for (size_t Index = 0; Index != A.Metrics.size(); ++Index)
    A.Metrics[Index] += B.Metrics[Index];
  for (const auto &[Sum, Cell] : B.Cells) {
    cct::PathCell &Into = A.Cells[Sum];
    Into.Freq += Cell.Freq;
    Into.Metric0 += Cell.Metric0;
    Into.Metric1 += Cell.Metric1;
  }
  if (A.Slots.size() != B.Slots.size()) {
    Error = "call-site count mismatch between matched records";
    return false;
  }
  for (size_t S = 0; S != A.Slots.size(); ++S) {
    MNode::MSlot &SA = A.Slots[S];
    MNode::MSlot &SB = B.Slots[S];
    if (SA.Kind == KindUnresolved)
      SA.Kind = SB.Kind;
    else if (SB.Kind != KindUnresolved && SB.Kind != SA.Kind) {
      Error = "call-site slot kind conflict (direct vs indirect)";
      return false;
    }
    for (auto &[Callee, Child] : SB.Children) {
      if (SA.Backedges.count(Callee)) {
        Error = "callee is a child in one profile, recursion in the other";
        return false;
      }
      auto It = SA.Children.find(Callee);
      if (It == SA.Children.end())
        SA.Children[Callee] = std::move(Child);
      else if (!overlay(*It->second, *Child, Error))
        return false;
    }
    for (const auto &[Callee, Distance] : SB.Backedges) {
      if (SA.Children.count(Callee)) {
        Error = "callee is a child in one profile, recursion in the other";
        return false;
      }
      auto It = SA.Backedges.find(Callee);
      if (It == SA.Backedges.end())
        SA.Backedges[Callee] = Distance;
      else if (It->second != Distance) {
        Error = "recursion backedge height mismatch";
        return false;
      }
    }
  }
  return true;
}

/// Replays the merged structure through the real CCT allocator in a
/// canonical order — node, then its slots in index order, each slot's
/// callees in ascending ProcId order — so addresses, heap usage, and list
/// layout depend only on the merged structure.
bool emitNode(cct::CallingContextTree &Tree, cct::CallRecord *R, MNode &N,
              std::string &Error) {
  R->Metrics = N.Metrics;
  for (const auto &[Sum, Cell] : N.Cells)
    R->PathTable.emplace(Sum, Cell);
  for (size_t S = 0; S != N.Slots.size(); ++S) {
    MNode::MSlot &Slot = N.Slots[S];
    auto Child = Slot.Children.begin();
    auto Back = Slot.Backedges.begin();
    // Interleave children and backedges in one ascending callee order.
    while (Child != Slot.Children.end() || Back != Slot.Backedges.end()) {
      bool TakeChild =
          Back == Slot.Backedges.end() ||
          (Child != Slot.Children.end() && Child->first < Back->first);
      if (TakeChild) {
        cct::CallRecord *C =
            Tree.enter(R, static_cast<unsigned>(S), Child->first);
        if (C->parent() != R) {
          Error = "merged child callee collides with an ancestor";
          return false;
        }
        if (!emitNode(Tree, C, *Child->second, Error))
          return false;
        ++Child;
      } else {
        cct::CallRecord *C =
            Tree.enter(R, static_cast<unsigned>(S), Back->first);
        if (C->depth() + Back->second != R->depth()) {
          Error = "recursion backedge resolved to an unexpected ancestor";
          return false;
        }
        ++Back;
      }
    }
  }
  return true;
}

bool mergeTrees(const cct::CallingContextTree &A,
                const cct::CallingContextTree &B,
                std::unique_ptr<cct::CallingContextTree> &Out,
                std::string &Error) {
  cct::TreeImage ImageA = A.image();
  cct::TreeImage ImageB = B.image();
  if (ImageA.NumMetrics != ImageB.NumMetrics ||
      ImageA.PathCellBytes != ImageB.PathCellBytes ||
      ImageA.HashThreshold != ImageB.HashThreshold) {
    Error = "CCT geometry mismatch (metrics / path-cell stride / hash "
            "threshold)";
    return false;
  }
  if (ImageA.Procs.size() != ImageB.Procs.size()) {
    Error = "CCT procedure tables differ";
    return false;
  }
  for (size_t Index = 0; Index != ImageA.Procs.size(); ++Index) {
    const cct::ProcDesc &PA = ImageA.Procs[Index];
    const cct::ProcDesc &PB = ImageB.Procs[Index];
    if (PA.Name != PB.Name || PA.NumSites != PB.NumSites ||
        PA.SiteIsIndirect != PB.SiteIsIndirect ||
        PA.NumPaths != PB.NumPaths) {
      Error = "CCT procedure tables differ";
      return false;
    }
  }

  std::unique_ptr<MNode> Merged, Other;
  if (!buildMergedTree(ImageA, Merged, Error) ||
      !buildMergedTree(ImageB, Other, Error) ||
      !overlay(*Merged, *Other, Error))
    return false;

  auto Tree = std::make_unique<cct::CallingContextTree>(
      ImageA.Procs, ImageA.NumMetrics, nullptr, ImageA.PathCellBytes,
      ImageA.HashThreshold);
  if (!emitNode(*Tree, Tree->root(), *Merged, Error))
    return false;
  Out = std::move(Tree);
  return true;
}

bool mergePathProfiles(const std::vector<prof::FunctionPathProfile> &A,
                       const std::vector<prof::FunctionPathProfile> &B,
                       std::vector<prof::FunctionPathProfile> &Out,
                       std::string &Error) {
  if (A.size() != B.size()) {
    Error = "path-profile function counts differ";
    return false;
  }
  Out.clear();
  Out.reserve(A.size());
  for (size_t Index = 0; Index != A.size(); ++Index) {
    const prof::FunctionPathProfile &PA = A[Index];
    const prof::FunctionPathProfile &PB = B[Index];
    // Cross-k sums share numeric values but name different paths; refuse
    // with the specific reason before the generic shape complaint.
    if (PA.KIters != PB.KIters) {
      Error = formatString(
          "cannot merge path profiles across k for function %u: "
          "k=%u vs k=%u",
          PA.FuncId, PA.KIters, PB.KIters);
      return false;
    }
    if (PA.FuncId != PB.FuncId || PA.HasProfile != PB.HasProfile ||
        PA.NumPaths != PB.NumPaths || PA.Hashed != PB.Hashed) {
      Error = formatString("path-profile shape differs for function %u",
                           PA.FuncId);
      return false;
    }
    prof::FunctionPathProfile Merged;
    Merged.FuncId = PA.FuncId;
    Merged.HasProfile = PA.HasProfile;
    Merged.NumPaths = PA.NumPaths;
    Merged.Hashed = PA.Hashed;
    Merged.KIters = PA.KIters;
    // Both sides are sorted by PathSum; a merge walk keeps the output
    // sorted and sums entries present in both.
    size_t IA = 0, IB = 0;
    while (IA != PA.Paths.size() || IB != PB.Paths.size()) {
      bool TakeA = IB == PB.Paths.size() ||
                   (IA != PA.Paths.size() &&
                    PA.Paths[IA].PathSum <= PB.Paths[IB].PathSum);
      bool TakeB = IA == PA.Paths.size() ||
                   (IB != PB.Paths.size() &&
                    PB.Paths[IB].PathSum <= PA.Paths[IA].PathSum);
      prof::PathEntry Entry;
      if (TakeA && TakeB) {
        Entry = PA.Paths[IA];
        Entry.Freq += PB.Paths[IB].Freq;
        Entry.Metric0 += PB.Paths[IB].Metric0;
        Entry.Metric1 += PB.Paths[IB].Metric1;
        ++IA, ++IB;
      } else if (TakeA) {
        Entry = PA.Paths[IA++];
      } else {
        Entry = PB.Paths[IB++];
      }
      Merged.Paths.push_back(Entry);
    }
    Out.push_back(std::move(Merged));
  }
  return true;
}

} // namespace

bool profdb::mergeArtifacts(const Artifact &A, const Artifact &B,
                            Artifact &Out, std::string &Error) {
  // A k mismatch is a schema mismatch too, but deserves its own message:
  // the artifacts may agree on every metric and still count incomparable
  // path spaces.
  if (A.Schema.K != B.Schema.K) {
    Error = formatString("cannot merge artifacts across k: k=%u vs k=%u",
                         A.Schema.K, B.Schema.K);
    return false;
  }
  if (A.Schema != B.Schema) {
    Error = formatString(
        "incompatible metric schemas: (%s, PIC0=%s, PIC1=%s, acq=%s) vs "
        "(%s, PIC0=%s, PIC1=%s, acq=%s)",
        A.Schema.Mode.c_str(), A.Schema.Pic0.c_str(), A.Schema.Pic1.c_str(),
        A.Schema.Acquisition.c_str(), B.Schema.Mode.c_str(),
        B.Schema.Pic0.c_str(), B.Schema.Pic1.c_str(),
        B.Schema.Acquisition.c_str());
    return false;
  }
  if (A.Workload != B.Workload || A.Scale != B.Scale) {
    Error = formatString("different programs: %s (scale %llu) vs %s "
                         "(scale %llu)",
                         A.Workload.c_str(),
                         static_cast<unsigned long long>(A.Scale),
                         B.Workload.c_str(),
                         static_cast<unsigned long long>(B.Scale));
    return false;
  }
  if (A.Functions != B.Functions) {
    Error = "function tables differ (artifacts come from different module "
            "builds)";
    return false;
  }
  if (static_cast<bool>(A.Tree) != static_cast<bool>(B.Tree)) {
    Error = "one artifact has a CCT and the other does not";
    return false;
  }

  Artifact Merged;
  Merged.RunCount = A.RunCount + B.RunCount;
  Merged.SourceHash = A.SourceHash ^ B.SourceHash;
  Merged.Fingerprint = formatString(
      "merged;v1;runs=%llu;src=%016llx",
      static_cast<unsigned long long>(Merged.RunCount),
      static_cast<unsigned long long>(Merged.SourceHash));
  Merged.Workload = A.Workload;
  Merged.Scale = A.Scale;
  Merged.Schema = A.Schema;
  Merged.ExecutedInsts = A.ExecutedInsts + B.ExecutedInsts;
  for (size_t Index = 0; Index != Merged.Totals.size(); ++Index)
    Merged.Totals[Index] = A.Totals[Index] + B.Totals[Index];
  Merged.Functions = A.Functions;
  if (!mergePathProfiles(A.PathProfiles, B.PathProfiles, Merged.PathProfiles,
                         Error))
    return false;
  if (A.Tree && !mergeTrees(*A.Tree, *B.Tree, Merged.Tree, Error))
    return false;
  Out = std::move(Merged);
  return true;
}

bool profdb::mergeAll(std::vector<Artifact> Shards, Artifact &Out,
                      std::string &Error, unsigned Threads) {
  if (Shards.empty()) {
    Error = "no artifacts to merge";
    return false;
  }
  unsigned Wave = 0;
  while (Shards.size() > 1) {
    size_t Pairs = Shards.size() / 2;
    // One span per reduction wave; work = runs folded this wave, which
    // depends only on the shard list, never on Threads.
    obs::SpanScope WaveSpan("profdb", "merge_wave",
                            "wave" + std::to_string(Wave++), 0, Pairs);
    uint64_t WaveRuns = 0;
    for (size_t Pair = 0; Pair != Pairs; ++Pair)
      WaveRuns += Shards[2 * Pair].RunCount + Shards[2 * Pair + 1].RunCount;
    WaveSpan.setWork(WaveRuns);
    obs::add(obs::Counter::ProfDbMerges, Pairs);
    std::vector<Artifact> Next(Pairs + Shards.size() % 2);
    std::vector<std::string> Errors(Pairs);
    std::vector<uint8_t> Failed(Pairs, 0);
    // The (2i, 2i+1) pairing is a function of position only; threads just
    // race through an index counter, so the reduction tree — and with it
    // the merged bytes — cannot depend on the schedule.
    std::atomic<size_t> NextPair{0};
    auto Work = [&] {
      for (;;) {
        size_t Pair = NextPair.fetch_add(1);
        if (Pair >= Pairs)
          return;
        if (!mergeArtifacts(Shards[2 * Pair], Shards[2 * Pair + 1],
                            Next[Pair], Errors[Pair]))
          Failed[Pair] = 1;
      }
    };
    unsigned Spawn = static_cast<unsigned>(
        std::min<size_t>(Threads > 0 ? Threads : 1, Pairs));
    if (Spawn <= 1) {
      Work();
    } else {
      std::vector<std::thread> Workers;
      Workers.reserve(Spawn);
      for (unsigned Index = 0; Index != Spawn; ++Index)
        Workers.emplace_back(Work);
      for (std::thread &Worker : Workers)
        Worker.join();
    }
    for (size_t Pair = 0; Pair != Pairs; ++Pair)
      if (Failed[Pair]) {
        Error = Errors[Pair];
        return false;
      }
    if (Shards.size() % 2)
      Next.back() = std::move(Shards.back());
    Shards = std::move(Next);
  }
  Out = std::move(Shards.front());
  return true;
}
