//===- profdb/Merge.h - Structural profile merging -------------*- C++ -*-===//
///
/// \file
/// Merging of profile artifacts: path profiles are summed entry-by-entry,
/// and CCTs are merged *structurally* — children matched by (call site,
/// callee), recursion backedges preserved by their ancestor distance,
/// metric vectors and per-path counters summed. The merged tree is
/// re-emitted canonically (deterministic DFS order through the real CCT
/// allocator), so merging the same artifact set in any order, with any
/// thread count, yields bit-identical bytes; MergeDeterminism tests pin
/// this associativity/commutativity.
///
/// Artifacts with incompatible metric schemas, workloads, or program
/// shapes are rejected with a descriptive error instead of producing a
/// silently meaningless sum.
///
/// mergeAll reduces N shards in O(log N) pairwise waves; the pairs of a
/// wave are independent and run on a small thread pool (PP_PROFDB_THREADS,
/// falling back to the driver's thread knobs). The pairing is fixed by
/// shard position, never by thread schedule, which is what keeps the
/// result thread-count-independent.
///
//===----------------------------------------------------------------------===//

#ifndef PP_PROFDB_MERGE_H
#define PP_PROFDB_MERGE_H

#include "profdb/Artifact.h"

#include <string>
#include <vector>

namespace pp {
namespace profdb {

/// Worker threads for mergeAll: PP_PROFDB_THREADS when set (0 means
/// serial), else the driver's PP_DRIVER_SERIAL / PP_DRIVER_THREADS
/// convention, else the hardware concurrency clamped to [4, 16]. Always
/// at least 1.
unsigned mergeThreadsFromEnv();

/// Merges \p A and \p B into \p Out. Returns false (and sets \p Error)
/// when the artifacts are incompatible or structurally inconsistent;
/// \p Out is unspecified then.
bool mergeArtifacts(const Artifact &A, const Artifact &B, Artifact &Out,
                    std::string &Error);

/// Reduces \p Shards to one artifact in O(log N) pairwise waves, the
/// pairs of each wave merged on up to \p Threads threads. The reduction
/// tree depends only on shard positions, so for a fixed input order the
/// bytes are identical under any thread count — and because each pair
/// merge is itself order-canonical, shuffled input orders agree too.
bool mergeAll(std::vector<Artifact> Shards, Artifact &Out, std::string &Error,
              unsigned Threads = 1);

} // namespace profdb
} // namespace pp

#endif // PP_PROFDB_MERGE_H
