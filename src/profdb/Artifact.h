//===- profdb/Artifact.h - Persistent profile artifacts --------*- C++ -*-===//
///
/// \file
/// The profile repository's unit of storage: one self-describing,
/// CRC32-trailed binary artifact bundling everything a run's profile
/// contains — the run's identity (RunKey fingerprint), the metric schema
/// (mode + PIC routing, so readers can refuse to mix incompatible
/// measurements), the hardware-event totals, the per-procedure Ball-Larus
/// path tables, and the full calling context tree. Unlike the driver's
/// run cache (a private memo, rebuilt at will), artifacts are durable
/// data meant to outlive the process, travel between machines, and be
/// merged, diffed, and queried by tools/pp-report.
///
/// Trust model: artifacts are untrusted input. The decoder is fully
/// bounds-checked in the OutcomeIO v2 style (remaining()-based length
/// checks, count caps before any allocation, CCT geometry ceilings) and
/// returns a typed DecodeStatus instead of crashing or silently loading
/// a corrupt file.
///
//===----------------------------------------------------------------------===//

#ifndef PP_PROFDB_ARTIFACT_H
#define PP_PROFDB_ARTIFACT_H

#include "cct/CallingContextTree.h"
#include "prof/Session.h"

#include <array>
#include <memory>
#include <string>
#include <vector>

namespace pp {
namespace ir {
class Module;
} // namespace ir

namespace profdb {

/// What the artifact's metrics mean. Two artifacts may only be merged or
/// diffed when their schemas are identical — summing D-cache misses into
/// branch mispredicts would silently corrupt both.
struct MetricSchema {
  /// prof::modeName of the run ("Flow and HW", "Context and Flow", ...).
  std::string Mode;
  /// hw::eventName routed to PIC0 / PIC1 ("Insts", "DC RdMiss", ...).
  std::string Pic0;
  std::string Pic1;
  /// prof::acquisitionName of the run ("exact"/"overflow"). Exact counts
  /// and sampled estimates must never be merged or diffed against each
  /// other, so acquisition is part of the schema, like the mode.
  std::string Acquisition = "exact";
  /// Requested k-BL iteration count of the run (1 = classic Ball-Larus).
  /// A k=2 window sum and a k=1 path sum occupy different id spaces, so k
  /// is part of the schema: cross-k artifacts refuse to merge or diff.
  unsigned K = 1;

  bool operator==(const MetricSchema &Other) const {
    return Mode == Other.Mode && Pic0 == Other.Pic0 && Pic1 == Other.Pic1 &&
           Acquisition == Other.Acquisition && K == Other.K;
  }
  bool operator!=(const MetricSchema &Other) const {
    return !(*this == Other);
  }
};

/// One stored profile: a single run's, or the merge of many.
struct Artifact {
  /// The RunKey fingerprint of the run, or a symmetric "merged;..."
  /// fingerprint for merged artifacts (see Merge.h).
  std::string Fingerprint;
  /// XOR of the FNV-1a hashes of the constituent runs' fingerprints —
  /// order-independent, so any merge order yields the same identity.
  uint64_t SourceHash = 0;
  /// Number of runs folded into this artifact (1 for a fresh one).
  uint64_t RunCount = 1;

  std::string Workload;
  uint64_t Scale = 1;
  MetricSchema Schema;

  /// Sum of executed instructions over the constituent runs.
  uint64_t ExecutedInsts = 0;
  /// Elementwise sums of the runs' ground-truth event totals.
  std::array<uint64_t, hw::NumEvents> Totals{};

  /// Function names, indexed by function id (the ids path profiles and
  /// CCT ProcIds refer to).
  std::vector<std::string> Functions;

  /// Flow-mode path profiles, indexed by function id.
  std::vector<prof::FunctionPathProfile> PathProfiles;

  /// The CCT (context modes); null otherwise.
  std::unique_ptr<cct::CallingContextTree> Tree;

  Artifact() = default;
  Artifact(Artifact &&) = default;
  Artifact &operator=(Artifact &&) = default;
};

/// Why an artifact failed to decode.
enum class DecodeStatus : unsigned {
  Ok = 0,
  /// The file cannot be opened or read at all.
  Unreadable,
  /// Too small to even hold the fixed header and CRC trailer.
  TooShort,
  BadMagic,
  BadVersion,
  /// The CRC32 trailer does not match the payload.
  BadChecksum,
  /// A length or count field exceeds the bytes remaining.
  Truncated,
  /// A field holds a structurally impossible value.
  Malformed,
  /// Valid payload followed by unexplained extra bytes.
  TrailingBytes,
};

/// Human-readable name for diagnostics.
const char *decodeStatusName(DecodeStatus Status);

/// FNV-1a hash of \p Text (the same function RunKey uses), for artifact
/// file names and merged-source identities.
uint64_t fnv1a(const std::string &Text);

/// Serialises \p A into the versioned, CRC32-trailed artifact format.
std::vector<uint8_t> encodeArtifact(const Artifact &A);

/// Decodes an artifact; on failure \p Out is unspecified and must be
/// discarded.
DecodeStatus decodeArtifact(const std::vector<uint8_t> &Bytes, Artifact &Out);

/// Packages a successful run's outcome as a fresh artifact. \p M is the
/// module the run executed (source of the function names); \p Fingerprint
/// is the run's RunKey fingerprint.
Artifact artifactFromOutcome(const prof::RunOutcome &Outcome,
                             const ir::Module &M,
                             const std::string &Fingerprint,
                             const std::string &Workload, uint64_t Scale,
                             const prof::ProfileConfig &Config,
                             const std::string &Acquisition = "exact");

/// Deep copy (the CCT makes Artifact move-only).
Artifact cloneArtifact(const Artifact &A);

} // namespace profdb
} // namespace pp

#endif // PP_PROFDB_ARTIFACT_H
