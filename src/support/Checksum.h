//===- support/Checksum.h - CRC32 checksums --------------------*- C++ -*-===//
///
/// \file
/// CRC32 (IEEE 802.3, reflected polynomial 0xEDB88320) for integrity
/// trailers on persisted binary data. The on-disk run cache appends a CRC
/// of the whole payload so a reader can reject torn, truncated, or
/// bit-rotted files before parsing a single length field.
///
//===----------------------------------------------------------------------===//

#ifndef PP_SUPPORT_CHECKSUM_H
#define PP_SUPPORT_CHECKSUM_H

#include <cstddef>
#include <cstdint>

namespace pp {

/// Returns the CRC32 of \p Size bytes at \p Data. \p Seed allows
/// incremental computation: pass a previous result to continue it over a
/// subsequent chunk; 0 for a fresh checksum.
uint32_t crc32(const uint8_t *Data, size_t Size, uint32_t Seed = 0);

} // namespace pp

#endif // PP_SUPPORT_CHECKSUM_H
