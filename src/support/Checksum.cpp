//===- support/Checksum.cpp - CRC32 checksums --------------------------------===//

#include "support/Checksum.h"

#include <array>

using namespace pp;

namespace {

std::array<uint32_t, 256> makeCrcTable() {
  std::array<uint32_t, 256> Table{};
  for (uint32_t Index = 0; Index != 256; ++Index) {
    uint32_t Value = Index;
    for (unsigned Bit = 0; Bit != 8; ++Bit)
      Value = (Value >> 1) ^ ((Value & 1) ? 0xedb88320u : 0);
    Table[Index] = Value;
  }
  return Table;
}

} // namespace

uint32_t pp::crc32(const uint8_t *Data, size_t Size, uint32_t Seed) {
  static const std::array<uint32_t, 256> Table = makeCrcTable();
  uint32_t Crc = ~Seed;
  for (size_t Index = 0; Index != Size; ++Index)
    Crc = (Crc >> 8) ^ Table[(Crc ^ Data[Index]) & 0xff];
  return ~Crc;
}
