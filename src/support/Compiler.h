//===- support/Compiler.h - Compiler portability macros --------*- C++ -*-===//
///
/// \file
/// Small portability macros for compiler-specific attributes.
///
//===----------------------------------------------------------------------===//

#ifndef PP_SUPPORT_COMPILER_H
#define PP_SUPPORT_COMPILER_H

/// Forces inlining of per-simulated-instruction helpers (cache probe,
/// counter tick, memory access). These run several times per simulated
/// instruction; an out-of-line call there is the single largest cost in
/// the whole simulator, and -O2 alone does not reliably inline them.
#if defined(__GNUC__) || defined(__clang__)
#define PP_ALWAYS_INLINE inline __attribute__((always_inline))
#else
#define PP_ALWAYS_INLINE inline
#endif

#endif // PP_SUPPORT_COMPILER_H
