//===- support/BinaryIO.h - Bounds-checked binary (de)serialisation -*- C++ -*-===//
///
/// \file
/// The little-endian byte writer and the bounds-checked reader shared by
/// every persisted binary format in the repository (the driver's on-disk
/// run cache, the profdb profile artifacts). The reader treats its input
/// as untrusted: every length and count is validated against the bytes
/// actually *remaining* — never with `Cursor + Size > total` arithmetic,
/// which wraps for Size near UINT64_MAX and lets a corrupt file read out
/// of bounds.
///
//===----------------------------------------------------------------------===//

#ifndef PP_SUPPORT_BINARYIO_H
#define PP_SUPPORT_BINARYIO_H

#include <cstdint>
#include <string>
#include <vector>

namespace pp {

/// Append-only little-endian encoder.
class ByteWriter {
public:
  std::vector<uint8_t> Bytes;

  void u8(uint8_t Value) { Bytes.push_back(Value); }
  void u64(uint64_t Value) {
    for (unsigned Index = 0; Index != 8; ++Index)
      Bytes.push_back(static_cast<uint8_t>(Value >> (8 * Index)));
  }
  void str(const std::string &Value) {
    u64(Value.size());
    Bytes.insert(Bytes.end(), Value.begin(), Value.end());
  }
  void bytes(const std::vector<uint8_t> &Value) {
    u64(Value.size());
    Bytes.insert(Bytes.end(), Value.begin(), Value.end());
  }
};

/// Bounds-checked reads over an untrusted byte span.
class ByteReader {
public:
  ByteReader(const uint8_t *Data, size_t Size) : Data(Data), Size(Size) {}

  size_t remaining() const { return Size - Cursor; }
  bool atEnd() const { return Cursor == Size; }

  bool u8(uint8_t &Value) {
    if (remaining() < 1)
      return false;
    Value = Data[Cursor++];
    return true;
  }
  bool u64(uint64_t &Value) {
    if (remaining() < 8)
      return false;
    Value = 0;
    for (unsigned Index = 0; Index != 8; ++Index)
      Value |= uint64_t(Data[Cursor + Index]) << (8 * Index);
    Cursor += 8;
    return true;
  }
  bool str(std::string &Value) {
    uint64_t Length;
    if (!u64(Length) || Length > remaining())
      return false;
    Value.assign(reinterpret_cast<const char *>(Data) + Cursor,
                 static_cast<size_t>(Length));
    Cursor += static_cast<size_t>(Length);
    return true;
  }
  bool bytes(std::vector<uint8_t> &Value) {
    uint64_t Length;
    if (!u64(Length) || Length > remaining())
      return false;
    Value.assign(Data + Cursor, Data + Cursor + Length);
    Cursor += static_cast<size_t>(Length);
    return true;
  }
  /// Reads an element count that precedes \p MinElemBytes-byte-minimum
  /// elements. A count no honest writer could have produced — more
  /// elements than the remaining bytes can encode — fails here, before
  /// any resize(), so a corrupt count of 10^18 cannot trigger a
  /// pathological allocation.
  bool count(uint64_t &Value, size_t MinElemBytes) {
    if (!u64(Value))
      return false;
    return Value <= remaining() / MinElemBytes;
  }

private:
  const uint8_t *Data;
  size_t Size;
  size_t Cursor = 0;
};

} // namespace pp

#endif // PP_SUPPORT_BINARYIO_H
