//===- support/Prng.h - Deterministic PRNG ---------------------*- C++ -*-===//
///
/// \file
/// A deterministic xoshiro256** pseudo-random number generator. Workload
/// generators use it so every experiment is bit-for-bit reproducible across
/// runs and platforms (std::mt19937 distributions are not portable).
///
//===----------------------------------------------------------------------===//

#ifndef PP_SUPPORT_PRNG_H
#define PP_SUPPORT_PRNG_H

#include <cassert>
#include <cstdint>

namespace pp {

/// xoshiro256** 1.0 by Blackman and Vigna (public domain reference
/// implementation), seeded with splitmix64 so any 64-bit seed is usable.
class Prng {
public:
  explicit Prng(uint64_t Seed) {
    // splitmix64 expansion of the seed into the four state words.
    uint64_t X = Seed;
    for (uint64_t &Word : State) {
      X += 0x9e3779b97f4a7c15ULL;
      uint64_t Z = X;
      Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
      Word = Z ^ (Z >> 31);
    }
  }

  /// Returns the next 64 uniformly distributed bits.
  uint64_t next() {
    uint64_t Result = rotl(State[1] * 5, 7) * 9;
    uint64_t T = State[1] << 17;
    State[2] ^= State[0];
    State[3] ^= State[1];
    State[1] ^= State[2];
    State[0] ^= State[3];
    State[2] ^= T;
    State[3] = rotl(State[3], 45);
    return Result;
  }

  /// Returns a value uniformly distributed in [0, Bound). \p Bound must be
  /// nonzero. Uses rejection sampling to avoid modulo bias.
  uint64_t nextBelow(uint64_t Bound) {
    assert(Bound != 0 && "bound must be nonzero");
    uint64_t Threshold = (0 - Bound) % Bound;
    for (;;) {
      uint64_t Value = next();
      if (Value >= Threshold)
        return Value % Bound;
    }
  }

  /// Returns a value uniformly distributed in [Low, High] inclusive.
  int64_t nextInRange(int64_t Low, int64_t High) {
    assert(Low <= High && "empty range");
    return Low + static_cast<int64_t>(
                     nextBelow(static_cast<uint64_t>(High - Low) + 1));
  }

  /// Returns a double uniformly distributed in [0, 1).
  double nextDouble() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Returns true with probability \p P (clamped to [0, 1]).
  bool nextBool(double P) { return nextDouble() < P; }

private:
  static uint64_t rotl(uint64_t X, int K) {
    return (X << K) | (X >> (64 - K));
  }

  uint64_t State[4];
};

} // namespace pp

#endif // PP_SUPPORT_PRNG_H
