//===- support/TableWriter.cpp - Aligned text tables ----------------------===//

#include "support/TableWriter.h"

#include <algorithm>
#include <cassert>

using namespace pp;

void TableWriter::setHeader(std::vector<std::string> Names) {
  assert(Rows.empty() && "header must be set before rows are added");
  Header = std::move(Names);
}

void TableWriter::addRow(std::vector<std::string> Cells) {
  assert(Cells.size() == Header.size() && "row width must match header");
  assert(!Cells.empty() && "empty rows encode separators; use addSeparator");
  Rows.push_back(std::move(Cells));
  ++NumDataRows;
}

void TableWriter::addSeparator() { Rows.emplace_back(); }

std::string TableWriter::render() const {
  std::vector<size_t> Widths(Header.size(), 0);
  for (size_t I = 0; I != Header.size(); ++I)
    Widths[I] = Header[I].size();
  for (const auto &Row : Rows)
    for (size_t I = 0; I != Row.size(); ++I)
      Widths[I] = std::max(Widths[I], Row[I].size());

  size_t TotalWidth = 0;
  for (size_t W : Widths)
    TotalWidth += W + 2;

  auto RenderRow = [&](const std::vector<std::string> &Cells) {
    std::string Line;
    for (size_t I = 0; I != Cells.size(); ++I) {
      const std::string &Cell = Cells[I];
      assert(Widths[I] >= Cell.size());
      size_t Pad = Widths[I] - Cell.size();
      if (I == 0) {
        // First column: left aligned.
        Line += Cell;
        Line.append(Pad + 2, ' ');
      } else {
        Line.append(Pad, ' ');
        Line += Cell;
        Line.append(2, ' ');
      }
    }
    // Trim trailing spaces.
    while (!Line.empty() && Line.back() == ' ')
      Line.pop_back();
    return Line + "\n";
  };

  std::string Out = RenderRow(Header);
  Out += std::string(TotalWidth, '-') + "\n";
  for (const auto &Row : Rows) {
    if (Row.empty())
      Out += std::string(TotalWidth, '-') + "\n";
    else
      Out += RenderRow(Row);
  }
  return Out;
}
