//===- support/TableWriter.h - Aligned text tables -------------*- C++ -*-===//
///
/// \file
/// Renders aligned plain-text tables for the experiment reports. Columns are
/// sized to their widest cell; the first column is left-aligned and all other
/// columns right-aligned, matching the layout of the paper's tables.
///
//===----------------------------------------------------------------------===//

#ifndef PP_SUPPORT_TABLEWRITER_H
#define PP_SUPPORT_TABLEWRITER_H

#include <string>
#include <vector>

namespace pp {

/// Accumulates rows of string cells and renders them as an aligned table.
class TableWriter {
public:
  /// Sets the column headers. Must be called before adding rows.
  void setHeader(std::vector<std::string> Names);

  /// Appends one data row; the cell count must match the header.
  void addRow(std::vector<std::string> Cells);

  /// Appends a horizontal separator line (rendered as dashes).
  void addSeparator();

  /// Renders the table into a string, one line per row.
  std::string render() const;

  /// Number of data rows added so far (separators excluded).
  size_t numRows() const { return NumDataRows; }

private:
  std::vector<std::string> Header;
  // A row with no cells encodes a separator.
  std::vector<std::vector<std::string>> Rows;
  size_t NumDataRows = 0;
};

} // namespace pp

#endif // PP_SUPPORT_TABLEWRITER_H
