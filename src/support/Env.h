//===- support/Env.h - Strict environment-knob parsing ---------*- C++ -*-===//
///
/// \file
/// The one place numeric environment knobs are read. Every knob goes
/// through the strict parseUint64 (whole string must be digits), so a
/// typo like PP_DRIVER_THREADS=max or PP_FAULT_READ_FLIP=banana warns on
/// stderr and falls back to the caller's default instead of silently
/// parsing as 0 — which for thread counts means "serial" and for fault
/// seams means "disarmed", both wrong things to do quietly.
///
//===----------------------------------------------------------------------===//

#ifndef PP_SUPPORT_ENV_H
#define PP_SUPPORT_ENV_H

#include <cstdint>

namespace pp {

/// What reading a numeric environment variable found.
enum class EnvParse {
  Unset,     ///< not set (or set to the empty string)
  Ok,        ///< parsed strictly; \p Out holds the value
  Malformed, ///< set but not a pure decimal number; a warning was printed
};

/// Reads \p Name as a strict unsigned decimal. On success \p Out holds
/// the value; a malformed value warns on stderr as
/// "<Tool>: warning: ignoring non-numeric <Name>='<value>'" and leaves
/// \p Out untouched.
EnvParse envUint64(const char *Name, const char *Tool, uint64_t &Out);

/// Reads \p Name as a strict unsigned decimal, falling back to
/// \p Default when unset; a malformed value warns on stderr (including
/// the default being kept) and returns \p Default.
uint64_t envUint64Or(const char *Name, const char *Tool, uint64_t Default);

/// Reads \p Name as a strict boolean knob: only "0" and "1" are
/// accepted. Unset (or empty) returns \p Default; any other value —
/// "true", "yes", "10" — warns on stderr as
/// "<Tool>: warning: ignoring non-boolean <Name>='<value>' (want 0 or 1)"
/// and returns \p Default, matching the strict-numeric discipline of
/// envUint64.
bool envBoolOr(const char *Name, const char *Tool, bool Default);

/// envBoolOr with a false default (the repo's flag convention:
/// PP_DRIVER_SERIAL=1, PP_DRIVER_STATS=1).
bool envFlag(const char *Name, const char *Tool = "pp");

} // namespace pp

#endif // PP_SUPPORT_ENV_H
