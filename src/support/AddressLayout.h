//===- support/AddressLayout.h - Simulated address space map ---*- C++ -*-===//
///
/// \file
/// Fixed region bases of the simulated address space. Globals get addresses
/// eagerly when declared (so instrumentation-added profile tables have known
/// addresses at edit time, like EEL patching absolute addresses); code is
/// laid out by the loader; the heap, the profiling runtime's stack, and the
/// CCT heap are bump regions.
///
//===----------------------------------------------------------------------===//

#ifndef PP_SUPPORT_ADDRESSLAYOUT_H
#define PP_SUPPORT_ADDRESSLAYOUT_H

#include <cstdint>

namespace pp {
namespace layout {

/// Base of the code segment (instructions are 4 bytes, as on SPARC).
inline constexpr uint64_t CodeBase = 0x0000'1000;
/// Base of the statically allocated globals (includes profile counter
/// tables added by the instrumenter).
inline constexpr uint64_t GlobalBase = 0x1000'0000;
/// Base of the program heap served by the Alloc instruction.
inline constexpr uint64_t HeapBase = 0x4000'0000;
/// Base of the CCT heap ("a heap in a memory-mapped region", §4.2).
inline constexpr uint64_t CctHeapBase = 0x5000'0000;
/// Base of the profiling runtime's shadow stack (saved gCSP words, §4.2).
inline constexpr uint64_t ProfStackBase = 0x6000'0000;
/// Bytes per simulated instruction.
inline constexpr uint64_t BytesPerInst = 4;

} // namespace layout
} // namespace pp

#endif // PP_SUPPORT_ADDRESSLAYOUT_H
