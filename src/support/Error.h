//===- support/Error.h - Fatal error reporting ----------------*- C++ -*-===//
///
/// \file
/// Fatal-error reporting for unrecoverable conditions. The library is built
/// without exceptions; invariant violations use assert, and unrecoverable
/// environment errors (bad input files, exhausted simulated memory) call
/// pp::reportFatalError, which prints a message and aborts.
///
//===----------------------------------------------------------------------===//

#ifndef PP_SUPPORT_ERROR_H
#define PP_SUPPORT_ERROR_H

#include <string>

namespace pp {

/// Prints "pathprof fatal error: <Message>" to stderr and aborts.
[[noreturn]] void reportFatalError(const std::string &Message);

/// Marks a point in the code that must be unreachable if program invariants
/// hold. Prints \p Message and aborts.
[[noreturn]] void unreachable(const char *Message);

} // namespace pp

#endif // PP_SUPPORT_ERROR_H
