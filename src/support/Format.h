//===- support/Format.h - printf-style string formatting ------*- C++ -*-===//
///
/// \file
/// Small printf-style formatting helpers used by reports and diagnostics.
///
//===----------------------------------------------------------------------===//

#ifndef PP_SUPPORT_FORMAT_H
#define PP_SUPPORT_FORMAT_H

#include <cstdint>
#include <string>

namespace pp {

/// Returns the printf-style formatting of the arguments as a std::string.
std::string formatString(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Formats \p Value with engineering notation similar to the paper's tables
/// (e.g. 1.1e7 for 11,000,000; plain digits below 100,000).
std::string formatEng(double Value);

/// Formats \p Numerator / \p Denominator as a percentage with one decimal
/// ("42.0%"); returns "0.0%" when the denominator is zero.
std::string formatPercent(double Numerator, double Denominator);

/// Formats a ratio with two decimals ("1.23"); "-" when the base is zero.
std::string formatRatio(double Value, double Base);

/// Strictly parses \p Text as an unsigned decimal integer: the whole string
/// must be digits (no sign, no whitespace, no trailing characters) and the
/// value must fit in 64 bits. Returns false otherwise, leaving \p Out
/// untouched. Environment knobs use this so a typo degrades to the default
/// with a warning instead of silently parsing as 0.
bool parseUint64(const char *Text, uint64_t &Out);

} // namespace pp

#endif // PP_SUPPORT_FORMAT_H
