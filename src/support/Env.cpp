//===- support/Env.cpp - Strict environment-knob parsing ----------------------===//

#include "support/Env.h"

#include "support/Format.h"

#include <cstdio>
#include <cstdlib>

using namespace pp;

EnvParse pp::envUint64(const char *Name, const char *Tool, uint64_t &Out) {
  const char *Text = std::getenv(Name);
  if (!Text || !*Text)
    return EnvParse::Unset;
  if (parseUint64(Text, Out))
    return EnvParse::Ok;
  std::fprintf(stderr, "%s: warning: ignoring non-numeric %s='%s'\n", Tool,
               Name, Text);
  return EnvParse::Malformed;
}

uint64_t pp::envUint64Or(const char *Name, const char *Tool,
                         uint64_t Default) {
  uint64_t Value;
  switch (envUint64(Name, Tool, Value)) {
  case EnvParse::Ok:
    return Value;
  case EnvParse::Unset:
  case EnvParse::Malformed:
    return Default;
  }
  return Default;
}

bool pp::envBoolOr(const char *Name, const char *Tool, bool Default) {
  const char *Text = std::getenv(Name);
  if (!Text || !*Text)
    return Default;
  if (!Text[1]) {
    if (Text[0] == '0')
      return false;
    if (Text[0] == '1')
      return true;
  }
  // PP_OBS=true once read as unset while PP_DRIVER_SERIAL=10 read as
  // set — both silently. Boolean knobs are as strict as numeric ones.
  std::fprintf(stderr,
               "%s: warning: ignoring non-boolean %s='%s' (want 0 or 1)\n",
               Tool, Name, Text);
  return Default;
}

bool pp::envFlag(const char *Name, const char *Tool) {
  return envBoolOr(Name, Tool, false);
}
