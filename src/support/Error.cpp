//===- support/Error.cpp - Fatal error reporting -------------------------===//

#include "support/Error.h"

#include <cstdio>
#include <cstdlib>

using namespace pp;

void pp::reportFatalError(const std::string &Message) {
  std::fprintf(stderr, "pathprof fatal error: %s\n", Message.c_str());
  std::abort();
}

void pp::unreachable(const char *Message) {
  std::fprintf(stderr, "pathprof unreachable: %s\n", Message);
  std::abort();
}
