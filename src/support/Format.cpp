//===- support/Format.cpp - printf-style string formatting ---------------===//

#include "support/Format.h"

#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <vector>

using namespace pp;

std::string pp::formatString(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  va_list ArgsCopy;
  va_copy(ArgsCopy, Args);
  int Needed = std::vsnprintf(nullptr, 0, Fmt, Args);
  va_end(Args);
  if (Needed < 0) {
    va_end(ArgsCopy);
    return std::string();
  }
  std::vector<char> Buffer(static_cast<size_t>(Needed) + 1);
  std::vsnprintf(Buffer.data(), Buffer.size(), Fmt, ArgsCopy);
  va_end(ArgsCopy);
  return std::string(Buffer.data(), static_cast<size_t>(Needed));
}

std::string pp::formatEng(double Value) {
  if (Value < 0)
    return "-" + formatEng(-Value);
  if (Value < 100000.0)
    return formatString("%.0f", Value);
  int Exponent = static_cast<int>(std::floor(std::log10(Value)));
  double Mantissa = Value / std::pow(10.0, Exponent);
  return formatString("%.1fe%d", Mantissa, Exponent);
}

std::string pp::formatPercent(double Numerator, double Denominator) {
  if (Denominator == 0.0)
    return "0.0%";
  return formatString("%.1f%%", 100.0 * Numerator / Denominator);
}

std::string pp::formatRatio(double Value, double Base) {
  if (Base == 0.0)
    return "-";
  return formatString("%.2f", Value / Base);
}

bool pp::parseUint64(const char *Text, uint64_t &Out) {
  if (!Text || !*Text)
    return false;
  uint64_t Value = 0;
  for (const char *P = Text; *P; ++P) {
    if (*P < '0' || *P > '9')
      return false;
    unsigned Digit = static_cast<unsigned>(*P - '0');
    if (Value > (UINT64_MAX - Digit) / 10)
      return false; // overflow
    Value = Value * 10 + Digit;
  }
  Out = Value;
  return true;
}
