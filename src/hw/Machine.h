//===- hw/Machine.h - The simulated processor ------------------*- C++ -*-===//
///
/// \file
/// The simulated UltraSPARC-like machine: memory image, L1 D- and I-caches,
/// branch predictor, store buffer, performance counters, and the cycle
/// accounting that ties them together. The VM drives it one instruction at
/// a time; the profiling runtime charges it the footprint of runtime
/// pseudo-op expansions so instrumentation perturbs the machine exactly as
/// inline code would.
///
//===----------------------------------------------------------------------===//

#ifndef PP_HW_MACHINE_H
#define PP_HW_MACHINE_H

#include "hw/BranchPredictor.h"
#include "hw/CacheSim.h"
#include "hw/CostModel.h"
#include "hw/MemoryImage.h"
#include "hw/PerfCounters.h"
#include "support/Compiler.h"

namespace pp {
namespace hw {

/// Full machine configuration.
struct MachineConfig {
  CostModel Cost;
  CacheConfig DCache = dcacheDefault();
  CacheConfig ICache = icacheDefault();
};

/// Event-accurate machine model.
class Machine {
public:
  explicit Machine(const MachineConfig &Config = MachineConfig())
      : Cost(Config.Cost), DCache(Config.DCache), ICache(Config.ICache) {}

  // --- Program-visible accesses (counted) --------------------------------

  /// Fetch + issue of one instruction: I-cache access, one instruction, one
  /// base cycle.
  PP_ALWAYS_INLINE void beginInst(uint64_t Addr) {
    Counters.count(Event::Insts, 1);
    Counters.count(Event::Cycles, 1);
    if (ICache.access(Addr, 4)) {
      Counters.count(Event::ICacheMiss, 1);
      Counters.count(Event::Cycles, Cost.ICacheMissPenalty);
    }
  }

  /// Counted data read. A line-straddling access that misses both touched
  /// lines counts (and pays for) both misses.
  PP_ALWAYS_INLINE uint64_t load(uint64_t Addr, unsigned Size) {
    if (unsigned MissedLines = DCache.access(Addr, Size)) {
      Counters.count(Event::DCacheReadMiss, MissedLines);
      Counters.count(Event::Cycles, MissedLines * Cost.DCacheMissPenalty);
    }
    return Mem.peek(Addr, Size);
  }

  /// Counted data write, including store-buffer modelling.
  PP_ALWAYS_INLINE void store(uint64_t Addr, unsigned Size, uint64_t Value) {
    if (unsigned MissedLines = DCache.access(Addr, Size)) {
      Counters.count(Event::DCacheWriteMiss, MissedLines);
      Counters.count(Event::Cycles, MissedLines * Cost.DCacheMissPenalty);
    }
    noteStoreIssued();
    Mem.poke(Addr, Size, Value);
  }

  /// Counted data access without data movement: cache, store-buffer, and
  /// event effects only. The profiling runtime uses it to charge the
  /// machine the memory traffic of a pseudo-op's inline expansion (the
  /// data itself lives in host-side structures).
  void touchData(uint64_t Addr, unsigned Size, bool IsWrite) {
    if (unsigned MissedLines = DCache.access(Addr, Size)) {
      Counters.count(IsWrite ? Event::DCacheWriteMiss
                             : Event::DCacheReadMiss,
                     MissedLines);
      Counters.count(Event::Cycles, MissedLines * Cost.DCacheMissPenalty);
    }
    if (IsWrite)
      noteStoreIssued();
  }

  /// Conditional-branch resolution.
  void condBranch(uint64_t Addr, bool Taken) {
    if (!Predictor.predictConditional(Addr, Taken))
      stall(Event::MispredictStall, Cost.MispredictPenalty);
  }

  /// Indirect transfer resolution (switch, indirect call).
  void indirectBranch(uint64_t Addr, uint64_t Target) {
    if (!Predictor.predictIndirect(Addr, Target))
      stall(Event::MispredictStall, Cost.MispredictPenalty);
  }

  /// Adds \p Cycles stall cycles attributed to \p Kind.
  void stall(Event Kind, uint64_t Cycles) {
    Counters.count(Kind, Cycles);
    Counters.count(Event::Cycles, Cycles);
  }

  /// Adds plain execution cycles (multi-cycle ops such as divide).
  void addCycles(uint64_t Cycles) { Counters.count(Event::Cycles, Cycles); }

  /// Charges \p N instructions' base cost without an I-cache access; used
  /// by the profiling runtime for pseudo-op expansions whose code footprint
  /// is charged separately.
  void chargeInsts(uint64_t N) {
    Counters.count(Event::Insts, N);
    Counters.count(Event::Cycles, N);
  }

  /// Current cycle count.
  uint64_t now() const { return Counters.total(Event::Cycles); }

  // --- Uncounted accesses (loader / result readback) ----------------------

  uint64_t peek(uint64_t Addr, unsigned Size) const {
    return Mem.peek(Addr, Size);
  }
  void poke(uint64_t Addr, unsigned Size, uint64_t Value) {
    Mem.poke(Addr, Size, Value);
  }
  MemoryImage &memory() { return Mem; }
  const MemoryImage &memory() const { return Mem; }

  PerfCounters &counters() { return Counters; }
  const PerfCounters &counters() const { return Counters; }
  const CostModel &cost() const { return Cost; }

private:
  void noteStoreIssued() {
    uint64_t Now = now();
    if (StoreDrainCycle < Now)
      StoreDrainCycle = Now;
    StoreDrainCycle += Cost.StoreDrainCycles;
    uint64_t BufferedCycles = StoreDrainCycle - Now;
    uint64_t Capacity = Cost.StoreBufferDepth * Cost.StoreDrainCycles;
    if (BufferedCycles > Capacity)
      stall(Event::StoreBufferStall, BufferedCycles - Capacity);
  }

  CostModel Cost;
  MemoryImage Mem;
  CacheSim DCache;
  CacheSim ICache;
  BranchPredictor Predictor;
  PerfCounters Counters;
  uint64_t StoreDrainCycle = 0;
};

} // namespace hw
} // namespace pp

#endif // PP_HW_MACHINE_H
