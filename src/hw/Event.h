//===- hw/Event.h - Hardware event kinds -----------------------*- C++ -*-===//
///
/// \file
/// The hardware performance events the simulated machine counts. The set
/// mirrors the UltraSPARC metrics in the paper's Table 2: cycles,
/// instructions, D-cache read/write misses, I-cache misses, branch
/// mispredict stalls, store-buffer stalls, and FP stalls.
///
//===----------------------------------------------------------------------===//

#ifndef PP_HW_EVENT_H
#define PP_HW_EVENT_H

#include <cstdint>

namespace pp {
namespace hw {

/// One countable hardware event. Stall kinds count stall *cycles*, matching
/// the paper's "Mispredict Stalls" / "Store Buffer Stalls" / "FP Stalls".
enum class Event : uint8_t {
  Cycles,
  Insts,
  DCacheReadMiss,
  DCacheWriteMiss,
  ICacheMiss,
  MispredictStall,
  StoreBufferStall,
  FpStall,
  NumEvents
};

inline constexpr unsigned NumEvents =
    static_cast<unsigned>(Event::NumEvents);

/// Short column label for reports ("Cycles", "DC RdMiss", ...).
const char *eventName(Event E);

} // namespace hw
} // namespace pp

#endif // PP_HW_EVENT_H
