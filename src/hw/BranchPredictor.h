//===- hw/BranchPredictor.h - Direction + target prediction ----*- C++ -*-===//
///
/// \file
/// A 2-bit saturating-counter direction predictor for conditional branches
/// plus a one-entry-per-slot branch target buffer for indirect transfers
/// (switch tables and indirect calls). Mispredictions cost a fixed number
/// of stall cycles in the cost model.
///
//===----------------------------------------------------------------------===//

#ifndef PP_HW_BRANCHPREDICTOR_H
#define PP_HW_BRANCHPREDICTOR_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pp {
namespace hw {

/// Direction and indirect-target prediction state.
class BranchPredictor {
public:
  explicit BranchPredictor(unsigned TableBits = 12)
      : Mask((1u << TableBits) - 1),
        Counters(size_t(1) << TableBits, 1 /* weakly not-taken */),
        Targets(size_t(1) << TableBits, 0) {}

  /// Records the outcome of the conditional branch at \p Addr; returns true
  /// when the prediction was correct.
  bool predictConditional(uint64_t Addr, bool Taken) {
    uint8_t &Counter = Counters[index(Addr)];
    bool Predicted = Counter >= 2;
    if (Taken) {
      if (Counter < 3)
        ++Counter;
    } else if (Counter > 0) {
      --Counter;
    }
    return Predicted == Taken;
  }

  /// Records the outcome of the indirect transfer at \p Addr; returns true
  /// when the cached target matched.
  bool predictIndirect(uint64_t Addr, uint64_t Target) {
    uint64_t &Cached = Targets[index(Addr)];
    bool Correct = Cached == Target;
    Cached = Target;
    return Correct;
  }

  void reset() {
    Counters.assign(Counters.size(), 1);
    Targets.assign(Targets.size(), 0);
  }

private:
  size_t index(uint64_t Addr) const { return (Addr >> 2) & Mask; }

  uint64_t Mask;
  std::vector<uint8_t> Counters;
  std::vector<uint64_t> Targets;
};

} // namespace hw
} // namespace pp

#endif // PP_HW_BRANCHPREDICTOR_H
