//===- hw/Event.cpp - Hardware event kinds ----------------------------------===//

#include "hw/Event.h"

#include <cassert>

using namespace pp;
using namespace pp::hw;

const char *hw::eventName(Event E) {
  switch (E) {
  case Event::Cycles:
    return "Cycles";
  case Event::Insts:
    return "Insts";
  case Event::DCacheReadMiss:
    return "DC RdMiss";
  case Event::DCacheWriteMiss:
    return "DC WrMiss";
  case Event::ICacheMiss:
    return "IC Miss";
  case Event::MispredictStall:
    return "Mispredict";
  case Event::StoreBufferStall:
    return "StoreBuf";
  case Event::FpStall:
    return "FP Stall";
  case Event::NumEvents:
    break;
  }
  assert(false && "invalid event");
  return "<invalid>";
}
