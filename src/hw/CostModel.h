//===- hw/CostModel.h - Microarchitectural cost constants ------*- C++ -*-===//
///
/// \file
/// Latency and penalty constants of the simulated processor. The shape (not
/// the absolute values) drives the reproduction: long-latency events that
/// cannot overlap produce the stalls the paper attributes to paths.
///
//===----------------------------------------------------------------------===//

#ifndef PP_HW_COSTMODEL_H
#define PP_HW_COSTMODEL_H

#include <cstdint>

namespace pp {
namespace hw {

/// Cycle costs charged by the machine.
struct CostModel {
  /// Extra cycles on an L1 D-cache miss (hit in the off-chip cache).
  uint64_t DCacheMissPenalty = 6;
  /// Extra cycles on an L1 I-cache miss.
  uint64_t ICacheMissPenalty = 6;
  /// Stall cycles on a branch or indirect-target misprediction.
  uint64_t MispredictPenalty = 4;
  /// Extra cycles for integer divide/remainder.
  uint64_t DivCycles = 12;
  /// Result latency of FP add/sub/mul/compare (scoreboarded).
  uint64_t FpLatency = 3;
  /// Result latency of FP divide.
  uint64_t FpDivLatency = 12;
  /// Result latency of loads (a dependent FP use stalls).
  uint64_t LoadLatency = 2;
  /// Store-buffer depth; stores beyond this drain rate stall the pipeline.
  uint64_t StoreBufferDepth = 8;
  /// Cycles for one store-buffer entry to drain.
  uint64_t StoreDrainCycles = 2;
  /// Cycles to deliver a counter-overflow trap (pipeline flush plus the
  /// entry into the trap handler), charged once per trap like the
  /// rdpic/wrpic costs are charged per instrumented access.
  uint64_t TrapDeliveryCycles = 24;
};

} // namespace hw
} // namespace pp

#endif // PP_HW_COSTMODEL_H
