//===- hw/PerfCounters.h - Hardware performance counters -------*- C++ -*-===//
///
/// \file
/// The counter architecture the paper programs (§3, §5.1): the machine
/// counts many event kinds, and two *program-accessible* 32-bit registers
/// (PIC0/PIC1) can each be mapped to one event and read or written quickly
/// from user code. The 32-bit width wraps, which is why PP measures short
/// intraprocedural paths and accumulates into 64-bit memory counters.
///
/// Separately from the PICs, the full 64-bit per-event totals are always
/// maintained; the experiment harness reads them as the "uninstrumented
/// baseline" ground truth (standing in for the paper's 6-second sampling of
/// an uninstrumented run).
///
//===----------------------------------------------------------------------===//

#ifndef PP_HW_PERFCOUNTERS_H
#define PP_HW_PERFCOUNTERS_H

#include "hw/Event.h"

#include <array>
#include <cstdint>

namespace pp {
namespace hw {

/// Event totals plus the two program-visible PIC registers.
class PerfCounters {
public:
  PerfCounters() { Totals.fill(0); }

  /// Selects which events the two PICs observe (the PCR write on a real
  /// UltraSPARC, performed by the profiler before the run).
  void selectPicEvents(Event Pic0, Event Pic1) {
    Pic0Event = Pic0;
    Pic1Event = Pic1;
  }

  Event pic0Event() const { return Pic0Event; }
  Event pic1Event() const { return Pic1Event; }

  /// Adds \p N occurrences of \p E.
  void count(Event E, uint64_t N) {
    Totals[static_cast<unsigned>(E)] += N;
    // The PICs wrap at 32 bits, as on the UltraSPARC.
    if (E == Pic0Event)
      Pic0 = static_cast<uint32_t>(Pic0 + N);
    if (E == Pic1Event)
      Pic1 = static_cast<uint32_t>(Pic1 + N);
  }

  /// Full-width ground-truth total for \p E.
  uint64_t total(Event E) const { return Totals[static_cast<unsigned>(E)]; }

  /// The rd-of-both-PICs instruction: PIC0 in the low, PIC1 in the high
  /// 32 bits.
  uint64_t readPics() const {
    return uint64_t(Pic0) | (uint64_t(Pic1) << 32);
  }

  /// The wr-of-both-PICs instruction.
  void writePics(uint64_t Value) {
    Pic0 = static_cast<uint32_t>(Value);
    Pic1 = static_cast<uint32_t>(Value >> 32);
  }

  void resetTotals() { Totals.fill(0); }

private:
  std::array<uint64_t, NumEvents> Totals;
  Event Pic0Event = Event::Cycles;
  Event Pic1Event = Event::Insts;
  uint32_t Pic0 = 0;
  uint32_t Pic1 = 0;
};

} // namespace hw
} // namespace pp

#endif // PP_HW_PERFCOUNTERS_H
