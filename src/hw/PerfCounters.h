//===- hw/PerfCounters.h - Hardware performance counters -------*- C++ -*-===//
///
/// \file
/// The counter architecture the paper programs (§3, §5.1): the machine
/// counts many event kinds, and two *program-accessible* 32-bit registers
/// (PIC0/PIC1) can each be mapped to one event and read or written quickly
/// from user code. The 32-bit width wraps, which is why PP measures short
/// intraprocedural paths and accumulates into 64-bit memory counters.
///
/// Separately from the PICs, the full 64-bit per-event totals are always
/// maintained; the experiment harness reads them as the "uninstrumented
/// baseline" ground truth (standing in for the paper's 6-second sampling of
/// an uninstrumented run).
///
//===----------------------------------------------------------------------===//

#ifndef PP_HW_PERFCOUNTERS_H
#define PP_HW_PERFCOUNTERS_H

#include "hw/Event.h"
#include "support/Compiler.h"

#include <array>
#include <cstdint>

namespace pp {
namespace hw {

/// Event totals plus the two program-visible PIC registers.
class PerfCounters {
public:
  PerfCounters() { Totals.fill(0); }

  /// Selects which events the two PICs observe (the PCR write on a real
  /// UltraSPARC, performed by the profiler before the run).
  void selectPicEvents(Event Pic0, Event Pic1) {
    // Re-anchor so each PIC keeps its current value but follows the new
    // event from here on.
    Pic0Base = pic0();
    Pic1Base = pic1();
    Pic0Event = Pic0;
    Pic1Event = Pic1;
    Pic0Snap = total(Pic0Event);
    Pic1Snap = total(Pic1Event);
    refreshTrapThreshold();
  }

  Event pic0Event() const { return Pic0Event; }
  Event pic1Event() const { return Pic1Event; }

  /// Adds \p N occurrences of \p E. This is the hottest operation in the
  /// whole simulator (several calls per simulated instruction), so the
  /// PICs are not maintained here: each PIC is materialised on read from
  /// its event's 64-bit total relative to a snapshot taken at the last
  /// write. Truncating the difference to 32 bits yields exactly the
  /// wrap-at-32-bits behaviour of incrementing a 32-bit register.
  PP_ALWAYS_INLINE void count(Event E, uint64_t N) {
    Totals[static_cast<unsigned>(E)] += N;
  }

  /// Full-width ground-truth total for \p E.
  uint64_t total(Event E) const { return Totals[static_cast<unsigned>(E)]; }

  /// The rd-of-both-PICs instruction: PIC0 in the low, PIC1 in the high
  /// 32 bits.
  uint64_t readPics() const {
    return uint64_t(pic0()) | (uint64_t(pic1()) << 32);
  }

  /// The wr-of-both-PICs instruction.
  void writePics(uint64_t Value) {
    Pic0Base = static_cast<uint32_t>(Value);
    Pic1Base = static_cast<uint32_t>(Value >> 32);
    Pic0Snap = total(Pic0Event);
    Pic1Snap = total(Pic1Event);
    refreshTrapThreshold();
  }

  void resetTotals() {
    // Keep the program-visible PIC values across the reset, as before.
    Pic0Base = pic0();
    Pic1Base = pic1();
    Totals.fill(0);
    Pic0Snap = 0;
    Pic1Snap = 0;
    refreshTrapThreshold();
  }

  // --- Counter-overflow traps (the PCR.OVF programming the paper's §3
  // machine exposes but its instrumentation never needed) -------------------

  /// Arms an overflow trap on PIC \p Pic: the register is written to
  /// 2^32 - Period, so after \p Period more occurrences of its event the
  /// 32-bit value wraps past zero and a trap becomes pending. The VM
  /// delivers pending traps at the next instruction boundary. Arming is a
  /// privileged register write, not a new counting mechanism: the PIC
  /// value really changes, exactly as wrpic would change it.
  ///
  /// A zero period is clamped to 1: writing 2^32 - 0 would wrap the
  /// register all the way around, silently arming a 2^32-event trap that
  /// in practice never fires.
  void armOverflowTrap(unsigned Pic, uint32_t Period) {
    if (Period == 0)
      Period = 1;
    TrapPic = Pic;
    TrapArmed = true;
    uint32_t Start = static_cast<uint32_t>(0) - Period;
    if (Pic == 0) {
      Pic0Base = Start;
      Pic0Snap = total(Pic0Event);
    } else {
      Pic1Base = Start;
      Pic1Snap = total(Pic1Event);
    }
    refreshTrapThreshold();
  }

  /// Drops the armed trap (delivery does this implicitly; the handler
  /// re-arms to keep sampling).
  void disarmOverflowTrap() {
    TrapArmed = false;
    TrapThreshold = UINT64_MAX;
  }

  bool overflowArmed() const { return TrapArmed; }
  unsigned overflowPic() const { return TrapPic; }
  Event overflowEvent() const { return TrapPic == 0 ? Pic0Event : Pic1Event; }

  /// True once the armed PIC has wrapped. One load and one compare — when
  /// disarmed the threshold is UINT64_MAX, so the hot path needs no
  /// separate armed flag.
  PP_ALWAYS_INLINE bool overflowPending() const {
    return Totals[TrapEventIdx] >= TrapThreshold;
  }

private:
  /// Re-derives the trap-fire point after anything that moves the armed
  /// PIC's value or event: the trap fires when the register wraps, i.e.
  /// after (2^32 - current value) more events.
  void refreshTrapThreshold() {
    if (!TrapArmed)
      return;
    Event E = TrapPic == 0 ? Pic0Event : Pic1Event;
    uint32_t Cur = TrapPic == 0 ? pic0() : pic1();
    uint64_t Remaining = (uint64_t(1) << 32) - Cur;
    TrapEventIdx = static_cast<unsigned>(E);
    TrapThreshold = total(E) + Remaining;
  }

  uint32_t pic0() const {
    return static_cast<uint32_t>(Pic0Base + (total(Pic0Event) - Pic0Snap));
  }
  uint32_t pic1() const {
    return static_cast<uint32_t>(Pic1Base + (total(Pic1Event) - Pic1Snap));
  }

  std::array<uint64_t, NumEvents> Totals;
  Event Pic0Event = Event::Cycles;
  Event Pic1Event = Event::Insts;
  /// PIC value at the last write/select/reset anchor point...
  uint32_t Pic0Base = 0;
  uint32_t Pic1Base = 0;
  /// ...and the observed event's total at that same moment.
  uint64_t Pic0Snap = 0;
  uint64_t Pic1Snap = 0;
  /// Overflow-trap state: the armed PIC's event total at which the 32-bit
  /// register wraps (UINT64_MAX while disarmed, so overflowPending() stays
  /// a single compare), and which PIC/event is armed.
  uint64_t TrapThreshold = UINT64_MAX;
  unsigned TrapEventIdx = 0;
  unsigned TrapPic = 0;
  bool TrapArmed = false;
};

} // namespace hw
} // namespace pp

#endif // PP_HW_PERFCOUNTERS_H
