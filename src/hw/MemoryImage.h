//===- hw/MemoryImage.h - Sparse simulated memory --------------*- C++ -*-===//
///
/// \file
/// Byte-addressable sparse memory for the simulated machine. Pages are
/// allocated zero-filled on first touch ("demand paged", like the CCT heap
/// region in §4.2). Values are little-endian.
///
//===----------------------------------------------------------------------===//

#ifndef PP_HW_MEMORYIMAGE_H
#define PP_HW_MEMORYIMAGE_H

#include "support/Compiler.h"

#include <cstdint>
#include <cstring>
#include <memory>
#include <unordered_map>

namespace pp {
namespace hw {

/// Sparse 64-bit address space backed by 4 KB pages.
class MemoryImage {
public:
  static constexpr uint64_t PageBytes = 4096;

  /// Reads \p Size bytes (1-8) at \p Addr, zero-extended. The common
  /// within-one-page case is inline with a one-entry page cache in front
  /// of the hash lookup (the cached data pointer stays valid across map
  /// rehashes — the page buffers themselves never move).
  PP_ALWAYS_INLINE uint64_t peek(uint64_t Addr, unsigned Size) const {
    uint64_t Offset = Addr & (PageBytes - 1);
    if (Offset + Size <= PageBytes) {
      uint64_t PageIdx = Addr / PageBytes;
      const uint8_t *Page;
      if (PageIdx == CachedPageIdx) {
        Page = CachedPage;
      } else {
        Page = findPage(Addr);
        if (!Page)
          return 0;
        CachedPageIdx = PageIdx;
        CachedPage = const_cast<uint8_t *>(Page);
      }
      // Dispatch on the access width so each memcpy has a constant size
      // (one host load/store) instead of a variable-length copy.
      uint64_t Value = 0;
      switch (Size) {
      case 8:
        std::memcpy(&Value, Page + Offset, 8);
        break;
      case 4:
        std::memcpy(&Value, Page + Offset, 4);
        break;
      case 2:
        std::memcpy(&Value, Page + Offset, 2);
        break;
      case 1:
        std::memcpy(&Value, Page + Offset, 1);
        break;
      default:
        std::memcpy(&Value, Page + Offset, Size);
      }
      return Value;
    }
    return peekSlow(Addr, Size);
  }

  /// Writes the low \p Size bytes of \p Value at \p Addr.
  PP_ALWAYS_INLINE void poke(uint64_t Addr, unsigned Size, uint64_t Value) {
    uint64_t Offset = Addr & (PageBytes - 1);
    if (Offset + Size <= PageBytes) {
      uint64_t PageIdx = Addr / PageBytes;
      uint8_t *Page;
      if (PageIdx == CachedPageIdx) {
        Page = CachedPage;
      } else {
        Page = getPage(Addr);
        CachedPageIdx = PageIdx;
        CachedPage = Page;
      }
      switch (Size) {
      case 8:
        std::memcpy(Page + Offset, &Value, 8);
        break;
      case 4:
        std::memcpy(Page + Offset, &Value, 4);
        break;
      case 2:
        std::memcpy(Page + Offset, &Value, 2);
        break;
      case 1:
        std::memcpy(Page + Offset, &Value, 1);
        break;
      default:
        std::memcpy(Page + Offset, &Value, Size);
      }
      return;
    }
    pokeSlow(Addr, Size, Value);
  }

  /// Copies \p Size bytes from \p Data to \p Addr.
  void pokeBytes(uint64_t Addr, const uint8_t *Data, uint64_t Size) {
    for (uint64_t Index = 0; Index != Size; ++Index)
      poke(Addr + Index, 1, Data[Index]);
  }

  /// Number of pages materialised so far (the image's footprint).
  size_t numPages() const { return Pages.size(); }

  void clear() {
    Pages.clear();
    CachedPageIdx = ~uint64_t(0);
    CachedPage = nullptr;
  }

private:
  /// Page-straddling accesses decompose into byte accesses (each of which
  /// is within one page and takes the fast path above).
  uint64_t peekSlow(uint64_t Addr, unsigned Size) const {
    uint64_t Value = 0;
    for (unsigned Index = 0; Index != Size; ++Index)
      Value |= peek(Addr + Index, 1) << (8 * Index);
    return Value;
  }

  void pokeSlow(uint64_t Addr, unsigned Size, uint64_t Value) {
    for (unsigned Index = 0; Index != Size; ++Index)
      poke(Addr + Index, 1, (Value >> (8 * Index)) & 0xff);
  }

  const uint8_t *findPage(uint64_t Addr) const {
    auto It = Pages.find(Addr / PageBytes);
    return It == Pages.end() ? nullptr : It->second.get();
  }

  uint8_t *getPage(uint64_t Addr) {
    std::unique_ptr<uint8_t[]> &Page = Pages[Addr / PageBytes];
    if (!Page) {
      Page = std::make_unique<uint8_t[]>(PageBytes);
      std::memset(Page.get(), 0, PageBytes);
    }
    return Page.get();
  }

  std::unordered_map<uint64_t, std::unique_ptr<uint8_t[]>> Pages;
  /// One-entry MRU page cache (mutable: a cache refresh during a const
  /// peek does not change observable state).
  mutable uint64_t CachedPageIdx = ~uint64_t(0);
  mutable uint8_t *CachedPage = nullptr;
};

} // namespace hw
} // namespace pp

#endif // PP_HW_MEMORYIMAGE_H
