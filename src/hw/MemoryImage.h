//===- hw/MemoryImage.h - Sparse simulated memory --------------*- C++ -*-===//
///
/// \file
/// Byte-addressable sparse memory for the simulated machine. Pages are
/// allocated zero-filled on first touch ("demand paged", like the CCT heap
/// region in §4.2). Values are little-endian.
///
//===----------------------------------------------------------------------===//

#ifndef PP_HW_MEMORYIMAGE_H
#define PP_HW_MEMORYIMAGE_H

#include <cstdint>
#include <cstring>
#include <memory>
#include <unordered_map>

namespace pp {
namespace hw {

/// Sparse 64-bit address space backed by 4 KB pages.
class MemoryImage {
public:
  static constexpr uint64_t PageBytes = 4096;

  /// Reads \p Size bytes (1-8) at \p Addr, zero-extended.
  uint64_t peek(uint64_t Addr, unsigned Size) const {
    uint64_t Offset = Addr & (PageBytes - 1);
    if (Offset + Size <= PageBytes) {
      const uint8_t *Page = findPage(Addr);
      if (!Page)
        return 0;
      uint64_t Value = 0;
      std::memcpy(&Value, Page + Offset, Size);
      return Value;
    }
    uint64_t Value = 0;
    for (unsigned Index = 0; Index != Size; ++Index)
      Value |= peek(Addr + Index, 1) << (8 * Index);
    return Value;
  }

  /// Writes the low \p Size bytes of \p Value at \p Addr.
  void poke(uint64_t Addr, unsigned Size, uint64_t Value) {
    uint64_t Offset = Addr & (PageBytes - 1);
    if (Offset + Size <= PageBytes) {
      std::memcpy(getPage(Addr) + Offset, &Value, Size);
      return;
    }
    for (unsigned Index = 0; Index != Size; ++Index)
      poke(Addr + Index, 1, (Value >> (8 * Index)) & 0xff);
  }

  /// Copies \p Size bytes from \p Data to \p Addr.
  void pokeBytes(uint64_t Addr, const uint8_t *Data, uint64_t Size) {
    for (uint64_t Index = 0; Index != Size; ++Index)
      poke(Addr + Index, 1, Data[Index]);
  }

  /// Number of pages materialised so far (the image's footprint).
  size_t numPages() const { return Pages.size(); }

  void clear() { Pages.clear(); }

private:
  const uint8_t *findPage(uint64_t Addr) const {
    auto It = Pages.find(Addr / PageBytes);
    return It == Pages.end() ? nullptr : It->second.get();
  }

  uint8_t *getPage(uint64_t Addr) {
    std::unique_ptr<uint8_t[]> &Page = Pages[Addr / PageBytes];
    if (!Page) {
      Page = std::make_unique<uint8_t[]>(PageBytes);
      std::memset(Page.get(), 0, PageBytes);
    }
    return Page.get();
  }

  std::unordered_map<uint64_t, std::unique_ptr<uint8_t[]>> Pages;
};

} // namespace hw
} // namespace pp

#endif // PP_HW_MEMORYIMAGE_H
