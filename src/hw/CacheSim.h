//===- hw/CacheSim.h - Set-associative cache simulator ---------*- C++ -*-===//
///
/// \file
/// A set-associative LRU cache simulator. The defaults model the measured
/// cache of the paper: the UltraSPARC's on-chip 16 KB direct-mapped L1 data
/// cache with 32-byte lines (§6.4.1); the instruction cache uses the
/// UltraSPARC's 16 KB 2-way configuration.
///
//===----------------------------------------------------------------------===//

#ifndef PP_HW_CACHESIM_H
#define PP_HW_CACHESIM_H

#include <cassert>
#include <cstdint>
#include <vector>

namespace pp {
namespace hw {

/// Geometry of a cache.
struct CacheConfig {
  uint64_t SizeBytes = 16 * 1024;
  uint64_t LineBytes = 32;
  unsigned Associativity = 1;

  uint64_t numSets() const {
    return SizeBytes / (LineBytes * Associativity);
  }
};

/// Returns the UltraSPARC-like L1 D-cache geometry (16 KB direct-mapped,
/// 32 B lines).
inline CacheConfig dcacheDefault() { return CacheConfig{16 * 1024, 32, 1}; }

/// Returns the UltraSPARC-like L1 I-cache geometry (16 KB 2-way, 32 B
/// lines).
inline CacheConfig icacheDefault() { return CacheConfig{16 * 1024, 32, 2}; }

/// Simulates hits and misses; contents are not stored (data lives in the
/// memory image).
class CacheSim {
public:
  explicit CacheSim(const CacheConfig &Config);

  const CacheConfig &config() const { return Config; }

  /// Touches every line the [Addr, Addr + Size) access covers and returns
  /// the number of lines that missed (0 = all hit). An access that
  /// straddles a line boundary touches both lines, and each missing line
  /// counts — two cold lines are two misses, exactly as the hardware's
  /// miss counter would see them.
  unsigned access(uint64_t Addr, uint64_t Size);

  /// Empties the cache.
  void reset();

  uint64_t accesses() const { return Accesses; }
  uint64_t misses() const { return Misses; }

private:
  bool touchLine(uint64_t LineAddr);

  CacheConfig Config;
  uint64_t NumSets;
  uint64_t LineShift;
  /// Tags[set * Assoc + way]; 0 is "invalid" (tag values are shifted so a
  /// real tag is never 0).
  std::vector<uint64_t> Tags;
  /// LRU stamps parallel to Tags.
  std::vector<uint64_t> Stamps;
  uint64_t Clock = 0;
  uint64_t Accesses = 0;
  uint64_t Misses = 0;
};

} // namespace hw
} // namespace pp

#endif // PP_HW_CACHESIM_H
