//===- hw/CacheSim.h - Set-associative cache simulator ---------*- C++ -*-===//
///
/// \file
/// A set-associative LRU cache simulator. The defaults model the measured
/// cache of the paper: the UltraSPARC's on-chip 16 KB direct-mapped L1 data
/// cache with 32-byte lines (§6.4.1); the instruction cache uses the
/// UltraSPARC's 16 KB 2-way configuration.
///
//===----------------------------------------------------------------------===//

#ifndef PP_HW_CACHESIM_H
#define PP_HW_CACHESIM_H

#include "support/Compiler.h"

#include <cassert>
#include <cstdint>
#include <vector>

namespace pp {
namespace hw {

/// Geometry of a cache.
struct CacheConfig {
  uint64_t SizeBytes = 16 * 1024;
  uint64_t LineBytes = 32;
  unsigned Associativity = 1;

  uint64_t numSets() const {
    return SizeBytes / (LineBytes * Associativity);
  }
};

/// Returns the UltraSPARC-like L1 D-cache geometry (16 KB direct-mapped,
/// 32 B lines).
inline CacheConfig dcacheDefault() { return CacheConfig{16 * 1024, 32, 1}; }

/// Returns the UltraSPARC-like L1 I-cache geometry (16 KB 2-way, 32 B
/// lines).
inline CacheConfig icacheDefault() { return CacheConfig{16 * 1024, 32, 2}; }

/// Simulates hits and misses; contents are not stored (data lives in the
/// memory image).
class CacheSim {
public:
  explicit CacheSim(const CacheConfig &Config);

  const CacheConfig &config() const { return Config; }

  /// Touches every line the [Addr, Addr + Size) access covers and returns
  /// the number of lines that missed (0 = all hit). An access that
  /// straddles a line boundary touches both lines, and each missing line
  /// counts — two cold lines are two misses, exactly as the hardware's
  /// miss counter would see them.
  ///
  /// Inline: this runs once per simulated instruction (the I-cache probe
  /// in Machine::beginInst) plus once per memory access, so the call is
  /// the hottest edge in the whole simulator.
  PP_ALWAYS_INLINE unsigned access(uint64_t Addr, uint64_t Size) {
    assert(Size >= 1);
    ++Accesses;
    uint64_t FirstLine = Addr >> LineShift;
    uint64_t LastLine = (Addr + Size - 1) >> LineShift;
    if (FirstLine == LastLine) {
      // A repeat of the immediately-preceding line is always a hit, and
      // skipping the LRU update is sound: consecutive touches of one line
      // cannot reorder it relative to any other line in the set, so every
      // future victim choice is unchanged. This catches the long
      // straight-line runs of the I-cache (eight 4-byte fetches per line).
      if (FirstLine == LastTouched)
        return 0;
      // Second MRU entry: if the line before that repeats AND it maps to a
      // different set than the intervening line, its set has not been
      // touched since, so it is still resident and still the most recent
      // in its set — the touch can be skipped without changing any future
      // victim choice. This catches two-line ping-pong patterns: a loop
      // body spanning a line boundary, or alternating-array data streams.
      if (FirstLine == PrevTouched &&
          (FirstLine & (NumSets - 1)) != (LastTouched & (NumSets - 1))) {
        PrevTouched = LastTouched;
        LastTouched = FirstLine;
        return 0;
      }
      if (DirectMapped) {
        // Direct-mapped probe: one tag compare, no LRU state to maintain.
        PrevTouched = LastTouched;
        LastTouched = FirstLine;
        uint64_t Set = FirstLine & (NumSets - 1);
        uint64_t Tag = (FirstLine >> TagShift) + 1;
        if (Tags[Set] == Tag)
          return 0;
        Tags[Set] = Tag;
        ++Misses;
        return 1;
      }
      // The set-associative tag/LRU walk lives out of line so the
      // per-instruction footprint inlined into the interpreters stays a
      // few compares and predictable branches.
      return accessNewLine(FirstLine);
    }
    return accessStraddle(FirstLine, LastLine);
  }

  /// Empties the cache.
  void reset();

  uint64_t accesses() const { return Accesses; }
  uint64_t misses() const { return Misses; }

private:
  /// Single-line access that changed lines: LRU-touch it, count a miss if
  /// it was not resident.
  unsigned accessNewLine(uint64_t Line);

  /// Line-straddling access: touch every covered line, count each miss.
  unsigned accessStraddle(uint64_t FirstLine, uint64_t LastLine);

  bool touchLine(uint64_t LineAddr) {
    uint64_t Set = LineAddr & (NumSets - 1);
    // Shift so a valid tag can never collide with the 0 invalid marker.
    uint64_t Tag = (LineAddr >> TagShift) + 1;
    uint64_t *SetTags = &Tags[Set * Config.Associativity];
    uint64_t *SetStamps = &Stamps[Set * Config.Associativity];
    ++Clock;
    unsigned Victim = 0;
    for (unsigned Way = 0; Way != Config.Associativity; ++Way) {
      if (SetTags[Way] == Tag) {
        SetStamps[Way] = Clock;
        return false; // hit
      }
      if (SetStamps[Way] < SetStamps[Victim])
        Victim = Way;
    }
    SetTags[Victim] = Tag;
    SetStamps[Victim] = Clock;
    return true; // miss
  }

  CacheConfig Config;
  uint64_t NumSets;
  uint64_t LineShift;
  uint64_t TagShift;
  /// Tags[set * Assoc + way]; 0 is "invalid" (tag values are shifted so a
  /// real tag is never 0).
  std::vector<uint64_t> Tags;
  /// LRU stamps parallel to Tags.
  std::vector<uint64_t> Stamps;
  /// The last two distinct lines touched, most recent first (MRU filter).
  uint64_t LastTouched = ~uint64_t(0);
  uint64_t PrevTouched = ~uint64_t(0);
  /// Associativity == 1: the probe needs no LRU bookkeeping at all.
  bool DirectMapped = false;
  uint64_t Clock = 0;
  uint64_t Accesses = 0;
  uint64_t Misses = 0;
};

} // namespace hw
} // namespace pp

#endif // PP_HW_CACHESIM_H
