//===- hw/CacheSim.cpp - Set-associative cache simulator --------------------===//

#include "hw/CacheSim.h"

#include <bit>

using namespace pp;
using namespace pp::hw;

CacheSim::CacheSim(const CacheConfig &Config) : Config(Config) {
  assert(std::has_single_bit(Config.LineBytes) && "line size must be 2^k");
  assert(Config.Associativity >= 1);
  NumSets = Config.numSets();
  assert(NumSets >= 1 && std::has_single_bit(NumSets) &&
         "set count must be a power of two");
  LineShift = static_cast<uint64_t>(std::countr_zero(Config.LineBytes));
  Tags.assign(NumSets * Config.Associativity, 0);
  Stamps.assign(NumSets * Config.Associativity, 0);
}

void CacheSim::reset() {
  Tags.assign(Tags.size(), 0);
  Stamps.assign(Stamps.size(), 0);
  Clock = 0;
  Accesses = 0;
  Misses = 0;
}

unsigned CacheSim::access(uint64_t Addr, uint64_t Size) {
  assert(Size >= 1);
  ++Accesses;
  uint64_t FirstLine = Addr >> LineShift;
  uint64_t LastLine = (Addr + Size - 1) >> LineShift;
  unsigned MissedLines = 0;
  for (uint64_t Line = FirstLine; Line <= LastLine; ++Line)
    if (touchLine(Line))
      ++MissedLines;
  Misses += MissedLines;
  return MissedLines;
}

bool CacheSim::touchLine(uint64_t LineAddr) {
  uint64_t Set = LineAddr & (NumSets - 1);
  // Shift so a valid tag can never collide with the 0 invalid marker.
  uint64_t Tag = (LineAddr >> std::countr_zero(NumSets)) + 1;
  uint64_t *SetTags = &Tags[Set * Config.Associativity];
  uint64_t *SetStamps = &Stamps[Set * Config.Associativity];
  ++Clock;
  unsigned Victim = 0;
  for (unsigned Way = 0; Way != Config.Associativity; ++Way) {
    if (SetTags[Way] == Tag) {
      SetStamps[Way] = Clock;
      return false; // hit
    }
    if (SetStamps[Way] < SetStamps[Victim])
      Victim = Way;
  }
  SetTags[Victim] = Tag;
  SetStamps[Victim] = Clock;
  return true; // miss
}
