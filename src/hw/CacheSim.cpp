//===- hw/CacheSim.cpp - Set-associative cache simulator --------------------===//

#include "hw/CacheSim.h"

#include <bit>

using namespace pp;
using namespace pp::hw;

CacheSim::CacheSim(const CacheConfig &Config) : Config(Config) {
  assert(std::has_single_bit(Config.LineBytes) && "line size must be 2^k");
  assert(Config.Associativity >= 1);
  NumSets = Config.numSets();
  assert(NumSets >= 1 && std::has_single_bit(NumSets) &&
         "set count must be a power of two");
  LineShift = static_cast<uint64_t>(std::countr_zero(Config.LineBytes));
  TagShift = static_cast<uint64_t>(std::countr_zero(NumSets));
  DirectMapped = Config.Associativity == 1;
  Tags.assign(NumSets * Config.Associativity, 0);
  Stamps.assign(NumSets * Config.Associativity, 0);
}

unsigned CacheSim::accessNewLine(uint64_t Line) {
  PrevTouched = LastTouched;
  LastTouched = Line;
  if (!touchLine(Line))
    return 0;
  ++Misses;
  return 1;
}

unsigned CacheSim::accessStraddle(uint64_t FirstLine, uint64_t LastLine) {
  // Lines are touched in ascending order, so the second-most-recent
  // distinct line after this access is LastLine - 1.
  PrevTouched = LastLine - 1;
  LastTouched = LastLine;
  unsigned MissedLines = 0;
  for (uint64_t Line = FirstLine; Line <= LastLine; ++Line)
    if (touchLine(Line))
      ++MissedLines;
  Misses += MissedLines;
  return MissedLines;
}

void CacheSim::reset() {
  Tags.assign(Tags.size(), 0);
  Stamps.assign(Stamps.size(), 0);
  LastTouched = ~uint64_t(0);
  PrevTouched = ~uint64_t(0);
  Clock = 0;
  Accesses = 0;
  Misses = 0;
}
