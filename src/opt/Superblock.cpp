//===- opt/Superblock.cpp - path-based superblock formation -------------------===//
///
/// Tail duplication along the hottest Ball-Larus path: from the first
/// side-entered block of the trace onward, every trace block is cloned
/// and the hot predecessor's edge redirected into the clone chain, so the
/// hot path becomes a straight fall-through sequence no cold edge enters
/// mid-way. Cold side *exits* still leave the chain into the original
/// blocks, which keep every predecessor except the hot one. A per-function
/// duplication budget bounds the code growth; refusals are counted, never
/// silent.
///
//===----------------------------------------------------------------------===//

#include "ir/Clone.h"
#include "ir/Module.h"
#include "obs/Obs.h"
#include "opt/Layout.h"
#include "opt/Pass.h"

#include <cassert>
#include <string>
#include <unordered_map>

using namespace pp;
using namespace pp::opt;

PassStats opt::runSuperblockPass(ir::Module &M, const ProfileView &View,
                                 const PassOptions &Opts) {
  assert(&View.module() == &M && "view resolved against a different module");
  PassStats Stats;
  Stats.Kind = PassKind::Superblock;

  for (unsigned Id = 0; Id != View.numFunctions(); ++Id) {
    const FunctionHotness &FH = View.function(Id);
    if (!FH.HasPaths)
      continue;
    ir::Function &F = *M.function(Id);
    if (F.isInstrumented())
      continue;
    const HotPath &HP = FH.Hottest;
    if (HP.Blocks.size() < 2)
      continue;

    // The trace must still be intact: every step's recorded successor
    // index must lead to the next trace block (an earlier pass is free
    // to have rewired it — then there is nothing trustworthy to form).
    bool Intact = true;
    for (size_t J = 0; J + 1 != HP.Blocks.size() && Intact; ++J) {
      ir::BasicBlock *BB = HP.Blocks[J];
      Intact = BB->hasTerminator() &&
               HP.SuccIndices[J] < BB->numSuccessors() &&
               BB->successor(HP.SuccIndices[J]) == HP.Blocks[J + 1];
    }
    if (!Intact)
      continue;
    ++Stats.FunctionsConsidered;

    // Predecessor-edge counts, to find side entrances.
    std::unordered_map<const ir::BasicBlock *, unsigned> PredCount;
    for (const auto &BB : F.blocks()) {
      if (!BB->hasTerminator())
        continue;
      for (unsigned S = 0; S != BB->numSuccessors(); ++S)
        ++PredCount[BB->successor(S)];
    }

    // First side-entered trace position. The head (entry or loop head) is
    // never duplicated: its extra predecessors are function entry or the
    // loop's own back edge, which duplication cannot remove.
    size_t Start = 0;
    for (size_t J = 1; J != HP.Blocks.size(); ++J)
      if (PredCount[HP.Blocks[J]] > 1) {
        Start = J;
        break;
      }
    if (Start == 0)
      continue; // no side entrances: the trace already is a superblock

    // Clone the tail, re-pointing the hot predecessor edge clone by
    // clone. Each clone's side edges keep targeting the original cold
    // blocks; only the trace edge is redirected.
    uint64_t Budget = Opts.DupBudget;
    ir::BasicBlock *Pred = HP.Blocks[Start - 1];
    unsigned PredSucc = HP.SuccIndices[Start - 1];
    std::vector<ir::BasicBlock *> Clones;
    for (size_t J = Start; J != HP.Blocks.size(); ++J) {
      ir::BasicBlock *Orig = HP.Blocks[J];
      const uint64_t Size = Orig->insts().size();
      if (Size > Budget) {
        ++Stats.BudgetRefusals;
        break;
      }
      Budget -= Size;
      ir::BasicBlock *Clone = ir::cloneBlock(
          F, *Orig, ".dup" + std::to_string(F.numBlocks()));
      Pred->setSuccessor(PredSucc, Clone);
      Clones.push_back(Clone);
      ++Stats.BlocksDuplicated;
      Stats.InstsAdded += Size;
      obs::add(obs::Counter::OptBlocksDuplicated);
      Pred = Clone;
      if (J + 1 != HP.Blocks.size())
        PredSucc = HP.SuccIndices[J];
    }
    if (Clones.empty())
      continue;
    ++Stats.FunctionsChanged;

    // Lay the new chain where the duplicated tail used to sit: head
    // prefix, then the clones, then everything else (the now-cold
    // originals drift to the back).
    std::vector<ir::BasicBlock *> Order(HP.Blocks.begin(),
                                        HP.Blocks.begin() + Start);
    Order.insert(Order.end(), Clones.begin(), Clones.end());
    reorderTraceFirst(F, Order);
  }
  return Stats;
}
