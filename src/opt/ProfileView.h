//===- opt/ProfileView.h - Optimizer view of a profile artifact -*- C++ -*-===//
///
/// \file
/// The read-side adapter between the profile repository and the optimizer:
/// a ProfileView resolves a merged .ppa artifact against the pristine
/// module it was collected from, answering the queries the passes ask —
/// "what is this function's hottest Ball-Larus path?", "how many cycles
/// does the CCT subtree under this call site carry?" — in terms of live
/// IR handles (BasicBlock pointers, instruction indices) that survive
/// block reordering.
///
/// Everything is resolved once, at build time, against the *pristine*
/// module: path sums and call-site indices are defined by the original
/// block numbering, so querying them after a pass has reordered blocks
/// would silently read garbage. Build() therefore turns every path into a
/// pointer chain and every call site into a (block, instruction) handle
/// up front; passes may then mutate the module freely.
///
/// Artifacts are refused — with a typed reason, never a silent no-op —
/// when they cannot have come from the module at hand: sampled
/// acquisition (approximate counts must not steer transforms that claim
/// measured wins), an unknown or profile-free metric schema, a function
/// table naming different procedures, or path sums outside the module's
/// path space.
///
//===----------------------------------------------------------------------===//

#ifndef PP_OPT_PROFILEVIEW_H
#define PP_OPT_PROFILEVIEW_H

#include "prof/Mode.h"

#include <cstdint>
#include <vector>

namespace pp {
namespace ir {
class BasicBlock;
class Module;
} // namespace ir

namespace profdb {
struct Artifact;
} // namespace profdb

namespace opt {

/// Why an artifact was refused (Ok = usable).
enum class ViewStatus : unsigned {
  Ok = 0,
  /// The artifact's acquisition is not "exact": sampled estimates must
  /// not drive optimizations whose speedups we then claim as measured.
  CrossAcquisition,
  /// The metric schema names an unknown mode, or a mode that recorded
  /// neither paths nor a CCT (None/Edge) — nothing to optimize from.
  SchemaMismatch,
  /// A path-recording mode whose tables hold no executed path anywhere
  /// (e.g. a run that never reached instrumented code).
  EmptyPathTables,
  /// The artifact's function table (or CCT geometry) does not match the
  /// module: different count, names, or call-site counts.
  FunctionTableMismatch,
  /// A recorded path sum (or path-space size) is impossible for the
  /// module's Ball-Larus numbering — the profile came from different code.
  PathSpaceMismatch,
  /// The artifact counts k-iteration (k > 1) window sums; the optimizer's
  /// layout passes reason about single-iteration acyclic paths and would
  /// misdecode window ids as classic path sums.
  MultiIterationPaths,
};

/// Human-readable refusal reason for diagnostics.
const char *viewStatusName(ViewStatus Status);

/// One hot path, resolved to live IR handles. Blocks[i+1] is reached from
/// Blocks[i] through terminator successor SuccIndices[i]; the chain stays
/// valid across Function::reorderBlocks because it never mentions ids.
struct HotPath {
  std::vector<ir::BasicBlock *> Blocks;
  /// Successor index taken out of Blocks[i] (size = Blocks.size() - 1).
  std::vector<unsigned> SuccIndices;
  uint64_t PathSum = 0;
  uint64_t Freq = 0;
  uint64_t Metric0 = 0;
  uint64_t Metric1 = 0;
  /// True when the path begins at a loop head rather than the entry.
  bool StartsAfterBackedge = false;
};

/// Per-function path-profile summary.
struct FunctionHotness {
  bool HasPaths = false;
  /// Executed paths in descending hotness order (measured PIC0 when the
  /// run recorded any, frequency otherwise; ties keep the smaller path
  /// sum), capped at MaxPathsKept. Paths[0] is the hottest.
  std::vector<HotPath> Paths;
  /// Paths[0], kept as a named handle for the single-trace consumers.
  HotPath Hottest;
  uint64_t TotalFreq = 0;
  uint64_t TotalMetric0 = 0;
  uint64_t TotalMetric1 = 0;
};

/// How many resolved paths a FunctionHotness retains. Layout chains
/// traces in this order; past a dozen the tail carries noise, not signal.
inline constexpr size_t MaxPathsKept = 16;

/// One call site of a function, as a reorder-proof handle. Sites are held
/// in the canonical prof::enumerateCallSites order, so index i is CCT
/// callee slot i.
struct SiteRef {
  ir::BasicBlock *BB = nullptr;
  unsigned InstIndex = 0;
  bool Indirect = false;
};

/// CCT-derived hotness of one call site: the metrics carried by every
/// subtree hanging off this slot, summed over all contexts of the caller.
struct SiteHotness {
  /// Invocations of the callee(s) through this site.
  uint64_t Calls = 0;
  /// Subtree PIC0 / PIC1 sums (own metrics of every record below).
  uint64_t Metric0 = 0;
  uint64_t Metric1 = 0;
  /// True when any context resolved this slot to an ancestor record — a
  /// recursion backedge; inlining such a site would unroll recursion.
  bool Recursive = false;
  bool Indirect = false;
};

/// The optimizer's query interface over one artifact + module pair.
class ProfileView {
public:
  ProfileView() = default;

  /// Resolves \p A against \p M. On refusal, \p Out is unspecified and
  /// must be discarded; obs counts the refusal (opt.profile_refusals).
  static ViewStatus build(const profdb::Artifact &A, const ir::Module &M,
                          ProfileView &Out);

  const ir::Module &module() const { return *M; }
  prof::Mode mode() const { return ProfMode; }

  /// True when at least one function has a resolved hot path.
  bool hasPaths() const { return HasPaths; }
  /// True when the artifact carried a CCT matching the module.
  bool hasCct() const { return HasCct; }

  size_t numFunctions() const { return Funcs.size(); }
  const FunctionHotness &function(unsigned FuncId) const {
    return Funcs[FuncId];
  }
  /// Call sites of \p FuncId in CCT slot order (handles, reorder-proof).
  const std::vector<SiteRef> &sites(unsigned FuncId) const {
    return Sites[FuncId];
  }
  /// Parallel to sites(): CCT subtree hotness per slot (empty vectors
  /// when the artifact had no CCT).
  const std::vector<SiteHotness> &siteHotness(unsigned FuncId) const {
    return SiteHot[FuncId];
  }

  /// Whole-run PIC0 total over the CCT (the inliner's 100% mark) and
  /// whole-run invocation count, for frequency fallback.
  uint64_t totalMetric0() const { return TotalMetric0; }
  uint64_t totalCalls() const { return TotalCalls; }

private:
  const ir::Module *M = nullptr;
  prof::Mode ProfMode = prof::Mode::None;
  bool HasPaths = false;
  bool HasCct = false;
  std::vector<FunctionHotness> Funcs;
  std::vector<std::vector<SiteRef>> Sites;
  std::vector<std::vector<SiteHotness>> SiteHot;
  uint64_t TotalMetric0 = 0;
  uint64_t TotalCalls = 0;
};

} // namespace opt
} // namespace pp

#endif // PP_OPT_PROFILEVIEW_H
