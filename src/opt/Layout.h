//===- opt/Layout.h - profile-guided code layout ---------------*- C++ -*-===//
///
/// \file
/// The paper's closing argument is that path profiles give compilers "an
/// empirical basis for making optimization tradeoffs". This pass is the
/// smallest such consumer: reorder every profiled function's blocks so
/// its hottest path (by the measured PIC0 metric, falling back to
/// frequency) is laid out contiguously from the entry, pushing cold
/// blocks (error paths, rare cases) to the tail. On the simulated
/// machine, code addresses follow block order, so the effect on the
/// I-cache is measured, not estimated.
///
//===----------------------------------------------------------------------===//

#ifndef PP_OPT_LAYOUT_H
#define PP_OPT_LAYOUT_H

#include "prof/Session.h"

#include <vector>

namespace pp {
namespace ir {
class BasicBlock;
class Function;
class Module;
} // namespace ir

namespace opt {

/// The layout core both entry points share: reorder \p F's blocks to
/// entry-first, then \p Trace in order (skipping the entry and
/// duplicates), then the rest in their current order. Skips functions
/// with fewer than two blocks and no-op permutations — the pass is
/// idempotent and never churns change counters. Returns true when the
/// block order actually changed.
bool reorderTraceFirst(ir::Function &F,
                       const std::vector<ir::BasicBlock *> &Trace);

/// Outcome of a layout pass.
struct LayoutResult {
  unsigned FunctionsConsidered = 0;
  unsigned FunctionsReordered = 0;
};

/// Reorders the blocks of one function hot-path-first, using its measured
/// path profile. Returns false when there is nothing to do (no executed
/// paths, or the hot path already leads the layout).
bool layoutHotPathFirst(ir::Function &F,
                        const prof::FunctionPathProfile &Profile);

/// Applies layoutHotPathFirst to every function with a flow profile in
/// \p Profile (which must have been collected from \p M or a clone with
/// identical structure).
LayoutResult layoutHotPathsFirst(ir::Module &M,
                                 const prof::RunOutcome &Profile);

} // namespace opt
} // namespace pp

#endif // PP_OPT_LAYOUT_H
