//===- opt/Inline.cpp - CCT-hotness-directed inlining -------------------------===//
///
/// The context profile as an inlining oracle: a call site is worth
/// inlining when the CCT subtrees hanging off its callee slot carry at
/// least a configured fraction of the whole run's PIC0 (invocations when
/// the profile recorded no HW metrics). Sites are refused with a counted
/// reason when inlining would be unsafe or unbounded: indirect targets,
/// recursion (a CCT backedge, a self-call, or a static call cycle back to
/// the caller), callees containing Setjmp (the buffer records the frame
/// it runs in), and callers whose instruction budget is spent.
///
//===----------------------------------------------------------------------===//

#include "ir/Clone.h"
#include "ir/Module.h"
#include "obs/Obs.h"
#include "opt/Pass.h"

#include <algorithm>
#include <cassert>
#include <unordered_set>

using namespace pp;
using namespace pp::opt;

namespace {

bool containsSetjmp(const ir::Function &F) {
  for (const auto &BB : F.blocks())
    for (const ir::Inst &I : BB->insts())
      if (I.Op == ir::Opcode::Setjmp)
        return true;
  return false;
}

/// Extra instructions one inlined invocation executes over the call it
/// replaces. The Call instruction marshals arguments into the callee
/// frame and carries the return value back by itself; expansion spells
/// those out as numParams argument Movs plus one result Mov when any
/// return carries a value (the entry/continuation Brs replace the
/// Call/Ret pair one for one).
uint64_t perCallOverhead(const ir::Function &Callee) {
  bool ReturnsValue = false;
  for (const auto &BB : Callee.blocks())
    for (const ir::Inst &I : BB->insts())
      if (I.Op == ir::Opcode::Ret && (I.BIsImm || I.B != ir::NoReg))
        ReturnsValue = true;
  return Callee.numParams() + (ReturnsValue ? 1 : 0);
}

/// True when \p From can reach \p Target through direct call edges.
/// Inlining such a callee is semantically fine (the clone still calls),
/// but iterating it re-grows the same cycle every run, so the pass
/// refuses it as recursion.
bool reachesThroughCalls(const ir::Function &From, const ir::Function &Target) {
  std::unordered_set<const ir::Function *> Visited;
  std::vector<const ir::Function *> Stack{&From};
  while (!Stack.empty()) {
    const ir::Function *F = Stack.back();
    Stack.pop_back();
    if (F == &Target)
      return true;
    if (!Visited.insert(F).second)
      continue;
    for (const auto &BB : F->blocks())
      for (const ir::Inst &I : BB->insts())
        if (I.Op == ir::Opcode::Call && I.Callee)
          Stack.push_back(I.Callee);
  }
  return false;
}

struct Decision {
  unsigned Caller = 0;
  ir::BasicBlock *BB = nullptr;
  unsigned InstIndex = 0;
  uint64_t Weight = 0;
  uint64_t EstimatedGrowth = 0;
};

} // namespace

PassStats opt::runInlinePass(ir::Module &M, const ProfileView &View,
                             const PassOptions &Opts) {
  assert(&View.module() == &M && "view resolved against a different module");
  PassStats Stats;
  Stats.Kind = PassKind::Inline;
  if (!View.hasCct())
    return Stats;

  const bool UseMetric = View.totalMetric0() != 0;
  const uint64_t Total = UseMetric ? View.totalMetric0() : View.totalCalls();
  if (!Total)
    return Stats;

  std::vector<Decision> Candidates;
  for (unsigned Id = 0; Id != View.numFunctions(); ++Id) {
    const std::vector<SiteRef> &Sites = View.sites(Id);
    const std::vector<SiteHotness> &Hotness = View.siteHotness(Id);
    if (Sites.empty() || Hotness.size() != Sites.size())
      continue;
    ir::Function &Caller = *M.function(Id);
    if (Caller.isInstrumented())
      continue;
    bool Considered = false;
    for (unsigned S = 0; S != Sites.size(); ++S) {
      const SiteRef &Ref = Sites[S];
      const SiteHotness &Hot = Hotness[S];
      const uint64_t Weight = UseMetric ? Hot.Metric0 : Hot.Calls;
      if (!Weight && !Hot.Recursive)
        continue;
      // Recursion backedges carry no attributed weight (their subtree is
      // the ancestor's own, already counted), so they must bypass the
      // hotness gate to be refused — and counted — explicitly.
      if (!Hot.Recursive &&
          Weight * Opts.InlineHotDen < Total * Opts.InlineHotNum)
        continue; // below the hotness threshold
      Considered = true;
      if (Ref.Indirect || Hot.Indirect) {
        ++Stats.UnsafeRefusals;
        continue;
      }
      if (Hot.Recursive) {
        ++Stats.RecursionRefusals;
        continue;
      }
      // The site handle must still name the call it was enumerated from
      // (a prior pass may have moved it into a continuation block).
      if (Ref.InstIndex >= Ref.BB->insts().size())
        continue;
      const ir::Inst &I = Ref.BB->insts()[Ref.InstIndex];
      if (I.Op != ir::Opcode::Call || !I.Callee)
        continue;
      const ir::Function &Callee = *I.Callee;
      if (&Callee == &Caller || reachesThroughCalls(Callee, Caller)) {
        ++Stats.RecursionRefusals;
        continue;
      }
      if (containsSetjmp(Callee)) {
        ++Stats.UnsafeRefusals;
        continue;
      }
      if (perCallOverhead(Callee) > Opts.InlineMaxOverhead) {
        ++Stats.CostRefusals;
        continue;
      }
      Decision D;
      D.Caller = Id;
      D.BB = Ref.BB;
      D.InstIndex = Ref.InstIndex;
      D.Weight = Weight;
      D.EstimatedGrowth = Callee.numInsts() + Callee.numParams() + 2;
      Candidates.push_back(D);
    }
    if (Considered)
      ++Stats.FunctionsConsidered;
  }

  // Budget allocation in hotness order (deterministic tie-break on the
  // site's identity), so the hottest sites claim the caller budget first.
  std::sort(Candidates.begin(), Candidates.end(),
            [](const Decision &A, const Decision &B) {
              if (A.Weight != B.Weight)
                return A.Weight > B.Weight;
              if (A.Caller != B.Caller)
                return A.Caller < B.Caller;
              if (A.BB->id() != B.BB->id())
                return A.BB->id() < B.BB->id();
              return A.InstIndex < B.InstIndex;
            });
  std::vector<uint64_t> Spent(M.numFunctions(), 0);
  std::vector<Decision> Accepted;
  for (const Decision &D : Candidates) {
    if (Spent[D.Caller] + D.EstimatedGrowth > Opts.InlineBudget) {
      ++Stats.BudgetRefusals;
      continue;
    }
    Spent[D.Caller] += D.EstimatedGrowth;
    Accepted.push_back(D);
  }

  // Execution order: within one block, descending instruction index, so
  // inlining one site never stales another accepted site's index (the
  // tail that moves to the continuation block is always behind the sites
  // still to be expanded).
  std::sort(Accepted.begin(), Accepted.end(),
            [](const Decision &A, const Decision &B) {
              if (A.Caller != B.Caller)
                return A.Caller < B.Caller;
              if (A.BB->id() != B.BB->id())
                return A.BB->id() < B.BB->id();
              return A.InstIndex > B.InstIndex;
            });
  std::vector<bool> Changed(M.numFunctions(), false);
  for (const Decision &D : Accepted) {
    ir::Function &Caller = *M.function(D.Caller);
    if (D.InstIndex >= D.BB->insts().size() ||
        D.BB->insts()[D.InstIndex].Op != ir::Opcode::Call)
      continue;
    const size_t Added = ir::inlineCall(Caller, *D.BB, D.InstIndex);
    if (!Added)
      continue;
    ++Stats.SitesInlined;
    Stats.InstsAdded += Added;
    Changed[D.Caller] = true;
    obs::add(obs::Counter::OptSitesInlined);
  }
  for (bool C : Changed)
    Stats.FunctionsChanged += C ? 1 : 0;
  return Stats;
}
