//===- opt/Pipeline.cpp - The profile-guided pass pipeline --------------------===//

#include "opt/Pass.h"

#include "ir/Module.h"
#include "ir/Verifier.h"
#include "obs/Obs.h"
#include "opt/Layout.h"
#include "support/Env.h"

#include <cstdio>
#include <cstdlib>

using namespace pp;
using namespace pp::opt;

const char *opt::passName(PassKind Kind) {
  switch (Kind) {
  case PassKind::Layout:
    return "layout";
  case PassKind::Superblock:
    return "superblock";
  case PassKind::Inline:
    return "inline";
  }
  return "unknown";
}

PassOptions PassOptions::fromEnv(const char *Tool) {
  PassOptions Opts;
  Opts.InlineBudget =
      envUint64Or("PP_OPT_INLINE_BUDGET", Tool, Opts.InlineBudget);
  Opts.DupBudget = envUint64Or("PP_OPT_DUP_BUDGET", Tool, Opts.DupBudget);
  return Opts;
}

bool opt::parsePasses(const std::string &Text, std::vector<PassKind> &Out,
                      std::string &Error) {
  Out.clear();
  if (Text.empty()) {
    Error = "empty pass list";
    return false;
  }
  size_t Pos = 0;
  while (Pos <= Text.size()) {
    size_t Comma = Text.find(',', Pos);
    std::string Name = Text.substr(
        Pos, Comma == std::string::npos ? std::string::npos : Comma - Pos);
    if (Name == "layout")
      Out.push_back(PassKind::Layout);
    else if (Name == "superblock")
      Out.push_back(PassKind::Superblock);
    else if (Name == "inline")
      Out.push_back(PassKind::Inline);
    else {
      Error = "unknown pass '" + Name + "'";
      return false;
    }
    if (Comma == std::string::npos)
      break;
    Pos = Comma + 1;
  }
  return true;
}

std::vector<PassKind> opt::passesFromEnv(const char *Tool,
                                         std::vector<PassKind> Default) {
  const char *Value = std::getenv("PP_OPT_PASSES");
  if (!Value || !*Value)
    return Default;
  std::vector<PassKind> Parsed;
  std::string Error;
  if (!parsePasses(Value, Parsed, Error)) {
    std::fprintf(stderr, "%s: warning: ignoring malformed PP_OPT_PASSES='%s' (%s)\n",
                 Tool, Value, Error.c_str());
    return Default;
  }
  return Parsed;
}

PassStats opt::runLayoutPass(ir::Module &M, const ProfileView &View) {
  assert(&View.module() == &M && "view resolved against a different module");
  PassStats Stats;
  Stats.Kind = PassKind::Layout;
  for (unsigned Id = 0; Id != View.numFunctions(); ++Id) {
    const FunctionHotness &FH = View.function(Id);
    if (!FH.HasPaths)
      continue;
    ir::Function &F = *M.function(Id);
    if (F.numBlocks() < 2)
      continue;
    ++Stats.FunctionsConsidered;
    // Chain every recorded trace in hotness order, not just the hottest:
    // the second-hottest path is typically the loop body whose blocks a
    // single-trace layout would otherwise scatter behind the cold tail.
    std::vector<ir::BasicBlock *> Chain;
    for (const HotPath &HP : FH.Paths)
      Chain.insert(Chain.end(), HP.Blocks.begin(), HP.Blocks.end());
    if (reorderTraceFirst(F, Chain)) {
      ++Stats.FunctionsChanged;
      obs::add(obs::Counter::OptFunctionsReordered);
    }
  }
  return Stats;
}

PipelineResult opt::runPipeline(ir::Module &M, const ProfileView &View,
                                const std::vector<PassKind> &Passes,
                                const PassOptions &Opts) {
  PipelineResult Result;
  for (PassKind Kind : Passes) {
    PassStats Stats;
    {
      obs::SpanScope Span("opt", "pass", passName(Kind), M.numInsts(), 1);
      switch (Kind) {
      case PassKind::Layout:
        Stats = runLayoutPass(M, View);
        break;
      case PassKind::Superblock:
        Stats = runSuperblockPass(M, View, Opts);
        break;
      case PassKind::Inline:
        Stats = runInlinePass(M, View, Opts);
        break;
      }
      Span.setItems(Stats.FunctionsChanged);
    }
    Result.Passes.push_back(Stats);

    // A transform bug must surface here as a typed error, not later as a
    // miscomputing program.
    std::vector<std::string> Errors;
    if (!ir::verifyModule(M, Errors)) {
      Result.Ok = false;
      Result.Error = std::string("module invalid after pass '") +
                     passName(Kind) + "': " +
                     (Errors.empty() ? "unknown" : Errors.front());
      return Result;
    }
  }
  return Result;
}
