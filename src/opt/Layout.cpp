//===- opt/Layout.cpp - profile-guided code layout ----------------------------===//

#include "opt/Layout.h"

#include "bl/PathNumbering.h"
#include "cfg/Cfg.h"
#include "ir/Module.h"

#include <set>
#include <vector>

using namespace pp;
using namespace pp::opt;

bool opt::reorderTraceFirst(ir::Function &F,
                            const std::vector<ir::BasicBlock *> &Trace) {
  // A function with fewer than two blocks has exactly one layout; treating
  // it as reorderable only churns change counters.
  if (F.numBlocks() < 2)
    return false;

  std::vector<ir::BasicBlock *> NewOrder;
  std::set<ir::BasicBlock *> Placed;
  // The entry must stay first even when it is cold (a hot path that
  // begins at a loop head never mentions it).
  NewOrder.push_back(F.entry());
  Placed.insert(F.entry());
  for (ir::BasicBlock *BB : Trace)
    if (Placed.insert(BB).second)
      NewOrder.push_back(BB);
  for (const auto &BB : F.blocks())
    if (Placed.insert(BB.get()).second)
      NewOrder.push_back(BB.get());

  // Skip the no-op permutation (keeps the pass idempotent).
  bool Changed = false;
  for (size_t Index = 0; Index != NewOrder.size(); ++Index)
    Changed |= NewOrder[Index]->id() != Index;
  if (!Changed)
    return false;
  F.reorderBlocks(NewOrder);
  return true;
}

bool opt::layoutHotPathFirst(ir::Function &F,
                             const prof::FunctionPathProfile &Profile) {
  if (!Profile.HasProfile || Profile.Paths.empty())
    return false;
  if (F.numBlocks() < 2)
    return false;

  // Hottest path by a consistent measure: measured PIC0 cost when the run
  // recorded any, frequency otherwise. (Comparing one path's metric
  // against another's frequency — the old behaviour — picked garbage
  // whenever a run mixed zero- and nonzero-metric paths.)
  bool UseMetric = false;
  for (const prof::PathEntry &Entry : Profile.Paths)
    UseMetric |= Entry.Metric0 != 0;
  const prof::PathEntry *Hottest = &Profile.Paths.front();
  for (const prof::PathEntry &Entry : Profile.Paths) {
    uint64_t Best = UseMetric ? Hottest->Metric0 : Hottest->Freq;
    uint64_t Cur = UseMetric ? Entry.Metric0 : Entry.Freq;
    if (Cur > Best)
      Hottest = &Entry;
  }

  cfg::Cfg G(F);
  bl::PathNumbering PN(G);
  if (!PN.valid() || Hottest->PathSum >= PN.numPaths())
    return false;
  bl::RegeneratedPath Path = PN.regenerate(Hottest->PathSum);

  std::vector<ir::BasicBlock *> Trace;
  for (unsigned Node : Path.Nodes)
    Trace.push_back(G.block(Node));
  return reorderTraceFirst(F, Trace);
}

LayoutResult opt::layoutHotPathsFirst(ir::Module &M,
                                      const prof::RunOutcome &Profile) {
  LayoutResult Result;
  for (const prof::FunctionPathProfile &FuncProfile : Profile.PathProfiles) {
    if (!FuncProfile.HasProfile || FuncProfile.Paths.empty())
      continue;
    if (M.function(FuncProfile.FuncId)->numBlocks() < 2)
      continue;
    ++Result.FunctionsConsidered;
    if (layoutHotPathFirst(*M.function(FuncProfile.FuncId), FuncProfile))
      ++Result.FunctionsReordered;
  }
  return Result;
}
