//===- opt/Layout.cpp - profile-guided code layout ----------------------------===//

#include "opt/Layout.h"

#include "bl/PathNumbering.h"
#include "cfg/Cfg.h"
#include "ir/Module.h"

#include <set>
#include <vector>

using namespace pp;
using namespace pp::opt;

bool opt::layoutHotPathFirst(ir::Function &F,
                             const prof::FunctionPathProfile &Profile) {
  if (!Profile.HasProfile || Profile.Paths.empty())
    return false;

  // Hottest path by measured cost (PIC0 when present, frequency
  // otherwise).
  const prof::PathEntry *Hottest = &Profile.Paths.front();
  for (const prof::PathEntry &Entry : Profile.Paths) {
    uint64_t Best = Hottest->Metric0 ? Hottest->Metric0 : Hottest->Freq;
    uint64_t Cur = Entry.Metric0 ? Entry.Metric0 : Entry.Freq;
    if (Cur > Best)
      Hottest = &Entry;
  }

  cfg::Cfg G(F);
  bl::PathNumbering PN(G);
  if (!PN.valid())
    return false;
  bl::RegeneratedPath Path = PN.regenerate(Hottest->PathSum);

  std::vector<ir::BasicBlock *> NewOrder;
  std::set<ir::BasicBlock *> Placed;
  NewOrder.push_back(F.entry()); // the entry must stay first
  Placed.insert(F.entry());
  for (unsigned Node : Path.Nodes) {
    ir::BasicBlock *BB = G.block(Node);
    if (Placed.insert(BB).second)
      NewOrder.push_back(BB);
  }
  for (const auto &BB : F.blocks())
    if (Placed.insert(BB.get()).second)
      NewOrder.push_back(BB.get());

  // Skip the no-op permutation (keeps the pass idempotent).
  bool Changed = false;
  for (size_t Index = 0; Index != NewOrder.size(); ++Index)
    Changed |= NewOrder[Index]->id() != Index;
  if (!Changed)
    return false;
  F.reorderBlocks(NewOrder);
  return true;
}

LayoutResult opt::layoutHotPathsFirst(ir::Module &M,
                                      const prof::RunOutcome &Profile) {
  LayoutResult Result;
  for (const prof::FunctionPathProfile &FuncProfile : Profile.PathProfiles) {
    if (!FuncProfile.HasProfile)
      continue;
    ++Result.FunctionsConsidered;
    if (layoutHotPathFirst(*M.function(FuncProfile.FuncId), FuncProfile))
      ++Result.FunctionsReordered;
  }
  return Result;
}
